// Tests for the algorithm-pattern subsystem (§3 extension): pattern
// construction invariants, execution bounds, and known shapes.

#include <gtest/gtest.h>

#include "netemu/algopattern/execution.hpp"
#include "netemu/graph/algorithms.hpp"
#include "netemu/topology/factory.hpp"
#include "netemu/topology/generators.hpp"
#include "netemu/util/math.hpp"

namespace netemu {
namespace {

TEST(Patterns, FftAggregateIsHypercube) {
  const AlgorithmPattern p = fft_pattern(4);
  EXPECT_EQ(p.processors, 16u);
  EXPECT_EQ(p.rounds, 4u);
  const Machine cube = make_hypercube(4);
  EXPECT_EQ(p.traffic.num_edges(), cube.graph.num_edges());
  for (const Edge& e : cube.graph.edges()) {
    // Both directions of the exchange merge into multiplicity 2.
    EXPECT_EQ(p.traffic.multiplicity(e.u, e.v), 2u);
  }
}

TEST(Patterns, BitonicUsesLowDimensionsMore) {
  const AlgorithmPattern p = bitonic_sort_pattern(4);
  EXPECT_EQ(p.rounds, 10u);  // 4*5/2
  // Dimension 0 (pairs u, u^1) is used in every stage: multiplicity 2*4.
  EXPECT_EQ(p.traffic.multiplicity(0, 1), 8u);
  // Dimension 3 used once: multiplicity 2.
  EXPECT_EQ(p.traffic.multiplicity(0, 8), 2u);
}

TEST(Patterns, TransposeIsInvolution) {
  const AlgorithmPattern p = transpose_pattern(4);
  EXPECT_EQ(p.processors, 16u);
  ASSERT_EQ(p.round_messages.size(), 1u);
  for (const Message& m : p.round_messages[0]) {
    const auto r = m.src / 4, c = m.src % 4;
    EXPECT_EQ(m.dst, c * 4 + r);
    EXPECT_NE(m.src, m.dst);  // diagonal excluded
  }
  EXPECT_EQ(p.round_messages[0].size(), 12u);
}

TEST(Patterns, PrefixRoundsAreLogarithmic) {
  const AlgorithmPattern p = parallel_prefix_pattern(100);
  EXPECT_EQ(p.rounds, 7u);  // hops 1,2,4,...,64
  // Round i sends u -> u + 2^i only.
  for (std::size_t i = 0; i < p.round_messages.size(); ++i) {
    for (const Message& m : p.round_messages[i]) {
      EXPECT_EQ(m.dst - m.src, 1u << i);
    }
  }
}

TEST(Patterns, StencilMatchesMeshEdges) {
  const AlgorithmPattern p = stencil_pattern({4, 4}, 3);
  const Machine mesh = make_mesh({4, 4});
  EXPECT_EQ(p.rounds, 3u);
  EXPECT_EQ(p.traffic.num_edges(), mesh.graph.num_edges());
  // Each round has both directions: multiplicity 2 * rounds.
  for (const Edge& e : mesh.graph.edges()) {
    EXPECT_EQ(p.traffic.multiplicity(e.u, e.v), 6u);
  }
}

TEST(Patterns, AllToAllIsComplete) {
  const AlgorithmPattern p = all_to_all_pattern(10);
  EXPECT_EQ(p.traffic.num_edges(), 45u);
  EXPECT_EQ(p.traffic.total_multiplicity(), 90u);  // both directions merge
}

TEST(Patterns, OddEvenAlternates) {
  const AlgorithmPattern p = odd_even_transposition_pattern(8);
  EXPECT_EQ(p.rounds, 8u);
  // Even rounds pair (0,1),(2,3)..., odd rounds (1,2),(3,4)...
  EXPECT_EQ(p.round_messages[0].size(), 8u);  // 4 pairs x 2 directions
  EXPECT_EQ(p.round_messages[1].size(), 6u);  // 3 pairs x 2 directions
  // Aggregate lives on the line graph.
  for (const Edge& e : p.traffic.edges()) EXPECT_EQ(e.v - e.u, 1u);
}

TEST(Patterns, StandardPatternsAreWellFormed) {
  for (const AlgorithmPattern& p : standard_patterns(128)) {
    EXPECT_FALSE(p.name.empty());
    EXPECT_EQ(p.rounds, p.round_messages.size());
    EXPECT_GT(p.traffic.total_multiplicity(), 0u);
    for (const auto& round : p.round_messages) {
      for (const Message& m : round) {
        EXPECT_LT(m.src, p.processors);
        EXPECT_LT(m.dst, p.processors);
      }
    }
  }
}

// --- execution ---------------------------------------------------------------

TEST(Execution, MeasuredRespectsCutBound) {
  Prng rng(1);
  for (const AlgorithmPattern& p :
       {fft_pattern(6), transpose_pattern(8), all_to_all_pattern(64)}) {
    for (Family hf : {Family::kLinearArray, Family::kMesh, Family::kTree}) {
      const Machine host = make_machine(hf, p.processors, 2, rng);
      const PatternExecution ex = execute_pattern(p, host, rng);
      EXPECT_GE(static_cast<double>(ex.measured_time),
                ex.cut_lower_bound * 0.99)
          << p.name << " on " << host.name;
    }
  }
}

TEST(Execution, FftNativeOnHypercube) {
  Prng rng(2);
  const AlgorithmPattern p = fft_pattern(6);
  const Machine cube = make_hypercube(6);
  const PatternExecution ex = execute_pattern(p, cube, rng);
  // Every round is a perfect dimension exchange: one tick per round on the
  // (weak) hypercube would be ideal; allow the weak-node serialization.
  EXPECT_LE(ex.measured_slowdown, 4.0);
}

TEST(Execution, FftStarvedOnLine) {
  Prng rng(3);
  const AlgorithmPattern p = fft_pattern(6);
  const Machine line = make_linear_array(64);
  const Machine cube = make_hypercube(6);
  const double s_line = execute_pattern(p, line, rng).measured_slowdown;
  const double s_cube = execute_pattern(p, cube, rng).measured_slowdown;
  EXPECT_GT(s_line, 3.0 * s_cube);
}

TEST(Execution, StencilCheapEverywhere) {
  Prng rng(4);
  const AlgorithmPattern p = stencil_pattern({8, 8}, 4);
  const Machine mesh = make_mesh({8, 8});
  const PatternExecution ex = execute_pattern(p, mesh, rng);
  // The stencil is the mesh's native workload.
  EXPECT_LE(ex.measured_slowdown, 6.0);
}

TEST(Execution, OversubscribedHostCollapsesLocally) {
  Prng rng(5);
  // 256-processor pattern on a 16-processor host: block ownership keeps
  // neighbor messages mostly intra-processor for the stencil.
  const AlgorithmPattern p = stencil_pattern({16, 16}, 2);
  const Machine host = make_mesh({4, 4});
  const PatternExecution ex = execute_pattern(p, host, rng);
  EXPECT_GT(ex.measured_time, 0u);
  // Intra-processor messages are free; the per-round cost is bounded by the
  // block boundary traffic, far below the 2*256*2 messages of a round.
  EXPECT_LT(ex.measured_slowdown, 200.0);
}

}  // namespace
}  // namespace netemu
