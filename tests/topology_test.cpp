// Tests for every topology generator: vertex/edge counts, degrees,
// connectivity, diameters, and the factory's size targeting.
// Parameterized sweeps (TEST_P) assert the family-independent invariants.

#include <gtest/gtest.h>

#include <set>

#include "netemu/cut/bisection.hpp"
#include "netemu/graph/algorithms.hpp"
#include "netemu/routing/throughput.hpp"
#include "netemu/topology/factory.hpp"
#include "netemu/topology/generators.hpp"
#include "netemu/util/math.hpp"

namespace netemu {
namespace {

TEST(LinearArray, Shape) {
  const Machine m = make_linear_array(10);
  EXPECT_EQ(m.graph.num_vertices(), 10u);
  EXPECT_EQ(m.graph.num_edges(), 9u);
  EXPECT_EQ(diameter_exact(m.graph), 9u);
  EXPECT_EQ(m.graph.max_degree(), 2u);
}

TEST(Ring, Shape) {
  const Machine m = make_ring(10);
  EXPECT_EQ(m.graph.num_edges(), 10u);
  EXPECT_EQ(diameter_exact(m.graph), 5u);
  EXPECT_EQ(m.graph.min_degree(), 2u);
  EXPECT_EQ(m.graph.max_degree(), 2u);
}

TEST(GlobalBus, HubSerializesAndProcessorsExcludeHub) {
  const Machine m = make_global_bus(8);
  EXPECT_EQ(m.graph.num_vertices(), 9u);
  EXPECT_EQ(m.graph.num_edges(), 8u);
  EXPECT_EQ(m.num_processors(), 8u);
  ASSERT_EQ(m.forward_cap.size(), 9u);
  EXPECT_EQ(m.forward_cap[8], 1u);
  EXPECT_EQ(m.forward_cap[0], kUnlimitedForward);
  EXPECT_EQ(diameter_exact(m.graph), 2u);
}

TEST(Tree, Shape) {
  const Machine m = make_tree(4);
  EXPECT_EQ(m.graph.num_vertices(), 31u);
  EXPECT_EQ(m.graph.num_edges(), 30u);
  EXPECT_EQ(diameter_exact(m.graph), 8u);  // leaf to leaf across the root
  EXPECT_EQ(m.graph.max_degree(), 3u);
}

TEST(FatTree, CapacityDoublesTowardTheRoot) {
  const Machine m = make_fat_tree(4);
  EXPECT_EQ(m.graph.num_vertices(), 31u);
  // Edge from depth-1 child into the root carries the full leaf bandwidth.
  EXPECT_EQ(m.graph.multiplicity(0, 1), 16u);
  EXPECT_EQ(m.graph.multiplicity(0, 2), 16u);
  // Leaf edges carry 2 wires (2^(h - h + 1)).
  EXPECT_EQ(m.graph.multiplicity(15, 7), 2u);
  // Same shape as the plain tree, far more total wire.
  const Machine plain = make_tree(4);
  EXPECT_EQ(m.graph.num_edges(), plain.graph.num_edges());
  EXPECT_GT(m.graph.total_multiplicity(),
            4 * plain.graph.total_multiplicity());
}

TEST(FatTree, BisectionIsLinearInLeaves) {
  Prng rng(71);
  const Machine m = make_fat_tree(5);  // 63 vertices, 32 leaves
  const Bisection b = kl_bisection(m.graph, rng, 8);
  // Cutting a root edge (32 wires) is the natural near-balanced cut.
  EXPECT_GE(b.width, 30u);
  EXPECT_LE(b.width, 70u);
}

TEST(FatTree, ThroughputIsLinear) {
  Prng rng(72);
  ThroughputOptions opt;
  opt.trials = 2;
  const Machine small = make_fat_tree(5);   // 63
  const Machine large = make_fat_tree(7);   // 255
  const auto rate = [&](const Machine& m) {
    std::vector<Vertex> procs(m.graph.num_vertices());
    for (std::size_t i = 0; i < procs.size(); ++i) {
      procs[i] = static_cast<Vertex>(i);
    }
    const auto traffic = TrafficDistribution::symmetric(procs);
    const auto router = make_default_router(m);
    return measure_throughput(m, *router, traffic, rng, opt).rate;
  };
  const double ratio = rate(large) / rate(small);
  // beta = Θ(n): 4x the size should give ~4x the rate.
  EXPECT_GT(ratio, 2.5);
  EXPECT_LT(ratio, 7.0);
}

TEST(WeakPPN, LeavesAreProcessors) {
  const Machine m = make_weak_ppn(3);
  EXPECT_EQ(m.graph.num_vertices(), 15u);
  EXPECT_EQ(m.num_processors(), 8u);
  // Leaves are the last 8 heap indices.
  EXPECT_EQ(m.processors.front(), 7u);
  EXPECT_EQ(m.processors.back(), 14u);
  for (std::uint32_t cap : m.forward_cap) EXPECT_EQ(cap, 1u);
}

TEST(XTree, LevelEdgesPresent) {
  const Machine m = make_x_tree(3);
  EXPECT_EQ(m.graph.num_vertices(), 15u);
  // Tree edges 14 + level edges (1 + 3 + 7) = 25.
  EXPECT_EQ(m.graph.num_edges(), 25u);
  // Adjacent cousins at the deepest level: 7-8, 8-9, ...
  EXPECT_EQ(m.graph.multiplicity(7, 8), 1u);
  EXPECT_EQ(m.graph.multiplicity(9, 10), 1u);
  // X-tree diameter is O(lg n) thanks to level edges.
  EXPECT_LE(diameter_exact(m.graph), 6u);
}

TEST(Mesh, Shape2D) {
  const Machine m = make_mesh({4, 5});
  EXPECT_EQ(m.graph.num_vertices(), 20u);
  EXPECT_EQ(m.graph.num_edges(), 4u * 4 + 3u * 5);  // 31
  EXPECT_EQ(diameter_exact(m.graph), 3u + 4u);
}

TEST(Mesh, Shape3D) {
  const Machine m = make_mesh({3, 3, 3});
  EXPECT_EQ(m.graph.num_vertices(), 27u);
  EXPECT_EQ(m.graph.num_edges(), 3u * (2 * 9));  // 54
  EXPECT_EQ(diameter_exact(m.graph), 6u);
  EXPECT_EQ(m.graph.max_degree(), 6u);
}

TEST(Torus, WrapEdgesAndDiameter) {
  const Machine m = make_torus({4, 4});
  EXPECT_EQ(m.graph.num_edges(), 32u);  // 2 per vertex per dim
  EXPECT_EQ(diameter_exact(m.graph), 4u);
  EXPECT_EQ(m.graph.min_degree(), 4u);
}

TEST(Torus, SideTwoDoesNotDuplicateEdges) {
  const Machine m = make_torus({2, 2});
  EXPECT_EQ(m.graph.num_edges(), 4u);
  EXPECT_EQ(m.graph.max_degree(), 2u);
}

TEST(XGrid, DiagonalsOfEveryFace) {
  const Machine m = make_x_grid({3, 3});
  // Mesh edges 12 + 2 diagonals per each of 4 faces = 20.
  EXPECT_EQ(m.graph.num_edges(), 20u);
  // Center touches everything: degree 8.
  EXPECT_EQ(m.graph.degree(4), 8u);
  EXPECT_EQ(diameter_exact(m.graph), 2u);
}

TEST(XGrid, ThreeDimensionalFaceCount) {
  const Machine m = make_x_grid({2, 2, 2});
  // Mesh edges: 3 * 4 = 12.  Faces: 3 axis pairs x (2 faces... per pair:
  // for sides 2x2 each pair contributes 2 * 2 diagonals per slab * 2 slabs?
  // Count directly instead: every pair of vertices at Hamming-like distance
  // 2 in exactly two coords differing by 1 is joined.
  std::uint64_t expected_diagonals = 0;
  const auto& g = m.graph;
  for (Vertex u = 0; u < 8; ++u) {
    for (Vertex v = u + 1; v < 8; ++v) {
      int diff = 0;
      for (int d = 0; d < 3; ++d) {
        const int cu = (u >> (2 - d)) & 1, cv = (v >> (2 - d)) & 1;
        diff += cu != cv;
      }
      if (diff == 2) ++expected_diagonals;
    }
  }
  EXPECT_EQ(g.num_edges(), 12u + expected_diagonals);
}

TEST(MeshOfTrees, CountsAndProcessors) {
  const Machine m = make_mesh_of_trees(2, 4);
  // 16 base cells + 2 dims * 4 lines * 3 internal = 40 vertices.
  EXPECT_EQ(m.graph.num_vertices(), 40u);
  EXPECT_EQ(m.num_processors(), 16u);
  EXPECT_TRUE(is_connected(m.graph));
  // Base cells have degree 2 (one row tree leaf + one column tree leaf).
  for (Vertex v = 0; v < 16; ++v) EXPECT_EQ(m.graph.degree(v), 2u);
  // Tree edges only: |V| - #trees... every tree on 4 leaves has 3 internal
  // and 6 edges; 8 trees -> 48 edges.
  EXPECT_EQ(m.graph.num_edges(), 48u);
  EXPECT_LE(diameter_exact(m.graph), 8u);
}

TEST(MeshOfTrees, ThreeDims) {
  const Machine m = make_mesh_of_trees(3, 2);
  // 8 base + 3 dims * 4 lines * 1 internal = 20.
  EXPECT_EQ(m.graph.num_vertices(), 20u);
  EXPECT_TRUE(is_connected(m.graph));
}

TEST(Multigrid, LevelsAndConnectivity) {
  const Machine m = make_multigrid(2, 4);
  // Levels: 16 + 4 + 1 = 21 vertices.
  EXPECT_EQ(m.graph.num_vertices(), 21u);
  EXPECT_TRUE(is_connected(m.graph));
  // Mesh edges 24 + 4 + 0; vertical: 4 + 1.
  EXPECT_EQ(m.graph.num_edges(), 24u + 4u + 4u + 1u);
  EXPECT_LE(diameter_exact(m.graph), 8u);
}

TEST(Pyramid, LevelsAndParentEdges) {
  const Machine m = make_pyramid(2, 4);
  EXPECT_EQ(m.graph.num_vertices(), 21u);
  // Mesh edges 24 + 4; parent edges 16 + 4.
  EXPECT_EQ(m.graph.num_edges(), 24u + 4u + 16u + 4u);
  EXPECT_TRUE(is_connected(m.graph));
  // Apex (last vertex) sees the whole machine within O(lg) hops.
  EXPECT_LE(eccentricity(m.graph, 20), 4u);
}

TEST(Butterfly, LevelsRowsEdges) {
  const Machine m = make_butterfly(3);
  EXPECT_EQ(m.graph.num_vertices(), 32u);  // 4 levels x 8 rows
  EXPECT_EQ(m.graph.num_edges(), 3u * 8 * 2);
  EXPECT_TRUE(is_connected(m.graph));
  // End levels have degree 2, middle levels 4.
  EXPECT_EQ(m.graph.degree(0), 2u);
  EXPECT_EQ(m.graph.degree(8), 4u);
}

TEST(WrappedButterfly, Regular4) {
  const Machine m = make_wrapped_butterfly(3);
  EXPECT_EQ(m.graph.num_vertices(), 24u);
  EXPECT_EQ(m.graph.min_degree(), 4u);
  EXPECT_EQ(m.graph.max_degree(), 4u);
  EXPECT_TRUE(is_connected(m.graph));
}

TEST(DeBruijn, DegreesAndConnectivity) {
  const Machine m = make_debruijn(4);
  EXPECT_EQ(m.graph.num_vertices(), 16u);
  EXPECT_TRUE(is_connected(m.graph));
  EXPECT_LE(m.graph.max_degree(), 4u);
  EXPECT_EQ(diameter_exact(m.graph), 4u);
}

TEST(ShuffleExchange, DegreesAndDiameter) {
  const Machine m = make_shuffle_exchange(4);
  EXPECT_EQ(m.graph.num_vertices(), 16u);
  EXPECT_TRUE(is_connected(m.graph));
  EXPECT_LE(m.graph.max_degree(), 3u);
  // SE diameter is ~2 lg n.
  EXPECT_LE(diameter_exact(m.graph), 8u);
}

TEST(CCC, Regular3) {
  const Machine m = make_ccc(3);
  EXPECT_EQ(m.graph.num_vertices(), 24u);
  EXPECT_EQ(m.graph.min_degree(), 3u);
  EXPECT_EQ(m.graph.max_degree(), 3u);
  EXPECT_TRUE(is_connected(m.graph));
}

TEST(Hypercube, WeakCaps) {
  const Machine m = make_hypercube(4);
  EXPECT_EQ(m.graph.num_vertices(), 16u);
  EXPECT_EQ(m.graph.num_edges(), 32u);
  EXPECT_EQ(diameter_exact(m.graph), 4u);
  ASSERT_EQ(m.forward_cap.size(), 16u);
  for (std::uint32_t cap : m.forward_cap) EXPECT_EQ(cap, 1u);
}

TEST(Multibutterfly, ContainsButterflyAndMore) {
  Prng rng(5);
  const Machine m = make_multibutterfly(4, rng, 1);
  const Machine bf = make_butterfly(4);
  EXPECT_EQ(m.graph.num_vertices(), bf.graph.num_vertices());
  EXPECT_GE(m.graph.num_edges(), bf.graph.num_edges());
  // Every butterfly edge survives.
  for (const Edge& e : bf.graph.edges()) {
    EXPECT_GT(m.graph.multiplicity(e.u, e.v), 0u);
  }
  EXPECT_TRUE(is_connected(m.graph));
}

TEST(Multibutterfly, SplittersExpand) {
  // The multibutterfly's defining property: within a level, every small set
  // of nodes has many distinct next-level neighbors in each half (expansion
  // of the random splitters).  Monte Carlo over random small subsets.
  Prng rng(73);
  const Machine m = make_multibutterfly(6, rng, 1);
  const std::uint64_t rows = 64;
  for (int trial = 0; trial < 30; ++trial) {
    const unsigned level = static_cast<unsigned>(rng.below(6));
    // Random subset of 8 nodes from this level.
    std::set<Vertex> subset;
    while (subset.size() < 8) {
      subset.insert(static_cast<Vertex>(level * rows + rng.below(rows)));
    }
    std::set<Vertex> next_neighbors;
    for (Vertex u : subset) {
      for (const Arc& a : m.graph.neighbors(u)) {
        if (a.to / rows == level + 1) next_neighbors.insert(a.to);
      }
    }
    // Degree ~4 into the next level; expansion >= 1.25x is comfortably met
    // by random splitters.
    EXPECT_GE(next_neighbors.size(), subset.size() + subset.size() / 4)
        << "level " << level;
  }
}

TEST(Expander, RegularAndConnected) {
  Prng rng(7);
  const Machine m = make_expander(64, 4, rng);
  EXPECT_EQ(m.graph.num_vertices(), 64u);
  EXPECT_TRUE(is_connected(m.graph));
  EXPECT_LE(m.graph.max_degree(), 4u);
  // Random regular graphs have logarithmic diameter.
  EXPECT_LE(diameter_exact(m.graph), 8u);
}

TEST(Expander, DeterministicUnderSeed) {
  Prng r1(99), r2(99);
  const Machine a = make_expander(32, 4, r1);
  const Machine b = make_expander(32, 4, r2);
  EXPECT_EQ(a.graph.num_edges(), b.graph.num_edges());
  for (std::size_t i = 0; i < a.graph.num_edges(); ++i) {
    EXPECT_EQ(a.graph.edges()[i].u, b.graph.edges()[i].u);
    EXPECT_EQ(a.graph.edges()[i].v, b.graph.edges()[i].v);
  }
}

// ---------------------------------------------------------------------------
// Parameterized invariants across all families and a ladder of sizes.

struct FactoryCase {
  Family family;
  unsigned k;
  std::size_t target;
};

class FactoryInvariants : public ::testing::TestWithParam<FactoryCase> {};

TEST_P(FactoryInvariants, ConnectedSizedAndSane) {
  const FactoryCase c = GetParam();
  Prng rng(1234);
  const Machine m = make_machine(c.family, c.target, c.k, rng);
  EXPECT_EQ(m.family, c.family);
  EXPECT_FALSE(m.name.empty());
  const std::size_t n = m.graph.num_vertices();
  ASSERT_GE(n, 2u);
  EXPECT_TRUE(is_connected(m.graph)) << m.name;
  // Size targeting within 4x either way (families have quantized sizes).
  EXPECT_GE(static_cast<double>(n), c.target / 4.5) << m.name;
  EXPECT_LE(static_cast<double>(n), c.target * 4.5) << m.name;
  // Processor list (when present) names real vertices.
  for (Vertex p : m.processors) EXPECT_LT(p, n);
  if (!m.forward_cap.empty()) {
    EXPECT_EQ(m.forward_cap.size(), n);
  }
  // No self loops, no zero-multiplicity edges.
  for (const Edge& e : m.graph.edges()) {
    EXPECT_NE(e.u, e.v);
    EXPECT_GE(e.mult, 1u);
  }
}

std::vector<FactoryCase> factory_cases() {
  std::vector<FactoryCase> cases;
  for (Family f : all_families()) {
    const unsigned kmax = family_is_dimensional(f) ? 3 : 1;
    for (unsigned k = 1; k <= kmax; ++k) {
      for (std::size_t target : {64, 256, 1024}) {
        cases.push_back({f, k == 0 ? 1 : k, target});
      }
    }
  }
  return cases;
}

std::string factory_case_name(
    const ::testing::TestParamInfo<FactoryCase>& info) {
  return std::string(family_name(info.param.family)) + "_k" +
         std::to_string(info.param.k) + "_n" +
         std::to_string(info.param.target);
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, FactoryInvariants,
                         ::testing::ValuesIn(factory_cases()),
                         factory_case_name);

TEST(Factory, FamilyFromNameRoundTrip) {
  for (Family f : all_families()) {
    const auto parsed = family_from_name(family_name(f));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, f);
  }
  EXPECT_FALSE(family_from_name("NoSuchMachine").has_value());
}

}  // namespace
}  // namespace netemu
