// Tests for netemu::fleet — rendezvous placement, the circuit-breaker state
// machine, the ResultCache write-ahead journal (including a truncation
// sweep at every byte offset), and the FleetRouter against real in-process
// backends.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "netemu/fleet/health.hpp"
#include "netemu/fleet/rendezvous.hpp"
#include "netemu/fleet/router.hpp"
#include "netemu/service/client.hpp"
#include "netemu/service/result_cache.hpp"
#include "netemu/service/server.hpp"
#include "netemu/util/json.hpp"

using namespace netemu;

namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

Json bandwidth_query(double n) {
  Json q = Json::object();
  q["op"] = "bandwidth";
  q["family"] = "Mesh";
  q["k"] = 2;
  q["n"] = n;
  return q;
}

}  // namespace

// ---------------------------------------------------------------- rendezvous

TEST(Rendezvous, RankIsADeterministicPermutation) {
  const std::vector<std::string> ids = {"a:1", "b:2", "c:3", "d:4"};
  for (std::uint64_t key = 0; key < 64; ++key) {
    const auto order = rendezvous_rank(key, ids);
    ASSERT_EQ(order.size(), ids.size());
    EXPECT_EQ(std::set<std::size_t>(order.begin(), order.end()).size(),
              ids.size());
    EXPECT_EQ(order, rendezvous_rank(key, ids));  // same inputs, same rank
    EXPECT_EQ(order[0], rendezvous_owner(key, ids));
  }
}

TEST(Rendezvous, RemovingABackendOnlyRemapsItsOwnKeys) {
  // The HRW property the fleet's warm caches depend on: dropping one
  // backend must not move any key it did not own.
  const std::vector<std::string> ids = {"a:1", "b:2", "c:3", "d:4"};
  for (std::size_t removed = 0; removed < ids.size(); ++removed) {
    std::vector<std::string> rest;
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (i != removed) rest.push_back(ids[i]);
    }
    for (std::uint64_t key = 0; key < 512; ++key) {
      const std::size_t before = rendezvous_owner(key, ids);
      const std::string& after = rest[rendezvous_owner(key, rest)];
      if (before != removed) {
        EXPECT_EQ(after, ids[before]) << "key " << key;
      }
    }
  }
}

TEST(Rendezvous, SpreadsKeysAcrossBackends) {
  const std::vector<std::string> ids = {"a:1", "b:2", "c:3"};
  std::vector<int> owned(ids.size(), 0);
  const int keys = 3000;
  for (std::uint64_t key = 0; key < keys; ++key) {
    ++owned[rendezvous_owner(key * 0x9E3779B97F4A7C15ULL, ids)];
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_GT(owned[i], keys / 6) << ids[i];  // within 2x of fair share
    EXPECT_LT(owned[i], keys / 2 + keys / 6) << ids[i];
  }
}

TEST(Rendezvous, EmptyFleetHasNoOwner) {
  EXPECT_EQ(rendezvous_owner(7, {}), static_cast<std::size_t>(-1));
  EXPECT_TRUE(rendezvous_rank(7, {}).empty());
}

// ------------------------------------------------------------ circuit breaker

TEST(BackendHealth, OpensAfterConsecutiveTransportFailures) {
  BackendHealth::Options o;
  o.failure_threshold = 3;
  o.open_cooldown_ms = 100;
  BackendHealth h(o);

  EXPECT_EQ(h.state(0), BackendHealth::State::kClosed);
  h.record_failure(1);
  h.record_failure(2);
  EXPECT_EQ(h.state(2), BackendHealth::State::kClosed);
  EXPECT_TRUE(h.allow(2));
  h.record_failure(3);  // third consecutive: eject
  EXPECT_EQ(h.state(3), BackendHealth::State::kOpen);
  EXPECT_FALSE(h.allow(3));
  EXPECT_EQ(h.ejections(), 1u);
}

TEST(BackendHealth, SuccessResetsTheConsecutiveCount) {
  BackendHealth::Options o;
  o.failure_threshold = 2;
  BackendHealth h(o);
  h.record_failure(1);
  h.record_success(2);  // streak broken
  h.record_failure(3);
  EXPECT_EQ(h.state(3), BackendHealth::State::kClosed);
  h.record_failure(4);
  EXPECT_EQ(h.state(4), BackendHealth::State::kOpen);
}

TEST(BackendHealth, HalfOpenAdmitsExactlyOneProbeThenCloses) {
  BackendHealth::Options o;
  o.failure_threshold = 1;
  o.open_cooldown_ms = 100;
  BackendHealth h(o);
  h.record_failure(10);  // open at t=10
  EXPECT_FALSE(h.allow(50));
  EXPECT_EQ(h.state(110), BackendHealth::State::kHalfOpen);
  EXPECT_TRUE(h.allow(110));    // the probe slot
  EXPECT_FALSE(h.allow(111));   // single-flight: no second probe
  h.record_success(120);
  EXPECT_EQ(h.state(120), BackendHealth::State::kClosed);
  EXPECT_TRUE(h.allow(121));
}

TEST(BackendHealth, FailedProbeReopensWithAFreshCooldown) {
  BackendHealth::Options o;
  o.failure_threshold = 1;
  o.open_cooldown_ms = 100;
  BackendHealth h(o);
  h.record_failure(0);  // open, cooldown until 100
  ASSERT_TRUE(h.allow(100));
  h.record_failure(150);  // probe failed: reopen, cooldown until 250
  EXPECT_EQ(h.state(200), BackendHealth::State::kOpen);
  EXPECT_FALSE(h.allow(200));
  EXPECT_EQ(h.state(250), BackendHealth::State::kHalfOpen);
  EXPECT_EQ(h.ejections(), 2u);
}

TEST(BackendHealth, LateSuccessWhileOpenDoesNotCloseEarly) {
  BackendHealth::Options o;
  o.failure_threshold = 1;
  o.open_cooldown_ms = 100;
  BackendHealth h(o);
  h.record_failure(0);
  h.record_success(10);  // from a request already in flight at ejection
  EXPECT_EQ(h.state(10), BackendHealth::State::kOpen);
  EXPECT_FALSE(h.allow(50));
}

TEST(BackendHealth, CloseAfterSuccessesRequiresThatManyProbes) {
  BackendHealth::Options o;
  o.failure_threshold = 1;
  o.open_cooldown_ms = 10;
  o.close_after_successes = 2;
  BackendHealth h(o);
  h.record_failure(0);
  ASSERT_TRUE(h.allow(10));
  h.record_success(11);
  EXPECT_EQ(h.state(11), BackendHealth::State::kHalfOpen);
  ASSERT_TRUE(h.allow(12));  // slot freed by the success
  h.record_success(13);
  EXPECT_EQ(h.state(13), BackendHealth::State::kClosed);
}

TEST(BackendHealth, WindowFailureRateTracksRecentOutcomes) {
  BackendHealth::Options o;
  o.failure_threshold = 100;  // keep it closed
  o.window = 4;
  BackendHealth h(o);
  EXPECT_DOUBLE_EQ(h.window_failure_rate(), 0.0);
  h.record_failure(0);
  h.record_failure(1);
  h.record_success(2);
  h.record_success(3);
  EXPECT_DOUBLE_EQ(h.window_failure_rate(), 0.5);
  h.record_success(4);  // rolls the oldest failure out
  EXPECT_DOUBLE_EQ(h.window_failure_rate(), 0.25);
}

// ------------------------------------------------------- write-ahead journal

TEST(ResultCacheWal, PutsAreJournaledAndReplayedAfterACrash) {
  const std::string path = temp_path("netemu_wal_replay.json");
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
  {
    ResultCache cache(8, path, /*journal=*/true);
    cache.put(0xaa, R"({"v":1})");
    cache.put(0xbb, R"({"v":2})");
    cache.put(0xaa, R"({"v":3})");  // overwrite: replay must keep the newer
    EXPECT_EQ(cache.wal_appends(), 3u);
    // No save(): simulates SIGKILL — the snapshot never happens.
  }
  ResultCache reloaded(8, path, /*journal=*/true);
  ASSERT_TRUE(reloaded.load());
  EXPECT_EQ(reloaded.wal_replayed(), 3u);
  EXPECT_EQ(reloaded.size(), 2u);
  EXPECT_EQ(reloaded.get(0xaa).value_or(""), R"({"v":3})");
  EXPECT_EQ(reloaded.get(0xbb).value_or(""), R"({"v":2})");
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
}

TEST(ResultCacheWal, SaveResetsTheJournal) {
  const std::string path = temp_path("netemu_wal_reset.json");
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
  {
    ResultCache cache(8, path, /*journal=*/true);
    cache.put(0x1, R"({"v":1})");
    ASSERT_TRUE(cache.save());
    // The entry now lives in the snapshot; the WAL must not replay it again
    // (a stale WAL would resurrect entries evicted after the snapshot).
    cache.put(0x2, R"({"v":2})");
  }
  ResultCache reloaded(8, path, /*journal=*/true);
  ASSERT_TRUE(reloaded.load());
  EXPECT_EQ(reloaded.size(), 2u);
  EXPECT_EQ(reloaded.wal_replayed(), 1u);  // only the post-snapshot put
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
}

TEST(ResultCacheWal, ReplayedEntriesLandHotInTheLru) {
  const std::string path = temp_path("netemu_wal_hot.json");
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
  {
    ResultCache cache(8, path, /*journal=*/true);
    ASSERT_TRUE(cache.save());  // snapshot of nothing
    for (std::uint64_t k = 1; k <= 4; ++k) {
      cache.put(k, R"({"v":)" + std::to_string(k) + "}");
    }
  }
  // Reload into a cache only big enough for half: the WAL's newest entries
  // must win the LRU fight.
  ResultCache reloaded(2, path, /*journal=*/true);
  ASSERT_TRUE(reloaded.load());
  EXPECT_EQ(reloaded.size(), 2u);
  EXPECT_TRUE(reloaded.get(4).has_value());
  EXPECT_TRUE(reloaded.get(3).has_value());
  EXPECT_FALSE(reloaded.get(1).has_value());
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
}

TEST(ResultCacheWal, TruncationSweepAtEveryByteOffset) {
  // A kill -9 can tear the WAL at any byte.  Whatever prefix survives, the
  // replayer must (a) never crash, (b) recover exactly the entries whose
  // content bytes are fully present, each byte-identical to what was put.
  const std::string path = temp_path("netemu_wal_sweep.json");
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());

  std::vector<std::pair<std::uint64_t, std::string>> entries;
  for (std::uint64_t i = 1; i <= 4; ++i) {
    entries.emplace_back(
        i, R"({"beta":)" + std::to_string(i) + R"(,"pad":")" +
               std::string(8 * static_cast<std::size_t>(i), 'w') + R"("})");
  }
  {
    ResultCache cache(8, path, /*journal=*/true);
    for (const auto& [key, value] : entries) cache.put(key, value);
  }
  const std::string wal = read_file(path + ".wal");
  ASSERT_FALSE(wal.empty());

  // Content-byte end of each entry line (trailing '\n' not required).
  std::vector<std::size_t> content_ends;
  std::size_t line_start = wal.find('\n') + 1;  // skip the header line
  while (line_start < wal.size()) {
    std::size_t nl = wal.find('\n', line_start);
    if (nl == std::string::npos) nl = wal.size();
    content_ends.push_back(nl);
    line_start = nl + 1;
  }
  ASSERT_EQ(content_ends.size(), entries.size());

  const std::string cut_path = temp_path("netemu_wal_sweep_cut.json");
  std::remove(cut_path.c_str());  // no snapshot: recovery is WAL-only
  for (std::size_t cut = 0; cut <= wal.size(); ++cut) {
    write_file(cut_path + ".wal", wal.substr(0, cut));
    ResultCache reloaded(8, cut_path, /*journal=*/true);
    const bool loaded = reloaded.load();  // must never crash or throw
    std::size_t expected = 0;
    for (const std::size_t end : content_ends) expected += (end <= cut);
    EXPECT_EQ(reloaded.size(), expected) << "cut=" << cut;
    if (expected > 0) {
      EXPECT_TRUE(loaded) << "cut=" << cut;
      EXPECT_EQ(reloaded.wal_replayed(), expected) << "cut=" << cut;
    }
    for (const auto& [key, value] : entries) {
      const auto got = reloaded.get(key);
      if (got) {
        EXPECT_EQ(*got, value) << "cut=" << cut;
      }
    }
  }
  std::remove(cut_path.c_str());
  std::remove((cut_path + ".wal").c_str());
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
}

TEST(ResultCacheWal, DisabledJournalWritesNoWalFile) {
  const std::string path = temp_path("netemu_wal_off.json");
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
  {
    ResultCache cache(8, path);  // journal off (the default)
    cache.put(0x1, R"({"v":1})");
    EXPECT_EQ(cache.wal_appends(), 0u);
  }
  EXPECT_TRUE(read_file(path + ".wal").empty());
  std::remove(path.c_str());
}

// --------------------------------------------------------------- fast client

TEST(ClientOutcome, ConnectRefusedFailsFastWithoutBackoff) {
  // Port 1 on localhost: nothing listens there, connect() refuses at once.
  Client::RetryPolicy policy;
  policy.max_attempts = 8;
  policy.base_backoff_ms = 200;  // would cost >1s if the backoff loop ran
  Client client(policy);
  client.set_target(1);

  const auto start = std::chrono::steady_clock::now();
  const Client::RequestOutcome out = client.request_outcome(bandwidth_query(64));
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  EXPECT_FALSE(out.doc.has_value());
  EXPECT_EQ(out.failure, RequestFailure::kConnectRefused);
  EXPECT_EQ(out.attempts, 1);  // no retry schedule for a dead process
  EXPECT_LT(ms, 150);          // and no backoff sleep
  EXPECT_NE(client.last_connect_errno(), 0);
}

// ------------------------------------------------------------------- router

namespace {

/// A live in-process backend: executor + server on an ephemeral port.
struct TestBackend {
  QueryExecutor executor;
  std::unique_ptr<Server> server;

  std::uint16_t start() {
    Server::Options options;
    options.port = 0;
    server = std::make_unique<Server>(executor, options);
    std::string error;
    EXPECT_TRUE(server->start(&error)) << error;
    return server->port();
  }
};

FleetRouter::Options fast_router_options(std::vector<std::uint16_t> ports) {
  FleetRouter::Options options;
  for (const auto port : ports) options.backends.push_back({port, ""});
  options.health.failure_threshold = 2;
  options.health.open_cooldown_ms = 50;
  options.probe_interval_ms = 0;  // deterministic: no background probes
  options.client.max_attempts = 2;
  options.client.base_backoff_ms = 1;
  options.client.max_backoff_ms = 5;
  options.client.attempt_timeout_ms = 5000;
  return options;
}

}  // namespace

TEST(FleetRouter, RoutesToTheRendezvousOwnerAndAnswers) {
  TestBackend a, b;
  const std::uint16_t pa = a.start();
  const std::uint16_t pb = b.start();
  FleetRouter router(fast_router_options({pa, pb}));

  for (int i = 0; i < 16; ++i) {
    const Json q = bandwidth_query(4096 + i);
    const FleetRouter::Result r = router.request(q);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_TRUE(r.doc["ok"].as_bool());
    EXPECT_EQ(r.doc["result"]["n"].as_number(), 4096 + i);
    EXPECT_EQ(r.backend, router.rank_for(q)[0]);  // owner answered
    EXPECT_EQ(r.backends_tried, 1);
  }
  const FleetRouter::Stats s = router.stats();
  EXPECT_EQ(s.requests, 16u);
  EXPECT_EQ(s.answered, 16u);
  EXPECT_EQ(s.failovers, 0u);
}

TEST(FleetRouter, FailsOverWhenTheOwnerIsDownAndEjectsIt) {
  TestBackend a, b;
  const std::uint16_t pa = a.start();
  const std::uint16_t pb = b.start();
  FleetRouter router(fast_router_options({pa, pb}));

  // Find a query owned by backend 0, then kill backend 0.
  Json q = bandwidth_query(9000);
  for (int i = 0; router.rank_for(q)[0] != 0 && i < 100; ++i) {
    q = bandwidth_query(9001 + i);
  }
  ASSERT_EQ(router.rank_for(q)[0], 0u);
  a.server->stop();

  // Every request still answers — by the second choice.
  for (int i = 0; i < 4; ++i) {
    const FleetRouter::Result r = router.request(q);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.backend, 1u);
  }
  const FleetRouter::Stats s = router.stats();
  EXPECT_EQ(s.answered, 4u);
  EXPECT_GE(s.failovers, 1u);
  // Two consecutive refused connects open the breaker; later requests skip
  // the dead backend outright (failovers stop growing with every request).
  EXPECT_EQ(s.backends[0].state, BackendHealth::State::kOpen);
  EXPECT_GE(s.backends[0].refused, 2u);
  EXPECT_EQ(s.backends[0].ejections, 1u);
}

TEST(FleetRouter, RecoversAClosedBackendThroughHalfOpenProbes) {
  TestBackend a;
  const std::uint16_t pa = a.start();
  TestBackend b;
  const std::uint16_t pb = b.start();
  auto options = fast_router_options({pa, pb});
  options.health.open_cooldown_ms = 30;
  FleetRouter router(options);

  Json q = bandwidth_query(9200);
  for (int i = 0; router.rank_for(q)[0] != 0 && i < 100; ++i) {
    q = bandwidth_query(9201 + i);
  }
  a.server->stop();
  for (int i = 0; i < 3; ++i) router.request(q);  // trip the breaker
  ASSERT_EQ(router.stats().backends[0].state, BackendHealth::State::kOpen);

  // Bring the backend back on the SAME port and wait out the cooldown; the
  // next owner-keyed request is the half-open probe and closes the breaker.
  Server::Options so;
  so.port = pa;
  Server revived(a.executor, so);
  std::string error;
  ASSERT_TRUE(revived.start(&error)) << error;
  std::this_thread::sleep_for(std::chrono::milliseconds(40));

  const FleetRouter::Result r = router.request(q);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.backend, 0u);
  EXPECT_EQ(router.stats().backends[0].state, BackendHealth::State::kClosed);
  revived.stop();
}

TEST(FleetRouter, ServerSideErrorsAreAuthoritativeNoFailover) {
  TestBackend a, b;
  FleetRouter router(fast_router_options({a.start(), b.start()}));

  Json bad = Json::object();
  bad["op"] = "bandwidth";
  bad["family"] = "no-such-family";
  const FleetRouter::Result r = router.request(bad);
  ASSERT_TRUE(r.ok);  // a document arrived...
  EXPECT_FALSE(r.doc["ok"].as_bool());  // ...saying the query is bad
  EXPECT_EQ(r.backends_tried, 1);  // a second backend would say the same
}

TEST(FleetRouter, AllBackendsDownReportsAnActionableError) {
  TestBackend a;
  const std::uint16_t pa = a.start();
  a.server->stop();
  FleetRouter router(fast_router_options({pa}));

  FleetRouter::Result r = router.request(bandwidth_query(77));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("no backend answered"), std::string::npos) << r.error;
  // After the breaker opens, the error names the real state of the fleet.
  router.request(bandwidth_query(78));
  r = router.request(bandwidth_query(79));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("circuit breakers open"), std::string::npos)
      << r.error;
}

TEST(FleetRouter, HedgedRequestsStillAnswerCorrectly) {
  TestBackend a, b;
  auto options = fast_router_options({a.start(), b.start()});
  options.hedge = true;
  options.hedge_fixed_ms = 1;  // hedge aggressively: both paths race
  FleetRouter router(options);

  for (int i = 0; i < 32; ++i) {
    const double n = 5000 + i;
    const FleetRouter::Result r = router.request(bandwidth_query(n));
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_TRUE(r.doc["ok"].as_bool());
    EXPECT_EQ(r.doc["result"]["n"].as_number(), n);
  }
  const FleetRouter::Stats s = router.stats();
  EXPECT_EQ(s.answered, 32u);
  EXPECT_GE(s.hedges_fired, s.hedges_won);
}

TEST(FleetRouter, StopWithHedgesInFlightJoinsCleanly) {
  TestBackend a, b;
  auto options = fast_router_options({a.start(), b.start()});
  options.hedge = true;
  options.hedge_fixed_ms = 0;  // adaptive, below min samples: no hedges yet
  options.probe_interval_ms = 10;
  FleetRouter router(options);
  for (int i = 0; i < 8; ++i) router.request(bandwidth_query(6000 + i));
  router.stop();  // must join the probe thread and drain attempts
  const FleetRouter::Stats s = router.stats();
  EXPECT_EQ(s.answered, 8u);
}
