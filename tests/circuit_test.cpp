// Tests for the circuit subsystem: the redundant-circuit model, the Lemma 9
// construction's counting claims, and the Lemma 11 collapse audit.

#include <gtest/gtest.h>

#include <cmath>
#include "netemu/topology/factory.hpp"

#include "netemu/circuit/circuit.hpp"
#include "netemu/circuit/collapse_audit.hpp"
#include "netemu/circuit/lemma9.hpp"
#include "netemu/graph/algorithms.hpp"
#include "netemu/topology/generators.hpp"

namespace netemu {
namespace {

TEST(Circuit, NodeNumberingRoundTrip) {
  const Machine g = make_mesh({3, 3});
  const Circuit c(g.graph, 5, 2);
  for (std::uint32_t level : {0u, 3u, 5u}) {
    for (Vertex u : {0u, 4u, 8u}) {
      for (std::uint32_t copy : {0u, 1u}) {
        const std::uint64_t id = c.node_id(level, u, copy);
        EXPECT_EQ(c.level_of(id), level);
        EXPECT_EQ(c.vertex_of(id), u);
        EXPECT_EQ(c.copy_of(id), copy);
      }
    }
  }
  EXPECT_EQ(c.num_nodes(), 6u * 9 * 2);
}

TEST(Circuit, EfficiencyThreshold) {
  const Machine g = make_mesh({3, 3});
  EXPECT_TRUE(Circuit(g.graph, 5, 2).is_efficient(4.0));
  EXPECT_FALSE(Circuit(g.graph, 5, 64).is_efficient(4.0));
}

TEST(Circuit, GraphHasRoutingAndIdentityEdges) {
  const Machine g = make_linear_array(3);
  const Circuit c(g.graph, 2, 1);
  const Multigraph cg = c.circuit_graph();
  EXPECT_EQ(cg.num_vertices(), 9u);
  // Identity: (u,0)-(u,1): ids 0-3, 1-4, 2-5.
  EXPECT_GT(cg.multiplicity(0, 3), 0u);
  // Routing: (0,0)-(1,1): ids 0-4 and (1,0)-(0,1): 1-3.
  EXPECT_GT(cg.multiplicity(0, 4), 0u);
  EXPECT_GT(cg.multiplicity(1, 3), 0u);
  // No intra-level edges.
  EXPECT_EQ(cg.multiplicity(0, 1), 0u);
}

TEST(Circuit, WiringComplete) {
  const Machine g = make_mesh({2, 3});
  EXPECT_TRUE(Circuit(g.graph, 3, 1).wiring_is_complete());
  EXPECT_TRUE(Circuit(g.graph, 3, 3).wiring_is_complete());
}

TEST(Circuit, CircuitGraphIsConnectedOverTime) {
  const Machine g = make_ring(5);
  const Multigraph cg = Circuit(g.graph, 4, 1).circuit_graph();
  EXPECT_TRUE(is_connected(cg));
}

// --- Lemma 9 ---------------------------------------------------------------

class Lemma9OnGuests : public ::testing::TestWithParam<Family> {};

TEST_P(Lemma9OnGuests, CountingClaimsHold) {
  Prng rng(55);
  const Machine g = make_machine(GetParam(), 100, 2, rng);
  const Lemma9Construction c(g.graph, {}, rng);
  const Lemma9Audit a = lemma9_audit(c);

  // Parameters are internally consistent.
  EXPECT_EQ(a.t, static_cast<std::uint32_t>(
                     std::ceil(2.0 * a.lambda)));  // stretch a = 1
  EXPECT_GE(a.t - a.w + 1, a.cutoff);

  // γ ∈ K_{Θ(nt),1}: vertices Θ(nt), pair multiplicity 1, edges a constant
  // fraction of (nt)².
  EXPECT_EQ(a.max_pair_multiplicity, 1u);
  EXPECT_GT(a.vertices_per_nt, 0.3) << g.name;
  EXPECT_LE(a.vertices_per_nt, 2.5) << g.name;
  EXPECT_GT(a.edges_per_n2t2, 0.005) << g.name;
  EXPECT_LT(a.edges_per_n2t2, 1.0) << g.name;

  // Ω(n²) cone paths per S-level.
  EXPECT_GT(a.cone_paths_per_level_n2, 0.2) << g.name;

  // Congestion within the paper's O(max(n t², t C(G,K_n))) bound.
  EXPECT_LE(a.congestion_ratio, 4.0) << g.name;
  EXPECT_GT(a.congestion_ratio, 0.0) << g.name;

  // Bandwidth preservation: β(Φ,γ) = Ω(t β(G)).
  EXPECT_GT(a.preservation_ratio, 0.05) << g.name;
}

INSTANTIATE_TEST_SUITE_P(
    Guests, Lemma9OnGuests,
    ::testing::Values(Family::kMesh, Family::kDeBruijn, Family::kXTree,
                      Family::kCCC, Family::kShuffleExchange),
    [](const ::testing::TestParamInfo<Family>& i) {
      return std::string(family_name(i.param));
    });

TEST(Lemma9, RejectsDisconnectedGuest) {
  Prng rng(5);
  MultigraphBuilder b(6);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  b.add_edge(4, 5);
  const Multigraph g = std::move(b).build();
  EXPECT_THROW(Lemma9Construction(g, {}, rng), std::invalid_argument);
}

TEST(Lemma9, GuestBetaMatchesKnownLinearArray) {
  Prng rng(6);
  const Machine g = make_linear_array(16);
  const Lemma9Construction c(g.graph, {}, rng);
  // All-pairs on a path: C = 64, β = 120/64.
  EXPECT_EQ(c.guest_congestion(), 64u);
  EXPECT_NEAR(c.guest_beta(), 120.0 / 64.0, 1e-9);
}

TEST(Lemma9, WitnessPathsAreShortest) {
  Prng rng(7);
  const Machine g = make_mesh({4, 4});
  const Lemma9Construction c(g.graph, {}, rng);
  for (Vertex u = 0; u < 16; u += 3) {
    const auto dist = bfs_distances(g.graph, u);
    for (Vertex v = 0; v < 16; v += 2) {
      const auto p = c.witness_path(u, v);
      EXPECT_EQ(p.size() - 1, dist[v]);
      EXPECT_EQ(p.front(), u);
      EXPECT_EQ(p.back(), v);
    }
  }
}

TEST(Lemma9, LargerStretchGrowsCircuit) {
  Prng rng(8);
  const Machine g = make_mesh({4, 4});
  const Lemma9Construction c1(g.graph, {.stretch = 0.5}, rng);
  const Lemma9Construction c2(g.graph, {.stretch = 2.0}, rng);
  EXPECT_LT(c1.t(), c2.t());
  EXPECT_LE(c1.s_levels(), c2.s_levels());
}

TEST(Lemma9, ShortComputationsDegradeTheConstruction) {
  // Theorem 1 requires T >= (1 + Ω(1))·Λ(G): with less stretch the S-level
  // band shrinks and γ loses density — the quantitative reason the theorem
  // carries the minimal-time hypothesis.
  Prng rng(12);
  const Machine g = make_mesh({8, 8});
  const Lemma9Construction tight(g.graph, {.stretch = 0.15}, rng);
  const Lemma9Construction ample(g.graph, {.stretch = 1.5}, rng);
  const Lemma9Audit at = lemma9_audit(tight);
  const Lemma9Audit aa = lemma9_audit(ample);
  // Same guest: the S-band (w relative to t) collapses as stretch -> 0.
  EXPECT_LT(static_cast<double>(at.w) / at.t,
            0.5 * static_cast<double>(aa.w) / aa.t);
  // And γ's share of the available (nt)² pairs shrinks with it.
  EXPECT_LT(at.gamma_edges,
            aa.gamma_edges);
}

// --- Lemma 11 ---------------------------------------------------------------

TEST(Lemma11, CollapsePreservesBandwidth) {
  Prng rng(9);
  const Machine g = make_mesh({6, 6});
  const Lemma9Construction c(g.graph, {}, rng);
  for (std::uint32_t parts : {8u, 16u}) {
    const CollapseAudit a =
        collapse_audit(c, parts, PartitionStrategy::kBlock, rng);
    EXPECT_EQ(a.parts, parts);
    // Load is the balanced ceil(N/parts).
    EXPECT_LE(a.load_k, (c.circuit_nodes() + parts - 1) / parts);
    // Most γ-edges survive (k = o(n) regime: drop fraction small).
    EXPECT_GT(a.surviving_fraction, 0.7) << parts;
    // ξ ∈ K_{parts, O(k²)}.
    EXPECT_LE(a.pair_mult_over_k2, 4.0) << parts;
    // β(M, ξ) = Ω(β(Φ, γ)).
    EXPECT_GT(a.preservation_ratio, 0.25) << parts;
    EXPECT_EQ(a.surviving_edges + a.dropped_edges, a.total_gamma_edges);
  }
}

TEST(Lemma11, RandomCollapseAlsoPreserves) {
  Prng rng(10);
  const Machine g = make_debruijn(5);
  const Lemma9Construction c(g.graph, {}, rng);
  const CollapseAudit a =
      collapse_audit(c, 8, PartitionStrategy::kRandom, rng);
  EXPECT_GT(a.surviving_fraction, 0.7);
  EXPECT_GT(a.preservation_ratio, 0.2);
}

TEST(Lemma11, RejectsDegenerateParts) {
  Prng rng(11);
  const Machine g = make_mesh({4, 4});
  const Lemma9Construction c(g.graph, {}, rng);
  EXPECT_THROW(collapse_audit(c, 1, PartitionStrategy::kBlock, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace netemu
