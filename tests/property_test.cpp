// Property-based tests: randomized instances, structural invariants.
// Each TEST_P sweep draws a family of random multigraphs / machines from a
// seeded generator and asserts invariants that must hold for EVERY instance
// — conservation laws of the builder/collapse, metric properties of BFS,
// bound orderings of the cut estimators, and the flux laws of the packet
// simulator (Lemma 8's arithmetic on real batches).

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "netemu/bandwidth/asymptotic.hpp"
#include "netemu/cut/bisection.hpp"
#include "netemu/cut/spectral.hpp"
#include "netemu/graph/algorithms.hpp"
#include "netemu/graph/collapse.hpp"
#include "netemu/graph/io.hpp"
#include "netemu/routing/packet_sim.hpp"
#include "netemu/routing/router.hpp"
#include "netemu/topology/factory.hpp"
#include "netemu/topology/generators.hpp"

namespace netemu {
namespace {

/// Random connected multigraph: a random spanning tree plus extra random
/// edges with random small multiplicities.
Multigraph random_connected(std::size_t n, double extra_per_vertex,
                            Prng& rng) {
  MultigraphBuilder b(n);
  std::vector<Vertex> order(n);
  std::iota(order.begin(), order.end(), 0u);
  shuffle(order, rng);
  for (std::size_t i = 1; i < n; ++i) {
    b.add_edge(order[i], order[rng.below(i)],
               1 + static_cast<std::uint32_t>(rng.below(3)));
  }
  const auto extra = static_cast<std::size_t>(extra_per_vertex * n);
  for (std::size_t e = 0; e < extra; ++e) {
    const Vertex u = static_cast<Vertex>(rng.below(n));
    Vertex v = static_cast<Vertex>(rng.below(n));
    if (u == v) v = (v + 1) % n;
    b.add_edge(std::min(u, v), std::max(u, v),
               1 + static_cast<std::uint32_t>(rng.below(2)));
  }
  return std::move(b).build();
}

class RandomGraphs : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomGraphs, BuilderConservesMultiplicity) {
  Prng rng(GetParam());
  const std::size_t n = 8 + rng.below(40);
  // Raw insertions, duplicated arbitrarily.
  std::uint64_t total = 0;
  MultigraphBuilder b(n);
  for (int i = 0; i < 200; ++i) {
    const Vertex u = static_cast<Vertex>(rng.below(n));
    Vertex v = static_cast<Vertex>(rng.below(n));
    if (u == v) v = (v + 1) % n;
    const auto mult = static_cast<std::uint32_t>(rng.below(4));
    b.add_edge(u, v, mult);
    total += mult;
  }
  const Multigraph g = std::move(b).build();
  EXPECT_EQ(g.total_multiplicity(), total);
  // Degree sum == 2 E(G).
  std::uint64_t degsum = 0;
  for (Vertex v = 0; v < n; ++v) degsum += g.degree(v);
  EXPECT_EQ(degsum, 2 * total);
  // Adjacency is symmetric.
  for (const Edge& e : g.edges()) {
    EXPECT_EQ(g.multiplicity(e.u, e.v), g.multiplicity(e.v, e.u));
    EXPECT_EQ(g.multiplicity(e.u, e.v), e.mult);
  }
}

TEST_P(RandomGraphs, EdgeListRoundTripIsIdentity) {
  Prng rng(GetParam() ^ 0x11);
  const Multigraph g = random_connected(6 + rng.below(30), 1.0, rng);
  const Multigraph h = from_edge_list(to_edge_list(g));
  ASSERT_EQ(h.num_vertices(), g.num_vertices());
  ASSERT_EQ(h.num_edges(), g.num_edges());
  for (std::size_t i = 0; i < g.num_edges(); ++i) {
    EXPECT_EQ(h.edges()[i].u, g.edges()[i].u);
    EXPECT_EQ(h.edges()[i].v, g.edges()[i].v);
    EXPECT_EQ(h.edges()[i].mult, g.edges()[i].mult);
  }
}

TEST_P(RandomGraphs, CollapseConservesEdges) {
  Prng rng(GetParam() ^ 0x22);
  const std::size_t n = 10 + rng.below(50);
  const Multigraph g = random_connected(n, 1.5, rng);
  const std::uint32_t parts = 2 + static_cast<std::uint32_t>(rng.below(6));
  std::vector<std::uint32_t> part(n);
  for (auto& p : part) p = static_cast<std::uint32_t>(rng.below(parts));
  const CollapseResult r = collapse(g, part, parts);
  EXPECT_EQ(r.quotient.total_multiplicity() + r.dropped_loop_multiplicity,
            g.total_multiplicity());
  std::uint32_t load_total = 0;
  for (std::uint32_t l : r.load) load_total += l;
  EXPECT_EQ(load_total, n);
}

TEST_P(RandomGraphs, BfsIsAMetric) {
  Prng rng(GetParam() ^ 0x33);
  const std::size_t n = 8 + rng.below(24);
  const Multigraph g = random_connected(n, 0.8, rng);
  std::vector<std::vector<std::uint32_t>> dist;
  for (Vertex v = 0; v < n; ++v) dist.push_back(bfs_distances(g, v));
  for (Vertex a = 0; a < n; ++a) {
    EXPECT_EQ(dist[a][a], 0u);
    for (Vertex b2 = 0; b2 < n; ++b2) {
      EXPECT_EQ(dist[a][b2], dist[b2][a]);
      for (Vertex c = 0; c < n; ++c) {
        EXPECT_LE(dist[a][c], dist[a][b2] + dist[b2][c]);
      }
    }
  }
}

TEST_P(RandomGraphs, CutEstimatorOrdering) {
  Prng rng(GetParam() ^ 0x44);
  const std::size_t n = 8 + 2 * rng.below(5);  // even, <= 16
  const Multigraph g = random_connected(n, 1.0, rng);
  const Bisection exact = exact_bisection(g);
  const Bisection kl = kl_bisection(g, rng, 12);
  const SpectralResult sp = fiedler_value(g, rng);
  EXPECT_LE(sp.bisection_lb, static_cast<double>(exact.width) + 1e-6);
  EXPECT_GE(kl.width, exact.width);
  EXPECT_EQ(cut_value(g, exact.side), exact.width);
  EXPECT_EQ(cut_value(g, kl.side), kl.width);
  const auto count_a = std::count(exact.side.begin(), exact.side.end(), true);
  EXPECT_TRUE(static_cast<std::size_t>(count_a) == n / 2 ||
              static_cast<std::size_t>(count_a) == (n + 1) / 2);
}

TEST_P(RandomGraphs, ScaledGraphScalesCutsLinearly) {
  Prng rng(GetParam() ^ 0x55);
  const Multigraph g = random_connected(12, 1.0, rng);
  const Multigraph g3 = g.scaled(3);
  const Bisection b1 = exact_bisection(g);
  const Bisection b3 = exact_bisection(g3);
  EXPECT_EQ(b3.width, 3 * b1.width);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphs,
                         ::testing::Range<std::uint64_t>(1, 9));

// --------------------------------------------------------------------------
// Flux laws of the packet simulator on random machines/batches.

class RandomBatches : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomBatches, FluxLowerBoundsHold) {
  Prng rng(GetParam() * 7919);
  const Family families[] = {Family::kMesh, Family::kTree, Family::kDeBruijn,
                             Family::kCCC, Family::kExpander};
  const Family f = families[rng.below(5)];
  const Machine m = make_machine(f, 64 + rng.below(128), 2, rng);
  const auto router = make_default_router(m);
  const std::size_t n = m.graph.num_vertices();

  std::vector<std::vector<Vertex>> paths;
  std::size_t total_hops = 0, max_dilation = 0;
  const std::size_t batch = 200 + rng.below(800);
  for (std::size_t i = 0; i < batch; ++i) {
    const Vertex u = static_cast<Vertex>(rng.below(n));
    Vertex v = static_cast<Vertex>(rng.below(n));
    if (u == v) v = static_cast<Vertex>((v + 1) % n);
    paths.push_back(router->route(u, v, rng));
    total_hops += paths.back().size() - 1;
    max_dilation = std::max(max_dilation, paths.back().size() - 1);
  }

  PacketSimulator sim(m);
  const BatchStats s = sim.run_batch(paths, rng);
  EXPECT_EQ(s.delivered, batch);
  EXPECT_EQ(s.total_hops, total_hops);
  // Lemma 8 arithmetic: time >= congestion, time >= dilation, and total
  // wire-ticks available (channels * T) must cover total hops.
  EXPECT_GE(s.makespan, s.static_congestion);
  EXPECT_GE(s.makespan, max_dilation);
  EXPECT_GE(static_cast<double>(s.makespan) *
                static_cast<double>(2 * m.graph.total_multiplicity()),
            static_cast<double>(total_hops));
  // And the schedule is never absurdly bad: O(C + D) with a generous
  // constant for greedy arbitration.
  EXPECT_LE(s.makespan, 8 * (s.static_congestion + max_dilation) + 8);
  // Latency accounting: average <= makespan, > 0 when any hop occurred.
  EXPECT_LE(s.avg_latency, static_cast<double>(s.makespan));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomBatches,
                         ::testing::Range<std::uint64_t>(1, 11));

// --------------------------------------------------------------------------
// The host-size solver against brute-force inversion on random exponents.

class RandomAsym : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomAsym, NumericRootIsTheThreshold) {
  Prng rng(GetParam() * 104729);
  // Guest: sub-linear bandwidth; host: strictly weaker shape.
  const AsymFn bg{1.0 + rng.uniform(), 0.3 + 0.6 * rng.uniform(),
                  rng.uniform() < 0.5 ? 0.0 : -1.0};
  const AsymFn bh{1.0 + rng.uniform(), 0.25 * rng.uniform(),
                  rng.uniform() < 0.5 ? 0.0 : 1.0};
  const double n = 1 << 20;
  const HostSizeSolution sol = solve_max_host(bg, bh, n);
  ASSERT_GT(sol.numeric, 2.0);
  if (sol.numeric < n * 0.99) {
    // Just below the root the constraint holds; just above it fails.
    auto ok = [&](double m2) { return bg(n) / bh(m2) <= n / m2 + 1e-9; };
    EXPECT_TRUE(ok(sol.numeric * 0.98));
    EXPECT_FALSE(ok(sol.numeric * 1.05));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomAsym,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace netemu
