// Tests for the extension modules: bottleneck-freeness measurement and
// redundant emulation.

#include <gtest/gtest.h>

#include "netemu/bandwidth/bottleneck.hpp"
#include "netemu/emulation/verified.hpp"
#include "netemu/bandwidth/theory.hpp"
#include "netemu/emulation/bounds.hpp"
#include "netemu/emulation/redundant.hpp"
#include "netemu/topology/factory.hpp"
#include "netemu/topology/generators.hpp"

namespace netemu {
namespace {

TEST(Bottleneck, MeshIsBottleneckFree) {
  Prng rng(1);
  const Machine m = make_mesh({12, 12});
  BottleneckOptions opt;
  opt.throughput.trials = 1;
  const BottleneckReport rep = measure_bottleneck_freeness(m, rng, opt);
  EXPECT_GT(rep.symmetric_rate, 0.0);
  EXPECT_EQ(rep.probes.size(), 9u);  // 3 fractions x 3 densities
  EXPECT_GT(rep.worst_ratio, 0.0);
  EXPECT_LT(rep.worst_ratio, 3.0);
}

TEST(Bottleneck, ProbesCarryTheirParameters) {
  Prng rng(2);
  const Machine m = make_tree(6);
  BottleneckOptions opt;
  opt.subset_fractions = {1.0, 0.5};
  opt.pair_densities = {1.0};
  opt.throughput.trials = 1;
  const BottleneckReport rep = measure_bottleneck_freeness(m, rng, opt);
  ASSERT_EQ(rep.probes.size(), 2u);
  EXPECT_DOUBLE_EQ(rep.probes[0].subset_fraction, 1.0);
  EXPECT_DOUBLE_EQ(rep.probes[1].subset_fraction, 0.5);
  for (const BottleneckProbe& p : rep.probes) {
    EXPECT_GT(p.rate, 0.0);
    EXPECT_NEAR(p.ratio_to_symmetric, p.rate / rep.symmetric_rate, 1e-12);
  }
}

TEST(Bottleneck, BusQuasiRateStillOne) {
  // The bus serializes everything; no subset can beat rate 1.
  Prng rng(3);
  const Machine m = make_global_bus(32);
  BottleneckOptions opt;
  opt.throughput.trials = 1;
  const BottleneckReport rep = measure_bottleneck_freeness(m, rng, opt);
  EXPECT_NEAR(rep.symmetric_rate, 1.0, 0.1);
  EXPECT_LT(rep.worst_ratio, 1.3);
}

TEST(Redundant, ReplicationOneMatchesLoadScaling) {
  Prng rng(4);
  const Machine guest = make_mesh({16, 16});
  const Machine host = make_mesh({8, 8});
  RedundantOptions opt;
  opt.replication = 1;
  opt.guest_steps = 2;
  const RedundantResult r = emulate_redundant(guest, host, rng, opt);
  EXPECT_EQ(r.max_load, 4u);
  EXPECT_GE(r.slowdown, 4.0);   // load bound
  EXPECT_NEAR(r.inefficiency, r.slowdown * 64.0 / 256.0, 1e-9);
}

TEST(Redundant, ReplicationMultipliesLoad) {
  Prng rng(5);
  const Machine guest = make_mesh({8, 8});
  const Machine host = make_mesh({8, 8});
  for (std::uint32_t rep : {1u, 2u, 4u}) {
    RedundantOptions opt;
    opt.replication = rep;
    opt.guest_steps = 2;
    const RedundantResult r = emulate_redundant(guest, host, rng, opt);
    EXPECT_EQ(r.replication, rep);
    EXPECT_EQ(r.max_load, rep);  // 64 guest vertices on 64/rep processors
  }
}

TEST(Redundant, CannotBeatBandwidthBound) {
  Prng rng(6);
  const Machine guest = make_debruijn(9);
  const Machine host = make_mesh({6, 6});
  const SlowdownBounds b =
      slowdown_bounds(Family::kDeBruijn, 1, 512.0, Family::kMesh, 2, 36.0);
  for (std::uint32_t rep : {1u, 2u, 4u}) {
    RedundantOptions opt;
    opt.replication = rep;
    opt.guest_steps = 2;
    const RedundantResult r = emulate_redundant(guest, host, rng, opt);
    EXPECT_GE(r.slowdown * 4.0, b.combined) << "r=" << rep;
  }
}

TEST(Redundant, ShrinksCommOnDistanceLimitedPairs) {
  Prng rng(7);
  // Few messages, long distances: a line guest spread over a large mesh.
  const Machine guest = make_linear_array(64);
  const Machine host = make_mesh({8, 8});
  RedundantOptions o1;
  o1.replication = 1;
  o1.guest_steps = 2;
  RedundantOptions o4 = o1;
  o4.replication = 4;
  const RedundantResult r1 = emulate_redundant(guest, host, rng, o1);
  const RedundantResult r4 = emulate_redundant(guest, host, rng, o4);
  // With 4 regions each a quarter of the mesh, messages stay inside a
  // region: per-step communication cannot exceed the r=1 case by more than
  // the compute increase, so slowdown grows at most ~r while the load is
  // exactly r-fold.
  EXPECT_EQ(r4.max_load, 4 * r1.max_load);
  EXPECT_LE(r4.slowdown, 4.0 * r1.slowdown + 4.0);
  EXPECT_GE(r4.inefficiency, r1.inefficiency * 0.9);
}

TEST(Redundant, ClampsReplicationToHostSize) {
  Prng rng(8);
  const Machine guest = make_linear_array(16);
  const Machine host = make_linear_array(4);
  RedundantOptions opt;
  opt.replication = 64;  // absurd; must clamp to 4 regions
  opt.guest_steps = 1;
  const RedundantResult r = emulate_redundant(guest, host, rng, opt);
  EXPECT_GT(r.host_time, 0u);
  EXPECT_LE(r.max_load, 4u * 16u);
}

TEST(Verified, StatesMatchAcrossPairs) {
  Prng rng(20);
  struct Case {
    Family gf;
    std::size_t gn;
    Family hf;
    std::size_t hn;
  };
  const Case cases[] = {
      {Family::kMesh, 64, Family::kMesh, 16},
      {Family::kDeBruijn, 128, Family::kLinearArray, 16},
      {Family::kXTree, 63, Family::kTree, 31},
      {Family::kCCC, 96, Family::kGlobalBus, 8},
  };
  for (const Case& c : cases) {
    const Machine guest = make_machine(c.gf, c.gn, 2, rng);
    const Machine host = make_machine(c.hf, c.hn, 2, rng);
    EmulationOptions opt;
    opt.guest_steps = 3;
    const VerifiedEmulation v = emulate_verified(guest, host, rng, opt);
    EXPECT_TRUE(v.states_match) << guest.name << " on " << host.name;
    EXPECT_GT(v.timing.host_time, 0u);
  }
}

TEST(Verified, AllPartitionStrategiesAreFaithful) {
  Prng rng(21);
  const Machine guest = make_mesh({8, 8});
  const Machine host = make_mesh({4, 4});
  for (auto s : {PartitionStrategy::kBlock, PartitionStrategy::kBfs,
                 PartitionStrategy::kRandom, PartitionStrategy::kMatched}) {
    EmulationOptions opt;
    opt.guest_steps = 2;
    opt.partition = s;
    const VerifiedEmulation v = emulate_verified(guest, host, rng, opt);
    EXPECT_TRUE(v.states_match) << partition_strategy_name(s);
  }
}

TEST(Verified, ChecksumDetectsMissingDependencies) {
  // Run the reference automaton directly and confirm checksums differ from
  // a deliberately poisoned run — i.e. the check has power.  (We poison by
  // comparing two different guests' checksums at equal sizes.)
  Prng rng(22);
  const Machine g1 = make_mesh({6, 6});
  const Machine g2 = make_torus({6, 6});
  const Machine host = make_mesh({6, 6});
  EmulationOptions opt;
  opt.guest_steps = 2;
  const VerifiedEmulation a = emulate_verified(g1, host, rng, opt);
  Prng rng2(22);  // same seed: same initial state
  const VerifiedEmulation b = emulate_verified(g2, host, rng2, opt);
  EXPECT_TRUE(a.states_match);
  EXPECT_TRUE(b.states_match);
  EXPECT_NE(a.guest_checksum, b.guest_checksum);
}

}  // namespace
}  // namespace netemu
