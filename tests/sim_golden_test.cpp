// Golden-value regression tests for the counting-sort packet simulator.
//
// The flat-bucket rewrite of PacketSimulator::run_batch is required to be
// bit-identical to the original per-tick-allocation implementation: same
// paths + same seed must give the same BatchStats.  The values below were
// captured from the pre-rewrite simulator (mesh 8x8, 3-dim butterfly,
// 5-level tree; all three arbitration policies; with and without a
// per-node forward cap) and pin that contract down.
//
// Also covered here: prepare()-vs-append() equivalence (the route-reuse
// path of batch doubling) and thread-count invariance of the parallel
// trial loop in measure_throughput.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "netemu/routing/bfs_router.hpp"
#include "netemu/routing/packet_sim.hpp"
#include "netemu/routing/throughput.hpp"
#include "netemu/topology/generators.hpp"
#include "netemu/util/prng.hpp"
#include "netemu/util/thread_pool.hpp"

namespace netemu {
namespace {

// Exactly the path-generation scheme the goldens were captured with: a
// spreading BFS router over a dedicated Prng, 4n random (src, dst) pairs.
std::vector<std::vector<Vertex>> golden_paths(const Machine& m,
                                              std::size_t count,
                                              std::uint64_t seed) {
  Prng rng(seed);
  BfsRouter router(m, /*spread=*/true);
  const std::size_t n = m.graph.num_vertices();
  std::vector<std::vector<Vertex>> paths;
  paths.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const Vertex src = static_cast<Vertex>(rng.below(n));
    const Vertex dst = static_cast<Vertex>(rng.below(n));
    paths.push_back(router.route(src, dst, rng));
  }
  return paths;
}

struct GoldenRow {
  const char* topology;
  Arbitration arbitration;
  bool capped;  // forward_cap = 1 on every node
  std::uint64_t makespan;
  std::uint64_t delivered;
  std::uint64_t total_hops;
  std::uint64_t static_congestion;
  double avg_latency;
};

// Captured from the pre-rewrite simulator at commit 42ecf76 (paths: scheme
// above with seed 12345; simulation rng seed 777 per run).
const GoldenRow kGolden[] = {
    {"mesh8x8", Arbitration::kFarthestFirst, false, 17, 256, 1342, 17,
     8.97265625},
    {"mesh8x8", Arbitration::kFifo, false, 22, 256, 1342, 17, 8.33984375},
    {"mesh8x8", Arbitration::kRandom, false, 21, 256, 1342, 17, 8.14453125},
    {"mesh8x8", Arbitration::kFarthestFirst, true, 50, 256, 1342, 17,
     25.02734375},
    {"mesh8x8", Arbitration::kFifo, true, 54, 256, 1342, 17, 19.5546875},
    {"mesh8x8", Arbitration::kRandom, true, 57, 256, 1342, 17, 19.21484375},
    {"butterfly3", Arbitration::kFarthestFirst, false, 16, 128, 436, 16,
     5.9453125},
    {"butterfly3", Arbitration::kFifo, false, 18, 128, 436, 16, 5.5703125},
    {"butterfly3", Arbitration::kRandom, false, 17, 128, 436, 16, 5.5859375},
    {"butterfly3", Arbitration::kFarthestFirst, true, 29, 128, 436, 16,
     15.578125},
    {"butterfly3", Arbitration::kFifo, true, 31, 128, 436, 16, 11.78125},
    {"butterfly3", Arbitration::kRandom, true, 29, 128, 436, 16, 11.671875},
    {"tree5", Arbitration::kFarthestFirst, false, 62, 252, 1618, 61,
     31.769841269841269},
    {"tree5", Arbitration::kFifo, false, 66, 252, 1618, 61,
     26.734126984126984},
    {"tree5", Arbitration::kRandom, false, 66, 252, 1618, 61,
     26.793650793650794},
    {"tree5", Arbitration::kFarthestFirst, true, 156, 252, 1618, 61,
     86.678571428571431},
    {"tree5", Arbitration::kFifo, true, 159, 252, 1618, 61,
     66.523809523809518},
    {"tree5", Arbitration::kRandom, true, 160, 252, 1618, 61,
     66.376984126984127},
};

Machine golden_machine(const std::string& name) {
  if (name == "mesh8x8") return make_mesh({8, 8});
  if (name == "butterfly3") return make_butterfly(3);
  return make_tree(5);
}

TEST(SimGolden, BatchStatsMatchPreRewriteSimulator) {
  // Build each topology's paths once; the goldens reuse them across the
  // capped/uncapped and arbitration variants (exactly as captured).
  std::string built_for;
  std::vector<std::vector<Vertex>> paths;
  for (const GoldenRow& row : kGolden) {
    Machine m = golden_machine(row.topology);
    const std::size_t n = m.graph.num_vertices();
    if (built_for != row.topology) {
      paths = golden_paths(m, 4 * n, 12345);
      built_for = row.topology;
    }
    if (row.capped) m.forward_cap.assign(n, 1);

    PacketSimulator sim(m, row.arbitration);
    Prng rng(777);
    const BatchStats s = sim.run_batch(paths, rng);
    SCOPED_TRACE(std::string(row.topology) + "/" +
                 arbitration_name(row.arbitration) +
                 (row.capped ? "/capped" : "/uncapped"));
    EXPECT_EQ(s.makespan, row.makespan);
    EXPECT_EQ(s.delivered, row.delivered);
    EXPECT_EQ(s.total_hops, row.total_hops);
    EXPECT_EQ(s.static_congestion, row.static_congestion);
    EXPECT_DOUBLE_EQ(s.avg_latency, row.avg_latency);
  }
}

TEST(SimGolden, PrepareAndAppendAgree) {
  const Machine m = make_mesh({8, 8});
  const auto paths = golden_paths(m, 4 * m.graph.num_vertices(), 12345);
  PacketSimulator sim(m);

  const auto prepared = sim.prepare(paths);

  // Append path-by-path (the batch-doubling top-up route) and via a split
  // prefix + suffix; both must match prepare() on every observable.
  PacketSimulator::PreparedBatch grown;
  grown = sim.prepare({});
  for (const auto& p : paths) sim.append(grown, p);
  EXPECT_EQ(grown.size(), prepared.size());
  EXPECT_EQ(grown.total_hops(), prepared.total_hops());
  EXPECT_EQ(grown.static_congestion(), prepared.static_congestion());

  auto half = sim.prepare(std::vector<std::vector<Vertex>>(
      paths.begin(), paths.begin() + static_cast<long>(paths.size() / 2)));
  for (std::size_t i = paths.size() / 2; i < paths.size(); ++i) {
    sim.append(half, paths[i]);
  }
  EXPECT_EQ(half.size(), prepared.size());
  EXPECT_EQ(half.static_congestion(), prepared.static_congestion());

  Prng rng_a(777), rng_b(777), rng_c(777);
  const BatchStats a = sim.run_batch(prepared, rng_a);
  const BatchStats b = sim.run_batch(grown, rng_b);
  const BatchStats c = sim.run_batch(half, rng_c);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

TEST(SimGolden, RunBatchIsSeedDeterministic) {
  // Same prepared batch + same seed => identical stats, including the
  // random arbitration policy (whose keys come from the passed rng).
  const Machine m = make_butterfly(3);
  const auto paths = golden_paths(m, 4 * m.graph.num_vertices(), 4242);
  for (const Arbitration a :
       {Arbitration::kFarthestFirst, Arbitration::kFifo,
        Arbitration::kRandom}) {
    PacketSimulator sim(m, a);
    const auto batch = sim.prepare(paths);
    Prng r1(9), r2(9);
    EXPECT_EQ(sim.run_batch(batch, r1), sim.run_batch(batch, r2));
  }
}

// --------------------------------------------------------------------------
// Thread-count invariance of the parallel trial loop.

ThroughputResult measure_with_threads(const Machine& m, std::size_t threads,
                                      unsigned trials) {
  ThreadPool pool(threads);
  BfsRouter router(m, /*spread=*/true);
  std::vector<Vertex> procs(m.graph.num_vertices());
  for (std::size_t i = 0; i < procs.size(); ++i) {
    procs[i] = static_cast<Vertex>(i);
  }
  const auto traffic = TrafficDistribution::symmetric(std::move(procs));
  ThroughputOptions opt;
  opt.trials = trials;
  opt.pool = &pool;
  Prng rng(31337);
  return measure_throughput(m, router, traffic, rng, opt);
}

TEST(SimGolden, ThroughputIsThreadCountInvariant) {
  const Machine m = make_mesh({8, 8});
  const ThroughputResult serial = [&] {
    BfsRouter router(m, /*spread=*/true);
    std::vector<Vertex> procs(m.graph.num_vertices());
    for (std::size_t i = 0; i < procs.size(); ++i) {
      procs[i] = static_cast<Vertex>(i);
    }
    const auto traffic = TrafficDistribution::symmetric(std::move(procs));
    ThroughputOptions opt;
    opt.trials = 6;
    opt.pool = nullptr;  // strictly serial reference order
    Prng rng(31337);
    return measure_throughput(m, router, traffic, rng, opt);
  }();
  ASSERT_EQ(serial.trial_rates.size(), 6u);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    SCOPED_TRACE(threads);
    const ThroughputResult r = measure_with_threads(m, threads, 6);
    EXPECT_EQ(r.trial_rates, serial.trial_rates);
    EXPECT_EQ(r.rate, serial.rate);
    EXPECT_EQ(r.rate_min, serial.rate_min);
    EXPECT_EQ(r.rate_max, serial.rate_max);
    EXPECT_EQ(r.messages, serial.messages);
    EXPECT_EQ(r.last, serial.last);
    EXPECT_EQ(r.total_ticks, serial.total_ticks);
  }
}

// --------------------------------------------------------------------------
// Cooperative cancellation: a token must never perturb the simulation it
// does not stop, and must stop one promptly when it fires.

TEST(SimGolden, NeverFiringCancelTokenIsBitIdentical) {
  // An armed-but-never-firing token takes the real amortized-check branch
  // on every quantum boundary; the stats must still match the goldens
  // exactly — cancellation checks may not draw randomness or reorder work.
  CancelSource source;
  source.set_deadline_after_ms(3'600'000);
  const CancelToken token = source.token();

  std::string built_for;
  std::vector<std::vector<Vertex>> paths;
  for (const GoldenRow& row : kGolden) {
    Machine m = golden_machine(row.topology);
    const std::size_t n = m.graph.num_vertices();
    if (built_for != row.topology) {
      paths = golden_paths(m, 4 * n, 12345);
      built_for = row.topology;
    }
    if (row.capped) m.forward_cap.assign(n, 1);

    PacketSimulator sim(m, row.arbitration);
    Prng rng(777);
    const BatchStats s = sim.run_batch(paths, rng, token);
    SCOPED_TRACE(std::string(row.topology) + "/" +
                 arbitration_name(row.arbitration) +
                 (row.capped ? "/capped" : "/uncapped"));
    EXPECT_EQ(s.makespan, row.makespan);
    EXPECT_EQ(s.delivered, row.delivered);
    EXPECT_EQ(s.total_hops, row.total_hops);
    EXPECT_EQ(s.static_congestion, row.static_congestion);
    EXPECT_DOUBLE_EQ(s.avg_latency, row.avg_latency);
  }
}

TEST(SimGolden, ThroughputWithNeverFiringTokenIsBitIdentical) {
  const Machine m = make_mesh({8, 8});
  const ThroughputResult plain = measure_with_threads(m, 4, 6);

  CancelSource source;
  source.set_deadline_after_ms(3'600'000);
  ThreadPool pool(4);
  BfsRouter router(m, /*spread=*/true);
  router.set_cancel_token(source.token());
  std::vector<Vertex> procs(m.graph.num_vertices());
  for (std::size_t i = 0; i < procs.size(); ++i) {
    procs[i] = static_cast<Vertex>(i);
  }
  const auto traffic = TrafficDistribution::symmetric(std::move(procs));
  ThroughputOptions opt;
  opt.trials = 6;
  opt.pool = &pool;
  opt.cancel = source.token();
  Prng rng(31337);
  const ThroughputResult r = measure_throughput(m, router, traffic, rng, opt);

  EXPECT_FALSE(r.degraded);
  EXPECT_EQ(r.trials_completed, 6u);
  EXPECT_EQ(r.trial_rates, plain.trial_rates);
  EXPECT_EQ(r.rate, plain.rate);
  EXPECT_EQ(r.last, plain.last);
  EXPECT_EQ(r.total_ticks, plain.total_ticks);
}

TEST(SimGolden, PreCancelledBatchNeverStartsSimulating) {
  const Machine m = make_mesh({4, 4});
  const auto paths = golden_paths(m, 32, 7);
  PacketSimulator sim(m);
  const auto batch = sim.prepare(paths);
  CancelSource source;
  source.request_cancel();
  Prng rng(1);
  const std::uint64_t before = simulated_ticks_total();
  EXPECT_THROW(sim.run_batch(batch, rng, source.token()), CancelledError);
  EXPECT_EQ(simulated_ticks_total(), before);  // zero ticks simulated
}

TEST(SimGolden, CancelStopsALongRunningBatchEarly) {
  // A capped tree serializes all cross-root traffic through one edge, so a
  // big batch runs for tens of thousands of ticks — long enough that the
  // cancel below always lands while the simulation is still going.
  Machine m = make_tree(5);
  const std::size_t n = m.graph.num_vertices();
  m.forward_cap.assign(n, 1);
  const auto paths = golden_paths(m, 300 * n, 12345);
  PacketSimulator sim(m);
  const auto batch = sim.prepare(paths);

  CancelSource source;
  std::atomic<bool> threw{false};
  std::thread runner([&] {
    Prng rng(777);
    try {
      sim.run_batch(batch, rng, source.token());
    } catch (const CancelledError&) {
      threw = true;
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const auto t0 = std::chrono::steady_clock::now();
  source.request_cancel();
  runner.join();
  const auto stop_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  EXPECT_TRUE(threw.load());
  // One check quantum is 4096 ticks; even with slack for scheduling, the
  // unwind is far quicker than the seconds the full batch would take.
  EXPECT_LT(stop_ms, 2000);
}

TEST(SimGolden, SimulatedTicksCounterAdvances) {
  const Machine m = make_mesh({4, 4});
  const auto paths = golden_paths(m, 32, 7);
  PacketSimulator sim(m);
  const auto batch = sim.prepare(paths);
  const std::uint64_t before = simulated_ticks_total();
  Prng rng(1);
  const BatchStats s = sim.run_batch(batch, rng);
  EXPECT_GE(simulated_ticks_total() - before, s.makespan);
}

}  // namespace
}  // namespace netemu
