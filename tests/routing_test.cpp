// Tests for the routing subsystem: per-family routers, path validity,
// the packet simulator's contention accounting, and the throughput meter.

#include <gtest/gtest.h>

#include <numeric>

#include "netemu/graph/algorithms.hpp"
#include "netemu/routing/bfs_router.hpp"
#include "netemu/routing/butterfly_router.hpp"
#include "netemu/routing/dimension_order.hpp"
#include "netemu/routing/packet_sim.hpp"
#include "netemu/routing/throughput.hpp"
#include "netemu/routing/tree_router.hpp"
#include "netemu/topology/factory.hpp"
#include "netemu/topology/generators.hpp"

namespace netemu {
namespace {

std::vector<Vertex> iota_procs(std::size_t n) {
  std::vector<Vertex> p(n);
  std::iota(p.begin(), p.end(), 0u);
  return p;
}

double measure_rate(const Machine& m, Prng& rng,
                    const ThroughputOptions& opt) {
  const auto traffic =
      TrafficDistribution::symmetric(iota_procs(m.graph.num_vertices()));
  const auto router = make_default_router(m);
  return measure_throughput(m, *router, traffic, rng, opt).rate;
}

// --------------------------------------------------------------------------
// Router validity across all families (parameterized sweep).

struct RouterCase {
  Family family;
  unsigned k;
};

class RouterValidity : public ::testing::TestWithParam<RouterCase> {};

TEST_P(RouterValidity, AllPairsPathsAreValidAndShortEnough) {
  Prng rng(99);
  const Machine m = make_machine(GetParam().family, 80, GetParam().k, rng);
  const auto router = make_default_router(m);
  const std::size_t n = m.graph.num_vertices();

  for (Vertex u = 0; u < n; ++u) {
    const auto dist = bfs_distances(m.graph, u);
    for (Vertex v = 0; v < n; ++v) {
      const auto path = router->route(u, v, rng);
      ASSERT_TRUE(path_is_valid(m.graph, path, u, v))
          << m.name << " " << u << "->" << v;
      // Specialized routers may be non-minimal but never more than the
      // graph's diameter + lg n slack on these small instances — except the
      // hierarchy router, which deliberately trades dilation Θ(n^{1/k}) for
      // base-mesh congestion.
      const bool hierarchical = m.family == Family::kPyramid ||
                                m.family == Family::kMultigrid;
      std::size_t limit = static_cast<std::size_t>(2 * dist[v] + 8);
      if (hierarchical) {
        limit = static_cast<std::size_t>(3 * m.dims * m.shape[0] + 16);
      } else if (m.family == Family::kShuffleExchange) {
        // The bit-serial walk always takes ~2d hops regardless of distance.
        limit = std::max(limit, static_cast<std::size_t>(2 * m.shape[0] + 2));
      } else if (m.family == Family::kXTree) {
        // The ring-spreading schedule deliberately takes lateral walks of
        // up to 2^depth hops to spread congestion across the level rings.
        limit = m.graph.num_vertices();
      }
      EXPECT_LE(path.size() - 1, limit) << m.name << " " << u << "->" << v;
    }
  }
}

std::vector<RouterCase> router_cases() {
  std::vector<RouterCase> cases;
  for (Family f : all_families()) {
    const unsigned kmax = family_is_dimensional(f) ? 2 : 1;
    for (unsigned k = 1; k <= kmax; ++k) cases.push_back({f, k});
  }
  return cases;
}

std::string router_case_name(const ::testing::TestParamInfo<RouterCase>& i) {
  return std::string(family_name(i.param.family)) + "_k" +
         std::to_string(i.param.k);
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, RouterValidity,
                         ::testing::ValuesIn(router_cases()),
                         router_case_name);

// --------------------------------------------------------------------------
// Specific router properties.

TEST(BfsRouter, ProducesShortestPaths) {
  Prng rng(1);
  const Machine m = make_machine(Family::kCCC, 64, 1, rng);
  BfsRouter router(m);
  for (Vertex u = 0; u < m.graph.num_vertices(); u += 3) {
    const auto dist = bfs_distances(m.graph, u);
    for (Vertex v = 0; v < m.graph.num_vertices(); v += 5) {
      const auto path = router.route(u, v, rng);
      EXPECT_EQ(path.size() - 1, dist[v]);
    }
  }
}

TEST(BfsRouter, SpreadRandomizesAmongShortestPaths) {
  Prng rng(2);
  const Machine m = make_mesh({5, 5});
  BfsRouter router(m, /*spread=*/true);
  // Corner to corner: many shortest paths; expect at least 3 distinct.
  std::set<std::vector<Vertex>> distinct;
  for (int i = 0; i < 50; ++i) distinct.insert(router.route(0, 24, rng));
  EXPECT_GE(distinct.size(), 3u);
  for (const auto& p : distinct) EXPECT_EQ(p.size() - 1, 8u);
}

TEST(BfsRouter, DeterministicModeIsStable) {
  Prng rng(3);
  const Machine m = make_mesh({4, 4});
  BfsRouter router(m, /*spread=*/false);
  const auto p1 = router.route(0, 15, rng);
  const auto p2 = router.route(0, 15, rng);
  EXPECT_EQ(p1, p2);
}

TEST(DimensionOrder, MinimalOnMesh) {
  Prng rng(4);
  const Machine m = make_mesh({6, 6});
  DimensionOrderRouter router(m);
  for (Vertex u = 0; u < 36; u += 5) {
    const auto dist = bfs_distances(m.graph, u);
    for (Vertex v = 0; v < 36; v += 7) {
      const auto path = router.route(u, v, rng);
      EXPECT_EQ(path.size() - 1, dist[v]);
    }
  }
}

TEST(DimensionOrder, TorusTakesShorterWay) {
  Prng rng(5);
  const Machine m = make_torus({8});
  DimensionOrderRouter router(m);
  const auto path = router.route(0, 6, rng);  // 0 -> 7 -> 6 around the wrap
  EXPECT_EQ(path.size() - 1, 2u);
}

TEST(DimensionOrder, XGridUsesDiagonals) {
  Prng rng(6);
  const Machine m = make_x_grid({5, 5});
  DimensionOrderRouter router(m);
  // (0,0) -> (4,4): 4 diagonal steps.
  const auto path = router.route(0, 24, rng);
  EXPECT_EQ(path.size() - 1, 4u);
  EXPECT_TRUE(path_is_valid(m.graph, path, 0, 24));
}

TEST(BitFix, MinimalOnHypercube) {
  Prng rng(7);
  const Machine m = make_hypercube(5);
  BitFixRouter router(m);
  for (Vertex u = 0; u < 32; u += 3) {
    for (Vertex v = 0; v < 32; v += 5) {
      const auto path = router.route(u, v, rng);
      EXPECT_EQ(path.size() - 1, std::popcount(u ^ v));
      EXPECT_TRUE(path_is_valid(m.graph, path, u, v));
    }
  }
}

TEST(DeBruijnShift, AtMostDHops) {
  Prng rng(8);
  const Machine m = make_debruijn(5);
  DeBruijnShiftRouter router(m);
  for (Vertex u = 0; u < 32; ++u) {
    for (Vertex v = 0; v < 32; ++v) {
      const auto path = router.route(u, v, rng);
      EXPECT_LE(path.size() - 1, 5u);
      EXPECT_TRUE(path_is_valid(m.graph, path, u, v));
    }
  }
}

TEST(TreeRouter, LcaPathsAreMinimal) {
  Prng rng(9);
  const Machine m = make_tree(4);
  TreeRouter router(m);
  for (Vertex u = 0; u < 31; u += 2) {
    const auto dist = bfs_distances(m.graph, u);
    for (Vertex v = 0; v < 31; v += 3) {
      const auto path = router.route(u, v, rng);
      EXPECT_EQ(path.size() - 1, dist[v]);
    }
  }
}

TEST(HierarchyRouter, BaseCellsUseDimensionOrder) {
  Prng rng(30);
  const Machine m = make_pyramid(2, 8);
  const auto router = make_default_router(m);
  // Base (0,0) -> base (7,7): pure base-mesh walk, 14 hops.
  const auto path = router->route(0, 63, rng);
  EXPECT_EQ(path.size() - 1, 14u);
  EXPECT_TRUE(path_is_valid(m.graph, path, 0, 63));
}

TEST(HierarchyRouter, CoarseNodesDescendCrossAscend) {
  Prng rng(31);
  for (const Machine& m : {make_pyramid(2, 8), make_multigrid(2, 8)}) {
    const auto router = make_default_router(m);
    const auto n = static_cast<Vertex>(m.graph.num_vertices());
    // Apex to apex-adjacent and coarse-to-coarse paths are valid walks.
    for (Vertex u = 64; u < n; u += 5) {
      for (Vertex v = 0; v < n; v += 7) {
        const auto path = router->route(u, v, rng);
        EXPECT_TRUE(path_is_valid(m.graph, path, u, v))
            << m.name << " " << u << "->" << v;
      }
    }
  }
}

TEST(HierarchyRouter, PyramidThroughputScalesLikeMesh) {
  Prng rng(32);
  ThroughputOptions opt;
  opt.trials = 2;
  const Machine small = make_pyramid(2, 16);   // 341 vertices
  const Machine large = make_pyramid(2, 32);   // 1365 vertices
  const double r_small = measure_rate(small, rng, opt);
  const double r_large = measure_rate(large, rng, opt);
  // Θ(sqrt(n)): quadrupling n should double the rate (within slack).
  EXPECT_GT(r_large / r_small, 1.4);
  EXPECT_LT(r_large / r_small, 3.0);
}

TEST(XTreeRouter, AllPairsValid) {
  Prng rng(40);
  const Machine m = make_x_tree(5);
  const auto router = make_default_router(m);
  for (Vertex u = 0; u < 63; ++u) {
    for (Vertex v = 0; v < 63; ++v) {
      const auto path = router->route(u, v, rng);
      ASSERT_TRUE(path_is_valid(m.graph, path, u, v)) << u << "->" << v;
    }
  }
}

TEST(XTreeRouter, SpreadsAcrossRings) {
  // Over many routings of the same far pair, several distinct crossing
  // depths must occur (the Θ(lg n) schedule's defining property).
  Prng rng(41);
  const Machine m = make_x_tree(5);
  const auto router = make_default_router(m);
  // Two deep leaves on opposite sides of the root.
  const Vertex u = 31, v = 62;
  std::set<Vertex> shallowest;  // minimum-depth vertex per path
  for (int i = 0; i < 60; ++i) {
    const auto path = router->route(u, v, rng);
    Vertex top = u;
    for (Vertex x : path) top = std::min(top, x);
    shallowest.insert(top);
  }
  EXPECT_GE(shallowest.size(), 3u);
}

TEST(XTreeRouter, ThroughputScalesWithLg) {
  Prng rng(42);
  ThroughputOptions opt;
  opt.trials = 2;
  const double r_small = measure_rate(make_x_tree(5), rng, opt);    // 63
  const double r_large = measure_rate(make_x_tree(9), rng, opt);    // 1023
  // Θ(lg n): 6 -> 10 levels should give ~1.7x.
  EXPECT_GT(r_large / r_small, 1.25);
  EXPECT_LT(r_large / r_small, 3.0);
}

TEST(ButterflyRouter, AllPairsValidAndLinearInD) {
  Prng rng(33);
  const Machine m = make_butterfly(4);  // 80 vertices
  const auto router = make_default_router(m);
  const std::size_t n = m.graph.num_vertices();
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = 0; v < n; ++v) {
      const auto path = router->route(u, v, rng);
      ASSERT_TRUE(path_is_valid(m.graph, path, u, v)) << u << "->" << v;
      EXPECT_LE(path.size() - 1, 4u * 4u);  // <= 4d hops
    }
  }
}

TEST(ButterflyRouter, SameRowStraightWalk) {
  Prng rng(34);
  const Machine m = make_butterfly(3);
  ButterflyRouter router(m);
  // (level 0, row 5) -> (level 3, row 5): straight edges only, 3 hops.
  const auto path = router.route(5, 3 * 8 + 5, rng);
  EXPECT_EQ(path.size() - 1, 3u);
}

TEST(ButterflyRouter, WorksOnMultibutterfly) {
  Prng rng(35);
  const Machine m = make_multibutterfly(4, rng, 1);
  const auto router = make_default_router(m);
  for (Vertex u = 0; u < m.graph.num_vertices(); u += 7) {
    for (Vertex v = 0; v < m.graph.num_vertices(); v += 5) {
      EXPECT_TRUE(path_is_valid(m.graph, router->route(u, v, rng), u, v));
    }
  }
}

TEST(ShuffleExchangeRouter, AllPairsValidAndShort) {
  Prng rng(36);
  const Machine m = make_shuffle_exchange(5);
  const auto router = make_default_router(m);
  for (Vertex u = 0; u < 32; ++u) {
    for (Vertex v = 0; v < 32; ++v) {
      const auto path = router->route(u, v, rng);
      ASSERT_TRUE(path_is_valid(m.graph, path, u, v)) << u << "->" << v;
      EXPECT_LE(path.size() - 1, 2u * 5u);
    }
  }
}

TEST(ValiantRouter, PathsValidThroughIntermediate) {
  Prng rng(37);
  const Machine m = make_mesh({6, 6});
  const auto valiant = make_valiant_router(m);
  for (int i = 0; i < 100; ++i) {
    const Vertex u = static_cast<Vertex>(rng.below(36));
    const Vertex v = static_cast<Vertex>(rng.below(36));
    EXPECT_TRUE(path_is_valid(m.graph, valiant->route(u, v, rng), u, v));
  }
}

TEST(ValiantRouter, SpreadsTransposeCongestion) {
  Prng rng(38);
  const Machine m = make_mesh({16, 16});
  std::vector<Vertex> procs(256);
  std::iota(procs.begin(), procs.end(), 0u);
  const auto transpose = TrafficDistribution::transpose(procs);
  const auto batch = transpose.batch(4096, rng);
  PacketSimulator sim(m);
  // Compare against a DETERMINISTIC base: randomized dimension-order
  // already spreads the transpose, so the classical Valiant win shows
  // against fixed shortest paths.
  BfsRouter direct(m, /*spread=*/false);
  ValiantRouter valiant(m, std::make_unique<BfsRouter>(m, false));
  auto congestion_of = [&](Router& r) {
    std::vector<std::vector<Vertex>> paths;
    for (const Message& msg : batch) {
      paths.push_back(r.route(msg.src, msg.dst, rng));
    }
    return sim.run_batch(paths, rng).static_congestion;
  };
  EXPECT_LT(congestion_of(valiant), congestion_of(direct));
}

TEST(BusRouter, ThroughHub) {
  Prng rng(10);
  const Machine m = make_global_bus(6);
  BusRouter router(m);
  const auto path = router.route(1, 4, rng);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[1], 6u);  // hub
}

// --------------------------------------------------------------------------
// Packet simulator semantics.

TEST(PacketSim, SingleMessageTakesPathLengthTicks) {
  Prng rng(11);
  const Machine m = make_linear_array(10);
  PacketSimulator sim(m);
  const BatchStats s = sim.run_batch({{0, 1, 2, 3, 4}}, rng);
  EXPECT_EQ(s.makespan, 4u);
  EXPECT_EQ(s.delivered, 1u);
  EXPECT_EQ(s.total_hops, 4u);
}

TEST(PacketSim, ZeroHopDeliversInstantly) {
  Prng rng(12);
  const Machine m = make_linear_array(4);
  PacketSimulator sim(m);
  const BatchStats s = sim.run_batch({{2}}, rng);
  EXPECT_EQ(s.makespan, 0u);
  EXPECT_EQ(s.delivered, 1u);
}

TEST(PacketSim, ContentionSerializesSharedChannel) {
  Prng rng(13);
  const Machine m = make_linear_array(3);
  PacketSimulator sim(m);
  // Three messages all needing channel 0->1 then 1->2.
  const std::vector<std::vector<Vertex>> paths(3, {0, 1, 2});
  const BatchStats s = sim.run_batch(paths, rng);
  // Pipeline: last message starts hop 1 at tick 3, arrives tick 4.
  EXPECT_EQ(s.makespan, 4u);
  EXPECT_EQ(s.static_congestion, 3u);
}

TEST(PacketSim, EdgeMultiplicityIsParallelWires) {
  Prng rng(14);
  MultigraphBuilder b(2);
  b.add_edge(0, 1, 3);
  Machine m;
  m.graph = std::move(b).build();
  m.name = "triple-wire";
  PacketSimulator sim(m);
  const std::vector<std::vector<Vertex>> paths(3, {0, 1});
  EXPECT_EQ(sim.run_batch(paths, rng).makespan, 1u);
  const std::vector<std::vector<Vertex>> paths6(6, {0, 1});
  EXPECT_EQ(sim.run_batch(paths6, rng).makespan, 2u);
}

TEST(PacketSim, NodeCapacityThrottles) {
  Prng rng(15);
  // Star with center 0 and leaves 1..4; center cap 1 -> serialize.
  MultigraphBuilder b(5);
  for (Vertex v = 1; v < 5; ++v) b.add_edge(0, v);
  Machine m;
  m.graph = std::move(b).build();
  m.forward_cap = {1, kUnlimitedForward, kUnlimitedForward,
                   kUnlimitedForward, kUnlimitedForward};
  PacketSimulator sim(m);
  // Four messages 1->0->2 etc: each needs the center twice... route
  // leaf->center->other-leaf; the center forwards one per tick.
  const std::vector<std::vector<Vertex>> paths{
      {1, 0, 2}, {2, 0, 3}, {3, 0, 4}, {4, 0, 1}};
  const BatchStats s = sim.run_batch(paths, rng);
  // First hops (into the center) are on distinct channels from distinct
  // nodes: tick 1.  Second hops all leave the center, cap 1: ticks 2..5.
  EXPECT_EQ(s.makespan, 5u);
}

TEST(PacketSim, FarthestFirstBeatsOrReachesFifoOnMixedBatch) {
  Prng rng(16);
  const Machine m = make_linear_array(16);
  // One long message plus many short ones crossing its path.
  std::vector<std::vector<Vertex>> paths;
  {
    std::vector<Vertex> longpath(16);
    std::iota(longpath.begin(), longpath.end(), 0u);
    paths.push_back(longpath);
    for (Vertex v = 0; v + 1 < 16; ++v) {
      paths.push_back({v, v + 1});
    }
  }
  PacketSimulator far(m, Arbitration::kFarthestFirst);
  PacketSimulator fifo(m, Arbitration::kFifo);
  Prng r1(17), r2(17);
  const auto s_far = far.run_batch(paths, r1);
  const auto s_fifo = fifo.run_batch(paths, r2);
  EXPECT_LE(s_far.makespan, s_fifo.makespan + 1);
}

TEST(PacketSim, RejectsPathWithMissingEdge) {
  Prng rng(18);
  const Machine m = make_linear_array(4);
  PacketSimulator sim(m);
  std::vector<std::vector<Vertex>> bad{{0, 2}};
  EXPECT_THROW(sim.run_batch(bad, rng), std::runtime_error);
}

TEST(PacketSim, MakespanAtLeastCongestionAndDilation) {
  // The flux lower bound of Lemma 8: T >= static congestion; also T >=
  // longest path.
  Prng rng(19);
  const Machine m = make_mesh({4, 4});
  PacketSimulator sim(m);
  const auto router = make_default_router(m);
  std::vector<std::vector<Vertex>> paths;
  for (int i = 0; i < 100; ++i) {
    const Vertex u = static_cast<Vertex>(rng.below(16));
    Vertex v = static_cast<Vertex>(rng.below(16));
    if (u == v) v = (v + 1) % 16;
    paths.push_back(router->route(u, v, rng));
  }
  const BatchStats s = sim.run_batch(paths, rng);
  std::size_t dilation = 0;
  for (const auto& p : paths) dilation = std::max(dilation, p.size() - 1);
  EXPECT_GE(s.makespan, s.static_congestion);
  EXPECT_GE(s.makespan, dilation);
  // Farthest-first greedy stays within a modest factor of the C+D bound.
  EXPECT_LE(s.makespan, 3 * (s.static_congestion + dilation));
}

// --------------------------------------------------------------------------
// Throughput meter.

TEST(Throughput, BusRateIsOne) {
  Prng rng(20);
  const Machine m = make_global_bus(16);
  const auto traffic = TrafficDistribution::symmetric(m.processors);
  const auto router = make_default_router(m);
  const ThroughputResult r = measure_throughput(m, *router, traffic, rng);
  // Every message crosses the hub, hub forwards 1/tick: rate -> 1.
  EXPECT_NEAR(r.rate, 1.0, 0.15);
}

TEST(Throughput, LinearArrayRateIsConstant) {
  Prng rng(21);
  ThroughputOptions opt;
  opt.trials = 2;
  for (std::size_t n : {32, 128}) {
    const Machine m = make_linear_array(n);
    const auto traffic =
        TrafficDistribution::symmetric(iota_procs(n));
    const auto router = make_default_router(m);
    const double rate =
        measure_throughput(m, *router, traffic, rng, opt).rate;
    // Θ(1): between 1 and 8 regardless of n.
    EXPECT_GT(rate, 1.0) << n;
    EXPECT_LT(rate, 8.0) << n;
  }
}

TEST(Throughput, MeshBeatsLinearArray) {
  Prng rng(22);
  ThroughputOptions opt;
  opt.trials = 2;
  const Machine line = make_linear_array(256);
  const Machine mesh = make_mesh({16, 16});
  const auto t1 = TrafficDistribution::symmetric(iota_procs(256));
  const auto r1 = make_default_router(line);
  const auto r2 = make_default_router(mesh);
  const double rate_line = measure_throughput(line, *r1, t1, rng, opt).rate;
  const double rate_mesh = measure_throughput(mesh, *r2, t1, rng, opt).rate;
  EXPECT_GT(rate_mesh, 3.0 * rate_line);
}

}  // namespace
}  // namespace netemu
