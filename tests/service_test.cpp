// Unit tests for the service subsystem: JSON wire format, cache-key
// canonicalization, the LRU + disk result cache, the single-flight
// executor, and a loopback server/client round trip.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <thread>
#include <vector>

#include "netemu/bandwidth/theory.hpp"
#include "netemu/emulation/host_size.hpp"
#include "netemu/service/client.hpp"
#include "netemu/service/executor.hpp"
#include "netemu/service/planner.hpp"
#include "netemu/service/protocol.hpp"
#include "netemu/service/query.hpp"
#include "netemu/service/result_cache.hpp"
#include "netemu/service/server.hpp"
#include "netemu/util/hash.hpp"
#include "netemu/util/json.hpp"

namespace netemu {
namespace {

// ---------------------------------------------------------------- JSON --

TEST(Json, ParseDumpRoundTrip) {
  const std::string text =
      R"({"a":[1,2.5,"x"],"b":{"nested":true},"c":null,"d":-3})";
  std::string error;
  const Json doc = Json::parse(text, &error);
  EXPECT_TRUE(error.empty()) << error;
  EXPECT_EQ(doc.dump(), text);
  EXPECT_DOUBLE_EQ(doc["a"].items()[1].as_number(), 2.5);
  EXPECT_TRUE(doc["b"]["nested"].as_bool());
  EXPECT_TRUE(doc["c"].is_null());
  EXPECT_EQ(doc["d"].as_int(), -3);
}

TEST(Json, ObjectKeysSerializeSorted) {
  const Json doc = Json::parse(R"({"zeta":1,"alpha":2,"mid":3})");
  EXPECT_EQ(doc.dump(), R"({"alpha":2,"mid":3,"zeta":1})");
}

TEST(Json, StringEscapes) {
  std::string error;
  const Json doc = Json::parse(R"({"s":"a\"b\\c\nAé"})", &error);
  EXPECT_TRUE(error.empty()) << error;
  EXPECT_EQ(doc["s"].as_string(), "a\"b\\c\nA\xc3\xa9");
  // Escapes survive a dump/reparse cycle.
  const Json again = Json::parse(doc.dump(), &error);
  EXPECT_TRUE(error.empty()) << error;
  EXPECT_EQ(again["s"].as_string(), doc["s"].as_string());
}

TEST(Json, IntegersDumpWithoutFraction) {
  Json doc = Json::object();
  doc["n"] = 1048576;
  doc["seed"] = std::uint64_t{123456789012345ULL};
  doc["x"] = 0.5;
  EXPECT_EQ(doc.dump(), R"({"n":1048576,"seed":123456789012345,"x":0.5})");
}

TEST(Json, RejectsMalformed) {
  std::string error;
  Json::parse("{\"a\":}", &error);
  EXPECT_FALSE(error.empty());
  Json::parse("[1,2", &error);
  EXPECT_FALSE(error.empty());
  Json::parse("{} trailing", &error);
  EXPECT_FALSE(error.empty());
}

// A daemon parses attacker-adjacent bytes straight off a socket, so the
// parser must reject — never mis-read, never crash on — every malformed
// shape we can think of.  Table-driven so new cases are one line.
TEST(Json, MalformedInputTable) {
  const struct {
    const char* text;
    const char* why;
  } kCases[] = {
      {"", "empty input"},
      {"   ", "whitespace only"},
      {"{", "unterminated object"},
      {"[", "unterminated array"},
      {"\"abc", "unterminated string"},
      {"{\"a\":1,}", "trailing comma in object"},
      {"[1,2,]", "trailing comma in array"},
      {"{\"a\" 1}", "missing colon"},
      {"{1:2}", "non-string key"},
      {"tru", "truncated literal true"},
      {"nul", "truncated literal null"},
      {"01", "leading zero"},
      {"+1", "leading plus"},
      {"-", "bare minus"},
      {"1.", "fraction without digits"},
      {".5", "bare leading dot"},
      {"1e", "exponent without digits"},
      {"1e+", "signed exponent without digits"},
      {"0x10", "hex number"},
      {"inf", "infinity literal"},
      {"nan", "nan literal"},
      {"{} x", "trailing garbage"},
      {"1 2", "two documents"},
      {"\"\\ud800\"", "unpaired high surrogate"},
      {"\"\\udc00\"", "unpaired low surrogate"},
      {"\"\\ud800\\u0041\"", "high surrogate followed by non-surrogate"},
      {"\"\\q\"", "unknown escape"},
      {"\"\\u12g4\"", "non-hex in unicode escape"},
      {"\"a\tb\"", "raw control character in string"},
  };
  for (const auto& c : kCases) {
    std::string error;
    const Json doc = Json::parse(c.text, &error);
    EXPECT_FALSE(error.empty()) << c.why << ": " << c.text;
    EXPECT_TRUE(doc.is_null()) << c.why << ": " << c.text;
  }
}

TEST(Json, DepthCapRejectsDeepNestingAcceptsShallow) {
  std::string deep;
  for (int i = 0; i < kJsonMaxDepth + 1; ++i) deep += '[';
  for (int i = 0; i < kJsonMaxDepth + 1; ++i) deep += ']';
  std::string error;
  Json::parse(deep, &error);
  EXPECT_FALSE(error.empty());

  std::string shallow;
  for (int i = 0; i < kJsonMaxDepth - 1; ++i) shallow += '[';
  for (int i = 0; i < kJsonMaxDepth - 1; ++i) shallow += ']';
  const Json ok = Json::parse(shallow, &error);
  EXPECT_TRUE(error.empty()) << error;
  EXPECT_TRUE(ok.is_array());
}

TEST(Json, StrictNumbersStillAcceptValidForms) {
  const struct {
    const char* text;
    double value;
  } kCases[] = {
      {"0", 0.0},           {"-0", 0.0},       {"10", 10.0},
      {"-3", -3.0},         {"0.5", 0.5},      {"1.25e2", 125.0},
      {"2E-2", 0.02},       {"1e3", 1000.0},
  };
  for (const auto& c : kCases) {
    std::string error;
    const Json doc = Json::parse(c.text, &error);
    EXPECT_TRUE(error.empty()) << c.text << ": " << error;
    EXPECT_DOUBLE_EQ(doc.as_number(), c.value) << c.text;
  }
}

// ----------------------------------------------------------- cache key --

Query must_parse(const std::string& text) {
  std::string error;
  const auto q = query_from_json(Json::parse(text), &error);
  EXPECT_TRUE(q.has_value()) << error << " for " << text;
  return *q;
}

TEST(CacheKey, FieldOrderInvariant) {
  const Query a = must_parse(
      R"({"op":"estimate","family":"Butterfly","n":64,"seed":7})");
  const Query b = must_parse(
      R"({"seed":7,"n":64,"family":"Butterfly","op":"estimate"})");
  EXPECT_EQ(a.cache_key(), b.cache_key());
}

TEST(CacheKey, DefaultsExplicitOrOmittedInvariant) {
  const Query spelled = must_parse(
      R"({"op":"estimate","family":"Butterfly","n":64,"seed":1,"trials":3,)"
      R"("router":"default","traffic":"symmetric",)"
      R"("arbitration":"farthest-first"})");
  const Query terse = must_parse(
      R"({"op":"estimate","family":"butterfly","n":64})");
  EXPECT_EQ(spelled.canonical_string(), terse.canonical_string());
  EXPECT_EQ(spelled.cache_key(), terse.cache_key());
}

TEST(CacheKey, FamilyNameCaseAndSuffix) {
  const Query suffixed =
      must_parse(R"({"op":"bandwidth","family":"mesh2","n":4096})");
  const Query explicit_k =
      must_parse(R"({"op":"bandwidth","family":"Mesh","k":2,"n":4096})");
  EXPECT_EQ(suffixed.cache_key(), explicit_k.cache_key());
}

TEST(CacheKey, GuestAliasMatchesFamily) {
  const Query guest = must_parse(
      R"({"op":"max_host","guest":"DeBruijn","host":"mesh2","n":1024})");
  const Query family = must_parse(
      R"({"op":"max_host","family":"DeBruijn","host":"Mesh","host_k":2,)"
      R"("n":1024})");
  EXPECT_EQ(guest.cache_key(), family.cache_key());
}

TEST(CacheKey, IrrelevantFieldsIgnoredPerKind) {
  // Seed cannot change a closed-form bandwidth lookup.
  const Query with_seed =
      must_parse(R"({"op":"bandwidth","family":"Tree","n":1024,"seed":99})");
  const Query without =
      must_parse(R"({"op":"bandwidth","family":"Tree","n":1024})");
  EXPECT_EQ(with_seed.cache_key(), without.cache_key());
  // deadline_ms is execution control, never part of the address.
  const Query slow = must_parse(
      R"({"op":"bandwidth","family":"Tree","n":1024,"deadline_ms":5})");
  EXPECT_EQ(slow.cache_key(), without.cache_key());
}

TEST(CacheKey, RelevantFieldsChangeKey) {
  const Query base =
      must_parse(R"({"op":"estimate","family":"Butterfly","n":64})");
  const Query other_seed =
      must_parse(R"({"op":"estimate","family":"Butterfly","n":64,"seed":2})");
  const Query other_n =
      must_parse(R"({"op":"estimate","family":"Butterfly","n":128})");
  const Query other_kind =
      must_parse(R"({"op":"bandwidth","family":"Butterfly","n":64})");
  EXPECT_NE(base.cache_key(), other_seed.cache_key());
  EXPECT_NE(base.cache_key(), other_n.cache_key());
  EXPECT_NE(base.cache_key(), other_kind.cache_key());
}

TEST(CacheKey, ParseRejectsBadRequests) {
  std::string error;
  EXPECT_FALSE(query_from_json(Json::parse(R"({"op":"nope"})"), &error));
  EXPECT_FALSE(query_from_json(
      Json::parse(R"({"op":"estimate","family":"NotAFamily"})"), &error));
  EXPECT_FALSE(query_from_json(
      Json::parse(R"({"op":"max_host","family":"Tree","n":64})"), &error));
  EXPECT_NE(error.find("host"), std::string::npos);
  EXPECT_FALSE(query_from_json(
      Json::parse(R"({"op":"estimate","family":"ccc3","n":64})"), &error));
  // A dimension suffix too large for unsigned must be a parse error, not a
  // std::stoul out_of_range crash.
  EXPECT_FALSE(query_from_json(
      Json::parse(
          R"({"op":"estimate","family":"mesh99999999999999999999","n":64})"),
      &error));
  EXPECT_NE(error.find("family"), std::string::npos);
  EXPECT_FALSE(query_from_json(
      Json::parse(R"({"op":"max_host","family":"tree","n":64,
                      "host":"mesh99999999999999999999"})"),
      &error));
}

TEST(CacheKey, Hex64RoundTrip) {
  const std::uint64_t v = 0xdeadbeef01234567ULL;
  EXPECT_EQ(hex64(v), "deadbeef01234567");
  std::uint64_t back = 0;
  EXPECT_TRUE(parse_hex64("deadbeef01234567", back));
  EXPECT_EQ(back, v);
  EXPECT_FALSE(parse_hex64("not-hex", back));
  EXPECT_FALSE(parse_hex64("", back));
}

// ----------------------------------------------------------- LRU cache --

TEST(ResultCache, LruEvictionAtCapacity) {
  ResultCache cache(3);
  cache.put(1, "one");
  cache.put(2, "two");
  cache.put(3, "three");
  cache.put(4, "four");  // evicts 1
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_FALSE(cache.get(1).has_value());
  EXPECT_EQ(cache.get(2).value(), "two");
}

TEST(ResultCache, GetRefreshesRecency) {
  ResultCache cache(2);
  cache.put(1, "one");
  cache.put(2, "two");
  EXPECT_TRUE(cache.get(1).has_value());  // 1 now hot, 2 cold
  cache.put(3, "three");                  // evicts 2
  EXPECT_TRUE(cache.get(1).has_value());
  EXPECT_FALSE(cache.get(2).has_value());
  EXPECT_TRUE(cache.get(3).has_value());
}

TEST(ResultCache, PutOverwritesInPlace) {
  ResultCache cache(2);
  cache.put(1, "old");
  cache.put(1, "new");
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.get(1).value(), "new");
}

TEST(ResultCache, HitMissCounters) {
  ResultCache cache(2);
  cache.put(1, "one");
  cache.get(1);
  cache.get(7);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(ResultCache, DiskRoundTrip) {
  const std::string path =
      testing::TempDir() + "netemu_cache_roundtrip.json";
  std::remove(path.c_str());
  {
    ResultCache cache(8, path);
    cache.put(0x11, R"({"beta":1})");
    cache.put(0x22, R"({"beta":2})");
    EXPECT_TRUE(cache.save());
  }
  ResultCache reloaded(8, path);
  EXPECT_TRUE(reloaded.load());
  EXPECT_EQ(reloaded.size(), 2u);
  EXPECT_EQ(reloaded.get(0x11).value(), R"({"beta":1})");
  EXPECT_EQ(reloaded.get(0x22).value(), R"({"beta":2})");
  std::remove(path.c_str());
}

TEST(ResultCache, LoadPreservesRecencyOrder) {
  const std::string path = testing::TempDir() + "netemu_cache_order.json";
  std::remove(path.c_str());
  {
    ResultCache cache(8, path);
    cache.put(1, "a");
    cache.put(2, "b");
    cache.put(3, "c");
    cache.get(1);  // order hot->cold: 1, 3, 2
    EXPECT_TRUE(cache.save());
  }
  ResultCache reloaded(2, path);  // capacity below file size: cold 2 dropped
  EXPECT_TRUE(reloaded.load());
  EXPECT_EQ(reloaded.size(), 2u);
  EXPECT_TRUE(reloaded.get(1).has_value());
  EXPECT_TRUE(reloaded.get(3).has_value());
  EXPECT_FALSE(reloaded.get(2).has_value());
  std::remove(path.c_str());
}

TEST(ResultCache, LoadedEntriesNeverDisplaceLiveOnes) {
  const std::string path = testing::TempDir() + "netemu_cache_merge.json";
  std::remove(path.c_str());
  {
    ResultCache cache(8, path);
    cache.put(10, "file-a");
    cache.put(20, "file-b");
    EXPECT_TRUE(cache.save());
  }
  ResultCache merged(2, path);
  merged.put(30, "live");
  merged.put(10, "live-overrides-file");
  EXPECT_TRUE(merged.load());
  EXPECT_EQ(merged.get(30).value(), "live");
  EXPECT_EQ(merged.get(10).value(), "live-overrides-file");
  EXPECT_FALSE(merged.get(20).has_value());  // no room, not evicted for it
  std::remove(path.c_str());
}

TEST(ResultCache, LoadMissingOrMalformedFileFails) {
  ResultCache cache(4, testing::TempDir() + "netemu_cache_missing.json");
  EXPECT_FALSE(cache.load());
  const std::string bad = testing::TempDir() + "netemu_cache_bad.json";
  {
    std::ofstream out(bad);
    out << "not json at all";
  }
  ResultCache cache2(4, bad);
  EXPECT_FALSE(cache2.load());
  std::remove(bad.c_str());
}

// ------------------------------------------------------------ executor --

Query estimate_query(double n, std::uint64_t seed = 1) {
  Query q;
  q.kind = QueryKind::kEstimate;
  q.family = Family::kButterfly;
  q.n = n;
  q.seed = seed;
  return q;
}

TEST(Executor, SingleFlightDedup) {
  auto invocations = std::make_shared<std::atomic<int>>(0);
  QueryExecutor::Options options;
  options.threads = 2;
  options.compute = [invocations](const Query&, const CancelToken&) {
    invocations->fetch_add(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    Json doc = Json::object();
    doc["value"] = 42;
    return doc;
  };
  QueryExecutor executor(std::move(options));

  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<Response> responses(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&executor, &responses, i] {
      responses[static_cast<std::size_t>(i)] =
          executor.execute(estimate_query(64));
    });
  }
  for (auto& t : threads) t.join();

  // However the threads interleaved, the computation ran exactly once.
  EXPECT_EQ(invocations->load(), 1);
  for (const Response& r : responses) {
    EXPECT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.result, R"({"value":42})");
  }
  const QueryExecutor::Stats s = executor.stats();
  EXPECT_EQ(s.computed, 1u);
  EXPECT_EQ(s.requests, static_cast<std::uint64_t>(kThreads));
  EXPECT_EQ(s.dedup_joins + s.cache_hits,
            static_cast<std::uint64_t>(kThreads - 1));
}

TEST(Executor, DistinctQueriesComputeIndependently) {
  auto invocations = std::make_shared<std::atomic<int>>(0);
  QueryExecutor::Options options;
  options.threads = 4;
  options.compute = [invocations](const Query& q, const CancelToken&) {
    invocations->fetch_add(1);
    Json doc = Json::object();
    doc["n"] = q.n;
    return doc;
  };
  QueryExecutor executor(std::move(options));
  const Response a = executor.execute(estimate_query(64));
  const Response b = executor.execute(estimate_query(128));
  const Response a_again = executor.execute(estimate_query(64));
  EXPECT_TRUE(a.ok && b.ok && a_again.ok);
  EXPECT_EQ(invocations->load(), 2);
  EXPECT_TRUE(a_again.cache_hit);
  EXPECT_EQ(a_again.result, a.result);
}

TEST(Executor, AdmissionQueueRejectsWhenFull) {
  auto started = std::make_shared<std::promise<void>>();
  auto gate = std::make_shared<std::promise<void>>();
  auto gate_future =
      std::make_shared<std::shared_future<void>>(gate->get_future());
  QueryExecutor::Options options;
  options.threads = 1;
  options.max_queue = 1;
  options.compute = [started, gate_future](const Query&, const CancelToken&) {
    started->set_value();
    gate_future->wait();
    return Json::object();
  };
  QueryExecutor executor(std::move(options));

  std::thread leader([&executor] {
    const Response r = executor.execute(estimate_query(64));
    EXPECT_TRUE(r.ok) << r.error;
  });
  started->get_future().wait();  // the one slot is now occupied

  const Response rejected = executor.execute(estimate_query(128));
  EXPECT_FALSE(rejected.ok);
  EXPECT_NE(rejected.error.find("overloaded"), std::string::npos);
  EXPECT_EQ(executor.stats().rejected, 1u);

  gate->set_value();
  leader.join();
}

TEST(Executor, DeadlineExceededButResultStillCached) {
  auto gate = std::make_shared<std::promise<void>>();
  auto gate_future =
      std::make_shared<std::shared_future<void>>(gate->get_future());
  QueryExecutor::Options options;
  options.threads = 1;
  options.compute = [gate_future](const Query&, const CancelToken&) {
    gate_future->wait();
    Json doc = Json::object();
    doc["late"] = true;
    return doc;
  };
  QueryExecutor executor(std::move(options));

  Query q = estimate_query(64);
  q.deadline_ms = 30;
  const Response timed_out = executor.execute(q);
  EXPECT_FALSE(timed_out.ok);
  EXPECT_NE(timed_out.error.find("deadline"), std::string::npos);
  EXPECT_EQ(executor.stats().deadline_exceeded, 1u);

  gate->set_value();
  // The abandoned flight still completes and fills the cache.
  for (int i = 0; i < 200; ++i) {
    if (executor.cache().get(q.cache_key())) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const Response cached = executor.execute(q);
  EXPECT_TRUE(cached.ok) << cached.error;
  EXPECT_TRUE(cached.cache_hit);
  EXPECT_EQ(cached.result, R"({"late":true})");
}

TEST(Executor, ComputeErrorsAreReportedAndNotCached) {
  auto invocations = std::make_shared<std::atomic<int>>(0);
  QueryExecutor::Options options;
  options.threads = 1;
  options.compute = [invocations](const Query&, const CancelToken&) -> Json {
    invocations->fetch_add(1);
    throw std::runtime_error("boom");
  };
  QueryExecutor executor(std::move(options));
  const Response first = executor.execute(estimate_query(64));
  EXPECT_FALSE(first.ok);
  EXPECT_NE(first.error.find("boom"), std::string::npos);
  const Response second = executor.execute(estimate_query(64));
  EXPECT_FALSE(second.ok);
  EXPECT_EQ(invocations->load(), 2);  // errors never poison the cache
  EXPECT_EQ(executor.stats().errors, 2u);
}

TEST(Executor, PersistsCacheAcrossInstances) {
  const std::string path = testing::TempDir() + "netemu_exec_persist.json";
  std::remove(path.c_str());
  Query q = estimate_query(64);
  {
    QueryExecutor::Options options;
    options.cache_file = path;
    options.compute = [](const Query&, const CancelToken&) {
      Json doc = Json::object();
      doc["expensive"] = true;
      return doc;
    };
    QueryExecutor executor(std::move(options));
    EXPECT_TRUE(executor.execute(q).ok);
  }  // destructor saves
  {
    QueryExecutor::Options options;
    options.cache_file = path;
    options.compute = [](const Query&, const CancelToken&) -> Json {
      throw std::runtime_error("should have been served from disk");
    };
    QueryExecutor executor(std::move(options));
    const Response r = executor.execute(q);
    EXPECT_TRUE(r.ok) << r.error;
    EXPECT_TRUE(r.cache_hit);
    EXPECT_EQ(r.result, R"({"expensive":true})");
  }
  std::remove(path.c_str());
}

// ------------------------------------------------------------- planner --

TEST(Planner, EstimateIsDeterministicInSeed) {
  Query q = estimate_query(64, 42);
  q.trials = 1;
  const std::string a = plan_estimate(q).dump();
  const std::string b = plan_estimate(q).dump();
  EXPECT_EQ(a, b);
  q.seed = 43;
  // A different seed is a different content address; the value may or may
  // not differ, but the document must still be well-formed.
  EXPECT_TRUE(plan_estimate(q).is_object());
}

TEST(Planner, EstimateExposesTrialSpread) {
  Query q = estimate_query(64, 7);
  q.trials = 4;
  const Json doc = plan_estimate(q);
  ASSERT_EQ(doc["trial_rates"].items().size(), 4u);
  double lo = 1e300, hi = -1e300;
  for (const Json& r : doc["trial_rates"].items()) {
    lo = std::min(lo, r.as_number());
    hi = std::max(hi, r.as_number());
  }
  EXPECT_DOUBLE_EQ(doc["beta_hat_min"].as_number(), lo);
  EXPECT_DOUBLE_EQ(doc["beta_hat_max"].as_number(), hi);
  EXPECT_LE(doc["beta_hat_min"].as_number(), doc["beta_hat"].as_number());
  EXPECT_GE(doc["beta_hat_max"].as_number(), doc["beta_hat"].as_number());
  EXPECT_GT(doc["simulated_ticks"].as_uint(), 0u);
}

TEST(Planner, BandwidthMatchesTheoryRegistry) {
  Query q;
  q.kind = QueryKind::kBandwidth;
  q.family = Family::kHypercube;
  q.n = 1024;
  const Json doc = plan_bandwidth(q);
  EXPECT_DOUBLE_EQ(doc["beta"]["value"].as_number(),
                   beta_theory(Family::kHypercube)(1024.0));
  EXPECT_EQ(doc["beta"]["theta"].as_string(),
            beta_theory(Family::kHypercube).theta_string());
}

TEST(Planner, MaxHostAgreesWithSolver) {
  Query q;
  q.kind = QueryKind::kMaxHost;
  q.family = Family::kDeBruijn;
  q.n = 1 << 20;
  q.host_family = Family::kMesh;
  q.host_k = 2;
  const Json doc = plan_query(q);
  const HostSizeEntry direct = max_host_size(
      Family::kDeBruijn, 2, q.n, HostSpec{Family::kMesh, 2});
  EXPECT_DOUBLE_EQ(doc["max_host_numeric"].as_number(), direct.numeric);
  EXPECT_EQ(doc["max_host_symbolic"].as_string(), direct.symbolic);
}

TEST(Planner, InfeasibleTrafficThrows) {
  Query q = estimate_query(64);
  q.family = Family::kTree;  // 2^(h+1)-1 vertices: never a power of two
  q.traffic = TrafficKind::kBitReversal;
  EXPECT_THROW(plan_estimate(q), std::runtime_error);
}

// ------------------------------------------------- protocol + loopback --

TEST(Protocol, HandlesControlOpsAndBadInput) {
  QueryExecutor::Options options;
  options.compute = [](const Query&, const CancelToken&) { return Json::object(); };
  QueryExecutor executor(std::move(options));

  const Json pong = Json::parse(handle_request_line(R"({"op":"ping"})",
                                                    executor));
  EXPECT_TRUE(pong["ok"].as_bool());
  EXPECT_TRUE(pong["result"]["pong"].as_bool());

  const Json bad = Json::parse(handle_request_line("{{{", executor));
  EXPECT_FALSE(bad["ok"].as_bool());
  EXPECT_NE(bad["error"].as_string().find("bad JSON"), std::string::npos);

  bool shutdown_requested = false;
  const Json down = Json::parse(handle_request_line(
      R"({"op":"shutdown"})", executor, &shutdown_requested));
  EXPECT_TRUE(down["ok"].as_bool());
  EXPECT_TRUE(shutdown_requested);
}

TEST(Protocol, HealthReportsComputeTimes) {
  QueryExecutor::Options options;
  options.compute = [](const Query&, const CancelToken&) { return Json::object(); };
  QueryExecutor executor(std::move(options));

  const Json before =
      Json::parse(handle_request_line(R"({"op":"health"})", executor));
  ASSERT_TRUE(before["ok"].as_bool());
  ASSERT_TRUE(before["result"]["compute"].is_object());
  EXPECT_EQ(before["result"]["compute"]["samples"].as_int(), 0);

  const Response r = executor.execute(estimate_query(64));
  ASSERT_TRUE(r.ok) << r.error;

  const Json after =
      Json::parse(handle_request_line(R"({"op":"health"})", executor));
  const Json& compute = after["result"]["compute"];
  EXPECT_EQ(compute["samples"].as_int(), 1);
  EXPECT_GE(compute["p50_us"].as_number(), 0.0);
  EXPECT_GE(compute["p95_us"].as_number(), compute["p50_us"].as_number());
  // The cumulative simulation-volume counter is process-wide and
  // monotonic; other tests may already have advanced it.
  EXPECT_GE(compute["sim_ticks_total"].as_uint(), 0u);
}

TEST(Server, LoopbackEndToEnd) {
  QueryExecutor executor;  // real planner
  Server::Options server_options;
  server_options.port = 0;  // ephemeral
  Server server(executor, server_options);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  Client client;
  ASSERT_TRUE(client.connect(server.port(), &error)) << error;

  const auto pong = client.request(Json::parse(R"({"op":"ping"})"), &error);
  ASSERT_TRUE(pong.has_value()) << error;
  EXPECT_TRUE((*pong)["ok"].as_bool());

  const Json query = Json::parse(
      R"({"op":"bandwidth","family":"Butterfly","n":4096})");
  const auto first = client.request(query, &error);
  ASSERT_TRUE(first.has_value()) << error;
  EXPECT_TRUE((*first)["ok"].as_bool());
  EXPECT_FALSE((*first)["cache_hit"].as_bool());

  const auto second = client.request(query, &error);
  ASSERT_TRUE(second.has_value()) << error;
  EXPECT_TRUE((*second)["ok"].as_bool());
  EXPECT_TRUE((*second)["cache_hit"].as_bool());
  EXPECT_EQ((*second)["result"].dump(), (*first)["result"].dump());

  const auto stats = client.request(Json::parse(R"({"op":"stats"})"), &error);
  ASSERT_TRUE(stats.has_value()) << error;
  EXPECT_EQ((*stats)["result"]["computed"].as_int(), 1);

  // Client-initiated shutdown stops the daemon.
  const auto down =
      client.request(Json::parse(R"({"op":"shutdown"})"), &error);
  ASSERT_TRUE(down.has_value()) << error;
  server.wait();
  EXPECT_FALSE(server.running());
}

TEST(Server, ManyConcurrentConnections) {
  QueryExecutor::Options options;
  options.compute = [](const Query& q, const CancelToken&) {
    Json doc = Json::object();
    doc["n"] = q.n;
    return doc;
  };
  QueryExecutor executor(std::move(options));
  Server::Options server_options;
  server_options.port = 0;
  Server server(executor, server_options);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  constexpr int kClients = 8;
  constexpr int kRequests = 50;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&server, &failures, c] {
      Client client;
      if (!client.connect(server.port())) {
        failures.fetch_add(kRequests);
        return;
      }
      for (int i = 0; i < kRequests; ++i) {
        Json query = Json::object();
        query["op"] = "estimate";
        query["family"] = "Butterfly";
        query["n"] = 64 + (c + i) % 4;  // a few distinct addresses
        std::string response;
        if (!client.request_raw(query.dump(), response) ||
            response.find("\"ok\":true") == std::string::npos) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  server.stop();
  EXPECT_EQ(failures.load(), 0);
  const QueryExecutor::Stats s = executor.stats();
  EXPECT_EQ(s.requests, static_cast<std::uint64_t>(kClients * kRequests));
  // Only 4 distinct content addresses exist; everything else was served
  // from cache or joined a flight.
  EXPECT_EQ(s.computed, 4u);
}

// ----------------------------------------------- adversarial framing --
// The epoll plane frames request lines incrementally from whatever byte
// boundaries the kernel delivers; these tests drive the framer with raw
// sockets at its worst-case boundaries.

/// Raw loopback TCP connection (no LineChannel: the tests control the exact
/// bytes and boundaries on the wire).
class RawConn {
 public:
  explicit RawConn(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool ok() const { return fd_ >= 0; }

  bool send_all(const std::string& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n =
          ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Stop sending but keep reading (half-close).
  void shutdown_write() { ::shutdown(fd_, SHUT_WR); }

  /// Read up to the next '\n'; empty string on EOF/error before one.
  std::string read_line() {
    std::string line;
    for (;;) {
      const auto nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return std::string();
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  /// True when the peer has closed (a clean EOF with no pending bytes).
  bool read_eof() {
    char chunk[64];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    return n == 0;
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

/// A server over an executor whose compute echoes n (cheap + verifiable).
struct EchoServer {
  explicit EchoServer(Server::Options options = {}) {
    QueryExecutor::Options exec_options;
    exec_options.compute = [](const Query& q, const CancelToken&) {
      Json doc = Json::object();
      doc["n"] = q.n;
      return doc;
    };
    executor = std::make_unique<QueryExecutor>(std::move(exec_options));
    options.port = 0;
    server = std::make_unique<Server>(*executor, options);
    std::string error;
    started = server->start(&error);
  }
  std::unique_ptr<QueryExecutor> executor;
  std::unique_ptr<Server> server;
  bool started = false;
};

TEST(ServerFraming, SlowlorisByteAtATime) {
  EchoServer s;
  ASSERT_TRUE(s.started);
  RawConn conn(s.server->port());
  ASSERT_TRUE(conn.ok());

  // One byte per segment: the framer must accumulate across reads and only
  // answer at the newline.  Two requests back to back prove the connection
  // state survives the first.
  const std::string request =
      R"({"op":"estimate","family":"Butterfly","n":64})" "\n";
  for (int round = 0; round < 2; ++round) {
    for (const char c : request) {
      ASSERT_TRUE(conn.send_all(std::string(1, c)));
    }
    const Json response = Json::parse(conn.read_line());
    EXPECT_TRUE(response["ok"].as_bool());
    EXPECT_EQ(response["result"]["n"].as_int(), 64);
  }
}

TEST(ServerFraming, PipelinedRequestsInOneSegment) {
  EchoServer s;
  ASSERT_TRUE(s.started);
  RawConn conn(s.server->port());
  ASSERT_TRUE(conn.ok());

  // Many requests in ONE send: the framer must split them and answer each
  // in request order even though some hit cache (inline fast path) and some
  // compute (offload pool) — the ordering guarantee is what's under test.
  constexpr int kRequests = 32;
  std::string burst;
  for (int i = 0; i < kRequests; ++i) {
    Json query = Json::object();
    query["op"] = "estimate";
    query["family"] = "Butterfly";
    query["n"] = 64 << (i % 3);  // 3 addresses: repeats become cache hits
    burst += query.dump();
    burst += '\n';
  }
  ASSERT_TRUE(conn.send_all(burst));
  for (int i = 0; i < kRequests; ++i) {
    const Json response = Json::parse(conn.read_line());
    ASSERT_TRUE(response["ok"].as_bool()) << "response " << i;
    EXPECT_EQ(response["result"]["n"].as_int(), 64 << (i % 3))
        << "response " << i << " out of order";
  }
}

TEST(ServerFraming, OverlongLineAnswersProtocolErrorAndResyncs) {
  Server::Options options;
  options.max_line = 128;
  EchoServer s(options);
  ASSERT_TRUE(s.started);
  RawConn conn(s.server->port());
  ASSERT_TRUE(conn.ok());

  // An overlong line — delivered in several segments so the framer enters
  // and leaves discard mode — answers protocol_error; the next request on
  // the same connection still works (the stream re-synced at the newline).
  const std::string junk(512, 'x');
  ASSERT_TRUE(conn.send_all(junk));
  ASSERT_TRUE(conn.send_all(junk));
  ASSERT_TRUE(conn.send_all("\n"));
  const Json error_response = Json::parse(conn.read_line());
  EXPECT_FALSE(error_response["ok"].as_bool());
  EXPECT_NE(error_response["error"].as_string().find("exceeds"),
            std::string::npos);

  ASSERT_TRUE(conn.send_all("{\"op\":\"ping\"}\n"));
  const Json pong = Json::parse(conn.read_line());
  EXPECT_TRUE(pong["ok"].as_bool());
  EXPECT_TRUE(pong["result"]["pong"].as_bool());
}

TEST(ServerFraming, HalfCloseAfterCompleteRequestStillAnswered) {
  EchoServer s;
  ASSERT_TRUE(s.started);
  RawConn conn(s.server->port());
  ASSERT_TRUE(conn.ok());

  // shutdown(SHUT_WR) right behind a complete request: the server sees EOF
  // with a framed request still queued — it must answer it, flush, and only
  // then close.
  ASSERT_TRUE(conn.send_all(
      R"({"op":"estimate","family":"Butterfly","n":128})" "\n"));
  conn.shutdown_write();
  const Json response = Json::parse(conn.read_line());
  EXPECT_TRUE(response["ok"].as_bool());
  EXPECT_EQ(response["result"]["n"].as_int(), 128);
  EXPECT_TRUE(conn.read_eof());
}

TEST(ServerFraming, HalfCloseMidRequestGetsNoAnswer) {
  EchoServer s;
  ASSERT_TRUE(s.started);
  RawConn conn(s.server->port());
  ASSERT_TRUE(conn.ok());

  // A torn request (no newline) then EOF: same semantics as the blocking
  // plane's LineChannel — the tail is dropped, no response, clean close.
  ASSERT_TRUE(conn.send_all(R"({"op":"estimate","family":"Butter)"));
  conn.shutdown_write();
  EXPECT_TRUE(conn.read_eof());
}

// ---------------------------------------------------- connection churn --

/// Parse a numeric field ("Threads:", "VmRSS:") out of /proc/self/status.
long proc_status_value(const std::string& field) {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind(field, 0) == 0) {
      return std::strtol(line.c_str() + field.size(), nullptr, 10);
    }
  }
  return -1;
}

TEST(ServerChurn, SequentialConnectionsStayBounded) {
  EchoServer s;
  ASSERT_TRUE(s.started);

  // Warm up: let every lazily-spawned thread (shards, offload pool) exist
  // before the baseline measurement.
  {
    RawConn warm(s.server->port());
    ASSERT_TRUE(warm.ok());
    ASSERT_TRUE(warm.send_all("{\"op\":\"ping\"}\n"));
    EXPECT_FALSE(warm.read_line().empty());
  }
  const long threads_before = proc_status_value("Threads:");
  const long rss_before_kb = proc_status_value("VmRSS:");
  ASSERT_GT(threads_before, 0);

  // Thousands of open/request/close cycles: connections must not leak
  // threads (the epoll plane never spawns per connection) or memory
  // (per-connection state is freed on close).
  constexpr int kChurn = 2000;
  for (int i = 0; i < kChurn; ++i) {
    RawConn conn(s.server->port());
    ASSERT_TRUE(conn.ok()) << "connect " << i << " failed";
    if (i % 16 == 0) {  // a request on some keeps the framer in the loop
      ASSERT_TRUE(conn.send_all("{\"op\":\"ping\"}\n"));
      EXPECT_FALSE(conn.read_line().empty());
    }
  }

  const long threads_after = proc_status_value("Threads:");
  const long rss_after_kb = proc_status_value("VmRSS:");
  EXPECT_EQ(threads_after, threads_before)
      << "connection churn changed the thread count";
  // Generous bound (sanitizer builds have noisy RSS): churn must not
  // accumulate per-connection state.
  EXPECT_LT(rss_after_kb - rss_before_kb, 128 * 1024)
      << "RSS grew by " << (rss_after_kb - rss_before_kb) << " kB over "
      << kChurn << " connections";
}

}  // namespace
}  // namespace netemu
