// Focused tests for paths the broader suites exercise only incidentally:
// cache behavior, option plumbing, degenerate sizes, and output formats.

#include <gtest/gtest.h>

#include <numeric>

#include "netemu/bandwidth/empirical.hpp"
#include "netemu/graph/io.hpp"
#include "netemu/routing/bfs_router.hpp"
#include "netemu/routing/throughput.hpp"
#include "netemu/topology/factory.hpp"
#include "netemu/topology/generators.hpp"
#include "netemu/util/table.hpp"

namespace netemu {
namespace {

std::vector<Vertex> iota_procs(std::size_t n) {
  std::vector<Vertex> p(n);
  std::iota(p.begin(), p.end(), 0u);
  return p;
}

TEST(BfsRouterCache, EvictsWhenOverBudget) {
  Prng rng(1);
  const Machine m = make_ccc(4);  // 64 vertices
  // Budget for exactly one distance field: 64 entries * 2 bytes.
  BfsRouter router(m, true, 64 * sizeof(std::uint16_t));
  for (Vertex dst = 0; dst < 16; ++dst) {
    const auto path = router.route(0, dst, rng);
    EXPECT_TRUE(path_is_valid(m.graph, path, 0, dst));
  }
}

TEST(BfsRouterCache, ThrowsOnUnreachable) {
  Prng rng(2);
  MultigraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  Machine m;
  m.graph = std::move(b).build();
  BfsRouter router(m);
  EXPECT_THROW(router.route(0, 3, rng), std::runtime_error);
}

TEST(Throughput, GrowsBatchUntilMakespanFloor) {
  Prng rng(3);
  const Machine m = make_hypercube(6);  // fast machine, tiny batches drain
  const auto traffic = TrafficDistribution::symmetric(iota_procs(64));
  const auto router = make_default_router(m);
  ThroughputOptions opt;
  opt.messages_per_processor = 1;
  opt.min_makespan = 200;
  opt.trials = 1;
  const ThroughputResult r = measure_throughput(m, *router, traffic, rng, opt);
  // The meter must have grown the batch well past 64 messages.
  EXPECT_GE(r.messages, 2048u);
  EXPECT_GE(r.last.makespan, 200u);
}

TEST(Throughput, RespectsMaxMessagesCap) {
  Prng rng(4);
  const Machine m = make_hypercube(5);
  const auto traffic = TrafficDistribution::symmetric(iota_procs(32));
  const auto router = make_default_router(m);
  ThroughputOptions opt;
  opt.messages_per_processor = 1;
  opt.min_makespan = 1u << 30;  // unreachable floor
  opt.max_messages = 2048;
  opt.trials = 1;
  const ThroughputResult r = measure_throughput(m, *router, traffic, rng, opt);
  EXPECT_EQ(r.messages, 2048u);
}

TEST(MeasureBeta, WeakCapsTightenFluxBound) {
  Prng rng(5);
  const Machine weak = make_hypercube(6);
  Machine strong = weak;
  strong.forward_cap.clear();
  BetaMeasureOptions opt;
  opt.throughput.trials = 1;
  const BetaBounds bw = measure_beta(weak, rng, opt);
  const BetaBounds bs = measure_beta(strong, rng, opt);
  // Same wires, same cut — but the weak flux bound counts node ports.
  EXPECT_EQ(bw.cut_upper, bs.cut_upper);
  EXPECT_LT(bw.flux_upper, bs.flux_upper);
}

TEST(Table, PadsShortRowsAndGrowsWide) {
  Table t({"a"});
  t.add_row({"1", "2", "3"});
  t.add_row({});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| 1 | 2 | 3 |"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Dot, MultiplicityLabels) {
  MultigraphBuilder b(2);
  b.add_edge(0, 1, 4);
  const std::string dot = to_dot(std::move(b).build());
  EXPECT_NE(dot.find("[label=\"x4\"]"), std::string::npos);
}

TEST(Factory, DimensionalFamiliesHonorK) {
  Prng rng(6);
  for (unsigned k = 1; k <= 3; ++k) {
    const Machine m = make_machine(Family::kMesh, 512, k, rng);
    EXPECT_EQ(m.dims, k);
    EXPECT_EQ(m.shape.size(), k);
  }
}

TEST(Factory, TinyTargetsStillLegal) {
  Prng rng(7);
  for (Family f : all_families()) {
    const Machine m = make_machine(f, 8, 2, rng);
    EXPECT_GE(m.graph.num_vertices(), 2u) << family_name(f);
  }
}

TEST(Machine, ProcessorAccessorsAgree) {
  Prng rng(8);
  const Machine bus = make_global_bus(5);
  EXPECT_EQ(bus.num_processors(), 5u);
  EXPECT_EQ(bus.processor(2), 2u);
  const Machine mesh = make_mesh({3, 3});
  EXPECT_EQ(mesh.num_processors(), 9u);
  EXPECT_EQ(mesh.processor(7), 7u);  // identity when processors empty
}

TEST(Simple, DropIsolatedMultiplicitySemantics) {
  // scaled() then simple() round-trips the support.
  MultigraphBuilder b(3);
  b.add_edge(0, 1, 2);
  b.add_edge(1, 2, 5);
  const Multigraph g = std::move(b).build();
  const Multigraph s = g.scaled(7).simple();
  EXPECT_EQ(s.num_edges(), g.num_edges());
  EXPECT_EQ(s.total_multiplicity(), 2u);
}

TEST(PacketSim, RandomArbitrationIsSeedDeterministic) {
  Prng rng1(99), rng2(99);
  const Machine m = make_mesh({4, 4});
  const auto router = make_default_router(m);
  std::vector<std::vector<Vertex>> paths;
  Prng prng(5);
  for (int i = 0; i < 200; ++i) {
    const Vertex u = static_cast<Vertex>(prng.below(16));
    Vertex v = static_cast<Vertex>(prng.below(16));
    if (u == v) v = (v + 1) % 16;
    paths.push_back(router->route(u, v, prng));
  }
  PacketSimulator sim(m, Arbitration::kRandom);
  const BatchStats a = sim.run_batch(paths, rng1);
  const BatchStats b = sim.run_batch(paths, rng2);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.avg_latency, b.avg_latency);
}

TEST(QuasiSymmetric, DeterministicUnderSubsetSeed) {
  const auto d1 =
      TrafficDistribution::quasi_symmetric(iota_procs(32), 0.4, 1234);
  const auto d2 =
      TrafficDistribution::quasi_symmetric(iota_procs(32), 0.4, 1234);
  for (std::size_t i = 0; i < 32; ++i) {
    for (std::size_t j = 0; j < 32; ++j) {
      if (i != j) {
        EXPECT_EQ(d1.pair_allowed(i, j), d2.pair_allowed(i, j));
      }
    }
  }
}

TEST(Generators, MinimumSizes) {
  // The smallest legal instance of each parametric generator stands up.
  EXPECT_EQ(make_linear_array(1).graph.num_vertices(), 1u);
  EXPECT_EQ(make_ring(3).graph.num_edges(), 3u);
  EXPECT_EQ(make_tree(1).graph.num_vertices(), 3u);
  EXPECT_EQ(make_x_tree(1).graph.num_edges(), 3u);
  EXPECT_EQ(make_mesh({2}).graph.num_edges(), 1u);
  EXPECT_EQ(make_butterfly(1).graph.num_vertices(), 4u);
  EXPECT_EQ(make_debruijn(2).graph.num_vertices(), 4u);
  EXPECT_EQ(make_ccc(2).graph.num_vertices(), 8u);
  EXPECT_EQ(make_hypercube(1).graph.num_edges(), 1u);
  EXPECT_EQ(make_mesh_of_trees(1, 2).graph.num_vertices(), 3u);
  EXPECT_EQ(make_multigrid(1, 2).graph.num_vertices(), 3u);
  EXPECT_EQ(make_pyramid(1, 2).graph.num_vertices(), 3u);
}

TEST(Generators, PyramidVsMultigridDiffer) {
  // Same vertex count, different wiring: the pyramid links every fine cell
  // to a parent; the multigrid only the corner cells.
  const Machine p = make_pyramid(2, 8);
  const Machine m = make_multigrid(2, 8);
  EXPECT_EQ(p.graph.num_vertices(), m.graph.num_vertices());
  EXPECT_GT(p.graph.num_edges(), m.graph.num_edges());
}

TEST(WeakPPN, RootSerializesPrefixTraffic) {
  Prng rng(9);
  const Machine m = make_weak_ppn(4);
  const auto traffic = TrafficDistribution::symmetric(m.processors);
  const auto router = make_default_router(m);
  ThroughputOptions opt;
  opt.trials = 1;
  const double rate = measure_throughput(m, *router, traffic, rng, opt).rate;
  // Θ(1): the root edge pair bounds everything.
  EXPECT_LT(rate, 6.0);
  EXPECT_GT(rate, 0.5);
}

}  // namespace
}  // namespace netemu
