// Unit tests for the cut subsystem: exact bisection, Kernighan-Lin, spectral
// lower bound.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "netemu/cut/bisection.hpp"
#include "netemu/cut/spectral.hpp"
#include "netemu/topology/generators.hpp"

namespace netemu {
namespace {

Multigraph path_graph(std::size_t n) {
  MultigraphBuilder b(n);
  for (Vertex v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  return std::move(b).build();
}

TEST(CutValue, CountsMultiplicity) {
  MultigraphBuilder b(4);
  b.add_edge(0, 1, 3);
  b.add_edge(2, 3, 5);
  b.add_edge(1, 2, 1);
  Multigraph g = std::move(b).build();
  EXPECT_EQ(cut_value(g, {true, true, false, false}), 1u);
  EXPECT_EQ(cut_value(g, {true, false, true, false}), 9u);
}

TEST(ExactBisection, PathHasWidthOne) {
  const Bisection b = exact_bisection(path_graph(10));
  EXPECT_EQ(b.width, 1u);
}

TEST(ExactBisection, CycleHasWidthTwo) {
  MultigraphBuilder bd(12);
  for (Vertex v = 0; v < 12; ++v) bd.add_edge(v, (v + 1) % 12);
  const Bisection b = exact_bisection(std::move(bd).build());
  EXPECT_EQ(b.width, 2u);
}

TEST(ExactBisection, CompleteGraph) {
  // K6 bisection: 3x3 edges = 9.
  MultigraphBuilder bd(6);
  for (Vertex i = 0; i < 6; ++i) {
    for (Vertex j = i + 1; j < 6; ++j) bd.add_edge(i, j);
  }
  EXPECT_EQ(exact_bisection(std::move(bd).build()).width, 9u);
}

TEST(ExactBisection, SidesAreBalanced) {
  const Bisection b = exact_bisection(path_graph(11));
  const auto count =
      std::count(b.side.begin(), b.side.end(), true);
  EXPECT_TRUE(count == 5 || count == 6);
  EXPECT_EQ(cut_value(path_graph(11), b.side), b.width);
}

TEST(ExactBisection, Mesh4x4) {
  // 4x4 mesh has bisection width 4 (cut down the middle).
  const Machine m = make_mesh({4, 4});
  EXPECT_EQ(exact_bisection(m.graph).width, 4u);
}

TEST(KlBisection, MatchesExactOnSmallGraphs) {
  Prng rng(17);
  for (std::size_t n : {8, 12, 16}) {
    const Machine m = make_mesh({static_cast<std::uint32_t>(n / 4), 4});
    const Bisection exact = exact_bisection(m.graph);
    const Bisection kl = kl_bisection(m.graph, rng, 16);
    EXPECT_EQ(kl.width, exact.width) << "n=" << n;
  }
}

TEST(KlBisection, BalancedAndConsistent) {
  Prng rng(19);
  const Machine m = make_mesh({8, 8});
  const Bisection b = kl_bisection(m.graph, rng, 8);
  const auto count = std::count(b.side.begin(), b.side.end(), true);
  EXPECT_EQ(count, 32);
  EXPECT_EQ(cut_value(m.graph, b.side), b.width);
  // True width is 8; KL should land at or near it.
  EXPECT_LE(b.width, 12u);
  EXPECT_GE(b.width, 8u);
}

TEST(KlBisection, MeshScalesLikeSide) {
  Prng rng(23);
  const Bisection b16 = kl_bisection(make_mesh({16, 16}).graph, rng, 8);
  const Bisection b32 = kl_bisection(make_mesh({32, 32}).graph, rng, 8);
  // Widths ~16 and ~32: ratio should be near 2.
  const double ratio = static_cast<double>(b32.width) /
                       static_cast<double>(b16.width);
  EXPECT_GT(ratio, 1.4);
  EXPECT_LT(ratio, 3.0);
}

TEST(Spectral, FiedlerOfCompleteGraph) {
  // K_n has lambda2 = n.
  MultigraphBuilder bd(8);
  for (Vertex i = 0; i < 8; ++i) {
    for (Vertex j = i + 1; j < 8; ++j) bd.add_edge(i, j);
  }
  Prng rng(29);
  const SpectralResult r = fiedler_value(std::move(bd).build(), rng);
  EXPECT_NEAR(r.lambda2, 8.0, 0.05);
}

TEST(Spectral, FiedlerOfPathIsSmall) {
  // Path lambda2 = 2(1 - cos(pi/n)).
  Prng rng(31);
  const SpectralResult r = fiedler_value(path_graph(16), rng);
  const double expected = 2.0 * (1.0 - std::cos(3.14159265358979 / 16));
  EXPECT_NEAR(r.lambda2, expected, 0.02);
}

TEST(Spectral, LowerBoundsBisection) {
  Prng rng(37);
  for (std::uint32_t side : {4u, 6u}) {
    const Machine m = make_mesh({side, side});
    const SpectralResult r = fiedler_value(m.graph, rng);
    const Bisection exact = side <= 4 ? exact_bisection(m.graph)
                                      : kl_bisection(m.graph, rng, 16);
    EXPECT_LE(r.bisection_lb, static_cast<double>(exact.width) + 1e-6)
        << "side=" << side;
    EXPECT_GT(r.bisection_lb, 0.0);
  }
}

TEST(BisectionAuto, PicksExactForSmall) {
  Prng rng(41);
  const Bisection b = bisection_auto(path_graph(12), rng);
  EXPECT_EQ(b.width, 1u);
}

}  // namespace
}  // namespace netemu
