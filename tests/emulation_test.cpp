// Tests for the emulation subsystem: the engine, the bound calculators,
// the max-host-size tables, and — the paper's headline — measured slowdown
// always at or above the Efficient Emulation Theorem's lower bound.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "netemu/emulation/bounds.hpp"
#include "netemu/emulation/engine.hpp"
#include "netemu/emulation/host_size.hpp"
#include "netemu/emulation/tables.hpp"
#include "netemu/topology/factory.hpp"
#include "netemu/topology/generators.hpp"

namespace netemu {
namespace {

TEST(Engine, SelfEmulationIsConstantSlowdown) {
  Prng rng(1);
  const Machine m = make_mesh({8, 8});
  EmulationOptions opt;
  opt.guest_steps = 4;
  // Block partition on equal row-major meshes is the identity placement.
  opt.partition = PartitionStrategy::kBlock;
  const EmulationResult r = emulate(m, m, rng, opt);
  EXPECT_EQ(r.max_load, 1u);
  // A machine emulating itself in place: each step costs O(1) host ticks.
  EXPECT_LT(r.slowdown, 4.0);
  EXPECT_GE(r.slowdown, 1.0);
}

TEST(Engine, LoadBoundRespected) {
  Prng rng(2);
  const Machine guest = make_mesh({8, 8});
  const Machine host = make_mesh({4, 4});
  EmulationOptions opt;
  opt.guest_steps = 4;
  const EmulationResult r = emulate(guest, host, rng, opt);
  EXPECT_EQ(r.max_load, 4u);
  // Slowdown at least the load bound n/m.
  EXPECT_GE(r.slowdown, 4.0);
}

TEST(Engine, MeasuredSlowdownAboveTheoryLowerBound) {
  Prng rng(3);
  struct Case {
    Family gf;
    unsigned gk;
    std::size_t gn;
    Family hf;
    unsigned hk;
    std::size_t hn;
  };
  const Case cases[] = {
      {Family::kDeBruijn, 1, 256, Family::kMesh, 2, 64},
      {Family::kMesh, 2, 256, Family::kLinearArray, 1, 32},
      {Family::kXTree, 1, 127, Family::kTree, 1, 31},
      {Family::kMesh, 3, 512, Family::kMesh, 2, 64},
  };
  for (const Case& c : cases) {
    const Machine guest = make_machine(c.gf, c.gn, c.gk, rng);
    const Machine host = make_machine(c.hf, c.hn, c.hk, rng);
    EmulationOptions opt;
    opt.guest_steps = 3;
    const EmulationResult r = emulate(guest, host, rng, opt);
    const SlowdownBounds b = slowdown_bounds(
        c.gf, c.gk, static_cast<double>(guest.graph.num_vertices()), c.hf,
        c.hk, static_cast<double>(host.graph.num_vertices()));
    // The theory bound is Ω(·); measured slowdown must not be
    // asymptotically below it.  Allow constant slack of 4x.
    EXPECT_GE(r.slowdown * 4.0, b.combined)
        << guest.name << " on " << host.name;
  }
}

TEST(Engine, BandwidthStarvedHostHurtsMoreThanLoad) {
  Prng rng(4);
  // de Bruijn(1024) on a 64-node linear array vs a 64-node mesh: equal
  // load ratio, but the linear array (beta = Theta(1)) is far more
  // bandwidth-starved than the mesh (beta = Theta(sqrt(m))).
  const Machine guest = make_debruijn(10);
  const Machine line_host = make_linear_array(64);
  const Machine mesh_host = make_mesh({8, 8});
  EmulationOptions opt;
  opt.guest_steps = 2;
  const double s_line = emulate(guest, line_host, rng, opt).slowdown;
  const double s_mesh = emulate(guest, mesh_host, rng, opt).slowdown;
  EXPECT_GT(s_line, 2.0 * s_mesh);
}

TEST(Engine, PartitionStrategyAblation) {
  Prng rng(5);
  const Machine guest = make_mesh({16, 16});
  const Machine host = make_mesh({4, 4});
  EmulationOptions opt;
  opt.guest_steps = 3;
  opt.partition = PartitionStrategy::kBlock;
  const double s_block = emulate(guest, host, rng, opt).slowdown;
  opt.partition = PartitionStrategy::kRandom;
  const double s_random = emulate(guest, host, rng, opt).slowdown;
  // Random placement destroys locality: strictly more communication.
  EXPECT_GT(s_random, s_block);
}

TEST(Bounds, CombinedIsMax) {
  // Host ABOVE the lg^2 n crossover: bandwidth bound dominates load bound.
  const SlowdownBounds big =
      slowdown_bounds(Family::kDeBruijn, 1, 1 << 20, Family::kMesh, 2, 4096);
  EXPECT_DOUBLE_EQ(big.combined, std::max(big.load, big.bandwidth));
  EXPECT_DOUBLE_EQ(big.load, 256.0);
  EXPECT_GT(big.bandwidth, big.load);
  // Host BELOW the crossover: load bound dominates.
  const SlowdownBounds small =
      slowdown_bounds(Family::kDeBruijn, 1, 1 << 20, Family::kMesh, 2, 64);
  EXPECT_GT(small.load, small.bandwidth);
}

TEST(Bounds, KochDistanceTreeOnMesh) {
  // S >= ((n / lg^k n))^{1/(k+1)} — grows with n, shrinks with k.
  const double b1 = koch_distance_bound_tree_on_mesh(1 << 20, 1);
  const double b2 = koch_distance_bound_tree_on_mesh(1 << 20, 2);
  EXPECT_GT(b1, b2);
  EXPECT_GT(koch_distance_bound_tree_on_mesh(1 << 22, 2), b2);
}

TEST(Bounds, KochCongestionMeshOnMesh) {
  EXPECT_NEAR(koch_congestion_bound_mesh_on_mesh(2, 1, 1 << 20),
              std::pow(double(1 << 20), 0.5), 1e-6);
  EXPECT_NEAR(koch_congestion_bound_mesh_on_mesh(3, 2, 64.0),
              std::pow(64.0, 1.0 / 6.0), 1e-9);
}

TEST(Bounds, KochButterflyOnMeshIsExponential) {
  EXPECT_NEAR(koch_congestion_bound_butterfly_on_mesh_lg(2, 1 << 20),
              1024.0, 1e-6);
}

TEST(Bounds, BandwidthMatchesKochForNonExpanders) {
  // §1.2: for non-expander guests the bandwidth bound matches Koch's
  // congestion bound.  Mesh_k on mesh_j at equal sizes:
  // bandwidth: n^{(k-1)/k - (j-1)/j} = n^{(k-j)/(jk)} — identical exponent.
  const double n = 1 << 18;
  const SlowdownBounds b =
      slowdown_bounds(Family::kMesh, 3, n, Family::kMesh, 2, n);
  const double koch = koch_congestion_bound_mesh_on_mesh(3, 2, n);
  const double ratio = b.bandwidth / koch;
  EXPECT_GT(ratio, 0.1);
  EXPECT_LT(ratio, 10.0);
}

// --- host-size tables --------------------------------------------------------

TEST(HostSize, DeBruijnRow) {
  const auto hosts = standard_hosts({2});
  const auto entries =
      max_host_table(Family::kDeBruijn, 1, 1 << 20, hosts);
  ASSERT_EQ(entries.size(), hosts.size());
  for (const auto& e : entries) {
    EXPECT_FALSE(e.symbolic.empty());
    EXPECT_GE(e.numeric, 2.0);
    EXPECT_LE(e.numeric, double(1 << 20));
  }
  // Mesh2 host entry is the intro's Θ(lg² n).
  const auto mesh2 = std::find_if(entries.begin(), entries.end(),
                                  [](const HostSizeEntry& e) {
                                    return e.host.family == Family::kMesh &&
                                           e.host.k == 2;
                                  });
  ASSERT_NE(mesh2, entries.end());
  EXPECT_NE(mesh2->symbolic.find("lg |G|^2"), std::string::npos)
      << mesh2->symbolic;
}

TEST(HostSize, StrongerHostsAllowLargerSizes) {
  // For a 3-dim mesh guest: mesh1 < mesh2 < mesh3 host sizes.
  double prev = 0;
  for (unsigned k = 1; k <= 3; ++k) {
    const HostSizeEntry e = max_host_size(Family::kMesh, 3, 1 << 20,
                                          {Family::kMesh, k});
    EXPECT_GT(e.numeric, prev) << k;
    prev = e.numeric;
  }
}

TEST(Tables, AllFourRender) {
  const Table t1 = paper_table1({1, 2}, 1 << 20);
  const Table t2 = paper_table2({2}, 1 << 20);
  const Table t3 = paper_table3(1 << 20);
  const Table t4 = paper_table4({2, 3});
  EXPECT_GT(t1.rows(), 10u);
  EXPECT_GT(t2.rows(), 10u);
  EXPECT_GT(t3.rows(), 10u);
  EXPECT_GT(t4.rows(), 15u);
  // Spot-check a famous entry: Butterfly guest on Mesh2 host = Θ(lg² n).
  EXPECT_NE(t3.to_string().find("lg |G|^2"), std::string::npos);
}

TEST(Tables, Table4MatchesPaperStrings) {
  const std::string t4 = paper_table4({2}).to_string();
  EXPECT_NE(t4.find("Θ(n^{1/2})"), std::string::npos);   // Mesh2 β
  EXPECT_NE(t4.find("Θ(n / lg n)"), std::string::npos);  // Butterfly β
  EXPECT_NE(t4.find("Θ(lg n)"), std::string::npos);      // X-Tree β / Λ
}

}  // namespace
}  // namespace netemu
