// Tests for the embedding subsystem: embeddings, congestion/dilation,
// partitioners, and the congestion witness that feeds Theorem 6.

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "netemu/embedding/congestion_witness.hpp"
#include "netemu/embedding/embedding.hpp"
#include "netemu/embedding/partition.hpp"
#include "netemu/graph/algorithms.hpp"
#include "netemu/topology/generators.hpp"
#include "netemu/traffic/k_rs.hpp"
#include "netemu/traffic/traffic_graph.hpp"

namespace netemu {
namespace {

std::vector<Vertex> identity_map(std::size_t n) {
  std::vector<Vertex> m(n);
  std::iota(m.begin(), m.end(), 0u);
  return m;
}

TEST(Embedding, IdentityEmbeddingOfHostIntoItself) {
  Prng rng(1);
  const Machine host = make_mesh({4, 4});
  const auto router = make_default_router(host);
  const Embedding emb = embed_with_router(host.graph, host,
                                          identity_map(16), *router, rng);
  const EmbeddingMetrics m = evaluate_embedding(host.graph, host.graph, emb);
  EXPECT_EQ(m.dilation, 1u);
  EXPECT_EQ(m.congestion, 1u);
  EXPECT_DOUBLE_EQ(m.avg_dilation, 1.0);
}

TEST(Embedding, CollapsedEndpointsCostNothing) {
  Prng rng(2);
  const Machine host = make_linear_array(2);
  // Guest: triangle with all vertices mapped to host vertex 0.
  MultigraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(0, 2);
  const Multigraph guest = std::move(b).build();
  const auto router = make_default_router(host);
  const Embedding emb =
      embed_with_router(guest, host, {0, 0, 0}, *router, rng);
  const EmbeddingMetrics m = evaluate_embedding(guest, host.graph, emb);
  EXPECT_EQ(m.congestion, 0u);
  EXPECT_EQ(m.dilation, 0u);
}

TEST(Embedding, MultiplicityWeightsCongestion) {
  Prng rng(3);
  const Machine host = make_linear_array(3);
  MultigraphBuilder b(2);
  b.add_edge(0, 1, 5);
  const Multigraph guest = std::move(b).build();
  const auto router = make_default_router(host);
  // Map guest 0 -> host 0, guest 1 -> host 2: each of the 5 parallel edges
  // crosses both host edges.
  const Embedding emb = embed_with_router(guest, host, {0, 2}, *router, rng);
  const EmbeddingMetrics m = evaluate_embedding(guest, host.graph, emb);
  EXPECT_EQ(m.congestion, 5u);
  EXPECT_EQ(m.dilation, 2u);
}

TEST(Embedding, RejectsForeignWalk) {
  const Machine host = make_linear_array(4);
  MultigraphBuilder b(2);
  b.add_edge(0, 1);
  const Multigraph guest = std::move(b).build();
  Embedding emb;
  emb.vertex_map = {0, 3};
  emb.edge_paths = {{0, 2, 3}};  // 0-2 is not a host edge
  EXPECT_THROW(evaluate_embedding(guest, host.graph, emb),
               std::invalid_argument);
}

// --- partitioners -----------------------------------------------------------

TEST(Partition, BlockIsContiguousAndBalanced) {
  Prng rng(4);
  const Machine g = make_linear_array(10);
  const auto part = partition_guest(g.graph, 3, PartitionStrategy::kBlock,
                                    rng);
  EXPECT_EQ(part, (std::vector<std::uint32_t>{0, 0, 0, 0, 1, 1, 1, 1, 2, 2}));
  EXPECT_EQ(max_load(part, 3), 4u);
}

TEST(Partition, AllStrategiesBalanced) {
  Prng rng(5);
  const Machine g = make_mesh({8, 8});
  for (auto s : {PartitionStrategy::kBlock, PartitionStrategy::kBfs,
                 PartitionStrategy::kRandom, PartitionStrategy::kMatched}) {
    const auto part = partition_guest(g.graph, 16, s, rng);
    EXPECT_EQ(part.size(), 64u);
    // Every slot used, load within 2x of perfect.
    std::set<std::uint32_t> used(part.begin(), part.end());
    EXPECT_EQ(used.size(), 16u) << partition_strategy_name(s);
    EXPECT_LE(max_load(part, 16), 8u) << partition_strategy_name(s);
  }
}

TEST(Partition, MatchedCutsLessThanRandom) {
  Prng rng(6);
  const Machine g = make_mesh({16, 16});
  const auto matched =
      partition_guest(g.graph, 16, PartitionStrategy::kMatched, rng);
  const auto random =
      partition_guest(g.graph, 16, PartitionStrategy::kRandom, rng);
  auto cut_edges = [&](const std::vector<std::uint32_t>& part) {
    std::uint64_t cut = 0;
    for (const Edge& e : g.graph.edges()) cut += part[e.u] != part[e.v];
    return cut;
  };
  EXPECT_LT(cut_edges(matched), cut_edges(random) / 2);
}

TEST(Partition, MatchedPartitionMapsSlotsToDistinctProcessors) {
  Prng rng(7);
  const Machine guest = make_mesh({8, 8});
  const Machine host = make_mesh({4, 4});
  const MatchedPartition mp = matched_partition(guest.graph, host, 16, rng);
  std::set<std::uint32_t> procs(mp.slot_to_proc.begin(),
                                mp.slot_to_proc.end());
  EXPECT_EQ(procs.size(), 16u);
  EXPECT_EQ(max_load(mp.guest_slot, 16), 4u);
}

// --- congestion witness / Theorem 6 ----------------------------------------

TEST(Witness, LinearArrayAllPairsCongestion) {
  Prng rng(8);
  const Machine host = make_linear_array(16);
  const Multigraph kn = symmetric_traffic_graph(16, identity_map(16));
  const CongestionWitness w = congestion_witness(host, kn, rng);
  // Middle edge carries 8*8 = 64 paths.
  EXPECT_EQ(w.congestion, 64u);
  // beta_graph = E(K16)/C = 120/64 = 1.875 — the Θ(1) of Table 4.
  EXPECT_NEAR(w.beta_graph, 1.875, 1e-9);
}

TEST(Witness, BusThroughHub) {
  Prng rng(9);
  const Machine host = make_global_bus(8);
  const Multigraph kn = symmetric_traffic_graph(9, host.processors);
  const CongestionWitness w = congestion_witness(host, kn, rng);
  // Each processor's wire carries its 7 incident pairs: C = 7.
  EXPECT_EQ(w.congestion, 7u);
  EXPECT_EQ(w.dilation, 2u);
}

TEST(Witness, BusNodeCapacityBindsBeta) {
  // The hub forwards one message per tick: the node-capacity-aware witness
  // must report beta ~ 1 even though edge congestion alone would say n.
  Prng rng(13);
  const Machine host = make_global_bus(8);
  const Multigraph kn = symmetric_traffic_graph(9, host.processors);
  const CongestionWitness w = congestion_witness(host, kn, rng);
  // All 28 pairs forward through the hub once (plus source departures).
  EXPECT_GE(w.node_congestion, 28u);
  EXPECT_NEAR(w.beta_graph, 1.0, 0.2);
}

TEST(Witness, MeshBetaMatchesSqrtShape) {
  Prng rng(10);
  const Machine h16 = make_mesh({16, 16});
  const Machine h8 = make_mesh({8, 8});
  const CongestionWitness w16 = congestion_witness(
      h16, symmetric_traffic_graph(256, identity_map(256)), rng);
  const CongestionWitness w8 = congestion_witness(
      h8, symmetric_traffic_graph(64, identity_map(64)), rng);
  const double ratio = w16.beta_graph / w8.beta_graph;
  EXPECT_GT(ratio, 1.4);  // sqrt(4) = 2 expected
  EXPECT_LT(ratio, 3.0);
}

TEST(Witness, ScalingTrafficScalesCongestionLinearly) {
  // C(H, xT) = x C(H, T) in the limit — exactly here, since paths repeat.
  Prng rng(11);
  const Machine host = make_linear_array(8);
  const Multigraph t = symmetric_traffic_graph(8, identity_map(8));
  const CongestionWitness w1 = congestion_witness(host, t, rng);
  const CongestionWitness w3 = congestion_witness(host, t.scaled(3), rng);
  EXPECT_EQ(w3.congestion, 3 * w1.congestion);
  EXPECT_NEAR(w3.beta_graph, w1.beta_graph, 1e-9);
}

TEST(Witness, RejectsOversizedTraffic) {
  Prng rng(12);
  const Machine host = make_linear_array(4);
  const Multigraph big = make_complete(8);
  EXPECT_THROW(congestion_witness(host, big, rng), std::invalid_argument);
}

}  // namespace
}  // namespace netemu
