// Tests for netemu::scatter — the trial-range wire fields ("trial_lo" /
// "trial_hi"), ranged execution determinism (shards concatenate to the
// unsharded sweep, bit for bit), the fleet Scatterer's merge (golden
// bit-identity across 1/2/3/4-way scatter and cache-warm re-runs), and the
// partial-failure matrix (kill / shed / stall a backend at each phase:
// degraded partials are correctly ranged, never cached, never
// double-counted).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "netemu/faultline/fault_plan.hpp"
#include "netemu/faultline/injector.hpp"
#include "netemu/fleet/front_door.hpp"
#include "netemu/fleet/router.hpp"
#include "netemu/fleet/scatter.hpp"
#include "netemu/guard/cost.hpp"
#include "netemu/scope/metrics.hpp"
#include "netemu/scope/trace.hpp"
#include "netemu/service/protocol.hpp"
#include "netemu/service/query.hpp"
#include "netemu/service/server.hpp"
#include "netemu/util/json.hpp"

using namespace netemu;

namespace {

/// The estimate sweep every test scatters: small enough to run in
/// milliseconds, big enough to split 4 ways.
Json estimate_query(unsigned trials = 8, std::uint64_t seed = 7,
                    double n = 64) {
  Json q = Json::object();
  q["op"] = "estimate";
  q["family"] = "Mesh";
  q["k"] = 2;
  q["n"] = n;
  q["trials"] = trials;
  q["seed"] = seed;
  return q;
}

Json ranged(const Json& q, unsigned lo, unsigned hi) {
  // Rebuild field by field: Json copies share structure, so mutating a
  // copy of `q` would write the range into the caller's document too.
  Json out = Json::object();
  for (const auto& [k, v] : q.fields()) out[k] = v;
  out["trial_lo"] = lo;
  out["trial_hi"] = hi;
  return out;
}

/// Parse a response line, assert success, return the parsed document.
Json ok_doc(const std::string& line) {
  std::string error;
  Json doc = Json::parse(line, &error);
  EXPECT_TRUE(error.empty()) << error << " in " << line;
  EXPECT_TRUE(doc["ok"].as_bool(false)) << line;
  return doc;
}

/// The bit-identity comparand: the response's "result" document re-dumped.
/// (The envelope's "micros" differs run to run by design; the result must
/// not differ by a single byte.)
std::string result_dump(const std::string& line) {
  return ok_doc(line)["result"].dump();
}

/// A live in-process backend: executor + server on an ephemeral port.
struct TestBackend {
  QueryExecutor executor;
  std::unique_ptr<Server> server;

  TestBackend() = default;
  explicit TestBackend(QueryExecutor::Options options)
      : executor(std::move(options)) {}

  std::uint16_t start() {
    Server::Options options;
    options.port = 0;
    server = std::make_unique<Server>(executor, options);
    std::string error;
    EXPECT_TRUE(server->start(&error)) << error;
    return server->port();
  }
};

FleetRouter::Options fast_router_options(std::vector<std::uint16_t> ports) {
  FleetRouter::Options options;
  for (const auto port : ports) options.backends.push_back({port, ""});
  options.health.failure_threshold = 2;
  options.health.open_cooldown_ms = 50;
  options.probe_interval_ms = 0;  // deterministic: no background probes
  options.client.max_attempts = 2;
  options.client.base_backoff_ms = 1;
  options.client.max_backoff_ms = 5;
  options.client.attempt_timeout_ms = 5000;
  return options;
}

/// Single-node golden reference: the query handled by one plain executor,
/// exactly as netemu_serve would.
std::string reference_result(const Json& q) {
  QueryExecutor exec;
  return result_dump(handle_request_line(q.dump(), exec));
}

/// The sub-ranges a W-way scatter of `trials` produces (must mirror
/// Scatterer::scatter_line's split).
std::vector<std::pair<unsigned, unsigned>> split(unsigned trials, unsigned w) {
  std::vector<std::pair<unsigned, unsigned>> out;
  for (unsigned i = 0; i < w; ++i) {
    out.emplace_back(i * trials / w, (i + 1) * trials / w);
  }
  return out;
}

}  // namespace

// ------------------------------------------------------------- wire fields

TEST(ScatterQuery, RangeRoundTripsThroughJson) {
  std::string error;
  const auto q = query_from_json(ranged(estimate_query(8), 2, 5), &error);
  ASSERT_TRUE(q.has_value()) << error;
  EXPECT_EQ(q->trial_lo, 2u);
  EXPECT_EQ(q->trial_hi, 5u);
  EXPECT_TRUE(q->has_trial_range());

  const Json doc = query_to_json(*q);
  EXPECT_EQ(doc["trial_lo"].as_int(-1), 2);
  EXPECT_EQ(doc["trial_hi"].as_int(-1), 5);
  const auto q2 = query_from_json(doc, &error);
  ASSERT_TRUE(q2.has_value()) << error;
  EXPECT_EQ(q2->cache_key(), q->cache_key());
}

TEST(ScatterQuery, RangeValidationRejectsBadBounds) {
  std::string error;
  EXPECT_FALSE(query_from_json(ranged(estimate_query(8), 3, 3), &error));
  EXPECT_FALSE(query_from_json(ranged(estimate_query(8), 5, 3), &error));
  EXPECT_FALSE(query_from_json(ranged(estimate_query(8), 0, 9), &error));
  Json neg = estimate_query(8);
  neg["trial_lo"] = -1;
  neg["trial_hi"] = 4;
  EXPECT_FALSE(query_from_json(neg, &error));
}

TEST(ScatterQuery, RangeOnNonEstimateOpIsRejected) {
  Json q = Json::object();
  q["op"] = "bandwidth";
  q["family"] = "Mesh";
  q["k"] = 2;
  q["n"] = 64;
  q["trial_lo"] = 0;
  q["trial_hi"] = 4;
  std::string error;
  EXPECT_FALSE(query_from_json(q, &error));
  EXPECT_NE(error.find("estimate"), std::string::npos) << error;
}

TEST(ScatterQuery, FullRangeNormalizesToThePlainCacheKey) {
  // [0, trials) is not a shard; it must share the plain query's content
  // address so scattered and unscattered runs share cache entries.
  std::string error;
  const auto plain = query_from_json(estimate_query(8), &error);
  const auto full = query_from_json(ranged(estimate_query(8), 0, 8), &error);
  const auto shard = query_from_json(ranged(estimate_query(8), 0, 4), &error);
  ASSERT_TRUE(plain && full && shard) << error;
  EXPECT_FALSE(full->has_trial_range());
  EXPECT_EQ(full->cache_key(), plain->cache_key());
  EXPECT_EQ(full->canonical_string(), plain->canonical_string());
  EXPECT_NE(shard->cache_key(), plain->cache_key());
  EXPECT_NE(shard->canonical_string().find("trial_lo"), std::string::npos);
}

TEST(ScatterQuery, RangedCostChargesTheCalibrationSurcharge) {
  // Every shard reruns the calibration pass (trial 0), so a shard with
  // lo > 0 is charged one extra trial; the shards of a split always cost
  // at least the whole.
  std::string error;
  const auto full = query_from_json(estimate_query(16, 7, 4096), &error);
  const auto head = query_from_json(ranged(estimate_query(16, 7, 4096), 0, 8),
                                    &error);
  const auto tail = query_from_json(ranged(estimate_query(16, 7, 4096), 8, 16),
                                    &error);
  ASSERT_TRUE(full && head && tail) << error;
  const std::uint64_t c_full = guard::query_cost(*full);
  const std::uint64_t c_head = guard::query_cost(*head);
  const std::uint64_t c_tail = guard::query_cost(*tail);
  EXPECT_GE(c_head + c_tail, c_full);
  EXPECT_GT(c_tail, c_head);  // lo > 0 pays for its calibration rerun
  EXPECT_LT(c_head, c_full);  // but a shard is cheaper than the whole
}

// ------------------------------------------------- ranged execution (1 node)

TEST(ScatterRange, ShardsConcatenateToTheUnshardedSweep) {
  QueryExecutor exec;
  const Json q = estimate_query(6);
  const Json full = ok_doc(handle_request_line(q.dump(), exec))["result"];
  const Json a = ok_doc(handle_request_line(ranged(q, 0, 3).dump(), exec))
      ["result"];
  const Json b = ok_doc(handle_request_line(ranged(q, 3, 6).dump(), exec))
      ["result"];

  // Shard results carry their range and the FULL sweep's trial count.
  EXPECT_EQ(a["trial_lo"].as_int(-1), 0);
  EXPECT_EQ(a["trial_hi"].as_int(-1), 3);
  EXPECT_EQ(b["trial_lo"].as_int(-1), 3);
  EXPECT_EQ(b["trials"].as_int(-1), 6);

  // Rates concatenate bit-identically: trial t's Prng substream depends
  // only on (seed, t), and every shard re-derives the same calibrated m.
  ASSERT_EQ(a["trial_rates"].items().size(), 3u);
  ASSERT_EQ(b["trial_rates"].items().size(), 3u);
  for (unsigned t = 0; t < 6; ++t) {
    const Json& shard = t < 3 ? a : b;
    EXPECT_EQ(shard["trial_rates"].items()[t % 3].dump(),
              full["trial_rates"].items()[t].dump())
        << "trial " << t;
  }
  // The calibrated batch size is identical, and tick totals partition:
  // the lo == 0 shard owns the calibration ticks.
  EXPECT_EQ(a["messages"].dump(), full["messages"].dump());
  EXPECT_EQ(b["messages"].dump(), full["messages"].dump());
  EXPECT_EQ(a["simulated_ticks"].as_number() + b["simulated_ticks"].as_number(),
            full["simulated_ticks"].as_number());
}

TEST(ScatterRange, SubRangesAreCachedIndependently) {
  QueryExecutor exec;
  const Json q = estimate_query(6);
  EXPECT_FALSE(
      ok_doc(handle_request_line(ranged(q, 3, 6).dump(), exec))["cache_hit"]
          .as_bool(true));
  const Json warm = ok_doc(handle_request_line(ranged(q, 3, 6).dump(), exec));
  EXPECT_TRUE(warm["cache_hit"].as_bool(false));
  // The other shard and the whole sweep are distinct content addresses.
  EXPECT_FALSE(
      ok_doc(handle_request_line(ranged(q, 0, 3).dump(), exec))["cache_hit"]
          .as_bool(true));
  EXPECT_FALSE(
      ok_doc(handle_request_line(q.dump(), exec))["cache_hit"].as_bool(true));
  // An explicit [0, trials) range IS the whole sweep — cache hit.
  EXPECT_TRUE(
      ok_doc(handle_request_line(ranged(q, 0, 6).dump(), exec))["cache_hit"]
          .as_bool(false));
}

// --------------------------------------------------- fleet scatter (golden)

TEST(FleetScatter, BitIdenticalAcrossWaysAndCacheWarm) {
  const Json q = estimate_query(8);
  const std::string golden = reference_result(q);

  TestBackend backends[4];
  std::vector<std::uint16_t> ports;
  for (auto& b : backends) ports.push_back(b.start());
  FleetRouter router(fast_router_options(ports));

  const std::uint64_t subs_before =
      scope::Registry::global()
          .counter("netemu_scatter_subqueries_total", "")
          .value();

  bool shutdown = false;
  std::uint64_t scattered_total = 0;
  for (unsigned ways = 1; ways <= 4; ++ways) {
    FleetFrontDoor::Options door_options;
    door_options.scatter.min_trials = 4;
    door_options.scatter.max_ways = ways;
    FleetFrontDoor door(router, door_options);

    const std::string line = door.handle_line(q.dump(), &shutdown);
    EXPECT_EQ(result_dump(line), golden) << "ways=" << ways;
    const Json doc = ok_doc(line);
    if (ways == 1) {
      // max_ways 1 cannot scatter: the query routes whole to one backend.
      EXPECT_TRUE(doc["scattered"].is_null());
      EXPECT_TRUE(doc["served_by"].is_string());
      EXPECT_EQ(door.scatter_stats().scatters, 0u);
    } else {
      EXPECT_EQ(doc["scattered"].as_int(-1), static_cast<int>(ways));
      EXPECT_FALSE(doc["degraded"].as_bool(false));
      const Scatterer::Stats stats = door.scatter_stats();
      EXPECT_EQ(stats.scatters, 1u);
      EXPECT_EQ(stats.subqueries, ways);
      EXPECT_EQ(stats.merged_full, 1u);
      EXPECT_EQ(stats.merged_degraded, 0u);
      scattered_total += ways;

      // Cache-warm re-run: every shard is already content-addressed on its
      // backend, so the re-scatter is all cache hits — and byte-identical.
      const std::string warm = door.handle_line(q.dump(), &shutdown);
      EXPECT_EQ(result_dump(warm), golden) << "warm ways=" << ways;
      EXPECT_TRUE(ok_doc(warm)["cache_hit"].as_bool(false))
          << "warm ways=" << ways;
      scattered_total += ways;
    }
  }

  const std::uint64_t subs_after =
      scope::Registry::global()
          .counter("netemu_scatter_subqueries_total", "")
          .value();
  EXPECT_EQ(subs_after - subs_before, scattered_total);
}

TEST(FleetScatter, SingleNodeAndScatteredRunsShareShardCacheEntries) {
  // A single-node run of one shard pre-warms exactly the cache entry the
  // scatterer's matching sub-query hits: same wire fields, same content
  // address, shared entry.
  const Json q = estimate_query(8);
  TestBackend backends[2];
  std::vector<std::uint16_t> ports;
  for (auto& b : backends) ports.push_back(b.start());
  FleetRouter router(fast_router_options(ports));

  // Warm both 2-way shards through the router's normal whole-query path
  // (explicit ranges never scatter — they ARE shards).
  for (const auto& [lo, hi] : split(8, 2)) {
    const FleetRouter::Result r = router.request(ranged(q, lo, hi));
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_FALSE(r.doc["cache_hit"].as_bool(true));
  }

  FleetFrontDoor::Options door_options;
  door_options.scatter.min_trials = 4;
  door_options.scatter.max_ways = 2;
  FleetFrontDoor door(router, door_options);
  bool shutdown = false;
  const Json doc = ok_doc(door.handle_line(q.dump(), &shutdown));
  EXPECT_EQ(doc["scattered"].as_int(-1), 2);
  EXPECT_TRUE(doc["cache_hit"].as_bool(false));  // both shards were warm
  EXPECT_EQ(doc["result"].dump(), reference_result(q));
}

TEST(FleetScatter, RecordsScatterAndMergeSpansUnderTheRequestTrace) {
  TestBackend backends[2];
  std::vector<std::uint16_t> ports;
  for (auto& b : backends) ports.push_back(b.start());
  FleetRouter router(fast_router_options(ports));
  FleetFrontDoor::Options door_options;
  door_options.scatter.min_trials = 4;
  door_options.scatter.max_ways = 2;
  FleetFrontDoor door(router, door_options);

  Json q = estimate_query(8, 11);
  q["trace"] = "00000000deadbeef";
  bool shutdown = false;
  const Json doc = ok_doc(door.handle_line(q.dump(), &shutdown));
  EXPECT_EQ(doc["trace"].as_string(), "00000000deadbeef");

  bool saw_scatter = false, saw_merge = false;
  for (const scope::Span& span :
       scope::TraceStore::global().get(scope::parse_trace_id(
           "00000000deadbeef"))) {
    saw_scatter = saw_scatter || span.name == "fleet.scatter";
    saw_merge = saw_merge || span.name == "fleet.merge";
  }
  EXPECT_TRUE(saw_scatter);
  EXPECT_TRUE(saw_merge);
}

TEST(FleetScatter, IneligibleQueriesRouteWhole) {
  TestBackend backends[2];
  std::vector<std::uint16_t> ports;
  for (auto& b : backends) ports.push_back(b.start());
  FleetRouter router(fast_router_options(ports));
  FleetFrontDoor::Options door_options;
  door_options.scatter.min_trials = 8;
  door_options.scatter.max_ways = 2;
  FleetFrontDoor door(router, door_options);
  bool shutdown = false;

  // Below min_trials: proxied whole.
  Json small = ok_doc(door.handle_line(estimate_query(4).dump(), &shutdown));
  EXPECT_TRUE(small["scattered"].is_null());
  EXPECT_TRUE(small["served_by"].is_string());

  // An explicit proper trial range is already a shard: proxied whole.
  Json shard =
      ok_doc(door.handle_line(ranged(estimate_query(8), 0, 4).dump(),
                              &shutdown));
  EXPECT_TRUE(shard["scattered"].is_null());
  EXPECT_EQ(shard["result"]["trial_hi"].as_int(-1), 4);
  EXPECT_EQ(door.scatter_stats().scatters, 0u);

  // An explicit FULL range normalizes to the plain query: scattered.
  Json full =
      ok_doc(door.handle_line(ranged(estimate_query(8), 0, 8).dump(),
                              &shutdown));
  EXPECT_EQ(full["scattered"].as_int(-1), 2);
  EXPECT_TRUE(full["result"]["trial_lo"].is_null());
}

// ------------------------------------------------- partial-failure matrix

namespace {

/// Owners of each W-way sub-query of `q`, per the router's rendezvous rank
/// (trace / deadline fields do not enter the route key, so the test can
/// predict placement exactly).
std::vector<std::size_t> sub_owners(const FleetRouter& router, const Json& q,
                                    unsigned trials, unsigned ways) {
  std::vector<std::size_t> owners;
  for (const auto& [lo, hi] : split(trials, ways)) {
    owners.push_back(router.rank_for(ranged(q, lo, hi))[0]);
  }
  return owners;
}

/// A seed whose W-way sub-queries land on W distinct backends, so a fault
/// injected at one backend hits exactly one sub-query.
Json query_with_distinct_owners(const FleetRouter& router, unsigned trials,
                                unsigned ways,
                                std::vector<std::size_t>* owners) {
  for (std::uint64_t seed = 1; seed < 512; ++seed) {
    Json q = estimate_query(trials, seed);
    *owners = sub_owners(router, q, trials, ways);
    std::vector<std::size_t> sorted = *owners;
    std::sort(sorted.begin(), sorted.end());
    if (std::unique(sorted.begin(), sorted.end()) == sorted.end()) return q;
  }
  ADD_FAILURE() << "no seed spreads " << ways << " sub-queries over "
                << ways << " backends";
  return estimate_query(trials, 1);
}

}  // namespace

TEST(FleetScatter, BackendKilledAtDispatchFailsOverToAFullResult) {
  TestBackend backends[3];
  std::vector<std::uint16_t> ports;
  for (auto& b : backends) ports.push_back(b.start());
  FleetRouter router(fast_router_options(ports));

  std::vector<std::size_t> owners;
  const Json q = query_with_distinct_owners(router, 9, 3, &owners);
  const std::string golden = reference_result(q);

  FleetFrontDoor::Options door_options;
  door_options.scatter.min_trials = 4;
  door_options.scatter.max_ways = 3;
  door_options.scatter.straggler_factor = 0;  // failover only, no hedging
  Server* victim = backends[owners[1]].server.get();
  door_options.scatter.phase_hook = [victim](const char* phase) {
    if (std::string(phase) == "dispatch") victim->stop();
  };
  FleetFrontDoor door(router, door_options);

  bool shutdown = false;
  const std::string line = door.handle_line(q.dump(), &shutdown);
  const Json doc = ok_doc(line);
  // The dead backend's sub-query failed over down the rendezvous order;
  // the merge is full and bit-identical.
  EXPECT_FALSE(doc["degraded"].as_bool(false));
  EXPECT_EQ(result_dump(line), golden);
  EXPECT_EQ(door.scatter_stats().merged_full, 1u);
  EXPECT_GE(router.stats().failovers, 1u);
}

TEST(FleetScatter, BackendKilledPreMergeStillMergesFull) {
  TestBackend backends[3];
  std::vector<std::uint16_t> ports;
  for (auto& b : backends) ports.push_back(b.start());
  FleetRouter router(fast_router_options(ports));

  std::vector<std::size_t> owners;
  const Json q = query_with_distinct_owners(router, 9, 3, &owners);
  const std::string golden = reference_result(q);

  FleetFrontDoor::Options door_options;
  door_options.scatter.min_trials = 4;
  door_options.scatter.max_ways = 3;
  Server* victim = backends[owners[2]].server.get();
  door_options.scatter.phase_hook = [victim](const char* phase) {
    // Every answer is already in hand; a backend dying now must not be
    // able to touch the merge.
    if (std::string(phase) == "pre-merge") victim->stop();
  };
  FleetFrontDoor door(router, door_options);

  bool shutdown = false;
  const std::string line = door.handle_line(q.dump(), &shutdown);
  EXPECT_FALSE(ok_doc(line)["degraded"].as_bool(false));
  EXPECT_EQ(result_dump(line), golden);
}

TEST(FleetScatter, StragglerRetryCoversAStalledBackend) {
  // One backend stalls every compute for far longer than the straggler
  // deadline; its sub-query is hedged to a different backend and the merge
  // still comes back full and bit-identical.
  FaultPlan stall;
  stall.stall_p = 1.0;
  stall.stall_ms = 2500;
  FaultInjector injector(stall);
  QueryExecutor::Options stalled_options;
  stalled_options.faults = &injector;

  // Backend 0 stalls every compute; pick a seed whose three sub-queries
  // land on three distinct backends, so exactly one sub hits the staller.
  TestBackend stalled(std::move(stalled_options));
  TestBackend healthy_a, healthy_b;
  const std::uint16_t p_stalled = stalled.start();
  const std::uint16_t p_a = healthy_a.start();
  const std::uint16_t p_b = healthy_b.start();
  FleetRouter fleet(fast_router_options({p_stalled, p_a, p_b}));

  std::vector<std::size_t> fleet_owners;
  Json fq = query_with_distinct_owners(fleet, 9, 3, &fleet_owners);
  const std::string fleet_golden = reference_result(fq);

  FleetFrontDoor::Options door_options;
  door_options.scatter.min_trials = 4;
  door_options.scatter.max_ways = 3;
  door_options.scatter.straggler_factor = 2.0;
  door_options.scatter.straggler_min_ms = 40;
  FleetFrontDoor door(fleet, door_options);

  const std::uint64_t retries_before =
      scope::Registry::global()
          .counter("netemu_scatter_straggler_retries_total", "")
          .value();

  bool shutdown = false;
  const auto start = std::chrono::steady_clock::now();
  const std::string line = door.handle_line(fq.dump(), &shutdown);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count();

  EXPECT_EQ(result_dump(line), fleet_golden);
  EXPECT_FALSE(ok_doc(line)["degraded"].as_bool(false));
  const Scatterer::Stats stats = door.scatter_stats();
  EXPECT_EQ(stats.merged_full, 1u);
  // Exactly one sub-query hit the staller (distinct owners) and was hedged.
  EXPECT_GE(stats.straggler_retries, 1u);
  EXPECT_GE(scope::Registry::global()
                .counter("netemu_scatter_straggler_retries_total", "")
                .value(),
            retries_before + 1);
  // The retry answered well before the 2.5 s stall released the original.
  EXPECT_LT(ms, 2000) << "straggler retry did not rescue the scatter";
}

TEST(FleetScatter, StalledShardDegradesToARangedPartialThatIsNeverCached) {
  // A stalled sub-query alone does not degrade the merge — the router just
  // fails it over to a healthy backend.  To force a genuine partial, EVERY
  // backend stalls every compute for 900 ms, two of the three shards are
  // pre-warmed (cache hits dodge the stall entirely), and the scatter runs
  // with a 200 ms per-sub deadline: the warm shards answer from cache, the
  // cold shard times out everywhere.
  FaultPlan stall;
  stall.stall_p = 1.0;
  stall.stall_ms = 900;
  FaultInjector injector(stall);

  std::vector<std::unique_ptr<TestBackend>> backends;
  std::vector<std::uint16_t> ports;
  for (int i = 0; i < 3; ++i) {
    QueryExecutor::Options options;
    options.faults = &injector;
    backends.push_back(std::make_unique<TestBackend>(std::move(options)));
    ports.push_back(backends.back()->start());
  }
  FleetRouter router(fast_router_options(ports));

  const unsigned trials = 9;
  const Json q = estimate_query(trials);
  const std::string golden = reference_result(q);
  std::string parse_error;
  Json golden_doc = Json::parse(golden, &parse_error);
  ASSERT_TRUE(parse_error.empty()) << parse_error;

  // Pre-warm shards 0 and 2 with patient direct requests (the scatterer's
  // matching sub-queries share their content address, so they will hit
  // these entries); the middle shard stays cold.
  const auto shards = split(trials, 3);
  const std::size_t stalled_sub = 1;
  for (const std::size_t i : {std::size_t{0}, std::size_t{2}}) {
    const FleetRouter::Result r =
        router.request(ranged(q, shards[i].first, shards[i].second));
    ASSERT_TRUE(r.ok) << r.error;
    ASSERT_TRUE(r.doc["ok"].as_bool(false)) << r.doc.dump();
  }

  // Tight per-sub deadline, retries off: the cold shard's backends all
  // answer "deadline exceeded" and the merge degrades to a partial.
  FleetFrontDoor::Options door_options;
  door_options.scatter.min_trials = 4;
  door_options.scatter.max_ways = 3;
  door_options.scatter.straggler_factor = 0;
  door_options.scatter.sub_deadline_ms = 200;
  FleetFrontDoor door(router, door_options);

  bool shutdown = false;
  const std::string line = door.handle_line(q.dump(), &shutdown);
  const Json doc = ok_doc(line);
  EXPECT_TRUE(doc["degraded"].as_bool(false));
  const Json& result = doc["result"];
  EXPECT_TRUE(result["degraded"].as_bool(false));

  // Correctly ranged: exactly the two warm shards' ranges, no trial
  // counted twice, and every reported rate bit-identical to the golden
  // sweep's rate for that trial index.
  const auto [miss_lo, miss_hi] = shards[stalled_sub];
  EXPECT_EQ(result["trials_completed"].as_int(-1),
            static_cast<int>(trials - (miss_hi - miss_lo)));
  ASSERT_EQ(result["trial_ranges"].items().size(), 2u);
  std::vector<unsigned> covered;
  for (const Json& range : result["trial_ranges"].items()) {
    const unsigned lo = static_cast<unsigned>(range.items()[0].as_int(0));
    const unsigned hi = static_cast<unsigned>(range.items()[1].as_int(0));
    for (unsigned t = lo; t < hi; ++t) covered.push_back(t);
  }
  ASSERT_EQ(covered.size(), result["trial_rates"].items().size());
  EXPECT_EQ(std::set<unsigned>(covered.begin(), covered.end()).size(),
            covered.size())
      << "a trial was double-counted";
  for (std::size_t i = 0; i < covered.size(); ++i) {
    EXPECT_LT(covered[i], trials);
    EXPECT_TRUE(covered[i] < miss_lo || covered[i] >= miss_hi);
    EXPECT_EQ(result["trial_rates"].items()[i].dump(),
              golden_doc["trial_rates"].items()[covered[i]].dump())
        << "trial " << covered[i];
  }
  EXPECT_EQ(door.scatter_stats().merged_degraded, 1u);

  // Never cached: once the stall has drained, a patient re-scatter of the
  // SAME query comes back full and bit-identical — the degraded partial
  // poisoned no cache anywhere (backends refuse to cache degraded results;
  // the front door holds no cache at all).  Wait out the abandoned first
  // compute (its flight's cancel token fired when the last waiter left) so
  // the patient sub-query starts a fresh flight instead of joining a
  // doomed one.
  std::this_thread::sleep_for(std::chrono::milliseconds(1200));
  FleetFrontDoor::Options patient_options;
  patient_options.scatter.min_trials = 4;
  patient_options.scatter.max_ways = 3;
  patient_options.scatter.straggler_factor = 0;
  patient_options.scatter.sub_deadline_ms = 10000;
  FleetFrontDoor patient(router, patient_options);
  const std::string full_line = patient.handle_line(q.dump(), &shutdown);
  EXPECT_FALSE(ok_doc(full_line)["degraded"].as_bool(false));
  EXPECT_EQ(result_dump(full_line), golden);
}

TEST(FleetScatter, AllBackendsSheddingFailsGracefully) {
  TestBackend backends[2];
  std::vector<std::uint16_t> ports;
  for (auto& b : backends) ports.push_back(b.start());
  for (auto& b : backends) b.executor.begin_drain();
  FleetRouter router(fast_router_options(ports));
  FleetFrontDoor::Options door_options;
  door_options.scatter.min_trials = 4;
  door_options.scatter.max_ways = 2;
  FleetFrontDoor door(router, door_options);

  bool shutdown = false;
  std::string error;
  const Json doc =
      Json::parse(door.handle_line(estimate_query(8).dump(), &shutdown),
                  &error);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_FALSE(doc["ok"].as_bool(true));
  EXPECT_NE(doc["error"].as_string().find("scatter failed"),
            std::string::npos)
      << doc.dump();
  EXPECT_EQ(doc["scattered"].as_int(-1), 2);
  EXPECT_EQ(door.scatter_stats().failed, 1u);
}
