// Tests for the bandwidth subsystem: asymptotic algebra, the max-host-size
// solver (the engine behind Tables 1-3), the Table 4 theory registry, and
// the empirical estimators.

#include <gtest/gtest.h>

#include <cmath>

#include "netemu/bandwidth/asymptotic.hpp"
#include "netemu/bandwidth/empirical.hpp"
#include "netemu/bandwidth/theory.hpp"
#include "netemu/topology/factory.hpp"
#include "netemu/topology/generators.hpp"

namespace netemu {
namespace {

TEST(AsymFn, EvaluatesPowerTimesLog) {
  const AsymFn f{3.0, 0.5, 2.0};
  EXPECT_NEAR(f(256.0), 3.0 * 16.0 * 64.0, 1e-9);
}

TEST(AsymFn, LgClampBelowTwo) {
  const AsymFn f{1.0, 0.0, 1.0};
  EXPECT_DOUBLE_EQ(f(1.0), 1.0);
  EXPECT_DOUBLE_EQ(f(2.0), 1.0);
}

TEST(AsymFn, MulDiv) {
  const AsymFn a{2.0, 1.0, -1.0}, b{4.0, 0.5, 1.0};
  const AsymFn p = a * b;
  EXPECT_DOUBLE_EQ(p.c, 8.0);
  EXPECT_DOUBLE_EQ(p.p, 1.5);
  EXPECT_DOUBLE_EQ(p.q, 0.0);
  const AsymFn q = a / b;
  EXPECT_DOUBLE_EQ(q.p, 0.5);
  EXPECT_DOUBLE_EQ(q.q, -2.0);
}

TEST(AsymFn, ThetaStrings) {
  EXPECT_EQ((AsymFn{1, 0, 0}).theta_string(), "Θ(1)");
  EXPECT_EQ((AsymFn{2, 1, 0}).theta_string(), "Θ(n)");
  EXPECT_EQ((AsymFn{1, 0.5, 0}).theta_string(), "Θ(n^{1/2})");
  EXPECT_EQ((AsymFn{1, 1, -1}).theta_string(), "Θ(n / lg n)");
}

TEST(ExponentString, Fractions) {
  EXPECT_EQ(exponent_string(1.0), "");
  EXPECT_EQ(exponent_string(2.0), "^2");
  EXPECT_EQ(exponent_string(2.0 / 3.0), "^{2/3}");
  EXPECT_EQ(exponent_string(0.5), "^{1/2}");
}

// --- the paper's flagship example: de Bruijn on a 2-d mesh ----------------

TEST(SolveMaxHost, DeBruijnOnMesh2IsLgSquared) {
  const AsymFn bg = beta_theory(Family::kDeBruijn);       // Θ(n / lg n)
  const AsymFn bh = beta_theory(Family::kMesh, 2);        // Θ(m^{1/2})
  const HostSizeSolution s = solve_max_host(bg, bh, 1 << 20);
  EXPECT_FALSE(s.form.unconstrained);
  EXPECT_FALSE(s.form.exponential);
  EXPECT_NEAR(s.form.alpha, 0.0, 1e-9);
  EXPECT_NEAR(s.form.beta, 2.0, 1e-9);   // m = Θ(lg² n)
  // Numeric root: m with sqrt-bandwidth host... sanity: tiny relative to n.
  EXPECT_LT(s.numeric, 1e5);
  EXPECT_GT(s.numeric, 4.0);
}

TEST(SolveMaxHost, XTreeOnTreeIsNOverLg) {
  const AsymFn bg = beta_theory(Family::kXTree);  // Θ(lg n)
  const AsymFn bh = beta_theory(Family::kTree);   // Θ(1)
  const HostSizeSolution s = solve_max_host(bg, bh, 1 << 20);
  EXPECT_NEAR(s.form.alpha, 1.0, 1e-9);
  EXPECT_NEAR(s.form.beta, -1.0, 1e-9);  // m = Θ(n / lg n)
}

TEST(SolveMaxHost, MeshJOnMeshKIsNPowKOverJ) {
  for (unsigned j = 2; j <= 3; ++j) {
    for (unsigned k = 1; k < j; ++k) {
      const HostSizeSolution s = solve_max_host(
          beta_theory(Family::kMesh, j), beta_theory(Family::kMesh, k),
          1 << 20);
      EXPECT_NEAR(s.form.alpha, static_cast<double>(k) / j, 1e-9)
          << "j=" << j << " k=" << k;
      EXPECT_NEAR(s.form.beta, 0.0, 1e-9);
    }
  }
}

TEST(SolveMaxHost, MeshOnXTreeGainsLogFactor) {
  const HostSizeSolution s = solve_max_host(
      beta_theory(Family::kMesh, 2), beta_theory(Family::kXTree), 1 << 20);
  EXPECT_NEAR(s.form.alpha, 0.5, 1e-9);
  EXPECT_NEAR(s.form.beta, 1.0, 1e-9);  // Θ(n^{1/2} lg n)
}

TEST(SolveMaxHost, ButterflyOnXTreeIsLgLgLg) {
  const HostSizeSolution s = solve_max_host(
      beta_theory(Family::kButterfly), beta_theory(Family::kXTree), 1 << 20);
  EXPECT_NEAR(s.form.alpha, 0.0, 1e-9);
  EXPECT_NEAR(s.form.beta, 1.0, 1e-9);
  EXPECT_NEAR(s.form.gamma, 1.0, 1e-9);  // Θ(lg n · lg lg n)
}

TEST(SolveMaxHost, ButterflyOnMeshKIsLgPowK) {
  for (unsigned k = 1; k <= 3; ++k) {
    const HostSizeSolution s =
        solve_max_host(beta_theory(Family::kButterfly),
                       beta_theory(Family::kMesh, k), 1 << 20);
    EXPECT_NEAR(s.form.alpha, 0.0, 1e-9);
    EXPECT_NEAR(s.form.beta, static_cast<double>(k), 1e-9) << k;
  }
}

TEST(SolveMaxHost, SameFamilyIsUnconstrained) {
  const HostSizeSolution s = solve_max_host(
      beta_theory(Family::kDeBruijn), beta_theory(Family::kDeBruijn),
      1 << 20);
  EXPECT_TRUE(s.form.unconstrained);
  EXPECT_NEAR(s.numeric, static_cast<double>(1 << 20),
              static_cast<double>(1 << 20) * 0.01);
}

TEST(SolveMaxHost, NumericRootSatisfiesEquation) {
  // At the numeric root m*, load slowdown n/m ~ bandwidth slowdown.
  const double n = 1 << 16;
  const AsymFn bg = beta_theory(Family::kMesh, 3);
  const AsymFn bh = beta_theory(Family::kMesh, 2);
  const HostSizeSolution s = solve_max_host(bg, bh, n);
  const double lhs = n / s.numeric;
  const double rhs = bg(n) / bh(s.numeric);
  EXPECT_NEAR(lhs / rhs, 1.0, 0.01);
}

TEST(SolveMaxHost, NumericMonotoneInGuestSize) {
  const AsymFn bg = beta_theory(Family::kDeBruijn);
  const AsymFn bh = beta_theory(Family::kMesh, 2);
  double prev = 0.0;
  for (double n = 1 << 10; n <= 1 << 22; n *= 4) {
    const double m = solve_max_host(bg, bh, n).numeric;
    EXPECT_GT(m, prev);
    prev = m;
  }
}

TEST(HostSizeForm, Strings) {
  HostSizeForm f;
  f.alpha = 0.5;
  f.beta = 1.0;
  EXPECT_EQ(f.to_string(), "Θ(|G|^{1/2} lg |G|)");
  HostSizeForm g;
  g.beta = 2.0;
  EXPECT_EQ(g.to_string(), "Θ(lg |G|^2)");
  HostSizeForm u;
  u.unconstrained = true;
  u.alpha = 1.0;
  EXPECT_NE(u.to_string().find("no bandwidth obstruction"),
            std::string::npos);
}

// --- Table 4 registry ------------------------------------------------------

TEST(Theory, Table4Exponents) {
  EXPECT_DOUBLE_EQ(beta_theory(Family::kLinearArray).p, 0.0);
  EXPECT_DOUBLE_EQ(beta_theory(Family::kXTree).q, 1.0);
  EXPECT_DOUBLE_EQ(beta_theory(Family::kMesh, 2).p, 0.5);
  EXPECT_DOUBLE_EQ(beta_theory(Family::kMesh, 3).p, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(beta_theory(Family::kDeBruijn).p, 1.0);
  EXPECT_DOUBLE_EQ(beta_theory(Family::kDeBruijn).q, -1.0);
  EXPECT_DOUBLE_EQ(beta_theory(Family::kHypercube).p, 1.0);
  EXPECT_DOUBLE_EQ(lambda_theory(Family::kLinearArray).p, 1.0);
  EXPECT_DOUBLE_EQ(lambda_theory(Family::kMesh, 2).p, 0.5);
  EXPECT_DOUBLE_EQ(lambda_theory(Family::kButterfly).q, 1.0);
}

TEST(Theory, BetaOrdering) {
  // Asymptotic ordering (evaluated far out so constants cannot flip it):
  // bus <= tree <= x-tree <= mesh2 <= mesh3 <= de Bruijn.
  const double n = 1e12;
  EXPECT_LE(beta_theory(Family::kGlobalBus)(n),
            beta_theory(Family::kTree)(n) + 1e-9);
  EXPECT_LE(beta_theory(Family::kTree)(n), beta_theory(Family::kXTree)(n));
  EXPECT_LE(beta_theory(Family::kXTree)(n), beta_theory(Family::kMesh, 2)(n));
  EXPECT_LE(beta_theory(Family::kMesh, 2)(n),
            beta_theory(Family::kMesh, 3)(n));
  EXPECT_LE(beta_theory(Family::kMesh, 3)(n),
            beta_theory(Family::kDeBruijn)(n));
}

TEST(Theory, EveryFamilyRegistered) {
  for (Family f : all_families()) {
    const AsymFn b = beta_theory(f, 2);
    const AsymFn l = lambda_theory(f, 2);
    EXPECT_GT(b.c, 0.0) << family_name(f);
    EXPECT_GT(l.c, 0.0) << family_name(f);
    EXPECT_TRUE(is_bottleneck_free(f));
  }
}

// --- empirical vs theory ----------------------------------------------------

TEST(Empirical, BoundsBracketSimulatedRate) {
  Prng rng(101);
  for (Family f : {Family::kLinearArray, Family::kTree, Family::kMesh,
                   Family::kDeBruijn}) {
    const Machine m = make_machine(f, 256, 2, rng);
    BetaMeasureOptions opt;
    opt.throughput.trials = 2;
    const BetaBounds b = measure_beta(m, rng, opt);
    EXPECT_GT(b.simulated, 0.0) << m.name;
    // The simulated rate can exceed a heuristic KL cut only by slack in the
    // estimators; allow a small factor.
    EXPECT_LT(b.simulated, 2.5 * b.upper() + 2.0) << m.name;
  }
}

TEST(Empirical, MeshBetaScalesLikeSqrtN) {
  Prng rng(103);
  ThroughputOptions opt;
  opt.trials = 2;
  const double r16 =
      measure_beta_simulated(make_mesh({16, 16}), rng, opt);
  const double r32 =
      measure_beta_simulated(make_mesh({32, 32}), rng, opt);
  // sqrt(1024/256) = 2; allow wide tolerance.
  EXPECT_GT(r32 / r16, 1.4);
  EXPECT_LT(r32 / r16, 3.0);
}

TEST(Empirical, WeakHypercubeSlowerThanWireCount) {
  Prng rng(107);
  ThroughputOptions opt;
  opt.trials = 2;
  const Machine weak = make_hypercube(8);
  Machine strong = weak;
  strong.forward_cap.clear();
  const double r_weak = measure_beta_simulated(weak, rng, opt);
  const double r_strong = measure_beta_simulated(strong, rng, opt);
  EXPECT_GT(r_strong, 1.5 * r_weak);
}

}  // namespace
}  // namespace netemu
