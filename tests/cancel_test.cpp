// Tests for cooperative cancellation and graceful drain (docs/LIFECYCLE.md):
// CancelToken semantics, the executor's flight CancelSource (deadline
// arming, last-waiter cancellation, the {"op":"cancel"} verb, drain mode),
// degraded partial results staying out of the cache, the client's single
// deadline budget across retries, and the fleet firing cancel at hedge
// losers.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "netemu/fleet/router.hpp"
#include "netemu/service/client.hpp"
#include "netemu/service/executor.hpp"
#include "netemu/service/protocol.hpp"
#include "netemu/service/server.hpp"
#include "netemu/util/cancel.hpp"
#include "netemu/util/json.hpp"

using namespace netemu;

namespace {

Query estimate_query(double n, std::uint64_t seed = 1) {
  Query q;
  q.kind = QueryKind::kEstimate;
  q.n = n;
  q.seed = seed;
  return q;
}

/// Spin until `pred` holds or `ms` elapse; returns whether it held.
template <typename Pred>
bool eventually(Pred pred, std::uint64_t ms = 5000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------- CancelToken

TEST(CancelToken, DefaultTokenIsInertAndFree) {
  CancelToken token;
  EXPECT_FALSE(token.valid());
  EXPECT_FALSE(token.cancelled());
  EXPECT_NO_THROW(token.check());
}

TEST(CancelToken, RequestCancelFiresEveryToken) {
  CancelSource source;
  const CancelToken a = source.token();
  const CancelToken b = source.token();
  EXPECT_TRUE(a.valid());
  EXPECT_FALSE(a.cancelled());
  source.request_cancel();
  EXPECT_TRUE(a.cancelled());
  EXPECT_TRUE(b.cancelled());
  EXPECT_THROW(a.check(), CancelledError);
}

TEST(CancelToken, DeadlineLatchesIntoTheFlag) {
  CancelSource source;
  source.set_deadline_after_ms(1);
  const CancelToken token = source.token();
  EXPECT_TRUE(eventually([&] { return token.cancelled(); }, 2000));
  // Latched: once observed, the flag answer is immediate and stable.
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(source.cancel_requested());
}

TEST(CancelToken, ZeroDeadlineMeansNone) {
  CancelSource source;
  source.set_deadline_after_ms(0);
  const CancelToken token = source.token();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(token.cancelled());
}

// ------------------------------------------------------------------- executor

TEST(ExecutorCancel, DegradedPartialIsSurfacedAndNeverCached) {
  QueryExecutor::Options options;
  options.threads = 2;
  std::atomic<int> computes{0};
  options.compute = [&](const Query& q, const CancelToken&) {
    ++computes;
    // What plan_estimate returns when the deadline interrupted the sweep:
    // the completed trials, flagged.
    Json doc = Json::object();
    doc["n"] = q.n;
    doc["trials"] = 5;
    doc["trials_completed"] = 2;
    doc["degraded"] = true;
    return doc;
  };
  QueryExecutor exec(options);

  const Query q = estimate_query(64);
  const Response r1 = exec.execute(q);
  ASSERT_TRUE(r1.ok) << r1.error;
  EXPECT_TRUE(r1.degraded);
  EXPECT_NE(r1.result.find("\"degraded\":true"), std::string::npos);

  // A partial answer must not poison the content address: the same query
  // recomputes instead of hitting the cache.
  const Response r2 = exec.execute(q);
  ASSERT_TRUE(r2.ok);
  EXPECT_FALSE(r2.cache_hit);
  EXPECT_EQ(computes.load(), 2);

  const QueryExecutor::Stats s = exec.stats();
  EXPECT_EQ(s.cancelled, 2u);
  EXPECT_EQ(s.cache_hits, 0u);
}

TEST(ExecutorCancel, DegradedResponseLineCarriesTheFlag) {
  QueryExecutor::Options options;
  options.threads = 1;
  options.compute = [](const Query&, const CancelToken&) {
    Json doc = Json::object();
    doc["trials"] = 3;
    doc["trials_completed"] = 1;
    doc["degraded"] = true;
    return doc;
  };
  QueryExecutor exec(options);
  const std::string line = handle_request_line(
      R"({"op":"estimate","family":"mesh","n":64})", exec);
  EXPECT_NE(line.find("\"ok\":true"), std::string::npos) << line;
  EXPECT_NE(line.find("\"degraded\":true"), std::string::npos) << line;
}

TEST(ExecutorCancel, UnwoundComputeCountsAsCancelled) {
  QueryExecutor::Options options;
  options.threads = 1;
  options.compute = [](const Query&, const CancelToken&) -> Json {
    throw CancelledError("unwound mid-simulation");
  };
  QueryExecutor exec(options);
  const Response r = exec.execute(estimate_query(64));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("cancelled"), std::string::npos) << r.error;
  EXPECT_EQ(exec.stats().cancelled, 1u);
}

TEST(ExecutorCancel, LastDepartingWaiterCancelsTheCompute) {
  QueryExecutor::Options options;
  options.threads = 1;
  std::atomic<bool> saw_cancel{false};
  options.compute = [&](const Query&, const CancelToken& token) -> Json {
    // Cooperative compute: grinds until the flight's token fires (bounded
    // so a regression cannot hang the test).
    for (int i = 0; i < 20000; ++i) {
      if (token.cancelled()) {
        saw_cancel = true;
        throw CancelledError("stopped by flight token");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return Json::object();
  };
  QueryExecutor exec(options);

  Query q = estimate_query(64);
  q.deadline_ms = 40;
  const Response r = exec.execute(q);
  // The flight's CancelSource is armed with the leader's deadline, and the
  // last departing waiter fires it as a backstop — either way the caller
  // gets an error, and the compute actually unwinds (reclaiming the
  // worker) instead of grinding to completion.
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(eventually([&] { return saw_cancel.load(); }));
  EXPECT_TRUE(eventually([&] { return exec.stats().cancelled == 1; }));
}

TEST(ExecutorCancel, CancelTraceFiresTheMatchingFlight) {
  QueryExecutor::Options options;
  options.threads = 1;
  std::atomic<bool> started{false};
  options.compute = [&](const Query&, const CancelToken& token) -> Json {
    started = true;
    for (int i = 0; i < 20000; ++i) {
      token.check();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return Json::object();
  };
  QueryExecutor exec(options);

  Query q = estimate_query(64);
  q.trace_id = 0xabcdef12u;
  Response r;
  std::thread leader([&] { r = exec.execute(q); });
  ASSERT_TRUE(eventually([&] { return started.load(); }));

  EXPECT_FALSE(exec.cancel_trace(0x1111));  // unknown trace: no flight
  EXPECT_TRUE(exec.cancel_trace(0xabcdef12u));
  leader.join();
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("cancelled"), std::string::npos) << r.error;
  EXPECT_EQ(exec.stats().cancelled, 1u);
}

TEST(ExecutorCancel, DrainShedsNewFlightsButServesCacheHits) {
  QueryExecutor::Options options;
  options.threads = 1;
  options.compute = [](const Query& q, const CancelToken&) {
    Json doc = Json::object();
    doc["n"] = q.n;
    return doc;
  };
  QueryExecutor exec(options);

  const Query cached = estimate_query(64);
  ASSERT_TRUE(exec.execute(cached).ok);  // prime the cache

  EXPECT_FALSE(exec.draining());
  exec.begin_drain();
  EXPECT_TRUE(exec.draining());

  // New work is shed with the overloaded flag so a fleet fails it over...
  const Response shed = exec.execute(estimate_query(65));
  EXPECT_FALSE(shed.ok);
  EXPECT_TRUE(shed.overloaded);
  EXPECT_NE(shed.error.find("draining"), std::string::npos) << shed.error;

  // ...but answers the executor already has still serve.
  const Response hit = exec.execute(cached);
  EXPECT_TRUE(hit.ok);
  EXPECT_TRUE(hit.cache_hit);
}

// ----------------------------------------------------- drain during overload

TEST(DrainOverload, DrainingOutranksGuardShedsAndCarriesNoHint) {
  // A guarded executor mid-storm that starts draining must answer
  // "draining" (no retry hint — the server is going away, callers should
  // fail over), not a guard shed with a backoff hint that invites retries.
  QueryExecutor::Options options;
  options.threads = 1;
  options.guard.enabled = true;
  options.guard.cost_budget = 1;  // the gate is trivially full once busy
  options.guard.adaptive = false;
  options.compute = [](const Query& q, const CancelToken&) {
    Json doc = Json::object();
    doc["n"] = q.n;
    return doc;
  };
  QueryExecutor exec(options);
  exec.begin_drain();

  const Response r = exec.execute(estimate_query(64));
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(r.overloaded);
  EXPECT_NE(r.error.find("draining"), std::string::npos) << r.error;
  EXPECT_EQ(r.retry_after_ms, 0u);
}

TEST(DrainOverload, QueuedUnstartedFlightsShedWhenDrainBegins) {
  // Guard mode queues leaders in the fair scheduler when every worker is
  // busy.  Drain exists to finish what is RUNNING: the queued-but-unstarted
  // flight must answer "draining" immediately instead of starting.
  QueryExecutor::Options options;
  options.threads = 1;  // one worker, so a second flight parks in the queue
  options.guard.enabled = true;
  options.guard.adaptive = false;
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool gate_open = false;
  std::atomic<int> computes{0};
  options.compute = [&](const Query& q, const CancelToken&) {
    ++computes;
    std::unique_lock lock(gate_mutex);
    gate_cv.wait(lock, [&] { return gate_open; });
    Json doc = Json::object();
    doc["n"] = q.n;
    return doc;
  };
  QueryExecutor exec(options);

  Response running, queued;
  std::thread first([&] { running = exec.execute(estimate_query(64)); });
  ASSERT_TRUE(eventually([&] { return computes.load() == 1; }));
  std::thread second([&] { queued = exec.execute(estimate_query(65)); });
  ASSERT_TRUE(eventually([&] { return exec.pending() == 2; }));

  exec.begin_drain();
  // The queued flight answers now — before the gate opens, so it provably
  // never ran.
  second.join();
  EXPECT_FALSE(queued.ok);
  EXPECT_TRUE(queued.overloaded);
  EXPECT_NE(queued.error.find("draining"), std::string::npos) << queued.error;
  EXPECT_EQ(queued.retry_after_ms, 0u);
  EXPECT_EQ(computes.load(), 1);

  // The running flight is drain's whole point: it finishes and answers.
  {
    std::lock_guard lock(gate_mutex);
    gate_open = true;
  }
  gate_cv.notify_all();
  first.join();
  EXPECT_TRUE(running.ok) << running.error;
  EXPECT_EQ(exec.stats().rejected, 1u);
}

// ------------------------------------------------------------------- protocol

TEST(ProtocolCancel, CancelOpValidatesItsTraceField) {
  QueryExecutor exec;
  EXPECT_NE(handle_request_line(R"({"op":"cancel"})", exec)
                .find("missing string field 'trace'"),
            std::string::npos);
  EXPECT_NE(handle_request_line(R"({"op":"cancel","trace":"zzz"})", exec)
                .find("nonzero hex64"),
            std::string::npos);
  // A well-formed id with no matching flight: fine, nothing to cancel.
  const std::string line =
      handle_request_line(R"({"op":"cancel","trace":"00000000000000ab"})",
                          exec);
  EXPECT_NE(line.find("\"ok\":true"), std::string::npos) << line;
  EXPECT_NE(line.find("\"cancelled\":false"), std::string::npos) << line;
}

TEST(ProtocolCancel, DrainOpEntersDrainModeAndHealthReportsIt) {
  QueryExecutor exec;
  EXPECT_NE(handle_request_line(R"({"op":"health"})", exec).find("\"ok\""),
            std::string::npos);
  bool drain = false;
  const std::string line =
      handle_request_line(R"({"op":"drain"})", exec, nullptr, &drain);
  EXPECT_TRUE(drain);
  EXPECT_NE(line.find("\"draining\":true"), std::string::npos) << line;
  EXPECT_TRUE(exec.draining());
  EXPECT_NE(handle_request_line(R"({"op":"health"})", exec)
                .find("\"status\":\"draining\""),
            std::string::npos);
}

// ------------------------------------------------------- client budget

TEST(ClientBudget, RetriesDrawFromOneDeadlineBudget) {
  // A backend that always answers garbage: every attempt is a protocol
  // failure, so an unbudgeted client would burn the whole retry schedule.
  Server::Options so;
  so.port = 0;
  Server garbage([](const std::string&, bool*) { return "not json"; }, so);
  std::string error;
  ASSERT_TRUE(garbage.start(&error)) << error;

  Client::RetryPolicy policy;
  policy.max_attempts = 10;
  policy.base_backoff_ms = 60;
  policy.max_backoff_ms = 60;  // ~9 x 60ms of sleeping without a budget
  Client client(policy);
  client.set_target(garbage.port());

  Json q = Json::object();
  q["op"] = "bandwidth";
  q["family"] = "Mesh";
  q["n"] = 64;
  q["deadline_ms"] = 100;

  const auto start = std::chrono::steady_clock::now();
  const Client::RequestOutcome out = client.request_outcome(q);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  EXPECT_FALSE(out.doc.has_value());
  // The budget — not the attempt allowance — ended the request, well
  // before the 540ms the full backoff schedule would cost.
  EXPECT_LT(out.attempts, policy.max_attempts);
  EXPECT_NE(out.error.find("deadline budget exhausted"), std::string::npos)
      << out.error;
  EXPECT_LT(ms, 450);
  garbage.stop();
}

// ------------------------------------------------------------ fleet hedging

namespace {

struct CancelTestBackend {
  QueryExecutor::Options options;
  std::unique_ptr<QueryExecutor> executor;
  std::unique_ptr<Server> server;

  std::uint16_t start() {
    executor = std::make_unique<QueryExecutor>(options);
    Server::Options so;
    so.port = 0;
    server = std::make_unique<Server>(*executor, so);
    std::string error;
    EXPECT_TRUE(server->start(&error)) << error;
    return server->port();
  }
};

}  // namespace

TEST(FleetCancel, HedgeWinnerFiresCancelAtTheLoser) {
  // Backend 0 is pathologically slow but cooperative; backend 1 answers at
  // once.  A hedged request whose primary is the slow backend resolves via
  // the hedge, and the router must then fire {"op":"cancel"} at the loser
  // so its compute unwinds instead of running to completion.
  CancelTestBackend slow, fast;
  slow.options.threads = 2;
  slow.options.compute = [](const Query& q,
                            const CancelToken& token) -> Json {
    for (int i = 0; i < 4000; ++i) {
      token.check();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    Json doc = Json::object();
    doc["n"] = q.n;
    return doc;
  };
  fast.options.threads = 2;
  fast.options.compute = [](const Query& q, const CancelToken&) {
    Json doc = Json::object();
    doc["n"] = q.n;
    return doc;
  };
  const std::uint16_t slow_port = slow.start();
  const std::uint16_t fast_port = fast.start();

  FleetRouter::Options options;
  options.backends.push_back({slow_port, ""});
  options.backends.push_back({fast_port, ""});
  options.probe_interval_ms = 0;
  options.client.max_attempts = 1;
  options.client.attempt_timeout_ms = 30000;
  options.hedge = true;
  options.hedge_fixed_ms = 10;
  FleetRouter router(options);

  // Find an estimate query the slow backend owns (distinct n values hash to
  // distinct content addresses, so a handful of tries always lands one).
  Json q = Json::object();
  q["op"] = "estimate";
  q["family"] = "mesh";
  int n = 64;
  for (; router.rank_for(q)[0] != 0 && n < 164; ++n) {
    q["n"] = n;
  }
  ASSERT_EQ(router.rank_for(q)[0], 0u);

  const FleetRouter::Result r = router.request(q);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.hedged);
  EXPECT_TRUE(r.hedge_won);
  EXPECT_EQ(r.backend, 1u);
  ASSERT_TRUE(r.cancel_fired);
  EXPECT_GE(router.stats().cancels_fired, 1u);

  // The loser's backend really stops: its compute throws CancelledError,
  // which its executor counts.
  EXPECT_TRUE(eventually(
      [&] { return slow.executor->stats().cancelled >= 1; }));
  router.stop();
}
