// Unit tests for the graph subsystem: Multigraph, algorithms, collapse, io.

#include <gtest/gtest.h>

#include "netemu/graph/algorithms.hpp"
#include "netemu/graph/collapse.hpp"
#include "netemu/graph/io.hpp"
#include "netemu/graph/multigraph.hpp"

namespace netemu {
namespace {

Multigraph path_graph(std::size_t n) {
  MultigraphBuilder b(n);
  for (Vertex v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  return std::move(b).build();
}

Multigraph cycle_graph(std::size_t n) {
  MultigraphBuilder b(n);
  for (Vertex v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  b.add_edge(static_cast<Vertex>(n - 1), 0);
  return std::move(b).build();
}

TEST(Multigraph, EmptyGraph) {
  Multigraph g = MultigraphBuilder(0).build();
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.total_multiplicity(), 0u);
}

TEST(Multigraph, BuilderMergesParallelInsertions) {
  MultigraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 0, 2);  // reversed orientation merges too
  b.add_edge(1, 2);
  Multigraph g = std::move(b).build();
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.total_multiplicity(), 4u);
  EXPECT_EQ(g.multiplicity(0, 1), 3u);
  EXPECT_EQ(g.multiplicity(1, 0), 3u);
  EXPECT_EQ(g.multiplicity(0, 2), 0u);
}

TEST(Multigraph, ZeroMultiplicityInsertionsAreDropped) {
  MultigraphBuilder b(2);
  b.add_edge(0, 1, 0);
  Multigraph g = std::move(b).build();
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Multigraph, DegreesCountMultiplicity) {
  MultigraphBuilder b(3);
  b.add_edge(0, 1, 5);
  b.add_edge(1, 2, 1);
  Multigraph g = std::move(b).build();
  EXPECT_EQ(g.degree(0), 5u);
  EXPECT_EQ(g.degree(1), 6u);
  EXPECT_EQ(g.degree(2), 1u);
  EXPECT_EQ(g.max_degree(), 6u);
  EXPECT_EQ(g.min_degree(), 1u);
}

TEST(Multigraph, NeighborsAndArcEdgeIndices) {
  Multigraph g = path_graph(3);
  const auto nb = g.neighbors(1);
  ASSERT_EQ(nb.size(), 2u);
  for (const Arc& a : nb) {
    const Edge& e = g.edge(a.edge);
    EXPECT_TRUE((e.u == 1 && e.v == a.to) || (e.v == 1 && e.u == a.to));
  }
}

TEST(Multigraph, ScaledMultipliesEveryEdge) {
  Multigraph g = path_graph(4).scaled(3);
  EXPECT_EQ(g.total_multiplicity(), 9u);
  EXPECT_EQ(g.multiplicity(1, 2), 3u);
}

TEST(Multigraph, SimpleResetsMultiplicities) {
  MultigraphBuilder b(2);
  b.add_edge(0, 1, 7);
  Multigraph g = std::move(b).build().simple();
  EXPECT_EQ(g.multiplicity(0, 1), 1u);
}

TEST(Algorithms, BfsDistancesOnPath) {
  Multigraph g = path_graph(5);
  const auto d = bfs_distances(g, 0);
  for (std::uint32_t i = 0; i < 5; ++i) EXPECT_EQ(d[i], i);
}

TEST(Algorithms, BfsDistancesDisconnected) {
  MultigraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  Multigraph g = std::move(b).build();
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[1], 1u);
  EXPECT_EQ(d[2], kUnreachable);
  EXPECT_FALSE(is_connected(g));
}

TEST(Algorithms, ShortestPathEndpointsAndAdjacency) {
  Multigraph g = cycle_graph(8);
  const auto p = shortest_path(g, 1, 5);
  ASSERT_EQ(p.size(), 5u);  // distance 4 either way
  EXPECT_EQ(p.front(), 1u);
  EXPECT_EQ(p.back(), 5u);
  for (std::size_t i = 0; i + 1 < p.size(); ++i) {
    EXPECT_GT(g.multiplicity(p[i], p[i + 1]), 0u);
  }
}

TEST(Algorithms, ShortestPathTrivial) {
  Multigraph g = path_graph(3);
  const auto p = shortest_path(g, 2, 2);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0], 2u);
}

TEST(Algorithms, DiameterOfPathAndCycle) {
  EXPECT_EQ(diameter_exact(path_graph(10)), 9u);
  EXPECT_EQ(diameter_exact(cycle_graph(10)), 5u);
  EXPECT_EQ(diameter_exact(cycle_graph(11)), 5u);
}

TEST(Algorithms, DoubleSweepExactOnPath) {
  Prng rng(1);
  EXPECT_EQ(diameter_double_sweep(path_graph(17), rng), 16u);
}

TEST(Algorithms, DoubleSweepLowerBoundsDiameter) {
  Prng rng(2);
  const Multigraph g = cycle_graph(20);
  EXPECT_LE(diameter_double_sweep(g, rng), diameter_exact(g));
  EXPECT_GE(diameter_double_sweep(g, rng), diameter_exact(g) / 2);
}

TEST(Algorithms, AvgDistancePath3) {
  // Path 0-1-2: distances (0,1)=1 (0,2)=2 (1,2)=1 -> mean over ordered = 8/6.
  EXPECT_NEAR(avg_distance_exact(path_graph(3)), 8.0 / 6.0, 1e-12);
}

TEST(Algorithms, AvgDistanceSampledAgreesWithExact) {
  Prng rng(3);
  const Multigraph g = cycle_graph(64);
  const double exact = avg_distance_exact(g);
  const double sampled = avg_distance_sampled(g, rng, 64);  // all sources
  EXPECT_NEAR(sampled, exact, 1e-9);
}

TEST(Algorithms, EccentricityCenterVsEnd) {
  Multigraph g = path_graph(9);
  EXPECT_EQ(eccentricity(g, 4), 4u);
  EXPECT_EQ(eccentricity(g, 0), 8u);
}

TEST(Algorithms, DegreeStats) {
  const DegreeStats s = degree_stats(path_graph(4));
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 2u);
  EXPECT_NEAR(s.mean, 1.5, 1e-12);
}

TEST(Collapse, QuotientAndDroppedLoops) {
  // Path 0-1-2-3 collapsed into {0,1} and {2,3}.
  Multigraph g = path_graph(4);
  const CollapseResult r = collapse(g, {0, 0, 1, 1}, 2);
  EXPECT_EQ(r.quotient.num_vertices(), 2u);
  EXPECT_EQ(r.quotient.multiplicity(0, 1), 1u);
  EXPECT_EQ(r.dropped_loop_multiplicity, 2u);
  EXPECT_EQ(r.load[0], 2u);
  EXPECT_EQ(r.load[1], 2u);
}

TEST(Collapse, ParallelEdgesAccumulate) {
  // Cycle of 4 collapsed to two super-vertices of opposite corners.
  Multigraph g = cycle_graph(4);
  const CollapseResult r = collapse(g, {0, 1, 0, 1}, 2);
  EXPECT_EQ(r.quotient.multiplicity(0, 1), 4u);
  EXPECT_EQ(r.dropped_loop_multiplicity, 0u);
}

TEST(Io, EdgeListRoundTrip) {
  MultigraphBuilder b(5);
  b.add_edge(0, 4, 2);
  b.add_edge(1, 3);
  Multigraph g = std::move(b).build();
  const Multigraph g2 = from_edge_list(to_edge_list(g));
  EXPECT_EQ(g2.num_vertices(), 5u);
  EXPECT_EQ(g2.multiplicity(0, 4), 2u);
  EXPECT_EQ(g2.multiplicity(1, 3), 1u);
  EXPECT_EQ(g2.total_multiplicity(), g.total_multiplicity());
}

TEST(Io, RejectsMalformedEdgeList) {
  EXPECT_THROW(from_edge_list(""), std::invalid_argument);
  EXPECT_THROW(from_edge_list("3\n0 5 1\n"), std::invalid_argument);
  EXPECT_THROW(from_edge_list("3\n1 1 1\n"), std::invalid_argument);
}

TEST(Io, DotContainsEdges) {
  Multigraph g = path_graph(3);
  const std::string dot = to_dot(g, "P");
  EXPECT_NE(dot.find("graph P"), std::string::npos);
  EXPECT_NE(dot.find("0 -- 1"), std::string::npos);
  EXPECT_NE(dot.find("1 -- 2"), std::string::npos);
}

}  // namespace
}  // namespace netemu
