// Tests for netemu::faultline and the resilience it forces on the service
// stack: deterministic fault plans, channel behavior under partial I/O and
// drops, crash-safe cache persistence (torn-write sweep, checksum
// quarantine), the executor watchdog + serve-stale + shedding hints, client
// retries, the health op, and a miniature multi-seed chaos soak.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "netemu/faultline/fault_plan.hpp"
#include "netemu/faultline/injector.hpp"
#include "netemu/service/client.hpp"
#include "netemu/service/executor.hpp"
#include "netemu/service/protocol.hpp"
#include "netemu/service/query.hpp"
#include "netemu/service/result_cache.hpp"
#include "netemu/service/server.hpp"
#include "netemu/util/json.hpp"
#include "netemu/util/thread_pool.hpp"

namespace netemu {
namespace {

// ---------------------------------------------------------- fault plans --

TEST(FaultPlan, SpecRoundTrip) {
  FaultPlan plan;
  plan.seed = 42;
  plan.drop_p = 0.02;
  plan.partial_p = 0.3;
  plan.slow_p = 0.1;
  plan.slow_ms = 2;
  plan.disk_fail_p = 0.2;
  plan.torn_p = 0.25;
  plan.stall_p = 0.05;
  plan.stall_ms = 20;

  std::string error;
  const auto parsed = FaultPlan::parse(plan.spec(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->spec(), plan.spec());
  EXPECT_EQ(parsed->seed, 42u);
  EXPECT_DOUBLE_EQ(parsed->partial_p, 0.3);
  EXPECT_EQ(parsed->stall_ms, 20u);
  EXPECT_TRUE(parsed->enabled());
}

TEST(FaultPlan, DefaultsAreAllDisabled) {
  const auto plan = FaultPlan::parse("seed=7");
  ASSERT_TRUE(plan.has_value());
  EXPECT_FALSE(plan->enabled());
  EXPECT_EQ(plan->spec(), "seed=7");
}

TEST(FaultPlan, ParseRejectsMalformedSpecs) {
  std::string error;
  EXPECT_FALSE(FaultPlan::parse("drop", &error));
  EXPECT_FALSE(FaultPlan::parse("nope=0.5", &error));
  EXPECT_FALSE(FaultPlan::parse("drop=1.5", &error));   // p > 1
  EXPECT_FALSE(FaultPlan::parse("drop=-0.1", &error));  // p < 0
  EXPECT_FALSE(FaultPlan::parse("drop=abc", &error));
  EXPECT_FALSE(FaultPlan::parse("drop=0.1:5", &error));  // no duration
  EXPECT_FALSE(FaultPlan::parse("slow=0.1:x", &error));
  EXPECT_FALSE(FaultPlan::parse("seed=notanumber", &error));
  EXPECT_FALSE(error.empty());
}

TEST(FaultPlan, ForSeedIsDeterministicAndEnabled) {
  const FaultPlan a = FaultPlan::for_seed(11);
  const FaultPlan b = FaultPlan::for_seed(11);
  const FaultPlan c = FaultPlan::for_seed(12);
  EXPECT_EQ(a.spec(), b.spec());
  EXPECT_NE(a.spec(), c.spec());
  EXPECT_TRUE(a.enabled());
  EXPECT_GT(a.torn_p, 0.0);
  EXPECT_GT(a.drop_p, 0.0);
}

TEST(FaultInjector, SameSeedSameFaultSequence) {
  auto plan = FaultPlan::parse("seed=5,drop=0.1,partial=0.5");
  ASSERT_TRUE(plan.has_value());
  const auto sequence = [&] {
    FaultInjector injector(*plan);
    std::vector<std::size_t> out;
    for (int i = 0; i < 200; ++i) {
      std::size_t len = 4096;
      const auto fault = injector.on_io(len);
      out.push_back(fault == FaultInjector::IoFault::kDrop ? 0 : len);
    }
    return out;
  };
  EXPECT_EQ(sequence(), sequence());
  FaultInjector injector(*plan);
  for (int i = 0; i < 200; ++i) {
    std::size_t len = 4096;
    injector.on_io(len);
  }
  const auto counts = injector.counts();
  EXPECT_GT(counts.drops, 0u);
  EXPECT_GT(counts.shorts, 0u);
}

// -------------------------------------------------------- line channels --

struct SocketPair {
  int fds[2] = {-1, -1};
  SocketPair() { EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0); }
  ~SocketPair() {
    if (fds[0] >= 0) ::close(fds[0]);
    if (fds[1] >= 0) ::close(fds[1]);
  }
  void close_first() {
    ::close(fds[0]);
    fds[0] = -1;
  }
};

TEST(LineChannel, SurvivesInjectedPartialIo) {
  auto plan = FaultPlan::parse("seed=3,partial=0.9");
  ASSERT_TRUE(plan.has_value());
  FaultInjector injector(*plan);

  SocketPair pair;
  LineChannel writer(pair.fds[0]);
  LineChannel reader(pair.fds[1]);
  writer.set_fault_injector(&injector);
  reader.set_fault_injector(&injector);

  // Lines long enough that the 1..16-byte short transfers shred them into
  // many partial reads and writes.
  std::vector<std::string> lines;
  for (int i = 0; i < 20; ++i) {
    lines.push_back("line-" + std::to_string(i) + "-" +
                    std::string(200 + i * 7, 'x'));
  }
  std::thread sender([&] {
    for (const auto& line : lines) ASSERT_TRUE(writer.write_line(line));
  });
  std::string got;
  for (const auto& line : lines) {
    ASSERT_EQ(reader.read_line_status(got), LineChannel::Status::kOk);
    EXPECT_EQ(got, line);
  }
  sender.join();
  EXPECT_GT(injector.counts().shorts, 0u);
}

TEST(LineChannel, ZeroByteReadAtBoundaryIsCleanEof) {
  SocketPair pair;
  LineChannel writer(pair.fds[0]);
  LineChannel reader(pair.fds[1]);
  ASSERT_TRUE(writer.write_line("complete"));
  pair.close_first();

  std::string line;
  EXPECT_EQ(reader.read_line_status(line), LineChannel::Status::kOk);
  EXPECT_EQ(line, "complete");
  EXPECT_EQ(reader.read_line_status(line), LineChannel::Status::kEof);
}

TEST(LineChannel, EofMidLineIsAnError) {
  SocketPair pair;
  LineChannel reader(pair.fds[1]);
  ASSERT_GT(::write(pair.fds[0], "torn-request-no-newline", 23), 0);
  pair.close_first();

  std::string line;
  EXPECT_EQ(reader.read_line_status(line), LineChannel::Status::kError);
}

TEST(LineChannel, OverlongLineIsCappedAndStreamResyncs) {
  SocketPair pair;
  LineChannel writer(pair.fds[0]);
  LineChannel reader(pair.fds[1]);

  std::thread sender([&] {
    ASSERT_TRUE(writer.write_line(std::string(5000, 'a')));
    ASSERT_TRUE(writer.write_line("after"));
  });
  std::string line;
  EXPECT_EQ(reader.read_line_status(line, /*max_line=*/64),
            LineChannel::Status::kTooLong);
  // Bounded memory: the oversized payload was discarded, not buffered.
  EXPECT_TRUE(line.empty());
  EXPECT_EQ(reader.read_line_status(line, /*max_line=*/64),
            LineChannel::Status::kOk);
  EXPECT_EQ(line, "after");
  sender.join();
}

TEST(LineChannel, InjectedDropReadsAsError) {
  auto plan = FaultPlan::parse("seed=1,drop=1");
  ASSERT_TRUE(plan.has_value());
  FaultInjector injector(*plan);
  SocketPair pair;
  LineChannel writer(pair.fds[0]);
  LineChannel reader(pair.fds[1]);
  ASSERT_TRUE(writer.write_line("hello"));
  reader.set_fault_injector(&injector);
  std::string line;
  EXPECT_EQ(reader.read_line_status(line), LineChannel::Status::kError);
  EXPECT_EQ(injector.counts().drops, 1u);
}

// -------------------------------------------------- crash-safe cache --

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(ResultCacheFaults, TornWriteSweepRecoversEveryIntactEntry) {
  const std::string path = temp_path("netemu_torn_sweep.json");
  std::remove(path.c_str());

  // Varied value lengths so tears land at interesting offsets.
  std::vector<std::pair<std::uint64_t, std::string>> entries;
  for (std::uint64_t i = 1; i <= 5; ++i) {
    entries.emplace_back(
        i, R"({"beta":)" + std::to_string(i) + R"(,"pad":")" +
               std::string(10 * static_cast<std::size_t>(i), 'v') + R"("})");
  }
  {
    ResultCache cache(8, path);
    // Insert cold-to-hot so the file order (hot->cold) is 5,4,3,2,1.
    for (const auto& [key, value] : entries) cache.put(key, value);
    ASSERT_TRUE(cache.save());
  }
  const std::string file = read_file(path);
  ASSERT_FALSE(file.empty());

  // A line's entry is recoverable once all its content bytes are present
  // (the trailing '\n' itself is not required: a torn tail that happens to
  // end exactly at the line's last byte still verifies).
  std::vector<std::size_t> content_ends;  // per entry line, skip header
  std::size_t line_start = file.find('\n') + 1;
  const std::size_t header_end = line_start;
  while (line_start < file.size()) {
    std::size_t nl = file.find('\n', line_start);
    if (nl == std::string::npos) nl = file.size();
    content_ends.push_back(nl);
    line_start = nl + 1;
  }
  ASSERT_EQ(content_ends.size(), entries.size());

  const std::string truncated = temp_path("netemu_torn_sweep_cut.json");
  for (std::size_t cut = 0; cut <= file.size(); ++cut) {
    write_file(truncated, file.substr(0, cut));
    ResultCache reloaded(8, truncated);
    const bool loaded = reloaded.load();  // must never crash or throw
    std::size_t expected = 0;
    for (const std::size_t end : content_ends) expected += (end <= cut);
    if (cut < header_end - 1) {
      // Not even the header's content bytes survived.
      EXPECT_FALSE(loaded) << "cut=" << cut;
      continue;
    }
    ASSERT_TRUE(loaded) << "cut=" << cut;
    EXPECT_EQ(reloaded.size(), expected) << "cut=" << cut;
    // Whatever was recovered must be byte-identical to the original.
    for (const auto& [key, value] : entries) {
      const auto got = reloaded.get(key);
      if (got) {
        EXPECT_EQ(*got, value) << "cut=" << cut;
      }
    }
  }
  std::remove(path.c_str());
  std::remove(truncated.c_str());
}

TEST(ResultCacheFaults, CorruptedEntryIsQuarantinedOthersLoad) {
  const std::string path = temp_path("netemu_corrupt_entry.json");
  std::remove(path.c_str());
  {
    ResultCache cache(8, path);
    cache.put(0xaa, R"({"value":1})");
    cache.put(0xbb, R"({"value":2})");
    cache.put(0xcc, R"({"value":3})");
    ASSERT_TRUE(cache.save());
  }
  std::string file = read_file(path);
  // Flip one byte inside the middle entry's value.
  const std::size_t pos = file.find("\"value\\\":2");
  ASSERT_NE(pos, std::string::npos);
  file[pos + 9] = '7';
  write_file(path, file);

  ResultCache reloaded(8, path);
  EXPECT_TRUE(reloaded.load());
  EXPECT_EQ(reloaded.size(), 2u);
  EXPECT_EQ(reloaded.corrupt_entries(), 1u);
  EXPECT_TRUE(reloaded.get(0xaa).has_value());
  EXPECT_FALSE(reloaded.get(0xbb).has_value());
  EXPECT_TRUE(reloaded.get(0xcc).has_value());
  std::remove(path.c_str());
}

TEST(ResultCacheFaults, V1FormatStillLoads) {
  const std::string path = temp_path("netemu_v1_compat.json");
  write_file(path,
             R"({"entries":[{"key":"00000000000000aa","value":"{\"v\":1}"},)"
             R"({"key":"00000000000000bb","value":"{\"v\":2}"}],)"
             R"("format":"netemu-result-cache-v1"})"
             "\n");
  ResultCache cache(8, path);
  EXPECT_TRUE(cache.load());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.get(0xaa).value(), R"({"v":1})");
  std::remove(path.c_str());
}

TEST(ResultCacheFaults, InjectedDiskFailureLeavesOldFileIntact) {
  const std::string path = temp_path("netemu_disk_fail.json");
  std::remove(path.c_str());
  {
    ResultCache cache(8, path);
    cache.put(1, "stable");
    ASSERT_TRUE(cache.save());
  }
  const std::string before = read_file(path);

  auto plan = FaultPlan::parse("seed=1,disk_fail=1");
  ASSERT_TRUE(plan.has_value());
  FaultInjector injector(*plan);
  ResultCache cache(8, path);
  cache.set_fault_injector(&injector);
  cache.put(2, "newer");
  EXPECT_FALSE(cache.save());
  EXPECT_EQ(cache.save_failures(), 1u);
  EXPECT_EQ(read_file(path), before);  // clean failure: no file change
  std::remove(path.c_str());
}

TEST(ResultCacheFaults, InjectedTornWriteIsRecoverable) {
  const std::string path = temp_path("netemu_torn_inject.json");
  std::remove(path.c_str());
  auto plan = FaultPlan::parse("seed=9,torn=1");
  ASSERT_TRUE(plan.has_value());
  FaultInjector injector(*plan);
  {
    ResultCache cache(8, path);
    cache.set_fault_injector(&injector);
    for (std::uint64_t i = 1; i <= 20; ++i) {
      cache.put(i, R"({"payload":")" + std::string(50, 'p') + R"("})");
    }
    EXPECT_FALSE(cache.save());  // torn: file truncated mid-write
    EXPECT_EQ(injector.counts().torn_writes, 1u);
  }
  ResultCache reloaded(32, path);
  reloaded.load();  // must not crash; recovers the intact prefix
  EXPECT_LT(reloaded.size(), 20u);
  std::remove(path.c_str());
}

// ------------------------------------------------------ executor faults --

Query bandwidth_query(double n) {
  Query q;
  q.kind = QueryKind::kBandwidth;
  q.family = Family::kMesh;
  q.k = 2;
  q.n = n;
  return q;
}

TEST(ExecutorFaults, WatchdogCancelsHungFlightAndFreesSlot) {
  auto gate = std::make_shared<std::promise<void>>();
  auto gate_future =
      std::make_shared<std::shared_future<void>>(gate->get_future());
  auto calls = std::make_shared<std::atomic<int>>(0);
  QueryExecutor::Options options;
  options.threads = 2;
  options.max_queue = 1;
  options.hang_timeout_ms = 60;
  options.compute = [gate_future, calls](const Query& q, const CancelToken&) {
    if (calls->fetch_add(1) == 0) gate_future->wait();  // first call hangs
    Json doc = Json::object();
    doc["n"] = q.n;
    return doc;
  };
  QueryExecutor executor(std::move(options));

  Query hung = bandwidth_query(64);
  hung.deadline_ms = 5000;
  const auto start = std::chrono::steady_clock::now();
  const Response r = executor.execute(hung);
  const auto elapsed = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("hung"), std::string::npos) << r.error;
  EXPECT_LT(elapsed, 2000.0);  // the watchdog beat the 5s deadline
  EXPECT_EQ(executor.stats().hung, 1u);

  // The admission slot was freed: with max_queue=1 a new query is accepted.
  EXPECT_EQ(executor.pending(), 0u);
  const Response next = executor.execute(bandwidth_query(128));
  EXPECT_TRUE(next.ok) << next.error;

  // The stuck computation still completes and still fills the cache.
  gate->set_value();
  for (int i = 0; i < 200; ++i) {
    if (executor.cache().get(hung.cache_key())) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(executor.cache().get(hung.cache_key()).has_value());
}

TEST(ExecutorFaults, RefreshBypassesCacheAndRecomputes) {
  auto calls = std::make_shared<std::atomic<int>>(0);
  QueryExecutor::Options options;
  options.threads = 1;
  options.compute = [calls](const Query&, const CancelToken&) {
    Json doc = Json::object();
    doc["call"] = calls->fetch_add(1) + 1;
    return doc;
  };
  QueryExecutor executor(std::move(options));

  const Query q = bandwidth_query(64);
  EXPECT_TRUE(executor.execute(q).ok);
  EXPECT_TRUE(executor.execute(q).cache_hit);

  Query fresh = q;
  fresh.refresh = true;
  const Response r = executor.execute(fresh);
  EXPECT_TRUE(r.ok);
  EXPECT_FALSE(r.cache_hit);
  EXPECT_EQ(r.result, R"({"call":2})");
  EXPECT_EQ(calls->load(), 2);
  // The refreshed value replaced the cached one.
  EXPECT_EQ(executor.execute(q).result, R"({"call":2})");
}

TEST(ExecutorFaults, FailedRecomputeServesStale) {
  auto fail = std::make_shared<std::atomic<bool>>(false);
  QueryExecutor::Options options;
  options.threads = 1;
  options.compute = [fail](const Query&, const CancelToken&) -> Json {
    if (fail->load()) throw std::runtime_error("planner fault");
    Json doc = Json::object();
    doc["fresh"] = true;
    return doc;
  };
  QueryExecutor executor(std::move(options));

  const Query q = bandwidth_query(64);
  ASSERT_TRUE(executor.execute(q).ok);

  fail->store(true);
  Query refresh = q;
  refresh.refresh = true;
  const Response r = executor.execute(refresh);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.stale);
  EXPECT_EQ(r.result, R"({"fresh":true})");
  const auto s = executor.stats();
  EXPECT_EQ(s.stale_served, 1u);
  EXPECT_EQ(s.errors, 1u);

  // The stale marker survives serialization.
  const std::string line = response_to_line(r);
  EXPECT_NE(line.find(R"("stale":true)"), std::string::npos) << line;
}

TEST(ExecutorFaults, ShedResponseCarriesRetryAfterHint) {
  auto started = std::make_shared<std::promise<void>>();
  auto gate = std::make_shared<std::promise<void>>();
  auto gate_future =
      std::make_shared<std::shared_future<void>>(gate->get_future());
  QueryExecutor::Options options;
  options.threads = 1;
  options.max_queue = 1;
  options.retry_after_hint_ms = 75;
  options.compute = [started, gate_future](const Query&, const CancelToken&) {
    started->set_value();
    gate_future->wait();
    return Json::object();
  };
  QueryExecutor executor(std::move(options));

  std::thread leader([&executor] { executor.execute(bandwidth_query(64)); });
  started->get_future().wait();

  const Response shed = executor.execute(bandwidth_query(128));
  EXPECT_FALSE(shed.ok);
  EXPECT_TRUE(shed.overloaded);
  EXPECT_EQ(shed.retry_after_ms, 75u);
  const std::string line = response_to_line(shed);
  EXPECT_NE(line.find(R"("overloaded":true)"), std::string::npos) << line;
  EXPECT_NE(line.find(R"("retry_after_ms":75)"), std::string::npos) << line;

  gate->set_value();
  leader.join();
}

TEST(ExecutorFaults, InjectedWorkerStallsAreAbsorbed) {
  auto plan = FaultPlan::parse("seed=2,stall=1:1");
  ASSERT_TRUE(plan.has_value());
  FaultInjector injector(*plan);
  QueryExecutor::Options options;
  options.threads = 2;
  options.faults = &injector;
  options.compute = [](const Query& q, const CancelToken&) {
    Json doc = Json::object();
    doc["n"] = q.n;
    return doc;
  };
  QueryExecutor executor(std::move(options));
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(executor.execute(bandwidth_query(64 + i)).ok);
  }
  EXPECT_EQ(injector.counts().stalls, 10u);
}

// ------------------------------------------------------------ protocol --

TEST(Protocol, HealthReportsPoolCacheAndShedState) {
  QueryExecutor::Options options;
  options.threads = 2;
  options.max_queue = 16;
  options.retry_after_hint_ms = 33;
  options.compute = [](const Query&, const CancelToken&) { return Json::object(); };
  QueryExecutor executor(std::move(options));
  ASSERT_TRUE(executor.execute(bandwidth_query(64)).ok);

  const Json doc = Json::parse(handle_request_line(R"({"op":"health"})",
                                                   executor));
  ASSERT_TRUE(doc["ok"].as_bool());
  const Json& result = doc["result"];
  EXPECT_EQ(result["status"].as_string(), "ok");
  EXPECT_GE(result["uptime_s"].as_number(), 0.0);
  EXPECT_EQ(result["pool"]["threads"].as_int(), 2);
  EXPECT_EQ(result["pool"]["max_queue"].as_int(), 16);
  EXPECT_EQ(result["pool"]["pending"].as_int(), 0);
  EXPECT_EQ(result["cache"]["size"].as_int(), 1);
  EXPECT_EQ(result["cache"]["corrupt_entries"].as_int(), 0);
  EXPECT_FALSE(result["cache"]["persistent"].as_bool());
  EXPECT_EQ(result["shed"]["retry_after_ms"].as_int(), 33);
  EXPECT_EQ(result["flights"]["active"].as_int(), 0);
  EXPECT_EQ(result["flights"]["hung"].as_int(), 0);
}

TEST(Protocol, OverlongRequestLineGetsProtocolErrorAndConnectionSurvives) {
  QueryExecutor::Options options;
  options.compute = [](const Query&, const CancelToken&) { return Json::object(); };
  QueryExecutor executor(std::move(options));
  Server::Options server_options;
  server_options.port = 0;
  server_options.max_line = 256;
  Server server(executor, server_options);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  Client client;
  ASSERT_TRUE(client.connect(server.port(), &error)) << error;

  std::string response;
  ASSERT_TRUE(client.request_raw(std::string(1000, 'z'), response));
  EXPECT_NE(response.find("protocol_error"), std::string::npos) << response;

  // Same connection, next request still works.
  ASSERT_TRUE(client.request_raw(R"({"op":"ping"})", response));
  EXPECT_NE(response.find(R"("pong":true)"), std::string::npos) << response;
  server.stop();
}

// ------------------------------------------------------- client retries --

TEST(ClientRetry, SurvivesServerSideConnectionDrops) {
  auto plan = FaultPlan::parse("seed=21,drop=0.15");
  ASSERT_TRUE(plan.has_value());
  FaultInjector injector(*plan);

  QueryExecutor::Options options;
  options.threads = 2;
  options.compute = [](const Query& q, const CancelToken&) {
    Json doc = Json::object();
    doc["n"] = q.n;
    return doc;
  };
  QueryExecutor executor(std::move(options));
  Server::Options server_options;
  server_options.port = 0;
  server_options.faults = &injector;
  Server server(executor, server_options);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  Client::RetryPolicy policy;
  policy.max_attempts = 12;
  policy.base_backoff_ms = 1;
  policy.max_backoff_ms = 20;
  policy.jitter_seed = 77;
  Client client(policy);
  ASSERT_TRUE(client.connect(server.port(), &error)) << error;

  for (int i = 0; i < 40; ++i) {
    Json q = Json::object();
    q["op"] = "bandwidth";
    q["family"] = "Mesh";
    q["k"] = 2;
    q["n"] = 1000 + i;
    const auto doc = client.request(q, &error);
    ASSERT_TRUE(doc.has_value()) << error << " at i=" << i;
    EXPECT_TRUE((*doc)["ok"].as_bool()) << (*doc)["error"].as_string();
    EXPECT_DOUBLE_EQ((*doc)["result"]["n"].as_number(), 1000 + i);
  }
  EXPECT_GT(injector.counts().drops, 0u);
  EXPECT_GT(client.retries(), 0u);
  server.stop();
}

TEST(ClientRetry, HonorsOverloadedRetryAfterHint) {
  auto started = std::make_shared<std::promise<void>>();
  auto gate = std::make_shared<std::promise<void>>();
  auto gate_future =
      std::make_shared<std::shared_future<void>>(gate->get_future());
  auto first = std::make_shared<std::atomic<bool>>(true);
  QueryExecutor::Options options;
  options.threads = 1;
  options.max_queue = 1;
  options.retry_after_hint_ms = 20;
  options.compute = [started, gate_future, first](const Query& q, const CancelToken&) {
    if (first->exchange(false)) {
      started->set_value();
      gate_future->wait();
    }
    Json doc = Json::object();
    doc["n"] = q.n;
    return doc;
  };
  QueryExecutor executor(std::move(options));
  Server::Options server_options;
  server_options.port = 0;
  Server server(executor, server_options);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  // Occupy the single admission slot with a gated query.
  std::thread occupier([&server] {
    Client c;
    ASSERT_TRUE(c.connect(server.port()));
    std::string response;
    ASSERT_TRUE(c.request_raw(
        R"({"op":"bandwidth","family":"Mesh","k":2,"n":64})", response));
  });
  started->get_future().wait();

  // Release the gate shortly after the retrying client's first shed.
  std::thread releaser([&gate] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    gate->set_value();
  });

  Client::RetryPolicy policy;
  policy.max_attempts = 10;
  policy.base_backoff_ms = 5;
  policy.max_backoff_ms = 50;
  policy.jitter_seed = 5;
  Client client(policy);
  ASSERT_TRUE(client.connect(server.port(), &error)) << error;
  Json q = Json::object();
  q["op"] = "bandwidth";
  q["family"] = "Mesh";
  q["k"] = 2;
  q["n"] = 128;
  const auto doc = client.request(q, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_TRUE((*doc)["ok"].as_bool()) << (*doc)["error"].as_string();
  EXPECT_GE(client.retries(), 1u);
  EXPECT_GE(executor.stats().rejected, 1u);

  occupier.join();
  releaser.join();
  server.stop();
}

// ----------------------------------------------------------- thread pool --

TEST(ThreadPoolFaults, EscapingTaskExceptionIsSwallowedAndCounted) {
  ThreadPool pool(2);
  ASSERT_TRUE(pool.submit([] { throw std::runtime_error("buggy task"); }));
  ASSERT_TRUE(pool.submit([] {}));
  pool.wait_idle();
  EXPECT_EQ(pool.dropped_exceptions(), 1u);
  EXPECT_EQ(pool.pending(), 0u);
}

// ------------------------------------------------------------ mini soak --

// A compressed version of bench/chaos_soak: a few seeds, every fault kind
// enabled, retrying clients, response-content verification (catches lost,
// duplicated, or cross-wired responses), and a post-crash cache reload.
TEST(ChaosSoak, MultiSeedRoundTripsLoseNothing) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    FaultPlan plan = FaultPlan::for_seed(seed);
    plan.slow_ms = 1;
    plan.stall_ms = 1;
    FaultInjector injector(plan);

    const std::string cache_path =
        temp_path("netemu_chaos_" + std::to_string(seed) + ".json");
    std::remove(cache_path.c_str());
    {
      QueryExecutor::Options options;
      options.threads = 2;
      options.max_queue = 32;
      options.hang_timeout_ms = 2000;
      options.cache_file = cache_path;
      options.faults = &injector;
      options.compute = [](const Query& q, const CancelToken&) {
        Json doc = Json::object();
        doc["n"] = q.n;
        return doc;
      };
      QueryExecutor executor(std::move(options));
      Server::Options server_options;
      server_options.port = 0;
      server_options.faults = &injector;
      Server server(executor, server_options);
      std::string error;
      ASSERT_TRUE(server.start(&error)) << error;

      constexpr int kClients = 3;
      constexpr int kRequests = 25;
      std::atomic<int> mismatches{0};
      std::atomic<int> failures{0};
      std::vector<std::thread> threads;
      for (int c = 0; c < kClients; ++c) {
        threads.emplace_back([&, c] {
          Client::RetryPolicy policy;
          policy.max_attempts = 12;
          policy.base_backoff_ms = 1;
          policy.max_backoff_ms = 20;
          policy.attempt_timeout_ms = 5000;
          policy.jitter_seed = seed * 100 + static_cast<std::uint64_t>(c);
          Client client(policy);
          client.set_fault_injector(&injector);
          if (!client.connect(server.port())) {
            failures.fetch_add(kRequests);
            return;
          }
          for (int i = 0; i < kRequests; ++i) {
            const double n =
                1000 + static_cast<double>(seed) * 10000 + c * 1000 + i;
            Json q = Json::object();
            q["op"] = "bandwidth";
            q["family"] = "Mesh";
            q["k"] = 2;
            q["n"] = n;
            const auto doc = client.request(q);
            if (!doc || !(*doc)["ok"].as_bool()) {
              failures.fetch_add(1);
            } else if ((*doc)["result"]["n"].as_number() != n) {
              // A mismatched echo means a lost, duplicated, or cross-wired
              // response — the soak's core invariant.
              mismatches.fetch_add(1);
            }
          }
        });
      }
      for (auto& t : threads) t.join();
      EXPECT_EQ(mismatches.load(), 0) << "seed=" << seed;
      EXPECT_EQ(failures.load(), 0) << "seed=" << seed;
      server.stop();
    }  // executor destructor persists the cache (possibly torn by faults)

    // The post-crash reload must never fail loudly: either the save failed
    // cleanly (no file) or every surviving entry is intact JSON.
    ResultCache reloaded(4096, cache_path);
    if (reloaded.load()) {
      EXPECT_GE(reloaded.size(), 0u);
    }
    EXPECT_GT(injector.counts().total(), 0u) << "seed=" << seed;
    std::remove(cache_path.c_str());
  }
}

}  // namespace
}  // namespace netemu
