// Tests for netemu::guard overload protection (docs/GUARD.md): the query
// cost model, the backlog drain-rate estimator behind dynamic
// retry_after_ms, the Guard decision box (backlog / fair-share / rate-limit
// admission, brownout, AIMD limit adaptation, bounded client tracking), the
// weighted-DRR fair scheduler, and the executor integration (shed shapes,
// brownout responses staying out of the cache).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "netemu/guard/cost.hpp"
#include "netemu/guard/fair_queue.hpp"
#include "netemu/guard/guard.hpp"
#include "netemu/scope/metrics.hpp"
#include "netemu/service/executor.hpp"
#include "netemu/util/json.hpp"
#include "netemu/util/thread_pool.hpp"

using namespace netemu;

namespace {

Query closed_form_query() {
  Query q;
  q.kind = QueryKind::kBandwidth;
  q.n = 1024;
  return q;
}

Query estimate_query(double n, unsigned trials) {
  Query q;
  q.kind = QueryKind::kEstimate;
  q.n = n;
  q.trials = trials;
  q.seed = 1;
  return q;
}

/// Spin until `pred` holds or `ms` elapse; returns whether it held.
template <typename Pred>
bool eventually(Pred pred, std::uint64_t ms = 5000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

}  // namespace

// ----------------------------------------------------------------- cost model

TEST(QueryCost, ClosedFormKindsCostOneUnit) {
  Query q = closed_form_query();
  EXPECT_EQ(guard::query_cost(q), 1u);
  q.kind = QueryKind::kMaxHost;
  EXPECT_EQ(guard::query_cost(q), 1u);
  q.kind = QueryKind::kBounds;
  q.n = 1e7;  // closed-form stays flat in n
  EXPECT_EQ(guard::query_cost(q), 1u);
}

TEST(QueryCost, EstimateScalesWithNodeTrials) {
  // One unit is ~1024 node-trials; cost is the ceiling, never below 1.
  EXPECT_EQ(guard::query_cost(estimate_query(64, 1)), 1u);
  EXPECT_EQ(guard::query_cost(estimate_query(1024, 1)), 1u);
  EXPECT_EQ(guard::query_cost(estimate_query(1024, 8)), 8u);
  EXPECT_EQ(guard::query_cost(estimate_query(10240, 8)), 80u);
  EXPECT_EQ(guard::query_cost(estimate_query(1025, 1)), 2u);  // ceil
  // Deterministic: the same query always costs the same.
  EXPECT_EQ(guard::query_cost(estimate_query(4096, 16)),
            guard::query_cost(estimate_query(4096, 16)));
}

// ----------------------------------------------------------------- drain rate

TEST(DrainRate, FallbackUntilFirstSample) {
  guard::DrainRate rate;
  EXPECT_FALSE(rate.has_samples());
  // A fresh estimator returns the configured constant unchanged — even the
  // clamps stay out of the way (tests pin the constant).
  EXPECT_EQ(rate.hint_ms(1000.0, 50), 50u);
  EXPECT_EQ(rate.hint_ms(0.0, 7), 7u);
}

TEST(DrainRate, HintScalesWithBacklogAndClamps) {
  guard::DrainRate rate;
  // 100 ms of wall time retired 10 units on 1 worker: 10 ms/unit.
  rate.note(100.0, 10, 1);
  ASSERT_TRUE(rate.has_samples());
  EXPECT_DOUBLE_EQ(rate.ms_per_unit(), 10.0);
  EXPECT_EQ(rate.hint_ms(50.0, 40), 500u);  // backlog x rate
  // Near-empty backlog floors at a quarter of the fallback...
  EXPECT_EQ(rate.hint_ms(0.5, 40), 10u);
  // ...and a monster backlog is capped so clients retry this decade.
  EXPECT_EQ(rate.hint_ms(1e9, 40), 10000u);
}

TEST(DrainRate, ParallelWorkersDrainFaster) {
  guard::DrainRate one, four;
  one.note(100.0, 10, 1);
  four.note(100.0, 10, 4);
  EXPECT_DOUBLE_EQ(four.ms_per_unit() * 4.0, one.ms_per_unit());
}

// ------------------------------------------------------------ guard admission

TEST(GuardAdmit, EmptyExecutorAdmitsAnything) {
  guard::Options opts;
  opts.enabled = true;
  opts.cost_budget = 100;
  opts.adaptive = false;
  guard::Guard guard(opts, nullptr);

  // The biggest legal estimate must stay servable when nothing competes,
  // even though it alone exceeds the whole budget.
  const guard::Guard::Decision d =
      guard.admit("a", estimate_query(1e6, 1), 500);
  EXPECT_TRUE(d.admit);
  EXPECT_EQ(guard.pending_cost(), 500u);
  EXPECT_GT(guard.pressure(), 1.0);
  guard.complete("a", 500);
  EXPECT_EQ(guard.pending_cost(), 0u);
}

TEST(GuardAdmit, BacklogShedsOnceWorkIsPending) {
  guard::Options opts;
  opts.enabled = true;
  opts.cost_budget = 100;
  opts.adaptive = false;
  guard::Guard guard(opts, nullptr);

  ASSERT_TRUE(guard.admit("a", closed_form_query(), 90).admit);
  const guard::Guard::Decision d =
      guard.admit("b", closed_form_query(), 20);
  EXPECT_FALSE(d.admit);
  EXPECT_EQ(d.reason, "cost budget full");
  // Backlog sheds leave the hint to the executor's drain-rate estimate.
  EXPECT_EQ(d.retry_after_ms, 0u);
  EXPECT_EQ(guard.counters().shed_backlog, 1u);
  // The shed charged nothing: completing the admitted flight reopens.
  guard.complete("a", 90);
  EXPECT_TRUE(guard.admit("b", closed_form_query(), 20).admit);
}

TEST(GuardAdmit, FairShareCapsOneClientNotTheOthers) {
  guard::Options opts;
  opts.enabled = true;
  opts.cost_budget = 100;
  opts.client_share = 0.5;  // one client may hold at most 50 units
  opts.adaptive = false;
  guard::Guard guard(opts, nullptr);

  ASSERT_TRUE(guard.admit("greedy", closed_form_query(), 40).admit);
  // Second query would put the same client at 80 > 50: shed...
  const guard::Guard::Decision d =
      guard.admit("greedy", closed_form_query(), 40);
  EXPECT_FALSE(d.admit);
  EXPECT_EQ(d.reason, "client over fair share");
  // ...while another client's identical query fits the global budget.
  EXPECT_TRUE(guard.admit("polite", closed_form_query(), 40).admit);
  EXPECT_EQ(guard.counters().shed_share, 1u);
  guard.complete("greedy", 40);
  guard.complete("polite", 40);
}

TEST(GuardAdmit, RateLimitRefillsOverFakeTime) {
  std::uint64_t now = 0;
  guard::Options opts;
  opts.enabled = true;
  opts.cost_budget = 1000;
  opts.rate_units_per_s = 10.0;  // burst defaults to 2 s of refill = 20
  opts.adaptive = false;
  opts.clock_ms = [&now] { return now; };
  guard::Guard guard(opts, nullptr);

  // The full burst admits; the 21st unit finds an empty bucket.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(guard.admit("a", closed_form_query(), 1).admit) << i;
  }
  const guard::Guard::Decision d = guard.admit("a", closed_form_query(), 1);
  EXPECT_FALSE(d.admit);
  EXPECT_EQ(d.reason, "client rate limited");
  // Token-refill hint: one unit at 10/s is 100 ms away.
  EXPECT_EQ(d.retry_after_ms, 100u);
  EXPECT_EQ(guard.counters().shed_rate, 1u);

  now += 100;  // one token refills
  EXPECT_TRUE(guard.admit("a", closed_form_query(), 1).admit);
  // A different client has its own untouched bucket all along.
  EXPECT_TRUE(guard.admit("b", closed_form_query(), 1).admit);
}

TEST(GuardAdmit, ReleaseUnchargesWithoutControllerFeedback) {
  guard::Options opts;
  opts.enabled = true;
  opts.cost_budget = 100;
  opts.adaptive = false;
  guard::Guard guard(opts, nullptr);
  ASSERT_TRUE(guard.admit("a", closed_form_query(), 60).admit);
  EXPECT_DOUBLE_EQ(guard.pressure(), 0.6);
  guard.release("a", 60);
  EXPECT_DOUBLE_EQ(guard.pressure(), 0.0);
  EXPECT_EQ(guard.pending_cost(), 0u);
}

TEST(GuardClients, IdleClientsEvictedPastTheCap) {
  guard::Options opts;
  opts.enabled = true;
  opts.cost_budget = 100;
  opts.max_clients = 2;
  opts.adaptive = false;
  guard::Guard guard(opts, nullptr);

  ASSERT_TRUE(guard.admit("a", closed_form_query(), 1).admit);
  guard.complete("a", 1);
  ASSERT_TRUE(guard.admit("b", closed_form_query(), 1).admit);
  guard.complete("b", 1);
  // The third client evicts the least-recently-seen idle one: bounded map.
  ASSERT_TRUE(guard.admit("c", closed_form_query(), 1).admit);
  guard.complete("c", 1);
  EXPECT_LE(guard.clients_tracked(), 2u);
}

// -------------------------------------------------------------------- brownout

TEST(GuardBrownout, EstimatesDegradeAbovePressureThreshold) {
  guard::Options opts;
  opts.enabled = true;
  opts.cost_budget = 100;
  opts.adaptive = false;  // pin the limit so pressure is exact
  guard::Guard guard(opts, nullptr);

  // 80/100 pending puts pressure past the 0.75 default (a closed-form
  // filler, so the brownout counter below counts only the victim)...
  ASSERT_TRUE(guard.admit("a", closed_form_query(), 80).admit);
  // ...so the next admitted estimate keeps ceil(8 x 0.25) = 2 trials.
  const guard::Guard::Decision d =
      guard.admit("b", estimate_query(1024, 8), 8);
  ASSERT_TRUE(d.admit);
  EXPECT_TRUE(d.brownout);
  EXPECT_EQ(d.trials, 2u);
  EXPECT_EQ(guard.counters().brownouts, 1u);

  // Closed-form kinds never brown out — there is no sweep to shrink.
  const guard::Guard::Decision cf = guard.admit("c", closed_form_query(), 1);
  ASSERT_TRUE(cf.admit);
  EXPECT_FALSE(cf.brownout);
}

TEST(GuardBrownout, KillSwitchAndLowPressureServeTheFullSweep) {
  guard::Options opts;
  opts.enabled = true;
  opts.cost_budget = 100;
  opts.adaptive = false;
  opts.brownout = false;  // kill switch
  guard::Guard off(opts, nullptr);
  ASSERT_TRUE(off.admit("a", closed_form_query(), 80).admit);
  EXPECT_FALSE(off.admit("b", estimate_query(1024, 8), 8).brownout);

  opts.brownout = true;
  guard::Guard calm(opts, nullptr);
  // Pressure 0.08 after charging: nowhere near the threshold.
  EXPECT_FALSE(calm.admit("a", estimate_query(1024, 8), 8).brownout);
}

// ------------------------------------------------------------------------ AIMD

TEST(GuardAimd, LimitTracksTheLatencyTarget) {
  std::uint64_t now = 0;
  scope::Histogram hist;  // stands in for the executor's execute histogram
  guard::Options opts;
  opts.enabled = true;
  opts.cost_budget = 100;
  opts.target_p95_ms = 10.0;
  opts.adjust_interval_ms = 100;
  opts.adjust_min_samples = 8;
  opts.clock_ms = [&now] { return now; };
  guard::Guard guard(opts, &hist);
  EXPECT_EQ(guard.effective_limit(), 100u);

  const auto tick = [&] {
    ASSERT_TRUE(guard.admit("a", closed_form_query(), 1).admit);
    guard.complete("a", 1);  // complete() runs the controller
  };

  now = 150;
  tick();  // first adjustment only baselines the snapshot
  for (int i = 0; i < 10; ++i) hist.observe(50000.0);  // 50 ms in us
  now = 300;
  tick();  // p95 ~50 ms > 10 ms target: multiplicative decrease
  EXPECT_EQ(guard.effective_limit(), 70u);  // 100 x 0.7
  EXPECT_GE(guard.counters().limit_decreases, 1u);

  for (int i = 0; i < 10; ++i) hist.observe(1000.0);  // 1 ms: healthy
  now = 450;
  tick();  // p95 below target: additive increase of 5% of the budget
  EXPECT_EQ(guard.effective_limit(), 75u);
  EXPECT_GE(guard.counters().limit_increases, 1u);
}

TEST(GuardAimd, ThinWindowsAndKillSwitchHoldTheLimit) {
  std::uint64_t now = 0;
  scope::Histogram hist;
  guard::Options opts;
  opts.enabled = true;
  opts.cost_budget = 100;
  opts.adjust_interval_ms = 100;
  opts.adjust_min_samples = 8;
  opts.clock_ms = [&now] { return now; };

  {
    guard::Guard guard(opts, &hist);
    now = 150;
    guard.admit("a", closed_form_query(), 1);
    guard.complete("a", 1);  // baseline
    for (int i = 0; i < 3; ++i) hist.observe(90000.0);  // 3 < min_samples
    now = 300;
    guard.admit("a", closed_form_query(), 1);
    guard.complete("a", 1);
    EXPECT_EQ(guard.effective_limit(), 100u);  // thin window: no vote
  }
  {
    opts.adaptive = false;  // kill switch pins the limit outright
    guard::Guard guard(opts, &hist);
    for (int i = 0; i < 20; ++i) hist.observe(90000.0);
    now += 1000;
    guard.admit("a", closed_form_query(), 1);
    guard.complete("a", 1);
    EXPECT_EQ(guard.effective_limit(), 100u);
    EXPECT_EQ(guard.counters().limit_decreases, 0u);
  }
}

// --------------------------------------------------------------- health block

TEST(GuardJson, HealthBlockCarriesTheDials) {
  guard::Options opts;
  opts.enabled = true;
  opts.cost_budget = 100;
  opts.adaptive = false;
  guard::Guard guard(opts, nullptr);
  ASSERT_TRUE(guard.admit("a", closed_form_query(), 25).admit);

  const Json doc = guard.to_json();
  EXPECT_TRUE(doc["enabled"].as_bool());
  EXPECT_EQ(doc["cost_budget"].as_uint(0), 100u);
  EXPECT_EQ(doc["limit"].as_uint(0), 100u);
  EXPECT_EQ(doc["pending_cost"].as_uint(99), 25u);
  EXPECT_DOUBLE_EQ(doc["pressure"].as_number(0.0), 0.25);
  EXPECT_EQ(doc["admitted"].as_uint(0), 1u);
  EXPECT_EQ(doc["clients"].as_uint(0), 1u);
  EXPECT_FALSE(doc["adaptive"].as_bool(true));
  guard.complete("a", 25);
}

// ------------------------------------------------------------- fair scheduler

TEST(FairScheduler, UncontendedSubmitRunsTheTask) {
  ThreadPool pool(1);
  guard::FairScheduler sched(pool, {});
  std::atomic<bool> ran{false};
  EXPECT_TRUE(sched.submit("a", 1, [&] { ran = true; }, nullptr));
  EXPECT_TRUE(eventually([&] { return ran.load(); }));
  EXPECT_TRUE(eventually([&] { return sched.running() == 0; }));
  EXPECT_EQ(sched.queued(), 0u);
}

TEST(FairScheduler, DrrInterleavesAFloodWithAMouse) {
  ThreadPool pool(1);
  guard::FairScheduler::Options opts;
  opts.max_concurrent = 1;  // strictly serial: dispatch order is observable
  guard::FairScheduler sched(pool, opts);

  // Park the single worker so every later submit queues.
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool gate_open = false;
  sched.submit("warmup", 1,
               [&] {
                 std::unique_lock lock(gate_mutex);
                 gate_cv.wait(lock, [&] { return gate_open; });
               },
               nullptr);

  std::mutex order_mutex;
  std::vector<std::string> order;
  const auto record = [&](const std::string& who) {
    return [&, who] {
      std::lock_guard lock(order_mutex);
      order.push_back(who);
    };
  };
  // The flood enqueues three tasks before the mouse's one arrives.
  for (int i = 0; i < 3; ++i) sched.submit("flood", 1, record("flood"), nullptr);
  sched.submit("mouse", 1, record("mouse"), nullptr);
  EXPECT_EQ(sched.queued(), 4u);

  {
    std::lock_guard lock(gate_mutex);
    gate_open = true;
  }
  gate_cv.notify_all();
  ASSERT_TRUE(eventually([&] {
    std::lock_guard lock(order_mutex);
    return order.size() == 4;
  }));
  // DRR alternates clients: the mouse's single task runs after at most one
  // flood task, not behind the whole flood (a plain FIFO would run it last).
  std::lock_guard lock(order_mutex);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[1], "mouse") << order[0] << order[1] << order[2];
}

TEST(FairScheduler, ShedQueuedAnswersEveryParkedTask) {
  ThreadPool pool(1);
  guard::FairScheduler::Options opts;
  opts.max_concurrent = 1;
  guard::FairScheduler sched(pool, opts);

  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool gate_open = false;
  sched.submit("warmup", 1,
               [&] {
                 std::unique_lock lock(gate_mutex);
                 gate_cv.wait(lock, [&] { return gate_open; });
               },
               nullptr);

  std::atomic<int> ran{0}, shed{0};
  for (int i = 0; i < 3; ++i) {
    sched.submit("a", 1, [&] { ++ran; }, [&] { ++shed; });
  }
  EXPECT_EQ(sched.queued(), 3u);
  // Each dropped task answers through its shed callback, exactly once.
  EXPECT_EQ(sched.shed_queued(), 3u);
  EXPECT_EQ(shed.load(), 3);
  EXPECT_EQ(sched.queued(), 0u);

  {
    std::lock_guard lock(gate_mutex);
    gate_open = true;
  }
  gate_cv.notify_all();
  EXPECT_TRUE(eventually([&] { return sched.running() == 0; }));
  EXPECT_EQ(ran.load(), 0);  // run and shed are mutually exclusive
}

TEST(FairScheduler, PoolRefusalRunsTheShedCallback) {
  ThreadPool pool(1);
  pool.shutdown();  // every submit from here on is rejected
  guard::FairScheduler sched(pool, {});
  std::atomic<bool> ran{false}, shed{false};
  sched.submit("a", 1, [&] { ran = true; }, [&] { shed = true; });
  EXPECT_TRUE(shed.load());  // inline, so no wait needed
  EXPECT_FALSE(ran.load());
  EXPECT_EQ(sched.running(), 0u);
}

// ------------------------------------------------------- executor integration

TEST(ExecutorGuard, ShedResponsesCarryOverloadedAndAHint) {
  QueryExecutor::Options options;
  options.threads = 1;
  options.retry_after_hint_ms = 40;
  options.guard.enabled = true;
  options.guard.cost_budget = 1;  // one closed-form unit fills the gate
  options.guard.adaptive = false;
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool gate_open = false;
  options.compute = [&](const Query& q, const CancelToken&) {
    std::unique_lock lock(gate_mutex);
    gate_cv.wait(lock, [&] { return gate_open; });
    Json doc = Json::object();
    doc["n"] = q.n;
    return doc;
  };
  QueryExecutor exec(options);

  Response first;
  std::thread leader([&] { first = exec.execute(estimate_query(64, 1)); });
  ASSERT_TRUE(eventually([&] { return exec.pending() == 1; }));

  // Distinct query, same 1-unit cost: the budget is full, so it sheds in
  // the overloaded shape with the fallback hint (no drain samples yet).
  const Response shed = exec.execute(estimate_query(65, 1));
  EXPECT_FALSE(shed.ok);
  EXPECT_TRUE(shed.overloaded);
  EXPECT_NE(shed.error.find("cost budget full"), std::string::npos)
      << shed.error;
  EXPECT_EQ(shed.retry_after_ms, 40u);

  {
    std::lock_guard lock(gate_mutex);
    gate_open = true;
  }
  gate_cv.notify_all();
  leader.join();
  EXPECT_TRUE(first.ok) << first.error;
  EXPECT_EQ(exec.stats().rejected, 1u);
}

TEST(ExecutorGuard, BrownoutAnswersDegradedAndIsNeverCached) {
  QueryExecutor::Options options;
  options.threads = 2;
  options.guard.enabled = true;
  options.guard.cost_budget = 12;
  options.guard.adaptive = false;
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool gate_open = false;
  options.compute = [&](const Query& q, const CancelToken&) {
    if (q.n >= 1024) {  // the pressure flight parks until released
      std::unique_lock lock(gate_mutex);
      gate_cv.wait(lock, [&] { return gate_open; });
    }
    Json doc = Json::object();
    doc["n"] = q.n;
    doc["trials"] = q.trials;  // echoes the (possibly reduced) sweep it ran
    return doc;
  };
  QueryExecutor exec(options);

  // Park an 8-unit estimate: 8/12 pending is below the 0.75 threshold...
  // (Distinct client identities, or the 0.5 fair-share cap fires first.)
  Query parked = estimate_query(1024, 8);
  parked.client = "a";
  Response big;
  std::thread leader([&] { big = exec.execute(parked); });
  ASSERT_TRUE(eventually([&] { return exec.pending() == 1; }));

  // ...until this 4-unit estimate charges 12/12 = 1.0: admitted, browned
  // out to ceil(8 x 0.25) = 2 trials, answered as a degraded partial of
  // the full request.
  Query wants_full = estimate_query(512, 8);
  wants_full.client = "b";
  const Response r = exec.execute(wants_full);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.degraded);
  EXPECT_NE(r.result.find("\"degraded\":true"), std::string::npos) << r.result;
  EXPECT_NE(r.result.find("\"brownout\":true"), std::string::npos) << r.result;
  EXPECT_NE(r.result.find("\"trials\":8"), std::string::npos) << r.result;
  EXPECT_NE(r.result.find("\"trials_completed\":2"), std::string::npos)
      << r.result;
  EXPECT_EQ(exec.stats().browned_out, 1u);

  {
    std::lock_guard lock(gate_mutex);
    gate_open = true;
  }
  gate_cv.notify_all();
  leader.join();
  ASSERT_TRUE(big.ok) << big.error;

  // The degraded partial must not poison the content address: asking again
  // on a calm executor recomputes the full sweep.
  const Response again = exec.execute(wants_full);
  ASSERT_TRUE(again.ok) << again.error;
  EXPECT_FALSE(again.cache_hit);
  EXPECT_FALSE(again.degraded);
}
