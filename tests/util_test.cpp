// Unit tests for the util subsystem: prng, math, stats, thread pool, table,
// cli.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <vector>

#include "netemu/util/cli.hpp"
#include "netemu/util/math.hpp"
#include "netemu/util/prng.hpp"
#include "netemu/util/stats.hpp"
#include "netemu/util/table.hpp"
#include "netemu/util/thread_pool.hpp"

namespace netemu {
namespace {

TEST(Prng, DeterministicForSameSeed) {
  Prng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Prng, DifferentSeedsDiverge) {
  Prng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b());
  EXPECT_LT(equal, 2);
}

TEST(Prng, BelowIsInRangeAndCoversAll) {
  Prng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.below(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Prng, BelowIsApproximatelyUniform) {
  Prng rng(11);
  constexpr int kBuckets = 10, kDraws = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Prng, UniformInUnitInterval) {
  Prng rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Prng, RangeInclusive) {
  Prng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.range(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(Prng, SplitStreamsAreIndependent) {
  Prng a(9);
  Prng b = a.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b());
  EXPECT_LT(equal, 2);
}

TEST(Prng, ShufflePreservesMultiset) {
  Prng rng(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  shuffle(v, rng);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Math, Ilog2) {
  EXPECT_EQ(ilog2(1), 0u);
  EXPECT_EQ(ilog2(2), 1u);
  EXPECT_EQ(ilog2(3), 1u);
  EXPECT_EQ(ilog2(1024), 10u);
  EXPECT_EQ(ilog2(1025), 10u);
}

TEST(Math, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(1024), 10u);
  EXPECT_EQ(ceil_log2(1025), 11u);
}

TEST(Math, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(63));
}

TEST(Math, Ipow) {
  EXPECT_EQ(ipow(2, 10), 1024u);
  EXPECT_EQ(ipow(3, 4), 81u);
  EXPECT_EQ(ipow(7, 0), 1u);
}

TEST(Math, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 3), 4u);
  EXPECT_EQ(ceil_div(9, 3), 3u);
  EXPECT_EQ(ceil_div(1, 8), 1u);
}

TEST(Math, LgClamped) {
  EXPECT_DOUBLE_EQ(lg_clamped(1.0), 1.0);
  EXPECT_DOUBLE_EQ(lg_clamped(2.0), 1.0);
  EXPECT_DOUBLE_EQ(lg_clamped(8.0), 3.0);
}

TEST(Math, BitReverse) {
  EXPECT_EQ(bit_reverse(0b001, 3), 0b100u);
  EXPECT_EQ(bit_reverse(0b110, 3), 0b011u);
  EXPECT_EQ(bit_reverse(0b1011, 4), 0b1101u);
}

TEST(Math, RotlRotrBitsAreInverse) {
  for (unsigned bits = 2; bits <= 8; ++bits) {
    for (std::uint64_t x = 0; x < ipow(2, bits); ++x) {
      EXPECT_EQ(rotr_bits(rotl_bits(x, bits), bits), x);
    }
  }
}

TEST(Stats, Summarize) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const Summary s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(Stats, LinearFitRecoversLine) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 20; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 + 2.0 * i);
  }
  const LinearFit f = fit_linear(xs, ys);
  EXPECT_NEAR(f.intercept, 3.0, 1e-9);
  EXPECT_NEAR(f.slope, 2.0, 1e-9);
  EXPECT_NEAR(f.r2, 1.0, 1e-9);
}

TEST(Stats, PowerFitRecoversExponent) {
  std::vector<double> ns, ys;
  for (double n = 16; n <= 4096; n *= 2) {
    ns.push_back(n);
    ys.push_back(5.0 * std::pow(n, 0.75));
  }
  const PowerFit f = fit_power(ns, ys);
  EXPECT_NEAR(f.exponent, 0.75, 1e-9);
  EXPECT_NEAR(f.lg_coeff, std::log2(5.0), 1e-9);
}

TEST(Stats, PowerFitWithLogDividesOutLogFactor) {
  std::vector<double> ns, ys;
  for (double n = 16; n <= 65536; n *= 2) {
    ns.push_back(n);
    ys.push_back(std::pow(n, 0.5) * std::log2(n));
  }
  const PowerFit raw = fit_power(ns, ys);
  const PowerFit adj = fit_power_with_log(ns, ys, 1.0);
  EXPECT_GT(raw.exponent, 0.55);      // log factor inflates the raw slope
  EXPECT_NEAR(adj.exponent, 0.5, 1e-6);
}

TEST(Stats, Median) {
  EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median({4, 1, 2, 3}), 2.5);
  EXPECT_DOUBLE_EQ(median({7}), 7.0);
}

TEST(Stats, GeometricMean) {
  EXPECT_NEAR(geometric_mean(std::vector<double>{1, 4}), 2.0, 1e-12);
  EXPECT_NEAR(geometric_mean(std::vector<double>{2, 2, 2}), 2.0, 1e-12);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(5, 5, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, DestructionDrainsQueuedTasks) {
  // Regression: the daemon path destroys pools that still hold queued work.
  // Every accepted task must run before join — none dropped, none leaked.
  auto ran = std::make_shared<std::atomic<int>>(0);
  int accepted = 0;
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      if (pool.submit([ran] { ran->fetch_add(1); })) ++accepted;
    }
    // Destroy immediately: most tasks are still queued.
  }
  EXPECT_EQ(accepted, 200);
  EXPECT_EQ(ran->load(), 200);
}

TEST(ThreadPool, SubmitAfterShutdownIsRejected) {
  ThreadPool pool(2);
  pool.shutdown();
  bool ran = false;
  EXPECT_FALSE(pool.submit([&ran] { ran = true; }));
  EXPECT_FALSE(ran);
  pool.shutdown();  // idempotent
}

TEST(ThreadPool, ParallelForWorksAfterShutdown) {
  // A shut-down pool degrades parallel_for to the calling thread rather
  // than silently skipping the range.
  ThreadPool pool(2);
  pool.shutdown();
  std::vector<int> hits(64, 0);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) { hits[i] = 1; });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, PropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 10,
                                 [](std::size_t i) {
                                   if (i == 3) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| a   | bb |"), std::string::npos);
  EXPECT_NE(s.find("| 333 | 4  |"), std::string::npos);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::integer(42), "42");
}

TEST(Cli, ParsesFlagsAndPositional) {
  // A bare --flag followed by another --flag stays boolean; "--name value"
  // consumes the value.  (A bare flag followed by a positional would absorb
  // it — documented Cli behavior, so keep booleans before other flags.)
  const char* argv[] = {"prog", "--n=128", "pos1", "--verbose",
                        "--name", "mesh"};
  Cli cli(6, argv);
  EXPECT_EQ(cli.get_int("n", 0), 128);
  EXPECT_TRUE(cli.has("verbose"));
  EXPECT_EQ(cli.get("name"), "mesh");
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos1");
}

TEST(Cli, DefaultsWhenMissing) {
  const char* argv[] = {"prog"};
  Cli cli(1, argv);
  EXPECT_EQ(cli.get_int("n", 7), 7);
  EXPECT_EQ(cli.get_double("x", 2.5), 2.5);
  EXPECT_FALSE(cli.has("anything"));
}

}  // namespace
}  // namespace netemu
