// Tests for netemu::scope — the metrics registry (counters, gauges,
// log-scale histograms and their quantiles), trace spans, the flight
// recorder, exposition, and the end-to-end guarantees the subsystem makes:
//  * TSan-clean concurrent recording while a reader snapshots;
//  * a traced query's span set is DETERMINISTIC — byte-identical span
//    name/note sequences across runs, including under a faultline plan;
//  * a query through the fleet front door is traceable end to end.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "netemu/faultline/fault_plan.hpp"
#include "netemu/faultline/injector.hpp"
#include "netemu/fleet/front_door.hpp"
#include "netemu/fleet/router.hpp"
#include "netemu/scope/exposition.hpp"
#include "netemu/scope/flight_recorder.hpp"
#include "netemu/scope/metrics.hpp"
#include "netemu/scope/trace.hpp"
#include "netemu/service/executor.hpp"
#include "netemu/service/protocol.hpp"
#include "netemu/service/query.hpp"
#include "netemu/service/server.hpp"
#include "netemu/util/hash.hpp"
#include "netemu/util/json.hpp"

using namespace netemu;

// ----------------------------------------------------------------- counters

TEST(ScopeCounter, AddsAndSumsAcrossShards) {
  scope::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(ScopeCounter, DisabledIsANoOp) {
  scope::Counter c;
  scope::set_enabled(false);
  c.add(100);
  scope::set_enabled(true);
  EXPECT_EQ(c.value(), 0u);
  c.add(1);
  EXPECT_EQ(c.value(), 1u);
}

TEST(ScopeGauge, SetAndAdd) {
  scope::Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-0.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
}

// --------------------------------------------------------------- histograms

TEST(ScopeHistogram, BucketBoundsContainTheirValues) {
  // Every positive normal value must land in a bucket whose [lower, upper)
  // range contains it — the invariant quantile interpolation relies on.
  const double values[] = {1e-3,  0.01, 0.5,  1.0,    1.0001, 1.5,
                           2.0,   3.0,  10.0, 1024.0, 1e6,    1e10,
                           1e13,  7.77, std::exp2(0.125),     // sub boundary
                           std::exp2(10.0) - 1e-6, std::exp2(10.0)};
  for (const double v : values) {
    const std::size_t b = scope::Histogram::bucket_of(v);
    ASSERT_GE(b, 1u) << v;
    ASSERT_LE(b, scope::Histogram::kBuckets - 2) << v;
    EXPECT_LE(scope::Histogram::bucket_lower(b), v) << v;
    EXPECT_GT(scope::Histogram::bucket_upper(b), v) << v;
  }
}

TEST(ScopeHistogram, SpecialValuesLandInUnderAndOverflow) {
  using H = scope::Histogram;
  EXPECT_EQ(H::bucket_of(0.0), 0u);
  EXPECT_EQ(H::bucket_of(-1.0), 0u);
  EXPECT_EQ(H::bucket_of(-0.0), 0u);
  EXPECT_EQ(H::bucket_of(std::numeric_limits<double>::quiet_NaN()), 0u);
  EXPECT_EQ(H::bucket_of(1e-300), 0u);  // far below 2^kMinExp
  EXPECT_EQ(H::bucket_of(std::numeric_limits<double>::denorm_min()), 0u);
  EXPECT_EQ(H::bucket_of(std::numeric_limits<double>::infinity()),
            H::kBuckets - 1);
  EXPECT_EQ(H::bucket_of(1e300), H::kBuckets - 1);  // above 2^kMaxExp
}

TEST(ScopeHistogram, BucketOfMatchesTheLogFormula) {
  // The bit-twiddled bucket_of must agree with the definition
  // floor(log2(v) * kSubBuckets) on values away from boundaries.
  using H = scope::Histogram;
  for (int i = 0; i < 4000; ++i) {
    const double v = std::exp2(-9.9 + i * 0.01337);  // spans the full range
    const std::size_t b = H::bucket_of(v);
    const double idx = std::floor(std::log2(v) * H::kSubBuckets) -
                       static_cast<double>(H::kMinExp) * H::kSubBuckets;
    if (idx < 0.0 || idx >= static_cast<double>(H::kBuckets - 2)) continue;
    // At an exact boundary the libm formula may round either way; the
    // bucket-bound invariant (tested above) is the authoritative check.
    const double frac = std::abs(idx - std::round(idx));
    if (frac < 1e-9) continue;
    EXPECT_EQ(b, static_cast<std::size_t>(idx) + 1) << "v=" << v;
  }
}

TEST(ScopeHistogram, QuantilesTrackExactWithinBucketError) {
  scope::Histogram h;
  std::vector<double> samples;
  // Deterministic pseudo-uniform values over ~3 decades.
  std::uint64_t x = 88172645463325252ull;
  for (int i = 0; i < 20000; ++i) {
    x ^= x << 13; x ^= x >> 7; x ^= x << 17;
    const double v = 10.0 + static_cast<double>(x % 1000000u) / 100.0;
    samples.push_back(v);
    h.observe(v);
  }
  const scope::Histogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, samples.size());
  for (const double q : {0.1, 0.5, 0.9, 0.95, 0.99}) {
    const double approx = snap.quantile(q);
    const double exact = scope::exact_quantile(samples, q);
    EXPECT_NEAR(approx / exact, 1.0, 0.05)
        << "q=" << q << " approx=" << approx << " exact=" << exact;
  }
}

TEST(ScopeHistogram, QuantileIsMonotoneInQ) {
  scope::Histogram h;
  for (int i = 1; i <= 1000; ++i) h.observe(static_cast<double>(i * i));
  const auto snap = h.snapshot();
  double prev = 0.0;
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    const double cur = snap.quantile(q);
    EXPECT_GE(cur, prev) << "q=" << q;
    prev = cur;
  }
}

TEST(ScopeHistogram, EmptyAndMeanBehaviour) {
  scope::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.snapshot().quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.snapshot().mean(), 0.0);
  h.observe(10.0);
  h.observe(30.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.snapshot().mean(), 20.0);
}

TEST(ScopeExactQuantile, SmallSampleSemantics) {
  EXPECT_DOUBLE_EQ(scope::exact_quantile({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(scope::exact_quantile({7.0}, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(scope::exact_quantile({7.0}, 1.0), 7.0);
  EXPECT_DOUBLE_EQ(scope::exact_quantile({5, 1, 3, 2, 4}, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(scope::exact_quantile({5, 1, 3, 2, 4}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(scope::exact_quantile({5, 1, 3, 2, 4}, 1.0), 5.0);
}

// ----------------------------------------------------------------- registry

TEST(ScopeRegistry, RegisterOnceLookupAfter) {
  scope::Registry reg;
  scope::Counter& a = reg.counter("x_total", "help");
  scope::Counter& b = reg.counter("x_total");
  EXPECT_EQ(&a, &b);
  a.inc();
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].name, "x_total");
  EXPECT_EQ(snap[0].help, "help");
  EXPECT_EQ(snap[0].counter, 1u);
}

TEST(ScopeRegistry, KindMismatchThrows) {
  scope::Registry reg;
  reg.counter("metric_a");
  EXPECT_THROW(reg.gauge("metric_a"), std::logic_error);
  EXPECT_THROW(reg.histogram("metric_a"), std::logic_error);
}

TEST(ScopeRegistry, SnapshotIsSortedByName) {
  scope::Registry reg;
  reg.counter("zzz");
  reg.gauge("aaa");
  reg.histogram("mmm");
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "aaa");
  EXPECT_EQ(snap[1].name, "mmm");
  EXPECT_EQ(snap[2].name, "zzz");
}

// ------------------------------------------------- concurrency (TSan gate)

TEST(ScopeConcurrency, WritersAndReaderAreRaceFree) {
  // N writer threads hammer a counter, a gauge, a histogram, the flight
  // recorder, and a trace store while the main thread snapshots everything.
  // Under TSan this is the data-race gate; everywhere it checks totals.
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  scope::Registry reg;
  scope::Counter& counter = reg.counter("hammer_total");
  scope::Gauge& gauge = reg.gauge("hammer_gauge");
  scope::Histogram& hist = reg.histogram("hammer_us");
  scope::TraceStore store(64);
  scope::FlightRecorder& recorder = scope::FlightRecorder::global();
  const std::uint64_t base_events = recorder.total();

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load()) {
      (void)reg.snapshot();
      (void)hist.snapshot().quantile(0.95);
      (void)counter.value();
      (void)recorder.recent(32);
      (void)store.get(1);
      (void)scope::flight_recorder_to_json(8);
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        counter.inc();
        gauge.set(static_cast<double>(i));
        hist.observe(static_cast<double>(t * kIters + i + 1));
        if (i % 100 == 0) {
          recorder.record(scope::FlightRecorder::Kind::kInfo,
                          static_cast<std::uint64_t>(t + 1), "hammer");
          store.add(static_cast<std::uint64_t>(t + 1),
                    scope::Span{"hammer", 0, 1, ""});
        }
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true);
  reader.join();

  EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(hist.count(), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(recorder.total() - base_events,
            static_cast<std::uint64_t>(kThreads) * (kIters / 100));
}

// -------------------------------------------------------------- trace spans

TEST(ScopeTrace, ParseTraceIdRoundTripsAndRejectsGarbage) {
  const std::uint64_t id = scope::mint_trace_id();
  EXPECT_NE(id, 0u);
  EXPECT_EQ(scope::parse_trace_id(hex64(id)), id);
  EXPECT_EQ(scope::parse_trace_id("0x" + hex64(id)), id);
  EXPECT_EQ(scope::parse_trace_id("ff"), 0xffu);  // short ids tolerated
  EXPECT_EQ(scope::parse_trace_id(""), 0u);
  EXPECT_EQ(scope::parse_trace_id("not-hex"), 0u);
  EXPECT_EQ(scope::parse_trace_id("12345678901234567"), 0u);  // too long
}

TEST(ScopeTrace, MintedIdsAreUnique) {
  std::set<std::uint64_t> ids;
  for (int i = 0; i < 1000; ++i) ids.insert(scope::mint_trace_id());
  EXPECT_EQ(ids.size(), 1000u);
}

TEST(ScopeTrace, SpanTimerRecordsIntoTheStoreInOrder) {
  scope::TraceStore store(8);
  const std::uint64_t tid = 42;
  {
    scope::SpanTimer outer(tid, "outer", &store);
    {
      scope::SpanTimer inner(tid, "inner", &store);
      inner.set_note("n1");
    }
    scope::SpanTimer cancelled(tid, "cancelled", &store);
    cancelled.cancel();
  }
  const auto spans = store.get(tid);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].note, "n1");
  EXPECT_EQ(spans[1].name, "outer");
}

TEST(ScopeTrace, ZeroTraceIdRecordsNothing) {
  scope::TraceStore store(8);
  {
    scope::SpanTimer t(0, "ghost", &store);
    t.set_note("ignored");
  }
  store.add(0, scope::Span{"ghost", 0, 0, ""});
  EXPECT_EQ(store.size(), 0u);
}

TEST(ScopeTrace, StoreEvictsOldestTraces) {
  scope::TraceStore store(4);
  for (std::uint64_t id = 1; id <= 6; ++id) {
    store.add(id, scope::Span{"s", 0, 0, ""});
  }
  EXPECT_EQ(store.size(), 4u);
  EXPECT_FALSE(store.contains(1));
  EXPECT_FALSE(store.contains(2));
  EXPECT_TRUE(store.contains(3));
  EXPECT_TRUE(store.contains(6));
}

// ---------------------------------------------------------- flight recorder

TEST(ScopeFlightRecorder, RecordsEventsInOrderWithTruncation) {
  scope::FlightRecorder& rec = scope::FlightRecorder::global();
  const std::uint64_t before = rec.total();
  rec.record(scope::FlightRecorder::Kind::kBreaker, 7, "short");
  const std::string long_detail(300, 'x');
  rec.record(scope::FlightRecorder::Kind::kShed, 8, long_detail);
  const auto events = rec.recent();
  ASSERT_GE(events.size(), 2u);
  const auto& a = events[events.size() - 2];
  const auto& b = events[events.size() - 1];
  EXPECT_EQ(a.kind, scope::FlightRecorder::Kind::kBreaker);
  EXPECT_EQ(a.trace_id, 7u);
  EXPECT_EQ(a.detail, "short");
  EXPECT_EQ(b.kind, scope::FlightRecorder::Kind::kShed);
  EXPECT_LT(b.detail.size(), scope::FlightRecorder::kDetailBytes);
  EXPECT_EQ(b.detail, long_detail.substr(0, b.detail.size()));
  EXPECT_EQ(rec.total(), before + 2);
  EXPECT_LT(a.seq, b.seq);
}

TEST(ScopeFlightRecorder, KindNamesAreStable) {
  using K = scope::FlightRecorder::Kind;
  EXPECT_STREQ(scope::FlightRecorder::kind_name(K::kShed), "shed");
  EXPECT_STREQ(scope::FlightRecorder::kind_name(K::kBreaker), "breaker");
  EXPECT_STREQ(scope::FlightRecorder::kind_name(K::kWatchdog), "watchdog");
  EXPECT_STREQ(scope::FlightRecorder::kind_name(K::kHedge), "hedge");
}

// --------------------------------------------------------------- exposition

TEST(ScopeExposition, JsonShapeHasCountersGaugesHistograms) {
  scope::Registry reg;
  reg.counter("t_total").add(3);
  reg.gauge("t_gauge").set(1.5);
  scope::Histogram& h = reg.histogram("t_us");
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));
  const Json doc = scope::registry_to_json(reg);
  EXPECT_EQ(doc["counters"]["t_total"].as_uint(), 3u);
  EXPECT_DOUBLE_EQ(doc["gauges"]["t_gauge"].as_number(), 1.5);
  const Json& hist = doc["histograms"]["t_us"];
  EXPECT_EQ(hist["count"].as_uint(), 100u);
  EXPECT_GT(hist["p50"].as_number(), 0.0);
  EXPECT_GE(hist["p99"].as_number(), hist["p50"].as_number());
}

TEST(ScopeExposition, PrometheusTextIsWellFormed) {
  scope::Registry reg;
  reg.counter("pm_total", "a counter").add(5);
  scope::Histogram& h = reg.histogram("pm_us", "a histogram");
  h.observe(3.0);
  h.observe(300.0);
  const std::string text = scope::registry_to_prometheus(reg);
  EXPECT_NE(text.find("# TYPE pm_total counter"), std::string::npos);
  EXPECT_NE(text.find("pm_total 5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE pm_us histogram"), std::string::npos);
  EXPECT_NE(text.find("pm_us_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("pm_us_count 2"), std::string::npos);
  EXPECT_NE(text.find("pm_us_sum 303"), std::string::npos);
}

// ----------------------------------------- golden span-set determinism

namespace {

QueryExecutor::Options traced_executor_options(bool journal,
                                               const std::string& cache_file,
                                               FaultInjector* faults) {
  QueryExecutor::Options o;
  o.threads = 1;
  o.cache_file = cache_file;
  o.load_cache = false;
  o.cache_journal = journal && !cache_file.empty();
  o.faults = faults;
  o.compute = [](const Query&, const CancelToken&) {
    Json j = Json::object();
    j["v"] = 1.0;
    return j;
  };
  return o;
}

Query traced_query(std::uint64_t tid) {
  Query q;
  q.kind = QueryKind::kBandwidth;
  q.family = Family::kTree;
  q.n = 255.0;
  q.trace_id = tid;
  return q;
}

/// "name(note)" sequence of a trace — the golden shape under test.
std::vector<std::string> span_signature(std::uint64_t tid) {
  std::vector<std::string> out;
  for (const auto& s : scope::TraceStore::global().get(tid)) {
    out.push_back(s.note.empty() ? s.name : s.name + "(" + s.note + ")");
  }
  return out;
}

}  // namespace

TEST(ScopeGolden, MissAndHitSpanSetsAreExactlyTheCatalog) {
  QueryExecutor executor(traced_executor_options(false, "", nullptr));

  const std::uint64_t miss_tid = scope::mint_trace_id();
  ASSERT_TRUE(executor.execute(traced_query(miss_tid)).ok);
  const std::vector<std::string> expect_miss = {
      "cache.probe(miss)", "queue.wait", "sim.run", "cache.put",
      "executor.execute"};
  EXPECT_EQ(span_signature(miss_tid), expect_miss);

  const std::uint64_t hit_tid = scope::mint_trace_id();
  ASSERT_TRUE(executor.execute(traced_query(hit_tid)).cache_hit);
  const std::vector<std::string> expect_hit = {"cache.probe(hit)",
                                               "executor.execute"};
  EXPECT_EQ(span_signature(hit_tid), expect_hit);
}

TEST(ScopeGolden, JournalingRenamesThePersistSpan) {
  const std::string cache = testing::TempDir() + "scope_golden_cache.json";
  std::remove(cache.c_str());
  std::remove((cache + ".wal").c_str());
  QueryExecutor executor(traced_executor_options(true, cache, nullptr));
  const std::uint64_t tid = scope::mint_trace_id();
  ASSERT_TRUE(executor.execute(traced_query(tid)).ok);
  const std::vector<std::string> expect = {
      "cache.probe(miss)", "queue.wait", "sim.run", "wal.append",
      "executor.execute"};
  EXPECT_EQ(span_signature(tid), expect);
}

TEST(ScopeGolden, SpanSetsAreDeterministicUnderAFaultPlan) {
  // Two fresh executors with the SAME fault-plan seed must produce
  // byte-identical span signatures for the same traced request sequence —
  // the property that makes a failed chaos soak reconstructable.
  const auto plan = FaultPlan::parse("seed=7,stall=1.0:1");
  ASSERT_TRUE(plan.has_value());
  std::vector<std::vector<std::string>> runs;
  for (int run = 0; run < 2; ++run) {
    FaultInjector injector(*plan);
    QueryExecutor executor(traced_executor_options(false, "", &injector));
    const std::uint64_t miss_tid = scope::mint_trace_id();
    ASSERT_TRUE(executor.execute(traced_query(miss_tid)).ok);
    const std::uint64_t hit_tid = scope::mint_trace_id();
    ASSERT_TRUE(executor.execute(traced_query(hit_tid)).cache_hit);
    auto sig = span_signature(miss_tid);
    const auto hit_sig = span_signature(hit_tid);
    sig.insert(sig.end(), hit_sig.begin(), hit_sig.end());
    runs.push_back(std::move(sig));
  }
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_FALSE(runs[0].empty());
}

// ------------------------------------------------- fleet end-to-end tracing

namespace {

/// A live in-process backend: executor + server on an ephemeral port.
struct TracedBackend {
  QueryExecutor executor;
  std::unique_ptr<Server> server;

  TracedBackend() : executor(traced_executor_options(false, "", nullptr)) {}

  std::uint16_t start() {
    Server::Options options;
    options.port = 0;
    server = std::make_unique<Server>(executor, options);
    std::string error;
    EXPECT_TRUE(server->start(&error)) << error;
    return server->port();
  }
};

}  // namespace

TEST(ScopeFleet, TracedQueryIsReconstructableThroughTheFrontDoor) {
  TracedBackend a, b;
  FleetRouter::Options options;
  options.backends.push_back({a.start(), ""});
  options.backends.push_back({b.start(), ""});
  options.probe_interval_ms = 0;
  options.client.max_attempts = 2;
  options.client.attempt_timeout_ms = 5000;
  FleetRouter router(options);
  FleetFrontDoor door(router);

  // "trace":true asks the front door to mint: the client cannot.
  Json q = Json::object();
  q["op"] = "bandwidth";
  q["family"] = "Hypercube";
  q["n"] = 4096;
  q["trace"] = true;
  bool shutdown = false;
  const Json response = Json::parse(door.handle_line(q.dump(), &shutdown));
  ASSERT_TRUE(response["ok"].as_bool()) << door.handle_line(q.dump(), nullptr);
  const std::string trace_hex = response["trace"].as_string();
  ASSERT_EQ(trace_hex.size(), 16u);
  EXPECT_FALSE(response["served_by"].as_string().empty());

  // Retrieve the merged span set under the single trace id.
  Json t = Json::object();
  t["op"] = "trace";
  t["id"] = trace_hex;
  const Json traced = Json::parse(door.handle_line(t.dump(), &shutdown));
  ASSERT_TRUE(traced["ok"].as_bool());
  ASSERT_TRUE(traced["result"]["found"].as_bool());
  std::set<std::string> names;
  std::set<std::string> fleet_sites;
  for (const Json& s : traced["result"]["spans"].items()) {
    names.insert(s["name"].as_string());
    if (s["name"].as_string() == "fleet.route") {
      fleet_sites.insert(s["site"].as_string());
    }
  }
  // Client send -> fleet route -> backend executor -> compute, one id.
  EXPECT_TRUE(names.count("fleet.route"));
  EXPECT_TRUE(names.count("executor.execute"));
  EXPECT_TRUE(names.count("cache.probe"));
  EXPECT_TRUE(names.count("sim.run"));
  EXPECT_TRUE(fleet_sites.count("fleet"));

  router.stop();
}

TEST(ScopeFleet, BreakerTransitionsLandInTheFlightRecorder) {
  // A backend that never existed: the breaker must open after the
  // configured failures and the transition must be reconstructable from
  // the flight recorder (satellite requirement: no stderr printf).
  TracedBackend alive;
  FleetRouter::Options options;
  options.backends.push_back({alive.start(), ""});
  options.backends.push_back({1, ""});  // nothing listens on port 1
  options.health.failure_threshold = 1;
  options.probe_interval_ms = 0;
  options.client.max_attempts = 1;
  options.client.base_backoff_ms = 1;
  options.client.max_backoff_ms = 2;
  options.client.attempt_timeout_ms = 500;
  FleetRouter router(options);

  const std::uint64_t before = scope::FlightRecorder::global().total();
  // Enough distinct content addresses that the dead backend ranks first for
  // at least one of them (each query picks independently at ~1/2).
  for (double n = 2; n <= 1048576; n *= 2) {
    Json q = Json::object();
    q["op"] = "bandwidth";
    q["family"] = "Ring";
    q["n"] = n;
    (void)router.request(q);
  }
  router.stop();

  bool saw_breaker_open = false;
  for (const auto& e : scope::FlightRecorder::global().recent()) {
    if (e.seq <= before) continue;
    if (e.kind == scope::FlightRecorder::Kind::kBreaker &&
        e.detail.find("-> open") != std::string::npos) {
      saw_breaker_open = true;
    }
  }
  EXPECT_TRUE(saw_breaker_open);
}

// ------------------------------------------------------- protocol trace op

TEST(ScopeProtocol, TraceOpReturnsSpansAndStatsExposesScope) {
  QueryExecutor executor(traced_executor_options(false, "", nullptr));
  const std::uint64_t tid = scope::mint_trace_id();
  Json q = Json::object();
  q["op"] = "bandwidth";
  q["family"] = "Mesh";
  q["k"] = 2;
  q["n"] = 256;
  q["trace"] = hex64(tid);
  const Json first = Json::parse(handle_request_line(q.dump(), executor));
  ASSERT_TRUE(first["ok"].as_bool());
  EXPECT_EQ(first["trace"].as_string(), hex64(tid));

  Json t = Json::object();
  t["op"] = "trace";
  t["id"] = hex64(tid);
  const Json traced = Json::parse(handle_request_line(t.dump(), executor));
  ASSERT_TRUE(traced["ok"].as_bool());
  EXPECT_TRUE(traced["result"]["found"].as_bool());
  EXPECT_GE(traced["result"]["spans"].items().size(), 2u);

  Json s = Json::object();
  s["op"] = "stats";
  const Json stats = Json::parse(handle_request_line(s.dump(), executor));
  ASSERT_TRUE(stats["ok"].as_bool());
  EXPECT_GT(stats["result"]["scope"]["epoch_unix_s"].as_uint(), 0u);
  Json p = Json::object();
  p["op"] = "stats";
  p["format"] = "prometheus";
  const Json prom = Json::parse(handle_request_line(p.dump(), executor));
  ASSERT_TRUE(prom["ok"].as_bool());
  EXPECT_NE(prom["result"]["text"].as_string().find("netemu_requests_total"),
            std::string::npos);
}
