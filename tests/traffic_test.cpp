// Tests for the traffic subsystem: distributions, traffic graphs, K_{r,s}.

#include <gtest/gtest.h>

#include <map>
#include <numeric>

#include "netemu/traffic/distribution.hpp"
#include "netemu/traffic/k_rs.hpp"
#include "netemu/traffic/traffic_graph.hpp"

namespace netemu {
namespace {

std::vector<Vertex> iota_procs(std::size_t n) {
  std::vector<Vertex> p(n);
  std::iota(p.begin(), p.end(), 0u);
  return p;
}

TEST(Symmetric, NeverSelfAndCoversPairs) {
  Prng rng(1);
  const auto d = TrafficDistribution::symmetric(iota_procs(6));
  std::map<std::pair<Vertex, Vertex>, int> seen;
  for (int i = 0; i < 6000; ++i) {
    const Message m = d.sample(rng);
    ASSERT_NE(m.src, m.dst);
    ASSERT_LT(m.src, 6u);
    ++seen[{m.src, m.dst}];
  }
  EXPECT_EQ(seen.size(), 30u);  // all ordered pairs occur
  for (const auto& [pair, count] : seen) {
    EXPECT_NEAR(count, 200, 90) << pair.first << "->" << pair.second;
  }
}

TEST(Symmetric, RespectsProcessorSubset) {
  Prng rng(2);
  // Processor ids that are NOT 0..n-1 (like the bus machine's PE list).
  const std::vector<Vertex> procs{3, 5, 9};
  const auto d = TrafficDistribution::symmetric(procs);
  for (int i = 0; i < 100; ++i) {
    const Message m = d.sample(rng);
    EXPECT_TRUE(m.src == 3 || m.src == 5 || m.src == 9);
    EXPECT_TRUE(m.dst == 3 || m.dst == 5 || m.dst == 9);
  }
}

TEST(QuasiSymmetric, DensityMatchesFraction) {
  const auto d =
      TrafficDistribution::quasi_symmetric(iota_procs(64), 0.5, 777);
  std::size_t allowed = 0, total = 0;
  for (std::size_t i = 0; i < 64; ++i) {
    for (std::size_t j = 0; j < 64; ++j) {
      if (i == j) continue;
      ++total;
      allowed += d.pair_allowed(i, j);
    }
  }
  EXPECT_NEAR(static_cast<double>(allowed) / total, 0.5, 0.05);
}

TEST(QuasiSymmetric, SamplesOnlyAllowedPairs) {
  Prng rng(3);
  const auto d =
      TrafficDistribution::quasi_symmetric(iota_procs(16), 0.3, 42);
  for (int i = 0; i < 500; ++i) {
    const Message m = d.sample(rng);
    EXPECT_TRUE(d.pair_allowed(m.src, m.dst));
  }
}

TEST(QuasiSymmetric, RejectsBadFraction) {
  EXPECT_THROW(TrafficDistribution::quasi_symmetric(iota_procs(4), 0.0, 1),
               std::invalid_argument);
  EXPECT_THROW(TrafficDistribution::quasi_symmetric(iota_procs(4), 1.5, 1),
               std::invalid_argument);
}

TEST(Permutation, IsFixedPointFreeBijection) {
  Prng rng(4);
  const auto d = TrafficDistribution::permutation(iota_procs(17), rng);
  std::vector<int> hits(17, 0);
  for (std::size_t s = 0; s < 17; ++s) {
    std::size_t dst = 18;
    for (std::size_t t2 = 0; t2 < 17; ++t2) {
      if (d.pair_allowed(s, t2)) {
        EXPECT_EQ(dst, 18u) << "two targets for " << s;
        dst = t2;
      }
    }
    ASSERT_NE(dst, 18u);
    EXPECT_NE(dst, s);
    ++hits[dst];
  }
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(BitReversal, MatchesBitMath) {
  const auto d = TrafficDistribution::bit_reversal(iota_procs(8));
  EXPECT_TRUE(d.pair_allowed(1, 4));   // 001 -> 100
  EXPECT_TRUE(d.pair_allowed(3, 6));   // 011 -> 110
  EXPECT_FALSE(d.pair_allowed(1, 2));
  EXPECT_THROW(TrafficDistribution::bit_reversal(iota_procs(6)),
               std::invalid_argument);
}

TEST(Transpose, MatchesMatrixMath) {
  const auto d = TrafficDistribution::transpose(iota_procs(9));
  EXPECT_TRUE(d.pair_allowed(1, 3));   // (0,1) -> (1,0)
  EXPECT_TRUE(d.pair_allowed(5, 7));   // (1,2) -> (2,1)
  EXPECT_THROW(TrafficDistribution::transpose(iota_procs(8)),
               std::invalid_argument);
}

TEST(Hotspot, HotDestinationIsFrequent) {
  Prng rng(5);
  const auto d = TrafficDistribution::hotspot(iota_procs(32), 0.7, rng);
  std::vector<int> dst_count(32, 0);
  for (int i = 0; i < 20000; ++i) ++dst_count[d.sample(rng).dst];
  const int top = *std::max_element(dst_count.begin(), dst_count.end());
  EXPECT_GT(top, 20000 * 0.6);
}

TEST(Batch, SizeAndEndpoints) {
  Prng rng(6);
  const auto d = TrafficDistribution::symmetric(iota_procs(8));
  const auto batch = d.batch(1000, rng);
  EXPECT_EQ(batch.size(), 1000u);
}

TEST(TrafficGraph, FromBatchAccumulatesMultiplicity) {
  const std::vector<Message> batch{{0, 1}, {1, 0}, {0, 1}, {2, 3}};
  const Multigraph t = traffic_graph_from_batch(4, batch);
  EXPECT_EQ(t.multiplicity(0, 1), 3u);
  EXPECT_EQ(t.multiplicity(2, 3), 1u);
  EXPECT_EQ(t.total_multiplicity(), 4u);
}

TEST(TrafficGraph, SymmetricIsCompleteOnProcessors) {
  const Multigraph t = symmetric_traffic_graph(10, {2, 4, 6, 8});
  EXPECT_EQ(t.num_vertices(), 10u);
  EXPECT_EQ(t.num_edges(), 6u);
  EXPECT_EQ(t.multiplicity(2, 8), 1u);
  EXPECT_EQ(t.degree(0), 0u);  // non-processor isolated
}

TEST(TrafficGraph, FunctionalRequiresFunctionalKind) {
  Prng rng(7);
  const auto sym = TrafficDistribution::symmetric(iota_procs(4));
  EXPECT_THROW(functional_traffic_graph(4, sym), std::invalid_argument);
  const auto perm = TrafficDistribution::permutation(iota_procs(4), rng);
  const Multigraph t = functional_traffic_graph(4, perm);
  // Permutation gives n directed messages; as undirected multigraph total
  // multiplicity is n (pairs may merge if i->j and j->i).
  EXPECT_EQ(t.total_multiplicity(), 4u);
}

TEST(Krs, CanonicalMemberPasses) {
  const Multigraph k = make_complete(10, 3);
  EXPECT_EQ(k.total_multiplicity(), 45u * 3);
  const KrsReport rep = krs_report(k, 3);
  EXPECT_TRUE(rep.multiplicity_ok);
  EXPECT_EQ(rep.max_pair_multiplicity, 3u);
  EXPECT_NEAR(rep.density, 45.0 * 3 / (100.0 * 3), 1e-12);
  EXPECT_TRUE(in_krs(k, 3));
}

TEST(Krs, MultiplicityViolationFails) {
  MultigraphBuilder b(4);
  b.add_edge(0, 1, 10);
  b.add_edge(2, 3, 1);
  const Multigraph g = std::move(b).build();
  EXPECT_FALSE(in_krs(g, 2));
}

TEST(Krs, SparseGraphFailsDensity) {
  MultigraphBuilder b(100);
  b.add_edge(0, 1);
  EXPECT_FALSE(in_krs(std::move(b).build(), 1));
}

}  // namespace
}  // namespace netemu
