file(REMOVE_RECURSE
  "CMakeFiles/netemu_routing.dir/netemu/routing/bfs_router.cpp.o"
  "CMakeFiles/netemu_routing.dir/netemu/routing/bfs_router.cpp.o.d"
  "CMakeFiles/netemu_routing.dir/netemu/routing/butterfly_router.cpp.o"
  "CMakeFiles/netemu_routing.dir/netemu/routing/butterfly_router.cpp.o.d"
  "CMakeFiles/netemu_routing.dir/netemu/routing/dimension_order.cpp.o"
  "CMakeFiles/netemu_routing.dir/netemu/routing/dimension_order.cpp.o.d"
  "CMakeFiles/netemu_routing.dir/netemu/routing/hierarchy_router.cpp.o"
  "CMakeFiles/netemu_routing.dir/netemu/routing/hierarchy_router.cpp.o.d"
  "CMakeFiles/netemu_routing.dir/netemu/routing/packet_sim.cpp.o"
  "CMakeFiles/netemu_routing.dir/netemu/routing/packet_sim.cpp.o.d"
  "CMakeFiles/netemu_routing.dir/netemu/routing/router.cpp.o"
  "CMakeFiles/netemu_routing.dir/netemu/routing/router.cpp.o.d"
  "CMakeFiles/netemu_routing.dir/netemu/routing/throughput.cpp.o"
  "CMakeFiles/netemu_routing.dir/netemu/routing/throughput.cpp.o.d"
  "CMakeFiles/netemu_routing.dir/netemu/routing/tree_router.cpp.o"
  "CMakeFiles/netemu_routing.dir/netemu/routing/tree_router.cpp.o.d"
  "CMakeFiles/netemu_routing.dir/netemu/routing/xtree_router.cpp.o"
  "CMakeFiles/netemu_routing.dir/netemu/routing/xtree_router.cpp.o.d"
  "libnetemu_routing.a"
  "libnetemu_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netemu_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
