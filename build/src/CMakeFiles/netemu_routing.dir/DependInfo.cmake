
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netemu/routing/bfs_router.cpp" "src/CMakeFiles/netemu_routing.dir/netemu/routing/bfs_router.cpp.o" "gcc" "src/CMakeFiles/netemu_routing.dir/netemu/routing/bfs_router.cpp.o.d"
  "/root/repo/src/netemu/routing/butterfly_router.cpp" "src/CMakeFiles/netemu_routing.dir/netemu/routing/butterfly_router.cpp.o" "gcc" "src/CMakeFiles/netemu_routing.dir/netemu/routing/butterfly_router.cpp.o.d"
  "/root/repo/src/netemu/routing/dimension_order.cpp" "src/CMakeFiles/netemu_routing.dir/netemu/routing/dimension_order.cpp.o" "gcc" "src/CMakeFiles/netemu_routing.dir/netemu/routing/dimension_order.cpp.o.d"
  "/root/repo/src/netemu/routing/hierarchy_router.cpp" "src/CMakeFiles/netemu_routing.dir/netemu/routing/hierarchy_router.cpp.o" "gcc" "src/CMakeFiles/netemu_routing.dir/netemu/routing/hierarchy_router.cpp.o.d"
  "/root/repo/src/netemu/routing/packet_sim.cpp" "src/CMakeFiles/netemu_routing.dir/netemu/routing/packet_sim.cpp.o" "gcc" "src/CMakeFiles/netemu_routing.dir/netemu/routing/packet_sim.cpp.o.d"
  "/root/repo/src/netemu/routing/router.cpp" "src/CMakeFiles/netemu_routing.dir/netemu/routing/router.cpp.o" "gcc" "src/CMakeFiles/netemu_routing.dir/netemu/routing/router.cpp.o.d"
  "/root/repo/src/netemu/routing/throughput.cpp" "src/CMakeFiles/netemu_routing.dir/netemu/routing/throughput.cpp.o" "gcc" "src/CMakeFiles/netemu_routing.dir/netemu/routing/throughput.cpp.o.d"
  "/root/repo/src/netemu/routing/tree_router.cpp" "src/CMakeFiles/netemu_routing.dir/netemu/routing/tree_router.cpp.o" "gcc" "src/CMakeFiles/netemu_routing.dir/netemu/routing/tree_router.cpp.o.d"
  "/root/repo/src/netemu/routing/xtree_router.cpp" "src/CMakeFiles/netemu_routing.dir/netemu/routing/xtree_router.cpp.o" "gcc" "src/CMakeFiles/netemu_routing.dir/netemu/routing/xtree_router.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/netemu_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netemu_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netemu_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netemu_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
