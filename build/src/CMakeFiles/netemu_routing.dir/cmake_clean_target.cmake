file(REMOVE_RECURSE
  "libnetemu_routing.a"
)
