# Empty dependencies file for netemu_routing.
# This may be replaced when dependencies are built.
