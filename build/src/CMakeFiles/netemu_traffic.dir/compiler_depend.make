# Empty compiler generated dependencies file for netemu_traffic.
# This may be replaced when dependencies are built.
