file(REMOVE_RECURSE
  "CMakeFiles/netemu_traffic.dir/netemu/traffic/distribution.cpp.o"
  "CMakeFiles/netemu_traffic.dir/netemu/traffic/distribution.cpp.o.d"
  "CMakeFiles/netemu_traffic.dir/netemu/traffic/k_rs.cpp.o"
  "CMakeFiles/netemu_traffic.dir/netemu/traffic/k_rs.cpp.o.d"
  "CMakeFiles/netemu_traffic.dir/netemu/traffic/traffic_graph.cpp.o"
  "CMakeFiles/netemu_traffic.dir/netemu/traffic/traffic_graph.cpp.o.d"
  "libnetemu_traffic.a"
  "libnetemu_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netemu_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
