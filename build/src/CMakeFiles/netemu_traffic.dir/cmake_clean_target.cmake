file(REMOVE_RECURSE
  "libnetemu_traffic.a"
)
