
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netemu/graph/algorithms.cpp" "src/CMakeFiles/netemu_graph.dir/netemu/graph/algorithms.cpp.o" "gcc" "src/CMakeFiles/netemu_graph.dir/netemu/graph/algorithms.cpp.o.d"
  "/root/repo/src/netemu/graph/collapse.cpp" "src/CMakeFiles/netemu_graph.dir/netemu/graph/collapse.cpp.o" "gcc" "src/CMakeFiles/netemu_graph.dir/netemu/graph/collapse.cpp.o.d"
  "/root/repo/src/netemu/graph/io.cpp" "src/CMakeFiles/netemu_graph.dir/netemu/graph/io.cpp.o" "gcc" "src/CMakeFiles/netemu_graph.dir/netemu/graph/io.cpp.o.d"
  "/root/repo/src/netemu/graph/multigraph.cpp" "src/CMakeFiles/netemu_graph.dir/netemu/graph/multigraph.cpp.o" "gcc" "src/CMakeFiles/netemu_graph.dir/netemu/graph/multigraph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/netemu_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
