file(REMOVE_RECURSE
  "libnetemu_graph.a"
)
