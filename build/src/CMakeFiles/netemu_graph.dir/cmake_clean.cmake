file(REMOVE_RECURSE
  "CMakeFiles/netemu_graph.dir/netemu/graph/algorithms.cpp.o"
  "CMakeFiles/netemu_graph.dir/netemu/graph/algorithms.cpp.o.d"
  "CMakeFiles/netemu_graph.dir/netemu/graph/collapse.cpp.o"
  "CMakeFiles/netemu_graph.dir/netemu/graph/collapse.cpp.o.d"
  "CMakeFiles/netemu_graph.dir/netemu/graph/io.cpp.o"
  "CMakeFiles/netemu_graph.dir/netemu/graph/io.cpp.o.d"
  "CMakeFiles/netemu_graph.dir/netemu/graph/multigraph.cpp.o"
  "CMakeFiles/netemu_graph.dir/netemu/graph/multigraph.cpp.o.d"
  "libnetemu_graph.a"
  "libnetemu_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netemu_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
