# Empty dependencies file for netemu_graph.
# This may be replaced when dependencies are built.
