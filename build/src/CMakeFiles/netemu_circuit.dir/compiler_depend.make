# Empty compiler generated dependencies file for netemu_circuit.
# This may be replaced when dependencies are built.
