file(REMOVE_RECURSE
  "libnetemu_circuit.a"
)
