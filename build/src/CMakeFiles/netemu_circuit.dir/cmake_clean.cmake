file(REMOVE_RECURSE
  "CMakeFiles/netemu_circuit.dir/netemu/circuit/circuit.cpp.o"
  "CMakeFiles/netemu_circuit.dir/netemu/circuit/circuit.cpp.o.d"
  "CMakeFiles/netemu_circuit.dir/netemu/circuit/collapse_audit.cpp.o"
  "CMakeFiles/netemu_circuit.dir/netemu/circuit/collapse_audit.cpp.o.d"
  "CMakeFiles/netemu_circuit.dir/netemu/circuit/lemma9.cpp.o"
  "CMakeFiles/netemu_circuit.dir/netemu/circuit/lemma9.cpp.o.d"
  "libnetemu_circuit.a"
  "libnetemu_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netemu_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
