file(REMOVE_RECURSE
  "libnetemu_algopattern.a"
)
