file(REMOVE_RECURSE
  "CMakeFiles/netemu_algopattern.dir/netemu/algopattern/execution.cpp.o"
  "CMakeFiles/netemu_algopattern.dir/netemu/algopattern/execution.cpp.o.d"
  "CMakeFiles/netemu_algopattern.dir/netemu/algopattern/patterns.cpp.o"
  "CMakeFiles/netemu_algopattern.dir/netemu/algopattern/patterns.cpp.o.d"
  "libnetemu_algopattern.a"
  "libnetemu_algopattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netemu_algopattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
