# Empty dependencies file for netemu_algopattern.
# This may be replaced when dependencies are built.
