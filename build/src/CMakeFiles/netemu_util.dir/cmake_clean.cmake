file(REMOVE_RECURSE
  "CMakeFiles/netemu_util.dir/netemu/util/cli.cpp.o"
  "CMakeFiles/netemu_util.dir/netemu/util/cli.cpp.o.d"
  "CMakeFiles/netemu_util.dir/netemu/util/prng.cpp.o"
  "CMakeFiles/netemu_util.dir/netemu/util/prng.cpp.o.d"
  "CMakeFiles/netemu_util.dir/netemu/util/stats.cpp.o"
  "CMakeFiles/netemu_util.dir/netemu/util/stats.cpp.o.d"
  "CMakeFiles/netemu_util.dir/netemu/util/table.cpp.o"
  "CMakeFiles/netemu_util.dir/netemu/util/table.cpp.o.d"
  "CMakeFiles/netemu_util.dir/netemu/util/thread_pool.cpp.o"
  "CMakeFiles/netemu_util.dir/netemu/util/thread_pool.cpp.o.d"
  "libnetemu_util.a"
  "libnetemu_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netemu_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
