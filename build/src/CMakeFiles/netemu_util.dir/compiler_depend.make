# Empty compiler generated dependencies file for netemu_util.
# This may be replaced when dependencies are built.
