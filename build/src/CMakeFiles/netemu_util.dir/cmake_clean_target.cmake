file(REMOVE_RECURSE
  "libnetemu_util.a"
)
