
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netemu/util/cli.cpp" "src/CMakeFiles/netemu_util.dir/netemu/util/cli.cpp.o" "gcc" "src/CMakeFiles/netemu_util.dir/netemu/util/cli.cpp.o.d"
  "/root/repo/src/netemu/util/prng.cpp" "src/CMakeFiles/netemu_util.dir/netemu/util/prng.cpp.o" "gcc" "src/CMakeFiles/netemu_util.dir/netemu/util/prng.cpp.o.d"
  "/root/repo/src/netemu/util/stats.cpp" "src/CMakeFiles/netemu_util.dir/netemu/util/stats.cpp.o" "gcc" "src/CMakeFiles/netemu_util.dir/netemu/util/stats.cpp.o.d"
  "/root/repo/src/netemu/util/table.cpp" "src/CMakeFiles/netemu_util.dir/netemu/util/table.cpp.o" "gcc" "src/CMakeFiles/netemu_util.dir/netemu/util/table.cpp.o.d"
  "/root/repo/src/netemu/util/thread_pool.cpp" "src/CMakeFiles/netemu_util.dir/netemu/util/thread_pool.cpp.o" "gcc" "src/CMakeFiles/netemu_util.dir/netemu/util/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
