# Empty compiler generated dependencies file for netemu_embedding.
# This may be replaced when dependencies are built.
