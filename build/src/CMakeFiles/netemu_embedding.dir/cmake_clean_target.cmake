file(REMOVE_RECURSE
  "libnetemu_embedding.a"
)
