file(REMOVE_RECURSE
  "CMakeFiles/netemu_embedding.dir/netemu/embedding/congestion_witness.cpp.o"
  "CMakeFiles/netemu_embedding.dir/netemu/embedding/congestion_witness.cpp.o.d"
  "CMakeFiles/netemu_embedding.dir/netemu/embedding/embedding.cpp.o"
  "CMakeFiles/netemu_embedding.dir/netemu/embedding/embedding.cpp.o.d"
  "CMakeFiles/netemu_embedding.dir/netemu/embedding/partition.cpp.o"
  "CMakeFiles/netemu_embedding.dir/netemu/embedding/partition.cpp.o.d"
  "libnetemu_embedding.a"
  "libnetemu_embedding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netemu_embedding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
