file(REMOVE_RECURSE
  "libnetemu_emulation.a"
)
