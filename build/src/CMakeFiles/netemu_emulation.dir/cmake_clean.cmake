file(REMOVE_RECURSE
  "CMakeFiles/netemu_emulation.dir/netemu/emulation/bounds.cpp.o"
  "CMakeFiles/netemu_emulation.dir/netemu/emulation/bounds.cpp.o.d"
  "CMakeFiles/netemu_emulation.dir/netemu/emulation/engine.cpp.o"
  "CMakeFiles/netemu_emulation.dir/netemu/emulation/engine.cpp.o.d"
  "CMakeFiles/netemu_emulation.dir/netemu/emulation/host_size.cpp.o"
  "CMakeFiles/netemu_emulation.dir/netemu/emulation/host_size.cpp.o.d"
  "CMakeFiles/netemu_emulation.dir/netemu/emulation/redundant.cpp.o"
  "CMakeFiles/netemu_emulation.dir/netemu/emulation/redundant.cpp.o.d"
  "CMakeFiles/netemu_emulation.dir/netemu/emulation/tables.cpp.o"
  "CMakeFiles/netemu_emulation.dir/netemu/emulation/tables.cpp.o.d"
  "CMakeFiles/netemu_emulation.dir/netemu/emulation/verified.cpp.o"
  "CMakeFiles/netemu_emulation.dir/netemu/emulation/verified.cpp.o.d"
  "libnetemu_emulation.a"
  "libnetemu_emulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netemu_emulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
