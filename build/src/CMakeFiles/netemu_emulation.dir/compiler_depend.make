# Empty compiler generated dependencies file for netemu_emulation.
# This may be replaced when dependencies are built.
