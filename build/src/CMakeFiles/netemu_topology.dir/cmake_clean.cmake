file(REMOVE_RECURSE
  "CMakeFiles/netemu_topology.dir/netemu/topology/butterfly.cpp.o"
  "CMakeFiles/netemu_topology.dir/netemu/topology/butterfly.cpp.o.d"
  "CMakeFiles/netemu_topology.dir/netemu/topology/ccc.cpp.o"
  "CMakeFiles/netemu_topology.dir/netemu/topology/ccc.cpp.o.d"
  "CMakeFiles/netemu_topology.dir/netemu/topology/debruijn.cpp.o"
  "CMakeFiles/netemu_topology.dir/netemu/topology/debruijn.cpp.o.d"
  "CMakeFiles/netemu_topology.dir/netemu/topology/expander.cpp.o"
  "CMakeFiles/netemu_topology.dir/netemu/topology/expander.cpp.o.d"
  "CMakeFiles/netemu_topology.dir/netemu/topology/factory.cpp.o"
  "CMakeFiles/netemu_topology.dir/netemu/topology/factory.cpp.o.d"
  "CMakeFiles/netemu_topology.dir/netemu/topology/hypercube.cpp.o"
  "CMakeFiles/netemu_topology.dir/netemu/topology/hypercube.cpp.o.d"
  "CMakeFiles/netemu_topology.dir/netemu/topology/linear.cpp.o"
  "CMakeFiles/netemu_topology.dir/netemu/topology/linear.cpp.o.d"
  "CMakeFiles/netemu_topology.dir/netemu/topology/machine.cpp.o"
  "CMakeFiles/netemu_topology.dir/netemu/topology/machine.cpp.o.d"
  "CMakeFiles/netemu_topology.dir/netemu/topology/mesh.cpp.o"
  "CMakeFiles/netemu_topology.dir/netemu/topology/mesh.cpp.o.d"
  "CMakeFiles/netemu_topology.dir/netemu/topology/mesh_of_trees.cpp.o"
  "CMakeFiles/netemu_topology.dir/netemu/topology/mesh_of_trees.cpp.o.d"
  "CMakeFiles/netemu_topology.dir/netemu/topology/multibutterfly.cpp.o"
  "CMakeFiles/netemu_topology.dir/netemu/topology/multibutterfly.cpp.o.d"
  "CMakeFiles/netemu_topology.dir/netemu/topology/multigrid.cpp.o"
  "CMakeFiles/netemu_topology.dir/netemu/topology/multigrid.cpp.o.d"
  "CMakeFiles/netemu_topology.dir/netemu/topology/pyramid.cpp.o"
  "CMakeFiles/netemu_topology.dir/netemu/topology/pyramid.cpp.o.d"
  "CMakeFiles/netemu_topology.dir/netemu/topology/shuffle_exchange.cpp.o"
  "CMakeFiles/netemu_topology.dir/netemu/topology/shuffle_exchange.cpp.o.d"
  "CMakeFiles/netemu_topology.dir/netemu/topology/tree.cpp.o"
  "CMakeFiles/netemu_topology.dir/netemu/topology/tree.cpp.o.d"
  "libnetemu_topology.a"
  "libnetemu_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netemu_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
