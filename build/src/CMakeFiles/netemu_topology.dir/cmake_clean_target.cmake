file(REMOVE_RECURSE
  "libnetemu_topology.a"
)
