
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netemu/topology/butterfly.cpp" "src/CMakeFiles/netemu_topology.dir/netemu/topology/butterfly.cpp.o" "gcc" "src/CMakeFiles/netemu_topology.dir/netemu/topology/butterfly.cpp.o.d"
  "/root/repo/src/netemu/topology/ccc.cpp" "src/CMakeFiles/netemu_topology.dir/netemu/topology/ccc.cpp.o" "gcc" "src/CMakeFiles/netemu_topology.dir/netemu/topology/ccc.cpp.o.d"
  "/root/repo/src/netemu/topology/debruijn.cpp" "src/CMakeFiles/netemu_topology.dir/netemu/topology/debruijn.cpp.o" "gcc" "src/CMakeFiles/netemu_topology.dir/netemu/topology/debruijn.cpp.o.d"
  "/root/repo/src/netemu/topology/expander.cpp" "src/CMakeFiles/netemu_topology.dir/netemu/topology/expander.cpp.o" "gcc" "src/CMakeFiles/netemu_topology.dir/netemu/topology/expander.cpp.o.d"
  "/root/repo/src/netemu/topology/factory.cpp" "src/CMakeFiles/netemu_topology.dir/netemu/topology/factory.cpp.o" "gcc" "src/CMakeFiles/netemu_topology.dir/netemu/topology/factory.cpp.o.d"
  "/root/repo/src/netemu/topology/hypercube.cpp" "src/CMakeFiles/netemu_topology.dir/netemu/topology/hypercube.cpp.o" "gcc" "src/CMakeFiles/netemu_topology.dir/netemu/topology/hypercube.cpp.o.d"
  "/root/repo/src/netemu/topology/linear.cpp" "src/CMakeFiles/netemu_topology.dir/netemu/topology/linear.cpp.o" "gcc" "src/CMakeFiles/netemu_topology.dir/netemu/topology/linear.cpp.o.d"
  "/root/repo/src/netemu/topology/machine.cpp" "src/CMakeFiles/netemu_topology.dir/netemu/topology/machine.cpp.o" "gcc" "src/CMakeFiles/netemu_topology.dir/netemu/topology/machine.cpp.o.d"
  "/root/repo/src/netemu/topology/mesh.cpp" "src/CMakeFiles/netemu_topology.dir/netemu/topology/mesh.cpp.o" "gcc" "src/CMakeFiles/netemu_topology.dir/netemu/topology/mesh.cpp.o.d"
  "/root/repo/src/netemu/topology/mesh_of_trees.cpp" "src/CMakeFiles/netemu_topology.dir/netemu/topology/mesh_of_trees.cpp.o" "gcc" "src/CMakeFiles/netemu_topology.dir/netemu/topology/mesh_of_trees.cpp.o.d"
  "/root/repo/src/netemu/topology/multibutterfly.cpp" "src/CMakeFiles/netemu_topology.dir/netemu/topology/multibutterfly.cpp.o" "gcc" "src/CMakeFiles/netemu_topology.dir/netemu/topology/multibutterfly.cpp.o.d"
  "/root/repo/src/netemu/topology/multigrid.cpp" "src/CMakeFiles/netemu_topology.dir/netemu/topology/multigrid.cpp.o" "gcc" "src/CMakeFiles/netemu_topology.dir/netemu/topology/multigrid.cpp.o.d"
  "/root/repo/src/netemu/topology/pyramid.cpp" "src/CMakeFiles/netemu_topology.dir/netemu/topology/pyramid.cpp.o" "gcc" "src/CMakeFiles/netemu_topology.dir/netemu/topology/pyramid.cpp.o.d"
  "/root/repo/src/netemu/topology/shuffle_exchange.cpp" "src/CMakeFiles/netemu_topology.dir/netemu/topology/shuffle_exchange.cpp.o" "gcc" "src/CMakeFiles/netemu_topology.dir/netemu/topology/shuffle_exchange.cpp.o.d"
  "/root/repo/src/netemu/topology/tree.cpp" "src/CMakeFiles/netemu_topology.dir/netemu/topology/tree.cpp.o" "gcc" "src/CMakeFiles/netemu_topology.dir/netemu/topology/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/netemu_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netemu_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
