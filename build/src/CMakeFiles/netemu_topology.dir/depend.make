# Empty dependencies file for netemu_topology.
# This may be replaced when dependencies are built.
