# Empty dependencies file for netemu_bandwidth.
# This may be replaced when dependencies are built.
