file(REMOVE_RECURSE
  "CMakeFiles/netemu_bandwidth.dir/netemu/bandwidth/asymptotic.cpp.o"
  "CMakeFiles/netemu_bandwidth.dir/netemu/bandwidth/asymptotic.cpp.o.d"
  "CMakeFiles/netemu_bandwidth.dir/netemu/bandwidth/bottleneck.cpp.o"
  "CMakeFiles/netemu_bandwidth.dir/netemu/bandwidth/bottleneck.cpp.o.d"
  "CMakeFiles/netemu_bandwidth.dir/netemu/bandwidth/empirical.cpp.o"
  "CMakeFiles/netemu_bandwidth.dir/netemu/bandwidth/empirical.cpp.o.d"
  "CMakeFiles/netemu_bandwidth.dir/netemu/bandwidth/theory.cpp.o"
  "CMakeFiles/netemu_bandwidth.dir/netemu/bandwidth/theory.cpp.o.d"
  "libnetemu_bandwidth.a"
  "libnetemu_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netemu_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
