file(REMOVE_RECURSE
  "libnetemu_bandwidth.a"
)
