file(REMOVE_RECURSE
  "libnetemu_cut.a"
)
