
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netemu/cut/bisection.cpp" "src/CMakeFiles/netemu_cut.dir/netemu/cut/bisection.cpp.o" "gcc" "src/CMakeFiles/netemu_cut.dir/netemu/cut/bisection.cpp.o.d"
  "/root/repo/src/netemu/cut/kernighan_lin.cpp" "src/CMakeFiles/netemu_cut.dir/netemu/cut/kernighan_lin.cpp.o" "gcc" "src/CMakeFiles/netemu_cut.dir/netemu/cut/kernighan_lin.cpp.o.d"
  "/root/repo/src/netemu/cut/spectral.cpp" "src/CMakeFiles/netemu_cut.dir/netemu/cut/spectral.cpp.o" "gcc" "src/CMakeFiles/netemu_cut.dir/netemu/cut/spectral.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/netemu_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netemu_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
