file(REMOVE_RECURSE
  "CMakeFiles/netemu_cut.dir/netemu/cut/bisection.cpp.o"
  "CMakeFiles/netemu_cut.dir/netemu/cut/bisection.cpp.o.d"
  "CMakeFiles/netemu_cut.dir/netemu/cut/kernighan_lin.cpp.o"
  "CMakeFiles/netemu_cut.dir/netemu/cut/kernighan_lin.cpp.o.d"
  "CMakeFiles/netemu_cut.dir/netemu/cut/spectral.cpp.o"
  "CMakeFiles/netemu_cut.dir/netemu/cut/spectral.cpp.o.d"
  "libnetemu_cut.a"
  "libnetemu_cut.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netemu_cut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
