# Empty dependencies file for netemu_cut.
# This may be replaced when dependencies are built.
