# Empty compiler generated dependencies file for algopattern_test.
# This may be replaced when dependencies are built.
