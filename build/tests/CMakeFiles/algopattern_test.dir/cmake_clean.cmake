file(REMOVE_RECURSE
  "CMakeFiles/algopattern_test.dir/algopattern_test.cpp.o"
  "CMakeFiles/algopattern_test.dir/algopattern_test.cpp.o.d"
  "algopattern_test"
  "algopattern_test.pdb"
  "algopattern_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algopattern_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
