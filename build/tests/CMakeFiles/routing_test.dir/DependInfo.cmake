
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/routing_test.cpp" "tests/CMakeFiles/routing_test.dir/routing_test.cpp.o" "gcc" "tests/CMakeFiles/routing_test.dir/routing_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/netemu_emulation.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netemu_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netemu_bandwidth.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netemu_embedding.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netemu_algopattern.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netemu_cut.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netemu_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netemu_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netemu_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netemu_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netemu_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
