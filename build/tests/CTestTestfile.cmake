# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/cut_test[1]_include.cmake")
include("/root/repo/build/tests/topology_test[1]_include.cmake")
include("/root/repo/build/tests/traffic_test[1]_include.cmake")
include("/root/repo/build/tests/routing_test[1]_include.cmake")
include("/root/repo/build/tests/bandwidth_test[1]_include.cmake")
include("/root/repo/build/tests/embedding_test[1]_include.cmake")
include("/root/repo/build/tests/circuit_test[1]_include.cmake")
include("/root/repo/build/tests/emulation_test[1]_include.cmake")
include("/root/repo/build/tests/algopattern_test[1]_include.cmake")
include("/root/repo/build/tests/extension_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/coverage_test[1]_include.cmake")
