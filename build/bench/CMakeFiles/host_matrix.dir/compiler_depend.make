# Empty compiler generated dependencies file for host_matrix.
# This may be replaced when dependencies are built.
