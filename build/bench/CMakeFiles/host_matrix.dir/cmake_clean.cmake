file(REMOVE_RECURSE
  "CMakeFiles/host_matrix.dir/host_matrix.cpp.o"
  "CMakeFiles/host_matrix.dir/host_matrix.cpp.o.d"
  "host_matrix"
  "host_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/host_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
