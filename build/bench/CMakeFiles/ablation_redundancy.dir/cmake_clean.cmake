file(REMOVE_RECURSE
  "CMakeFiles/ablation_redundancy.dir/ablation_redundancy.cpp.o"
  "CMakeFiles/ablation_redundancy.dir/ablation_redundancy.cpp.o.d"
  "ablation_redundancy"
  "ablation_redundancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_redundancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
