file(REMOVE_RECURSE
  "CMakeFiles/table3_hosts.dir/table3_hosts.cpp.o"
  "CMakeFiles/table3_hosts.dir/table3_hosts.cpp.o.d"
  "table3_hosts"
  "table3_hosts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_hosts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
