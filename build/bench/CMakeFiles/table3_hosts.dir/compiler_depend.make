# Empty compiler generated dependencies file for table3_hosts.
# This may be replaced when dependencies are built.
