# Empty compiler generated dependencies file for figure2_circuit.
# This may be replaced when dependencies are built.
