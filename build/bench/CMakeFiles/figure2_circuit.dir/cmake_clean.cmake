file(REMOVE_RECURSE
  "CMakeFiles/figure2_circuit.dir/figure2_circuit.cpp.o"
  "CMakeFiles/figure2_circuit.dir/figure2_circuit.cpp.o.d"
  "figure2_circuit"
  "figure2_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure2_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
