# Empty compiler generated dependencies file for algorithm_bounds.
# This may be replaced when dependencies are built.
