file(REMOVE_RECURSE
  "CMakeFiles/algorithm_bounds.dir/algorithm_bounds.cpp.o"
  "CMakeFiles/algorithm_bounds.dir/algorithm_bounds.cpp.o.d"
  "algorithm_bounds"
  "algorithm_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algorithm_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
