file(REMOVE_RECURSE
  "CMakeFiles/table2_hosts.dir/table2_hosts.cpp.o"
  "CMakeFiles/table2_hosts.dir/table2_hosts.cpp.o.d"
  "table2_hosts"
  "table2_hosts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_hosts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
