# Empty compiler generated dependencies file for table2_hosts.
# This may be replaced when dependencies are built.
