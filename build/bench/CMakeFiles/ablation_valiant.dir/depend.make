# Empty dependencies file for ablation_valiant.
# This may be replaced when dependencies are built.
