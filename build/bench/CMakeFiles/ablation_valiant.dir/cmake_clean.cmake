file(REMOVE_RECURSE
  "CMakeFiles/ablation_valiant.dir/ablation_valiant.cpp.o"
  "CMakeFiles/ablation_valiant.dir/ablation_valiant.cpp.o.d"
  "ablation_valiant"
  "ablation_valiant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_valiant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
