# Empty compiler generated dependencies file for figure1_crossover.
# This may be replaced when dependencies are built.
