file(REMOVE_RECURSE
  "CMakeFiles/figure1_crossover.dir/figure1_crossover.cpp.o"
  "CMakeFiles/figure1_crossover.dir/figure1_crossover.cpp.o.d"
  "figure1_crossover"
  "figure1_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure1_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
