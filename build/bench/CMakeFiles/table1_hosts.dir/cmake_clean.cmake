file(REMOVE_RECURSE
  "CMakeFiles/table1_hosts.dir/table1_hosts.cpp.o"
  "CMakeFiles/table1_hosts.dir/table1_hosts.cpp.o.d"
  "table1_hosts"
  "table1_hosts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_hosts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
