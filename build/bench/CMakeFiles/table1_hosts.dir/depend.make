# Empty dependencies file for table1_hosts.
# This may be replaced when dependencies are built.
