# Empty compiler generated dependencies file for bottleneck_free.
# This may be replaced when dependencies are built.
