file(REMOVE_RECURSE
  "CMakeFiles/bottleneck_free.dir/bottleneck_free.cpp.o"
  "CMakeFiles/bottleneck_free.dir/bottleneck_free.cpp.o.d"
  "bottleneck_free"
  "bottleneck_free.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bottleneck_free.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
