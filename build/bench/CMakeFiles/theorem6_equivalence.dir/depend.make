# Empty dependencies file for theorem6_equivalence.
# This may be replaced when dependencies are built.
