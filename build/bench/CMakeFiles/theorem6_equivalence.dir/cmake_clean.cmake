file(REMOVE_RECURSE
  "CMakeFiles/theorem6_equivalence.dir/theorem6_equivalence.cpp.o"
  "CMakeFiles/theorem6_equivalence.dir/theorem6_equivalence.cpp.o.d"
  "theorem6_equivalence"
  "theorem6_equivalence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theorem6_equivalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
