file(REMOVE_RECURSE
  "CMakeFiles/emulation_planner.dir/emulation_planner.cpp.o"
  "CMakeFiles/emulation_planner.dir/emulation_planner.cpp.o.d"
  "emulation_planner"
  "emulation_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emulation_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
