# Empty compiler generated dependencies file for emulation_planner.
# This may be replaced when dependencies are built.
