file(REMOVE_RECURSE
  "CMakeFiles/routing_lab.dir/routing_lab.cpp.o"
  "CMakeFiles/routing_lab.dir/routing_lab.cpp.o.d"
  "routing_lab"
  "routing_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routing_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
