# Empty compiler generated dependencies file for routing_lab.
# This may be replaced when dependencies are built.
