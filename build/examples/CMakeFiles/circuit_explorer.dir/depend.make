# Empty dependencies file for circuit_explorer.
# This may be replaced when dependencies are built.
