# Empty compiler generated dependencies file for algorithm_analysis.
# This may be replaced when dependencies are built.
