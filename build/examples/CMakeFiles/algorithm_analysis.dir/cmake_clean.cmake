file(REMOVE_RECURSE
  "CMakeFiles/algorithm_analysis.dir/algorithm_analysis.cpp.o"
  "CMakeFiles/algorithm_analysis.dir/algorithm_analysis.cpp.o.d"
  "algorithm_analysis"
  "algorithm_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algorithm_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
