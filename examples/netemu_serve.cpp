// netemu_serve: the planner daemon.  Listens on localhost, answers
// line-delimited JSON queries (see docs/SERVICE.md), and memoizes every
// result in a content-addressed cache that persists across restarts.
//
//   $ netemu_serve --port 7464 --cache-file netemu_cache.json
//   $ netemu_serve --port 0            # ephemeral port, printed on stdout
//   $ netemu_serve --fault-plan 'seed=7,drop=0.02,torn=0.3'   # chaos mode
//   $ netemu_serve --no-journal        # skip the crash-recovery WAL
//   $ netemu_serve --io-threads 4      # reactor shards (0 = hw threads)
//   $ netemu_serve --blocking-io       # legacy thread-per-connection plane
//   $ netemu_serve --guard             # overload guard (docs/GUARD.md)
//
// Stop with SIGINT/SIGTERM or a client {"op":"drain"} / {"op":"shutdown"}.
// Signals and the drain op run the graceful drain (docs/LIFECYCLE.md): stop
// accepting, shed new flights, give running work up to half of --drain-ms
// to finish, cancel the stragglers cooperatively, snapshot the cache, exit
// 0 — bounded end to end by --drain-ms.  A kill -9 skips all of it, but
// with journaling (the default when a cache file is set) every computed
// result was already fsync'd to <cache-file>.wal, so the next start rejoins
// warm — the fleet router counts on this (see docs/FLEET.md).

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <iostream>
#include <memory>
#include <thread>

#include "netemu/faultline/fault_plan.hpp"
#include "netemu/faultline/injector.hpp"
#include "netemu/scope/flight_recorder.hpp"
#include "netemu/service/protocol.hpp"
#include "netemu/service/server.hpp"
#include "netemu/util/cli.hpp"

using namespace netemu;

namespace {
std::atomic<bool> g_signal_stop{false};
void on_signal(int) { g_signal_stop.store(true); }

/// Bounded graceful drain: no new connections or flights, half the budget
/// for running work to finish on its own, cooperative cancellation for the
/// rest, then a full stop.  Returns with the server stopped.
void drain_and_stop(Server& server, QueryExecutor& executor,
                    std::uint64_t budget_ms) {
  using Clock = std::chrono::steady_clock;
  const auto started = Clock::now();
  const auto deadline = started + std::chrono::milliseconds(budget_ms);
  const auto cancel_at = started + std::chrono::milliseconds(budget_ms / 2);
  server.begin_drain();
  executor.begin_drain();
  while (executor.pending() > 0 && Clock::now() < cancel_at) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  if (executor.pending() > 0) {
    const std::size_t fired = executor.cancel_all();
    std::cerr << "drain: cancelled " << fired << " in-flight queries\n";
    while (executor.pending() > 0 && Clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  server.stop();
  std::cerr << "drained in "
            << std::chrono::duration_cast<std::chrono::milliseconds>(
                   Clock::now() - started)
                   .count()
            << " ms\n";
}
}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);

  // A fatal signal dumps the scope flight recorder (recent sheds, watchdog
  // fires, injected faults — with trace ids) to stderr before re-raising.
  scope::install_crash_handler();

  QueryExecutor::Options exec_options;
  exec_options.threads = static_cast<std::size_t>(cli.get_int("threads", 0));
  exec_options.max_queue = static_cast<std::size_t>(cli.get_int("queue", 256));
  exec_options.default_deadline_ms =
      static_cast<std::uint64_t>(cli.get_int("deadline-ms", 30000));
  exec_options.cache_capacity =
      static_cast<std::size_t>(cli.get_int("cache-capacity", 4096));
  exec_options.cache_file =
      cli.has("no-persist") ? "" : cli.get("cache-file", "netemu_cache.json");
  exec_options.cache_journal =
      !exec_options.cache_file.empty() && !cli.has("no-journal");
  exec_options.hang_timeout_ms =
      static_cast<std::uint64_t>(cli.get_int("hang-timeout-ms", 60000));
  exec_options.retry_after_hint_ms =
      static_cast<std::uint64_t>(cli.get_int("retry-after-ms", 50));

  // Overload guard (docs/GUARD.md): cost-model admission, per-client fair
  // share + rate limits, AIMD concurrency adaptation, brownout degradation.
  // Off by default — the guard changes shed behaviour under pressure, so
  // opting in is explicit.
  exec_options.guard.enabled = cli.has("guard");
  exec_options.guard.cost_budget =
      static_cast<std::uint64_t>(cli.get_int("guard-budget", 0));
  exec_options.guard.rate_units_per_s =
      static_cast<double>(cli.get_int("guard-rate", 0));
  exec_options.guard.target_p95_ms =
      static_cast<std::uint64_t>(cli.get_int("guard-target-p95-ms", 250));
  exec_options.guard.client_share = cli.get_double("guard-share", 0.5);
  if (cli.has("no-guard-brownout")) exec_options.guard.brownout = false;
  if (cli.has("no-guard-adaptive")) exec_options.guard.adaptive = false;

  // Chaos mode: inject a deterministic fault plan into the daemon's own
  // sockets, workers, and cache writes (see docs/FAULTLINE.md).
  std::unique_ptr<FaultInjector> injector;
  const std::string plan_spec = cli.get("fault-plan");
  if (!plan_spec.empty()) {
    std::string plan_error;
    const auto plan = FaultPlan::parse(plan_spec, &plan_error);
    if (!plan) {
      std::cerr << "netemu_serve: bad --fault-plan: " << plan_error << "\n";
      return 1;
    }
    injector = std::make_unique<FaultInjector>(*plan);
    exec_options.faults = injector.get();
    std::cerr << "fault plan active: " << plan->spec() << "\n";
  }

  // Fail fast, before any work is accepted, when the cache path cannot be
  // written: discovering this at shutdown (or at the first WAL append)
  // would silently cost every computed result.
  if (!exec_options.cache_file.empty()) {
    std::string probe_error;
    if (!ResultCache::probe_path(exec_options.cache_file, &probe_error)) {
      std::cerr << "netemu_serve: " << probe_error
                << "\n  pass --cache-file <writable path> or --no-persist "
                   "to run memory-only\n";
      return 1;
    }
  }

  QueryExecutor executor(exec_options);
  if (!exec_options.cache_file.empty()) {
    std::cerr << "cache: " << exec_options.cache_file << " ("
              << executor.cache().size() << " entries loaded, "
              << executor.cache().wal_replayed() << " from journal"
              << (exec_options.cache_journal ? "" : ", journal off") << ")\n";
  }

  Server::Options server_options;
  server_options.port = static_cast<std::uint16_t>(cli.get_int("port", 7464));
  server_options.faults = injector.get();
  server_options.io_threads =
      static_cast<std::size_t>(cli.get_int("io-threads", 0));
  server_options.offload_threads =
      static_cast<std::size_t>(cli.get_int("offload-threads", 0));
  server_options.blocking_plane = cli.has("blocking-io");
  // Custom handler rather than the QueryExecutor convenience constructor so
  // a client {"op":"drain"} reaches the drain sequence below.  That skips
  // the constructor's automatic fast path, so install it explicitly: ping
  // and cache hits answer inline on the reactor shard.
  server_options.fast_handler = [&executor](const std::string& line) {
    return try_handle_request_line_fast(line, executor);
  };
  std::atomic<bool> drain_op{false};
  Server server(
      Server::TaggedLineHandler(
          [&executor, &drain_op](const std::string& line,
                                 const std::string& peer,
                                 bool* shutdown_requested) {
            bool drain = false;
            // The connection's peer tag is the fallback guard identity for
            // queries that carry no "client" field.
            std::string response =
                handle_request_line(line, executor, shutdown_requested,
                                    &drain, "peer:" + peer);
            if (drain) drain_op.store(true);
            return response;
          }),
      server_options);
  std::string error;
  if (!server.start(&error)) {
    std::cerr << "netemu_serve: " << error << "\n";
    if (server.last_errno() == EADDRINUSE) {
      std::cerr << "  port " << server_options.port
                << " is already bound — another netemu_serve (or fleet "
                   "backend) may be running.\n  pick a different --port, or "
                   "--port 0 for an ephemeral one (printed on stdout)\n";
    } else if (server.last_errno() == EACCES) {
      std::cerr << "  binding port " << server_options.port
                << " needs more privileges; ports >= 1024 do not\n";
    }
    return 1;
  }
  std::cout << "listening on 127.0.0.1:" << server.port() << std::endl;

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  const auto drain_budget_ms =
      static_cast<std::uint64_t>(cli.get_int("drain-ms", 1000));

  // Poll: a signal handler cannot take the server's locks itself.
  while (!g_signal_stop.load() && !drain_op.load() && server.running()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  if (g_signal_stop.load() || drain_op.load()) {
    drain_and_stop(server, executor, drain_budget_ms);
  } else {
    server.stop();  // client shutdown op: connections already done
  }

  const QueryExecutor::Stats s = executor.stats();
  std::cerr << "served " << s.requests << " requests (" << s.cache_hits
            << " cache hits, " << s.computed << " computed, "
            << s.dedup_joins << " dedup joins, " << s.rejected
            << " rejected, " << s.hung << " hung, " << s.stale_served
            << " stale, " << s.cancelled << " cancelled, " << s.browned_out
            << " browned out)\n";
  if (injector) {
    const FaultInjector::Counts c = injector->counts();
    std::cerr << "faults injected: " << c.total() << " (" << c.drops
              << " drops, " << c.shorts << " shorts, " << c.slows
              << " slows, " << c.disk_fails << " disk fails, "
              << c.torn_writes << " torn writes, " << c.stalls
              << " stalls)\n";
  }
  executor.save_cache();
  return 0;
}
