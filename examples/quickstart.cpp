// Quickstart: the paper's running example end to end in ~60 lines.
//
//   1. Build a guest (de Bruijn graph) and a host (2-d mesh).
//   2. Look up / measure their bandwidths β.
//   3. Get the Efficient Emulation Theorem's slowdown lower bound.
//   4. Solve for the largest mesh that can efficiently emulate the guest.
//   5. Actually run the emulation and compare.
//
//   $ quickstart [--guest-n 1024] [--host-side 8]

#include <iostream>

#include "netemu/bandwidth/empirical.hpp"
#include "netemu/emulation/bounds.hpp"
#include "netemu/emulation/engine.hpp"
#include "netemu/emulation/verified.hpp"
#include "netemu/emulation/host_size.hpp"
#include "netemu/topology/factory.hpp"
#include "netemu/topology/generators.hpp"
#include "netemu/util/cli.hpp"

using namespace netemu;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto guest_n = static_cast<std::size_t>(cli.get_int("guest-n", 1024));
  const auto side = static_cast<std::uint32_t>(cli.get_int("host-side", 8));
  Prng rng(2026);

  // 1. Machines.
  Machine guest = make_machine(Family::kDeBruijn, guest_n, 1, rng);
  Machine host = make_mesh({side, side});
  std::cout << "guest: " << guest.name << "  (" << guest.graph.num_vertices()
            << " vertices)\nhost:  " << host.name << "  ("
            << host.graph.num_vertices() << " vertices)\n\n";

  // 2. Bandwidths: closed form (Table 4) and measured.
  const double n = static_cast<double>(guest.graph.num_vertices());
  const double m = static_cast<double>(host.graph.num_vertices());
  std::cout << "beta(guest) = " << beta_theory(guest.family).theta_string()
            << " = " << beta_theory(guest.family)(n) << "\n";
  std::cout << "beta(host)  = "
            << beta_theory(host.family, 2).theta_string("m") << " = "
            << beta_theory(host.family, 2)(m) << "\n";
  const double measured_guest = measure_beta_simulated(guest, rng);
  const double measured_host = measure_beta_simulated(host, rng);
  std::cout << "measured:   beta-hat(guest) = " << measured_guest
            << ", beta-hat(host) = " << measured_host << "\n\n";

  // 3. Slowdown bounds.
  const SlowdownBounds b =
      slowdown_bounds(guest.family, 1, n, host.family, 2, m);
  std::cout << "slowdown lower bounds: load |G|/|H| = " << b.load
            << ", bandwidth beta(G)/beta(H) = " << b.bandwidth
            << " -> S = Omega(" << b.combined << ")\n";

  // 4. Largest efficient mesh host.
  const HostSizeEntry e =
      max_host_size(guest.family, 1, n, {Family::kMesh, 2});
  std::cout << "max efficient Mesh2 host: " << e.symbolic << "  ->  |H| <= "
            << e.numeric << " at |G| = " << n << "\n\n";

  // 5. Run it — with semantic verification: the host actually computes the
  // guest's synchronous data-flow automaton through explicit mailboxes.
  EmulationOptions opt;
  opt.guest_steps = 4;
  const VerifiedEmulation v = emulate_verified(guest, host, rng, opt);
  std::cout << "measured emulation: slowdown = " << v.timing.slowdown
            << " (load " << v.timing.max_load << ", comm fraction "
            << v.timing.comm_fraction << ")\n";
  std::cout << "host computed the guest's computation: "
            << (v.states_match ? "yes (checksums match)" : "NO") << "\n";
  std::cout << "lower bound respected: "
            << (v.timing.slowdown * 4.0 >= b.combined ? "yes" : "NO") << "\n";
  return 0;
}
