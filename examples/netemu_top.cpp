// netemu_top: live fleet dashboard.  Polls every backend's `stats` op (and,
// when --fleet is given, the front door's `fleet` op for breaker states)
// and renders one row per backend: request rate, cache hit rate, shed rate,
// breaker state, simulation ticks/s, and execute-latency tails from the
// scope registry histograms.
//
//   $ netemu_top --backends 7465,7466,7467            # poll backends only
//   $ netemu_top --fleet 7470                         # discover via fleet
//   $ netemu_top --backends 7465,7466 --once          # one frame (CI smoke)
//
// Rates are windowed: each frame diffs the counters against the previous
// poll.  A backend restart is detected by its process epoch (epoch_unix_s)
// — the window resets instead of printing a huge negative rate, which is
// exactly the reset-safety the epoch exists for (docs/SCOPE.md).

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <thread>
#include <vector>

#include "netemu/service/client.hpp"
#include "netemu/util/cli.hpp"
#include "netemu/util/json.hpp"
#include "netemu/util/table.hpp"

using namespace netemu;

namespace {

struct Sample {
  bool ok = false;
  std::uint64_t epoch = 0;
  std::uint64_t requests = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t rejected = 0;
  std::uint64_t sim_ticks = 0;
  double p50_us = 0.0, p95_us = 0.0, p99_us = 0.0;
  std::chrono::steady_clock::time_point t;
};

std::vector<std::uint16_t> parse_ports(const std::string& spec) {
  std::vector<std::uint16_t> out;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    char* end = nullptr;
    const long port = std::strtol(item.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || port <= 0 || port > 65535) {
      return {};
    }
    out.push_back(static_cast<std::uint16_t>(port));
  }
  return out;
}

Sample poll_backend(Client& client) {
  Sample s;
  s.t = std::chrono::steady_clock::now();
  Json req = Json::object();
  req["op"] = "stats";
  Client::RequestOutcome outcome = client.request_outcome(req);
  if (!outcome.doc || !(*outcome.doc)["ok"].as_bool()) return s;
  const Json& r = (*outcome.doc)["result"];
  s.ok = true;
  s.requests = r["requests"].as_uint();
  s.cache_hits = r["cache_hits"].as_uint();
  s.rejected = r["rejected"].as_uint();
  const Json& scope = r["scope"];
  s.epoch = scope["epoch_unix_s"].as_uint();
  s.sim_ticks = scope["counters"]["netemu_sim_ticks_total"].as_uint();
  const Json& exec_hist = scope["histograms"]["netemu_execute_us"];
  s.p50_us = exec_hist["p50"].as_number();
  s.p95_us = exec_hist["p95"].as_number();
  s.p99_us = exec_hist["p99"].as_number();
  return s;
}

/// Per-second rate of a counter across two samples; nullopt when the
/// process restarted (epoch changed) or the window is degenerate.
std::optional<double> rate(std::uint64_t cur, std::uint64_t prev,
                           const Sample& now, const Sample& before) {
  if (!before.ok || now.epoch != before.epoch || cur < prev) {
    return std::nullopt;
  }
  const double dt =
      std::chrono::duration<double>(now.t - before.t).count();
  if (dt <= 0.0) return std::nullopt;
  return static_cast<double>(cur - prev) / dt;
}

std::string pct(double num, double den) {
  if (den <= 0.0) return "-";
  return Table::num(100.0 * num / den, 1) + "%";
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);

  std::vector<std::uint16_t> ports = parse_ports(cli.get("backends"));
  const auto fleet_port =
      static_cast<std::uint16_t>(cli.get_int("fleet", 0));
  if (ports.empty() && fleet_port == 0) {
    std::cerr << "usage: " << cli.program()
              << " --backends <port,port,...> [--fleet P] [--interval-ms N]"
                 " [--once] [--no-clear]\n"
                 "  or:  " << cli.program()
              << " --fleet P   (backend ports discovered from the fleet)\n";
    return 2;
  }

  const auto interval = std::chrono::milliseconds(
      std::max<std::int64_t>(50, cli.get_int("interval-ms", 1000)));
  const bool once = cli.has("once");
  const bool clear = !cli.has("no-clear") && !once;

  Client::RetryPolicy policy;
  policy.max_attempts = 1;
  policy.attempt_timeout_ms = 2000;

  std::optional<Client> fleet_client;
  if (fleet_port != 0) {
    fleet_client.emplace(policy);
    fleet_client->set_target(fleet_port);
  }

  std::map<std::uint16_t, std::unique_ptr<Client>> clients;
  std::map<std::uint16_t, Sample> previous;

  for (int frame = 0;; ++frame) {
    // Breaker states (and backend discovery) from the fleet, when present.
    std::map<std::uint16_t, std::string> breaker;
    std::map<std::uint16_t, std::string> ids;
    if (fleet_client) {
      Json req = Json::object();
      req["op"] = "fleet";
      Client::RequestOutcome outcome = fleet_client->request_outcome(req);
      if (outcome.doc && (*outcome.doc)["ok"].as_bool()) {
        for (const Json& b : (*outcome.doc)["result"]["backends"].items()) {
          const auto port = static_cast<std::uint16_t>(b["port"].as_uint());
          breaker[port] = b["state"].as_string();
          ids[port] = b["id"].as_string();
        }
        if (ports.empty()) {
          // No --backends: poll every backend the fleet knows about.
          for (const auto& [port, id] : ids) ports.push_back(port);
        }
      }
    }

    Table table({"backend", "state", "qps", "hit", "shed", "ticks/s",
                 "p50 ms", "p95 ms", "p99 ms"});
    for (const std::uint16_t port : ports) {
      auto& client = clients[port];
      if (!client) {
        client = std::make_unique<Client>(policy);
        client->set_target(port);
      }
      const Sample now = poll_backend(*client);
      const Sample& before = previous[port];

      std::string label = ids.count(port)
                              ? ids[port]
                              : "127.0.0.1:" + std::to_string(port);
      const std::string state =
          breaker.count(port) ? breaker[port] : (now.ok ? "up" : "down");
      if (!now.ok) {
        table.add_row({label, state, "-", "-", "-", "-", "-", "-", "-"});
        previous[port] = now;
        continue;
      }
      const auto qps = rate(now.requests, before.requests, now, before);
      const auto tps = rate(now.sim_ticks, before.sim_ticks, now, before);
      const auto hits = rate(now.cache_hits, before.cache_hits, now, before);
      const auto sheds = rate(now.rejected, before.rejected, now, before);
      table.add_row({
          label,
          state,
          qps ? Table::num(*qps, 1) : "-",
          qps && hits && *qps > 0.0 ? pct(*hits, *qps) : "-",
          qps && sheds && *qps > 0.0 ? pct(*sheds, *qps) : "-",
          tps ? Table::num(*tps, 0) : "-",
          Table::num(now.p50_us / 1000.0, 3),
          Table::num(now.p95_us / 1000.0, 3),
          Table::num(now.p99_us / 1000.0, 3),
      });
      previous[port] = now;
    }

    if (clear) std::cout << "\x1b[2J\x1b[H";
    table.print(std::cout);
    std::cout.flush();
    if (once) return 0;
    std::this_thread::sleep_for(interval);
  }
}
