// netemu_fleet: the replicated front door.  Speaks the same line-delimited
// JSON protocol as netemu_serve, but instead of computing anything it
// routes each query to one of N real backends by rendezvous hashing on the
// query's content address — with circuit-breaker health tracking, failover
// to the next hash choice, and (optionally) hedged requests for tail
// latency.  Clients keep using the plain Client class; the fleet is just a
// faster, harder-to-kill "server".
//
//   $ netemu_serve --port 7465 --cache-file a.json &
//   $ netemu_serve --port 7466 --cache-file b.json &
//   $ netemu_fleet --port 7470 --backends 7465,7466
//
// Extra ops: {"op":"fleet"} returns router stats (per-backend health, shed /
// failover / hedge counters); {"op":"trace","id":...} merges the fleet's
// span records with every backend's; {"op":"events"} dumps the fleet's
// flight recorder (breaker transitions, hedge outcomes).  {"op":"shutdown"}
// stops the front door only; backends keep running.  SIGINT/SIGTERM and
// {"op":"drain"} run the graceful drain instead: stop accepting, give
// in-flight proxied requests up to --drain-ms to land, then exit 0 — the
// same lifecycle netemu_serve follows (docs/LIFECYCLE.md).  See
// docs/FLEET.md and docs/SCOPE.md.

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <thread>

#include "netemu/fleet/front_door.hpp"
#include "netemu/fleet/router.hpp"
#include "netemu/scope/flight_recorder.hpp"
#include "netemu/service/server.hpp"
#include "netemu/util/cli.hpp"

using namespace netemu;

namespace {

std::atomic<bool> g_signal_stop{false};
void on_signal(int) { g_signal_stop.store(true); }

std::vector<FleetBackendConfig> parse_backends(const std::string& spec,
                                               std::string* error) {
  std::vector<FleetBackendConfig> out;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    char* end = nullptr;
    const long port = std::strtol(item.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || port <= 0 || port > 65535) {
      *error = "bad backend port '" + item + "'";
      return {};
    }
    FleetBackendConfig cfg;
    cfg.port = static_cast<std::uint16_t>(port);
    out.push_back(cfg);
  }
  if (out.empty()) *error = "no backend ports in '" + spec + "'";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);

  const std::string backends_spec = cli.get("backends");
  if (backends_spec.empty()) {
    std::cerr << "netemu_fleet: --backends <port,port,...> is required\n"
                 "  start one netemu_serve per port first, e.g.\n"
                 "    netemu_serve --port 7465 --cache-file a.json\n";
    return 1;
  }
  std::string error;
  FleetRouter::Options options;
  options.backends = parse_backends(backends_spec, &error);
  if (options.backends.empty()) {
    std::cerr << "netemu_fleet: " << error << "\n";
    return 1;
  }

  options.health.failure_threshold =
      static_cast<int>(cli.get_int("failure-threshold", 3));
  options.health.open_cooldown_ms =
      static_cast<std::uint64_t>(cli.get_int("cooldown-ms", 500));
  options.probe_interval_ms =
      static_cast<std::uint64_t>(cli.get_int("probe-ms", 200));
  options.client.max_attempts = static_cast<int>(cli.get_int("attempts", 2));
  options.client.attempt_timeout_ms =
      static_cast<std::uint32_t>(cli.get_int("attempt-timeout-ms", 10000));
  options.hedge = cli.has("hedge");
  options.hedge_fixed_ms =
      static_cast<std::uint64_t>(cli.get_int("hedge-ms", 0));
  options.hedge_percentile = cli.get_double("hedge-percentile", 0.95);
  // Backends whose probed guard pressure is at/above this sink to the back
  // of the rendezvous order (still tried last); 0 disables.
  options.pressure_sink_threshold = cli.get_double("pressure-sink", 0.9);

  // A crashing front door leaves its last breaker/hedge events on stderr.
  scope::install_crash_handler();

  FleetRouter router(options);
  FleetFrontDoor::Options door_options;
  door_options.trace_all = cli.has("trace-all");
  // Scatter-gather: estimates with at least this many trials decompose into
  // trial-range sub-queries across the backends (docs/SCATTER.md).  0
  // disables; the merged answer is bit-identical either way.
  door_options.scatter.min_trials =
      static_cast<unsigned>(cli.get_int("scatter-min-trials", 16));
  door_options.scatter.max_ways =
      static_cast<unsigned>(cli.get_int("scatter-ways", 4));
  FleetFrontDoor front_door(router, door_options);

  Server::Options server_options;
  server_options.port = static_cast<std::uint16_t>(cli.get_int("port", 7470));
  server_options.io_threads =
      static_cast<std::size_t>(cli.get_int("io-threads", 0));
  server_options.offload_threads =
      static_cast<std::size_t>(cli.get_int("offload-threads", 0));
  server_options.blocking_plane = cli.has("blocking-io");
  // No fast_handler: every line proxies to a backend (blocking network
  // I/O), so everything rides the offload pool.
  std::atomic<bool> drain_op{false};
  Server server(
      Server::TaggedLineHandler(
          [&front_door, &drain_op](const std::string& line,
                                   const std::string& peer,
                                   bool* shutdown_requested) {
            bool drain = false;
            std::string response = front_door.handle_line(
                line, shutdown_requested, &drain, peer);
            if (drain) drain_op.store(true);
            return response;
          }),
      server_options);

  if (!server.start(&error)) {
    std::cerr << "netemu_fleet: " << error << "\n";
    if (server.last_errno() == EADDRINUSE) {
      std::cerr << "  port " << server_options.port
                << " is already bound; pick a different --port or --port 0\n";
    }
    return 1;
  }
  std::cout << "listening on 127.0.0.1:" << server.port() << std::endl;
  std::cerr << "fleet: " << options.backends.size() << " backends ("
            << backends_spec << "), hedge "
            << (options.hedge ? "on" : "off") << "\n";

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  const auto drain_budget_ms =
      static_cast<std::uint64_t>(cli.get_int("drain-ms", 1000));
  while (!g_signal_stop.load() && !drain_op.load() && server.running()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  if (g_signal_stop.load() || drain_op.load()) {
    // Graceful drain: no new connections; in-flight proxied requests get up
    // to the budget to land before the connections are shut down.  The
    // front door holds no compute, so there is nothing to cancel here —
    // backends drain on their own schedule.
    using SteadyClock = std::chrono::steady_clock;
    const auto started = SteadyClock::now();
    const auto deadline =
        started + std::chrono::milliseconds(drain_budget_ms);
    server.begin_drain();
    while (router.inflight() > 0 && SteadyClock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    server.stop();
    std::cerr << "drained in "
              << std::chrono::duration_cast<std::chrono::milliseconds>(
                     SteadyClock::now() - started)
                     .count()
              << " ms\n";
  } else {
    server.stop();
  }
  router.stop();

  const FleetRouter::Stats s = router.stats();
  std::cerr << "routed " << s.requests << " requests (" << s.answered
            << " answered, " << s.unanswered << " unanswered, "
            << s.failovers << " failovers, " << s.hedges_fired
            << " hedges fired / " << s.hedges_won << " won)\n";
  return 0;
}
