// netemu_query: CLI client for the planner service.
//
//   $ netemu_query bandwidth --family Butterfly --n 4096
//   $ netemu_query max_host --guest mesh2 --host hypercube --n 1048576
//   $ netemu_query estimate --family butterfly --n 64 --seed 7
//   $ netemu_query bounds --guest Tree --host mesh2 --n 65536
//   $ netemu_query ping | stats | shutdown
//   $ netemu_query estimate --family ccc --n 512 --trace   # traced query:
//     mints a trace id, prints it with the answer; retrieve the span set
//     with `netemu_query trace --id <hex>` (see docs/SCOPE.md)
//
// By default it talks to a running netemu_serve on --port (7464).  With
// --local it executes the query in-process instead — no daemon needed —
// against the same persistent cache file, so repeated local queries are
// answered from disk in O(1).
//
// Load generation: --repeat N sends the same request N times; --concurrency
// K spreads those over K workers with one connection each.  Instead of a
// response line it prints a summary: qps, p50/p99 latency, error counts.
//
//   $ netemu_query ping --repeat 10000 --concurrency 8

#include <algorithm>
#include <chrono>
#include <iostream>
#include <thread>
#include <vector>

#include "netemu/scope/metrics.hpp"
#include "netemu/scope/trace.hpp"
#include "netemu/service/client.hpp"
#include "netemu/service/protocol.hpp"
#include "netemu/util/cli.hpp"
#include "netemu/util/hash.hpp"

using namespace netemu;

namespace {

int usage(const std::string& program) {
  std::cerr
      << "usage: " << program
      << " [--local] [--port P] <op> [flags]\n"
         "  ops: bandwidth | estimate | max_host | bounds | ping | stats |"
         " trace | events | shutdown\n"
         "  query flags: --family/--guest F  --host F  --n N  --k K"
         "  --host_k K  --m M\n"
         "               --router default|bfs|valiant  --traffic symmetric|"
         "quasi|permutation|bitrev|transpose|hotspot\n"
         "               --arbitration farthest|fifo|random  --seed S"
         "  --trials T  --deadline-ms D\n"
         "  --trace        mint a scope trace id and send it with the query"
         " (id echoed on the response)\n"
         "  --client NAME  client identity for guard fairness (default:"
         " the server tags the connection)\n"
         "  trace op: --id <hex64>  retrieve the span set of a traced"
         " query\n"
         "  --local flags: --cache-file F (default netemu_cache.json)"
         "  --cache-capacity N\n"
         "  --attempts N   transport retries per request (default 3)\n"
         "  --repeat N     load generation: send the request N times and"
         " print a qps/latency summary\n"
         "  --concurrency K  spread --repeat over K workers, one connection"
         " each (default 1)\n"
         "  families accept a dimension suffix: mesh2, pyramid3, ...\n";
  return 2;
}

/// Load generation (--repeat / --concurrency): K workers, each with its own
/// connection, split --repeat requests between them and hammer the daemon
/// with the single-attempt raw path.  Prints a summary document (qps,
/// p50/p99 latency) instead of a response line.  Exit 0 only when every
/// request got an ok response.
int run_load(const Cli& cli, const Json& request, std::uint16_t port) {
  const long repeat = cli.get_int("repeat", 1);
  const long concurrency = cli.get_int("concurrency", 1);
  if (repeat < 1 || concurrency < 1) {
    std::cerr << cli.program()
              << ": --repeat and --concurrency must be >= 1\n";
    return 2;
  }
  const auto total = static_cast<std::size_t>(repeat);
  const auto workers =
      std::min(static_cast<std::size_t>(concurrency), total);
  const std::string request_line = request.dump();

  struct WorkerResult {
    std::vector<double> latencies_us;
    std::size_t ok = 0;
    std::size_t errors = 0;      ///< response arrived but ok:false
    std::size_t transport = 0;   ///< connection failed mid-run
    std::size_t shed = 0;        ///< ... of errors: overload sheds
    std::size_t degraded = 0;    ///< ok responses marked degraded (brownout)
    std::size_t retry_honored = 0;  ///< sheds whose retry hint we slept out
  };
  std::vector<WorkerResult> results(workers);
  std::vector<std::thread> threads;
  threads.reserve(workers);

  using Clock = std::chrono::steady_clock;
  const auto started = Clock::now();
  for (std::size_t w = 0; w < workers; ++w) {
    // Spread the remainder over the first (total % workers) workers.
    const std::size_t share = total / workers + (w < total % workers ? 1 : 0);
    threads.emplace_back([&, w, share] {
      WorkerResult& r = results[w];
      r.latencies_us.reserve(share);
      Client client;
      std::string error;
      if (!client.connect(port, &error)) {
        r.transport = share;
        return;
      }
      std::string response_line;
      for (std::size_t i = 0; i < share; ++i) {
        const auto t0 = Clock::now();
        if (!client.request_raw(request_line, response_line)) {
          ++r.transport;
          // One reconnect attempt; a daemon restart mid-run should not
          // void the rest of this worker's share.
          if (!client.connect(port, &error)) {
            r.transport += share - i - 1;
            return;
          }
          continue;
        }
        const double us = std::chrono::duration<double, std::micro>(
                              Clock::now() - t0)
                              .count();
        r.latencies_us.push_back(us);
        const Json response = Json::parse(response_line);
        if (response.is_object() && response["ok"].as_bool()) {
          ++r.ok;
          if (response["degraded"].as_bool()) ++r.degraded;
        } else {
          ++r.errors;
          if (response.is_object() && response["overloaded"].as_bool()) {
            ++r.shed;
            // Be a well-behaved client: sleep out the server's backoff
            // hint (capped — a load tool should not stall for seconds).
            const auto hint = response["retry_after_ms"].as_uint();
            if (hint > 0) {
              ++r.retry_honored;
              std::this_thread::sleep_for(std::chrono::milliseconds(
                  std::min<std::uint64_t>(hint, 1000)));
            }
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - started).count();

  std::vector<double> latencies;
  std::size_t ok = 0, errors = 0, transport = 0;
  std::size_t shed = 0, degraded = 0, retry_honored = 0;
  for (auto& r : results) {
    ok += r.ok;
    errors += r.errors;
    transport += r.transport;
    shed += r.shed;
    degraded += r.degraded;
    retry_honored += r.retry_honored;
    latencies.insert(latencies.end(), r.latencies_us.begin(),
                     r.latencies_us.end());
  }

  Json summary = Json::object();
  summary["ok"] = (ok == total);
  summary["requests"] = static_cast<double>(total);
  summary["concurrency"] = static_cast<double>(workers);
  summary["responses_ok"] = static_cast<double>(ok);
  summary["responses_error"] = static_cast<double>(errors);
  summary["responses_shed"] = static_cast<double>(shed);
  summary["responses_degraded"] = static_cast<double>(degraded);
  summary["retry_after_honored"] = static_cast<double>(retry_honored);
  summary["transport_failures"] = static_cast<double>(transport);
  summary["wall_s"] = wall_s;
  summary["qps"] = wall_s > 0.0 ? static_cast<double>(ok + errors) / wall_s
                                : 0.0;
  if (!latencies.empty()) {
    summary["p50_us"] = scope::exact_quantile(latencies, 0.50);
    summary["p99_us"] = scope::exact_quantile(latencies, 0.99);
  }
  std::cout << summary.dump() << "\n";
  return ok == total ? 0 : 1;
}

/// Copy a CLI flag into the request document verbatim (strings) or as a
/// number, only when present.
void copy_flag(const Cli& cli, const char* flag, const char* field,
               bool numeric, Json& doc) {
  if (!cli.has(flag)) return;
  if (numeric) {
    doc[field] = cli.get_double(flag, 0.0);
  } else {
    doc[field] = cli.get(flag);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  // The flag parser is greedy: in "--local estimate" the op lands as the
  // value of --local.  Accept both spellings.
  std::string op;
  if (!cli.positional().empty()) {
    op = cli.positional()[0];
  } else if (cli.has("local") && cli.get("local") != "true") {
    op = cli.get("local");
  }
  if (op.empty()) return usage(cli.program());

  Json request = Json::object();
  request["op"] = op;
  copy_flag(cli, "family", "family", false, request);
  copy_flag(cli, "guest", "guest", false, request);
  copy_flag(cli, "host", "host", false, request);
  copy_flag(cli, "n", "n", true, request);
  copy_flag(cli, "k", "k", true, request);
  copy_flag(cli, "host_k", "host_k", true, request);
  copy_flag(cli, "host-k", "host_k", true, request);
  copy_flag(cli, "m", "m", true, request);
  copy_flag(cli, "router", "router", false, request);
  copy_flag(cli, "traffic", "traffic", false, request);
  copy_flag(cli, "arbitration", "arbitration", false, request);
  copy_flag(cli, "seed", "seed", true, request);
  copy_flag(cli, "trials", "trials", true, request);
  copy_flag(cli, "deadline-ms", "deadline_ms", true, request);
  copy_flag(cli, "client", "client", false, request);
  copy_flag(cli, "id", "id", false, request);  // trace retrieval op
  if (cli.has("trace")) {
    // Client-minted trace id: the edge owns the id, every layer (fleet,
    // backend) records spans under it.
    request["trace"] = hex64(scope::mint_trace_id());
    std::cerr << "trace id: " << request["trace"].as_string() << "\n";
  }

  if (cli.has("repeat") || cli.has("concurrency")) {
    if (cli.has("local")) {
      std::cerr << cli.program()
                << ": --repeat/--concurrency need a daemon (they measure the "
                   "service, not the library); drop --local\n";
      return 2;
    }
    return run_load(
        cli, request,
        static_cast<std::uint16_t>(cli.get_int("port", 7464)));
  }

  std::string response_line;
  if (cli.has("local")) {
    QueryExecutor::Options options;
    options.cache_file = cli.get("cache-file", "netemu_cache.json");
    options.cache_capacity =
        static_cast<std::size_t>(cli.get_int("cache-capacity", 4096));
    QueryExecutor executor(options);
    response_line = handle_request_line(request.dump(), executor);
    // Executor destruction persists the (possibly grown) cache.
  } else {
    const auto port = static_cast<std::uint16_t>(cli.get_int("port", 7464));
    Client::RetryPolicy policy;
    policy.max_attempts =
        static_cast<int>(cli.get_int("attempts", policy.max_attempts));
    Client client(policy);
    std::string error;
    if (!client.connect(port, &error)) {
      std::cerr << cli.program() << ": " << error
                << "\n(start netemu_serve, or pass --local)\n";
      return 1;
    }
    // The retrying path: transport failures reconnect with backoff and
    // "overloaded" responses honor the server's retry_after_ms hint.
    const auto response = client.request(request, &error);
    if (!response) {
      std::cerr << cli.program() << ": " << error << "\n";
      return 1;
    }
    response_line = response->dump();
  }

  std::cout << response_line << "\n";
  const Json response = Json::parse(response_line);
  return response["ok"].as_bool() ? 0 : 1;
}
