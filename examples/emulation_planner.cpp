// emulation_planner: given a guest machine family and size, print — for the
// whole ladder of host families — the slowdown lower bound and the largest
// host that can possibly emulate it efficiently.  This is "Tables 1-3 as a
// service" for one guest.
//
//   $ emulation_planner --guest DeBruijn --n 1048576
//   $ emulation_planner --guest Mesh --k 3 --n 262144 --hosts-k 1,2,3

#include <iostream>
#include <sstream>

#include "netemu/emulation/bounds.hpp"
#include "netemu/emulation/host_size.hpp"
#include "netemu/topology/factory.hpp"
#include "netemu/util/cli.hpp"
#include "netemu/util/table.hpp"

using namespace netemu;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const std::string guest_name = cli.get("guest", "DeBruijn");
  const auto guest = family_from_name(guest_name);
  if (!guest) {
    std::cerr << "unknown guest family '" << guest_name << "'; one of:";
    for (Family f : all_families()) std::cerr << " " << family_name(f);
    std::cerr << "\n";
    return 2;
  }
  const auto gk = static_cast<unsigned>(cli.get_int("k", 2));
  const double n = static_cast<double>(cli.get_int("n", 1 << 20));

  std::vector<unsigned> host_ks;
  {
    std::istringstream is(cli.get("hosts-k", "1,2,3"));
    std::string tok;
    while (std::getline(is, tok, ',')) {
      host_ks.push_back(static_cast<unsigned>(std::stoul(tok)));
    }
  }

  std::cout << "Guest: " << guest_name;
  if (family_is_dimensional(*guest)) std::cout << " (k=" << gk << ")";
  std::cout << ", |G| = " << n
            << ", beta(G) = " << beta_theory(*guest, gk).theta_string()
            << "\n\n";

  Table t({"host", "beta(H)", "max |H| (symbolic)", "max |H| at this |G|",
           "slowdown at max |H|"});
  for (const HostSpec& h : standard_hosts(host_ks)) {
    const HostSizeEntry e = max_host_size(*guest, gk, n, h);
    const SlowdownBounds b =
        slowdown_bounds(*guest, gk, n, h.family, h.k, e.numeric);
    t.add_row({h.label(), beta_theory(h.family, h.k).theta_string("m"),
               e.symbolic, Table::num(e.numeric, 0),
               Table::num(b.combined, 1)});
  }
  t.print(std::cout);
  std::cout << "\nReading: a host larger than 'max |H|' cannot emulate this "
               "guest without either\nsuper-constant inefficiency or "
               "slowdown exceeding |G|/|H| (Efficient Emulation Theorem).\n";
  return 0;
}
