// routing_lab: interactive-grade exploration of machine bandwidth.
// Pick a machine, a traffic pattern, and an arbitration policy; get the
// measured delivery rate, latency, congestion, and the cut/flux upper
// bounds it must respect.
//
//   $ routing_lab --machine Mesh --k 2 --n 1024
//   $ routing_lab --machine Butterfly --traffic bit-reversal
//   $ routing_lab --machine GlobalBus --n 64 --traffic hotspot --hot 0.5

#include <iostream>

#include "netemu/bandwidth/empirical.hpp"
#include "netemu/graph/algorithms.hpp"
#include "netemu/topology/factory.hpp"
#include "netemu/util/cli.hpp"
#include "netemu/util/table.hpp"

using namespace netemu;

namespace {

TrafficDistribution make_traffic(const std::string& kind,
                                 std::vector<Vertex> procs, double hot,
                                 Prng& rng) {
  if (kind == "symmetric") {
    return TrafficDistribution::symmetric(std::move(procs));
  }
  if (kind == "quasi") {
    return TrafficDistribution::quasi_symmetric(std::move(procs), 0.25, 99);
  }
  if (kind == "permutation") {
    return TrafficDistribution::permutation(std::move(procs), rng);
  }
  if (kind == "bit-reversal") {
    return TrafficDistribution::bit_reversal(std::move(procs));
  }
  if (kind == "transpose") {
    return TrafficDistribution::transpose(std::move(procs));
  }
  if (kind == "hotspot") {
    return TrafficDistribution::hotspot(std::move(procs), hot, rng);
  }
  throw std::invalid_argument("unknown traffic kind '" + kind + "'");
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  Prng rng(static_cast<std::uint64_t>(cli.get_int("seed", 1)));

  const std::string machine_name = cli.get("machine", "Mesh");
  const auto family = family_from_name(machine_name);
  if (!family) {
    std::cerr << "unknown machine '" << machine_name << "'; one of:";
    for (Family f : all_families()) std::cerr << " " << family_name(f);
    std::cerr << "\n";
    return 2;
  }
  const auto k = static_cast<unsigned>(cli.get_int("k", 2));
  const auto n = static_cast<std::size_t>(cli.get_int("n", 1024));
  const Machine m = make_machine(*family, n, k, rng);

  std::vector<Vertex> procs;
  for (std::size_t i = 0; i < m.num_processors(); ++i) {
    procs.push_back(m.processor(i));
  }
  const std::string kind = cli.get("traffic", "symmetric");
  const auto traffic =
      make_traffic(kind, std::move(procs), cli.get_double("hot", 0.25), rng);

  std::cout << "machine: " << m.name << "  (|V| = " << m.graph.num_vertices()
            << ", E = " << m.graph.total_multiplicity()
            << ", diameter ~ " << diameter_double_sweep(m.graph, rng)
            << ")\ntraffic: " << traffic_kind_name(traffic.kind()) << "\n\n";

  Table t({"arbitration", "rate (msgs/tick)", "avg latency", "messages",
           "static congestion"});
  const auto router = make_default_router(m);
  for (Arbitration arb : {Arbitration::kFarthestFirst, Arbitration::kFifo,
                          Arbitration::kRandom}) {
    ThroughputOptions opt;
    opt.arbitration = arb;
    opt.trials = 2;
    const ThroughputResult r =
        measure_throughput(m, *router, traffic, rng, opt);
    t.add_row({arbitration_name(arb), Table::num(r.rate, 2),
               Table::num(r.last.avg_latency, 1),
               Table::integer(static_cast<long long>(r.messages)),
               Table::integer(static_cast<long long>(
                   r.last.static_congestion))});
  }
  t.print(std::cout);

  if (kind == "symmetric") {
    BetaMeasureOptions opt;
    opt.throughput.trials = 2;
    const BetaBounds b = measure_beta(m, rng, opt);
    std::cout << "\nupper bounds: 2*bisection = " << Table::num(b.cut_upper, 1)
              << ", E/avgdist = " << Table::num(b.flux_upper, 1)
              << "  (router: " << router->name() << ")\n";
  }
  return 0;
}
