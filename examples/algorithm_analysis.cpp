// algorithm_analysis: pick a parallel algorithm and see, per host family,
// the communication lower bound of its pattern and the measured execution
// time — the §3 program of the paper as a tool.
//
//   $ algorithm_analysis --algorithm fft --n 256
//   $ algorithm_analysis --algorithm bitonic --n 128 --hosts Mesh,Tree
//   $ algorithm_analysis --algorithm all-to-all --n 128

#include <iostream>
#include <sstream>

#include "netemu/algopattern/execution.hpp"
#include "netemu/topology/factory.hpp"
#include "netemu/util/math.hpp"
#include "netemu/util/cli.hpp"
#include "netemu/util/table.hpp"

using namespace netemu;

namespace {

AlgorithmPattern make_pattern(const std::string& name, std::size_t n) {
  const auto d = static_cast<unsigned>(ceil_log2(n));
  if (name == "fft") return fft_pattern(d);
  if (name == "bitonic") return bitonic_sort_pattern(d);
  if (name == "transpose") {
    return transpose_pattern(static_cast<std::uint32_t>(ipow(2, d / 2)));
  }
  if (name == "prefix") return parallel_prefix_pattern(n);
  if (name == "stencil") {
    const auto side = static_cast<std::uint32_t>(ipow(2, d / 2));
    return stencil_pattern(std::vector<std::uint32_t>{side, side}, 4);
  }
  if (name == "all-to-all") return all_to_all_pattern(n);
  if (name == "odd-even") return odd_even_transposition_pattern(n);
  throw std::invalid_argument(
      "unknown algorithm '" + name +
      "' (fft|bitonic|transpose|prefix|stencil|all-to-all|odd-even)");
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  Prng rng(static_cast<std::uint64_t>(cli.get_int("seed", 9)));
  const auto n = static_cast<std::size_t>(cli.get_int("n", 256));

  AlgorithmPattern pattern;
  try {
    pattern = make_pattern(cli.get("algorithm", "fft"), n);
  } catch (const std::invalid_argument& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }

  std::vector<std::pair<Family, unsigned>> hosts;
  {
    std::istringstream is(
        cli.get("hosts", "LinearArray,Tree,XTree,Mesh,DeBruijn,Hypercube"));
    std::string tok;
    while (std::getline(is, tok, ',')) {
      const auto f = family_from_name(tok);
      if (!f) {
        std::cerr << "unknown host family '" << tok << "'\n";
        return 2;
      }
      hosts.emplace_back(*f, 2);
    }
  }

  std::cout << "algorithm: " << pattern.name << "  (" << pattern.processors
            << " processors, " << pattern.rounds << " native rounds, "
            << pattern.traffic.total_multiplicity()
            << " messages per pass)\n\n";

  Table t({"host", "cut LB (ticks)", "measured (ticks)", "LB slowdown",
           "measured slowdown"});
  for (const auto& [f, k] : hosts) {
    const Machine host = make_machine(f, pattern.processors, k, rng);
    const PatternExecution ex = execute_pattern(pattern, host, rng);
    t.add_row({ex.host_name, Table::num(ex.cut_lower_bound, 1),
               Table::integer(static_cast<long long>(ex.measured_time)),
               Table::num(ex.bound_slowdown, 2),
               Table::num(ex.measured_slowdown, 2)});
  }
  t.print(std::cout);
  std::cout << "\n'LB slowdown' is a lower bound on the slowdown of ANY "
               "efficient redundant\nsimulation of this algorithm on that "
               "host (Lemma 8 applied to the pattern).\n";
  return 0;
}
