// circuit_explorer: walk through the Lemma 9 construction on a small guest
// and print every object the proof manipulates — the circuit parameters,
// one concrete cone, the S/Q bookkeeping, the full audit, and the Lemma 11
// collapse onto a host of chosen size.
//
//   $ circuit_explorer --guest Mesh --k 2 --n 144 --parts 16
//   $ circuit_explorer --guest DeBruijn --n 128 --stretch 2.0

#include <iostream>

#include "netemu/circuit/collapse_audit.hpp"
#include "netemu/circuit/lemma9.hpp"
#include "netemu/topology/factory.hpp"
#include "netemu/util/cli.hpp"
#include "netemu/util/table.hpp"

using namespace netemu;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  Prng rng(static_cast<std::uint64_t>(cli.get_int("seed", 3)));

  const std::string guest_name = cli.get("guest", "Mesh");
  const auto family = family_from_name(guest_name);
  if (!family) {
    std::cerr << "unknown guest '" << guest_name << "'\n";
    return 2;
  }
  const auto k = static_cast<unsigned>(cli.get_int("k", 2));
  const auto n = static_cast<std::size_t>(cli.get_int("n", 144));
  const Machine g = make_machine(*family, n, k, rng);

  Lemma9Options opt;
  opt.stretch = cli.get_double("stretch", 1.0);
  const Lemma9Construction c(g.graph, opt, rng);

  std::cout << "guest: " << g.name << "\n";
  std::cout << "Λ (diameter) = " << c.lambda() << ", t = (1+"
            << opt.stretch << ")Λ = " << c.t() << ", S-levels w = "
            << c.s_levels() << ", cone cutoff Λ~ = " << c.cutoff() << "\n";
  std::cout << "circuit nodes = " << c.circuit_nodes()
            << "  (efficient: O(|G|·t) with duplicity 1)\n";
  std::cout << "C(G, K_n) witness = " << c.guest_congestion()
            << ", β(G, K_n) = " << Table::num(c.guest_beta(), 2) << "\n\n";

  // One concrete cone: from the S-node (vertex 0, level t).
  std::cout << "example cone from S-node (v0, level " << c.t() << "):\n";
  int shown = 0;
  for (Vertex v = 1; v < c.n() && shown < 3; ++v) {
    const auto d = c.distance(0, v);
    if (d == 0 || d > c.cutoff()) continue;
    const auto path = c.witness_path(0, v);
    std::cout << "  cone path to v" << v << " (dist " << d << "):";
    for (Vertex x : path) std::cout << " " << x;
    std::cout << "  -> Q-set {(v" << v << ", j) : j <= " << c.t() - d
              << "}, bundle size " << c.t() - d + 1 << "\n";
    ++shown;
  }

  std::cout << "\nLemma 9 audit:\n";
  const Lemma9Audit a = lemma9_audit(c);
  Table t({"quantity", "value", "paper's claim"});
  t.add_row({"|V(gamma)| / nt", Table::num(a.vertices_per_nt, 3),
             "Theta(1)  (gamma in K_{Theta(nt),1})"});
  t.add_row({"E(gamma) / (nt)^2", Table::num(a.edges_per_n2t2, 4),
             "Theta(1)"});
  t.add_row({"max pair multiplicity",
             Table::integer((long long)a.max_pair_multiplicity), "1"});
  t.add_row({"cone paths per S-level / n^2",
             Table::num(a.cone_paths_per_level_n2, 3), "Omega(1)"});
  t.add_row({"congestion / max(nt^2, t*C(G,K_n))",
             Table::num(a.congestion_ratio, 3), "O(1)"});
  t.add_row({"beta(Phi,gamma) / (t*beta(G))",
             Table::num(a.preservation_ratio, 3), "Omega(1)"});
  t.print(std::cout);

  const auto parts = static_cast<std::uint32_t>(cli.get_int("parts", 16));
  std::cout << "\nLemma 11 collapse onto |H| = " << parts
            << " super-vertices:\n";
  const CollapseAudit ca =
      collapse_audit(c, parts, PartitionStrategy::kBlock, rng);
  Table t2({"quantity", "value", "paper's claim"});
  t2.add_row({"load k", Table::integer(ca.load_k), "O(N/|H|)"});
  t2.add_row({"surviving gamma-edges",
              Table::num(ca.surviving_fraction, 3), "1 - O(nk)/E = 1 - o(1)"});
  t2.add_row({"pair multiplicity / k^2", Table::num(ca.pair_mult_over_k2, 3),
              "O(1)  (xi in K_{|H|,Theta(k^2)})"});
  t2.add_row({"beta(M,xi) / beta(Phi,gamma)",
              Table::num(ca.preservation_ratio, 3), "Omega(1)"});
  t2.print(std::cout);
  return 0;
}
