// Butterfly and wrapped butterfly generators.
// Vertex (level l, row r) has index l * 2^d + r.

#include <cassert>
#include <string>

#include "netemu/topology/generators.hpp"
#include "netemu/util/math.hpp"

namespace netemu {

Machine make_butterfly(unsigned d) {
  assert(d >= 1);
  const std::uint64_t rows = ipow(2, d);
  const std::uint64_t n = (d + 1) * rows;
  MultigraphBuilder b(n);
  for (unsigned l = 0; l < d; ++l) {
    for (std::uint64_t r = 0; r < rows; ++r) {
      const auto u = static_cast<Vertex>(l * rows + r);
      b.add_edge(u, static_cast<Vertex>((l + 1) * rows + r));
      b.add_edge(u, static_cast<Vertex>((l + 1) * rows + (r ^ (1ULL << l))));
    }
  }
  Machine m;
  m.graph = std::move(b).build();
  m.family = Family::kButterfly;
  m.name = "Butterfly(d=" + std::to_string(d) + ")";
  m.shape = {d};
  return m;
}

Machine make_wrapped_butterfly(unsigned d) {
  assert(d >= 2);
  const std::uint64_t rows = ipow(2, d);
  const std::uint64_t n = d * rows;
  MultigraphBuilder b(n);
  for (unsigned l = 0; l < d; ++l) {
    const unsigned nl = (l + 1) % d;
    for (std::uint64_t r = 0; r < rows; ++r) {
      const auto u = static_cast<Vertex>(l * rows + r);
      const auto straight = static_cast<Vertex>(nl * rows + r);
      const auto cross =
          static_cast<Vertex>(nl * rows + (r ^ (1ULL << l)));
      b.add_edge(u, straight);
      b.add_edge(u, cross);
    }
  }
  Machine m;
  // d=2 lays each wrap edge from both endpoints; collapse to simple form.
  m.graph = std::move(b).build().simple();
  m.family = Family::kWrappedButterfly;
  m.name = "WrappedButterfly(d=" + std::to_string(d) + ")";
  m.shape = {d};
  return m;
}

}  // namespace netemu
