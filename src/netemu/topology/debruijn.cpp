// de Bruijn graph on 2^d vertices: u adjacent to its left shifts 2u mod n
// and 2u+1 mod n.  Fixed points (0 and n-1) lose their self-loop, and the
// occasional coincidence of shift and unshift edges is collapsed, so the
// graph is simple with maximum degree 4.

#include <cassert>
#include <string>

#include "netemu/topology/generators.hpp"
#include "netemu/util/math.hpp"

namespace netemu {

Machine make_debruijn(unsigned d) {
  assert(d >= 2);
  const std::uint64_t n = ipow(2, d);
  MultigraphBuilder b(n);
  for (std::uint64_t u = 0; u < n; ++u) {
    for (std::uint64_t bit = 0; bit <= 1; ++bit) {
      const std::uint64_t v = (2 * u + bit) % n;
      if (u != v) b.add_edge(static_cast<Vertex>(u), static_cast<Vertex>(v));
    }
  }
  Machine m;
  m.graph = std::move(b).build().simple();
  m.family = Family::kDeBruijn;
  m.name = "DeBruijn(d=" + std::to_string(d) + ")";
  m.shape = {d};
  return m;
}

}  // namespace netemu
