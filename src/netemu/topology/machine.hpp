#pragma once
// Machine: a fixed-connection network machine — a network multigraph plus
// the metadata the rest of the system needs (which family it is, its shape
// parameters for specialized routers, which vertices are processors, and
// per-node forwarding capacity for "weak" models).
//
// The paper's machine families (Table 4 and Theorems 2-5) are all here.

#include <cstdint>
#include <string>
#include <vector>

#include "netemu/graph/multigraph.hpp"

namespace netemu {

enum class Family {
  kLinearArray,
  kRing,
  kGlobalBus,
  kTree,          // complete binary tree
  kFatTree,       // binary tree with capacity-doubling wires (extension)
  kWeakPPN,       // weak parallel prefix network (tree of switches, leaf PEs)
  kXTree,         // complete binary tree + same-level sibling edges
  kMesh,          // k-dimensional mesh
  kTorus,         // k-dimensional torus
  kXGrid,         // mesh + per-2-face diagonals
  kMeshOfTrees,   // k-dimensional mesh of trees
  kMultigrid,     // k-dimensional multigrid (corner-connected levels)
  kPyramid,       // k-dimensional pyramid (2^k-ary tree of meshes)
  kButterfly,
  kWrappedButterfly,
  kDeBruijn,
  kShuffleExchange,
  kCCC,           // cube-connected cycles
  kHypercube,     // weak hypercube (one wire per node per step)
  kMultibutterfly,
  kExpander,      // random regular graph
};

/// Printable family name ("Mesh", "DeBruijn", ...).
const char* family_name(Family f);

/// All families, in Table-4 order, for sweeps.
const std::vector<Family>& all_families();

/// True for the families whose natural parameter is a dimension k
/// (Mesh, Torus, XGrid, MeshOfTrees, Multigrid, Pyramid).
bool family_is_dimensional(Family f);

/// Sentinel for "no per-node forwarding limit".
inline constexpr std::uint32_t kUnlimitedForward =
    static_cast<std::uint32_t>(-1);

struct Machine {
  Multigraph graph;
  Family family = Family::kLinearArray;
  unsigned dims = 1;            ///< k for dimensional families, else 1
  std::string name;             ///< e.g. "Mesh2(32x32)"

  /// Family-specific shape: mesh/torus/xgrid = side lengths; butterfly/CCC/
  /// hypercube/deBruijn/SE = {d}; mesh-of-trees/multigrid/pyramid = {side}.
  std::vector<std::uint32_t> shape;

  /// Vertices that act as processors (traffic endpoints).  Empty = all.
  /// Non-processor vertices (bus hub, PPN switches, tree-internal nodes of
  /// the mesh of trees) still forward messages.
  std::vector<Vertex> processors;

  /// Per-node forwarding capacity (messages per tick); empty = unlimited.
  /// Models "weak" machines: a weak node drives one wire per step.
  std::vector<std::uint32_t> forward_cap;

  std::size_t num_vertices() const { return graph.num_vertices(); }
  std::size_t num_processors() const {
    return processors.empty() ? graph.num_vertices() : processors.size();
  }
  Vertex processor(std::size_t i) const {
    return processors.empty() ? static_cast<Vertex>(i) : processors[i];
  }
};

}  // namespace netemu
