// Tree, WeakPPN, XTree generators.  All three use heap indexing:
// vertex i has children 2i+1 and 2i+2; depth-d vertices occupy
// indices [2^d - 1, 2^(d+1) - 2].

#include <cassert>
#include <string>

#include "netemu/topology/generators.hpp"
#include "netemu/util/math.hpp"

namespace netemu {

namespace {

void add_heap_tree_edges(MultigraphBuilder& b, std::size_t n) {
  for (Vertex v = 1; v < n; ++v) b.add_edge(v, (v - 1) / 2);
}

}  // namespace

Machine make_tree(unsigned height) {
  const std::size_t n = ipow(2, height + 1) - 1;
  MultigraphBuilder b(n);
  add_heap_tree_edges(b, n);
  Machine m;
  m.graph = std::move(b).build();
  m.family = Family::kTree;
  m.name = "Tree(h=" + std::to_string(height) + ")";
  m.shape = {height};
  return m;
}

Machine make_fat_tree(unsigned height) {
  const std::size_t n = ipow(2, height + 1) - 1;
  MultigraphBuilder b(n);
  for (Vertex v = 1; v < n; ++v) {
    const unsigned depth = ilog2(v + 1u);
    b.add_edge(v, (v - 1) / 2,
               static_cast<std::uint32_t>(ipow(2, height - depth + 1)));
  }
  Machine m;
  m.graph = std::move(b).build();
  m.family = Family::kFatTree;
  m.name = "FatTree(h=" + std::to_string(height) + ")";
  m.shape = {height};
  return m;
}

Machine make_weak_ppn(unsigned height) {
  const std::size_t n = ipow(2, height + 1) - 1;
  const std::size_t leaves = ipow(2, height);
  MultigraphBuilder b(n);
  add_heap_tree_edges(b, n);
  Machine m;
  m.graph = std::move(b).build();
  m.family = Family::kWeakPPN;
  m.name = "WeakPPN(h=" + std::to_string(height) + ")";
  m.shape = {height};
  // Only the leaves compute; internal vertices are prefix switches.
  m.processors.reserve(leaves);
  for (std::size_t i = n - leaves; i < n; ++i) {
    m.processors.push_back(static_cast<Vertex>(i));
  }
  // Weak: every switch drives one wire per step.
  m.forward_cap.assign(n, 1);
  return m;
}

Machine make_x_tree(unsigned height) {
  const std::size_t n = ipow(2, height + 1) - 1;
  MultigraphBuilder b(n);
  add_heap_tree_edges(b, n);
  // Horizontal edges between consecutive vertices at each depth.
  for (unsigned d = 1; d <= height; ++d) {
    const Vertex first = static_cast<Vertex>(ipow(2, d) - 1);
    const Vertex last = static_cast<Vertex>(ipow(2, d + 1) - 2);
    for (Vertex v = first; v < last; ++v) b.add_edge(v, v + 1);
  }
  Machine m;
  m.graph = std::move(b).build();
  m.family = Family::kXTree;
  m.name = "XTree(h=" + std::to_string(height) + ")";
  m.shape = {height};
  return m;
}

}  // namespace netemu
