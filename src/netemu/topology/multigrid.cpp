// k-dimensional multigrid: a hierarchy of k-dim meshes of halving side,
// each coarse vertex joined to the fine vertex at double its coordinates.

#include <cassert>
#include <string>

#include "netemu/topology/detail/grid.hpp"
#include "netemu/topology/generators.hpp"
#include "netemu/util/math.hpp"

namespace netemu {

namespace {

/// Add the mesh edges of one level whose vertices start at `offset`.
void add_level_mesh(MultigraphBuilder& b, std::uint64_t offset,
                    const std::vector<std::uint32_t>& sides) {
  detail::grid_for_each(sides, [&](const std::vector<std::uint32_t>& coord) {
    const auto u =
        static_cast<Vertex>(offset + detail::grid_index(sides, coord));
    auto next = coord;
    for (std::size_t d = 0; d < sides.size(); ++d) {
      if (coord[d] + 1 < sides[d]) {
        ++next[d];
        b.add_edge(u, static_cast<Vertex>(
                          offset + detail::grid_index(sides, next)));
        --next[d];
      }
    }
  });
}

std::uint64_t level_total(unsigned k, std::uint32_t side) {
  std::uint64_t total = 0;
  for (std::uint32_t s = side; s >= 1; s /= 2) {
    total += ipow(s, k);
    if (s == 1) break;
  }
  return total;
}

}  // namespace

Machine make_multigrid(unsigned k, std::uint32_t side) {
  assert(k >= 1 && side >= 2 && is_pow2(side));
  MultigraphBuilder b(level_total(k, side));

  std::uint64_t offset = 0;
  for (std::uint32_t s = side; s >= 1; s /= 2) {
    const std::vector<std::uint32_t> fine(k, s);
    add_level_mesh(b, offset, fine);
    if (s > 1) {
      // Coarse vertex at c' links to the fine vertex at 2c'.
      const std::uint64_t fine_count = detail::grid_size(fine);
      const std::vector<std::uint32_t> coarse(k, s / 2);
      detail::grid_for_each(
          coarse, [&](const std::vector<std::uint32_t>& cc) {
            std::vector<std::uint32_t> fc(cc);
            for (auto& x : fc) x *= 2;
            b.add_edge(
                static_cast<Vertex>(offset + detail::grid_index(fine, fc)),
                static_cast<Vertex>(offset + fine_count +
                                    detail::grid_index(coarse, cc)));
          });
      offset += fine_count;
    } else {
      break;
    }
  }

  Machine m;
  m.graph = std::move(b).build();
  m.family = Family::kMultigrid;
  m.dims = k;
  m.name =
      "Multigrid" + std::to_string(k) + "(s=" + std::to_string(side) + ")";
  m.shape = {side};
  return m;
}

}  // namespace netemu
