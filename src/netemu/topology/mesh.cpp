// Mesh, Torus, XGrid generators.

#include <cassert>
#include <string>

#include "netemu/topology/detail/grid.hpp"
#include "netemu/topology/generators.hpp"

namespace netemu {

namespace {

std::string shape_string(const std::vector<std::uint32_t>& sides) {
  std::string s;
  for (std::size_t d = 0; d < sides.size(); ++d) {
    if (d) s += "x";
    s += std::to_string(sides[d]);
  }
  return s;
}

Machine finish_grid(MultigraphBuilder&& b, Family family,
                    const std::vector<std::uint32_t>& sides,
                    const char* label) {
  Machine m;
  m.graph = std::move(b).build();
  m.family = family;
  m.dims = static_cast<unsigned>(sides.size());
  m.name = std::string(label) + std::to_string(sides.size()) + "(" +
           shape_string(sides) + ")";
  m.shape = sides;
  return m;
}

}  // namespace

Machine make_mesh(const std::vector<std::uint32_t>& sides) {
  assert(!sides.empty());
  const std::uint64_t n = detail::grid_size(sides);
  MultigraphBuilder b(n);
  detail::grid_for_each(sides, [&](const std::vector<std::uint32_t>& coord) {
    const auto u = static_cast<Vertex>(detail::grid_index(sides, coord));
    auto next = coord;
    for (std::size_t d = 0; d < sides.size(); ++d) {
      if (coord[d] + 1 < sides[d]) {
        ++next[d];
        b.add_edge(u, static_cast<Vertex>(detail::grid_index(sides, next)));
        --next[d];
      }
    }
  });
  return finish_grid(std::move(b), Family::kMesh, sides, "Mesh");
}

Machine make_torus(const std::vector<std::uint32_t>& sides) {
  assert(!sides.empty());
  const std::uint64_t n = detail::grid_size(sides);
  MultigraphBuilder b(n);
  detail::grid_for_each(sides, [&](const std::vector<std::uint32_t>& coord) {
    const auto u = static_cast<Vertex>(detail::grid_index(sides, coord));
    auto next = coord;
    for (std::size_t d = 0; d < sides.size(); ++d) {
      if (coord[d] + 1 < sides[d]) {
        ++next[d];
        b.add_edge(u, static_cast<Vertex>(detail::grid_index(sides, next)));
        next[d] = coord[d];
      } else if (sides[d] > 2) {
        // Wraparound; for side <= 2 it would duplicate the mesh edge.
        next[d] = 0;
        b.add_edge(u, static_cast<Vertex>(detail::grid_index(sides, next)));
        next[d] = coord[d];
      }
    }
  });
  return finish_grid(std::move(b), Family::kTorus, sides, "Torus");
}

Machine make_x_grid(const std::vector<std::uint32_t>& sides) {
  assert(!sides.empty());
  const std::uint64_t n = detail::grid_size(sides);
  MultigraphBuilder b(n);
  detail::grid_for_each(sides, [&](const std::vector<std::uint32_t>& coord) {
    const auto u = static_cast<Vertex>(detail::grid_index(sides, coord));
    auto next = coord;
    for (std::size_t a = 0; a < sides.size(); ++a) {
      if (coord[a] + 1 >= sides[a]) continue;
      ++next[a];
      // Axis edge.
      b.add_edge(u, static_cast<Vertex>(detail::grid_index(sides, next)));
      // Diagonals of the 2-face spanned by axes (a, c); visiting only c > a
      // lays each face's two diagonals exactly once.
      for (std::size_t c = a + 1; c < sides.size(); ++c) {
        if (coord[c] + 1 < sides[c]) {
          ++next[c];
          b.add_edge(u, static_cast<Vertex>(detail::grid_index(sides, next)));
          --next[c];
        }
        if (coord[c] > 0) {
          --next[c];
          b.add_edge(u, static_cast<Vertex>(detail::grid_index(sides, next)));
          ++next[c];
        }
      }
      --next[a];
    }
  });
  return finish_grid(std::move(b), Family::kXGrid, sides, "XGrid");
}

}  // namespace netemu
