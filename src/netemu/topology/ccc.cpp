// Cube-connected cycles: vertex (word w, position p) with index w*d + p.
// Cycle edges run around each word's d positions; the cube edge at
// position p flips bit p of the word.

#include <cassert>
#include <string>

#include "netemu/topology/generators.hpp"
#include "netemu/util/math.hpp"

namespace netemu {

Machine make_ccc(unsigned d) {
  assert(d >= 2);
  const std::uint64_t words = ipow(2, d);
  const std::uint64_t n = words * d;
  MultigraphBuilder b(n);
  for (std::uint64_t w = 0; w < words; ++w) {
    for (unsigned p = 0; p < d; ++p) {
      const auto u = static_cast<Vertex>(w * d + p);
      // Cycle edge to position p+1 (for d == 2 the "cycle" is one edge).
      const unsigned np = (p + 1) % d;
      if (np != p) {
        b.add_edge(u, static_cast<Vertex>(w * d + np));
      }
      // Cube edge.
      const std::uint64_t w2 = w ^ (1ULL << p);
      if (w2 > w) {
        b.add_edge(u, static_cast<Vertex>(w2 * d + p));
      }
    }
  }
  Machine m;
  // d == 2 lays each cycle edge twice (p=0->1 and p=1->0); simplify.
  m.graph = std::move(b).build().simple();
  m.family = Family::kCCC;
  m.name = "CCC(d=" + std::to_string(d) + ")";
  m.shape = {d};
  return m;
}

}  // namespace netemu
