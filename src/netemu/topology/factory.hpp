#pragma once
// Size-targeted machine construction: every family has quantized legal
// sizes (powers of two, heap-tree sizes, d·2^d, ...), so experiments ask for
// "a Butterfly of about 4096 vertices" and get the nearest legal instance.

#include <optional>
#include <string>

#include "netemu/topology/generators.hpp"

namespace netemu {

/// Build the machine of `family` (dimension k where applicable) whose vertex
/// count is as close as possible to target_n.  rng is used only by the
/// randomized families (Multibutterfly, Expander).
Machine make_machine(Family family, std::size_t target_n, unsigned k,
                     Prng& rng);

/// Parse a family name as printed by family_name() (case-sensitive).
std::optional<Family> family_from_name(const std::string& name);

}  // namespace netemu
