// Shuffle-exchange graph on 2^d vertices: shuffle edges u - rotl(u) (cyclic
// left rotation of the d-bit word) and exchange edges u - (u xor 1).

#include <cassert>
#include <string>

#include "netemu/topology/generators.hpp"
#include "netemu/util/math.hpp"

namespace netemu {

Machine make_shuffle_exchange(unsigned d) {
  assert(d >= 2);
  const std::uint64_t n = ipow(2, d);
  MultigraphBuilder b(n);
  for (std::uint64_t u = 0; u < n; ++u) {
    const std::uint64_t s = rotl_bits(u, d);
    if (s != u) b.add_edge(static_cast<Vertex>(u), static_cast<Vertex>(s));
    b.add_edge(static_cast<Vertex>(u), static_cast<Vertex>(u ^ 1));
  }
  Machine m;
  m.graph = std::move(b).build().simple();
  m.family = Family::kShuffleExchange;
  m.name = "ShuffleExchange(d=" + std::to_string(d) + ")";
  m.shape = {d};
  return m;
}

}  // namespace netemu
