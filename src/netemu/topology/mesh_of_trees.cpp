// k-dimensional mesh of trees.
//
// Base cells are the s^k lattice points (row-major, indices 0..s^k-1) and
// carry no edges of their own.  Along every axis-aligned line, a complete
// binary tree with s-1 fresh internal vertices is erected over the line's s
// cells.  Only base cells are processors; internal vertices are switches.

#include <cassert>
#include <functional>
#include <string>

#include "netemu/topology/detail/grid.hpp"
#include "netemu/topology/generators.hpp"
#include "netemu/util/math.hpp"

namespace netemu {

Machine make_mesh_of_trees(unsigned k, std::uint32_t side) {
  assert(k >= 1 && side >= 2 && is_pow2(side));
  const std::vector<std::uint32_t> sides(k, side);
  const std::uint64_t base = detail::grid_size(sides);
  const std::uint64_t lines_per_dim = base / side;
  const std::uint64_t internal_per_line = side - 1;
  const std::uint64_t total =
      base + static_cast<std::uint64_t>(k) * lines_per_dim * internal_per_line;

  MultigraphBuilder b(total);
  Vertex next_internal = static_cast<Vertex>(base);

  // Recursively build a complete binary tree over leaves[lo, hi).
  std::function<Vertex(const std::vector<Vertex>&, std::size_t, std::size_t)>
      build_tree = [&](const std::vector<Vertex>& leaves, std::size_t lo,
                       std::size_t hi) -> Vertex {
    if (hi - lo == 1) return leaves[lo];
    const Vertex root = next_internal++;
    const std::size_t mid = lo + (hi - lo) / 2;
    b.add_edge(root, build_tree(leaves, lo, mid));
    b.add_edge(root, build_tree(leaves, mid, hi));
    return root;
  };

  // Enumerate lines along dimension d: iterate the (k-1)-dim complement
  // grid and sweep coordinate d.
  for (unsigned d = 0; d < k; ++d) {
    std::vector<std::uint32_t> complement(sides);
    complement[d] = 1;
    detail::grid_for_each(
        complement, [&](const std::vector<std::uint32_t>& fixed) {
          std::vector<Vertex> leaves(side);
          auto coord = fixed;
          for (std::uint32_t i = 0; i < side; ++i) {
            coord[d] = i;
            leaves[i] =
                static_cast<Vertex>(detail::grid_index(sides, coord));
          }
          build_tree(leaves, 0, side);
        });
  }
  assert(next_internal == total);

  Machine m;
  m.graph = std::move(b).build();
  m.family = Family::kMeshOfTrees;
  m.dims = k;
  m.name = "MeshOfTrees" + std::to_string(k) + "(s=" + std::to_string(side) +
           ")";
  m.shape = {side};
  m.processors.reserve(base);
  for (std::uint64_t i = 0; i < base; ++i) {
    m.processors.push_back(static_cast<Vertex>(i));
  }
  return m;
}

}  // namespace netemu
