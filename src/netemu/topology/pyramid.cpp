// k-dimensional pyramid: meshes of halving side, every fine vertex joined
// to its coarse parent at floor(coord/2) — a 2^k-ary tree through the levels.

#include <cassert>
#include <string>

#include "netemu/topology/detail/grid.hpp"
#include "netemu/topology/generators.hpp"
#include "netemu/util/math.hpp"

namespace netemu {

Machine make_pyramid(unsigned k, std::uint32_t side) {
  assert(k >= 1 && side >= 2 && is_pow2(side));
  std::uint64_t total = 0;
  for (std::uint32_t s = side; s >= 1; s /= 2) {
    total += ipow(s, k);
    if (s == 1) break;
  }
  MultigraphBuilder b(total);

  std::uint64_t offset = 0;
  for (std::uint32_t s = side; s >= 1; s /= 2) {
    const std::vector<std::uint32_t> fine(k, s);
    const std::uint64_t fine_count = detail::grid_size(fine);
    // Level mesh.
    detail::grid_for_each(fine, [&](const std::vector<std::uint32_t>& coord) {
      const auto u =
          static_cast<Vertex>(offset + detail::grid_index(fine, coord));
      auto next = coord;
      for (std::size_t d = 0; d < k; ++d) {
        if (coord[d] + 1 < s) {
          ++next[d];
          b.add_edge(u, static_cast<Vertex>(offset +
                                            detail::grid_index(fine, next)));
          --next[d];
        }
      }
      // Parent edge into the next (coarser) level.
      if (s > 1) {
        std::vector<std::uint32_t> parent(coord);
        for (auto& x : parent) x /= 2;
        const std::vector<std::uint32_t> coarse(k, s / 2);
        b.add_edge(u, static_cast<Vertex>(offset + fine_count +
                                          detail::grid_index(coarse, parent)));
      }
    });
    if (s == 1) break;
    offset += fine_count;
  }

  Machine m;
  m.graph = std::move(b).build();
  m.family = Family::kPyramid;
  m.dims = k;
  m.name = "Pyramid" + std::to_string(k) + "(s=" + std::to_string(side) + ")";
  m.shape = {side};
  return m;
}

}  // namespace netemu
