#pragma once
// Row-major coordinate helpers shared by the grid-like generators.
// Indexing convention: the LAST coordinate varies fastest.

#include <cstdint>
#include <vector>

namespace netemu::detail {

inline std::uint64_t grid_size(const std::vector<std::uint32_t>& sides) {
  std::uint64_t n = 1;
  for (std::uint32_t s : sides) n *= s;
  return n;
}

inline std::uint64_t grid_index(const std::vector<std::uint32_t>& sides,
                                const std::vector<std::uint32_t>& coord) {
  std::uint64_t idx = 0;
  for (std::size_t d = 0; d < sides.size(); ++d) {
    idx = idx * sides[d] + coord[d];
  }
  return idx;
}

inline std::vector<std::uint32_t> grid_coord(
    const std::vector<std::uint32_t>& sides, std::uint64_t idx) {
  std::vector<std::uint32_t> coord(sides.size());
  for (std::size_t d = sides.size(); d-- > 0;) {
    coord[d] = static_cast<std::uint32_t>(idx % sides[d]);
    idx /= sides[d];
  }
  return coord;
}

/// Call fn(coord) for every lattice point.
template <typename Fn>
void grid_for_each(const std::vector<std::uint32_t>& sides, Fn&& fn) {
  std::vector<std::uint32_t> coord(sides.size(), 0);
  const std::uint64_t n = grid_size(sides);
  for (std::uint64_t i = 0; i < n; ++i) {
    fn(coord);
    for (std::size_t d = sides.size(); d-- > 0;) {
      if (++coord[d] < sides[d]) break;
      coord[d] = 0;
    }
  }
}

}  // namespace netemu::detail
