// Random regular expander: the union of `degree` uniformly random perfect
// matchings on an even number of vertices.  A random regular graph is an
// expander with overwhelming probability; we retry until connected so the
// guarantee is unconditional for the instance handed out.

#include <cassert>
#include <numeric>
#include <string>

#include "netemu/graph/algorithms.hpp"
#include "netemu/topology/generators.hpp"

namespace netemu {

Machine make_expander(std::size_t n, unsigned degree, Prng& rng) {
  assert(n >= 4 && n % 2 == 0 && degree >= 3);
  Multigraph graph;
  for (int attempt = 0; attempt < 64; ++attempt) {
    MultigraphBuilder b(n);
    std::vector<Vertex> order(n);
    std::iota(order.begin(), order.end(), 0u);
    for (unsigned matching = 0; matching < degree; ++matching) {
      shuffle(order, rng);
      for (std::size_t i = 0; i + 1 < n; i += 2) {
        b.add_edge(order[i], order[i + 1]);
      }
    }
    graph = std::move(b).build().simple();
    if (is_connected(graph)) break;
  }
  assert(is_connected(graph) && "random regular graph failed to connect");

  Machine m;
  m.graph = std::move(graph);
  m.family = Family::kExpander;
  m.name = "Expander(" + std::to_string(n) + ",d=" + std::to_string(degree) +
           ")";
  m.shape = {static_cast<std::uint32_t>(n), degree};
  return m;
}

}  // namespace netemu
