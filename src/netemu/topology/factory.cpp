#include "netemu/topology/factory.hpp"

#include <cassert>
#include <cmath>
#include <cstdlib>

#include "netemu/util/math.hpp"

namespace netemu {

namespace {

/// Smallest height h with tree size 2^(h+1)-1 nearest to target.
unsigned nearest_tree_height(std::size_t target) {
  unsigned best = 1;
  double best_err = 1e300;
  for (unsigned h = 1; h <= 26; ++h) {
    const double size = static_cast<double>(ipow(2, h + 1) - 1);
    const double err = std::abs(std::log2(size / static_cast<double>(target)));
    if (err < best_err) {
      best_err = err;
      best = h;
    }
  }
  return best;
}

/// d minimizing |log2(count(d) / target)| over d in [lo, 26].
template <typename CountFn>
unsigned nearest_param(std::size_t target, unsigned lo, CountFn count) {
  unsigned best = lo;
  double best_err = 1e300;
  for (unsigned d = lo; d <= 26; ++d) {
    const double size = static_cast<double>(count(d));
    if (size <= 0) continue;
    const double err = std::abs(std::log2(size / static_cast<double>(target)));
    if (err < best_err) {
      best_err = err;
      best = d;
    }
    if (size > 4.0 * static_cast<double>(target)) break;
  }
  return best;
}

/// Nearest power-of-two side for a family whose total is ~factor * side^k.
std::uint32_t nearest_pow2_side(std::size_t target, unsigned k,
                                double factor) {
  const double ideal =
      std::pow(static_cast<double>(target) / factor, 1.0 / k);
  const double lg = std::max(1.0, std::round(std::log2(ideal)));
  return static_cast<std::uint32_t>(ipow(2, static_cast<unsigned>(lg)));
}

}  // namespace

Machine make_machine(Family family, std::size_t target_n, unsigned k,
                     Prng& rng) {
  assert(target_n >= 2);
  switch (family) {
    case Family::kLinearArray:
      return make_linear_array(target_n);
    case Family::kRing:
      return make_ring(std::max<std::size_t>(3, target_n));
    case Family::kGlobalBus:
      return make_global_bus(target_n);
    case Family::kTree:
      return make_tree(nearest_tree_height(target_n));
    case Family::kFatTree:
      return make_fat_tree(nearest_tree_height(target_n));
    case Family::kWeakPPN:
      return make_weak_ppn(nearest_tree_height(target_n));
    case Family::kXTree:
      return make_x_tree(nearest_tree_height(target_n));
    case Family::kMesh: {
      const auto side = static_cast<std::uint32_t>(std::max(
          2.0, std::round(std::pow(static_cast<double>(target_n), 1.0 / k))));
      return make_mesh(std::vector<std::uint32_t>(k, side));
    }
    case Family::kTorus: {
      const auto side = static_cast<std::uint32_t>(std::max(
          3.0, std::round(std::pow(static_cast<double>(target_n), 1.0 / k))));
      return make_torus(std::vector<std::uint32_t>(k, side));
    }
    case Family::kXGrid: {
      const auto side = static_cast<std::uint32_t>(std::max(
          2.0, std::round(std::pow(static_cast<double>(target_n), 1.0 / k))));
      return make_x_grid(std::vector<std::uint32_t>(k, side));
    }
    case Family::kMeshOfTrees:
      // total = side^k + k * side^(k-1) * (side-1) ≈ (k+1) side^k
      return make_mesh_of_trees(
          k, nearest_pow2_side(target_n, k, static_cast<double>(k) + 1.0));
    case Family::kMultigrid:
      // total ≈ side^k / (1 - 2^-k)
      return make_multigrid(
          k, nearest_pow2_side(target_n, k,
                               1.0 / (1.0 - std::pow(2.0, -double(k)))));
    case Family::kPyramid:
      return make_pyramid(
          k, nearest_pow2_side(target_n, k,
                               1.0 / (1.0 - std::pow(2.0, -double(k)))));
    case Family::kButterfly:
      return make_butterfly(nearest_param(
          target_n, 1, [](unsigned d) { return (d + 1) * ipow(2, d); }));
    case Family::kWrappedButterfly:
      return make_wrapped_butterfly(nearest_param(
          target_n, 2, [](unsigned d) { return d * ipow(2, d); }));
    case Family::kDeBruijn:
      return make_debruijn(
          nearest_param(target_n, 2, [](unsigned d) { return ipow(2, d); }));
    case Family::kShuffleExchange:
      return make_shuffle_exchange(
          nearest_param(target_n, 2, [](unsigned d) { return ipow(2, d); }));
    case Family::kCCC:
      return make_ccc(nearest_param(
          target_n, 2, [](unsigned d) { return d * ipow(2, d); }));
    case Family::kHypercube:
      return make_hypercube(
          nearest_param(target_n, 1, [](unsigned d) { return ipow(2, d); }));
    case Family::kMultibutterfly:
      return make_multibutterfly(
          nearest_param(target_n, 1,
                        [](unsigned d) { return (d + 1) * ipow(2, d); }),
          rng);
    case Family::kExpander:
      return make_expander((target_n + 1) & ~std::size_t{1},
                           /*degree=*/4, rng);
  }
  assert(false && "unknown family");
  std::abort();
}

std::optional<Family> family_from_name(const std::string& name) {
  for (Family f : all_families()) {
    if (name == family_name(f)) return f;
  }
  return std::nullopt;
}

}  // namespace netemu
