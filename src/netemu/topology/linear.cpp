// LinearArray, Ring, GlobalBus generators.

#include <cassert>
#include <string>

#include "netemu/topology/generators.hpp"

namespace netemu {

Machine make_linear_array(std::size_t n) {
  assert(n >= 1);
  MultigraphBuilder b(n);
  for (Vertex v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  Machine m;
  m.graph = std::move(b).build();
  m.family = Family::kLinearArray;
  m.name = "LinearArray(" + std::to_string(n) + ")";
  m.shape = {static_cast<std::uint32_t>(n)};
  return m;
}

Machine make_ring(std::size_t n) {
  assert(n >= 3);
  MultigraphBuilder b(n);
  for (Vertex v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  b.add_edge(static_cast<Vertex>(n - 1), 0);
  Machine m;
  m.graph = std::move(b).build();
  m.family = Family::kRing;
  m.name = "Ring(" + std::to_string(n) + ")";
  m.shape = {static_cast<std::uint32_t>(n)};
  return m;
}

Machine make_global_bus(std::size_t n) {
  assert(n >= 1);
  const auto hub = static_cast<Vertex>(n);
  MultigraphBuilder b(n + 1);
  for (Vertex v = 0; v < n; ++v) b.add_edge(v, hub);
  Machine m;
  m.graph = std::move(b).build();
  m.family = Family::kGlobalBus;
  m.name = "GlobalBus(" + std::to_string(n) + ")";
  m.shape = {static_cast<std::uint32_t>(n)};
  m.processors.resize(n);
  for (Vertex v = 0; v < n; ++v) m.processors[v] = v;
  // The hub serializes: one message traverses the bus per tick.
  m.forward_cap.assign(n + 1, kUnlimitedForward);
  m.forward_cap[hub] = 1;
  return m;
}

}  // namespace netemu
