#include "netemu/topology/machine.hpp"

namespace netemu {

const char* family_name(Family f) {
  switch (f) {
    case Family::kLinearArray: return "LinearArray";
    case Family::kRing: return "Ring";
    case Family::kGlobalBus: return "GlobalBus";
    case Family::kTree: return "Tree";
    case Family::kFatTree: return "FatTree";
    case Family::kWeakPPN: return "WeakPPN";
    case Family::kXTree: return "XTree";
    case Family::kMesh: return "Mesh";
    case Family::kTorus: return "Torus";
    case Family::kXGrid: return "XGrid";
    case Family::kMeshOfTrees: return "MeshOfTrees";
    case Family::kMultigrid: return "Multigrid";
    case Family::kPyramid: return "Pyramid";
    case Family::kButterfly: return "Butterfly";
    case Family::kWrappedButterfly: return "WrappedButterfly";
    case Family::kDeBruijn: return "DeBruijn";
    case Family::kShuffleExchange: return "ShuffleExchange";
    case Family::kCCC: return "CCC";
    case Family::kHypercube: return "Hypercube";
    case Family::kMultibutterfly: return "Multibutterfly";
    case Family::kExpander: return "Expander";
  }
  return "?";
}

const std::vector<Family>& all_families() {
  static const std::vector<Family> families = {
      Family::kLinearArray,    Family::kRing,
      Family::kGlobalBus,      Family::kTree,
      Family::kFatTree,
      Family::kWeakPPN,        Family::kXTree,
      Family::kMesh,           Family::kTorus,
      Family::kXGrid,          Family::kMeshOfTrees,
      Family::kMultigrid,      Family::kPyramid,
      Family::kButterfly,      Family::kWrappedButterfly,
      Family::kDeBruijn,       Family::kShuffleExchange,
      Family::kCCC,            Family::kHypercube,
      Family::kMultibutterfly, Family::kExpander,
  };
  return families;
}

bool family_is_dimensional(Family f) {
  switch (f) {
    case Family::kMesh:
    case Family::kTorus:
    case Family::kXGrid:
    case Family::kMeshOfTrees:
    case Family::kMultigrid:
    case Family::kPyramid:
      return true;
    default:
      return false;
  }
}

}  // namespace netemu
