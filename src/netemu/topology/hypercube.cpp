// Weak hypercube on 2^d vertices.  "Weak" (Kruskal–Snir sense) means each
// node drives only one of its d incident wires per step, which is what makes
// β(H) = Θ(n / lg n) rather than Θ(n); modeled via forward_cap = 1.

#include <cassert>
#include <string>

#include "netemu/topology/generators.hpp"
#include "netemu/util/math.hpp"

namespace netemu {

Machine make_hypercube(unsigned d) {
  assert(d >= 1);
  const std::uint64_t n = ipow(2, d);
  MultigraphBuilder b(n);
  for (std::uint64_t u = 0; u < n; ++u) {
    for (unsigned p = 0; p < d; ++p) {
      const std::uint64_t v = u ^ (1ULL << p);
      if (v > u) b.add_edge(static_cast<Vertex>(u), static_cast<Vertex>(v));
    }
  }
  Machine m;
  m.graph = std::move(b).build();
  m.family = Family::kHypercube;
  m.name = "Hypercube(d=" + std::to_string(d) + ")";
  m.shape = {d};
  m.forward_cap.assign(n, 1);
  return m;
}

}  // namespace netemu
