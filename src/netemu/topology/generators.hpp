#pragma once
// Topology generators — one function per machine family of the paper.
// Every generator documents its vertex indexing scheme because the routers
// and the tests depend on it.

#include <cstdint>
#include <vector>

#include "netemu/topology/machine.hpp"
#include "netemu/util/prng.hpp"

namespace netemu {

/// Path 0-1-...-(n-1).
Machine make_linear_array(std::size_t n);

/// Cycle 0-1-...-(n-1)-0.  n >= 3.
Machine make_ring(std::size_t n);

/// n processors (vertices 0..n-1) on a shared bus modeled as a hub vertex n
/// with forwarding capacity 1 (one message occupies the bus per tick).
Machine make_global_bus(std::size_t n);

/// Complete binary tree on n = 2^(h+1)-1 vertices, heap indexed:
/// children of i are 2i+1 and 2i+2.
Machine make_tree(unsigned height);

/// Fat tree (extension; Leiserson-style capacity scaling): the complete
/// binary tree with the edge into depth-d carrying 2^(h-d) parallel wires —
/// every level has the full leaf bandwidth, so beta = Θ(n).
Machine make_fat_tree(unsigned height);

/// Weak parallel prefix network: complete binary tree of switches over
/// n = 2^h leaf processors.  Vertices: leaves are the LAST n heap indices;
/// only leaves are processors.  All nodes forward at most one message/tick.
Machine make_weak_ppn(unsigned height);

/// X-tree: complete binary tree (heap indexed) plus edges joining
/// consecutive vertices at each depth.
Machine make_x_tree(unsigned height);

/// k-dimensional mesh with given side lengths, row-major indexing
/// (last side varies fastest).
Machine make_mesh(const std::vector<std::uint32_t>& sides);

/// Torus: mesh plus wraparound along each axis (skipped for sides <= 2,
/// where wrap would duplicate an existing edge).
Machine make_torus(const std::vector<std::uint32_t>& sides);

/// X-grid: mesh plus both diagonals of every axis-aligned 2-face.
Machine make_x_grid(const std::vector<std::uint32_t>& sides);

/// k-dimensional mesh of trees with side s (power of two): the s^k base
/// cells (indices 0..s^k-1, row-major) carry NO mesh edges; along every
/// axis-aligned line a complete binary tree of s-1 new internal vertices is
/// erected over the line's s cells.  Processors = base cells.
Machine make_mesh_of_trees(unsigned k, std::uint32_t side);

/// k-dimensional multigrid with base side s = 2^p: a k-dim mesh at every
/// level l (side s/2^l), and each coarse vertex joined to the fine vertex
/// at double its coordinates ("corner" connection).
Machine make_multigrid(unsigned k, std::uint32_t side);

/// k-dimensional pyramid with base side s = 2^p: meshes at every level and
/// every fine vertex joined to its coarse parent floor(coord/2)
/// (a 2^k-ary tree interleaved with the meshes).
Machine make_pyramid(unsigned k, std::uint32_t side);

/// Butterfly with d dimensions: (d+1)*2^d vertices; vertex (level l, row r)
/// has index l*2^d + r; edges (l,r)-(l+1,r) and (l,r)-(l+1, r xor 2^l).
Machine make_butterfly(unsigned d);

/// Wrapped butterfly: d*2^d vertices, level d identified with level 0.
Machine make_wrapped_butterfly(unsigned d);

/// de Bruijn graph on n = 2^d vertices: u adjacent to 2u mod n and
/// 2u+1 mod n (self-loops dropped, parallel edges collapsed).
Machine make_debruijn(unsigned d);

/// Shuffle-exchange on n = 2^d vertices: shuffle edge u - rotl(u), exchange
/// edge u - (u xor 1) (self-loops dropped).
Machine make_shuffle_exchange(unsigned d);

/// Cube-connected cycles: d*2^d vertices; vertex (word w, position p) has
/// index w*d + p; cycle edges within a word, cube edge flips bit p.  d >= 2.
Machine make_ccc(unsigned d);

/// Weak hypercube on 2^d vertices (forwarding capacity 1 per node).
Machine make_hypercube(unsigned d);

/// Multibutterfly: butterfly levels where, in addition to the deterministic
/// butterfly edges, every vertex gains `extra` random edges into the correct
/// half-block of the next level (randomized splitters).
Machine make_multibutterfly(unsigned d, Prng& rng, unsigned extra = 1);

/// Random regular expander: union of `degree` random perfect matchings on n
/// vertices (n even), retried until connected.
Machine make_expander(std::size_t n, unsigned degree, Prng& rng);

}  // namespace netemu
