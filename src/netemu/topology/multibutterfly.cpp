// Multibutterfly: a butterfly whose level-to-level wiring is augmented with
// randomized splitters.  At level l the rows split (on bit l) into an "up"
// and a "down" half toward level l+1; in a true multibutterfly each half is
// reached through an expander-like bipartite splitter.  We realize the
// splitter as the deterministic butterfly edge plus `extra` uniformly random
// edges into the SAME half, which preserves the butterfly's routing
// semantics (destination bits still steer) while giving each splitter the
// redundancy that defines the multibutterfly.

#include <cassert>
#include <string>

#include "netemu/topology/generators.hpp"
#include "netemu/util/math.hpp"

namespace netemu {

Machine make_multibutterfly(unsigned d, Prng& rng, unsigned extra) {
  assert(d >= 1);
  const std::uint64_t rows = ipow(2, d);
  const std::uint64_t n = (d + 1) * rows;
  MultigraphBuilder b(n);
  for (unsigned l = 0; l < d; ++l) {
    const std::uint64_t bit = 1ULL << l;
    for (std::uint64_t r = 0; r < rows; ++r) {
      const auto u = static_cast<Vertex>(l * rows + r);
      // Deterministic butterfly edges: straight (same half on bit l) and
      // cross (other half).
      b.add_edge(u, static_cast<Vertex>((l + 1) * rows + r));
      b.add_edge(u, static_cast<Vertex>((l + 1) * rows + (r ^ bit)));
      // Random splitter edges: `extra` into each half.  A target in the
      // half of row r2 has r2 == r on bit l (same half) or differs (other
      // half); all other bits free.
      for (unsigned e = 0; e < extra; ++e) {
        for (int half = 0; half <= 1; ++half) {
          std::uint64_t r2 = rng.below(rows);
          // Force bit l to select the half.
          r2 = half == 0 ? (r2 & ~bit) | (r & bit) : (r2 & ~bit) | (~r & bit);
          b.add_edge(u, static_cast<Vertex>((l + 1) * rows + r2));
        }
      }
    }
  }
  Machine m;
  m.graph = std::move(b).build().simple();
  m.family = Family::kMultibutterfly;
  m.name = "Multibutterfly(d=" + std::to_string(d) + ")";
  m.shape = {d};
  return m;
}

}  // namespace netemu
