#include "netemu/emulation/redundant.hpp"

#include <algorithm>
#include <cmath>

#include "netemu/routing/router.hpp"
#include "netemu/util/math.hpp"

namespace netemu {

RedundantResult emulate_redundant(const Machine& guest, const Machine& host,
                                  Prng& rng,
                                  const RedundantOptions& options) {
  RedundantResult result;
  const std::uint32_t r = std::max(1u, options.replication);
  result.replication = r;
  result.guest_steps = options.guest_steps;

  const std::size_t n = guest.graph.num_vertices();
  const std::size_t procs = host.num_processors();

  // Regions: contiguous blocks of host processors, one full guest copy per
  // region.  With r > procs the extra copies would collide; clamp.
  const std::uint32_t regions =
      std::min<std::uint32_t>(r, static_cast<std::uint32_t>(procs));
  const std::size_t region_size = procs / regions;

  // owner[c][v]: host processor of copy c of guest vertex v.
  std::vector<std::vector<Vertex>> owner(regions, std::vector<Vertex>(n));
  for (std::uint32_t c = 0; c < regions; ++c) {
    const std::size_t base = c * region_size;
    const std::uint64_t block = ceil_div(n, region_size);
    for (std::size_t v = 0; v < n; ++v) {
      owner[c][v] = host.processor(base + v / block);
    }
  }
  {
    std::vector<std::uint32_t> load(host.graph.num_vertices(), 0);
    for (const auto& copy : owner) {
      for (Vertex p : copy) ++load[p];
    }
    result.max_load = *std::max_element(load.begin(), load.end());
  }

  // Per step: every copy of every guest vertex pulls each neighbor's value
  // from the same region's copy (the nearest by construction).
  std::vector<std::pair<Vertex, Vertex>> endpoints;
  for (std::uint32_t c = 0; c < regions; ++c) {
    for (const Edge& e : guest.graph.edges()) {
      const Vertex hu = owner[c][e.u], hv = owner[c][e.v];
      if (hu == hv) continue;
      for (std::uint32_t m2 = 0; m2 < e.mult; ++m2) {
        endpoints.emplace_back(hu, hv);
        endpoints.emplace_back(hv, hu);
      }
    }
  }

  const auto router = make_default_router(host);
  PacketSimulator sim(host, options.arbitration);
  const auto compute_ticks = static_cast<std::uint64_t>(
      std::ceil(options.compute_per_guest_vertex * result.max_load));

  std::uint64_t comm_total = 0;
  for (std::uint32_t step = 0; step < options.guest_steps; ++step) {
    std::vector<std::vector<Vertex>> paths;
    paths.reserve(endpoints.size());
    for (const auto& [src, dst] : endpoints) {
      paths.push_back(router->route(src, dst, rng));
    }
    const BatchStats stats = sim.run_batch(paths, rng);
    comm_total += stats.makespan;
    result.host_time += std::max<std::uint64_t>(stats.makespan, compute_ticks);
  }
  result.slowdown = static_cast<double>(result.host_time) /
                    static_cast<double>(options.guest_steps);
  result.comm_fraction =
      result.host_time == 0
          ? 0.0
          : static_cast<double>(comm_total) /
                static_cast<double>(result.host_time);
  // Work: procs * host_time vs guest work n * steps.
  result.inefficiency = static_cast<double>(procs) *
                        static_cast<double>(result.host_time) /
                        (static_cast<double>(n) *
                         static_cast<double>(options.guest_steps));
  return result;
}

}  // namespace netemu
