#include "netemu/emulation/host_size.hpp"

namespace netemu {

std::string HostSpec::label() const {
  std::string s = family_name(family);
  if (family_is_dimensional(family)) s += std::to_string(k);
  return s;
}

HostSizeEntry max_host_size(Family guest, unsigned guest_k, double n,
                            const HostSpec& host) {
  const AsymFn bg = beta_theory(guest, guest_k);
  const AsymFn bh = beta_theory(host.family, host.k);
  const HostSizeSolution sol = solve_max_host(bg, bh, n);
  return HostSizeEntry{host, sol.form.to_string("|G|"), sol.numeric};
}

std::vector<HostSizeEntry> max_host_table(Family guest, unsigned guest_k,
                                          double n,
                                          const std::vector<HostSpec>& hosts) {
  std::vector<HostSizeEntry> out;
  out.reserve(hosts.size());
  for (const HostSpec& h : hosts) {
    out.push_back(max_host_size(guest, guest_k, n, h));
  }
  return out;
}

std::vector<HostSpec> standard_hosts(const std::vector<unsigned>& ks) {
  std::vector<HostSpec> hosts = {
      {Family::kLinearArray, 1},
      {Family::kTree, 1},
      {Family::kGlobalBus, 1},
      {Family::kWeakPPN, 1},
      {Family::kXTree, 1},
  };
  for (unsigned k : ks) {
    hosts.push_back({Family::kMesh, k});
    hosts.push_back({Family::kPyramid, k});
    hosts.push_back({Family::kMultigrid, k});
    hosts.push_back({Family::kMeshOfTrees, k});
    hosts.push_back({Family::kXGrid, k});
  }
  return hosts;
}

}  // namespace netemu
