#pragma once
// Maximum host size for efficient emulation — the quantity Tables 1-3
// tabulate.  Setting the communication-induced slowdown equal to the
// load-induced slowdown |G|/|H| and solving for |H| gives the largest host
// that could possibly emulate the guest efficiently.

#include <string>
#include <vector>

#include "netemu/bandwidth/theory.hpp"

namespace netemu {

struct HostSpec {
  Family family;
  unsigned k = 1;  ///< dimension where applicable
  std::string label() const;
};

struct HostSizeEntry {
  HostSpec host;
  std::string symbolic;  ///< closed Θ-form in |G|
  double numeric = 0.0;  ///< solved |H| for the concrete |G| supplied
};

/// Solve max host size for one (guest, host) pair at concrete guest size n.
HostSizeEntry max_host_size(Family guest, unsigned guest_k, double n,
                            const HostSpec& host);

/// Whole table row: one guest against a list of hosts.
std::vector<HostSizeEntry> max_host_table(Family guest, unsigned guest_k,
                                          double n,
                                          const std::vector<HostSpec>& hosts);

/// The standard host ladder used by the paper's tables: LinearArray, Tree,
/// GlobalBus, WeakPPN, XTree, then Mesh/Pyramid/Multigrid/MeshOfTrees/XGrid
/// at dimensions ks.
std::vector<HostSpec> standard_hosts(const std::vector<unsigned>& ks = {1, 2,
                                                                        3});

}  // namespace netemu
