#pragma once
// Slowdown lower bounds.
//
// Primary: the paper's Efficient Emulation Theorem —
//   S ≥ Ω(β(G)/β(H))    (communication-induced)
//   S ≥ Ω(|G|/|H|)      (load-induced)
// Baselines from Koch–Leighton–Maggs–Rao–Rosenberg [7], §1.2 of the paper:
//   * distance-based:   tree guest on k-dim mesh host:
//                       S ≥ Ω((|G| / lg^k |G|)^{1/(k+1)})
//   * congestion-based: k-dim mesh on j-dim mesh (j < k):
//                       S ≥ Ω(|H|^{(k-j)/(jk)});
//                       butterfly on k-dim mesh: S ≥ 2^{Ω(|H|^{1/k})}.

#include "netemu/bandwidth/theory.hpp"

namespace netemu {

struct SlowdownBounds {
  double load = 0.0;        ///< |G| / |H|
  double bandwidth = 0.0;   ///< β(G)(n) / β(H)(m)
  double combined = 0.0;    ///< max of the two
};

/// Theory-side bounds for guest family (gf, gk) of size n on host family
/// (hf, hk) of size m.
SlowdownBounds slowdown_bounds(Family gf, unsigned gk, double n, Family hf,
                               unsigned hk, double m);

/// Koch et al. distance-based bound: complete-tree guest of size n on a
/// k-dimensional mesh host.
double koch_distance_bound_tree_on_mesh(double n, unsigned k);

/// Koch et al. congestion-based bound: k-dim mesh guest on j-dim mesh host
/// (j < k) of size m.
double koch_congestion_bound_mesh_on_mesh(unsigned k, unsigned j, double m);

/// Koch et al. congestion-based bound for butterfly on a k-dim mesh of size
/// m, returned as lg2(S) because S itself is astronomically large.
double koch_congestion_bound_butterfly_on_mesh_lg(unsigned k, double m);

}  // namespace netemu
