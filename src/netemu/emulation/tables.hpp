#pragma once
// Generators for the paper's Tables 1, 2, and 3: maximum host sizes for
// efficient emulation, guest family by host family, rendered as Table
// objects ready for printing by the bench binaries.

#include "netemu/emulation/host_size.hpp"
#include "netemu/util/table.hpp"

namespace netemu {

/// Table 1: guests are j-dimensional Meshes, Tori, and X-Grids.
Table paper_table1(const std::vector<unsigned>& guest_dims = {1, 2, 3},
                   double n = 1 << 20);

/// Table 2: guests are j-dimensional Mesh-of-Trees, Multigrids, Pyramids.
Table paper_table2(const std::vector<unsigned>& guest_dims = {1, 2, 3},
                   double n = 1 << 20);

/// Table 3: guests are Butterfly, de Bruijn, Shuffle-Exchange, CCC,
/// Multibutterfly, Expander, Weak Hypercube.
Table paper_table3(double n = 1 << 20);

/// Table 4: the β / Λ registry itself.
Table paper_table4(const std::vector<unsigned>& dims = {2});

}  // namespace netemu
