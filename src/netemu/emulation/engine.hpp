#pragma once
// The emulation engine: actually run guest G on host H and measure the
// achieved slowdown.
//
// The engine implements the straightforward (non-redundant) emulation:
// guest vertices are partitioned over the host's processors with balanced
// load; each guest step makes every guest edge carry one message each way,
// which the host must deliver between the owning processors (intra-processor
// messages are free); the host's time for the step is the routing makespan
// of that batch plus the compute time (= load).  This yields an UPPER bound
// curve on achievable slowdown; the Efficient Emulation Theorem's
// β(G)/β(H) is the LOWER bound.  Figure 1 is the two curves together.

#include "netemu/embedding/partition.hpp"
#include "netemu/routing/packet_sim.hpp"
#include "netemu/topology/machine.hpp"

namespace netemu {

struct EmulationOptions {
  std::uint32_t guest_steps = 8;
  PartitionStrategy partition = PartitionStrategy::kMatched;
  Arbitration arbitration = Arbitration::kFarthestFirst;
  /// Host ticks of compute per owned guest vertex per guest step.
  double compute_per_guest_vertex = 1.0;
};

struct EmulationResult {
  std::uint32_t guest_steps = 0;
  std::uint64_t host_time = 0;
  double slowdown = 0.0;            ///< host_time / guest_steps
  double comm_fraction = 0.0;       ///< routing share of host time
  std::uint32_t max_load = 0;       ///< guest vertices per host processor
  std::uint64_t messages_per_step = 0;
};

EmulationResult emulate(const Machine& guest, const Machine& host, Prng& rng,
                        const EmulationOptions& options = {});

}  // namespace netemu
