#include "netemu/emulation/engine.hpp"

#include <algorithm>
#include <cmath>

#include "netemu/routing/router.hpp"

namespace netemu {

EmulationResult emulate(const Machine& guest, const Machine& host, Prng& rng,
                        const EmulationOptions& options) {
  EmulationResult result;
  result.guest_steps = options.guest_steps;

  const std::size_t n = guest.graph.num_vertices();
  const auto parts = static_cast<std::uint32_t>(
      std::min<std::size_t>(host.num_processors(), n));

  // Place guest vertices on host processors.
  std::vector<std::uint32_t> slot;
  std::vector<std::uint32_t> slot_to_proc(parts);
  if (options.partition == PartitionStrategy::kMatched) {
    MatchedPartition mp = matched_partition(guest.graph, host, parts, rng);
    slot = std::move(mp.guest_slot);
    slot_to_proc = std::move(mp.slot_to_proc);
  } else {
    slot = partition_guest(guest.graph, parts, options.partition, rng);
    for (std::uint32_t s = 0; s < parts; ++s) slot_to_proc[s] = s;
  }
  result.max_load = max_load(slot, parts);

  std::vector<Vertex> owner(n);
  for (std::size_t v = 0; v < n; ++v) {
    owner[v] = host.processor(slot_to_proc[slot[v]]);
  }

  // One guest step = one message per direction of every guest edge whose
  // endpoints live on different host processors.
  std::vector<std::pair<Vertex, Vertex>> endpoints;
  for (const Edge& e : guest.graph.edges()) {
    const Vertex hu = owner[e.u], hv = owner[e.v];
    if (hu == hv) continue;
    for (std::uint32_t c = 0; c < e.mult; ++c) {
      endpoints.emplace_back(hu, hv);
      endpoints.emplace_back(hv, hu);
    }
  }
  result.messages_per_step = endpoints.size();

  const auto router = make_default_router(host);
  PacketSimulator sim(host, options.arbitration);
  const auto compute_ticks = static_cast<std::uint64_t>(
      std::ceil(options.compute_per_guest_vertex * result.max_load));

  std::uint64_t comm_total = 0;
  for (std::uint32_t step = 0; step < options.guest_steps; ++step) {
    std::vector<std::vector<Vertex>> paths;
    paths.reserve(endpoints.size());
    for (const auto& [src, dst] : endpoints) {
      paths.push_back(router->route(src, dst, rng));
    }
    const BatchStats stats = sim.run_batch(paths, rng);
    comm_total += stats.makespan;
    result.host_time += std::max<std::uint64_t>(stats.makespan, compute_ticks);
  }
  result.slowdown = static_cast<double>(result.host_time) /
                    static_cast<double>(options.guest_steps);
  result.comm_fraction =
      result.host_time == 0
          ? 0.0
          : static_cast<double>(comm_total) /
                static_cast<double>(result.host_time);
  return result;
}

}  // namespace netemu
