#include "netemu/emulation/tables.hpp"

namespace netemu {

namespace {

std::string guest_label(Family f, unsigned k) {
  std::string s = family_name(f);
  if (family_is_dimensional(f)) s += std::to_string(k);
  return s;
}

Table host_size_table(const std::vector<std::pair<Family, unsigned>>& guests,
                      double n) {
  const auto hosts = standard_hosts();
  std::vector<std::string> header{"Host \\ Guest"};
  for (const auto& [gf, gk] : guests) header.push_back(guest_label(gf, gk));
  Table table(std::move(header));
  // Theorems 2-5 require the guest computation to run at least
  // T_G >= (1 + Omega(1)) * Lambda(G) steps; surface that hypothesis as the
  // first row, as the paper's table captions do.
  {
    std::vector<std::string> row{"min T_G (Lambda)"};
    for (const auto& [gf, gk] : guests) {
      row.push_back(lambda_theory(gf, gk).theta_string("|G|"));
    }
    table.add_row(std::move(row));
  }
  for (const HostSpec& host : hosts) {
    std::vector<std::string> row{host.label()};
    for (const auto& [gf, gk] : guests) {
      const HostSizeEntry e = max_host_size(gf, gk, n, host);
      row.push_back(e.symbolic + "  [n=" + Table::num(n, 0) +
                    " -> " + Table::num(e.numeric, 0) + "]");
    }
    table.add_row(std::move(row));
  }
  return table;
}

}  // namespace

Table paper_table1(const std::vector<unsigned>& guest_dims, double n) {
  std::vector<std::pair<Family, unsigned>> guests;
  for (unsigned j : guest_dims) {
    guests.emplace_back(Family::kMesh, j);
    guests.emplace_back(Family::kTorus, j);
    guests.emplace_back(Family::kXGrid, j);
  }
  return host_size_table(guests, n);
}

Table paper_table2(const std::vector<unsigned>& guest_dims, double n) {
  std::vector<std::pair<Family, unsigned>> guests;
  for (unsigned j : guest_dims) {
    guests.emplace_back(Family::kMeshOfTrees, j);
    guests.emplace_back(Family::kMultigrid, j);
    guests.emplace_back(Family::kPyramid, j);
  }
  return host_size_table(guests, n);
}

Table paper_table3(double n) {
  const std::vector<std::pair<Family, unsigned>> guests = {
      {Family::kButterfly, 1},    {Family::kDeBruijn, 1},
      {Family::kShuffleExchange, 1}, {Family::kCCC, 1},
      {Family::kMultibutterfly, 1},  {Family::kExpander, 1},
      {Family::kHypercube, 1},
  };
  return host_size_table(guests, n);
}

Table paper_table4(const std::vector<unsigned>& dims) {
  Table table({"Machine", "beta (Table 4)", "Lambda (Table 4)"});
  auto add = [&](Family f, unsigned k) {
    std::string name = family_name(f);
    if (family_is_dimensional(f)) name += std::to_string(k);
    table.add_row({name, beta_theory(f, k).theta_string(),
                   lambda_theory(f, k).theta_string()});
  };
  add(Family::kLinearArray, 1);
  add(Family::kGlobalBus, 1);
  add(Family::kTree, 1);
  add(Family::kWeakPPN, 1);
  add(Family::kXTree, 1);
  for (unsigned k : dims) {
    add(Family::kMesh, k);
    add(Family::kTorus, k);
    add(Family::kXGrid, k);
    add(Family::kMeshOfTrees, k);
    add(Family::kMultigrid, k);
    add(Family::kPyramid, k);
  }
  add(Family::kButterfly, 1);
  add(Family::kWrappedButterfly, 1);
  add(Family::kDeBruijn, 1);
  add(Family::kShuffleExchange, 1);
  add(Family::kCCC, 1);
  add(Family::kHypercube, 1);
  add(Family::kMultibutterfly, 1);
  add(Family::kExpander, 1);
  return table;
}

}  // namespace netemu
