#pragma once
// Verified emulation: beyond timing, check that the emulation actually
// COMPUTES the guest's computation.
//
// The guest runs a synchronous data-flow automaton (the "most general guest
// computation" the paper's model demands is exactly one value per vertex per
// step, each step a function of the vertex's own value and all neighbor
// values):
//     s_v(t+1) = 3·s_v(t) + Σ_{u ∈ N(v)} mult(u,v)·s_u(t)   (mod 2^61 - 1)
// The host emulates it with explicit mailboxes: a neighbor value is usable
// by owner(v) only if owner(u) == owner(v) or a message (u → v) was actually
// part of the step's routed batch.  A missing dependency poisons the state
// and the final checksums diverge — so states_match == true certifies the
// engine's message pattern is complete, not merely plausible.

#include "netemu/emulation/engine.hpp"

namespace netemu {

struct VerifiedEmulation {
  bool states_match = false;
  std::uint64_t guest_checksum = 0;
  std::uint64_t host_checksum = 0;
  EmulationResult timing;
};

VerifiedEmulation emulate_verified(const Machine& guest, const Machine& host,
                                   Prng& rng,
                                   const EmulationOptions& options = {});

}  // namespace netemu
