#include "netemu/emulation/verified.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "netemu/routing/router.hpp"

namespace netemu {

namespace {

constexpr std::uint64_t kModulus = (1ULL << 61) - 1;  // Mersenne prime

std::uint64_t mod_add(std::uint64_t a, std::uint64_t b) {
  const std::uint64_t s = a + b;
  return s >= kModulus ? s - kModulus : s;
}

std::uint64_t mod_mul_small(std::uint64_t a, std::uint64_t k) {
  __uint128_t p = static_cast<__uint128_t>(a) * k;
  // Mersenne reduction.
  std::uint64_t lo = static_cast<std::uint64_t>(p & kModulus);
  std::uint64_t hi = static_cast<std::uint64_t>(p >> 61);
  std::uint64_t r = lo + hi;
  if (r >= kModulus) r -= kModulus;
  return r;
}

std::uint64_t checksum(const std::vector<std::uint64_t>& state) {
  std::uint64_t h = 0x9E3779B97F4A7C15ULL;
  for (std::uint64_t s : state) h = splitmix64(h) ^ s;
  return h;
}

}  // namespace

VerifiedEmulation emulate_verified(const Machine& guest, const Machine& host,
                                   Prng& rng,
                                   const EmulationOptions& options) {
  VerifiedEmulation result;
  const std::size_t n = guest.graph.num_vertices();
  const auto parts = static_cast<std::uint32_t>(
      std::min<std::size_t>(host.num_processors(), n));

  std::vector<std::uint32_t> slot =
      partition_guest(guest.graph, parts, options.partition, rng);
  std::vector<Vertex> owner(n);
  for (std::size_t v = 0; v < n; ++v) {
    owner[v] = host.processor(slot[v]);
  }
  result.timing.guest_steps = options.guest_steps;
  result.timing.max_load = max_load(slot, parts);

  // Initial states.
  std::vector<std::uint64_t> guest_state(n), host_state(n);
  for (std::size_t v = 0; v < n; ++v) {
    guest_state[v] = rng() % kModulus;
    host_state[v] = guest_state[v];
  }

  // Host-side delivery plan for one step: the messages the engine routes.
  // mailbox key: (src guest vertex << 32) | dst guest vertex.
  std::unordered_set<std::uint64_t> delivered;
  std::vector<std::pair<Vertex, Vertex>> endpoints;  // host pairs
  for (const Edge& e : guest.graph.edges()) {
    if (owner[e.u] == owner[e.v]) continue;
    delivered.insert((static_cast<std::uint64_t>(e.u) << 32) | e.v);
    delivered.insert((static_cast<std::uint64_t>(e.v) << 32) | e.u);
    for (std::uint32_t c = 0; c < e.mult; ++c) {
      endpoints.emplace_back(owner[e.u], owner[e.v]);
      endpoints.emplace_back(owner[e.v], owner[e.u]);
    }
  }
  result.timing.messages_per_step = endpoints.size();

  const auto router = make_default_router(host);
  PacketSimulator sim(host, options.arbitration);
  const auto compute_ticks = static_cast<std::uint64_t>(
      std::ceil(options.compute_per_guest_vertex * result.timing.max_load));

  std::vector<std::uint64_t> next_guest(n), next_host(n);
  std::uint64_t comm_total = 0;
  for (std::uint32_t step = 0; step < options.guest_steps; ++step) {
    // Timing: route the step's batch.
    std::vector<std::vector<Vertex>> paths;
    paths.reserve(endpoints.size());
    for (const auto& [src, dst] : endpoints) {
      paths.push_back(router->route(src, dst, rng));
    }
    const BatchStats stats = sim.run_batch(paths, rng);
    comm_total += stats.makespan;
    result.timing.host_time +=
        std::max<std::uint64_t>(stats.makespan, compute_ticks);

    // Semantics: reference update on the guest...
    for (Vertex v = 0; v < n; ++v) {
      std::uint64_t acc = mod_mul_small(guest_state[v], 3);
      for (const Arc& a : guest.graph.neighbors(v)) {
        acc = mod_add(acc, mod_mul_small(guest_state[a.to], a.mult));
      }
      next_guest[v] = acc;
    }
    // ... and the host's mailbox-gated update.  A remote value is readable
    // only when its message is in the delivery plan.
    for (Vertex v = 0; v < n; ++v) {
      std::uint64_t acc = mod_mul_small(host_state[v], 3);
      for (const Arc& a : guest.graph.neighbors(v)) {
        std::uint64_t value;
        if (owner[a.to] == owner[v]) {
          value = host_state[a.to];  // local read
        } else if (delivered.count(
                       (static_cast<std::uint64_t>(a.to) << 32) | v)) {
          value = host_state[a.to];  // arrived by message
        } else {
          value = 0xDEADBEEF;  // missing dependency poisons the state
        }
        acc = mod_add(acc, mod_mul_small(value % kModulus, a.mult));
      }
      next_host[v] = acc;
    }
    guest_state.swap(next_guest);
    host_state.swap(next_host);
  }

  result.timing.slowdown = static_cast<double>(result.timing.host_time) /
                           static_cast<double>(options.guest_steps);
  result.timing.comm_fraction =
      result.timing.host_time == 0
          ? 0.0
          : static_cast<double>(comm_total) /
                static_cast<double>(result.timing.host_time);
  result.guest_checksum = checksum(guest_state);
  result.host_checksum = checksum(host_state);
  result.states_match = result.guest_checksum == result.host_checksum;
  return result;
}

}  // namespace netemu
