#include "netemu/emulation/bounds.hpp"

#include <algorithm>
#include <cmath>

#include "netemu/util/math.hpp"

namespace netemu {

SlowdownBounds slowdown_bounds(Family gf, unsigned gk, double n, Family hf,
                               unsigned hk, double m) {
  SlowdownBounds b;
  b.load = n / m;
  b.bandwidth = beta_theory(gf, gk)(n) / beta_theory(hf, hk)(m);
  b.combined = std::max(b.load, b.bandwidth);
  return b;
}

double koch_distance_bound_tree_on_mesh(double n, unsigned k) {
  const double lg = lg_clamped(n);
  return std::pow(n / std::pow(lg, static_cast<double>(k)),
                  1.0 / (static_cast<double>(k) + 1.0));
}

double koch_congestion_bound_mesh_on_mesh(unsigned k, unsigned j, double m) {
  const double kk = static_cast<double>(k), jj = static_cast<double>(j);
  return std::pow(m, (kk - jj) / (jj * kk));
}

double koch_congestion_bound_butterfly_on_mesh_lg(unsigned k, double m) {
  return std::pow(m, 1.0 / static_cast<double>(k));
}

}  // namespace netemu
