#pragma once
// Redundant emulation — the model of Koch et al. [7] the paper's theorems
// quantify over.  A guest operation may be performed at several host sites
// (copies); each copy needs an input from SOME copy of each guest neighbor,
// so long-haul messages can be traded for recomputation.
//
// Realization: the host's processors are split into `replication` regions;
// each region holds a complete copy of the guest (locality-preserving block
// placement inside the region).  Each step, every copy pulls each neighbor
// value from the nearest copy — with full regions that is always the local
// one, so communication stays intra-region (shorter paths, region-local
// congestion) while compute is multiplied by `replication`.
//
// The point the bench makes: redundancy shortens DISTANCE but cannot beat
// the BANDWIDTH bound — β(G)/β(H) holds for every replication factor, which
// is exactly why the paper's bound is phrased in bandwidth.

#include "netemu/emulation/engine.hpp"

namespace netemu {

struct RedundantOptions {
  std::uint32_t replication = 2;  ///< copies of the guest (>= 1)
  std::uint32_t guest_steps = 4;
  Arbitration arbitration = Arbitration::kFarthestFirst;
  double compute_per_guest_vertex = 1.0;
};

struct RedundantResult {
  std::uint32_t replication = 0;
  std::uint32_t guest_steps = 0;
  std::uint64_t host_time = 0;
  double slowdown = 0.0;
  /// Work performed / guest work: O(1) is the paper's "efficient";
  /// equals ~replication by construction.
  double inefficiency = 0.0;
  double comm_fraction = 0.0;
  std::uint32_t max_load = 0;  ///< guest copies per host processor
};

RedundantResult emulate_redundant(const Machine& guest, const Machine& host,
                                  Prng& rng,
                                  const RedundantOptions& options = {});

}  // namespace netemu
