#include "netemu/routing/butterfly_router.hpp"

#include <cassert>

#include "netemu/util/math.hpp"

namespace netemu {

ButterflyRouter::ButterflyRouter(const Machine& machine)
    : d_(machine.shape.at(0)), rows_(ipow(2, machine.shape.at(0))) {
  assert(machine.family == Family::kButterfly ||
         machine.family == Family::kMultibutterfly);
}

std::vector<Vertex> ButterflyRouter::route(Vertex src, Vertex dst,
                                           Prng& /*rng*/) {
  const std::uint64_t l1 = src / rows_, r1 = src % rows_;
  const std::uint64_t l2 = dst / rows_, r2 = dst % rows_;
  std::uint64_t needed = r1 ^ r2;

  std::uint64_t level = l1, row = r1;
  std::vector<Vertex> path{src};
  auto push = [&] {
    path.push_back(static_cast<Vertex>(level * rows_ + row));
  };

  // Descend to the lowest needed boundary (crossing boundary i downward may
  // fix bit i).
  std::uint64_t down_target = level;
  for (unsigned i = 0; i < d_; ++i) {
    if (needed >> i & 1u) {
      down_target = std::min<std::uint64_t>(down_target, i);
      break;
    }
  }
  down_target = std::min<std::uint64_t>(down_target, l2);
  while (level > down_target) {
    const unsigned boundary = static_cast<unsigned>(level - 1);
    if (needed >> boundary & 1u) {
      row ^= 1ULL << boundary;
      needed &= ~(1ULL << boundary);
    }
    --level;
    push();
  }

  // Ascend past every remaining needed boundary (and at least to l2).
  std::uint64_t up_target = l2;
  for (unsigned i = d_; i-- > 0;) {
    if (needed >> i & 1u) {
      up_target = std::max<std::uint64_t>(up_target, i + 1u);
      break;
    }
  }
  while (level < up_target) {
    const unsigned boundary = static_cast<unsigned>(level);
    if (needed >> boundary & 1u) {
      row ^= 1ULL << boundary;
      needed &= ~(1ULL << boundary);
    }
    ++level;
    push();
  }

  // Settle straight down to the destination level.
  while (level > l2) {
    --level;
    push();
  }
  assert(level == l2 && row == r2 && needed == 0);
  return path;
}

ShuffleExchangeRouter::ShuffleExchangeRouter(const Machine& machine)
    : d_(machine.shape.at(0)) {
  assert(machine.family == Family::kShuffleExchange);
}

std::vector<Vertex> ShuffleExchangeRouter::route(Vertex src, Vertex dst,
                                                 Prng& /*rng*/) {
  std::vector<Vertex> path{src};
  std::uint64_t cur = src;
  // d rounds: force the lsb to bit k of dst, then rotate right — bit k ends
  // up back at position k after the remaining rotations.
  for (unsigned k = 0; k < d_; ++k) {
    const std::uint64_t want = (dst >> k) & 1u;
    if ((cur & 1u) != want) {
      cur ^= 1u;
      path.push_back(static_cast<Vertex>(cur));
    }
    const std::uint64_t next = rotr_bits(cur, d_);
    if (next != cur) {
      path.push_back(static_cast<Vertex>(next));
    }
    cur = next;
  }
  assert(cur == dst);
  return path;
}

ValiantRouter::ValiantRouter(const Machine& machine,
                             std::unique_ptr<Router> base)
    : machine_(machine), base_(std::move(base)) {}

std::vector<Vertex> ValiantRouter::route(Vertex src, Vertex dst, Prng& rng) {
  if (src == dst) return {src};
  const auto w = static_cast<Vertex>(
      rng.below(machine_.graph.num_vertices()));
  std::vector<Vertex> first = base_->route(src, w, rng);
  const std::vector<Vertex> second = base_->route(w, dst, rng);
  first.insert(first.end(), second.begin() + 1, second.end());
  return first;
}

}  // namespace netemu
