#include "netemu/routing/hierarchy_router.hpp"

#include <cassert>
#include <numeric>

#include "netemu/topology/detail/grid.hpp"
#include "netemu/util/math.hpp"

namespace netemu {

HierarchyRouter::HierarchyRouter(const Machine& machine)
    : k_(machine.dims), base_side_(machine.shape.at(0)) {
  assert(machine.family == Family::kPyramid ||
         machine.family == Family::kMultigrid);
  std::uint64_t offset = 0;
  for (std::uint32_t s = base_side_; s >= 1; s /= 2) {
    level_offset_.push_back(offset);
    level_side_.push_back(s);
    offset += ipow(s, k_);
    if (s == 1) break;
  }
}

HierarchyRouter::Position HierarchyRouter::position_of(Vertex v) const {
  std::uint32_t level = 0;
  while (level + 1 < level_offset_.size() && v >= level_offset_[level + 1]) {
    ++level;
  }
  const std::vector<std::uint32_t> sides(k_, level_side_[level]);
  return Position{level,
                  detail::grid_coord(sides, v - level_offset_[level])};
}

Vertex HierarchyRouter::vertex_of(
    std::uint32_t level, const std::vector<std::uint32_t>& coord) const {
  const std::vector<std::uint32_t> sides(k_, level_side_[level]);
  return static_cast<Vertex>(level_offset_[level] +
                             detail::grid_index(sides, coord));
}

std::vector<std::uint32_t> HierarchyRouter::descend(
    std::uint32_t level, std::vector<std::uint32_t> coord,
    std::vector<Vertex>& out) const {
  // The corner descendant doubles coordinates per level; both the pyramid
  // (corner child's parent is this vertex) and the multigrid (explicit
  // corner edge) have the needed edge.
  while (level > 0) {
    --level;
    for (auto& c : coord) c *= 2;
    out.push_back(vertex_of(level, coord));
  }
  return coord;
}

std::vector<Vertex> HierarchyRouter::route(Vertex src, Vertex dst,
                                           Prng& rng) {
  if (src == dst) return {src};
  std::vector<Vertex> path{src};

  const Position ps = position_of(src);
  const Position pd = position_of(dst);
  auto cur = descend(ps.level, ps.coord, path);

  // Base-level target: the corner descendant of dst.
  auto goal = pd.coord;
  for (std::uint32_t l = pd.level; l > 0; --l) {
    for (auto& c : goal) c *= 2;
  }

  // Randomized dimension-order across the base mesh.
  std::vector<std::size_t> axes(k_);
  std::iota(axes.begin(), axes.end(), std::size_t{0});
  shuffle(axes, rng);
  for (std::size_t d : axes) {
    while (cur[d] != goal[d]) {
      cur[d] += cur[d] < goal[d] ? 1 : -1;
      path.push_back(vertex_of(0, cur));
    }
  }

  // Ascend to dst by reversing its descent chain.
  if (pd.level > 0) {
    std::vector<Vertex> down{dst};
    auto coord = pd.coord;
    std::uint32_t level = pd.level;
    while (level > 0) {
      --level;
      for (auto& c : coord) c *= 2;
      down.push_back(vertex_of(level, coord));
    }
    // down = dst, ..., base corner; append in reverse skipping the base
    // vertex (already at the end of `path`).
    for (std::size_t i = down.size() - 1; i-- > 0;) {
      path.push_back(down[i]);
    }
  }
  return path;
}

}  // namespace netemu
