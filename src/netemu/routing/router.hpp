#pragma once
// Router interface: a router turns (src, dst) into a concrete walk through
// the machine.  Specialized routers exist for the algebraically-routable
// families (dimension-order for grids, bit-fixing for hypercubes, shift
// routing for de Bruijn, level routing for butterflies, LCA for trees);
// BfsRouter covers everything else with random shortest paths.

#include <memory>
#include <vector>

#include "netemu/topology/machine.hpp"
#include "netemu/util/cancel.hpp"
#include "netemu/util/prng.hpp"

namespace netemu {

class Router {
 public:
  virtual ~Router() = default;

  /// Walk from src to dst inclusive of both endpoints; consecutive entries
  /// must be adjacent in the machine's graph.  rng may be used for
  /// congestion-spreading tie-breaks.
  virtual std::vector<Vertex> route(Vertex src, Vertex dst, Prng& rng) = 0;

  /// Buffer-reuse variant for hot loops (measure_throughput routes tens of
  /// thousands of messages per trial): fill `out` with the walk instead of
  /// allocating a fresh vector per message.  Must produce exactly the path
  /// route() would — same vertices, same rng draws — so the two are
  /// interchangeable without perturbing seeded results.  The default
  /// delegates to route(); routers on the hot path override it.
  virtual void route_append(Vertex src, Vertex dst, Prng& rng,
                            std::vector<Vertex>& out) {
    out = route(src, dst, rng);
  }

  virtual const char* name() const = 0;

  /// Attach a cooperative cancellation token checked by expensive route
  /// *preparation* (BfsRouter's distance-field BFS).  Default: ignored —
  /// algebraic routers do O(path) work per route and are already bounded by
  /// the per-message checks in measure_throughput.  Set before handing the
  /// router to concurrent trials; never affects the routes produced.
  virtual void set_cancel_token(CancelToken /*cancel*/) {}
};

/// Family-dispatched router choice: algebraic router when one exists for
/// machine.family, BfsRouter otherwise.
std::unique_ptr<Router> make_default_router(const Machine& machine);

/// Always the generic BFS router (for ablations).
std::unique_ptr<Router> make_bfs_router(const Machine& machine);

/// Valiant two-phase randomization wrapped around the machine's default
/// router: src -> random intermediate -> dst.
std::unique_ptr<Router> make_valiant_router(const Machine& machine);

/// Validity check used by tests: path edges all exist, endpoints match.
bool path_is_valid(const Multigraph& g, const std::vector<Vertex>& path,
                   Vertex src, Vertex dst);

}  // namespace netemu
