#include "netemu/routing/throughput.hpp"

#include <algorithm>

#include "netemu/graph/algorithms.hpp"
#include "netemu/util/stats.hpp"

namespace netemu {

namespace {

/// Sample `extra` messages and append their routed paths to `batch`.
/// Polls `cancel` between routes; routing a message costs microseconds so a
/// per-message check is already amortized relative to kCancelCheckTicks.
void route_into(PacketSimulator::PreparedBatch& batch,
                const PacketSimulator& sim, Router& router,
                const TrafficDistribution& traffic, std::size_t extra,
                Prng& rng, const CancelToken& cancel) {
  // Pre-size from the running average path length (or a small guess on an
  // empty batch) and reuse one path buffer across messages: tens of
  // thousands of per-message vector allocations per trial otherwise
  // dominate the non-simulating half of the trial.
  const std::size_t hops_hint =
      batch.size() > 0
          ? static_cast<std::size_t>(batch.total_hops() / batch.size() + 1) *
                extra
          : 8 * extra;
  batch.reserve(extra, hops_hint);
  std::vector<Vertex> path;
  for (const Message& msg : traffic.batch(extra, rng)) {
    cancel.check();
    router.route_append(msg.src, msg.dst, rng, path);
    sim.append(batch, path);
  }
}

}  // namespace

ThroughputResult measure_throughput(const Machine& machine, Router& router,
                                    const TrafficDistribution& traffic,
                                    Prng& rng,
                                    const ThroughputOptions& options) {
  ThroughputResult result;
  const PacketSimulator sim(machine, options.arbitration);

  // One draw from the caller's stream seeds everything (see header).
  const std::uint64_t base = rng();
  Prng diam_rng = Prng::stream(base, 0);
  const std::uint64_t diameter_lb =
      diameter_double_sweep(machine.graph, diam_rng);
  const std::uint64_t target_makespan =
      std::max<std::uint64_t>(options.min_makespan, 4 * diameter_lb);

  std::size_t m = std::clamp<std::size_t>(
      options.messages_per_processor * traffic.num_processors(), 512,
      options.max_messages);

  const unsigned trials = std::max(1u, options.trials);
  // Shard window [lo, hi): the default (0, 0) covers the whole sweep.
  const unsigned lo = std::min(options.trial_lo, trials - 1);
  const unsigned hi =
      options.trial_hi == 0 ? trials
                            : std::clamp(options.trial_hi, lo + 1, trials);
  const bool ranged = lo > 0 || hi < trials;
  std::vector<BatchStats> stats(trials);
  // Set per trial after its run_batch returns.  for_n collects by index and
  // each trial writes only its own slot, so plain bytes are race-free.
  std::vector<char> completed(trials, 0);

  // Trial 0 calibrates the batch size: grow by doubling until the transient
  // is negligible, keeping the already-routed paths and routing only the
  // top-up messages each step.  Cancellation here propagates as
  // CancelledError: no trial has landed yet, so there is nothing partial to
  // return.  The calibration runs even for a shard that excludes trial 0 —
  // m must be derived from the same substream on every shard — but such a
  // shard discards trial 0's stats AND its ticks, leaving them to the shard
  // that owns trial 0 so shard ticks sum to the unsharded total.
  std::uint64_t calibration_ticks = 0;
  {
    Prng trial_rng = Prng::stream(base, 1);
    PacketSimulator::PreparedBatch batch;
    std::size_t routed = 0;
    for (;;) {
      route_into(batch, sim, router, traffic, m - routed, trial_rng,
                 options.cancel);
      routed = m;
      stats[0] = sim.run_batch(batch, trial_rng, options.cancel);
      if (stats[0].makespan >= target_makespan || m >= options.max_messages) {
        break;
      }
      calibration_ticks += stats[0].makespan;  // non-final sizing runs
      m = std::min(options.max_messages, m * 2);
    }
    if (lo == 0) completed[0] = 1;
  }
  result.messages = m;

  // Trials in [max(lo, 1), hi) at the calibrated size, independently seeded
  // by index and collected by index — bit-identical at any thread count.  A
  // cancelled trial is swallowed here (never escapes for_n, which would
  // rethrow on the caller and drop sibling results): it just leaves its
  // completed flag unset and the sweep reports a degraded partial result.
  const auto run_trial = [&](std::size_t t) {
    try {
      Prng trial_rng = Prng::stream(base, 1 + t);
      PacketSimulator::PreparedBatch batch;
      route_into(batch, sim, router, traffic, m, trial_rng, options.cancel);
      stats[t] = sim.run_batch(batch, trial_rng, options.cancel);
      completed[t] = 1;
    } catch (const CancelledError&) {
    }
  };
  const unsigned first_run = std::max(lo, 1u);
  if (hi > first_run) {
    if (options.pool != nullptr) {
      options.pool->for_n(hi - first_run,
                          [&](std::size_t i) { run_trial(first_run + i); });
    } else {
      for (unsigned t = first_run; t < hi; ++t) run_trial(t);
    }
  }

  // A ranged shard must stay contiguous so a merger can never double-count:
  // truncate at the first gap.  The unsharded path keeps its historical
  // behavior of skipping gaps (every completed trial still counts).
  if (ranged) {
    for (unsigned t = lo; t < hi; ++t) {
      if (!completed[t]) {
        std::fill(completed.begin() + t, completed.begin() + hi, char{0});
        break;
      }
    }
    if (!completed[lo]) throw CancelledError();
  }

  result.trial_lo = lo;
  result.trial_rates.reserve(hi - lo);
  result.total_ticks = lo == 0 ? calibration_ticks : 0;
  unsigned last_completed = lo;
  for (unsigned t = lo; t < hi; ++t) {
    if (!completed[t]) continue;
    result.trial_rates.push_back(stats[t].rate());
    result.total_ticks += stats[t].makespan;
    last_completed = t;
  }
  result.trials_completed = static_cast<unsigned>(result.trial_rates.size());
  result.degraded = result.trials_completed < hi - lo;
  result.rate = median(std::vector<double>(result.trial_rates));
  const auto [rate_lo, rate_hi] = std::minmax_element(
      result.trial_rates.begin(), result.trial_rates.end());
  result.rate_min = *rate_lo;
  result.rate_max = *rate_hi;
  result.last = stats[last_completed];
  return result;
}

}  // namespace netemu
