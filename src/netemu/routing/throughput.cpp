#include "netemu/routing/throughput.hpp"

#include <algorithm>

#include "netemu/graph/algorithms.hpp"
#include "netemu/util/stats.hpp"

namespace netemu {

namespace {

std::vector<std::vector<Vertex>> make_paths(
    const std::vector<Message>& batch, Router& router, Prng& rng) {
  std::vector<std::vector<Vertex>> paths;
  paths.reserve(batch.size());
  for (const Message& msg : batch) {
    paths.push_back(router.route(msg.src, msg.dst, rng));
  }
  return paths;
}

}  // namespace

ThroughputResult measure_throughput(const Machine& machine, Router& router,
                                    const TrafficDistribution& traffic,
                                    Prng& rng,
                                    const ThroughputOptions& options) {
  ThroughputResult result;
  PacketSimulator sim(machine, options.arbitration);

  const std::uint64_t diameter_lb = diameter_double_sweep(machine.graph, rng);
  const std::uint64_t target_makespan =
      std::max<std::uint64_t>(options.min_makespan, 4 * diameter_lb);

  std::size_t m = std::clamp<std::size_t>(
      options.messages_per_processor * traffic.num_processors(), 512,
      options.max_messages);

  // Grow the batch until the transient is negligible.
  for (;;) {
    const auto paths = make_paths(traffic.batch(m, rng), router, rng);
    result.last = sim.run_batch(paths, rng);
    if (result.last.makespan >= target_makespan ||
        m >= options.max_messages) {
      break;
    }
    m = std::min(options.max_messages, m * 2);
  }
  result.messages = m;

  std::vector<double> rates{result.last.rate()};
  for (unsigned t = 1; t < options.trials; ++t) {
    const auto paths = make_paths(traffic.batch(m, rng), router, rng);
    result.last = sim.run_batch(paths, rng);
    rates.push_back(result.last.rate());
  }
  result.rate = median(std::move(rates));
  return result;
}

}  // namespace netemu
