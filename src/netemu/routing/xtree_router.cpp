#include "netemu/routing/xtree_router.hpp"

#include <cassert>

#include "netemu/util/math.hpp"

namespace netemu {

namespace {

unsigned depth_of(Vertex v) { return ilog2(v + 1u); }

/// Ancestor of v at depth d (d <= depth(v)).
Vertex ancestor_at(Vertex v, unsigned d) {
  for (unsigned cur = depth_of(v); cur > d; --cur) {
    v = (v - 1) / 2;
  }
  return v;
}

}  // namespace

XTreeRouter::XTreeRouter(const Machine& machine)
    : height_(machine.shape.at(0)) {
  assert(machine.family == Family::kXTree);
}

std::vector<Vertex> XTreeRouter::route(Vertex src, Vertex dst, Prng& rng) {
  if (src == dst) return {src};
  const unsigned du = depth_of(src), dv = depth_of(dst);
  // Crossing depth: uniform over the rings both endpoints can reach, but no
  // deeper than the LCA's depth + a few levels — locality for nearby pairs
  // while the global traffic still spreads over Θ(lg n) rings.
  const unsigned reach = std::min(du, dv);
  const unsigned l =
      static_cast<unsigned>(rng.below(reach + 1u));

  std::vector<Vertex> path{src};
  Vertex cur = src;
  // Climb to depth l.
  while (depth_of(cur) > l) {
    cur = (cur - 1) / 2;
    path.push_back(cur);
  }
  // Walk laterally along ring l to dst's ancestor.
  const Vertex target = ancestor_at(dst, l);
  while (cur != target) {
    cur = cur < target ? cur + 1 : cur - 1;
    path.push_back(cur);
  }
  // Descend along dst's ancestor chain.
  if (depth_of(dst) > l) {
    std::vector<Vertex> chain;  // dst up to (but excluding) depth l
    Vertex w = dst;
    while (depth_of(w) > l) {
      chain.push_back(w);
      w = (w - 1) / 2;
    }
    for (std::size_t i = chain.size(); i-- > 0;) {
      path.push_back(chain[i]);
    }
  }
  return path;
}

}  // namespace netemu
