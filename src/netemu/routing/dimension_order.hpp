#pragma once
// Algebraic routers for the coordinate families:
//  * DimensionOrderRouter — Mesh / Torus / XGrid.  Axes are corrected in a
//    random order per message (randomized dimension-order spreads congestion
//    while staying minimal); on the torus each axis takes the shorter way
//    around; on the X-grid two axes are corrected at once through a
//    diagonal whenever possible.
//  * BitFixRouter — Hypercube: differing bits fixed in random order.
//  * DeBruijnShiftRouter — de Bruijn: the classical d-step shift walk that
//    feeds the destination's bits in from the right.

#include "netemu/routing/router.hpp"

namespace netemu {

class DimensionOrderRouter final : public Router {
 public:
  explicit DimensionOrderRouter(const Machine& machine);
  std::vector<Vertex> route(Vertex src, Vertex dst, Prng& rng) override;
  const char* name() const override { return "dimension-order"; }

 private:
  const Machine& machine_;
};

class BitFixRouter final : public Router {
 public:
  explicit BitFixRouter(const Machine& machine);
  std::vector<Vertex> route(Vertex src, Vertex dst, Prng& rng) override;
  const char* name() const override { return "bit-fix"; }

 private:
  unsigned d_;
};

class DeBruijnShiftRouter final : public Router {
 public:
  explicit DeBruijnShiftRouter(const Machine& machine);
  std::vector<Vertex> route(Vertex src, Vertex dst, Prng& rng) override;
  const char* name() const override { return "debruijn-shift"; }

 private:
  unsigned d_;
};

}  // namespace netemu
