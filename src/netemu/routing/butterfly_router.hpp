#pragma once
// Algebraic routers for the level-structured and shuffle families, plus the
// Valiant two-phase randomizer.
//
//  * ButterflyRouter — butterfly/multibutterfly: row bit i can only change
//    crossing the boundary between levels i and i+1, so the walk descends to
//    the lowest needed boundary, ascends fixing bits, then settles at the
//    destination level.  O(d) hops, no per-destination state.
//  * ShuffleExchangeRouter — the classical bit-serial walk: d rounds of
//    (optional exchange, then shuffle), <= 2d hops.
//  * ValiantRouter — route src -> W -> dst through a uniformly random
//    intermediate W using a base router: turns any permutation into two
//    random-destination phases (the classical fix for adversarial patterns
//    like transpose / bit-reversal on meshes).

#include <memory>

#include "netemu/routing/router.hpp"

namespace netemu {

class ButterflyRouter final : public Router {
 public:
  explicit ButterflyRouter(const Machine& machine);
  std::vector<Vertex> route(Vertex src, Vertex dst, Prng& rng) override;
  const char* name() const override { return "butterfly-level"; }

 private:
  unsigned d_;
  std::uint64_t rows_;
};

class ShuffleExchangeRouter final : public Router {
 public:
  explicit ShuffleExchangeRouter(const Machine& machine);
  std::vector<Vertex> route(Vertex src, Vertex dst, Prng& rng) override;
  const char* name() const override { return "shuffle-exchange"; }

 private:
  unsigned d_;
};

class ValiantRouter final : public Router {
 public:
  ValiantRouter(const Machine& machine, std::unique_ptr<Router> base);
  std::vector<Vertex> route(Vertex src, Vertex dst, Prng& rng) override;
  const char* name() const override { return "valiant"; }

 private:
  const Machine& machine_;
  std::unique_ptr<Router> base_;
};

}  // namespace netemu
