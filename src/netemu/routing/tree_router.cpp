#include "netemu/routing/tree_router.hpp"

#include <algorithm>
#include <cassert>

#include "netemu/util/math.hpp"

namespace netemu {

TreeRouter::TreeRouter(const Machine& machine) {
  assert(machine.family == Family::kTree ||
         machine.family == Family::kFatTree ||
         machine.family == Family::kWeakPPN);
  (void)machine;
}

std::vector<Vertex> TreeRouter::route(Vertex src, Vertex dst, Prng& /*rng*/) {
  // Heap depth of vertex i is ilog2(i + 1).
  std::vector<Vertex> up{src};
  std::vector<Vertex> down{dst};
  Vertex a = src, b = dst;
  while (ilog2(a + 1u) > ilog2(b + 1u)) {
    a = (a - 1) / 2;
    up.push_back(a);
  }
  while (ilog2(b + 1u) > ilog2(a + 1u)) {
    b = (b - 1) / 2;
    down.push_back(b);
  }
  while (a != b) {
    a = (a - 1) / 2;
    up.push_back(a);
    b = (b - 1) / 2;
    down.push_back(b);
  }
  up.pop_back();  // LCA would be duplicated
  up.insert(up.end(), down.rbegin(), down.rend());
  return up;
}

LineRouter::LineRouter(const Machine& machine) {
  assert(machine.family == Family::kLinearArray);
  (void)machine;
}

std::vector<Vertex> LineRouter::route(Vertex src, Vertex dst, Prng& /*rng*/) {
  std::vector<Vertex> path;
  path.reserve(static_cast<std::size_t>(
                   src > dst ? src - dst : dst - src) + 1);
  const int dir = dst >= src ? 1 : -1;
  for (Vertex v = src;; v = static_cast<Vertex>(static_cast<int>(v) + dir)) {
    path.push_back(v);
    if (v == dst) break;
  }
  return path;
}

RingRouter::RingRouter(const Machine& machine)
    : n_(machine.graph.num_vertices()) {
  assert(machine.family == Family::kRing);
}

std::vector<Vertex> RingRouter::route(Vertex src, Vertex dst, Prng& /*rng*/) {
  std::vector<Vertex> path{src};
  if (src == dst) return path;
  const std::size_t fwd = (dst + n_ - src) % n_;
  const int dir = 2 * fwd <= n_ ? 1 : -1;
  Vertex cur = src;
  while (cur != dst) {
    cur = static_cast<Vertex>((cur + n_ + static_cast<std::size_t>(dir)) % n_);
    path.push_back(cur);
  }
  return path;
}

BusRouter::BusRouter(const Machine& machine)
    : hub_(static_cast<Vertex>(machine.graph.num_vertices() - 1)) {
  assert(machine.family == Family::kGlobalBus);
}

std::vector<Vertex> BusRouter::route(Vertex src, Vertex dst, Prng& /*rng*/) {
  if (src == dst) return {src};
  if (src == hub_ || dst == hub_) return {src, dst};
  return {src, hub_, dst};
}

}  // namespace netemu
