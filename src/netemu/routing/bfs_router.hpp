#pragma once
// Generic random-shortest-path router.
//
// For each destination it lazily computes and caches the hop-distance field
// (uint16_t per vertex: 32 MB even at n = 2^24 / one dst, bounded overall by
// an LRU-free "clear when over budget" policy).  A route is then a greedy
// descent: from the current vertex, step to a uniformly random neighbor at
// distance d-1.  Uniform choice over the shortest-path DAG is what spreads
// congestion — the deterministic-parent alternative is an ablation knob.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "netemu/routing/router.hpp"

namespace netemu {

class BfsRouter final : public Router {
 public:
  /// spread=true picks a random predecessor in the shortest-path DAG;
  /// false always takes the lowest-numbered one (deterministic).
  explicit BfsRouter(const Machine& machine, bool spread = true,
                     std::size_t cache_budget_bytes = 256u << 20);

  std::vector<Vertex> route(Vertex src, Vertex dst, Prng& rng) override;
  const char* name() const override { return spread_ ? "bfs-random" : "bfs"; }

 private:
  const std::vector<std::uint16_t>& distance_field(Vertex dst);

  const Machine& machine_;
  bool spread_;
  std::size_t cache_budget_entries_;
  std::size_t cached_entries_ = 0;
  std::unordered_map<Vertex, std::vector<std::uint16_t>> fields_;
};

}  // namespace netemu
