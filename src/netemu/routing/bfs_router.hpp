#pragma once
// Generic random-shortest-path router.
//
// For each destination it lazily computes and memoizes the BFS tree rooted
// there, stored as the hop-distance field (uint16_t per vertex: 32 MB even
// at n = 2^24 / one dst).  A route is then a greedy descent: from the
// current vertex, step to a uniformly random neighbor at distance d-1.
// Uniform choice over the shortest-path DAG is what spreads congestion —
// the deterministic-parent alternative is an ablation knob.
//
// The memo is a bounded FIFO cache: when the byte budget is exceeded the
// oldest fields are evicted (not the whole map), and fields are handed out
// as shared_ptr so an eviction never invalidates a field another thread is
// still descending.  route() is safe to call concurrently — the cache is
// mutex-guarded, and a cache hit costs one lock + one hash probe.  Cached
// or not, the walk draws the same rng sequence, so results depend only on
// (machine, src, dst, rng state), never on cache history or thread count.

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "netemu/routing/router.hpp"

namespace netemu {

class BfsRouter final : public Router {
 public:
  /// spread=true picks a random predecessor in the shortest-path DAG;
  /// false always takes the lowest-numbered one (deterministic).
  explicit BfsRouter(const Machine& machine, bool spread = true,
                     std::size_t cache_budget_bytes = 256u << 20);

  std::vector<Vertex> route(Vertex src, Vertex dst, Prng& rng) override;
  void route_append(Vertex src, Vertex dst, Prng& rng,
                    std::vector<Vertex>& out) override;
  const char* name() const override { return spread_ ? "bfs-random" : "bfs"; }

  /// Token polled every kCancelCheckTicks vertex pops inside the
  /// distance-field BFS (the only unbounded prep work).  Set before routing
  /// starts; copying the token is cheap and route() reads it unsynchronized.
  void set_cancel_token(CancelToken cancel) override {
    cancel_ = std::move(cancel);
  }

  /// Cache observability (for tests and the perf harness).
  std::uint64_t cache_hits() const;
  std::uint64_t cache_misses() const;
  std::uint64_t cache_evictions() const;

 private:
  using Field = std::vector<std::uint16_t>;

  std::shared_ptr<const Field> distance_field(Vertex dst);

  const Machine& machine_;
  bool spread_;
  std::size_t cache_budget_entries_;
  CancelToken cancel_;  // set once before concurrent routing begins

  mutable std::mutex mutex_;  // guards everything below
  std::size_t cached_entries_ = 0;
  std::unordered_map<Vertex, std::shared_ptr<const Field>> fields_;
  std::deque<Vertex> eviction_order_;  // FIFO of cached destinations
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace netemu
