#pragma once
// Cycle-accurate store-and-forward packet simulator.
//
// Model (matches the paper's accounting in Theorem 6):
//  * one message crosses a wire per tick and per direction; an edge of
//    multiplicity m is m parallel wires;
//  * a machine may additionally impose a per-node forwarding capacity
//    (weak machines, the bus hub);
//  * all messages of a batch are present at tick 0 and the batch's makespan
//    is the delivery time of the last one — bandwidth is then
//    messages / makespan in the large-batch limit.
//
// Contention is resolved by an arbitration policy; farthest-remaining-first
// is the default (it is the policy family behind the O(congestion+dilation)
// routing theorem the paper leans on), FIFO and random are ablation knobs.
//
// Hot-path design (see docs/PERF.md): paths are flattened ONCE into a
// PreparedBatch of channel-id sequences (channel_of resolved at flatten
// time, never per tick), and the tick loop buckets contending messages with
// a flat counting sort over scratch arrays sized once per run — no per-tick
// allocation.  PreparedBatch is appendable so a batch-doubling caller reuses
// the already-flattened prefix instead of re-resolving every path.

#include <atomic>
#include <cstdint>
#include <vector>

#include "netemu/topology/machine.hpp"
#include "netemu/util/cancel.hpp"
#include "netemu/util/prng.hpp"

namespace netemu {

enum class Arbitration { kFarthestFirst, kFifo, kRandom };

const char* arbitration_name(Arbitration a);

struct BatchStats {
  std::uint64_t makespan = 0;      ///< ticks until the last delivery
  std::uint64_t delivered = 0;     ///< messages delivered (== batch size)
  std::uint64_t total_hops = 0;    ///< sum of path lengths
  double avg_latency = 0.0;        ///< mean delivery tick
  std::uint64_t static_congestion = 0;  ///< max directed-wire load of paths

  double rate() const {
    return makespan == 0 ? 0.0
                         : static_cast<double>(delivered) /
                               static_cast<double>(makespan);
  }

  bool operator==(const BatchStats&) const = default;
};

/// Process-wide simulation-volume counters (scope registry-backed; one add
/// per run_batch, never per tick).  Monotone within a process; pair with
/// scope::process_epoch_unix_s() for reset-safe reads across restarts —
/// the health/stats ops report exactly that pair.
std::uint64_t simulated_ticks_total();
std::uint64_t simulated_batches_total();
std::uint64_t simulated_messages_total();

class PacketSimulator {
 public:
  /// Paths flattened into per-message channel-id sequences.  Built by
  /// prepare()/append() of the simulator that will run it (channel ids are
  /// simulator-specific) and reusable across any number of run_batch calls.
  class PreparedBatch {
   public:
    std::size_t size() const { return seq_off_.size() - 1; }
    std::uint64_t total_hops() const { return seq_.size(); }
    std::uint64_t static_congestion() const { return static_congestion_; }

    /// Pre-size for `messages` more appends totalling ~`total_hops` hops
    /// (a hint; appends beyond it just grow normally).  Batch-building is
    /// the allocation-heaviest part of a throughput trial, so callers that
    /// know the message count reserve up front instead of doubling.
    void reserve(std::size_t messages, std::size_t total_hops) {
      seq_off_.reserve(seq_off_.size() + messages);
      seq_.reserve(seq_.size() + total_hops);
    }

   private:
    friend class PacketSimulator;
    std::vector<std::uint32_t> seq_;           // concatenated channel ids
    std::vector<std::uint32_t> seq_off_{0};    // per-message offsets, size m+1
    std::vector<std::uint32_t> load_;          // per-channel static load
    std::uint64_t static_congestion_ = 0;
  };

  explicit PacketSimulator(const Machine& machine,
                           Arbitration arbitration = Arbitration::kFarthestFirst);

  /// Flatten full vertex paths into channel sequences (throws if a path uses
  /// a missing edge).  Paths of length <= 1 contribute no hops.
  PreparedBatch prepare(const std::vector<std::vector<Vertex>>& paths) const;

  /// Append one more routed path to an existing batch (batch-doubling
  /// top-up); static congestion is maintained incrementally.
  void append(PreparedBatch& batch, const std::vector<Vertex>& path) const;

  /// Route a prepared batch to completion.  rng feeds the random arbitration
  /// policy only.  Thread-safe: const, all mutable state is call-local, so
  /// one simulator can serve concurrent trials.
  ///
  /// Cancellation: `cancel` is polled every kCancelCheckTicks ticks; when it
  /// fires the partial simulation volume is still recorded and the call
  /// raises CancelledError — the run stops within one check quantum.  A
  /// never-firing (or default/null) token leaves the result bit-identical
  /// to an uncancellable run (tests/sim_golden_test.cpp).
  BatchStats run_batch(const PreparedBatch& batch, Prng& rng,
                       const CancelToken& cancel = {}) const;

  /// Convenience wrapper: prepare + run in one call.
  BatchStats run_batch(const std::vector<std::vector<Vertex>>& paths,
                       Prng& rng, const CancelToken& cancel = {}) const;

  std::size_t num_channels() const { return channel_cap_.size(); }

 private:
  std::uint32_t channel_of(Vertex u, Vertex v) const;

  template <class PriorityFactory>
  BatchStats run_batch_impl(const PreparedBatch& batch,
                            const PriorityFactory& make_priority,
                            const std::uint32_t* rand_key_by_msg,
                            const CancelToken& cancel) const;

  const Machine& machine_;
  Arbitration arbitration_;
  // Directed channel table: channel id = arc slot in a flattened per-vertex
  // layout; capacity = edge multiplicity.
  std::vector<std::size_t> arc_base_;          // per-vertex offset
  std::vector<Vertex> arc_to_;                 // channel -> head vertex
  std::vector<std::uint32_t> channel_cap_;     // channel -> wires
  std::vector<Vertex> channel_tail_;           // channel -> tail vertex
  bool all_unit_cap_ = false;                  // every channel a single wire
};

}  // namespace netemu
