#pragma once
// Cycle-accurate store-and-forward packet simulator.
//
// Model (matches the paper's accounting in Theorem 6):
//  * one message crosses a wire per tick and per direction; an edge of
//    multiplicity m is m parallel wires;
//  * a machine may additionally impose a per-node forwarding capacity
//    (weak machines, the bus hub);
//  * all messages of a batch are present at tick 0 and the batch's makespan
//    is the delivery time of the last one — bandwidth is then
//    messages / makespan in the large-batch limit.
//
// Contention is resolved by an arbitration policy; farthest-remaining-first
// is the default (it is the policy family behind the O(congestion+dilation)
// routing theorem the paper leans on), FIFO and random are ablation knobs.

#include <cstdint>
#include <vector>

#include "netemu/topology/machine.hpp"
#include "netemu/util/prng.hpp"

namespace netemu {

enum class Arbitration { kFarthestFirst, kFifo, kRandom };

const char* arbitration_name(Arbitration a);

struct BatchStats {
  std::uint64_t makespan = 0;      ///< ticks until the last delivery
  std::uint64_t delivered = 0;     ///< messages delivered (== batch size)
  std::uint64_t total_hops = 0;    ///< sum of path lengths
  double avg_latency = 0.0;        ///< mean delivery tick
  std::uint64_t static_congestion = 0;  ///< max directed-wire load of paths

  double rate() const {
    return makespan == 0 ? 0.0
                         : static_cast<double>(delivered) /
                               static_cast<double>(makespan);
  }
};

class PacketSimulator {
 public:
  explicit PacketSimulator(const Machine& machine,
                           Arbitration arbitration = Arbitration::kFarthestFirst);

  /// Route a batch of full vertex paths to completion.  Paths of length <= 1
  /// deliver instantly.  rng feeds the random arbitration policy only.
  BatchStats run_batch(const std::vector<std::vector<Vertex>>& paths,
                       Prng& rng);

  std::size_t num_channels() const { return channel_cap_.size(); }

 private:
  std::uint32_t channel_of(Vertex u, Vertex v) const;

  const Machine& machine_;
  Arbitration arbitration_;
  // Directed channel table: channel id = arc slot in a flattened per-vertex
  // layout; capacity = edge multiplicity.
  std::vector<std::size_t> arc_base_;          // per-vertex offset
  std::vector<Vertex> arc_to_;                 // channel -> head vertex
  std::vector<std::uint32_t> channel_cap_;     // channel -> wires
  std::vector<Vertex> channel_tail_;           // channel -> tail vertex
};

}  // namespace netemu
