#include "netemu/routing/bfs_router.hpp"

#include <cassert>
#include <limits>
#include <stdexcept>

namespace netemu {

namespace {
constexpr std::uint16_t kFar = std::numeric_limits<std::uint16_t>::max();
}

BfsRouter::BfsRouter(const Machine& machine, bool spread,
                     std::size_t cache_budget_bytes)
    : machine_(machine),
      spread_(spread),
      cache_budget_entries_(cache_budget_bytes / sizeof(std::uint16_t)) {}

const std::vector<std::uint16_t>& BfsRouter::distance_field(Vertex dst) {
  const auto it = fields_.find(dst);
  if (it != fields_.end()) return it->second;

  const Multigraph& g = machine_.graph;
  const std::size_t n = g.num_vertices();
  if (cached_entries_ + n > cache_budget_entries_) {
    fields_.clear();
    cached_entries_ = 0;
  }
  std::vector<std::uint16_t> dist(n, kFar);
  std::vector<Vertex> queue;
  queue.reserve(n);
  dist[dst] = 0;
  queue.push_back(dst);
  std::size_t head = 0;
  while (head < queue.size()) {
    const Vertex u = queue[head++];
    const std::uint16_t du = dist[u];
    for (const Arc& a : g.neighbors(u)) {
      if (dist[a.to] == kFar) {
        dist[a.to] = static_cast<std::uint16_t>(du + 1);
        queue.push_back(a.to);
      }
    }
  }
  cached_entries_ += n;
  return fields_.emplace(dst, std::move(dist)).first->second;
}

std::vector<Vertex> BfsRouter::route(Vertex src, Vertex dst, Prng& rng) {
  if (src == dst) return {src};
  const auto& dist = distance_field(dst);
  if (dist[src] == kFar) {
    throw std::runtime_error("BfsRouter: destination unreachable");
  }
  std::vector<Vertex> path;
  path.reserve(dist[src] + 1u);
  path.push_back(src);
  Vertex cur = src;
  while (cur != dst) {
    const std::uint16_t want = static_cast<std::uint16_t>(dist[cur] - 1);
    Vertex next = kNoVertex;
    if (spread_) {
      // Reservoir-sample uniformly among descent neighbors.
      std::uint32_t seen = 0;
      for (const Arc& a : machine_.graph.neighbors(cur)) {
        if (dist[a.to] == want && rng.below(++seen) == 0) next = a.to;
      }
    } else {
      for (const Arc& a : machine_.graph.neighbors(cur)) {
        if (dist[a.to] == want && (next == kNoVertex || a.to < next)) {
          next = a.to;
        }
      }
    }
    assert(next != kNoVertex);
    path.push_back(next);
    cur = next;
  }
  return path;
}

}  // namespace netemu
