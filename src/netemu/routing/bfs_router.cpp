#include "netemu/routing/bfs_router.hpp"

#include <cassert>
#include <limits>
#include <stdexcept>
#include <utility>

namespace netemu {

namespace {
constexpr std::uint16_t kFar = std::numeric_limits<std::uint16_t>::max();
}

BfsRouter::BfsRouter(const Machine& machine, bool spread,
                     std::size_t cache_budget_bytes)
    : machine_(machine),
      spread_(spread),
      cache_budget_entries_(cache_budget_bytes / sizeof(std::uint16_t)) {}

std::uint64_t BfsRouter::cache_hits() const {
  std::lock_guard lock(mutex_);
  return hits_;
}

std::uint64_t BfsRouter::cache_misses() const {
  std::lock_guard lock(mutex_);
  return misses_;
}

std::uint64_t BfsRouter::cache_evictions() const {
  std::lock_guard lock(mutex_);
  return evictions_;
}

std::shared_ptr<const BfsRouter::Field> BfsRouter::distance_field(Vertex dst) {
  {
    std::lock_guard lock(mutex_);
    const auto it = fields_.find(dst);
    if (it != fields_.end()) {
      ++hits_;
      return it->second;
    }
    ++misses_;
  }

  // Compute outside the lock: a BFS over a large machine takes milliseconds,
  // and concurrent misses on the same destination just redo identical work.
  const Multigraph& g = machine_.graph;
  const std::size_t n = g.num_vertices();
  auto field = std::make_shared<Field>(n, kFar);
  Field& dist = *field;
  std::vector<Vertex> queue;
  queue.reserve(n);
  dist[dst] = 0;
  queue.push_back(dst);
  std::size_t head = 0;
  while (head < queue.size()) {
    // Field construction over a 2^24-vertex machine takes long enough to
    // matter for drain; poll the token at the standard amortized cadence.
    if ((head & (kCancelCheckTicks - 1)) == 0) cancel_.check();
    const Vertex u = queue[head++];
    const std::uint16_t du = dist[u];
    for (const Arc& a : g.neighbors(u)) {
      if (dist[a.to] == kFar) {
        dist[a.to] = static_cast<std::uint16_t>(du + 1);
        queue.push_back(a.to);
      }
    }
  }

  std::lock_guard lock(mutex_);
  const auto [it, inserted] = fields_.emplace(dst, field);
  if (!inserted) return it->second;  // another thread won the race
  eviction_order_.push_back(dst);
  cached_entries_ += n;
  // Evict oldest-first until back under budget; in-flight routes keep their
  // field alive through the shared_ptr they already hold.  Always keep the
  // entry just inserted.
  while (cached_entries_ > cache_budget_entries_ &&
         eviction_order_.size() > 1) {
    const Vertex victim = eviction_order_.front();
    eviction_order_.pop_front();
    const auto vit = fields_.find(victim);
    if (vit != fields_.end()) {
      cached_entries_ -= vit->second->size();
      fields_.erase(vit);
      ++evictions_;
    }
  }
  return field;
}

std::vector<Vertex> BfsRouter::route(Vertex src, Vertex dst, Prng& rng) {
  std::vector<Vertex> path;
  route_append(src, dst, rng, path);
  return path;
}

void BfsRouter::route_append(Vertex src, Vertex dst, Prng& rng,
                             std::vector<Vertex>& path) {
  path.clear();
  if (src == dst) {
    path.push_back(src);
    return;
  }
  const std::shared_ptr<const Field> field = distance_field(dst);
  const Field& dist = *field;
  if (dist[src] == kFar) {
    throw std::runtime_error("BfsRouter: destination unreachable");
  }
  path.reserve(dist[src] + 1u);
  path.push_back(src);
  Vertex cur = src;
  while (cur != dst) {
    const std::uint16_t want = static_cast<std::uint16_t>(dist[cur] - 1);
    Vertex next = kNoVertex;
    if (spread_) {
      // Reservoir-sample uniformly among descent neighbors.
      std::uint32_t seen = 0;
      for (const Arc& a : machine_.graph.neighbors(cur)) {
        if (dist[a.to] == want && rng.below(++seen) == 0) next = a.to;
      }
    } else {
      for (const Arc& a : machine_.graph.neighbors(cur)) {
        if (dist[a.to] == want && (next == kNoVertex || a.to < next)) {
          next = a.to;
        }
      }
    }
    assert(next != kNoVertex);
    path.push_back(next);
    cur = next;
  }
}

}  // namespace netemu
