#pragma once
// Operational bandwidth measurement: β(M, π) is the expected delivery rate
// of a large batch of π-distributed messages (the m → ∞ limit of m / T(m)).
//
// The meter grows the batch until the makespan dwarfs both the machine's
// diameter and a floor, so the startup/drain transient cannot bias the rate,
// then reports the median rate over independent trials.
//
// Determinism contract: measure_throughput draws exactly ONE value from the
// caller's rng; everything else derives from Prng::stream(base, i) —
// substream 0 feeds the diameter sweep, substream 1+t feeds trial t (batch
// sampling, routing, and arbitration randomness alike).  Trial 0 runs first
// and alone to calibrate the batch size m (doubling, reusing already-routed
// paths and routing only the top-up); trials 1..T-1 then run at that fixed m
// — concurrently on options.pool when set — and results are collected by
// trial index.  The outcome is therefore bit-identical at any thread count
// to the serial order "trial 0, trial 1, ..., trial T-1".
//
// Routers used with a concurrent pool must tolerate concurrent route()
// calls; every bundled router is stateless per call except BfsRouter, whose
// distance-field cache is internally synchronized.

#include <cstddef>
#include <vector>

#include "netemu/routing/packet_sim.hpp"
#include "netemu/routing/router.hpp"
#include "netemu/traffic/distribution.hpp"
#include "netemu/util/thread_pool.hpp"

namespace netemu {

struct ThroughputOptions {
  std::size_t messages_per_processor = 8;  ///< initial batch sizing
  std::size_t max_messages = 1u << 17;     ///< hard cap on batch growth
  std::uint64_t min_makespan = 256;        ///< floor (also >= 4 * diameter)
  unsigned trials = 3;
  /// Run only trials [trial_lo, trial_hi) of the full sweep (trial_hi == 0
  /// means trials).  The calibration pass (trial 0) ALWAYS runs so every
  /// shard derives the same batch size m from the same substream; a shard
  /// with trial_lo > 0 simply discards trial 0's stats and ticks, so summing
  /// simulated ticks across disjoint shards reproduces the unsharded total.
  /// Concatenating shard trial_rates in trial-index order is bit-identical
  /// to the unsharded sweep (see docs/SCATTER.md).
  unsigned trial_lo = 0;
  unsigned trial_hi = 0;
  Arbitration arbitration = Arbitration::kFarthestFirst;
  /// Run trials 1..T-1 concurrently on this pool (collaboratively: safe even
  /// when called from inside one of the pool's own tasks).  nullptr = serial.
  ThreadPool* pool = nullptr;
  /// Cooperative cancellation (docs/LIFECYCLE.md).  Cancellation during the
  /// calibration sweep raises CancelledError (no trial has landed yet);
  /// cancellation after >= 1 trial completed returns the completed trials as
  /// a degraded partial result instead of throwing.  A null token costs
  /// nothing and cannot fire.
  CancelToken cancel{};
};

struct ThroughputResult {
  double rate = 0.0;        ///< β̂: median delivery rate over trials
  double rate_min = 0.0;    ///< slowest trial (spread floor)
  double rate_max = 0.0;    ///< fastest trial (spread ceiling)
  std::size_t messages = 0; ///< batch size finally used
  BatchStats last;          ///< stats of the last trial (highest index)
  std::vector<double> trial_rates;  ///< rates of the COMPLETED trials only
  std::uint64_t total_ticks = 0;    ///< ticks simulated, calibration included
  /// True when cancellation interrupted the sweep mid-way: rate/min/max/last
  /// summarize only the trials_completed trials that finished.  False means
  /// every requested trial ran, even if the token fired afterwards.
  bool degraded = false;
  unsigned trials_completed = 0;    ///< trials that ran to completion
  /// The trial range this result covers: [trial_lo, trial_lo + trial_rates
  /// .size()).  A degraded ranged result is prefix-truncated to stay
  /// contiguous, so a merger can never double-count a trial.
  unsigned trial_lo = 0;
};

ThroughputResult measure_throughput(const Machine& machine, Router& router,
                                    const TrafficDistribution& traffic,
                                    Prng& rng,
                                    const ThroughputOptions& options = {});

}  // namespace netemu
