#pragma once
// Operational bandwidth measurement: β(M, π) is the expected delivery rate
// of a large batch of π-distributed messages (the m → ∞ limit of m / T(m)).
//
// The meter grows the batch until the makespan dwarfs both the machine's
// diameter and a floor, so the startup/drain transient cannot bias the rate,
// then reports the median rate over independent trials.

#include <cstddef>

#include "netemu/routing/packet_sim.hpp"
#include "netemu/routing/router.hpp"
#include "netemu/traffic/distribution.hpp"

namespace netemu {

struct ThroughputOptions {
  std::size_t messages_per_processor = 8;  ///< initial batch sizing
  std::size_t max_messages = 1u << 17;     ///< hard cap on batch growth
  std::uint64_t min_makespan = 256;        ///< floor (also >= 4 * diameter)
  unsigned trials = 3;
  Arbitration arbitration = Arbitration::kFarthestFirst;
};

struct ThroughputResult {
  double rate = 0.0;        ///< β̂: median delivery rate over trials
  std::size_t messages = 0; ///< batch size finally used
  BatchStats last;          ///< stats of the last trial
};

ThroughputResult measure_throughput(const Machine& machine, Router& router,
                                    const TrafficDistribution& traffic,
                                    Prng& rng,
                                    const ThroughputOptions& options = {});

}  // namespace netemu
