#include "netemu/routing/packet_sim.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "netemu/scope/metrics.hpp"

namespace netemu {

namespace {

// Simulation-volume counters (scope registry; see docs/SCOPE.md).  Adds
// happen once per run_batch — batch granularity, never per tick — so the
// tick loop's hot path is untouched.
scope::Counter& sim_ticks_counter() {
  static scope::Counter& c = scope::Registry::global().counter(
      "netemu_sim_ticks_total",
      "Packet-simulator ticks executed since process start");
  return c;
}

scope::Counter& sim_batches_counter() {
  static scope::Counter& c = scope::Registry::global().counter(
      "netemu_sim_batches_total", "run_batch calls since process start");
  return c;
}

scope::Counter& sim_messages_counter() {
  static scope::Counter& c = scope::Registry::global().counter(
      "netemu_sim_messages_total",
      "Messages delivered by run_batch since process start");
  return c;
}

void record_batch_volume(std::uint64_t ticks, std::uint64_t messages) {
  sim_ticks_counter().add(ticks);
  sim_batches_counter().inc();
  sim_messages_counter().add(messages);
}

// Arbitration policies as key functors: each maps an active-list SLOT to a
// packed 64-bit priority key (smaller == higher priority), snapshotted when
// the slot is scattered into its bucket.  Selection is then a branchless
// integer min — no pointer chasing inside nth_element comparators.
//
// Slots, not message ids: compaction is stable and the initial slot order
// is message order, so the slot in the key's low 32 bits doubles as the
// deterministic message-index tie-break.  All three orders are strict and
// total, so the winner SET per channel is deterministic (and identical
// whether selected by nth_element or a linear min-scan), matching the
// reference comparators "greater remaining, tie smaller index" /
// "smaller index" / "smaller key, tie smaller index" exactly.
struct FarthestFirstKey {
  const std::uint32_t* remaining;  // per-slot hops still to go
  std::uint64_t operator()(std::uint32_t j) const {
    // ~remaining: more hops left -> smaller key -> wins.
    return (static_cast<std::uint64_t>(~remaining[j]) << 32) | j;
  }
};

struct FifoKey {
  std::uint64_t operator()(std::uint32_t j) const { return j; }
};

struct RandomKey {
  const std::uint32_t* key;  // per-slot arbitration keys
  std::uint64_t operator()(std::uint32_t j) const {
    return (static_cast<std::uint64_t>(key[j]) << 32) | j;
  }
};

constexpr std::uint32_t slot_of(std::uint64_t packed) {
  return static_cast<std::uint32_t>(packed);
}

}  // namespace

std::uint64_t simulated_ticks_total() { return sim_ticks_counter().value(); }

std::uint64_t simulated_batches_total() {
  return sim_batches_counter().value();
}

std::uint64_t simulated_messages_total() {
  return sim_messages_counter().value();
}

const char* arbitration_name(Arbitration a) {
  switch (a) {
    case Arbitration::kFarthestFirst: return "farthest-first";
    case Arbitration::kFifo: return "fifo";
    case Arbitration::kRandom: return "random";
  }
  return "?";
}

PacketSimulator::PacketSimulator(const Machine& machine,
                                 Arbitration arbitration)
    : machine_(machine), arbitration_(arbitration) {
  const Multigraph& g = machine.graph;
  const std::size_t n = g.num_vertices();
  arc_base_.assign(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) {
    arc_base_[v + 1] = arc_base_[v] + g.num_neighbors(static_cast<Vertex>(v));
  }
  const std::size_t channels = arc_base_[n];
  arc_to_.resize(channels);
  channel_cap_.resize(channels);
  channel_tail_.resize(channels);
  for (std::size_t v = 0; v < n; ++v) {
    // Sort each vertex's outgoing channels by head so channel_of can
    // binary-search.
    auto arcs = g.neighbors(static_cast<Vertex>(v));
    std::vector<Arc> sorted(arcs.begin(), arcs.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const Arc& a, const Arc& b) { return a.to < b.to; });
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      const std::size_t c = arc_base_[v] + i;
      arc_to_[c] = sorted[i].to;
      channel_cap_[c] = sorted[i].mult;
      channel_tail_[c] = static_cast<Vertex>(v);
    }
  }
  all_unit_cap_ = std::all_of(channel_cap_.begin(), channel_cap_.end(),
                              [](std::uint32_t cap) { return cap == 1; });
}

std::uint32_t PacketSimulator::channel_of(Vertex u, Vertex v) const {
  const auto begin = arc_to_.begin() + static_cast<std::ptrdiff_t>(arc_base_[u]);
  const auto end = arc_to_.begin() + static_cast<std::ptrdiff_t>(arc_base_[u + 1]);
  const auto it = std::lower_bound(begin, end, v);
  if (it == end || *it != v) {
    throw std::runtime_error("PacketSimulator: path uses a missing edge");
  }
  return static_cast<std::uint32_t>(it - arc_to_.begin());
}

void PacketSimulator::append(PreparedBatch& batch,
                             const std::vector<Vertex>& path) const {
  if (batch.load_.empty()) batch.load_.assign(channel_cap_.size(), 0);
  for (std::size_t j = 0; j + 1 < path.size(); ++j) {
    const std::uint32_t c = channel_of(path[j], path[j + 1]);
    batch.seq_.push_back(c);
    batch.static_congestion_ =
        std::max<std::uint64_t>(batch.static_congestion_, ++batch.load_[c]);
  }
  batch.seq_off_.push_back(static_cast<std::uint32_t>(batch.seq_.size()));
}

PacketSimulator::PreparedBatch PacketSimulator::prepare(
    const std::vector<std::vector<Vertex>>& paths) const {
  PreparedBatch batch;
  batch.load_.assign(channel_cap_.size(), 0);
  batch.seq_off_.reserve(paths.size() + 1);
  std::size_t total = 0;
  for (const auto& p : paths) total += p.empty() ? 0 : p.size() - 1;
  batch.seq_.reserve(total);
  for (const auto& p : paths) append(batch, p);
  return batch;
}

namespace {
#if defined(__GNUC__) || defined(__clang__)
inline void prefetch_rw(const void* a) { __builtin_prefetch(a, 1, 3); }
#else
inline void prefetch_rw(const void*) {}
#endif
}  // namespace

template <class PriorityFactory>
BatchStats PacketSimulator::run_batch_impl(
    const PreparedBatch& batch, const PriorityFactory& make_priority,
    const std::uint32_t* rand_key_by_msg, const CancelToken& cancel) const {
  cancel.check();  // a pre-cancelled batch never starts
  BatchStats stats;
  const std::size_t m = batch.size();
  const std::uint32_t* seq = batch.seq_.data();
  const std::uint32_t* seq_off = batch.seq_off_.data();
  stats.static_congestion = batch.static_congestion_;
  stats.total_hops = batch.seq_.size();
  stats.delivered = m;

  // Active messages as parallel slot arrays (struct-of-arrays): the per-tick
  // passes then read sequentially instead of chasing per-message state
  // through m-sized arrays.  Stable compaction keeps slots sorted by message
  // id, so slot order doubles as the deterministic tie-break order and the
  // random keys travel with their slot.
  const bool has_key = rand_key_by_msg != nullptr;
  std::size_t na = 0;
  std::vector<std::uint32_t> act_cursor(m);  // absolute index into seq
  std::vector<std::uint32_t> act_rem(m);     // hops still to go
  std::vector<std::uint32_t> act_cur(m);     // seq[act_cursor], cached
  std::vector<std::uint32_t> act_key(has_key ? m : 0);
  for (std::uint32_t i = 0; i < m; ++i) {
    const std::uint32_t len = seq_off[i + 1] - seq_off[i];
    if (len == 0) continue;  // zero-hop: delivered at tick 0 with latency 0
    act_cursor[na] = seq_off[i];
    act_rem[na] = len;
    act_cur[na] = seq[seq_off[i]];
    if (has_key) act_key[na] = rand_key_by_msg[i];
    ++na;
  }

  // The key functors read act_rem / act_key, which this loop owns and keeps
  // current — hence the factory indirection.  The vectors never reallocate,
  // so the captured pointers stay valid.
  const auto priority_key = make_priority(act_rem.data(), act_key.data());

  // Flat counting-sort scratch, sized once for the whole run.  count[] is
  // maintained all-zero between ticks (only touched channels are reset), so
  // a tick costs O(active + touched), never O(channels).
  constexpr std::uint32_t kNoBucket = 0xFFFFFFFFu;
  const std::size_t num_ch = channel_cap_.size();
  // Per-channel request count (low 32 bits) and bucket offset (high 32
  // bits) share one word, so the per-slot hot passes do a single random
  // access per channel instead of two.
  std::vector<std::uint64_t> count_base(num_ch, 0);
  std::vector<std::uint32_t> touched;
  touched.reserve(std::min(num_ch, na) + 1);
  std::vector<std::uint32_t> contended;      // channels with cnt > cap
  std::vector<std::uint32_t> contended_cnt;  // their request counts
  const bool node_capped_early = !machine_.forward_cap.empty();
  const bool unit_fast = !node_capped_early && all_unit_cap_;
  std::vector<std::uint64_t> bucket(unit_fast ? 0 : na);  // grouped packed keys

  const bool node_capped = node_capped_early;
  const std::size_t num_nodes = node_capped ? machine_.graph.num_vertices() : 0;
  std::vector<std::uint32_t> node_count(num_nodes, 0);
  std::vector<std::uint32_t> node_base(num_nodes);
  std::vector<Vertex> touched_nodes;
  std::vector<std::uint64_t> winners(node_capped ? na : 0);
  std::vector<std::uint64_t> node_bucket(node_capped ? na : 0);
  if (node_capped) touched_nodes.reserve(std::min(num_nodes, na) + 1);

  std::uint64_t tick = 0;
  double latency_sum = 0.0;
  std::uint32_t delivered_this_tick = 0;

  const auto advance = [&](std::uint32_t j) {
    const std::uint32_t cursor = ++act_cursor[j];
    if (--act_rem[j] == 0) {
      latency_sum += static_cast<double>(tick);
      stats.makespan = tick;
      ++delivered_this_tick;
    } else {
      act_cur[j] = seq[cursor];
    }
  };

  if (unit_fast) {
    // Unit-capacity machines (every channel a single wire -- mesh,
    // butterfly, tree, ...): a requested channel advances exactly one
    // message, the one with the minimum priority key, so a running min held
    // directly in count_base replaces counting, bucketing and selection.
    // And because next tick's keys are final once this tick's advances are
    // done, the mins for tick T+1 are computed in the same end-of-tick pass
    // that compacts the slot arrays -- ONE sweep over the slots per tick.
    // Keys are biased by +1 so 0 keeps meaning "channel not requested" (no
    // key reaches ~0, see the key functors, so the bias cannot wrap).
    const auto sweep_min = [&](std::uint32_t j) {
      const std::uint32_t c = act_cur[j];
      const std::uint64_t k = priority_key(j) + 1;
      const std::uint64_t v = count_base[c];
      if (v == 0) {
        touched.push_back(c);
        count_base[c] = k;
      } else if (k < v) {
        count_base[c] = k;
      }
    };
    for (std::size_t j = 0; j < na; ++j) {
      if (j + 8 < na) prefetch_rw(&count_base[act_cur[j + 8]]);
      sweep_min(static_cast<std::uint32_t>(j));
    }
    while (!touched.empty()) {
      ++tick;
      // Amortized cancellation poll: one AND + branch per tick, a clock /
      // flag read every kCancelCheckTicks.  The partial volume is recorded
      // before unwinding so reclaimed-CPU accounting sees the ticks burned.
      if ((tick & (kCancelCheckTicks - 1)) == 0 && cancel.cancelled()) {
        record_batch_volume(tick, static_cast<std::uint64_t>(m - na));
        throw CancelledError("run_batch cancelled at tick " +
                             std::to_string(tick));
      }
      delivered_this_tick = 0;
      for (const std::uint32_t c : touched) {
        advance(slot_of(count_base[c] - 1));
        count_base[c] = 0;  // restore the all-zero invariant
      }
      touched.clear();
      if (delivered_this_tick == 0) {
        for (std::size_t j = 0; j < na; ++j) {
          if (j + 8 < na) prefetch_rw(&count_base[act_cur[j + 8]]);
          sweep_min(static_cast<std::uint32_t>(j));
        }
      } else {
        // Compact stably while recomputing the mins: slot order stays
        // message order (the deterministic tie-break), and keys embed the
        // POST-compaction slot index -- exactly what selection reads.
        std::size_t keep = 0;
        for (std::size_t j = 0; j < na; ++j) {
          if (j + 8 < na) prefetch_rw(&count_base[act_cur[j + 8]]);
          if (act_rem[j] == 0) continue;
          act_cursor[keep] = act_cursor[j];
          act_rem[keep] = act_rem[j];
          act_cur[keep] = act_cur[j];
          if (has_key) act_key[keep] = act_key[j];
          sweep_min(static_cast<std::uint32_t>(keep));
          ++keep;
        }
        na = keep;
      }
    }
    record_batch_volume(tick, m);
    stats.avg_latency = m == 0 ? 0.0 : latency_sum / static_cast<double>(m);
    return stats;
  }

  // General machines (multi-wire channels and/or node forwarding caps):
  // count the initial tick's requests; later ticks recount during the
  // compaction pass (the request channels for tick T+1 are exactly act_cur
  // after tick T's advances), saving a full pass per tick.
  for (std::size_t j = 0; j < na; ++j) {
    const std::uint32_t c = act_cur[j];
    if (static_cast<std::uint32_t>(count_base[c]++) == 0) touched.push_back(c);
  }

  while (na > 0) {
    ++tick;
    if ((tick & (kCancelCheckTicks - 1)) == 0 && cancel.cancelled()) {
      record_batch_volume(tick, static_cast<std::uint64_t>(m - na));
      throw CancelledError("run_batch cancelled at tick " +
                           std::to_string(tick));
    }
    delivered_this_tick = 0;

    // Bucket offsets.  Without a node cap, only CONTENDED channels
    // (cnt > cap) need arbitration -- everyone else advances in place during
    // the scatter pass, skipping bucketing and selection entirely.  That is
    // the common case for most of a batch's drain.  With a node cap every
    // channel winner must still face the per-node round, so all go through
    // buckets.
    contended.clear();
    contended_cnt.clear();
    std::uint32_t running = 0;
    // The count half is zeroed here; bucketed channels reuse it as an
    // ascending scatter cursor (re-zeroed after arbitration), so slots on
    // uncontended channels need no store at all in the scatter pass.
    if (!node_capped) {
      for (const std::uint32_t c : touched) {
        const std::uint32_t cnt = static_cast<std::uint32_t>(count_base[c]);
        std::uint32_t b = kNoBucket;
        if (cnt > channel_cap_[c]) {
          b = running;
          running += cnt;
          contended.push_back(c);
          contended_cnt.push_back(cnt);
        }
        count_base[c] = static_cast<std::uint64_t>(b) << 32;
      }
    } else {
      for (const std::uint32_t c : touched) {
        const std::uint32_t cnt = static_cast<std::uint32_t>(count_base[c]);
        count_base[c] = static_cast<std::uint64_t>(running) << 32;
        running += cnt;
        contended.push_back(c);
        contended_cnt.push_back(cnt);
      }
    }
    // Scatter pass: advance uncontended slots in place; snapshot the rest
    // as packed priority keys in their channel's bucket slice, cursored by
    // the count half.
    for (std::size_t j = 0; j < na; ++j) {
      if (j + 8 < na) prefetch_rw(&count_base[act_cur[j + 8]]);
      const std::uint32_t c = act_cur[j];
      const std::uint64_t v = count_base[c];
      const std::uint32_t b = static_cast<std::uint32_t>(v >> 32);
      if (b == kNoBucket) {
        advance(static_cast<std::uint32_t>(j));  // read-only: no store
      } else {
        bucket[b + static_cast<std::uint32_t>(v)] =
            priority_key(static_cast<std::uint32_t>(j));
        count_base[c] = v + 1;  // cursor in the count half
      }
    }

    // Arbitrate each bucketed channel in place on its slice.  Keys were
    // snapshotted before any advance of a bucketed slot (a slot sits in at
    // most one bucket), so selection over them matches the reference
    // live-comparator order exactly.
    if (!node_capped) {
      for (std::size_t t = 0; t < contended.size(); ++t) {
        std::uint64_t* req =
            bucket.data() + (count_base[contended[t]] >> 32);
        count_base[contended[t]] = 0;  // restore the all-zero invariant
        const std::uint32_t cnt = contended_cnt[t];
        const std::uint32_t cap = channel_cap_[contended[t]];
        if (cap == 1) {
          // Unit multiplicity dominates: a linear min-scan picks the same
          // unique winner as nth_element without its overhead.
          std::uint64_t best = req[0];
          for (std::uint32_t k = 1; k < cnt; ++k) {
            if (req[k] < best) best = req[k];
          }
          advance(slot_of(best));
        } else {
          std::nth_element(req, req + (cap - 1), req + cnt);
          for (std::uint32_t k = 0; k < cap; ++k) advance(slot_of(req[k]));
        }
      }
    } else {
      // Channel winners feed a second counting-sort round over tail nodes
      // (weak machines: a node forwards at most forward_cap messages/tick).
      std::uint32_t nw = 0;
      for (std::size_t t = 0; t < contended.size(); ++t) {
        std::uint64_t* req =
            bucket.data() + (count_base[contended[t]] >> 32);
        count_base[contended[t]] = 0;  // restore the all-zero invariant
        std::uint32_t cnt = contended_cnt[t];
        const std::uint32_t cap = channel_cap_[contended[t]];
        if (cnt > cap) {
          if (cap == 1) {
            std::uint64_t best = req[0];
            for (std::uint32_t k = 1; k < cnt; ++k) {
              if (req[k] < best) best = req[k];
            }
            req[0] = best;
          } else {
            std::nth_element(req, req + (cap - 1), req + cnt);
          }
          cnt = cap;
        }
        for (std::uint32_t k = 0; k < cnt; ++k) winners[nw++] = req[k];
      }

      // Keys stay valid through the node round: channel winners are not
      // advanced until node arbitration completes.
      touched_nodes.clear();
      for (std::uint32_t k = 0; k < nw; ++k) {
        const Vertex tail = channel_tail_[act_cur[slot_of(winners[k])]];
        if (node_count[tail]++ == 0) touched_nodes.push_back(tail);
      }
      running = 0;
      for (const Vertex v : touched_nodes) {
        node_base[v] = running;
        running += node_count[v];
        node_count[v] = 0;
      }
      for (std::uint32_t k = 0; k < nw; ++k) {
        const Vertex tail = channel_tail_[act_cur[slot_of(winners[k])]];
        node_bucket[node_base[tail] + node_count[tail]++] = winners[k];
      }
      for (const Vertex v : touched_nodes) {
        std::uint64_t* req = node_bucket.data() + node_base[v];
        std::uint32_t cnt = node_count[v];
        node_count[v] = 0;
        const std::uint32_t cap = machine_.forward_cap[v];
        if (cap != kUnlimitedForward && cnt > cap) {
          std::nth_element(req, req + (cap - 1), req + cnt);
          cnt = cap;
        }
        for (std::uint32_t k = 0; k < cnt; ++k) advance(slot_of(req[k]));
      }
    }

    // Compaction + recount, fused: one pass rebuilds next tick's request
    // counts while (only when something delivered) compacting the slot
    // arrays stably in place.  Stability keeps slot order == message order,
    // which the packed keys use as the deterministic tie-break.
    touched.clear();
    if (delivered_this_tick > 0) {
      std::size_t keep = 0;
      for (std::size_t j = 0; j < na; ++j) {
        if (j + 8 < na) prefetch_rw(&count_base[act_cur[j + 8]]);
        if (act_rem[j] > 0) {
          const std::uint32_t c = act_cur[j];
          act_cursor[keep] = act_cursor[j];
          act_rem[keep] = act_rem[j];
          act_cur[keep] = c;
          if (has_key) act_key[keep] = act_key[j];
          ++keep;
          if (static_cast<std::uint32_t>(count_base[c]++) == 0) {
            touched.push_back(c);
          }
        }
      }
      na = keep;
    } else {
      for (std::size_t j = 0; j < na; ++j) {
        if (j + 8 < na) prefetch_rw(&count_base[act_cur[j + 8]]);
        const std::uint32_t c = act_cur[j];
        if (static_cast<std::uint32_t>(count_base[c]++) == 0) {
          touched.push_back(c);
        }
      }
    }
  }

  record_batch_volume(tick, m);
  stats.avg_latency = m == 0 ? 0.0 : latency_sum / static_cast<double>(m);
  return stats;
}

BatchStats PacketSimulator::run_batch(const PreparedBatch& batch, Prng& rng,
                                      const CancelToken& cancel) const {
  switch (arbitration_) {
    case Arbitration::kFifo:
      return run_batch_impl(
          batch,
          [](const std::uint32_t*, const std::uint32_t*) { return FifoKey{}; },
          nullptr, cancel);
    case Arbitration::kRandom: {
      // Keys are drawn per message in index order (zero-hop messages
      // included), matching the documented serial order.
      std::vector<std::uint32_t> rand_key(batch.size());
      for (auto& k : rand_key) k = static_cast<std::uint32_t>(rng());
      return run_batch_impl(
          batch,
          [](const std::uint32_t*, const std::uint32_t* key) {
            return RandomKey{key};
          },
          rand_key.data(), cancel);
    }
    case Arbitration::kFarthestFirst:
      break;
  }
  return run_batch_impl(
      batch,
      [](const std::uint32_t* remaining, const std::uint32_t*) {
        return FarthestFirstKey{remaining};
      },
      nullptr, cancel);
}

BatchStats PacketSimulator::run_batch(
    const std::vector<std::vector<Vertex>>& paths, Prng& rng,
    const CancelToken& cancel) const {
  return run_batch(prepare(paths), rng, cancel);
}

}  // namespace netemu
