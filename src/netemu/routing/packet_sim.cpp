#include "netemu/routing/packet_sim.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace netemu {

const char* arbitration_name(Arbitration a) {
  switch (a) {
    case Arbitration::kFarthestFirst: return "farthest-first";
    case Arbitration::kFifo: return "fifo";
    case Arbitration::kRandom: return "random";
  }
  return "?";
}

PacketSimulator::PacketSimulator(const Machine& machine,
                                 Arbitration arbitration)
    : machine_(machine), arbitration_(arbitration) {
  const Multigraph& g = machine.graph;
  const std::size_t n = g.num_vertices();
  arc_base_.assign(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) {
    arc_base_[v + 1] = arc_base_[v] + g.num_neighbors(static_cast<Vertex>(v));
  }
  const std::size_t channels = arc_base_[n];
  arc_to_.resize(channels);
  channel_cap_.resize(channels);
  channel_tail_.resize(channels);
  for (std::size_t v = 0; v < n; ++v) {
    // Sort each vertex's outgoing channels by head so channel_of can
    // binary-search.
    auto arcs = g.neighbors(static_cast<Vertex>(v));
    std::vector<Arc> sorted(arcs.begin(), arcs.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const Arc& a, const Arc& b) { return a.to < b.to; });
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      const std::size_t c = arc_base_[v] + i;
      arc_to_[c] = sorted[i].to;
      channel_cap_[c] = sorted[i].mult;
      channel_tail_[c] = static_cast<Vertex>(v);
    }
  }
}

std::uint32_t PacketSimulator::channel_of(Vertex u, Vertex v) const {
  const auto begin = arc_to_.begin() + static_cast<std::ptrdiff_t>(arc_base_[u]);
  const auto end = arc_to_.begin() + static_cast<std::ptrdiff_t>(arc_base_[u + 1]);
  const auto it = std::lower_bound(begin, end, v);
  if (it == end || *it != v) {
    throw std::runtime_error("PacketSimulator: path uses a missing edge");
  }
  return static_cast<std::uint32_t>(it - arc_to_.begin());
}

BatchStats PacketSimulator::run_batch(
    const std::vector<std::vector<Vertex>>& paths, Prng& rng) {
  BatchStats stats;
  const std::size_t m = paths.size();

  // Flatten paths into channel sequences.
  std::vector<std::uint32_t> seq;
  std::vector<std::uint32_t> seq_off(m + 1, 0);
  {
    std::size_t total = 0;
    for (const auto& p : paths) total += p.empty() ? 0 : p.size() - 1;
    seq.reserve(total);
  }
  std::vector<std::uint32_t> load(channel_cap_.size(), 0);
  for (std::size_t i = 0; i < m; ++i) {
    const auto& p = paths[i];
    for (std::size_t j = 0; j + 1 < p.size(); ++j) {
      const std::uint32_t c = channel_of(p[j], p[j + 1]);
      seq.push_back(c);
      ++load[c];
    }
    seq_off[i + 1] = static_cast<std::uint32_t>(seq.size());
  }
  for (std::uint32_t l : load) {
    stats.static_congestion = std::max<std::uint64_t>(stats.static_congestion, l);
  }
  stats.total_hops = seq.size();
  stats.delivered = m;

  // Per-message cursor and priority key.
  std::vector<std::uint32_t> pos(m, 0);
  std::vector<std::uint32_t> rand_key(m);
  if (arbitration_ == Arbitration::kRandom) {
    for (auto& k : rand_key) k = static_cast<std::uint32_t>(rng());
  }

  // Messages with empty channel sequence deliver at tick 0 with latency 0.
  std::vector<std::uint32_t> active;
  active.reserve(m);
  for (std::uint32_t i = 0; i < m; ++i) {
    if (seq_off[i + 1] > seq_off[i]) active.push_back(i);
  }

  // earlier-in-order == higher priority
  auto higher_priority = [&](std::uint32_t a, std::uint32_t b) {
    switch (arbitration_) {
      case Arbitration::kFarthestFirst: {
        const std::uint32_t ra = seq_off[a + 1] - seq_off[a] - pos[a];
        const std::uint32_t rb = seq_off[b + 1] - seq_off[b] - pos[b];
        if (ra != rb) return ra > rb;
        return a < b;
      }
      case Arbitration::kFifo:
        return a < b;
      case Arbitration::kRandom:
        if (rand_key[a] != rand_key[b]) return rand_key[a] < rand_key[b];
        return a < b;
    }
    return a < b;
  };

  std::vector<std::vector<std::uint32_t>> channel_req(channel_cap_.size());
  std::vector<std::uint32_t> touched_channels;
  const bool node_capped = !machine_.forward_cap.empty();
  std::vector<std::vector<std::uint32_t>> node_req(
      node_capped ? machine_.graph.num_vertices() : 0);
  std::vector<Vertex> touched_nodes;
  std::vector<std::uint32_t> winners;

  std::uint64_t tick = 0;
  double latency_sum = 0.0;
  while (!active.empty()) {
    ++tick;
    touched_channels.clear();
    for (std::uint32_t msg : active) {
      const std::uint32_t c = seq[seq_off[msg] + pos[msg]];
      if (channel_req[c].empty()) touched_channels.push_back(c);
      channel_req[c].push_back(msg);
    }

    winners.clear();
    for (std::uint32_t c : touched_channels) {
      auto& req = channel_req[c];
      const std::uint32_t cap = channel_cap_[c];
      if (req.size() > cap) {
        std::nth_element(req.begin(), req.begin() + cap - 1, req.end(),
                         higher_priority);
        req.resize(cap);
      }
      winners.insert(winners.end(), req.begin(), req.end());
      req.clear();
    }

    if (node_capped) {
      touched_nodes.clear();
      for (std::uint32_t msg : winners) {
        const Vertex tail = channel_tail_[seq[seq_off[msg] + pos[msg]]];
        if (node_req[tail].empty()) touched_nodes.push_back(tail);
        node_req[tail].push_back(msg);
      }
      winners.clear();
      for (Vertex v : touched_nodes) {
        auto& req = node_req[v];
        const std::uint32_t cap = machine_.forward_cap[v];
        if (cap != kUnlimitedForward && req.size() > cap) {
          std::nth_element(req.begin(), req.begin() + cap - 1, req.end(),
                           higher_priority);
          req.resize(cap);
        }
        winners.insert(winners.end(), req.begin(), req.end());
        req.clear();
      }
    }

    // Advance winners; retire delivered messages.
    for (std::uint32_t msg : winners) {
      if (++pos[msg] == seq_off[msg + 1] - seq_off[msg]) {
        latency_sum += static_cast<double>(tick);
        stats.makespan = tick;
      }
    }
    // Compact the active list (delivered messages drop out).
    std::erase_if(active, [&](std::uint32_t msg) {
      return pos[msg] == seq_off[msg + 1] - seq_off[msg];
    });
  }

  stats.avg_latency = m == 0 ? 0.0 : latency_sum / static_cast<double>(m);
  return stats;
}

}  // namespace netemu
