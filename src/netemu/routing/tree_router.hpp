#pragma once
// Closed-form routers for the trivially-routable families:
//  * TreeRouter — heap-indexed complete binary trees (Tree, WeakPPN):
//    climb to the LCA, descend.
//  * LineRouter — LinearArray: walk straight.
//  * RingRouter — Ring: the shorter way around.
//  * BusRouter — GlobalBus: processor → hub → processor.

#include "netemu/routing/router.hpp"

namespace netemu {

class TreeRouter final : public Router {
 public:
  explicit TreeRouter(const Machine& machine);
  std::vector<Vertex> route(Vertex src, Vertex dst, Prng& rng) override;
  const char* name() const override { return "tree-lca"; }
};

class LineRouter final : public Router {
 public:
  explicit LineRouter(const Machine& machine);
  std::vector<Vertex> route(Vertex src, Vertex dst, Prng& rng) override;
  const char* name() const override { return "line"; }
};

class RingRouter final : public Router {
 public:
  explicit RingRouter(const Machine& machine);
  std::vector<Vertex> route(Vertex src, Vertex dst, Prng& rng) override;
  const char* name() const override { return "ring"; }

 private:
  std::size_t n_;
};

class BusRouter final : public Router {
 public:
  explicit BusRouter(const Machine& machine);
  std::vector<Vertex> route(Vertex src, Vertex dst, Prng& rng) override;
  const char* name() const override { return "bus"; }

 private:
  Vertex hub_;
};

}  // namespace netemu
