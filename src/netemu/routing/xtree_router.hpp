#pragma once
// Router for the X-tree.
//
// Shortest paths on the X-tree climb toward the root and reuse the top few
// lateral edges, so the measured rate plateaus at Θ(1) even though the
// machine's bisection is Θ(lg n) (one lateral edge per level plus the
// root).  The bandwidth-achieving schedule spreads crossings over the level
// rings: pick a uniformly random crossing depth ℓ ≤ min(depth(u), depth(v)),
// climb from u to its depth-ℓ ancestor, walk laterally along ring ℓ, and
// descend to v.  Uniform ℓ is flux-matched: expected path length is
// Θ(n / lg n) against Θ(n) wires, giving rate Θ(lg n), and each ring's
// middle edge carries a 1/lg n share of the cross traffic.

#include "netemu/routing/router.hpp"

namespace netemu {

class XTreeRouter final : public Router {
 public:
  explicit XTreeRouter(const Machine& machine);
  std::vector<Vertex> route(Vertex src, Vertex dst, Prng& rng) override;
  const char* name() const override { return "xtree-ring"; }

 private:
  unsigned height_;
};

}  // namespace netemu
