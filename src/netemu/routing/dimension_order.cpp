#include "netemu/routing/dimension_order.hpp"

#include <cassert>
#include <numeric>

#include "netemu/topology/detail/grid.hpp"
#include "netemu/util/math.hpp"

namespace netemu {

DimensionOrderRouter::DimensionOrderRouter(const Machine& machine)
    : machine_(machine) {
  assert(machine.family == Family::kMesh || machine.family == Family::kTorus ||
         machine.family == Family::kXGrid);
}

std::vector<Vertex> DimensionOrderRouter::route(Vertex src, Vertex dst,
                                                Prng& rng) {
  const auto& sides = machine_.shape;
  const std::size_t k = sides.size();
  auto cur = detail::grid_coord(sides, src);
  const auto goal = detail::grid_coord(sides, dst);
  const bool wrap = machine_.family == Family::kTorus;
  const bool diagonal = machine_.family == Family::kXGrid;

  // Per-axis step direction (+1 / -1 / 0), shorter way around on the torus.
  auto step_of = [&](std::size_t d) -> int {
    if (cur[d] == goal[d]) return 0;
    if (!wrap || sides[d] <= 2) return goal[d] > cur[d] ? 1 : -1;
    const std::uint32_t fwd =
        (goal[d] + sides[d] - cur[d]) % sides[d];  // steps going +1
    return 2 * fwd <= sides[d] ? 1 : -1;
  };
  auto advance = [&](std::size_t d, int dir) {
    cur[d] = static_cast<std::uint32_t>(
        (static_cast<long long>(cur[d]) + dir + sides[d]) % sides[d]);
  };

  std::vector<std::size_t> axes(k);
  std::iota(axes.begin(), axes.end(), std::size_t{0});
  shuffle(axes, rng);

  std::vector<Vertex> path{src};
  if (diagonal) {
    // Correct pairs of axes through diagonals while at least two differ.
    for (;;) {
      std::size_t a = k, b = k;
      for (std::size_t d : axes) {
        if (cur[d] != goal[d]) {
          if (a == k) {
            a = d;
          } else {
            b = d;
            break;
          }
        }
      }
      if (a == k) break;  // arrived
      const int da = step_of(a);
      advance(a, da);
      if (b != k) advance(b, step_of(b));
      path.push_back(
          static_cast<Vertex>(detail::grid_index(sides, cur)));
    }
    return path;
  }

  for (std::size_t d : axes) {
    while (cur[d] != goal[d]) {
      advance(d, step_of(d));
      path.push_back(static_cast<Vertex>(detail::grid_index(sides, cur)));
    }
  }
  return path;
}

BitFixRouter::BitFixRouter(const Machine& machine) : d_(machine.shape[0]) {
  assert(machine.family == Family::kHypercube);
}

std::vector<Vertex> BitFixRouter::route(Vertex src, Vertex dst, Prng& rng) {
  std::vector<unsigned> bits;
  for (unsigned p = 0; p < d_; ++p) {
    if (((src ^ dst) >> p) & 1u) bits.push_back(p);
  }
  shuffle(bits, rng);
  std::vector<Vertex> path{src};
  Vertex cur = src;
  for (unsigned p : bits) {
    cur ^= static_cast<Vertex>(1u << p);
    path.push_back(cur);
  }
  return path;
}

DeBruijnShiftRouter::DeBruijnShiftRouter(const Machine& machine)
    : d_(machine.shape[0]) {
  assert(machine.family == Family::kDeBruijn);
}

std::vector<Vertex> DeBruijnShiftRouter::route(Vertex src, Vertex dst,
                                               Prng& /*rng*/) {
  const std::uint64_t n = ipow(2, d_);
  std::vector<Vertex> path{src};
  std::uint64_t cur = src;
  // Feed dst's bits in from MSB to LSB; after d shifts cur == dst.
  for (unsigned i = d_; i-- > 0;) {
    const std::uint64_t bit = (dst >> i) & 1u;
    const std::uint64_t next = (cur * 2 + bit) % n;
    if (next != cur) {
      path.push_back(static_cast<Vertex>(next));
    }
    cur = next;
  }
  assert(cur == dst);
  return path;
}

}  // namespace netemu
