#pragma once
// Router for the hierarchical mesh families (Pyramid, Multigrid).
//
// BFS-shortest paths on these machines funnel almost all symmetric traffic
// through the apex levels (diameter Θ(lg n)), whose aggregate capacity is
// constant — the measured rate then plateaus at Θ(1) even though the
// machines' bisection is Θ(n^{(k-1)/k}).  The bandwidth-achieving schedule
// instead crosses the BASE mesh: descend from the source to its base-level
// corner descendant, dimension-order across the base, ascend to the
// destination.  Dilation grows to Θ(n^{1/k}) but congestion drops to the
// mesh's, which is exactly the trade the Θ-form of Table 4 is about.

#include "netemu/routing/router.hpp"

namespace netemu {

class HierarchyRouter final : public Router {
 public:
  explicit HierarchyRouter(const Machine& machine);
  std::vector<Vertex> route(Vertex src, Vertex dst, Prng& rng) override;
  const char* name() const override { return "hierarchy-base"; }

 private:
  struct Position {
    std::uint32_t level;
    std::vector<std::uint32_t> coord;
  };
  Position position_of(Vertex v) const;
  Vertex vertex_of(std::uint32_t level,
                   const std::vector<std::uint32_t>& coord) const;
  /// Append the descent from (level, coord) to the base corner descendant;
  /// returns the base coordinates.  Emits vertices AFTER the starting one.
  std::vector<std::uint32_t> descend(std::uint32_t level,
                                     std::vector<std::uint32_t> coord,
                                     std::vector<Vertex>& out) const;

  unsigned k_;
  std::uint32_t base_side_;
  std::vector<std::uint64_t> level_offset_;  // per level, base = level 0
  std::vector<std::uint32_t> level_side_;
};

}  // namespace netemu
