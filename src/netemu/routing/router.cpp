#include "netemu/routing/router.hpp"

#include "netemu/routing/bfs_router.hpp"
#include "netemu/routing/butterfly_router.hpp"
#include "netemu/routing/dimension_order.hpp"
#include "netemu/routing/hierarchy_router.hpp"
#include "netemu/routing/tree_router.hpp"
#include "netemu/routing/xtree_router.hpp"

namespace netemu {

std::unique_ptr<Router> make_default_router(const Machine& machine) {
  switch (machine.family) {
    case Family::kLinearArray:
      return std::make_unique<LineRouter>(machine);
    case Family::kRing:
      return std::make_unique<RingRouter>(machine);
    case Family::kGlobalBus:
      return std::make_unique<BusRouter>(machine);
    case Family::kTree:
    case Family::kFatTree:
    case Family::kWeakPPN:
      return std::make_unique<TreeRouter>(machine);
    case Family::kMesh:
    case Family::kTorus:
    case Family::kXGrid:
      return std::make_unique<DimensionOrderRouter>(machine);
    case Family::kHypercube:
      return std::make_unique<BitFixRouter>(machine);
    case Family::kPyramid:
    case Family::kMultigrid:
      return std::make_unique<HierarchyRouter>(machine);
    case Family::kButterfly:
    case Family::kMultibutterfly:
      return std::make_unique<ButterflyRouter>(machine);
    case Family::kShuffleExchange:
      return std::make_unique<ShuffleExchangeRouter>(machine);
    case Family::kXTree:
      return std::make_unique<XTreeRouter>(machine);
    case Family::kDeBruijn:
      return std::make_unique<DeBruijnShiftRouter>(machine);
    default:
      return std::make_unique<BfsRouter>(machine);
  }
}

std::unique_ptr<Router> make_bfs_router(const Machine& machine) {
  return std::make_unique<BfsRouter>(machine);
}

std::unique_ptr<Router> make_valiant_router(const Machine& machine) {
  return std::make_unique<ValiantRouter>(machine, make_default_router(machine));
}

bool path_is_valid(const Multigraph& g, const std::vector<Vertex>& path,
                   Vertex src, Vertex dst) {
  if (path.empty() || path.front() != src || path.back() != dst) return false;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    if (g.multiplicity(path[i], path[i + 1]) == 0) return false;
  }
  return true;
}

}  // namespace netemu
