#pragma once
// Redundant circuits — the computation model of Koch et al. [7] that the
// paper's emulations run on.
//
// A t-step computation of guest G is a leveled directed graph whose level-i
// nodes are 3-tuples (u, i, c): vertex u of G, time step i, copy number c.
// Copies introduce redundancy (one guest operation may be performed at
// several places); the set of copies of (u, i) is the *class* of (u, i) and
// its size the *duplicity*.  Arcs run between consecutive levels: every node
// (v, i+1, y) has an input arc from some representative of (u, i) for each
// guest arc (u, v), plus an identity arc from a representative of (v, i).
// A circuit is *efficient* if it has O(|G| t) nodes.
//
// Circuit realizes the homogeneous case (every class has the same duplicity)
// with copy-aligned wiring, which is the shape Lemma 9 reasons about.

#include <cstdint>

#include "netemu/graph/multigraph.hpp"

namespace netemu {

class Circuit {
 public:
  /// levels = t+1 (time steps 0..t), duplicity >= 1 copies per class.
  Circuit(const Multigraph& guest, std::uint32_t time_steps,
          std::uint32_t duplicity);

  const Multigraph& guest() const { return *guest_; }
  std::uint32_t time_steps() const { return t_; }
  std::uint32_t num_levels() const { return t_ + 1; }
  std::uint32_t duplicity() const { return duplicity_; }

  std::uint64_t num_nodes() const {
    return static_cast<std::uint64_t>(num_levels()) * guest_->num_vertices() *
           duplicity_;
  }

  /// Node numbering: ((level * n) + vertex) * duplicity + copy.
  std::uint64_t node_id(std::uint32_t level, Vertex u,
                        std::uint32_t copy = 0) const {
    return (static_cast<std::uint64_t>(level) * guest_->num_vertices() + u) *
               duplicity_ +
           copy;
  }
  std::uint32_t level_of(std::uint64_t id) const {
    return static_cast<std::uint32_t>(id / (duplicity_ *
                                            guest_->num_vertices()));
  }
  Vertex vertex_of(std::uint64_t id) const {
    return static_cast<Vertex>((id / duplicity_) % guest_->num_vertices());
  }
  std::uint32_t copy_of(std::uint64_t id) const {
    return static_cast<std::uint32_t>(id % duplicity_);
  }

  /// Efficiency check: node count <= max_factor * |G| * t.
  bool is_efficient(double max_factor = 8.0) const;

  /// The undirected circuit graph: routing edges (u,i,c)-(v,i+1,c) for each
  /// guest edge (u,v) and identity edges (u,i,c)-(u,i+1,c).
  Multigraph circuit_graph() const;

  /// Correctness audit: every level-(i+1) node can see a representative of
  /// each in-neighbor class (true by construction for copy-aligned wiring;
  /// the test exercises this through the graph).
  bool wiring_is_complete() const;

 private:
  const Multigraph* guest_;
  std::uint32_t t_;
  std::uint32_t duplicity_;
};

}  // namespace netemu
