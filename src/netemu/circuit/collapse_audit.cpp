#include "netemu/circuit/collapse_audit.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "netemu/util/math.hpp"

namespace netemu {

CollapseAudit collapse_audit(const Lemma9Construction& c, std::uint32_t parts,
                             PartitionStrategy strategy, Prng& rng) {
  const std::uint64_t nodes = c.circuit_nodes();
  if (parts < 2 || parts > nodes) {
    throw std::invalid_argument("collapse_audit: parts out of range");
  }
  const std::uint32_t n = c.n(), t = c.t(), w = c.s_levels();

  // Partition circuit node ids.  Block keeps whole level bands together
  // (the natural "host processor owns a slab" assignment); random is the
  // locality-free adversary.  Other strategies degrade to block (there is
  // no meaningful BFS/matched order on bare ids here).
  const std::uint64_t k = ceil_div(nodes, parts);
  std::vector<std::uint32_t> part(nodes);
  if (strategy == PartitionStrategy::kRandom) {
    std::vector<std::uint64_t> order(nodes);
    std::iota(order.begin(), order.end(), 0ull);
    shuffle(order, rng);
    for (std::uint64_t i = 0; i < nodes; ++i) {
      part[order[i]] = static_cast<std::uint32_t>(i / k);
    }
  } else {
    for (std::uint64_t id = 0; id < nodes; ++id) {
      part[id] = static_cast<std::uint32_t>(id / k);
    }
  }

  CollapseAudit audit;
  audit.parts = parts;
  {
    std::vector<std::uint32_t> load(parts, 0);
    for (std::uint32_t p : part) ++load[p];
    audit.load_k = *std::max_element(load.begin(), load.end());
  }

  // Survivors and pair multiplicities of ξ: replay every γ-edge.
  std::vector<std::uint64_t> pair_count(
      static_cast<std::size_t>(parts) * parts, 0);
  c.for_each_bundle([&](Vertex u, std::uint32_t i, Vertex v,
                        std::uint32_t d) {
    const std::uint32_t ps = part[c.node_id(i, u)];
    for (std::uint32_t j = 0; j + d <= i; ++j) {
      const std::uint32_t pq = part[c.node_id(j, v)];
      ++audit.total_gamma_edges;
      if (ps == pq) {
        ++audit.dropped_edges;
      } else {
        ++audit.surviving_edges;
        const std::uint32_t lo = std::min(ps, pq), hi = std::max(ps, pq);
        const std::uint64_t cnt =
            ++pair_count[static_cast<std::size_t>(lo) * parts + hi];
        audit.max_pair_multiplicity =
            std::max(audit.max_pair_multiplicity, cnt);
      }
    }
  });
  audit.surviving_fraction =
      audit.total_gamma_edges == 0
          ? 0.0
          : static_cast<double>(audit.surviving_edges) /
                static_cast<double>(audit.total_gamma_edges);
  audit.pair_mult_over_k2 = static_cast<double>(audit.max_pair_multiplicity) /
                            (static_cast<double>(k) * static_cast<double>(k));

  // Quotient congestion: push every circuit-edge load through the collapse.
  // The quotient M is a MULTIgraph — all circuit edges between the same
  // part pair become parallel simple edges of M, and the paper's congestion
  // counts paths per simple edge.  So C(M, ξ) for the collapsed witness is
  // max over part pairs of ceil(summed load / number of collapsed edges).
  const CircuitLoads loads = compute_circuit_loads(c);
  std::vector<std::uint64_t> quotient_load(
      static_cast<std::size_t>(parts) * parts, 0);
  std::vector<std::uint64_t> quotient_mult(
      static_cast<std::size_t>(parts) * parts, 0);
  auto add_quotient = [&](std::uint64_t a, std::uint64_t b,
                          std::uint64_t load) {
    const std::uint32_t pa = part[a], pb = part[b];
    if (pa == pb) return;
    const std::uint32_t lo = std::min(pa, pb), hi = std::max(pa, pb);
    const std::size_t key = static_cast<std::size_t>(lo) * parts + hi;
    quotient_load[key] += load;
    ++quotient_mult[key];
  };
  for (std::uint32_t level = 0; level < t; ++level) {
    const auto& per_arc = loads.routing[level];
    for (std::uint32_t arc = 0; arc < per_arc.size(); ++arc) {
      add_quotient(c.node_id(level + 1, loads.arc_tail[arc]),
                   c.node_id(level, loads.arc_head[arc]), per_arc[arc]);
    }
  }
  for (Vertex v = 0; v < n; ++v) {
    for (std::uint32_t j = 0; j < t; ++j) {
      add_quotient(c.node_id(j + 1, v), c.node_id(j, v),
                   loads.identity[v][j]);
    }
  }
  for (std::size_t key = 0; key < quotient_load.size(); ++key) {
    if (quotient_mult[key] == 0) continue;
    const std::uint64_t per_edge =
        ceil_div(quotient_load[key], quotient_mult[key]);
    audit.quotient_congestion =
        std::max(audit.quotient_congestion, per_edge);
  }

  audit.beta_quotient = audit.quotient_congestion == 0
                            ? 0.0
                            : static_cast<double>(audit.surviving_edges) /
                                  static_cast<double>(audit.quotient_congestion);
  audit.beta_circuit = loads.max_load == 0
                           ? 0.0
                           : static_cast<double>(loads.gamma_edges) /
                                 static_cast<double>(loads.max_load);
  audit.preservation_ratio =
      audit.beta_circuit == 0.0 ? 0.0
                                : audit.beta_quotient / audit.beta_circuit;
  (void)w;
  return audit;
}

}  // namespace netemu
