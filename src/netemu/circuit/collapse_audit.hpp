#pragma once
// The Lemma 11 audit: collapsing the circuit's Θ(nt) nodes into |H|
// super-vertices of load O(k) preserves the traffic graph's bandwidth —
// at most O(#parts · k²) γ-edges disappear into self-loops, the survivors
// form ξ ∈ K_{|H|, Θ(k²)}, and β(M, ξ) = Ω(β(Φ, γ)).

#include "netemu/circuit/lemma9.hpp"
#include "netemu/embedding/partition.hpp"

namespace netemu {

struct CollapseAudit {
  std::uint32_t parts = 0;
  std::uint32_t load_k = 0;            ///< max circuit nodes per part
  std::uint64_t total_gamma_edges = 0;
  std::uint64_t surviving_edges = 0;   ///< E(ξ): endpoints in distinct parts
  std::uint64_t dropped_edges = 0;     ///< collapsed into self-loops
  double surviving_fraction = 0.0;
  std::uint64_t max_pair_multiplicity = 0;  ///< must be O(k²)
  double pair_mult_over_k2 = 0.0;
  std::uint64_t quotient_congestion = 0;    ///< C(M, ξ) witness
  double beta_quotient = 0.0;               ///< E(ξ) / C(M, ξ)
  double beta_circuit = 0.0;                ///< β(Φ, γ) from Lemma 9
  double preservation_ratio = 0.0;          ///< beta_quotient / beta_circuit
};

/// Collapse the construction's circuit into `parts` super-vertices using the
/// given strategy over circuit node ids (block keeps whole levels together,
/// which is the natural host assignment) and audit Lemma 11's claims.
CollapseAudit collapse_audit(const Lemma9Construction& c, std::uint32_t parts,
                             PartitionStrategy strategy, Prng& rng);

}  // namespace netemu
