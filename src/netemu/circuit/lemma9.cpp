#include "netemu/circuit/lemma9.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "netemu/graph/algorithms.hpp"

namespace netemu {

Lemma9Construction::Lemma9Construction(const Multigraph& guest,
                                       const Lemma9Options& options,
                                       Prng& /*rng*/)
    : guest_(&guest), n_(static_cast<std::uint32_t>(guest.num_vertices())) {
  if (n_ < 4 || !is_connected(guest)) {
    throw std::invalid_argument("Lemma9: guest must be connected, n >= 4");
  }

  // All-pairs BFS: parents and distances per source, plus the diameter and
  // average distance the parameters derive from.
  parent_.resize(n_);
  dist_.resize(n_);
  std::uint32_t diameter = 0;
  double dist_sum = 0.0;
  for (Vertex u = 0; u < n_; ++u) {
    parent_[u] = bfs_parents(guest, u);
    const auto d32 = bfs_distances(guest, u);
    dist_[u].resize(n_);
    for (Vertex v = 0; v < n_; ++v) {
      dist_[u][v] = static_cast<std::uint16_t>(d32[v]);
      diameter = std::max(diameter, d32[v]);
      dist_sum += d32[v];
    }
  }
  lambda_ = diameter;
  const double avg_dist = dist_sum / (static_cast<double>(n_) * (n_ - 1.0));

  const double a = options.stretch;
  t_ = static_cast<std::uint32_t>(std::ceil((1.0 + a) * lambda_));
  w_ = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(std::floor(a * lambda_ / 2.0)));
  cutoff_ = options.cone_cutoff != 0
                ? options.cone_cutoff
                : std::min<std::uint32_t>(
                      lambda_, static_cast<std::uint32_t>(
                                   std::ceil((1.0 + a / 2.0) * avg_dist)));
  // Cones must fit above the lowest S-level: i - d >= 0 for i >= t-w+1.
  assert(t_ - w_ + 1 >= cutoff_);

  // Witness congestion of the all-pairs shortest-path system (unordered
  // pairs, one path each), counted on undirected guest edges.
  std::vector<std::uint64_t> load(guest.num_edges(), 0);
  std::unordered_map<std::uint64_t, std::uint32_t> edge_index;
  edge_index.reserve(guest.num_edges() * 2);
  {
    const auto edges = guest.edges();
    for (std::uint32_t e = 0; e < edges.size(); ++e) {
      edge_index[(static_cast<std::uint64_t>(edges[e].u) << 32) |
                 edges[e].v] = e;
    }
  }
  auto edge_of = [&](Vertex a2, Vertex b2) {
    if (a2 > b2) std::swap(a2, b2);
    return edge_index.at((static_cast<std::uint64_t>(a2) << 32) | b2);
  };
  for (Vertex u = 0; u < n_; ++u) {
    for (Vertex v = u + 1; v < n_; ++v) {
      Vertex cur = v;
      while (cur != u) {
        const Vertex next = parent_[u][cur];
        guest_congestion_ =
            std::max(guest_congestion_, ++load[edge_of(cur, next)]);
        cur = next;
      }
    }
  }
}

double Lemma9Construction::guest_beta() const {
  const double pairs = static_cast<double>(n_) * (n_ - 1.0) / 2.0;
  return guest_congestion_ == 0
             ? 0.0
             : pairs / static_cast<double>(guest_congestion_);
}

std::vector<Vertex> Lemma9Construction::witness_path(Vertex u,
                                                     Vertex v) const {
  std::vector<Vertex> path{v};
  Vertex cur = v;
  while (cur != u) {
    cur = parent_[u][cur];
    path.push_back(cur);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

CircuitLoads compute_circuit_loads(const Lemma9Construction& c) {
  const Multigraph& g = c.guest();
  const std::uint32_t n = c.n(), t = c.t(), w = c.s_levels();

  CircuitLoads loads;
  std::unordered_map<std::uint64_t, std::uint32_t> arc_id;
  arc_id.reserve(g.num_edges() * 4);
  for (const Edge& e : g.edges()) {
    arc_id[(static_cast<std::uint64_t>(e.u) << 32) | e.v] =
        static_cast<std::uint32_t>(loads.arc_tail.size());
    loads.arc_tail.push_back(e.u);
    loads.arc_head.push_back(e.v);
    arc_id[(static_cast<std::uint64_t>(e.v) << 32) | e.u] =
        static_cast<std::uint32_t>(loads.arc_tail.size());
    loads.arc_tail.push_back(e.v);
    loads.arc_head.push_back(e.u);
  }
  loads.routing.assign(t,
                       std::vector<std::uint64_t>(loads.arc_tail.size(), 0));
  // Identity-load events: per vertex, count of bundles per limit level.
  std::vector<std::vector<std::uint64_t>> events(
      n, std::vector<std::uint64_t>(t + 1, 0));

  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = 0; v < n; ++v) {
      const std::uint16_t d = c.distance(u, v);
      if (v == u || d == 0 || d > c.cutoff()) continue;
      const auto path = c.witness_path(u, v);
      std::vector<std::uint32_t> legs(d);
      for (std::uint32_t j = 0; j < d; ++j) {
        legs[j] = arc_id.at((static_cast<std::uint64_t>(path[j]) << 32) |
                            path[j + 1]);
      }
      for (std::uint32_t i = t - w + 1; i <= t; ++i) {
        const std::uint64_t bundle = i - d + 1;
        loads.gamma_edges += bundle;
        // Cone leg j runs from (path[j], i-j) down-level to (path[j+1],
        // i-j-1); the routing table is keyed by the lower level.
        for (std::uint32_t j = 0; j < d; ++j) {
          loads.routing[i - j - 1][legs[j]] += bundle;
        }
        ++events[v][i - d];
      }
    }
  }

  // Materialize identity loads: edge (v, j+1)-(v, j) carries, per bundle
  // whose terminal level exceeds j, the (j+1) γ-edges bound below level j+1.
  loads.identity.assign(n, std::vector<std::uint64_t>(t, 0));
  for (Vertex v = 0; v < n; ++v) {
    std::uint64_t suffix = 0;
    for (std::int64_t j = t; j-- > 0;) {
      suffix += events[v][j + 1];
      loads.identity[v][j] = static_cast<std::uint64_t>(j + 1) * suffix;
    }
  }

  for (const auto& level : loads.routing) {
    for (std::uint64_t l : level) loads.max_load = std::max(loads.max_load, l);
  }
  for (const auto& vert : loads.identity) {
    for (std::uint64_t l : vert) loads.max_load = std::max(loads.max_load, l);
  }
  return loads;
}

Lemma9Audit lemma9_audit(const Lemma9Construction& c) {
  Lemma9Audit a;
  const std::uint32_t n = c.n(), t = c.t(), w = c.s_levels();
  a.n = n;
  a.t = t;
  a.lambda = c.lambda();
  a.w = w;
  a.cutoff = c.cutoff();
  a.circuit_nodes = c.circuit_nodes();
  a.s_nodes = static_cast<std::uint64_t>(w) * n;
  a.guest_congestion = c.guest_congestion();
  // The (S, Q) level ranges of a vertex pair are disjoint (a γ-edge needs
  // j <= i - d on one side and i <= j - d on the other), so no pair can
  // carry two γ-edges: γ ∈ K_{·,1} by construction.
  a.max_pair_multiplicity = 1;

  const CircuitLoads loads = compute_circuit_loads(c);
  a.gamma_edges = loads.gamma_edges;
  a.circuit_congestion = loads.max_load;

  // Cone-path counts and per-vertex Q-level reach.
  std::vector<std::int64_t> limit_of(n, -1);
  std::uint64_t pair_cones = 0;
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = 0; v < n; ++v) {
      const std::uint16_t d = c.distance(u, v);
      if (v == u || d == 0 || d > c.cutoff()) continue;
      ++pair_cones;
      limit_of[v] = std::max(limit_of[v],
                             static_cast<std::int64_t>(t) - d);  // i = t
    }
  }
  a.cone_paths = pair_cones * w;
  a.cone_paths_per_level_n2 =
      static_cast<double>(pair_cones) / (static_cast<double>(n) * n);

  // γ vertex count: union of S-levels [t-w+1, t] and Q-levels [0, limit_v].
  for (Vertex v = 0; v < n; ++v) {
    const std::int64_t limit = limit_of[v];
    const std::int64_t s_lo = static_cast<std::int64_t>(t) - w + 1;
    const std::int64_t overlap = std::max<std::int64_t>(0, limit - s_lo + 1);
    a.gamma_vertices += w + static_cast<std::uint64_t>(limit + 1 - overlap);
  }

  const double nt = static_cast<double>(n) * t;
  a.vertices_per_nt = static_cast<double>(a.gamma_vertices) / nt;
  a.edges_per_n2t2 = static_cast<double>(a.gamma_edges) / (nt * nt);
  a.congestion_bound =
      std::max(static_cast<double>(n) * t * t,
               static_cast<double>(t) *
                   static_cast<double>(c.guest_congestion()));
  a.congestion_ratio =
      static_cast<double>(a.circuit_congestion) / a.congestion_bound;
  a.beta_circuit = a.circuit_congestion == 0
                       ? 0.0
                       : static_cast<double>(a.gamma_edges) /
                             static_cast<double>(a.circuit_congestion);
  a.t_beta_guest = static_cast<double>(t) * c.guest_beta();
  a.preservation_ratio =
      a.t_beta_guest == 0.0 ? 0.0 : a.beta_circuit / a.t_beta_guest;
  return a;
}

}  // namespace netemu
