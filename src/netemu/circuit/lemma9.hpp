#pragma once
// The Lemma 9 construction: inside any efficient circuit Φ that emulates
// t = (1+a)·Λ(G) steps of guest G, find a quasi-symmetric traffic graph
// γ ∈ K_{Θ(nt),1} whose embedding into Φ witnesses β(Φ, γ) = Ω(t · β(G)).
//
// Construction (following the paper):
//  * S-nodes: one representative of every guest vertex in each of the last
//    w = Θ(a·Λ) levels.
//  * cones: from S-node (u, i), follow the embedding paths (shortest paths
//    that witness C(G, K_n)) to every destination v within the cutoff
//    Λ̃; the cone path climbs the circuit one level per hop.
//  * Q-sets: from the cone's terminal (v, i-d), every (v, j) with j < i-d
//    reachable by identity edges.
//  * γ-edges: S-node (u,i) — Q-node (v,j), one bundle of |Q| edges carried
//    up the cone path and peeled off along the identity edges.
//
// The audit checks every counting claim of the lemma on the real object:
// γ ∈ K_{Θ(nt),1}, Ω(n²) cone paths per S-level, embedding congestion
// O(max(n·t², t·C(G,K_n))), and β(Φ,γ) ≥ Ω(t·β(G)).

#include <cstdint>
#include <vector>

#include "netemu/topology/machine.hpp"
#include "netemu/util/prng.hpp"

namespace netemu {

struct Lemma9Options {
  double stretch = 1.0;       ///< a: t = ceil((1+a) · Λ)
  std::uint32_t cone_cutoff = 0;  ///< Λ̃; 0 = auto ((1+a/2)·avg distance)
};

/// Everything the audits (and Lemma 11's collapse) need, kept so the
/// γ-edge enumeration can be replayed without storing Θ(n²t²) edges.
class Lemma9Construction {
 public:
  Lemma9Construction(const Multigraph& guest, const Lemma9Options& options,
                     Prng& rng);

  const Multigraph& guest() const { return *guest_; }
  std::uint32_t n() const { return n_; }
  std::uint32_t t() const { return t_; }          ///< time steps
  std::uint32_t lambda() const { return lambda_; }
  std::uint32_t s_levels() const { return w_; }   ///< w
  std::uint32_t cutoff() const { return cutoff_; }

  std::uint64_t circuit_nodes() const {
    return static_cast<std::uint64_t>(t_ + 1) * n_;
  }
  /// Circuit node id of (vertex u, level j) — duplicity-1 circuit.
  std::uint64_t node_id(std::uint32_t level, Vertex u) const {
    return static_cast<std::uint64_t>(level) * n_ + u;
  }

  /// C(G, K_n) witness congestion (max undirected edge load of the
  /// all-pairs shortest-path system).
  std::uint64_t guest_congestion() const { return guest_congestion_; }
  /// β(G, K_n) through the witness: E(K_n) / C(G, K_n).
  double guest_beta() const;

  /// Enumerate every γ bundle: fn(u, i, v, dist) for each S-node (u,i) and
  /// cone destination v at distance dist <= cutoff.  The bundle's γ-edges
  /// are (u,i)-(v,j) for j in [0, i-dist].
  template <typename Fn>
  void for_each_bundle(Fn&& fn) const {
    for (Vertex u = 0; u < n_; ++u) {
      for (Vertex v = 0; v < n_; ++v) {
        const std::uint16_t d = dist_[u][v];
        if (v == u || d > cutoff_) continue;
        for (std::uint32_t i = t_ - w_ + 1; i <= t_; ++i) {
          fn(u, i, v, static_cast<std::uint32_t>(d));
        }
      }
    }
  }

  /// Shortest path (witness) from u to v, endpoints inclusive.
  std::vector<Vertex> witness_path(Vertex u, Vertex v) const;

  /// BFS distance between guest vertices.
  std::uint16_t distance(Vertex u, Vertex v) const { return dist_[u][v]; }

 private:
  const Multigraph* guest_;
  std::uint32_t n_;
  std::uint32_t lambda_;   ///< diameter of G
  std::uint32_t t_;
  std::uint32_t w_;
  std::uint32_t cutoff_;
  std::uint64_t guest_congestion_ = 0;
  std::vector<std::vector<Vertex>> parent_;      // per source
  std::vector<std::vector<std::uint16_t>> dist_; // per source
};

struct Lemma9Audit {
  std::uint32_t n = 0, t = 0, lambda = 0, w = 0, cutoff = 0;
  std::uint64_t circuit_nodes = 0;
  std::uint64_t s_nodes = 0;
  std::uint64_t gamma_vertices = 0;   ///< |S ∪ Q|
  std::uint64_t gamma_edges = 0;      ///< E(γ)
  std::uint64_t cone_paths = 0;
  std::uint64_t max_pair_multiplicity = 0;  ///< must be 1 (K_{·,1})
  double vertices_per_nt = 0.0;       ///< |V(γ)| / (n t)
  double edges_per_n2t2 = 0.0;        ///< E(γ) / (n² t²)
  double cone_paths_per_level_n2 = 0.0;  ///< cones per S-level / n²
  std::uint64_t circuit_congestion = 0;  ///< embedding congestion into Φ
  double congestion_bound = 0.0;      ///< max(n t², t · C(G,K_n))
  double congestion_ratio = 0.0;      ///< congestion / bound (should be O(1))
  double beta_circuit = 0.0;          ///< E(γ) / congestion
  double t_beta_guest = 0.0;          ///< t · β(G, K_n)
  double preservation_ratio = 0.0;    ///< beta_circuit / t_beta_guest — Ω(1)
  std::uint64_t guest_congestion = 0;
};

Lemma9Audit lemma9_audit(const Lemma9Construction& c);

/// The γ-embedding's load on every circuit edge, kept explicitly so Lemma 11
/// can push the same embedding through a collapse.
struct CircuitLoads {
  /// routing[level][directed arc]: load on the routing edge from
  /// (arc tail, level+1) down to (arc head, level).
  std::vector<std::vector<std::uint64_t>> routing;
  /// identity[v][j]: load on the identity edge (v, j+1)-(v, j).
  std::vector<std::vector<std::uint64_t>> identity;
  /// Directed-arc endpoint tables (arc id -> tail/head guest vertex).
  std::vector<Vertex> arc_tail, arc_head;
  std::uint64_t gamma_edges = 0;
  std::uint64_t max_load = 0;
};

CircuitLoads compute_circuit_loads(const Lemma9Construction& c);

}  // namespace netemu
