#include "netemu/circuit/circuit.hpp"

#include <cassert>

namespace netemu {

Circuit::Circuit(const Multigraph& guest, std::uint32_t time_steps,
                 std::uint32_t duplicity)
    : guest_(&guest), t_(time_steps), duplicity_(duplicity) {
  assert(duplicity >= 1);
  assert(time_steps >= 1);
}

bool Circuit::is_efficient(double max_factor) const {
  const double nodes = static_cast<double>(num_nodes());
  const double work = static_cast<double>(guest_->num_vertices()) *
                      static_cast<double>(t_);
  return nodes <= max_factor * work;
}

Multigraph Circuit::circuit_graph() const {
  const std::size_t n = guest_->num_vertices();
  MultigraphBuilder b(num_nodes());
  for (std::uint32_t level = 0; level < t_; ++level) {
    for (Vertex u = 0; u < n; ++u) {
      for (std::uint32_t c = 0; c < duplicity_; ++c) {
        // Identity edge.
        b.add_edge(static_cast<Vertex>(node_id(level, u, c)),
                   static_cast<Vertex>(node_id(level + 1, u, c)));
      }
    }
    // Routing edges, copy-aligned, one per direction of each guest edge.
    for (const Edge& e : guest_->edges()) {
      for (std::uint32_t c = 0; c < duplicity_; ++c) {
        b.add_edge(static_cast<Vertex>(node_id(level, e.u, c)),
                   static_cast<Vertex>(node_id(level + 1, e.v, c)));
        b.add_edge(static_cast<Vertex>(node_id(level, e.v, c)),
                   static_cast<Vertex>(node_id(level + 1, e.u, c)));
      }
    }
  }
  return std::move(b).build();
}

bool Circuit::wiring_is_complete() const {
  // Copy-aligned wiring: node (v, i+1, c) has inputs (u, i, c) for every
  // guest neighbor u, plus (v, i, c).  Verify on the built graph for the
  // first level transition (the wiring is level-invariant).
  const Multigraph cg = circuit_graph();
  const std::size_t n = guest_->num_vertices();
  for (Vertex v = 0; v < n; ++v) {
    for (std::uint32_t c = 0; c < duplicity_; ++c) {
      const auto self = static_cast<Vertex>(node_id(1, v, c));
      if (cg.multiplicity(self, static_cast<Vertex>(node_id(0, v, c))) == 0) {
        return false;
      }
      for (const Arc& a : guest_->neighbors(v)) {
        if (cg.multiplicity(self,
                            static_cast<Vertex>(node_id(0, a.to, c))) == 0) {
          return false;
        }
      }
    }
  }
  return true;
}

}  // namespace netemu
