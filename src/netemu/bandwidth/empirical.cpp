#include "netemu/bandwidth/empirical.hpp"

#include <algorithm>

#include "netemu/graph/algorithms.hpp"
#include "netemu/routing/router.hpp"

namespace netemu {

namespace {

std::vector<Vertex> processor_list(const Machine& m) {
  if (!m.processors.empty()) return m.processors;
  std::vector<Vertex> all(m.graph.num_vertices());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = static_cast<Vertex>(i);
  return all;
}

}  // namespace

double measure_beta_simulated(const Machine& machine, Prng& rng,
                              const ThroughputOptions& options) {
  const auto traffic = TrafficDistribution::symmetric(processor_list(machine));
  const auto router = make_default_router(machine);
  return measure_throughput(machine, *router, traffic, rng, options).rate;
}

BetaBounds measure_beta(const Machine& machine, Prng& rng,
                        const BetaMeasureOptions& options) {
  BetaBounds b;
  ThroughputOptions throughput = options.throughput;
  if (options.pool != nullptr) throughput.pool = options.pool;
  b.simulated = measure_beta_simulated(machine, rng, throughput);

  const Bisection bi =
      machine.graph.num_vertices() <= 20
          ? exact_bisection(machine.graph)
          : kl_bisection(machine.graph, rng, options.kl_restarts,
                         options.pool);
  b.cut_upper = 2.0 * static_cast<double>(bi.width);

  const double avg_dist = avg_distance_auto(
      machine.graph, rng, options.avg_dist_exact_cutoff);
  if (avg_dist > 0.0) {
    double capacity = static_cast<double>(machine.graph.total_multiplicity());
    if (!machine.forward_cap.empty()) {
      // A weak node contributes at most its forwarding cap per tick, no
      // matter how many wires it has.
      double ports = 0.0;
      for (std::size_t v = 0; v < machine.forward_cap.size(); ++v) {
        const double wires =
            static_cast<double>(machine.graph.degree(static_cast<Vertex>(v)));
        const std::uint32_t cap = machine.forward_cap[v];
        ports += cap == kUnlimitedForward
                     ? wires
                     : std::min(wires, static_cast<double>(cap));
      }
      capacity = std::min(capacity, ports);
    }
    b.flux_upper = capacity / avg_dist;
  }
  return b;
}

}  // namespace netemu
