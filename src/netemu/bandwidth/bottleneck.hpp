#pragma once
// Bottleneck-freeness (Definition 1 of the paper, asserted for the standard
// families "without proof"): machine H is bottleneck-free if the delivery
// rate under ANY quasi-symmetric distribution on m <= |H| nodes is at most a
// constant factor higher than the rate under the symmetric distribution.
//
// The Efficient Emulation Theorem needs this as hypothesis (2) — a machine
// with a hidden fast sub-network could otherwise "cheat" by concentrating
// the emulation there.  measure_bottleneck_freeness() probes the worst case
// over pair densities and node-subset sizes and reports the largest
// rate_quasi / rate_symmetric observed.

#include <vector>

#include "netemu/routing/throughput.hpp"
#include "netemu/topology/machine.hpp"

namespace netemu {

struct BottleneckProbe {
  double subset_fraction = 1.0;  ///< fraction of processors participating
  double pair_density = 1.0;     ///< quasi-symmetric allowed-pair density
  double rate = 0.0;
  double ratio_to_symmetric = 0.0;
};

struct BottleneckReport {
  double symmetric_rate = 0.0;
  std::vector<BottleneckProbe> probes;
  double worst_ratio = 0.0;  ///< max over probes (the Θ(1) the paper needs)
};

struct BottleneckOptions {
  std::vector<double> subset_fractions{1.0, 0.5, 0.25};
  std::vector<double> pair_densities{1.0, 0.5, 0.25};
  ThroughputOptions throughput;
};

BottleneckReport measure_bottleneck_freeness(
    const Machine& machine, Prng& rng, const BottleneckOptions& options = {});

}  // namespace netemu
