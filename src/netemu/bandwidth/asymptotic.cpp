#include "netemu/bandwidth/asymptotic.hpp"

#include <cmath>
#include <sstream>

#include "netemu/util/math.hpp"

namespace netemu {

double AsymFn::operator()(double n) const {
  return c * std::pow(n, p) * std::pow(lg_clamped(n), q);
}

AsymFn operator*(const AsymFn& a, const AsymFn& b) {
  return AsymFn{a.c * b.c, a.p + b.p, a.q + b.q};
}

AsymFn operator/(const AsymFn& a, const AsymFn& b) {
  return AsymFn{a.c / b.c, a.p - b.p, a.q - b.q};
}

std::string exponent_string(double e) {
  if (std::abs(e - 1.0) < 1e-9) return "";
  // Try small fractions num/den, den <= 12.
  for (int den = 1; den <= 12; ++den) {
    const double num = e * den;
    if (std::abs(num - std::round(num)) < 1e-9) {
      const auto inum = static_cast<long long>(std::llround(num));
      std::ostringstream os;
      if (den == 1) {
        os << "^" << inum;
      } else {
        os << "^{" << inum << "/" << den << "}";
      }
      return os.str();
    }
  }
  std::ostringstream os;
  os << "^{" << e << "}";
  return os.str();
}

namespace {

/// Append one factor var^e or lg^e var to a product string.
void append_factor(std::string& out, const std::string& base, double e) {
  if (std::abs(e) < 1e-12) return;
  if (!out.empty()) out += " ";
  out += base + exponent_string(e);
}

}  // namespace

std::string AsymFn::theta_string(const std::string& var) const {
  std::string num, den;
  append_factor(p >= 0 ? num : den, var, std::abs(p));
  append_factor(q >= 0 ? num : den, "lg " + var, std::abs(q));
  if (num.empty()) num = "1";
  if (!den.empty()) num += " / " + den;
  return "Θ(" + num + ")";
}

std::string HostSizeForm::to_string(const std::string& var) const {
  if (unconstrained) return "Θ(" + var + ")  [no bandwidth obstruction]";
  std::string num, den;
  append_factor(alpha >= 0 ? num : den, var, std::abs(alpha));
  append_factor(beta >= 0 ? num : den, "lg " + var, std::abs(beta));
  append_factor(gamma >= 0 ? num : den, "lg lg " + var, std::abs(gamma));
  if (num.empty()) num = "1";
  if (!den.empty()) num += " / " + den;
  if (exponential) return "2^Θ(" + num + ")";
  return "Θ(" + num + ")";
}

HostSizeSolution solve_max_host(const AsymFn& beta_guest,
                                const AsymFn& beta_host, double n) {
  HostSizeSolution sol;

  // --- numeric root ------------------------------------------------------
  // h(m) = (βG(n)/βH(m)) · (m/n) is nondecreasing in m for the Table 4
  // hosts; the max host size is the largest m in [2, n] with h(m) <= 1.
  const double bg = beta_guest(n);
  auto h = [&](double m) { return bg / beta_host(m) * (m / n); };
  if (h(n) <= 1.0 + 1e-12) {
    sol.numeric = n;
  } else if (h(2.0) > 1.0) {
    sol.numeric = 2.0;  // even the trivial host is bandwidth-starved
  } else {
    double lo = 2.0, hi = n;
    for (int it = 0; it < 200; ++it) {
      const double mid = std::sqrt(lo * hi);  // geometric bisection
      (h(mid) <= 1.0 ? lo : hi) = mid;
    }
    sol.numeric = lo;
  }

  // --- closed Θ-form ------------------------------------------------------
  // Solve m^A lg^{-b} m = n^P lg^{-q} n with A = 1-a, P = 1-p.
  const double A = 1.0 - beta_host.p;
  const double B = -beta_host.q;  // exponent of lg m on the LHS
  const double P = 1.0 - beta_guest.p;
  const double Q = -beta_guest.q;
  HostSizeForm& f = sol.form;
  if (std::abs(beta_guest.p - beta_host.p) < 1e-12 &&
      std::abs(beta_guest.q - beta_host.q) < 1e-12) {
    // Same bandwidth shape: a host of the guest's own family is never
    // bandwidth-limited below the guest's size.
    f.unconstrained = true;
    f.alpha = 1.0;
    return sol;
  }
  if (P < 1e-12 && Q < 1e-12) {
    // Guest bandwidth is Θ(n) (e.g. a fat-tree): the RHS is Θ(1).  A host
    // of strictly weaker shape can only keep up at constant size; a host of
    // the same shape was handled by the equality branch above.
    f.alpha = f.beta = f.gamma = 0.0;
    return sol;
  }
  if (A > 1e-12) {
    const double alpha = P / A;
    if (alpha > 1e-12) {
      // m is polynomial in n: lg m = Θ(lg n).
      f.alpha = alpha;
      f.beta = (Q - B) / A;
      f.gamma = 0.0;
    } else if (Q > 1e-12) {
      // m is polylogarithmic: lg m = Θ(lg lg n).
      f.alpha = 0.0;
      f.beta = Q / A;
      f.gamma = -B / A;
    } else {
      // Θ(1)-size host bound (degenerate; shouldn't arise in the tables).
      f.alpha = f.beta = f.gamma = 0.0;
    }
  } else {
    // A == 0: host bandwidth ~ m (up to logs).  lg^{-b} m = RHS.
    if (B > 1e-12) {
      f.exponential = true;
      f.alpha = P / B;
      f.beta = Q / B;
    } else {
      f.unconstrained = true;
    }
  }
  // The emulation never benefits from a host larger than the guest: a
  // solution that is Ω(n) (super-linear, or n times nonnegative log factors)
  // means bandwidth imposes no constraint below the guest's own size.
  const bool at_least_linear =
      f.alpha > 1.0 + 1e-12 ||
      (std::abs(f.alpha - 1.0) < 1e-12 &&
       (f.beta > 1e-12 ||
        (std::abs(f.beta) < 1e-12 && f.gamma > -1e-12)));
  if (!f.exponential && at_least_linear) f.unconstrained = true;
  if (f.unconstrained) {
    f.alpha = 1.0;
    f.beta = f.gamma = 0.0;
    f.exponential = false;
  }
  return sol;
}

}  // namespace netemu
