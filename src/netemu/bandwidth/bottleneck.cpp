#include "netemu/bandwidth/bottleneck.hpp"

#include <algorithm>

#include "netemu/routing/router.hpp"

namespace netemu {

namespace {

std::vector<Vertex> processor_list(const Machine& m) {
  if (!m.processors.empty()) return m.processors;
  std::vector<Vertex> all(m.graph.num_vertices());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = static_cast<Vertex>(i);
  return all;
}

}  // namespace

BottleneckReport measure_bottleneck_freeness(const Machine& machine,
                                             Prng& rng,
                                             const BottleneckOptions& options) {
  BottleneckReport report;
  const auto router = make_default_router(machine);
  const std::vector<Vertex> all_procs = processor_list(machine);

  {
    const auto sym = TrafficDistribution::symmetric(all_procs);
    report.symmetric_rate =
        measure_throughput(machine, *router, sym, rng, options.throughput)
            .rate;
  }
  if (report.symmetric_rate <= 0.0) return report;

  for (double frac : options.subset_fractions) {
    // A random subset keeps the probe adversarially neutral; a machine with
    // a genuinely faster sub-network still gets caught because the paper's
    // quantifier is over Ω(n²)-pair distributions, which random subsets of
    // Ω(n) nodes with Ω(1) pair density realize.
    std::vector<Vertex> subset = all_procs;
    shuffle(subset, rng);
    const std::size_t keep = std::max<std::size_t>(
        4, static_cast<std::size_t>(frac * static_cast<double>(subset.size())));
    subset.resize(std::min(keep, subset.size()));

    for (double density : options.pair_densities) {
      const auto quasi = density >= 1.0
                             ? TrafficDistribution::symmetric(subset)
                             : TrafficDistribution::quasi_symmetric(
                                   subset, density, rng());
      BottleneckProbe probe;
      probe.subset_fraction = frac;
      probe.pair_density = density;
      probe.rate =
          measure_throughput(machine, *router, quasi, rng, options.throughput)
              .rate;
      probe.ratio_to_symmetric = probe.rate / report.symmetric_rate;
      report.worst_ratio =
          std::max(report.worst_ratio, probe.ratio_to_symmetric);
      report.probes.push_back(probe);
    }
  }
  return report;
}

}  // namespace netemu
