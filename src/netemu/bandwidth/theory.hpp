#pragma once
// Closed-form β and Λ per machine family — the Table 4 registry.
//
// β(M) is the delivery rate under symmetric traffic; Λ(M) is the minimal
// guest computation length required by the Efficient Emulation Theorem
// (proportional to diameter for every family here).  Both are expressed as
// functions of the machine's TOTAL vertex count n.  Leading constants are
// calibrated to the natural witness (2·bisection for β, diameter for Λ) so
// that the crossover plots are sensible, but only the exponents carry the
// paper's content.

#include "netemu/bandwidth/asymptotic.hpp"
#include "netemu/topology/machine.hpp"

namespace netemu {

/// β(family_k) as a function of total size n.
AsymFn beta_theory(Family f, unsigned k = 2);

/// Λ(family_k) as a function of total size n.
AsymFn lambda_theory(Family f, unsigned k = 2);

/// True for the families the paper tags bottleneck-free (the machines whose
/// quasi-symmetric delivery rate is within a constant of β).  The GlobalBus
/// trivially qualifies; the Expander/Multibutterfly qualify; every Table 4
/// family does.  Kept as a predicate so hypothetical pathological machines
/// can opt out.
bool is_bottleneck_free(Family f);

/// Guest families of Theorems 2-5, in table order.
struct TheoremRow {
  Family guest;
  unsigned guest_k;       ///< dimension (where applicable)
  const char* label;
};

/// The theorem each guest family belongs to (2, 3/4, or 5); used by the
/// table benches to organize output.
int theorem_for_guest(Family f);

}  // namespace netemu
