#pragma once
// Empirical bandwidth estimation: the measured side of Table 4.
//
// Three estimators bracket β(M):
//   * simulated  — β̂ from the packet simulator under symmetric traffic
//                  (a lower bound witness: some schedule achieves it);
//   * cut_upper  — 2 · bisection width (half the symmetric traffic must
//                  cross any balanced cut, one message per wire per tick);
//   * flux_upper — E(M) / avg distance (Lemma 10's flux argument: m messages
//                  consume m·δ̄ wire-ticks out of E per tick).
// For a bottleneck-free machine all three agree within constants; the
// Theorem 6 bench prints the ratios.

#include <algorithm>

#include "netemu/cut/bisection.hpp"
#include "netemu/routing/throughput.hpp"
#include "netemu/topology/machine.hpp"

namespace netemu {

struct BetaBounds {
  double simulated = 0.0;
  double cut_upper = 0.0;
  double flux_upper = 0.0;
  double upper() const { return std::min(cut_upper, flux_upper); }
};

struct BetaMeasureOptions {
  ThroughputOptions throughput;
  unsigned kl_restarts = 8;
  /// Sampling cutoff for exact average distance.
  std::size_t avg_dist_exact_cutoff = 2048;
  /// Pool for throughput trials and KL-bisection restarts.  Overrides
  /// throughput.pool when set; nullptr leaves KL on the global pool.
  ThreadPool* pool = nullptr;
};

/// Measure all three estimators on a machine.  Weak-node capacities make the
/// flux bound pessimistic (it counts wires, not node ports); for machines
/// with forwarding caps the flux bound uses min(wires, total node capacity).
BetaBounds measure_beta(const Machine& machine, Prng& rng,
                        const BetaMeasureOptions& options = {});

/// Simulated β̂ only (cheaper; used by the Table 4 ladder at larger sizes).
double measure_beta_simulated(const Machine& machine, Prng& rng,
                              const ThroughputOptions& options = {});

}  // namespace netemu
