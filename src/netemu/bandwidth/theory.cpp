#include "netemu/bandwidth/theory.hpp"

namespace netemu {

AsymFn beta_theory(Family f, unsigned k) {
  const double kk = static_cast<double>(k);
  switch (f) {
    case Family::kLinearArray:
      return {2.0, 0.0, 0.0};  // bisection 1
    case Family::kRing:
      return {4.0, 0.0, 0.0};  // bisection 2
    case Family::kGlobalBus:
      return {1.0, 0.0, 0.0};  // one message per tick crosses the bus
    case Family::kTree:
    case Family::kWeakPPN:
      return {2.0, 0.0, 0.0};  // root bottleneck
    case Family::kFatTree:
      return {0.5, 1.0, 0.0};  // capacity doubles per level: beta = Θ(n)
    case Family::kXTree:
      return {2.0, 0.0, 1.0};  // one edge per level crosses the middle
    case Family::kMesh:
      return {2.0, (kk - 1.0) / kk, 0.0};  // bisection side^(k-1)
    case Family::kTorus:
      return {4.0, (kk - 1.0) / kk, 0.0};
    case Family::kXGrid:
      return {6.0, (kk - 1.0) / kk, 0.0};  // axis + two diagonals per face
    case Family::kMeshOfTrees:
    case Family::kMultigrid:
    case Family::kPyramid:
      // Base-mesh-dominated bisection, Θ(n^{(k-1)/k}) in total size.
      return {2.0, (kk - 1.0) / kk, 0.0};
    case Family::kButterfly:
    case Family::kWrappedButterfly:
    case Family::kCCC:
    case Family::kDeBruijn:
    case Family::kShuffleExchange:
    case Family::kMultibutterfly:
    case Family::kExpander:
      return {1.0, 1.0, -1.0};  // Θ(n / lg n)
    case Family::kHypercube:
      // Weak model: one wire per node per tick, average distance lg(n)/2.
      return {2.0, 1.0, -1.0};
  }
  return {1.0, 0.0, 0.0};
}

AsymFn lambda_theory(Family f, unsigned k) {
  const double kk = static_cast<double>(k);
  switch (f) {
    case Family::kLinearArray:
      return {1.0, 1.0, 0.0};
    case Family::kRing:
      return {0.5, 1.0, 0.0};
    case Family::kGlobalBus:
      return {2.0, 0.0, 0.0};
    case Family::kTree:
    case Family::kFatTree:
    case Family::kWeakPPN:
    case Family::kXTree:
      return {2.0, 0.0, 1.0};
    case Family::kMesh:
      return {kk, 1.0 / kk, 0.0};
    case Family::kTorus:
      return {kk / 2.0, 1.0 / kk, 0.0};
    case Family::kXGrid:
      return {1.0, 1.0 / kk, 0.0};
    case Family::kMeshOfTrees:
    case Family::kMultigrid:
    case Family::kPyramid:
      return {4.0, 0.0, 1.0};
    case Family::kButterfly:
    case Family::kWrappedButterfly:
    case Family::kCCC:
    case Family::kDeBruijn:
    case Family::kShuffleExchange:
    case Family::kMultibutterfly:
    case Family::kHypercube:
      return {2.0, 0.0, 1.0};
    case Family::kExpander:
      return {2.0, 0.0, 1.0};
  }
  return {1.0, 0.0, 0.0};
}

bool is_bottleneck_free(Family f) {
  // Every family the paper tables is bottleneck-free (noted without proof
  // in the paper); the predicate exists so tests can exercise the negative
  // path with synthetic machines.
  (void)f;
  return true;
}

int theorem_for_guest(Family f) {
  switch (f) {
    case Family::kXTree:
      return 2;
    case Family::kMesh:
    case Family::kTorus:
    case Family::kXGrid:
      return 2;  // Theorem "Table 1" group (mesh-like guests)
    case Family::kMeshOfTrees:
    case Family::kMultigrid:
    case Family::kPyramid:
      return 3;
    case Family::kButterfly:
    case Family::kWrappedButterfly:
    case Family::kDeBruijn:
    case Family::kShuffleExchange:
    case Family::kCCC:
    case Family::kMultibutterfly:
    case Family::kExpander:
    case Family::kHypercube:
      return 5;
    default:
      return 0;
  }
}

}  // namespace netemu
