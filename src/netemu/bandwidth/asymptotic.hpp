#pragma once
// Asymptotic algebra over functions of the form  c · n^p · lg^q n.
//
// Every bandwidth and Λ entry of Table 4 has this shape, so the whole of
// Tables 1–3 can be derived *mechanically*: the maximum host size for an
// efficient emulation solves  |G|/|H| = β(G)/β(H), i.e.
//     m^(1-a) · lg^(-b) m  =  n^(1-p) · lg^(-q) n
// for βG = n^p lg^q n, βH = m^a lg^b m.  solve_max_host() produces both the
// numeric root for a concrete n and the closed Θ-form in |G| (including the
// lg lg |G| correction that appears when the solution is polylogarithmic).

#include <string>

namespace netemu {

/// f(n) = c · n^p · lg^q(n)  (lg clamped at 1 below n = 2).
struct AsymFn {
  double c = 1.0;
  double p = 0.0;
  double q = 0.0;

  double operator()(double n) const;

  /// "Θ(n^{2/3} lg n)" with exponents rendered as small fractions when
  /// possible.  var names the variable ("n", "|G|", ...).
  std::string theta_string(const std::string& var = "n") const;
};

AsymFn operator*(const AsymFn& a, const AsymFn& b);
AsymFn operator/(const AsymFn& a, const AsymFn& b);

/// Render exponent e as "", "^2", "^{1/2}", "^{0.37}" (fraction with
/// denominator <= 12 when within 1e-9).
std::string exponent_string(double e);

/// Closed Θ-form of a max-host-size solution:
///   n^alpha · lg^beta n · (lg lg n)^gamma, or 2^Θ(...) when exponential,
///   or Θ(n) when bandwidth imposes no constraint below the guest size.
struct HostSizeForm {
  double alpha = 0.0;
  double beta = 0.0;
  double gamma = 0.0;
  bool exponential = false;   ///< host bandwidth grows ~linearly: m = 2^Θ(·)
  bool unconstrained = false; ///< solution >= n: no bandwidth obstruction

  std::string to_string(const std::string& var = "|G|") const;
};

struct HostSizeSolution {
  double numeric = 0.0;     ///< largest m in [2, n] with βG(n)/βH(m) <= n/m
  HostSizeForm form;        ///< closed Θ-form
};

/// Solve for the maximum host size given guest bandwidth βG, host bandwidth
/// family βH, and concrete guest size n.  Requires βH nondecreasing with
/// m/βH(m) nondecreasing (true for every Table 4 family).
HostSizeSolution solve_max_host(const AsymFn& beta_guest,
                                const AsymFn& beta_host, double n);

}  // namespace netemu
