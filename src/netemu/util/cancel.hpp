#pragma once
// Cooperative cancellation: the deadline/cancel plumbing every long-running
// compute path checks (docs/LIFECYCLE.md).
//
// Model:
//  * a CancelSource owns the shared cancel state — a cancel flag plus an
//    optional deadline — and is held by whoever can decide to stop the work
//    (the executor's flight, a drain sequence, a test);
//  * CancelTokens are cheap copyable views handed down into compute code
//    (run_batch tick loops, measure_throughput trials, BfsRouter BFS prep).
//    A default-constructed token is NULL: it can never fire and its checks
//    cost one pointer compare, so un-cancellable callers pay ~nothing;
//  * compute code polls cancelled() at an amortized cadence —
//    kCancelCheckTicks units of work between checks — and raises
//    CancelledError to unwind.  The contract "cancelled work stops within
//    one check quantum" is what the executor's reclaimed-CPU accounting and
//    netemu_serve's bounded drain both lean on.
//
// Determinism: checking a token never draws randomness or reorders work, so
// a run with a never-firing token is bit-identical to a run with none
// (tests/sim_golden_test.cpp proves it against the golden tables).
//
// The deadline is latched: once observed expired, the flag is set so later
// checks are a single relaxed load instead of a clock read.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>

namespace netemu {

/// Thrown by cancelled compute to unwind out of a simulation / trial loop.
/// The executor maps it to a "cancelled" error response (or to a degraded
/// partial result when measure_throughput already banked completed trials).
class CancelledError : public std::runtime_error {
 public:
  CancelledError() : std::runtime_error("cancelled") {}
  explicit CancelledError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Units of work (simulator ticks, routed messages, BFS pops) between
/// cancellation checks.  Power of two so the hot-loop test compiles to one
/// AND + branch.
inline constexpr std::uint64_t kCancelCheckTicks = 4096;

class CancelSource;

/// Cheap copyable view of a CancelSource's state.  Default-constructed
/// tokens are null: never fire, near-zero check cost.
class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;

  /// Can this token ever fire?  (False for default-constructed tokens.)
  bool valid() const noexcept { return state_ != nullptr; }

  /// Has cancellation been requested (or the deadline passed)?  Latches the
  /// deadline into the flag so repeated checks stay one relaxed load.
  bool cancelled() const noexcept {
    if (!state_) return false;
    if (state_->flag.load(std::memory_order_relaxed)) return true;
    if (state_->has_deadline && Clock::now() >= state_->deadline) {
      state_->flag.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  /// Throw CancelledError if cancelled.  The amortized check compute loops
  /// call every kCancelCheckTicks units of work.
  void check() const {
    if (cancelled()) throw CancelledError("cancellation requested");
  }

 private:
  friend class CancelSource;

  struct State {
    std::atomic<bool> flag{false};
    bool has_deadline = false;        // immutable after arm()
    Clock::time_point deadline{};     // immutable after arm()
  };

  explicit CancelToken(std::shared_ptr<State> state)
      : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

/// Owner side: request_cancel() / a deadline flips every token minted from
/// this source.  Thread-safe; tokens outlive the source via shared state.
class CancelSource {
 public:
  using Clock = CancelToken::Clock;

  CancelSource() : state_(std::make_shared<CancelToken::State>()) {}

  CancelSource(const CancelSource&) = delete;
  CancelSource& operator=(const CancelSource&) = delete;
  CancelSource(CancelSource&&) = default;
  CancelSource& operator=(CancelSource&&) = default;

  /// Flip the cancel flag.  Idempotent; safe from any thread.
  void request_cancel() noexcept {
    state_->flag.store(true, std::memory_order_relaxed);
  }

  /// Arm a wall-clock deadline.  Must be called before tokens are checked
  /// concurrently (the executor arms it at flight creation, before the
  /// compute task is submitted); 0 ms means "no deadline".
  void set_deadline_after_ms(std::uint64_t ms) noexcept {
    if (ms == 0) return;
    state_->deadline = Clock::now() + std::chrono::milliseconds(ms);
    state_->has_deadline = true;
  }

  bool cancel_requested() const noexcept {
    return state_->flag.load(std::memory_order_relaxed);
  }

  /// Mint a token viewing this source's state.
  CancelToken token() const noexcept { return CancelToken(state_); }

 private:
  std::shared_ptr<CancelToken::State> state_;
};

}  // namespace netemu
