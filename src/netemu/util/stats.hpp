#pragma once
// Descriptive statistics and least-squares fitting used by the benchmark
// harness to compare measured bandwidth curves against the paper's Θ-forms.

#include <span>
#include <string>
#include <vector>

namespace netemu {

struct Summary {
  double mean = 0.0;
  double stddev = 0.0;  // sample standard deviation (n-1 denominator)
  double min = 0.0;
  double max = 0.0;
  std::size_t count = 0;
};

Summary summarize(std::span<const double> xs);

/// Ordinary least squares fit y = a + b*x.  Returns {intercept a, slope b,
/// coefficient of determination r2}.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};

LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys);

/// Fit y = c * n^p on log-log axes: returns p (the exponent) and lg c.
/// This is the primary tool for checking Table 4: a machine family with
/// β(n) = Θ(n^p · lg^q n) measured over a geometric ladder of sizes must
/// produce a log-log slope near p (the lg^q factor perturbs the slope by
/// O(q / ln n), which the tolerance in the benches accounts for).
struct PowerFit {
  double exponent = 0.0;   // p
  double lg_coeff = 0.0;   // lg2(c)
  double r2 = 0.0;
};

PowerFit fit_power(std::span<const double> ns, std::span<const double> ys);

/// Fit y = c * n^p * lg(n)^q with q given, i.e. fit the power law to
/// y / lg(n)^q.  Lets a bench "divide out" the known log factor and check
/// that the residual exponent matches.
PowerFit fit_power_with_log(std::span<const double> ns,
                            std::span<const double> ys, double log_exponent);

/// Geometric mean of strictly positive values.
double geometric_mean(std::span<const double> xs);

/// Median (copies and sorts; fine for bench-sized data).
double median(std::vector<double> xs);

}  // namespace netemu
