#pragma once
// Minimal hand-rolled JSON — parser, value model, and serializer — for the
// planner service's wire protocol and cache file.  No external dependency.
//
// Deliberate simplifications that are fine for this protocol:
//  * objects are std::map, so keys are stored (and serialized) sorted —
//    which is exactly what the content-addressed cache key needs: two
//    requests differing only in field order dump to identical bytes;
//  * numbers are doubles (the protocol's integers — sizes, seeds, ports —
//    all fit in 2^53), serialized without a trailing ".0" when integral;
//  * \uXXXX escapes decode to UTF-8, surrogate pairs included.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace netemu {

class Json;
using JsonArray = std::vector<Json>;
using JsonObject = std::map<std::string, Json>;

/// Maximum container nesting depth parse() accepts.  Deeper documents are
/// rejected with an error instead of recursing toward a stack overflow —
/// the wire protocol and cache file never legitimately nest past a handful
/// of levels.
inline constexpr int kJsonMaxDepth = 64;

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;                      // null
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double d) : type_(Type::kNumber), num_(d) {}
  Json(int i) : type_(Type::kNumber), num_(i) {}
  Json(unsigned u) : type_(Type::kNumber), num_(u) {}
  Json(long i) : type_(Type::kNumber), num_(static_cast<double>(i)) {}
  Json(unsigned long u) : type_(Type::kNumber), num_(static_cast<double>(u)) {}
  Json(long long i) : type_(Type::kNumber), num_(static_cast<double>(i)) {}
  Json(unsigned long long u)
      : type_(Type::kNumber), num_(static_cast<double>(u)) {}
  Json(const char* s) : type_(Type::kString), str_(s) {}
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}
  Json(JsonArray a)
      : type_(Type::kArray), arr_(std::make_shared<JsonArray>(std::move(a))) {}
  Json(JsonObject o)
      : type_(Type::kObject),
        obj_(std::make_shared<JsonObject>(std::move(o))) {}

  static Json array() { return Json(JsonArray{}); }
  static Json object() { return Json(JsonObject{}); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool(bool def = false) const { return is_bool() ? bool_ : def; }
  double as_number(double def = 0.0) const { return is_number() ? num_ : def; }
  std::int64_t as_int(std::int64_t def = 0) const {
    return is_number() ? static_cast<std::int64_t>(num_) : def;
  }
  std::uint64_t as_uint(std::uint64_t def = 0) const {
    return is_number() ? static_cast<std::uint64_t>(num_) : def;
  }
  const std::string& as_string() const;  // empty string when not a string

  const JsonArray& items() const;    // empty when not an array
  const JsonObject& fields() const;  // empty when not an object
  JsonArray& items();                // converts to array if needed
  JsonObject& fields();              // converts to object if needed

  /// Object field lookup; returns a null Json when absent or not an object.
  const Json& operator[](const std::string& key) const;
  /// Mutable object field access (converts to object if needed).
  Json& operator[](const std::string& key);

  bool contains(const std::string& key) const;

  /// Compact single-line serialization (sorted object keys).
  std::string dump() const;
  void dump_to(std::string& out) const;

  /// Parse one JSON document; trailing whitespace allowed, trailing garbage
  /// is an error.  Returns null and sets *error on failure.  Malformed
  /// input never yields a partial document: strict number grammar (no hex,
  /// inf/nan, leading '+', or bare '.5'), unpaired \uXXXX surrogates are
  /// rejected, and nesting beyond kJsonMaxDepth is an error.
  static Json parse(const std::string& text, std::string* error = nullptr);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  // Shared pointers keep Json copyable and cheap to return by value; the
  // service never mutates a parsed document in place after sharing it.
  std::shared_ptr<JsonArray> arr_;
  std::shared_ptr<JsonObject> obj_;
};

/// Escape a string into a JSON string literal (without quotes).
void json_escape(const std::string& in, std::string& out);

}  // namespace netemu
