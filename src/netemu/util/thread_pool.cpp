#include "netemu/util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <memory>

namespace netemu {

namespace {

// Helper tasks beyond the machine's core count only add context-switch and
// cache-thrash overhead: the loops below are CPU-bound, so once every core
// has a runnable thread, extra helpers make the work slower, not faster (a
// pool sized for 8 workers on a 1-core box used to run estimate trials ~10%
// slower than a serial loop).  hardware_concurrency() may report 0
// ("unknown"); treat that as "no cap".
std::size_t hardware_cap(std::size_t want, std::size_t reserved) {
  const std::size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) return want;
  const std::size_t cap = hw > reserved ? hw - reserved : 0;
  return std::min(want, cap);
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_task_.notify_all();
  // Workers only exit once the queue is empty (see worker_loop), so joining
  // here deterministically drains every task accepted before stopping_ flipped.
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

bool ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    if (stopping_) return false;
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
  return true;
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

std::size_t ThreadPool::pending() const {
  std::lock_guard lock(mutex_);
  return in_flight_;
}

std::uint64_t ThreadPool::dropped_exceptions() const {
  std::lock_guard lock(mutex_);
  return dropped_exceptions_;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    bool threw = false;
    try {
      task();
    } catch (...) {
      // An escaping exception would std::terminate the whole process; a
      // daemon's pool swallows it and counts it instead (see header).
      threw = true;
    }
    {
      std::lock_guard lock(mutex_);
      if (threw) ++dropped_exceptions_;
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t total = end - begin;
  // The caller blocks in wait_idle() rather than participating, so all hw
  // cores are available to workers (reserved = 0).
  const std::size_t slots =
      hardware_cap(std::min(total, workers_.size()), 0);
  if (slots <= 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  std::exception_ptr first_error;
  std::mutex error_mutex;
  const std::size_t chunk = (total + slots - 1) / slots;
  for (std::size_t s = 0; s < slots; ++s) {
    const std::size_t lo = begin + s * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    const bool accepted = submit([lo, hi, &fn, &first_error, &error_mutex] {
      try {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
    if (!accepted) {
      // Pool is shutting down: fall back to the calling thread so the loop
      // still covers the full range.
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }
  }
  wait_idle();
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::for_n(std::size_t count,
                       const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  // The caller runs work() itself, occupying one core; helpers beyond the
  // remaining cores would only be oversubscription (reserved = 1).  Results
  // are collected by index, so the helper count never affects the output —
  // only the wall clock.
  const std::size_t helpers =
      hardware_cap(std::min(count - 1, workers_.size()), 1);
  if (count == 1 || helpers == 0) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  struct Shared {
    std::function<void(std::size_t)> fn;
    std::size_t count = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex mutex;
    std::condition_variable cv;
    std::exception_ptr error;  // first one wins; guarded by mutex
  };
  auto shared = std::make_shared<Shared>();
  shared->fn = fn;
  shared->count = count;

  // Helpers hold the state by shared_ptr: one that only gets scheduled after
  // the caller already finished the loop claims an out-of-range index and
  // exits without touching anything else.
  auto work = [shared] {
    for (;;) {
      const std::size_t i =
          shared->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= shared->count) return;
      try {
        shared->fn(i);
      } catch (...) {
        std::lock_guard lock(shared->mutex);
        if (!shared->error) shared->error = std::current_exception();
      }
      if (shared->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          shared->count) {
        std::lock_guard lock(shared->mutex);  // pairs with the caller's wait
        shared->cv.notify_all();
      }
    }
  };

  for (std::size_t h = 0; h < helpers; ++h) {
    if (!submit(work)) break;  // shutting down: the caller covers the rest
  }
  work();
  {
    std::unique_lock lock(shared->mutex);
    shared->cv.wait(lock, [&] {
      return shared->done.load(std::memory_order_acquire) == shared->count;
    });
    if (shared->error) std::rethrow_exception(shared->error);
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace netemu
