#pragma once
// Content hashing for the result cache: 64-bit FNV-1a over a canonical byte
// string.  FNV-1a is not cryptographic — the cache key space is tiny (a few
// enums and numbers under the caller's control), so accidental collision
// resistance is all that is required, and the hash must be stable across
// runs, platforms, and standard libraries (std::hash is none of those).

#include <cstdint>
#include <string>

namespace netemu {

inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

constexpr std::uint64_t fnv1a64(const char* data, std::size_t len,
                                std::uint64_t seed = kFnvOffsetBasis) {
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= kFnvPrime;
  }
  return h;
}

inline std::uint64_t fnv1a64(const std::string& s,
                             std::uint64_t seed = kFnvOffsetBasis) {
  return fnv1a64(s.data(), s.size(), seed);
}

/// Fixed-width lowercase hex rendering (16 digits), the cache file's key
/// format — u64 does not survive a trip through a JSON double.
std::string hex64(std::uint64_t v);

/// Inverse of hex64; returns false on malformed input.
bool parse_hex64(const std::string& s, std::uint64_t& out);

}  // namespace netemu
