#include "netemu/util/hash.hpp"

namespace netemu {

std::string hex64(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xF];
    v >>= 4;
  }
  return out;
}

bool parse_hex64(const std::string& s, std::uint64_t& out) {
  if (s.empty() || s.size() > 16) return false;
  out = 0;
  for (const char c : s) {
    out <<= 4;
    if (c >= '0' && c <= '9') out |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') out |= static_cast<std::uint64_t>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F') out |= static_cast<std::uint64_t>(c - 'A' + 10);
    else return false;
  }
  return true;
}

}  // namespace netemu
