#pragma once
// A minimal work-stealing-free thread pool with a parallel_for helper.
//
// netemu's expensive kernels (all-pairs BFS witnesses, repeated routing
// trials, Kernighan–Lin restarts) are embarrassingly parallel over an index
// range, so a static block-cyclic parallel_for is all we need.  Tasks must
// not throw across the pool boundary; exceptions are rethrown on the calling
// thread after the loop completes (first one wins).
//
// Shutdown contract (the service daemon depends on it): shutdown() — and the
// destructor, which calls it — DRAINS every task already accepted, then
// joins the workers.  submit() after shutdown has begun is rejected (returns
// false) rather than enqueued, so no task can be silently dropped and no
// wait_idle() caller can hang on a task nobody will run.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace netemu {

class ThreadPool {
 public:
  /// threads == 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Submit a task; returns immediately.  Returns false (and discards the
  /// task) if shutdown has already begun.
  bool submit(std::function<void()> task);

  /// Tasks submitted but not yet finished (queued + running).
  std::size_t pending() const;

  /// Tasks whose exception escaped to the pool boundary.  Such exceptions
  /// are swallowed (and counted) rather than terminating the process — a
  /// long-running daemon must survive a buggy task.  parallel_for has its
  /// own rethrow path and never increments this.
  std::uint64_t dropped_exceptions() const;

  /// Block until all submitted tasks have finished.
  void wait_idle();

  /// Begin shutdown: reject new submissions, drain every accepted task, then
  /// join the workers.  Idempotent; called by the destructor.
  void shutdown();

  /// Run fn(i) for i in [begin, end) across the pool, blocking until done.
  /// Indices are split into contiguous blocks, one per worker slot, which is
  /// the right shape for cache-friendly per-vertex loops.
  ///
  /// NOT safe to call from inside a pool task: it waits for the whole pool
  /// to go idle, which includes the calling task itself.  Use for_n there.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// Collaborative indexed loop: run fn(i) for i in [0, count), claiming
  /// indices from a shared atomic counter.  The CALLER participates — it
  /// keeps claiming and running indices itself — so unlike parallel_for this
  /// is safe (and deadlock-free) when invoked from inside a pool task, even
  /// when every worker is busy: the caller simply runs everything.  Helper
  /// tasks are submitted best-effort; idle workers pick indices up as they
  /// free.  The first exception thrown by fn is rethrown on the caller after
  /// all claimed indices finish.
  void for_n(std::size_t count, const std::function<void(std::size_t)>& fn);

  /// Process-wide default pool (lazily constructed).
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  mutable std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  std::uint64_t dropped_exceptions_ = 0;
  bool stopping_ = false;
};

}  // namespace netemu
