#pragma once
// Tiny command-line flag parser for the examples and bench binaries.
// Supports --name=value and --name value, plus boolean --flag.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace netemu {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& def = "") const;
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  double get_double(const std::string& name, double def) const;

  /// Positional (non --flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Program name (argv[0]).
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace netemu
