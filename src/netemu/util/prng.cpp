// prng.hpp is header-only; this translation unit exists so the util library
// always has at least one object file per public header and so that the
// header is compiled standalone at least once (catches missing includes).
#include "netemu/util/prng.hpp"
