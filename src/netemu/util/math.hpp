#pragma once
// Small integer/float math helpers shared across netemu.

#include <bit>
#include <cmath>
#include <cstdint>

namespace netemu {

/// floor(log2(x)) for x >= 1.
constexpr unsigned ilog2(std::uint64_t x) noexcept {
  return 63u - static_cast<unsigned>(std::countl_zero(x | 1));
}

/// ceil(log2(x)) for x >= 1.
constexpr unsigned ceil_log2(std::uint64_t x) noexcept {
  return x <= 1 ? 0u : ilog2(x - 1) + 1;
}

constexpr bool is_pow2(std::uint64_t x) noexcept {
  return x != 0 && (x & (x - 1)) == 0;
}

/// Integer power (overflow is the caller's problem; sizes here are modest).
constexpr std::uint64_t ipow(std::uint64_t base, unsigned exp) noexcept {
  std::uint64_t r = 1;
  while (exp--) r *= base;
  return r;
}

/// ceil(a / b) for positive integers.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) noexcept {
  return (a + b - 1) / b;
}

/// lg(x) = log2(x), clamped so lg of anything <= 2 is 1.  Every asymptotic
/// expression in the paper treats lg n as >= 1; clamping avoids division by
/// zero / sign flips at tiny sizes where Θ-notation is meaningless anyway.
inline double lg_clamped(double x) noexcept {
  return x <= 2.0 ? 1.0 : std::log2(x);
}

/// Reverse the low `bits` bits of x (used by bit-reversal traffic patterns).
constexpr std::uint64_t bit_reverse(std::uint64_t x, unsigned bits) noexcept {
  std::uint64_t r = 0;
  for (unsigned i = 0; i < bits; ++i) {
    r = (r << 1) | ((x >> i) & 1u);
  }
  return r;
}

/// Rotate the low `bits` bits of x left by one (perfect shuffle).
constexpr std::uint64_t rotl_bits(std::uint64_t x, unsigned bits) noexcept {
  if (bits == 0) return x;
  const std::uint64_t mask = (bits >= 64) ? ~0ULL : ((1ULL << bits) - 1);
  return ((x << 1) | (x >> (bits - 1))) & mask;
}

/// Rotate the low `bits` bits of x right by one.
constexpr std::uint64_t rotr_bits(std::uint64_t x, unsigned bits) noexcept {
  if (bits == 0) return x;
  const std::uint64_t mask = (bits >= 64) ? ~0ULL : ((1ULL << bits) - 1);
  return ((x >> 1) | (x << (bits - 1))) & mask;
}

}  // namespace netemu
