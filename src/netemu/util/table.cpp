#include "netemu/util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace netemu {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::integer(long long v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());

  std::vector<std::size_t> width(cols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << "| " << cell << std::string(width[c] - cell.size() + 1, ' ');
    }
    os << "|\n";
  };
  emit(header_);
  for (std::size_t c = 0; c < cols; ++c) {
    os << "|" << std::string(width[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& r : rows_) emit(r);
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace netemu
