#include "netemu/util/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace netemu {

namespace {

const std::string kEmptyString;
const JsonArray kEmptyArray;
const JsonObject kEmptyObject;
const Json kNullJson;

struct Parser {
  const char* p;
  const char* end;
  std::string error;

  bool fail(const std::string& msg) {
    if (error.empty()) error = msg;
    return false;
  }

  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) {
      ++p;
    }
  }

  bool literal(const char* word) {
    const std::size_t len = std::strlen(word);
    if (static_cast<std::size_t>(end - p) < len ||
        std::memcmp(p, word, len) != 0) {
      return fail(std::string("expected '") + word + "'");
    }
    p += len;
    return true;
  }

  bool parse_hex4(unsigned& out) {
    if (end - p < 4) return fail("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = *p++;
      out <<= 4;
      if (c >= '0' && c <= '9') out |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') out |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') out |= static_cast<unsigned>(c - 'A' + 10);
      else return fail("bad hex digit in \\u escape");
    }
    return true;
  }

  void append_utf8(std::string& s, unsigned cp) {
    if (cp < 0x80) {
      s += static_cast<char>(cp);
    } else if (cp < 0x800) {
      s += static_cast<char>(0xC0 | (cp >> 6));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      s += static_cast<char>(0xE0 | (cp >> 12));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      s += static_cast<char>(0xF0 | (cp >> 18));
      s += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool parse_string(std::string& out) {
    if (p >= end || *p != '"') return fail("expected string");
    ++p;
    out.clear();
    while (p < end) {
      const char c = *p++;
      if (c == '"') return true;
      if (c == '\\') {
        if (p >= end) return fail("truncated escape");
        const char e = *p++;
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            unsigned cp = 0;
            if (!parse_hex4(cp)) return false;
            if (cp >= 0xD800 && cp <= 0xDBFF && end - p >= 6 && p[0] == '\\' &&
                p[1] == 'u') {
              p += 2;
              unsigned lo = 0;
              if (!parse_hex4(lo)) return false;
              if (lo >= 0xDC00 && lo <= 0xDFFF) {
                cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
              } else {
                return fail("unpaired surrogate");
              }
            }
            // A surviving surrogate half (lone low, or high not followed by
            // \u) would encode to invalid UTF-8; reject it instead.
            if (cp >= 0xD800 && cp <= 0xDFFF) return fail("unpaired surrogate");
            append_utf8(out, cp);
            break;
          }
          default:
            return fail("unknown escape");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      } else {
        out += c;
      }
    }
    return fail("unterminated string");
  }

  /// JSON number grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?.
  /// strtod alone is far too permissive (hex, inf/nan, leading '+') so the
  /// span is validated first and strtod only converts the validated bytes.
  bool parse_number(Json& out) {
    const char* start = p;
    if (p < end && *p == '-') ++p;
    if (p >= end || *p < '0' || *p > '9') return fail("bad number");
    if (*p == '0') {
      ++p;
      if (p < end && *p >= '0' && *p <= '9') {
        return fail("bad number: leading zero");
      }
    } else {
      while (p < end && *p >= '0' && *p <= '9') ++p;
    }
    if (p < end && *p == '.') {
      ++p;
      if (p >= end || *p < '0' || *p > '9') {
        return fail("bad number: expected digit after '.'");
      }
      while (p < end && *p >= '0' && *p <= '9') ++p;
    }
    if (p < end && (*p == 'e' || *p == 'E')) {
      ++p;
      if (p < end && (*p == '+' || *p == '-')) ++p;
      if (p >= end || *p < '0' || *p > '9') {
        return fail("bad number: expected exponent digits");
      }
      while (p < end && *p >= '0' && *p <= '9') ++p;
    }
    // Copy so strtod cannot read past the validated span (it would happily
    // consume "0x10" from the underlying buffer).
    const std::string span(start, p);
    out = Json(std::strtod(span.c_str(), nullptr));
    return true;
  }

  bool parse_value(Json& out, int depth) {
    if (depth >= kJsonMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (p >= end) return fail("unexpected end of input");
    switch (*p) {
      case 'n':
        if (!literal("null")) return false;
        out = Json();
        return true;
      case 't':
        if (!literal("true")) return false;
        out = Json(true);
        return true;
      case 'f':
        if (!literal("false")) return false;
        out = Json(false);
        return true;
      case '"': {
        std::string s;
        if (!parse_string(s)) return false;
        out = Json(std::move(s));
        return true;
      }
      case '[': {
        ++p;
        JsonArray arr;
        skip_ws();
        if (p < end && *p == ']') {
          ++p;
          out = Json(std::move(arr));
          return true;
        }
        for (;;) {
          Json elem;
          if (!parse_value(elem, depth + 1)) return false;
          arr.push_back(std::move(elem));
          skip_ws();
          if (p >= end) return fail("unterminated array");
          if (*p == ',') {
            ++p;
            continue;
          }
          if (*p == ']') {
            ++p;
            out = Json(std::move(arr));
            return true;
          }
          return fail("expected ',' or ']' in array");
        }
      }
      case '{': {
        ++p;
        JsonObject obj;
        skip_ws();
        if (p < end && *p == '}') {
          ++p;
          out = Json(std::move(obj));
          return true;
        }
        for (;;) {
          skip_ws();
          std::string key;
          if (!parse_string(key)) return false;
          skip_ws();
          if (p >= end || *p != ':') return fail("expected ':' in object");
          ++p;
          Json value;
          if (!parse_value(value, depth + 1)) return false;
          obj[std::move(key)] = std::move(value);
          skip_ws();
          if (p >= end) return fail("unterminated object");
          if (*p == ',') {
            ++p;
            continue;
          }
          if (*p == '}') {
            ++p;
            out = Json(std::move(obj));
            return true;
          }
          return fail("expected ',' or '}' in object");
        }
      }
      default: {
        if (*p == '-' || (*p >= '0' && *p <= '9')) return parse_number(out);
        return fail("unexpected character");
      }
    }
  }
};

void dump_number(double v, std::string& out) {
  if (std::isnan(v) || std::isinf(v)) {
    out += "null";  // JSON has no NaN/Inf; null keeps the document valid
    return;
  }
  char buf[32];
  // Integral values within the double-exact range print without a fraction,
  // so cache keys and seeds round-trip byte-identically.
  if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  out += buf;
}

}  // namespace

void json_escape(const std::string& in, std::string& out) {
  for (const char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

const std::string& Json::as_string() const {
  return is_string() ? str_ : kEmptyString;
}

const JsonArray& Json::items() const {
  return is_array() && arr_ ? *arr_ : kEmptyArray;
}

const JsonObject& Json::fields() const {
  return is_object() && obj_ ? *obj_ : kEmptyObject;
}

JsonArray& Json::items() {
  if (!is_array() || !arr_) {
    type_ = Type::kArray;
    arr_ = std::make_shared<JsonArray>();
  }
  return *arr_;
}

JsonObject& Json::fields() {
  if (!is_object() || !obj_) {
    type_ = Type::kObject;
    obj_ = std::make_shared<JsonObject>();
  }
  return *obj_;
}

const Json& Json::operator[](const std::string& key) const {
  if (is_object() && obj_) {
    const auto it = obj_->find(key);
    if (it != obj_->end()) return it->second;
  }
  return kNullJson;
}

Json& Json::operator[](const std::string& key) { return fields()[key]; }

bool Json::contains(const std::string& key) const {
  return is_object() && obj_ && obj_->count(key) > 0;
}

void Json::dump_to(std::string& out) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      dump_number(num_, out);
      break;
    case Type::kString:
      out += '"';
      json_escape(str_, out);
      out += '"';
      break;
    case Type::kArray: {
      out += '[';
      bool first = true;
      for (const Json& elem : items()) {
        if (!first) out += ',';
        first = false;
        elem.dump_to(out);
      }
      out += ']';
      break;
    }
    case Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, value] : fields()) {
        if (!first) out += ',';
        first = false;
        out += '"';
        json_escape(key, out);
        out += "\":";
        value.dump_to(out);
      }
      out += '}';
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

Json Json::parse(const std::string& text, std::string* error) {
  Parser parser{text.data(), text.data() + text.size(), {}};
  Json out;
  if (!parser.parse_value(out, 0)) {
    if (error) *error = parser.error;
    return Json();
  }
  parser.skip_ws();
  if (parser.p != parser.end) {
    if (error) *error = "trailing garbage after document";
    return Json();
  }
  if (error) error->clear();
  return out;
}

}  // namespace netemu
