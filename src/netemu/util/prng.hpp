#pragma once
// Deterministic pseudo-random number generation for reproducible experiments.
//
// All randomness in netemu flows through Prng (xoshiro256**), seeded via
// splitmix64 so that nearby integer seeds still give independent streams.
// std::mt19937 is deliberately avoided: its state is large, its seeding is
// easy to get wrong, and its output sequence is not guaranteed identical
// across standard-library implementations for distribution adaptors.

#include <cstdint>
#include <limits>
#include <utility>

namespace netemu {

/// splitmix64 step: used for seeding and as a cheap standalone mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality, 256-bit state PRNG.
/// Satisfies UniformRandomBitGenerator.
class Prng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Prng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be nonzero.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t below(std::uint64_t bound) noexcept {
    __uint128_t m = static_cast<__uint128_t>(operator()()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(operator()()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) noexcept { return uniform() < p; }

  /// Derive an independent child stream (e.g. one per worker thread).
  Prng split() noexcept {
    return Prng(operator()() ^ 0xA3C59AC2ULL);
  }

  /// Deterministic indexed substream: stream(seed, i) is independent of
  /// stream(seed, j) for i != j and depends only on (seed, index) — the
  /// scheduling-independent seeding used for parallel trials (each trial t
  /// draws everything from stream(base, t), so results are identical no
  /// matter how many threads run them or in what order).
  static constexpr Prng stream(std::uint64_t seed,
                               std::uint64_t index) noexcept {
    std::uint64_t s = index;
    return Prng(seed ^ splitmix64(s));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

/// Fisher–Yates shuffle of a random-access container.
template <typename Container>
void shuffle(Container& c, Prng& rng) {
  using std::swap;
  for (std::size_t i = c.size(); i > 1; --i) {
    const std::size_t j = rng.below(i);
    swap(c[i - 1], c[j]);
  }
}

}  // namespace netemu
