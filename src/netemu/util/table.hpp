#pragma once
// ASCII table rendering for the benchmark harness.  Every bench prints the
// same table the paper does; this keeps the formatting in one place.

#include <iosfwd>
#include <string>
#include <vector>

namespace netemu {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a row; short rows are padded with empty cells, long rows grow
  /// the table's width.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format a double with the given precision.
  static std::string num(double v, int precision = 3);
  static std::string integer(long long v);

  std::size_t rows() const noexcept { return rows_.size(); }

  /// Render with column alignment and a header rule.
  void print(std::ostream& os) const;
  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace netemu
