#include "netemu/util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "netemu/util/math.hpp"

namespace netemu {

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.min = xs[0];
  s.max = xs[0];
  double sum = 0.0;
  for (double x : xs) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = sum / static_cast<double>(xs.size());
  if (xs.size() > 1) {
    double ss = 0.0;
    for (double x : xs) ss += (x - s.mean) * (x - s.mean);
    s.stddev = std::sqrt(ss / static_cast<double>(xs.size() - 1));
  }
  return s;
}

LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys) {
  assert(xs.size() == ys.size());
  LinearFit f;
  const auto n = static_cast<double>(xs.size());
  if (xs.size() < 2) return f;
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) return f;
  f.slope = (n * sxy - sx * sy) / denom;
  f.intercept = (sy - f.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  if (ss_tot > 0) {
    double ss_res = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const double e = ys[i] - (f.intercept + f.slope * xs[i]);
      ss_res += e * e;
    }
    f.r2 = 1.0 - ss_res / ss_tot;
  }
  return f;
}

PowerFit fit_power(std::span<const double> ns, std::span<const double> ys) {
  std::vector<double> lx, ly;
  lx.reserve(ns.size());
  ly.reserve(ys.size());
  for (std::size_t i = 0; i < ns.size(); ++i) {
    if (ns[i] <= 0 || ys[i] <= 0) continue;  // power law undefined; skip
    lx.push_back(std::log2(ns[i]));
    ly.push_back(std::log2(ys[i]));
  }
  const LinearFit lf = fit_linear(lx, ly);
  return PowerFit{lf.slope, lf.intercept, lf.r2};
}

PowerFit fit_power_with_log(std::span<const double> ns,
                            std::span<const double> ys, double log_exponent) {
  std::vector<double> adjusted(ys.begin(), ys.end());
  for (std::size_t i = 0; i < ns.size(); ++i) {
    adjusted[i] /= std::pow(lg_clamped(ns[i]), log_exponent);
  }
  return fit_power(ns, adjusted);
}

double geometric_mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += std::log(x);
  return std::exp(acc / static_cast<double>(xs.size()));
}

double median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid),
                   xs.end());
  double hi = xs[mid];
  if (xs.size() % 2 == 1) return hi;
  double lo = *std::max_element(xs.begin(),
                                xs.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

}  // namespace netemu
