#pragma once
// FleetRouter: the replicated front door over N netemu_serve backends.
//
//   request(doc)
//     ├─ route: rendezvous-rank the backends on the query's content
//     │         address — the same key the result caches use, so every
//     │         backend sees a stable shard of the key space and its cache
//     │         stays hot (free affinity, no rebalancing on membership
//     │         change)
//     ├─ health: skip backends whose circuit breaker is open; a half-open
//     │          backend gets exactly one in-flight probe; a backend whose
//     │          probed guard pressure is at/above the sink threshold moves
//     │          to the back of the order (prefer lower-pressure peers)
//     ├─ failover: a refused connect, dropped connection, or shed response
//     │            moves to the next hash choice — safe because every query
//     │            op is idempotent (content-addressed results)
//     └─ hedging (optional): if the primary has not answered by the hedge
//        deadline (fixed, or an observed latency percentile), fire the same
//        request at the next choice and take the first answer — tail
//        latency from one slow/stalled backend stops being the fleet's tail
//
// A background probe thread keeps health fresh: it sends {"op":"health"} to
// closed backends (liveness) and to half-open ones (recovery probes), so an
// ejected backend rejoins without waiting for live traffic to test it.
//
// Thread-safe: any number of threads may call request() concurrently.  The
// router keeps a small pool of persistent Client connections per backend.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "netemu/fleet/health.hpp"
#include "netemu/service/client.hpp"
#include "netemu/util/json.hpp"

namespace netemu {

/// One backend's address.  `id` is its rendezvous identity; leave empty to
/// derive "127.0.0.1:<port>" (stable across restarts of the same port).
struct FleetBackendConfig {
  std::uint16_t port = 0;
  std::string id;
};

class FleetRouter {
 public:
  struct Options {
    std::vector<FleetBackendConfig> backends;
    BackendHealth::Options health;
    /// Per-attempt client policy.  retry_overloaded is forced off: a shed
    /// must surface immediately so the router can fail it over instead of
    /// waiting out the backend's own backoff hint.
    Client::RetryPolicy client;
    /// Probe thread period; 0 disables background probing.
    std::uint64_t probe_interval_ms = 200;
    /// Hedged requests: fire a second attempt when the primary is slower
    /// than the hedge deadline.
    bool hedge = false;
    /// Fixed hedge deadline; 0 = adaptive (latency percentile below).
    std::uint64_t hedge_fixed_ms = 0;
    double hedge_percentile = 0.95;
    std::uint64_t hedge_min_delay_ms = 2;
    std::uint64_t hedge_max_delay_ms = 1000;
    /// Adaptive hedging stays off until this many latency samples exist.
    std::size_t hedge_min_samples = 16;
    /// Ring of recent request latencies feeding the percentile.
    std::size_t latency_window = 256;
    /// Idle persistent connections kept per backend.
    std::size_t pool_per_backend = 8;
    /// Overload-aware routing: a backend whose last health probe reported
    /// guard pressure at or above this sinks to the back of its rendezvous
    /// order (still tried — affinity loses to overload, not to liveness).
    /// 0 disables the preference.
    double pressure_sink_threshold = 0.9;
  };

  struct Result {
    bool ok = false;   ///< a response document arrived (check doc["ok"])
    Json doc;          ///< the backend's response document (when ok)
    std::string error; ///< why no backend answered (when !ok)
    std::size_t backend = static_cast<std::size_t>(-1);  ///< responder index
    int backends_tried = 0;
    bool hedged = false;     ///< a hedge was fired for this request
    bool hedge_won = false;  ///< ... and the hedge answered first
    bool cancel_fired = false;  ///< hedge loser sent {"op":"cancel"}
  };

  explicit FleetRouter(Options options);
  ~FleetRouter();

  FleetRouter(const FleetRouter&) = delete;
  FleetRouter& operator=(const FleetRouter&) = delete;

  /// Route one request document and block for its response.
  ///
  /// Observability: when the document carries a "trace" field, the whole
  /// residency is recorded as a `fleet.route` span (note: responder + tries)
  /// and any hedge as a `fleet.hedge` span (note: won | lost) in this
  /// process's scope::TraceStore; every breaker transition and hedge
  /// outcome additionally lands in the scope flight recorder.
  Result request(const Json& request_doc);

  /// request(), skipping one backend entirely (the scatterer's straggler
  /// retry must land somewhere OTHER than the backend presumed stuck).
  Result request(const Json& request_doc,
                 std::optional<std::size_t> exclude_backend);

  /// Rendezvous rank of every backend for this document's content address
  /// (exposed for tests and the `fleet` op).
  std::vector<std::size_t> rank_for(const Json& request_doc) const;

  /// Best-effort detached {"op":"cancel","trace":...} at one backend — the
  /// scatterer's cancel-on-satisfied, same mechanism as the hedge-loser
  /// cancel (docs/SCATTER.md).  No-op on an out-of-range index or zero id.
  void cancel_at(std::size_t index, std::uint64_t trace_id);

  /// Backends currently worth scattering over: circuit breaker closed and
  /// (when the sink threshold is armed) probed guard pressure below it.
  /// The scatterer caps its fan-out here so sub-queries never pile onto
  /// sunk or ejected backends.
  std::size_t available_backends() const;

  /// Send one document to EVERY backend (ignoring breaker state — this is
  /// an admin fan-out for `trace`/`stats` merging, not a routed query) and
  /// collect the responses that arrived.
  struct BroadcastReply {
    std::size_t backend = 0;
    Json doc;
  };
  std::vector<BroadcastReply> broadcast(const Json& request_doc);

  struct BackendStats {
    std::string id;
    std::uint16_t port = 0;
    BackendHealth::State state = BackendHealth::State::kClosed;
    double window_failure_rate = 0.0;
    std::uint64_t requests = 0;   ///< attempts routed at this backend
    std::uint64_t responses = 0;  ///< attempts that returned a document
    std::uint64_t shed = 0;       ///< responses that were overload sheds
    std::uint64_t refused = 0;    ///< connect-refused failures
    std::uint64_t transport_failures = 0;  ///< drops/timeouts (incl. refused)
    std::uint64_t probes = 0;     ///< background health probes sent
    std::uint64_t ejections = 0;  ///< breaker open transitions
    /// Guard pressure from the last health probe (0 until one answers;
    /// backends without a guard report queue fullness instead).
    double pressure = 0.0;
  };
  struct Stats {
    std::uint64_t requests = 0;    ///< request() calls
    std::uint64_t answered = 0;    ///< ... that returned a document
    std::uint64_t unanswered = 0;  ///< ... that exhausted every backend
    std::uint64_t failovers = 0;   ///< extra backends tried beyond the first
    std::uint64_t hedges_fired = 0;
    std::uint64_t hedges_won = 0;
    /// {"op":"cancel"} verbs fired at hedge losers the moment the winner's
    /// answer arrived (reclaims the loser's compute; see docs/LIFECYCLE.md).
    std::uint64_t cancels_fired = 0;
    std::vector<BackendStats> backends;
  };
  Stats stats() const;

  /// request() calls currently executing (the fleet daemon's drain polls
  /// this until in-flight proxied work has landed).
  std::size_t inflight() const;

  /// Stop the probe thread and wait for in-flight hedge attempts; called by
  /// the destructor.
  void stop();

  const Options& options() const { return options_; }

 private:
  struct Attempt {
    bool responded = false;  ///< a document arrived
    bool shed = false;       ///< ... but it was an overload shed
    Json doc;
    RequestFailure failure = RequestFailure::kNone;
    std::string error;
  };
  struct Backend {
    FleetBackendConfig config;
    BackendHealth health;
    std::vector<std::unique_ptr<Client>> idle;
    std::uint64_t requests = 0;
    std::uint64_t responses = 0;
    std::uint64_t shed = 0;
    std::uint64_t refused = 0;
    std::uint64_t transport_failures = 0;
    std::uint64_t probes = 0;
    /// Guard pressure parsed from the last health-probe response.
    double pressure = 0.0;
    /// Last breaker state seen by note_breaker_locked (event de-dup).
    BackendHealth::State last_state = BackendHealth::State::kClosed;
  };
  struct HedgeState;

  std::uint64_t now_ms() const;
  std::uint64_t route_key(const Json& request_doc) const;
  Attempt attempt(std::size_t index, const Json& request_doc);
  void record_attempt_locked(Backend& b, const Attempt& a, std::uint64_t now,
                             std::uint64_t trace_id);
  /// Emit a flight-recorder kBreaker event if `b`'s breaker state changed
  /// since last observed.  Caller holds mutex_.
  void note_breaker_locked(Backend& b, std::uint64_t now,
                           std::uint64_t trace_id) const;
  /// Next allowed candidate in `order` strictly after position `pos`
  /// (reserves a half-open probe slot); nullopt when none.
  std::optional<std::size_t> next_allowed(
      const std::vector<std::size_t>& order, std::size_t& pos);
  std::optional<std::uint64_t> hedge_delay_ms() const;
  void record_latency(double ms);
  void spawn_attempt(std::size_t index, const Json& request_doc,
                     std::shared_ptr<HedgeState> state);
  /// Best-effort detached {"op":"cancel","trace":...} at a hedge loser so
  /// its backend stops computing an answer nobody will read.
  void fire_cancel(std::size_t index, std::uint64_t trace_id);
  void probe_loop();

  Options options_;
  std::vector<std::string> ids_;  // rendezvous identities, by index
  const std::chrono::steady_clock::time_point started_;

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Backend>> backends_;
  std::uint64_t requests_ = 0;
  std::uint64_t answered_ = 0;
  std::uint64_t unanswered_ = 0;
  std::uint64_t failovers_ = 0;
  std::uint64_t hedges_fired_ = 0;
  std::uint64_t hedges_won_ = 0;
  std::uint64_t cancels_fired_ = 0;
  std::size_t active_requests_ = 0;  ///< request() calls executing now
  std::vector<double> latency_ms_;  // ring buffer
  std::size_t latency_next_ = 0;

  bool stopping_ = false;
  int inflight_ = 0;  ///< detached attempt threads still running
  std::condition_variable inflight_cv_;
  std::condition_variable probe_cv_;
  std::thread probe_thread_;
};

/// Serialize router stats into a JSON document (the `fleet` op's result).
Json fleet_stats_to_json(const FleetRouter::Stats& stats);

}  // namespace netemu
