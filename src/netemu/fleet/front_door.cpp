#include "netemu/fleet/front_door.hpp"

#include "netemu/scope/exposition.hpp"
#include "netemu/scope/flight_recorder.hpp"
#include "netemu/scope/trace.hpp"
#include "netemu/service/protocol.hpp"
#include "netemu/util/hash.hpp"

namespace netemu {

namespace {

std::string error_line(const std::string& message) {
  Json doc = Json::object();
  doc["ok"] = false;
  doc["error"] = message;
  return doc.dump();
}

std::string ok_line(Json result) {
  Json doc = Json::object();
  doc["ok"] = true;
  doc["result"] = std::move(result);
  return doc.dump();
}

}  // namespace

FleetFrontDoor::FleetFrontDoor(FleetRouter& router, Options options)
    : router_(router),
      options_(options),
      scatterer_(router, options.scatter) {}

std::string FleetFrontDoor::handle_trace(const Json& request) {
  const Json& id = request["id"];
  if (!id.is_string()) return error_line("trace: missing string field 'id'");
  const std::uint64_t trace_id = scope::parse_trace_id(id.as_string());
  if (trace_id == 0) {
    return error_line("trace: 'id' must be a nonzero hex64 id");
  }

  // Merge order: the fleet's own spans first (the request reached us before
  // any backend), then each backend's, in backend order.  Timestamps are
  // per-process monotonic and NOT comparable across sites — the "site"
  // annotation is the cross-process ordering key.
  Json spans = Json::array();
  for (const scope::Span& span : scope::TraceStore::global().get(trace_id)) {
    Json s = scope::span_to_json(span);
    s["site"] = "fleet";
    spans.items().push_back(std::move(s));
  }

  Json fan = Json::object();
  fan["op"] = "trace";
  fan["id"] = hex64(trace_id);
  for (FleetRouter::BroadcastReply& reply : router_.broadcast(fan)) {
    const Json& result = reply.doc["result"];
    if (!reply.doc["ok"].as_bool() || !result["found"].as_bool()) continue;
    const std::string& site =
        router_.options().backends[reply.backend].id;
    for (const Json& span : result["spans"].items()) {
      Json s = span;
      s["site"] = site;
      spans.items().push_back(std::move(s));
    }
  }

  Json result = Json::object();
  result["trace"] = hex64(trace_id);
  result["found"] = !spans.items().empty();
  result["spans"] = std::move(spans);
  return ok_line(std::move(result));
}

std::string FleetFrontDoor::handle_line(const std::string& line,
                                        bool* shutdown_requested,
                                        bool* drain_requested,
                                        const std::string& peer) {
  std::string parse_error;
  Json request = Json::parse(line, &parse_error);
  if (!parse_error.empty() || !request.is_object()) {
    return protocol_error_line(parse_error.empty() ? "not an object"
                                                   : parse_error);
  }

  const std::string& op = request["op"].as_string();
  if (op == "shutdown") {
    // Stops the front door only; backends are independent processes.
    if (shutdown_requested) *shutdown_requested = true;
    Json result = Json::object();
    result["stopping"] = true;
    return ok_line(std::move(result));
  }
  if (op == "drain") {
    // The front door holds no compute of its own; draining means "stop
    // accepting, let proxied requests land, go away" — the daemon runs that
    // once the flag is set.  Backends drain independently.
    if (drain_requested) *drain_requested = true;
    Json result = Json::object();
    result["draining"] = drain_requested != nullptr;
    return ok_line(std::move(result));
  }
  if (op == "fleet") {
    Json result = fleet_stats_to_json(router_.stats());
    const Scatterer::Stats sc = scatterer_.stats();
    Json scatter = Json::object();
    scatter["scatters"] = sc.scatters;
    scatter["subqueries"] = sc.subqueries;
    scatter["straggler_retries"] = sc.straggler_retries;
    scatter["merged_full"] = sc.merged_full;
    scatter["merged_degraded"] = sc.merged_degraded;
    scatter["failed"] = sc.failed;
    result["scatter"] = std::move(scatter);
    return ok_line(std::move(result));
  }
  if (op == "events") {
    Json result = Json::object();
    result["total"] = scope::FlightRecorder::global().total();
    result["events"] = scope::flight_recorder_to_json();
    return ok_line(std::move(result));
  }
  if (op == "trace") return handle_trace(request);

  // Trace minting: "trace":true (or trace_all) turns into a fresh id the
  // backends and the router's own spans will record under.  Read through
  // const access: the mutable operator[] INSERTS a null member, and a
  // "trace":null field fails query validation on every backend.
  const Json& as_const = request;
  if (as_const["trace"].is_bool()) {
    if (as_const["trace"].as_bool()) {
      request["trace"] = hex64(scope::mint_trace_id());
    } else {
      request.fields().erase("trace");
    }
  } else if (options_.trace_all && !as_const["trace"].is_string() &&
             query_kind_from_name(op).has_value()) {
    request["trace"] = hex64(scope::mint_trace_id());
  }

  // Client stamping: every backend sees the front door's source address, so
  // without this, all fleet traffic would collapse into one guard client.
  // Stamp the caller's connection tag unless the caller named itself.
  if (!peer.empty() && !as_const["client"].is_string() &&
      query_kind_from_name(op).has_value()) {
    request["client"] = "peer:" + peer;
  }

  // Big estimate sweeps scatter into trial-range sub-queries across the
  // backends and merge bit-identically (docs/SCATTER.md); everything else
  // routes whole.
  if (scatterer_.eligible(request)) {
    return scatterer_.scatter_line(request);
  }

  FleetRouter::Result r = router_.request(request);
  if (!r.ok) {
    Json doc = Json::object();
    doc["ok"] = false;
    doc["error"] = "fleet: " + r.error;
    doc["fleet_tried"] = static_cast<std::int64_t>(r.backends_tried);
    return doc.dump();
  }
  // Pass the backend's document through, annotated with who served it
  // (soak harnesses and curious clients both want to know).
  Json doc = r.doc;
  doc["served_by"] = router_.options().backends[r.backend].id;
  if (r.hedged) doc["hedged"] = r.hedge_won ? "won" : "lost";
  return doc.dump();
}

}  // namespace netemu
