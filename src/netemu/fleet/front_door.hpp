#pragma once
// The fleet front door: the protocol handler netemu_fleet plugs between its
// listening Server and a FleetRouter.  Library code (not example glue) so
// tests can drive a whole fleet in-process, line in / line out.
//
// Op handling:
//   shutdown  -> ack; stops the front door only (backends are independent)
//   drain     -> ack; netemu_fleet stops accepting, lets in-flight proxied
//                requests land within --drain-ms, and exits (backends keep
//                running — drain THEM individually to stop compute)
//   fleet     -> router stats (per-backend health, shed/failover/hedge)
//   events    -> this process's scope flight recorder (breaker transitions
//                and hedge outcomes, with trace ids)
//   trace     -> span merge: the fleet's own spans (site "fleet") plus the
//                op fanned out to EVERY backend, each backend's spans
//                annotated with the site that recorded them
//   queries   -> routed via FleetRouter::request; the response document is
//                passed through annotated with "served_by" (and "hedged").
//
// Trace minting: a query carrying "trace":true (boolean) gets a fresh
// trace id minted here — for clients that want tracing but cannot mint
// (shell one-liners).  With Options::trace_all every untraced query gets
// one.  String "trace" ids pass through untouched.

#include <memory>
#include <string>

#include "netemu/fleet/router.hpp"
#include "netemu/fleet/scatter.hpp"
#include "netemu/util/json.hpp"

namespace netemu {

class FleetFrontDoor {
 public:
  struct Options {
    /// Mint a trace id for every query that did not bring one.  Off by
    /// default: tracing every request makes every backend record spans.
    bool trace_all = false;
    /// Scatter-gather decomposition of big estimate sweeps across the
    /// backends (docs/SCATTER.md).  scatter.min_trials = 0 disables it.
    Scatterer::Options scatter;
  };

  explicit FleetFrontDoor(FleetRouter& router, Options options);
  explicit FleetFrontDoor(FleetRouter& router)
      : FleetFrontDoor(router, Options()) {}

  /// Handle one request line (no trailing newline); returns the response
  /// line.  The fleet-side twin of handle_request_line().  A drain op sets
  /// `drain_requested` (when non-null) for the daemon's drain sequence.
  /// `peer` is the connection's peer tag (Server::TaggedLineHandler): a
  /// query op carrying no "client" field is stamped "peer:<peer>" before
  /// routing, so backend guards can tell the fleet's callers apart even
  /// though every backend sees the same front-door source address.
  std::string handle_line(const std::string& line, bool* shutdown_requested,
                          bool* drain_requested = nullptr,
                          const std::string& peer = {});

  /// The scatterer's counters (tests and the `fleet` op).
  Scatterer::Stats scatter_stats() const { return scatterer_.stats(); }

 private:
  std::string handle_trace(const Json& request);

  FleetRouter& router_;
  Options options_;
  Scatterer scatterer_;
};

}  // namespace netemu
