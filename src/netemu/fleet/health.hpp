#pragma once
// BackendHealth: the per-backend circuit-breaker state machine.
//
//            consecutive transport failures >= threshold
//   kClosed ────────────────────────────────────────────► kOpen
//      ▲                                                    │
//      │ probe successes >= close_after_successes           │ open_cooldown
//      │                                                    ▼
//      └──────────────────────────────────────────────  kHalfOpen
//                        probe failure ──► back to kOpen
//
// Closed admits everything; open admits nothing (the router skips to the
// next rendezvous choice); half-open admits exactly one in-flight probe at
// a time — live traffic or the router's periodic health-op probe, whichever
// arrives first — so a recovering backend is tested without being flooded.
//
// Only *transport* failures (refused connects, dropped/timed-out
// connections) trip the breaker.  Server-side error documents and
// admission-control sheds are authoritative answers from a live process —
// the router fails sheds over, but they do not count against health.
//
// All methods take the caller's clock (`now_ms`, any monotonic ms counter)
// so tests drive transitions without sleeping.  Not thread-safe; the
// FleetRouter guards instances with its own mutex.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace netemu {

class BackendHealth {
 public:
  struct Options {
    /// Consecutive transport failures that open the breaker.
    int failure_threshold = 3;
    /// Time spent open before probe traffic is admitted (half-open).
    std::uint64_t open_cooldown_ms = 500;
    /// Probe successes in half-open needed to close again.
    int close_after_successes = 1;
    /// Rolling outcome window (stats only; 0 disables).
    std::size_t window = 64;
  };

  enum class State { kClosed, kOpen, kHalfOpen };
  static const char* state_name(State s);

  BackendHealth();  // all-default Options
  explicit BackendHealth(Options options);

  /// Current state; lazily transitions kOpen -> kHalfOpen once the cooldown
  /// has elapsed.
  State state(std::uint64_t now_ms);

  /// May a request be sent now?  Closed: always.  Open: never.  Half-open:
  /// only while no other probe is in flight (a true return reserves the
  /// probe slot until the next record_success/record_failure).
  bool allow(std::uint64_t now_ms);

  /// A response document arrived (any "ok" value — the transport worked).
  void record_success(std::uint64_t now_ms);

  /// A transport-level failure (refused, dropped, timed out).
  void record_failure(std::uint64_t now_ms);

  int consecutive_failures() const { return consecutive_failures_; }
  /// Transitions into kOpen (initial ejections + half-open re-openings).
  std::uint64_t ejections() const { return ejections_; }
  /// Failure fraction over the rolling window (0 when empty).
  double window_failure_rate() const;

  const Options& options() const { return options_; }

 private:
  void to_open(std::uint64_t now_ms);
  void record_window(bool failure);

  Options options_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  int half_open_successes_ = 0;
  bool probe_inflight_ = false;
  std::uint64_t opened_at_ms_ = 0;
  std::uint64_t ejections_ = 0;

  // Rolling outcome ring: true = failure.
  std::vector<bool> window_;
  std::size_t window_next_ = 0;
  std::size_t window_count_ = 0;
  std::size_t window_failures_ = 0;
};

}  // namespace netemu
