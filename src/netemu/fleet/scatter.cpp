#include "netemu/fleet/scatter.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>

#include "netemu/scope/flight_recorder.hpp"
#include "netemu/scope/metrics.hpp"
#include "netemu/scope/trace.hpp"
#include "netemu/service/query.hpp"
#include "netemu/util/hash.hpp"
#include "netemu/util/stats.hpp"

namespace netemu {

namespace {

constexpr std::size_t kNoBackend = static_cast<std::size_t>(-1);

scope::Counter& subqueries_counter() {
  static scope::Counter& c = scope::Registry::global().counter(
      "netemu_scatter_subqueries_total",
      "Trial-range sub-queries dispatched by the scatterer");
  return c;
}

scope::Counter& straggler_retries_counter() {
  static scope::Counter& c = scope::Registry::global().counter(
      "netemu_scatter_straggler_retries_total",
      "Straggling sub-queries re-dispatched at another backend");
  return c;
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

// Shared scoreboard for one scattered request.  shared_ptr-owned because a
// losing twin attempt (original vs. straggler retry) can outlive the
// coordinator that merged without it.
struct Scatterer::ScatterState {
  struct Sub {
    Json doc;                  ///< the sub-query document (owns its trace)
    unsigned lo = 0, hi = 0;   ///< requested trial range [lo, hi)
    std::uint64_t trace_id = 0;
    std::uint64_t retry_trace_id = 0;
    std::size_t presumed = kNoBackend;        ///< rendezvous-first choice
    std::size_t retry_presumed = kNoBackend;  ///< retry's first choice
    bool retried = false;
    int attempts_outstanding = 0;
    bool done = false;  ///< an ok answer landed (first completion wins)
    bool ok = false;
    Json result;        ///< the answer's "result" document
    bool cache_hit = false;
    bool degraded = false;
    std::string error;
  };
  std::mutex m;
  std::condition_variable cv;
  std::vector<Sub> subs;
  std::size_t done_count = 0;
  double max_done_latency_ms = 0.0;
  std::chrono::steady_clock::time_point t0;
};

Scatterer::Scatterer(FleetRouter& router, Options options)
    : router_(router), options_(std::move(options)) {}

Scatterer::~Scatterer() {
  std::unique_lock<std::mutex> lock(mutex_);
  stopping_ = true;
  idle_cv_.wait(lock, [this] { return outstanding_ == 0; });
}

bool Scatterer::eligible(const Json& request) const {
  if (options_.min_trials == 0) return false;
  std::string error;
  const auto q = query_from_json(request, &error);
  if (!q || q->kind != QueryKind::kEstimate) return false;
  // An explicit trial range is already a shard — route it whole.
  if (q->trial_hi != 0) return false;
  if (q->trials < options_.min_trials) return false;
  const std::size_t ways =
      std::min<std::size_t>(std::min<std::size_t>(options_.max_ways, q->trials),
                            router_.available_backends());
  return ways >= 2;
}

void Scatterer::spawn_sub(const std::shared_ptr<ScatterState>& state,
                          std::size_t sub_index, bool is_retry) {
  Json doc;
  std::optional<std::size_t> exclude;
  {
    // subs are stable (the vector never grows after construction); doc and
    // presumed fields for this attempt were written before the spawn.
    ScatterState::Sub& sub = state->subs[sub_index];
    if (is_retry) {
      // The retry is the same range under its OWN trace id, steered away
      // from the backend presumed stuck.
      doc = sub.doc;
      doc["trace"] = hex64(sub.retry_trace_id);
      exclude = sub.presumed;
    } else {
      doc = sub.doc;
    }
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      // No coordinator waits on a stopping scatterer; settle the attempt so
      // any that does cannot hang.
      std::lock_guard<std::mutex> sl(state->m);
      --state->subs[sub_index].attempts_outstanding;
      state->cv.notify_all();
      return;
    }
    ++outstanding_;
  }
  std::thread([this, state, sub_index, is_retry, doc = std::move(doc),
               exclude] {
    FleetRouter::Result r = router_.request(doc, exclude);
    std::size_t cancel_backend = kNoBackend;
    std::uint64_t cancel_trace = 0;
    {
      std::lock_guard<std::mutex> sl(state->m);
      ScatterState::Sub& sub = state->subs[sub_index];
      --sub.attempts_outstanding;
      if (!sub.done && r.ok && r.doc["ok"].as_bool(false)) {
        sub.done = true;
        sub.ok = true;
        sub.result = r.doc["result"];
        sub.cache_hit = r.doc["cache_hit"].as_bool(false);
        sub.degraded = r.doc["degraded"].as_bool(false);
        ++state->done_count;
        state->max_done_latency_ms =
            std::max(state->max_done_latency_ms, ms_since(state->t0));
        if (sub.attempts_outstanding > 0) {
          // Cancel-on-satisfied: the twin attempt is still grinding on its
          // backend — tell it to stop computing an answer nobody will read.
          cancel_backend = is_retry ? sub.presumed : sub.retry_presumed;
          cancel_trace = is_retry ? sub.trace_id : sub.retry_trace_id;
        }
      } else if (!sub.done) {
        sub.error = r.ok ? r.doc["error"].as_string() : r.error;
        if (sub.error.empty()) sub.error = "backend error";
      }
    }
    state->cv.notify_all();
    if (cancel_trace != 0 && cancel_backend != kNoBackend) {
      router_.cancel_at(cancel_backend, cancel_trace);
    }
    std::lock_guard<std::mutex> lock(mutex_);
    --outstanding_;
    idle_cv_.notify_all();
  }).detach();
}

std::string Scatterer::scatter_line(const Json& request) {
  const auto t0 = std::chrono::steady_clock::now();
  std::string error;
  const auto q = query_from_json(request, &error);
  if (!q) {
    Json doc = Json::object();
    doc["ok"] = false;
    doc["error"] = "scatter: " + error;
    return doc.dump();
  }
  const unsigned trials = q->trials;
  const std::size_t ways = std::min<std::size_t>(
      std::min<std::size_t>(options_.max_ways, trials),
      std::max<std::size_t>(1, router_.available_backends()));
  const std::uint64_t tid = q->trace_id;
  scope::SpanTimer scatter_span(tid, "fleet.scatter");

  auto state = std::make_shared<ScatterState>();
  state->t0 = t0;
  state->subs.resize(ways);
  for (std::size_t i = 0; i < ways; ++i) {
    ScatterState::Sub& sub = state->subs[i];
    sub.lo = static_cast<unsigned>(i * trials / ways);
    sub.hi = static_cast<unsigned>((i + 1) * trials / ways);
    // Rebuild rather than copy-and-mutate: Json copies share structure with
    // the caller's document.
    Json doc = Json::object();
    for (const auto& [k, v] : request.fields()) doc[k] = v;
    doc["trial_lo"] = sub.lo;
    doc["trial_hi"] = sub.hi;
    // Every sub-query gets its own trace id: the straggler machinery keys
    // its cancel verbs on it, exactly like the router's hedge-loser cancel.
    sub.trace_id = scope::mint_trace_id();
    doc["trace"] = hex64(sub.trace_id);
    if (options_.sub_deadline_ms > 0) {
      doc["deadline_ms"] = options_.sub_deadline_ms;
    }
    sub.doc = std::move(doc);
    const std::vector<std::size_t> rank = router_.rank_for(sub.doc);
    sub.presumed = rank.empty() ? kNoBackend : rank[0];
    sub.attempts_outstanding = 1;
  }

  if (options_.phase_hook) options_.phase_hook("dispatch");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.scatters;
    stats_.subqueries += ways;
  }
  subqueries_counter().add(ways);
  for (std::size_t i = 0; i < ways; ++i) spawn_sub(state, i, false);

  // Gather: wait for every sub-query to settle (an ok answer, or every
  // attempt failed).  Once at least half have landed, sub-queries still
  // outstanding past the straggler deadline are re-dispatched at a
  // different backend — first answer wins, the loser gets a cancel verb.
  std::uint64_t retries_fired = 0;
  {
    std::unique_lock<std::mutex> sl(state->m);
    const auto settled = [&] {
      return std::all_of(state->subs.begin(), state->subs.end(),
                         [](const ScatterState::Sub& s) {
                           return s.done || s.attempts_outstanding == 0;
                         });
    };
    while (!settled()) {
      const bool half_done = state->done_count * 2 >= ways;
      if (options_.straggler_factor > 0 && half_done) {
        const double wait_ms = std::max(
            static_cast<double>(options_.straggler_min_ms),
            options_.straggler_factor * state->max_done_latency_ms);
        const auto straggler_deadline =
            state->t0 +
            std::chrono::microseconds(static_cast<std::int64_t>(
                wait_ms * 1000.0));
        if (std::chrono::steady_clock::now() >= straggler_deadline) {
          for (std::size_t i = 0; i < ways; ++i) {
            ScatterState::Sub& sub = state->subs[i];
            if (sub.done || sub.retried || sub.attempts_outstanding == 0) {
              continue;
            }
            sub.retried = true;
            sub.retry_trace_id = scope::mint_trace_id();
            const std::vector<std::size_t> rank =
                router_.rank_for(sub.doc);
            sub.retry_presumed = sub.presumed;
            for (std::size_t b : rank) {
              if (b != sub.presumed) {
                sub.retry_presumed = b;
                break;
              }
            }
            ++sub.attempts_outstanding;
            ++retries_fired;
            straggler_retries_counter().inc();
            scope::FlightRecorder::global().record(
                scope::FlightRecorder::Kind::kHedge, sub.retry_trace_id,
                "scatter straggler retry: trials [" +
                    std::to_string(sub.lo) + "," + std::to_string(sub.hi) +
                    ") re-dispatched away from " +
                    (sub.presumed == kNoBackend
                         ? std::string("?")
                         : router_.options().backends[sub.presumed].id));
            spawn_sub(state, i, true);
          }
          state->cv.wait_for(sl, std::chrono::milliseconds(50), settled);
          continue;
        }
        state->cv.wait_until(sl, straggler_deadline, settled);
        continue;
      }
      state->cv.wait_for(sl, std::chrono::milliseconds(10), settled);
    }
  }
  if (retries_fired > 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.straggler_retries += retries_fired;
  }
  if (options_.phase_hook) options_.phase_hook("pre-merge");

  // Merge.  Sub results cover disjoint ascending ranges; a degraded shard
  // covers a contiguous prefix of its range (measure_throughput truncates),
  // so coverage is exactly [lo, lo + len(trial_rates)) per ok shard and no
  // trial can be counted twice.
  scope::SpanTimer merge_span(tid, "fleet.merge");
  std::vector<const ScatterState::Sub*> oks;
  std::string last_error;
  bool all_cache_hit = true;
  {
    // Settled: no thread touches state again except a cancelled loser,
    // which only writes under state->m and never flips done once set.
    std::lock_guard<std::mutex> sl(state->m);
    for (const ScatterState::Sub& sub : state->subs) {
      if (sub.ok) {
        oks.push_back(&sub);
        all_cache_hit = all_cache_hit && sub.cache_hit;
      } else if (!sub.error.empty()) {
        last_error = sub.error;
      }
    }

    if (oks.empty()) {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.failed;
      merge_span.set_note("failed");
      scatter_span.set_note("failed ways=" + std::to_string(ways));
      Json doc = Json::object();
      doc["ok"] = false;
      doc["error"] = "fleet: scatter failed: " +
                     (last_error.empty() ? "no sub-query answered"
                                         : last_error);
      doc["scattered"] = ways;
      if (tid != 0) doc["trace"] = hex64(tid);
      return doc.dump();
    }

    // Concatenate in trial-index order (oks inherit the subs' lo order) and
    // record the maximal contiguous covered runs.
    std::vector<double> rates;
    Json merged_rates = Json::array();
    Json ranges = Json::array();
    unsigned covered = 0;
    bool contiguous_from_zero = true;
    unsigned expect = 0;
    double ticks = 0.0;
    for (const ScatterState::Sub* sub : oks) {
      const Json& sub_rates = sub->result["trial_rates"];
      const unsigned len =
          static_cast<unsigned>(sub_rates.items().size());
      if (len == 0) continue;
      if (sub->lo != expect) contiguous_from_zero = false;
      Json range = Json::array();
      range.items().emplace_back(sub->lo);
      range.items().emplace_back(sub->lo + len);
      ranges.items().push_back(std::move(range));
      for (const Json& rate : sub_rates.items()) {
        merged_rates.items().push_back(rate);
        rates.push_back(rate.as_number());
      }
      covered += len;
      expect = sub->lo + len;
      ticks += sub->result["simulated_ticks"].as_number(0.0);
    }
    const bool full = contiguous_from_zero && covered == trials;

    // Base document: the shard holding the highest completed trial — its
    // makespan/avg_latency/static_congestion describe the last trial, the
    // same slot the single-node sweep reports.
    Json merged = oks.back()->result;
    merged.fields().erase("trial_lo");
    merged.fields().erase("trial_hi");
    merged.fields().erase("degraded");
    merged.fields().erase("trials_completed");
    merged.fields().erase("brownout");
    merged["trials"] = trials;
    merged["trial_rates"] = std::move(merged_rates);
    // The same estimator measure_throughput uses (util median, not a
    // nearest-rank quantile): byte-identity with the unsharded sweep
    // requires the identical function over the identical doubles.
    merged["beta_hat"] = median(std::vector<double>(rates));
    const auto [rate_lo, rate_hi] =
        std::minmax_element(rates.begin(), rates.end());
    merged["beta_hat_min"] = *rate_lo;
    merged["beta_hat_max"] = *rate_hi;
    merged["simulated_ticks"] = ticks;
    if (!full) {
      merged["degraded"] = true;
      merged["trials_completed"] = covered;
      merged["trial_ranges"] = std::move(ranges);
    }

    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (full) {
        ++stats_.merged_full;
      } else {
        ++stats_.merged_degraded;
      }
    }
    merge_span.set_note(full ? "full" : "degraded");
    scatter_span.set_note("ways=" + std::to_string(ways) + " retries=" +
                          std::to_string(retries_fired) +
                          (full ? "" : " degraded"));

    Json doc = Json::object();
    doc["ok"] = true;
    doc["cache_hit"] = all_cache_hit;
    doc["key"] = hex64(q->cache_key());
    doc["micros"] = ms_since(t0) * 1000.0;
    doc["scattered"] = ways;
    if (!full) doc["degraded"] = true;  // top-level mirror, as backends do
    if (tid != 0) doc["trace"] = hex64(tid);
    doc["result"] = std::move(merged);
    return doc.dump();
  }
}

Scatterer::Stats Scatterer::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace netemu
