#pragma once
// netemu::scatter — scatter-gather decomposition of estimate sweeps.
//
// β(M) is estimated from independent trials whose Prng substreams depend
// only on (seed, trial index), so a T-trial estimate splits into disjoint
// trial-range sub-queries ("trial_lo"/"trial_hi" wire fields) that run on
// different backends and merge back — bit-identically — into the unsharded
// answer.  The Scatterer is that coordinator:
//
//   scatter(request)
//     ├─ split: W = min(max_ways, trials, available backends) contiguous
//     │         ranges, lo_i = floor(i*T/W); each sub-query is its own
//     │         content address, so every backend caches its shard and a
//     │         re-scatter is W cache hits
//     ├─ dispatch: all W concurrently through FleetRouter::request (each
//     │            rides the normal rendezvous order, breaker checks,
//     │            pressure sink, failover), each with its own minted trace
//     │            id and a per-sub-query deadline
//     ├─ stragglers: once at least half the sub-queries have landed, any
//     │              still outstanding past factor x the slowest completed
//     │              latency is retried at a DIFFERENT backend (hedged —
//     │              first answer wins); when an answer lands while its twin
//     │              is still running, the twin's backend gets a cancel verb
//     │              (cancel-on-satisfied, same mechanism as hedge losers)
//     └─ merge: trial_rates concatenated in trial-index order; beta_hat /
//               min / max recomputed exactly as measure_throughput does;
//               tick totals summed — byte-identical to the single-node
//               result document.  Missing or degraded shards degrade the
//               merge to a "degraded":true partial carrying the completed
//               ranges; partials are never cached anywhere.
//
// Determinism contract and wire format: docs/SCATTER.md.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "netemu/fleet/router.hpp"
#include "netemu/util/json.hpp"

namespace netemu {

class Scatterer {
 public:
  struct Options {
    /// Scatter estimate queries with trials >= this; 0 disables scattering.
    unsigned min_trials = 16;
    /// Fan-out cap (further capped by trials and available backends).
    unsigned max_ways = 4;
    /// Per-sub-query deadline; 0 inherits the request's own deadline_ms
    /// (each sub-query gets the full budget — they run concurrently).
    std::uint64_t sub_deadline_ms = 0;
    /// A sub-query still outstanding once at least half have completed is
    /// retried elsewhere after max(straggler_min_ms, straggler_factor x
    /// slowest completed sub-query latency).  factor <= 0 disables retries.
    double straggler_factor = 3.0;
    std::uint64_t straggler_min_ms = 50;
    /// Test hook fired at phase boundaries ("dispatch" before sub-queries
    /// go out, "pre-merge" after the last answer, before merging) so fault
    /// tests can kill/stall a backend at an exact phase.  Not for
    /// production use.
    std::function<void(const char* phase)> phase_hook;
  };

  Scatterer(FleetRouter& router, Options options);
  ~Scatterer();

  Scatterer(const Scatterer&) = delete;
  Scatterer& operator=(const Scatterer&) = delete;

  /// True when `request` should be scattered: an estimate query with
  /// trials >= min_trials, no explicit trial range of its own, and at
  /// least 2 usable ways right now.
  bool eligible(const Json& request) const;

  /// Scatter an eligible request and return the complete response LINE
  /// (same envelope as a proxied single-backend response).  Call only when
  /// eligible() said yes; concurrency-safe.
  std::string scatter_line(const Json& request);

  struct Stats {
    std::uint64_t scatters = 0;          ///< requests decomposed
    std::uint64_t subqueries = 0;        ///< sub-queries dispatched
    std::uint64_t straggler_retries = 0; ///< hedged straggler re-dispatches
    std::uint64_t merged_full = 0;       ///< merges covering every trial
    std::uint64_t merged_degraded = 0;   ///< partial merges returned
    std::uint64_t failed = 0;            ///< no sub-query answered at all
  };
  Stats stats() const;

 private:
  struct ScatterState;

  void spawn_sub(const std::shared_ptr<ScatterState>& state,
                 std::size_t sub_index, bool is_retry);

  FleetRouter& router_;
  Options options_;

  mutable std::mutex mutex_;
  std::condition_variable idle_cv_;
  std::size_t outstanding_ = 0;  ///< dispatch threads still running
  bool stopping_ = false;
  Stats stats_;
};

}  // namespace netemu
