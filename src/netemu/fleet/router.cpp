#include "netemu/fleet/router.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "netemu/fleet/rendezvous.hpp"
#include "netemu/scope/flight_recorder.hpp"
#include "netemu/scope/metrics.hpp"
#include "netemu/scope/trace.hpp"
#include "netemu/service/query.hpp"
#include "netemu/util/hash.hpp"

namespace netemu {

namespace {

// The trace id a request document carries (0 = untraced).  The fleet reads
// it for its own spans/events and forwards the document untouched.
std::uint64_t doc_trace_id(const Json& request_doc) {
  return scope::parse_trace_id(request_doc["trace"].as_string());
}

scope::Counter& hedges_fired_counter() {
  static scope::Counter& c = scope::Registry::global().counter(
      "netemu_fleet_hedges_fired_total", "Hedge attempts fired by the fleet");
  return c;
}

scope::Counter& hedges_won_counter() {
  static scope::Counter& c = scope::Registry::global().counter(
      "netemu_fleet_hedges_won_total", "Hedge attempts that answered first");
  return c;
}

scope::Counter& breaker_transitions_counter() {
  static scope::Counter& c = scope::Registry::global().counter(
      "netemu_fleet_breaker_transitions_total",
      "Circuit-breaker state transitions observed by the fleet");
  return c;
}

scope::Counter& cancels_fired_counter() {
  static scope::Counter& c = scope::Registry::global().counter(
      "netemu_fleet_cancels_fired_total",
      "Cancel verbs fired at hedge losers after a winner answered");
  return c;
}

}  // namespace

// Shared scoreboard for one hedged request: the primary and (maybe) hedge
// attempt threads race to deposit the first real answer.  Heap-allocated and
// shared_ptr-owned because the losing thread can outlive request().
struct FleetRouter::HedgeState {
  std::mutex m;
  std::condition_variable cv;
  int outstanding = 0;
  bool have_winner = false;
  std::size_t winner_index = 0;
  Attempt winner;
  bool have_loser = false;  ///< best non-winning attempt (sheds preferred)
  std::size_t loser_index = 0;
  Attempt loser;
};

FleetRouter::FleetRouter(Options options)
    : options_(std::move(options)),
      started_(std::chrono::steady_clock::now()) {
  // Sheds must surface to the router (which fails them over) instead of
  // being absorbed by the client's own retry_after sleep.
  options_.client.retry_overloaded = false;
  options_.latency_window = std::max<std::size_t>(1, options_.latency_window);
  for (auto& cfg : options_.backends) {
    if (cfg.id.empty()) cfg.id = "127.0.0.1:" + std::to_string(cfg.port);
    auto b = std::make_unique<Backend>();
    b->config = cfg;
    b->health = BackendHealth(options_.health);
    ids_.push_back(cfg.id);
    backends_.push_back(std::move(b));
  }
  if (options_.probe_interval_ms > 0 && !backends_.empty()) {
    probe_thread_ = std::thread([this] { probe_loop(); });
  }
}

FleetRouter::~FleetRouter() { stop(); }

void FleetRouter::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  probe_cv_.notify_all();
  if (probe_thread_.joinable()) probe_thread_.join();
  std::unique_lock<std::mutex> lock(mutex_);
  inflight_cv_.wait(lock, [this] { return inflight_ == 0; });
}

std::uint64_t FleetRouter::now_ms() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - started_)
          .count());
}

std::uint64_t FleetRouter::route_key(const Json& request_doc) const {
  // Route on the same content address the backend caches key on, so a key's
  // repeats land on the backend whose cache already holds its result.  Ops
  // that are not queries (stats, health, ...) hash their canonical dump.
  std::string error;
  if (auto q = query_from_json(request_doc, &error)) return q->cache_key();
  return fnv1a64(request_doc.dump());
}

std::vector<std::size_t> FleetRouter::rank_for(const Json& request_doc) const {
  return rendezvous_rank(route_key(request_doc), ids_);
}

std::vector<FleetRouter::BroadcastReply> FleetRouter::broadcast(
    const Json& request_doc) {
  std::vector<BroadcastReply> replies;
  for (std::size_t i = 0; i < backends_.size(); ++i) {
    Attempt a = attempt(i, request_doc);
    if (a.responded) replies.push_back(BroadcastReply{i, std::move(a.doc)});
  }
  return replies;
}

std::optional<std::size_t> FleetRouter::next_allowed(
    const std::vector<std::size_t>& order, std::size_t& pos) {
  // Caller holds mutex_.  allow() is called here — immediately before the
  // attempt — so a half-open probe slot is only reserved for a backend that
  // will actually be tried.
  const std::uint64_t now = now_ms();
  while (pos < order.size()) {
    const std::size_t index = order[pos++];
    const bool allowed = backends_[index]->health.allow(now);
    // allow() may have lazily moved an expired-open breaker to half-open.
    note_breaker_locked(*backends_[index], now, 0);
    if (allowed) return index;
  }
  return std::nullopt;
}

FleetRouter::Attempt FleetRouter::attempt(std::size_t index,
                                          const Json& request_doc) {
  std::unique_ptr<Client> client;
  std::uint16_t port = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Backend& b = *backends_[index];
    ++b.requests;
    port = b.config.port;
    if (!b.idle.empty()) {
      client = std::move(b.idle.back());
      b.idle.pop_back();
    }
  }
  if (!client) {
    client = std::make_unique<Client>(options_.client);
    client->set_target(port);
  }

  Client::RequestOutcome outcome = client->request_outcome(request_doc);

  Attempt a;
  if (outcome.doc) {
    a.responded = true;
    a.shed = outcome.failure == RequestFailure::kOverloaded;
    a.doc = std::move(*outcome.doc);
  } else {
    a.failure = outcome.failure;
    a.error = outcome.error;
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    Backend& b = *backends_[index];
    record_attempt_locked(b, a, now_ms(), doc_trace_id(request_doc));
    if (client->connected() && !stopping_ &&
        b.idle.size() < options_.pool_per_backend) {
      b.idle.push_back(std::move(client));
    }
  }
  return a;
}

void FleetRouter::record_attempt_locked(Backend& b, const Attempt& a,
                                        std::uint64_t now,
                                        std::uint64_t trace_id) {
  if (a.responded) {
    ++b.responses;
    if (a.shed) ++b.shed;
    // Any document — even a shed or a server-side error — proves the
    // transport and the process are alive.
    b.health.record_success(now);
  } else {
    ++b.transport_failures;
    if (a.failure == RequestFailure::kConnectRefused) ++b.refused;
    b.health.record_failure(now);
  }
  note_breaker_locked(b, now, trace_id);
}

void FleetRouter::note_breaker_locked(Backend& b, std::uint64_t now,
                                      std::uint64_t trace_id) const {
  const BackendHealth::State s = b.health.state(now);
  if (s == b.last_state) return;
  breaker_transitions_counter().inc();
  scope::FlightRecorder::global().record(
      scope::FlightRecorder::Kind::kBreaker, trace_id,
      "backend " + b.config.id + ": " +
          BackendHealth::state_name(b.last_state) + " -> " +
          BackendHealth::state_name(s));
  b.last_state = s;
}

std::optional<std::uint64_t> FleetRouter::hedge_delay_ms() const {
  if (!options_.hedge) return std::nullopt;
  if (options_.hedge_fixed_ms > 0) return options_.hedge_fixed_ms;
  std::vector<double> window;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (latency_ms_.size() < options_.hedge_min_samples) return std::nullopt;
    window = latency_ms_;
  }
  std::size_t rank = static_cast<std::size_t>(
      options_.hedge_percentile * static_cast<double>(window.size() - 1));
  rank = std::min(rank, window.size() - 1);
  std::nth_element(window.begin(), window.begin() + static_cast<long>(rank),
                   window.end());
  const auto delay = static_cast<std::uint64_t>(std::ceil(window[rank]));
  return std::clamp(delay, options_.hedge_min_delay_ms,
                    options_.hedge_max_delay_ms);
}

void FleetRouter::record_latency(double ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (latency_ms_.size() < options_.latency_window) {
    latency_ms_.push_back(ms);
  } else {
    latency_ms_[latency_next_] = ms;
  }
  latency_next_ = (latency_next_ + 1) % options_.latency_window;
}

void FleetRouter::fire_cancel(std::size_t index, std::uint64_t trace_id) {
  Json cancel = Json::object();
  cancel["op"] = "cancel";
  cancel["trace"] = hex64(trace_id);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    ++inflight_;
    ++cancels_fired_;
  }
  cancels_fired_counter().inc();
  scope::FlightRecorder::global().record(
      scope::FlightRecorder::Kind::kHedge, trace_id,
      "cancel fired at loser " + ids_[index]);
  // Detached and best-effort: the winner's answer is already on its way
  // back, so nothing waits on this.  If the loser's query never started (or
  // already finished) the backend just answers {"cancelled":false}.
  std::thread([this, index, cancel] {
    attempt(index, cancel);
    std::lock_guard<std::mutex> lock(mutex_);
    --inflight_;
    inflight_cv_.notify_all();
  }).detach();
}

void FleetRouter::spawn_attempt(std::size_t index, const Json& request_doc,
                                std::shared_ptr<HedgeState> state) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++inflight_;
  }
  {
    std::lock_guard<std::mutex> sl(state->m);
    ++state->outstanding;
  }
  std::thread([this, index, request_doc, state] {
    Attempt a = attempt(index, request_doc);
    {
      std::lock_guard<std::mutex> sl(state->m);
      --state->outstanding;
      if (a.responded && !a.shed && !state->have_winner) {
        state->have_winner = true;
        state->winner_index = index;
        state->winner = std::move(a);
      } else if (!state->have_winner &&
                 (!state->have_loser ||
                  (a.responded && !state->loser.responded))) {
        // Keep the most informative non-answer: a shed document beats a
        // bare transport error (it carries the backend's retry hint).
        state->have_loser = true;
        state->loser_index = index;
        state->loser = std::move(a);
      }
    }
    state->cv.notify_all();
    {
      // Notify under the lock: stop() may be waiting to destroy the
      // router, and must not win the race while we are mid-notify.
      std::lock_guard<std::mutex> lock(mutex_);
      --inflight_;
      inflight_cv_.notify_all();
    }
  }).detach();
}

FleetRouter::Result FleetRouter::request(const Json& request_doc) {
  return request(request_doc, std::nullopt);
}

void FleetRouter::cancel_at(std::size_t index, std::uint64_t trace_id) {
  if (index >= backends_.size() || trace_id == 0) return;
  fire_cancel(index, trace_id);
}

std::size_t FleetRouter::available_backends() const {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t now = now_ms();
  std::size_t available = 0;
  for (const auto& bp : backends_) {
    Backend& b = *bp;
    if (b.health.state(now) != BackendHealth::State::kClosed) continue;
    if (options_.pressure_sink_threshold > 0.0 &&
        b.pressure >= options_.pressure_sink_threshold) {
      continue;
    }
    ++available;
  }
  return available;
}

FleetRouter::Result FleetRouter::request(
    const Json& request_doc, std::optional<std::size_t> exclude_backend) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t tid = doc_trace_id(request_doc);
  scope::SpanTimer route_span(tid, "fleet.route");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++requests_;
    ++active_requests_;
  }
  // Balanced on every exit path (the fleet daemon's drain polls inflight()).
  struct ActiveGuard {
    FleetRouter* router;
    ~ActiveGuard() {
      std::lock_guard<std::mutex> lock(router->mutex_);
      --router->active_requests_;
    }
  } active_guard{this};

  std::vector<std::size_t> order =
      rendezvous_rank(route_key(request_doc), ids_);
  if (exclude_backend) {
    order.erase(std::remove(order.begin(), order.end(), *exclude_backend),
                order.end());
  }
  if (options_.pressure_sink_threshold > 0.0) {
    // Overload preference: backends whose last probe reported pressure at or
    // above the threshold sink to the back of the rendezvous order.  A
    // stable partition keeps the affinity ranking within each group, and a
    // sunk backend is still a candidate — under fleet-wide overload the
    // request degrades to the old behaviour instead of failing outright.
    std::lock_guard<std::mutex> lock(mutex_);
    std::stable_partition(order.begin(), order.end(), [&](std::size_t i) {
      return backends_[i]->pressure < options_.pressure_sink_threshold;
    });
  }

  Result out;
  std::string last_error;
  Attempt last_shed;  // returned if every candidate sheds
  std::size_t last_shed_backend = static_cast<std::size_t>(-1);
  std::size_t pos = 0;

  const auto finish_answered = [&](Attempt&& a, std::size_t responder) {
    out.ok = true;
    out.doc = std::move(a.doc);
    out.backend = responder;
    route_span.set_note("backend=" + ids_[responder] + " tried=" +
                        std::to_string(out.backends_tried));
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    if (!a.shed) record_latency(elapsed_ms);
    std::lock_guard<std::mutex> lock(mutex_);
    ++answered_;
    if (out.backends_tried > 1) {
      failovers_ += static_cast<std::uint64_t>(out.backends_tried - 1);
    }
  };

  while (true) {
    std::optional<std::size_t> primary;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      primary = next_allowed(order, pos);
    }
    if (!primary) break;
    ++out.backends_tried;

    const std::optional<std::uint64_t> delay = hedge_delay_ms();
    Attempt a;
    std::size_t responder = *primary;

    if (delay) {
      // Hedging wants a trace id even for untraced callers: the cancel verb
      // that reclaims the losing backend's compute is keyed by it.  Json
      // copies share structure, so mint onto a shallow rebuild instead of
      // mutating a copy of the caller's document.
      Json hedge_doc = request_doc;
      std::uint64_t hedge_tid = tid;
      if (hedge_tid == 0) {
        hedge_tid = scope::mint_trace_id();
        hedge_doc = Json::object();
        for (const auto& [k, v] : request_doc.fields()) hedge_doc[k] = v;
        hedge_doc["trace"] = hex64(hedge_tid);
      }
      auto state = std::make_shared<HedgeState>();
      spawn_attempt(*primary, hedge_doc, state);
      std::size_t hedge_index = static_cast<std::size_t>(-1);
      std::uint64_t hedge_fired_us = 0;
      bool loser_running = false;
      std::unique_lock<std::mutex> sl(state->m);
      state->cv.wait_for(sl, std::chrono::milliseconds(*delay), [&] {
        return state->have_winner || state->outstanding == 0;
      });
      if (!state->have_winner && state->outstanding > 0) {
        // Primary is slow: fire the hedge at the next allowed choice.
        sl.unlock();
        std::optional<std::size_t> secondary;
        {
          std::lock_guard<std::mutex> lock(mutex_);
          secondary = next_allowed(order, pos);
          if (secondary) ++hedges_fired_;
        }
        if (secondary) {
          hedge_index = *secondary;
          out.hedged = true;
          ++out.backends_tried;
          hedge_fired_us = scope::now_us();
          hedges_fired_counter().inc();
          scope::FlightRecorder::global().record(
              scope::FlightRecorder::Kind::kHedge, tid,
              "fired at " + ids_[*secondary] + " (primary " +
                  ids_[*primary] + " slower than " +
                  std::to_string(*delay) + " ms)");
          spawn_attempt(*secondary, hedge_doc, state);
        }
        sl.lock();
      }
      state->cv.wait(sl, [&] {
        return state->have_winner || state->outstanding == 0;
      });
      if (state->have_winner) {
        a = std::move(state->winner);
        responder = state->winner_index;
        // The other attempt may still be grinding through its query on the
        // losing backend — remember that while we hold the scoreboard lock.
        loser_running = state->outstanding > 0;
        if (responder == hedge_index) {
          out.hedge_won = true;
          hedges_won_counter().inc();
          std::lock_guard<std::mutex> lock(mutex_);
          ++hedges_won_;
        }
      } else if (state->have_loser) {
        a = std::move(state->loser);
        responder = state->loser_index;
      }
      if (out.hedged) {
        const char* outcome = out.hedge_won ? "won" : "lost";
        scope::FlightRecorder::global().record(
            scope::FlightRecorder::Kind::kHedge, tid,
            std::string(outcome) + " (responder " +
                (responder < ids_.size() ? ids_[responder] : "none") + ")");
        if (tid != 0) {
          scope::TraceStore::global().add(
              tid, scope::Span{"fleet.hedge", hedge_fired_us,
                               scope::now_us() - hedge_fired_us, outcome});
        }
      }
      sl.unlock();
      if (out.hedged && loser_running) {
        // A winner answered while the other attempt is still in flight: tell
        // the losing backend to stop computing an answer nobody will read.
        const std::size_t loser =
            responder == hedge_index ? *primary : hedge_index;
        fire_cancel(loser, hedge_tid);
        out.cancel_fired = true;
      }
    } else {
      a = attempt(*primary, request_doc);
    }

    if (a.responded && !a.shed) {
      finish_answered(std::move(a), responder);
      return out;
    }
    if (a.responded) {
      last_shed = std::move(a);
      last_shed_backend = responder;
      last_error = "all candidates shed";
    } else if (!a.error.empty()) {
      last_error = ids_[responder] + ": " + a.error;
    } else {
      last_error = ids_[responder] + ": " + request_failure_name(a.failure);
    }
    // Transport failure or shed: fail over to the next rendezvous choice.
  }

  if (last_shed.responded) {
    // Every live candidate shed: surface the shed document (it carries the
    // backend's retry_after hint) rather than inventing an error.
    finish_answered(std::move(last_shed), last_shed_backend);
    return out;
  }

  out.error = out.backends_tried == 0
                  ? "no backend available (all circuit breakers open)"
                  : "no backend answered; last: " + last_error;
  route_span.set_note("unanswered tried=" +
                      std::to_string(out.backends_tried));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++unanswered_;
    if (out.backends_tried > 1) {
      failovers_ += static_cast<std::uint64_t>(out.backends_tried - 1);
    }
  }
  return out;
}

void FleetRouter::probe_loop() {
  Json probe = Json::object();
  probe["op"] = "health";

  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    probe_cv_.wait_for(lock,
                       std::chrono::milliseconds(options_.probe_interval_ms),
                       [this] { return stopping_; });
    if (stopping_) return;
    std::vector<std::size_t> targets;
    const std::uint64_t now = now_ms();
    for (std::size_t i = 0; i < backends_.size(); ++i) {
      Backend& b = *backends_[i];
      switch (b.health.state(now)) {
        case BackendHealth::State::kClosed:
          // Liveness probe: detect a dead backend before live traffic does.
          targets.push_back(i);
          break;
        case BackendHealth::State::kHalfOpen:
          // Recovery probe; allow() reserves the single half-open slot.
          if (b.health.allow(now)) targets.push_back(i);
          break;
        case BackendHealth::State::kOpen:
          break;
      }
    }
    for (std::size_t i : targets) ++backends_[i]->probes;
    lock.unlock();
    // Health answers double as pressure reports: the backend's guard (or,
    // guardless, its queue fullness) rides in result.pressure and feeds the
    // router's prefer-lower-pressure ordering.
    std::vector<std::pair<std::size_t, double>> pressures;
    for (std::size_t i : targets) {
      Attempt a = attempt(i, probe);
      if (a.responded && a.doc["ok"].as_bool()) {
        const Json& p = a.doc["result"]["pressure"];
        if (p.is_number()) pressures.emplace_back(i, p.as_number());
      }
    }
    lock.lock();
    for (const auto& [i, p] : pressures) backends_[i]->pressure = p;
  }
}

std::size_t FleetRouter::inflight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return active_requests_;
}

FleetRouter::Stats FleetRouter::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s;
  s.requests = requests_;
  s.answered = answered_;
  s.unanswered = unanswered_;
  s.failovers = failovers_;
  s.hedges_fired = hedges_fired_;
  s.hedges_won = hedges_won_;
  s.cancels_fired = cancels_fired_;
  const std::uint64_t now = now_ms();
  for (const auto& bp : backends_) {
    Backend& b = *bp;  // unique_ptr does not propagate const to the pointee
    BackendStats bs;
    bs.id = b.config.id;
    bs.port = b.config.port;
    bs.state = b.health.state(now);
    bs.window_failure_rate = b.health.window_failure_rate();
    bs.requests = b.requests;
    bs.responses = b.responses;
    bs.shed = b.shed;
    bs.refused = b.refused;
    bs.transport_failures = b.transport_failures;
    bs.probes = b.probes;
    bs.ejections = b.health.ejections();
    bs.pressure = b.pressure;
    s.backends.push_back(std::move(bs));
  }
  return s;
}

Json fleet_stats_to_json(const FleetRouter::Stats& stats) {
  Json doc = Json::object();
  doc["requests"] = stats.requests;
  doc["answered"] = stats.answered;
  doc["unanswered"] = stats.unanswered;
  doc["failovers"] = stats.failovers;
  doc["hedges_fired"] = stats.hedges_fired;
  doc["hedges_won"] = stats.hedges_won;
  doc["cancels_fired"] = stats.cancels_fired;
  Json backends = Json::array();
  for (const auto& b : stats.backends) {
    Json e = Json::object();
    e["id"] = b.id;
    e["port"] = static_cast<std::uint64_t>(b.port);
    e["state"] = BackendHealth::state_name(b.state);
    e["window_failure_rate"] = b.window_failure_rate;
    e["requests"] = b.requests;
    e["responses"] = b.responses;
    e["shed"] = b.shed;
    e["refused"] = b.refused;
    e["transport_failures"] = b.transport_failures;
    e["probes"] = b.probes;
    e["ejections"] = b.ejections;
    e["pressure"] = b.pressure;
    backends.items().push_back(std::move(e));
  }
  doc["backends"] = std::move(backends);
  return doc;
}

}  // namespace netemu
