#pragma once
// Rendezvous (highest-random-weight) hashing: the fleet's query placement.
//
// Every (query key, backend id) pair gets a deterministic pseudo-random
// score; a query is owned by the backend with the highest score, and fails
// over to the second-highest, third-highest, ... in order.  The property
// that makes this the right placement for a content-addressed cache fleet:
// adding or removing a backend only moves the keys that backend itself wins
// or owned — every other key keeps its owner, so the per-backend result
// caches stay warm through membership changes (no ring to rebalance, no
// global remap).  Failover order is per-key, so a down backend's load
// spreads across the survivors instead of dogpiling one neighbor.
//
// Backend identity is a string (the fleet uses "127.0.0.1:<port>"), so
// scores are stable across process restarts and config reorderings.

#include <cstdint>
#include <string>
#include <vector>

namespace netemu {

/// Deterministic score of placing `key` on `backend_id`.
std::uint64_t rendezvous_score(std::uint64_t key,
                               const std::string& backend_id);

/// Backend indices ranked best-first for `key` (a permutation of
/// 0..ids.size()-1).  Ties (score collisions) break toward the lower index,
/// deterministically.
std::vector<std::size_t> rendezvous_rank(std::uint64_t key,
                                         const std::vector<std::string>& ids);

/// The best-ranked index, or SIZE_MAX when `ids` is empty.
std::size_t rendezvous_owner(std::uint64_t key,
                             const std::vector<std::string>& ids);

}  // namespace netemu
