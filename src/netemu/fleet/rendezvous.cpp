#include "netemu/fleet/rendezvous.hpp"

#include <algorithm>
#include <numeric>

#include "netemu/util/hash.hpp"
#include "netemu/util/prng.hpp"

namespace netemu {

std::uint64_t rendezvous_score(std::uint64_t key,
                               const std::string& backend_id) {
  // FNV over the id (stable across runs), then one splitmix64 round to mix
  // the key in: FNV alone is too linear for the top-score comparison to be
  // uniform across nearby keys.
  std::uint64_t state = key ^ fnv1a64(backend_id);
  return splitmix64(state);
}

std::vector<std::size_t> rendezvous_rank(
    std::uint64_t key, const std::vector<std::string>& ids) {
  std::vector<std::size_t> order(ids.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::vector<std::uint64_t> scores(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    scores[i] = rendezvous_score(key, ids[i]);
  }
  std::sort(order.begin(), order.end(),
            [&scores](std::size_t a, std::size_t b) {
              if (scores[a] != scores[b]) return scores[a] > scores[b];
              return a < b;
            });
  return order;
}

std::size_t rendezvous_owner(std::uint64_t key,
                             const std::vector<std::string>& ids) {
  std::size_t best = static_cast<std::size_t>(-1);
  std::uint64_t best_score = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const std::uint64_t score = rendezvous_score(key, ids[i]);
    if (best == static_cast<std::size_t>(-1) || score > best_score) {
      best = i;
      best_score = score;
    }
  }
  return best;
}

}  // namespace netemu
