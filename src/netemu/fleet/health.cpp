#include "netemu/fleet/health.hpp"

#include <algorithm>

namespace netemu {

const char* BackendHealth::state_name(State s) {
  switch (s) {
    case State::kClosed: return "closed";
    case State::kOpen: return "open";
    case State::kHalfOpen: return "half_open";
  }
  return "unknown";
}

BackendHealth::BackendHealth() : BackendHealth(Options()) {}

BackendHealth::BackendHealth(Options options) : options_(options) {
  options_.failure_threshold = std::max(1, options_.failure_threshold);
  options_.close_after_successes = std::max(1, options_.close_after_successes);
}

BackendHealth::State BackendHealth::state(std::uint64_t now_ms) {
  if (state_ == State::kOpen &&
      now_ms - opened_at_ms_ >= options_.open_cooldown_ms) {
    state_ = State::kHalfOpen;
    probe_inflight_ = false;
    half_open_successes_ = 0;
  }
  return state_;
}

bool BackendHealth::allow(std::uint64_t now_ms) {
  switch (state(now_ms)) {
    case State::kClosed:
      return true;
    case State::kOpen:
      return false;
    case State::kHalfOpen:
      if (probe_inflight_) return false;
      probe_inflight_ = true;
      return true;
  }
  return false;
}

void BackendHealth::to_open(std::uint64_t now_ms) {
  state_ = State::kOpen;
  opened_at_ms_ = now_ms;
  probe_inflight_ = false;
  half_open_successes_ = 0;
  ++ejections_;
}

void BackendHealth::record_success(std::uint64_t now_ms) {
  record_window(false);
  consecutive_failures_ = 0;
  if (state(now_ms) == State::kHalfOpen) {
    probe_inflight_ = false;
    if (++half_open_successes_ >= options_.close_after_successes) {
      state_ = State::kClosed;
    }
  }
  // A late success while open (from a request sent before the ejection)
  // does not close the breaker early: recovery goes through half-open.
}

void BackendHealth::record_failure(std::uint64_t now_ms) {
  record_window(true);
  switch (state(now_ms)) {
    case State::kClosed:
      if (++consecutive_failures_ >= options_.failure_threshold) {
        to_open(now_ms);
      }
      break;
    case State::kHalfOpen:
      // The probe failed: the backend is still bad; restart the cooldown.
      to_open(now_ms);
      break;
    case State::kOpen:
      // Late failure from a request already in flight at ejection time;
      // the cooldown keeps its original start (late failures must not be
      // able to hold the breaker open forever).
      break;
  }
}

void BackendHealth::record_window(bool failure) {
  if (options_.window == 0) return;
  if (window_.size() < options_.window) {
    window_.push_back(failure);
    window_failures_ += failure;
    ++window_count_;
  } else {
    window_failures_ -= window_[window_next_];
    window_[window_next_] = failure;
    window_failures_ += failure;
  }
  window_next_ = (window_next_ + 1) % options_.window;
}

double BackendHealth::window_failure_rate() const {
  const std::size_t n = std::min(window_count_, window_.size());
  if (n == 0) return 0.0;
  return static_cast<double>(window_failures_) / static_cast<double>(n);
}

}  // namespace netemu
