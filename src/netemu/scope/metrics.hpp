#pragma once
// netemu::scope — the metrics half of the observability subsystem.
//
// Design constraints (docs/SCOPE.md):
//  * lock-light hot path: a Counter::add is one relaxed fetch_add on a
//    thread-sharded cache line; a Histogram::observe is two.  No mutex is
//    ever taken while recording — the registry mutex guards only metric
//    *registration* (done once per call site) and snapshotting;
//  * readable while written: value()/snapshot() may run concurrently with
//    any number of writers and always see a sum of committed increments
//    (each shard is an atomic, so the total is a consistent lower bound
//    that catches up immediately — exactly Prometheus counter semantics);
//  * one global kill switch: scope::set_enabled(false) short-circuits every
//    recording site to a single relaxed load, which is what
//    bench/scope_overhead measures the instrumented stack against.
//
// Histograms are fixed-bucket log-scale: kSubBuckets buckets per power of
// two over [2^kMinExp, 2^kMaxExp), plus underflow/overflow.  Quantile
// extraction walks the committed bucket counts and log-interpolates inside
// the target bucket, so any reported pXX has bounded *relative* error of
// half a bucket width (2^(1/kSubBuckets) ≈ 9% wide ⇒ ≤ ~4.5% error) —
// plenty for latency tails, and immune to outliers by construction.

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace netemu::scope {

/// Global instrumentation switch.  Default on.  Recording sites check this
/// with one relaxed load; disabling makes every record a near-no-op so the
/// overhead harness can measure the cost of recording itself.
bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// Shard index of the calling thread: assigned round-robin at first use so
/// concurrent writers land on distinct cache lines.
std::size_t shard_index() noexcept;

inline constexpr std::size_t kShards = 8;

/// Monotonically increasing counter (Prometheus "counter" semantics:
/// resets only on process restart, which readers detect via the process
/// epoch — see process_epoch_unix_s() in trace.hpp).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    if (!enabled()) return;
    shards_[shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  void inc() noexcept { add(1); }

  std::uint64_t value() const noexcept {
    std::uint64_t sum = 0;
    for (const Shard& s : shards_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Shard, kShards> shards_{};
};

/// Last-write-wins instantaneous value (queue depths, breaker states, ...).
class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(double d) noexcept {
    // CAS loop: atomic<double> has no fetch_add until C++20 TS adoption is
    // universal; gauges are not hot enough for this to matter.
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d,
                                     std::memory_order_relaxed)) {
    }
  }
  double value() const noexcept { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket log-scale histogram with thread-sharded counts.
class Histogram {
 public:
  static constexpr int kSubBuckets = 8;  ///< buckets per power of two
  static constexpr int kMinExp = -10;    ///< lowest bucketed value ~ 1e-3
  static constexpr int kMaxExp = 44;     ///< highest bucketed value ~ 1.7e13
  /// bucket 0 = underflow (v < 2^kMinExp), last = overflow (v >= 2^kMaxExp).
  static constexpr std::size_t kBuckets =
      static_cast<std::size_t>(kMaxExp - kMinExp) * kSubBuckets + 2;

  void observe(double v) noexcept;

  /// Bucket index a value lands in (exposed for tests and exposition).
  static std::size_t bucket_of(double v) noexcept;
  /// Inclusive lower / exclusive upper bound of a bucket's value range.
  static double bucket_lower(std::size_t b) noexcept;
  static double bucket_upper(std::size_t b) noexcept;

  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    std::array<std::uint64_t, kBuckets> buckets{};

    /// Quantile q in [0, 1] with log-interpolation inside the bucket;
    /// relative error bounded by half a bucket width (≈ 4.5%).  0 when
    /// empty.
    double quantile(double q) const;
    double mean() const { return count ? sum / static_cast<double>(count) : 0.0; }
  };

  /// Consistent-enough snapshot: sums committed per-shard counts.  Safe
  /// concurrently with observe().
  Snapshot snapshot() const;

  std::uint64_t count() const noexcept;

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
    std::atomic<double> sum{0.0};
  };
  std::array<Shard, kShards> shards_{};
};

/// Exact small-sample quantile over an unsorted value vector (sorts a
/// copy).  The single home for the "sorted[idx] at q*(n-1)+0.5" math that
/// used to be duplicated in executor.cpp and micro_sim.cpp — use this for
/// bench-sized sample sets, Histogram for streaming/production paths.
double exact_quantile(std::vector<double> samples, double q);

enum class MetricKind { kCounter, kGauge, kHistogram };

/// Named-metric registry.  register-or-lookup returns a stable reference;
/// call sites fetch their metric once (function-local static) and record
/// lock-free thereafter.
class Registry {
 public:
  /// The process-wide registry every subsystem records into.
  static Registry& global();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Register (first call) or look up (subsequent calls) a metric by name.
  /// Kind mismatches on re-lookup throw std::logic_error.
  Counter& counter(const std::string& name, const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& help = "");
  Histogram& histogram(const std::string& name, const std::string& help = "");

  struct Sample {
    std::string name;
    std::string help;
    MetricKind kind = MetricKind::kCounter;
    std::uint64_t counter = 0;
    double gauge = 0.0;
    Histogram::Snapshot hist;
  };
  /// Point-in-time view of every registered metric, sorted by name.
  std::vector<Sample> snapshot() const;

 private:
  struct Entry {
    std::string help;
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  mutable std::mutex mutex_;
  std::map<std::string, Entry> metrics_;
};

}  // namespace netemu::scope
