#include "netemu/scope/trace.hpp"

#include <unistd.h>

#include <atomic>
#include <chrono>

#include "netemu/util/hash.hpp"
#include "netemu/util/prng.hpp"

namespace netemu::scope {

namespace {

using SteadyClock = std::chrono::steady_clock;

struct ProcessClock {
  SteadyClock::time_point steady_start = SteadyClock::now();
  std::uint64_t epoch_unix_s = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
};

const ProcessClock& process_clock() {
  static const ProcessClock clock;
  return clock;
}

}  // namespace

std::uint64_t now_us() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          SteadyClock::now() - process_clock().steady_start)
          .count());
}

std::uint64_t process_epoch_unix_s() noexcept {
  return process_clock().epoch_unix_s;
}

std::uint64_t mint_trace_id() noexcept {
  // splitmix64 over a process-unique sequence: ids never repeat within a
  // process, and the pid/epoch salt makes cross-process collision unlikely.
  static std::atomic<std::uint64_t> seq{
      (process_epoch_unix_s() << 20) ^
      (static_cast<std::uint64_t>(::getpid()) << 1)};
  std::uint64_t id = 0;
  while (id == 0) {
    std::uint64_t state = seq.fetch_add(1, std::memory_order_relaxed);
    id = splitmix64(state);
  }
  return id;
}

TraceStore::TraceStore(std::size_t max_traces)
    : max_traces_(max_traces == 0 ? 1 : max_traces) {}

TraceStore& TraceStore::global() {
  static TraceStore* instance = new TraceStore();  // leaked: outlives users
  return *instance;
}

void TraceStore::add(std::uint64_t trace_id, Span span) {
  if (trace_id == 0) return;
  std::lock_guard lock(mutex_);
  auto [it, inserted] = traces_.try_emplace(trace_id);
  if (inserted) {
    order_.push_back(trace_id);
    while (order_.size() > max_traces_) {
      traces_.erase(order_.front());
      order_.pop_front();
    }
  }
  // The eviction above can only have evicted *other* traces: trace_id was
  // just inserted at the back.
  auto found = traces_.find(trace_id);
  if (found != traces_.end()) found->second.push_back(std::move(span));
}

std::vector<Span> TraceStore::get(std::uint64_t trace_id) const {
  std::lock_guard lock(mutex_);
  const auto it = traces_.find(trace_id);
  return it == traces_.end() ? std::vector<Span>() : it->second;
}

bool TraceStore::contains(std::uint64_t trace_id) const {
  std::lock_guard lock(mutex_);
  return traces_.count(trace_id) != 0;
}

std::size_t TraceStore::size() const {
  std::lock_guard lock(mutex_);
  return traces_.size();
}

Json span_to_json(const Span& span) {
  Json doc = Json::object();
  doc["name"] = span.name;
  doc["start_us"] = span.start_us;
  doc["dur_us"] = span.dur_us;
  if (!span.note.empty()) doc["note"] = span.note;
  return doc;
}

Json trace_to_json(std::uint64_t trace_id, const TraceStore& store) {
  const std::vector<Span> spans = store.get(trace_id);
  Json doc = Json::object();
  doc["trace"] = hex64(trace_id);
  doc["found"] = !spans.empty();
  Json arr = Json::array();
  for (const Span& s : spans) arr.items().push_back(span_to_json(s));
  doc["spans"] = std::move(arr);
  return doc;
}

SpanTimer::SpanTimer(std::uint64_t trace_id, const char* name,
                     TraceStore* store) noexcept
    : trace_id_(trace_id),
      name_(name),
      store_(store ? store : &TraceStore::global()) {
  if (trace_id_ == 0) {
    done_ = true;
    return;
  }
  start_us_ = now_us();
}

SpanTimer::~SpanTimer() { finish(); }

void SpanTimer::finish() {
  if (done_) return;
  done_ = true;
  Span span;
  span.name = name_;
  span.start_us = start_us_;
  span.dur_us = now_us() - start_us_;
  span.note = std::move(note_);
  store_->add(trace_id_, std::move(span));
}

std::uint64_t parse_trace_id(const std::string& hex) {
  std::string s = hex;
  if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    s = s.substr(2);
  }
  while (s.size() < 16) s = "0" + s;  // tolerate short ids
  std::uint64_t out = 0;
  if (!parse_hex64(s, out)) return 0;
  return out;
}

}  // namespace netemu::scope
