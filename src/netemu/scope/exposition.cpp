#include "netemu/scope/exposition.hpp"

#include <cmath>
#include <cstdio>

#include "netemu/scope/flight_recorder.hpp"
#include "netemu/scope/trace.hpp"
#include "netemu/util/hash.hpp"

namespace netemu::scope {

namespace {

std::string format_double(double v) {
  char buf[32];
  if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

Json histogram_to_json(const Histogram::Snapshot& h) {
  Json doc = Json::object();
  doc["count"] = h.count;
  doc["sum"] = h.sum;
  doc["mean"] = h.mean();
  doc["p50"] = h.quantile(0.50);
  doc["p95"] = h.quantile(0.95);
  doc["p99"] = h.quantile(0.99);
  Json buckets = Json::array();
  for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
    if (h.buckets[b] == 0) continue;
    Json entry = Json::object();
    entry["le"] = Histogram::bucket_upper(b);
    entry["count"] = h.buckets[b];
    buckets.items().push_back(std::move(entry));
  }
  doc["buckets"] = std::move(buckets);
  return doc;
}

}  // namespace

Json registry_to_json(const Registry& registry) {
  Json counters = Json::object();
  Json gauges = Json::object();
  Json histograms = Json::object();
  for (const Registry::Sample& s : registry.snapshot()) {
    switch (s.kind) {
      case MetricKind::kCounter: counters[s.name] = s.counter; break;
      case MetricKind::kGauge: gauges[s.name] = s.gauge; break;
      case MetricKind::kHistogram:
        histograms[s.name] = histogram_to_json(s.hist);
        break;
    }
  }
  Json doc = Json::object();
  doc["epoch_unix_s"] = process_epoch_unix_s();
  doc["counters"] = std::move(counters);
  doc["gauges"] = std::move(gauges);
  doc["histograms"] = std::move(histograms);
  return doc;
}

std::string registry_to_prometheus(const Registry& registry) {
  std::string out;
  for (const Registry::Sample& s : registry.snapshot()) {
    if (!s.help.empty()) {
      out += "# HELP " + s.name + " " + s.help + "\n";
    }
    switch (s.kind) {
      case MetricKind::kCounter:
        out += "# TYPE " + s.name + " counter\n";
        out += s.name + " " + std::to_string(s.counter) + "\n";
        break;
      case MetricKind::kGauge:
        out += "# TYPE " + s.name + " gauge\n";
        out += s.name + " " + format_double(s.gauge) + "\n";
        break;
      case MetricKind::kHistogram: {
        out += "# TYPE " + s.name + " histogram\n";
        std::uint64_t cum = 0;
        for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
          if (s.hist.buckets[b] == 0) continue;
          cum += s.hist.buckets[b];
          const double upper = Histogram::bucket_upper(b);
          const std::string le =
              std::isfinite(upper) ? format_double(upper) : "+Inf";
          out += s.name + "_bucket{le=\"" + le + "\"} " +
                 std::to_string(cum) + "\n";
        }
        out += s.name + "_bucket{le=\"+Inf\"} " + std::to_string(s.hist.count) +
               "\n";
        out += s.name + "_sum " + format_double(s.hist.sum) + "\n";
        out += s.name + "_count " + std::to_string(s.hist.count) + "\n";
        break;
      }
    }
  }
  return out;
}

Json flight_recorder_to_json(std::size_t max_events) {
  Json arr = Json::array();
  for (const FlightRecorder::Event& e :
       FlightRecorder::global().recent(max_events)) {
    Json doc = Json::object();
    doc["seq"] = e.seq;
    doc["t_us"] = e.t_us;
    doc["kind"] = FlightRecorder::kind_name(e.kind);
    if (e.trace_id != 0) doc["trace"] = hex64(e.trace_id);
    doc["detail"] = e.detail;
    arr.items().push_back(std::move(doc));
  }
  return arr;
}

}  // namespace netemu::scope
