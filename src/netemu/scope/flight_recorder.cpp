#include "netemu/scope/flight_recorder.hpp"

#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstring>

#include "netemu/scope/trace.hpp"

namespace netemu::scope {

namespace {

// --- async-signal-safe formatting helpers (no locale, no allocation) ---

std::size_t format_u64(std::uint64_t v, char* buf) noexcept {
  char tmp[20];
  std::size_t n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  for (std::size_t i = 0; i < n; ++i) buf[i] = tmp[n - 1 - i];
  return n;
}

std::size_t format_hex64(std::uint64_t v, char* buf) noexcept {
  static const char digits[] = "0123456789abcdef";
  for (int i = 15; i >= 0; --i) {
    buf[i] = digits[v & 0xF];
    v >>= 4;
  }
  return 16;
}

void write_all(int fd, const char* data, std::size_t len) noexcept {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, data + off, len - off);
    if (n <= 0) return;  // best effort: a postmortem must never loop forever
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

const char* FlightRecorder::kind_name(Kind k) noexcept {
  switch (k) {
    case Kind::kInfo: return "info";
    case Kind::kShed: return "shed";
    case Kind::kWatchdog: return "watchdog";
    case Kind::kBreaker: return "breaker";
    case Kind::kHedge: return "hedge";
    case Kind::kFault: return "fault";
    case Kind::kCrash: return "crash";
  }
  return "?";
}

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder* instance = new FlightRecorder();  // leaked
  return *instance;
}

void FlightRecorder::record(Kind kind, std::uint64_t trace_id,
                            const char* detail) noexcept {
  const std::uint64_t ticket = next_.fetch_add(1, std::memory_order_relaxed) + 1;
  Slot& s = slots_[ticket % kSlots];
  // Invalidate first so a concurrent reader discards a half-written slot.
  s.seq.store(0, std::memory_order_release);
  s.t_us.store(now_us(), std::memory_order_relaxed);
  s.trace_id.store(trace_id, std::memory_order_relaxed);
  s.kind.store(static_cast<std::uint32_t>(kind), std::memory_order_relaxed);
  // Pack the detail text into atomic words (relaxed stores: the release on
  // seq below publishes everything).
  std::uint64_t words[kDetailWords] = {};
  if (detail != nullptr) {
    char* bytes = reinterpret_cast<char*>(words);
    std::size_t n = 0;
    while (n < kDetailBytes - 1 && detail[n] != '\0') {
      bytes[n] = detail[n];
      ++n;
    }
  }
  for (std::size_t i = 0; i < kDetailWords; ++i) {
    s.detail[i].store(words[i], std::memory_order_relaxed);
  }
  s.seq.store(ticket, std::memory_order_release);
}

std::vector<FlightRecorder::Event> FlightRecorder::recent(
    std::size_t max_events) const {
  std::vector<Event> out;
  out.reserve(kSlots);
  for (std::size_t i = 0; i < kSlots; ++i) {
    const Slot& s = slots_[i];
    const std::uint64_t seq = s.seq.load(std::memory_order_acquire);
    if (seq == 0) continue;
    Event e;
    e.seq = seq;
    e.t_us = s.t_us.load(std::memory_order_relaxed);
    e.trace_id = s.trace_id.load(std::memory_order_relaxed);
    e.kind = static_cast<Kind>(s.kind.load(std::memory_order_relaxed));
    std::uint64_t words[kDetailWords];
    for (std::size_t w = 0; w < kDetailWords; ++w) {
      words[w] = s.detail[w].load(std::memory_order_relaxed);
    }
    // Validate: if the slot was overwritten while we read it, skip it.
    if (s.seq.load(std::memory_order_acquire) != seq) continue;
    const char* bytes = reinterpret_cast<const char*>(words);
    e.detail.assign(bytes, strnlen(bytes, kDetailBytes));
    out.push_back(std::move(e));
  }
  std::sort(out.begin(), out.end(),
            [](const Event& a, const Event& b) { return a.seq < b.seq; });
  if (out.size() > max_events) {
    out.erase(out.begin(),
              out.begin() + static_cast<std::ptrdiff_t>(out.size() - max_events));
  }
  return out;
}

void FlightRecorder::dump(int fd) const noexcept {
  // One line per valid slot, oldest first, fully signal-safe: we scan in
  // two passes over the fixed slot array instead of sorting.
  std::uint64_t min_seq = ~0ULL, max_seq = 0;
  for (std::size_t i = 0; i < kSlots; ++i) {
    const std::uint64_t seq = slots_[i].seq.load(std::memory_order_acquire);
    if (seq == 0) continue;
    if (seq < min_seq) min_seq = seq;
    if (seq > max_seq) max_seq = seq;
  }
  if (max_seq == 0) {
    static const char empty[] = "scope: flight recorder empty\n";
    write_all(fd, empty, sizeof(empty) - 1);
    return;
  }
  static const char header[] = "scope: flight recorder dump (seq, t_us, kind, trace, detail)\n";
  write_all(fd, header, sizeof(header) - 1);
  for (std::uint64_t want = min_seq; want <= max_seq; ++want) {
    const Slot& s = slots_[want % kSlots];
    if (s.seq.load(std::memory_order_acquire) != want) continue;
    char line[256];
    std::size_t n = 0;
    n += format_u64(want, line + n);
    line[n++] = ' ';
    n += format_u64(s.t_us.load(std::memory_order_relaxed), line + n);
    line[n++] = ' ';
    const char* kind =
        kind_name(static_cast<Kind>(s.kind.load(std::memory_order_relaxed)));
    for (const char* p = kind; *p != '\0'; ++p) line[n++] = *p;
    line[n++] = ' ';
    n += format_hex64(s.trace_id.load(std::memory_order_relaxed), line + n);
    line[n++] = ' ';
    std::uint64_t words[kDetailWords];
    for (std::size_t w = 0; w < kDetailWords; ++w) {
      words[w] = s.detail[w].load(std::memory_order_relaxed);
    }
    const char* bytes = reinterpret_cast<const char*>(words);
    for (std::size_t b = 0; b < kDetailBytes && bytes[b] != '\0'; ++b) {
      if (n >= sizeof(line) - 2) break;
      line[n++] = bytes[b];
    }
    line[n++] = '\n';
    write_all(fd, line, n);
  }
}

void FlightRecorder::dump_once_to_stderr(const char* reason) noexcept {
  bool expected = false;
  if (!dumped_once_.compare_exchange_strong(expected, true)) return;
  static const char prefix[] = "scope: dumping flight recorder: ";
  write_all(2, prefix, sizeof(prefix) - 1);
  if (reason != nullptr) write_all(2, reason, std::strlen(reason));
  write_all(2, "\n", 1);
  dump(2);
}

namespace {

void crash_handler(int sig) {
  FlightRecorder& fr = FlightRecorder::global();
  fr.record(FlightRecorder::Kind::kCrash, 0,
            sig == SIGSEGV   ? "SIGSEGV"
            : sig == SIGBUS  ? "SIGBUS"
            : sig == SIGABRT ? "SIGABRT"
            : sig == SIGFPE  ? "SIGFPE"
                             : "signal");
  fr.dump(2);
  // Restore the default action and re-raise so the process still dies with
  // the original signal (and a core, when enabled).
  std::signal(sig, SIG_DFL);
  ::raise(sig);
}

}  // namespace

void install_crash_handler() {
  static std::atomic<bool> installed{false};
  bool expected = false;
  if (!installed.compare_exchange_strong(expected, true)) return;
  std::signal(SIGSEGV, crash_handler);
  std::signal(SIGBUS, crash_handler);
  std::signal(SIGABRT, crash_handler);
  std::signal(SIGFPE, crash_handler);
}

}  // namespace netemu::scope
