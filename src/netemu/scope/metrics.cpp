#include "netemu/scope/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

namespace netemu::scope {

namespace {
std::atomic<bool> g_enabled{true};
std::atomic<std::size_t> g_next_shard{0};
}  // namespace

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

std::size_t shard_index() noexcept {
  thread_local const std::size_t index =
      g_next_shard.fetch_add(1, std::memory_order_relaxed) % kShards;
  return index;
}

void Histogram::observe(double v) noexcept {
  if (!enabled()) return;
  Shard& s = shards_[shard_index()];
  s.buckets[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
  double cur = s.sum.load(std::memory_order_relaxed);
  while (!s.sum.compare_exchange_weak(cur, cur + v,
                                      std::memory_order_relaxed)) {
  }
}

std::size_t Histogram::bucket_of(double v) noexcept {
  // floor(log2(v) * kSubBuckets) rebased to kMinExp, computed from the
  // IEEE-754 representation: the exponent field is the power of two, and
  // the mantissa compared against the precomputed mantissas of 2^(k/8),
  // k = 1..7, is the sub-bucket.  No libm call on the record path — this
  // runs once per histogram observation in the serving hot loop.
  constexpr std::uint64_t kMantissaMask = (std::uint64_t{1} << 52) - 1;
  static const std::array<std::uint64_t, kSubBuckets - 1> kSubBoundary = [] {
    std::array<std::uint64_t, kSubBuckets - 1> t{};
    for (int k = 1; k < kSubBuckets; ++k) {
      const double boundary = std::exp2(static_cast<double>(k) / kSubBuckets);
      std::uint64_t bits = 0;
      std::memcpy(&bits, &boundary, sizeof bits);
      t[static_cast<std::size_t>(k - 1)] = bits & kMantissaMask;
    }
    return t;
  }();

  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  if (bits == 0 || (bits >> 63) != 0) return 0;  // +0, negatives, -NaN
  const int exp_field = static_cast<int>((bits >> 52) & 0x7ff);
  const std::uint64_t mantissa = bits & kMantissaMask;
  if (exp_field == 0x7ff) return mantissa != 0 ? 0 : kBuckets - 1;  // NaN:+inf
  if (exp_field == 0) return 0;  // subnormal: far below 2^kMinExp
  int sub = 0;
  for (const std::uint64_t b : kSubBoundary) sub += mantissa >= b;
  const long idx =
      (static_cast<long>(exp_field - 1023) - kMinExp) * kSubBuckets + sub;
  if (idx < 0) return 0;
  if (idx >= static_cast<long>(kBuckets - 2)) return kBuckets - 1;
  return static_cast<std::size_t>(idx) + 1;
}

double Histogram::bucket_lower(std::size_t b) noexcept {
  if (b == 0) return 0.0;
  const double e = static_cast<double>(b - 1) / kSubBuckets + kMinExp;
  return std::exp2(e);
}

double Histogram::bucket_upper(std::size_t b) noexcept {
  if (b == 0) return std::exp2(static_cast<double>(kMinExp));
  if (b >= kBuckets - 1) return std::numeric_limits<double>::infinity();
  const double e = static_cast<double>(b) / kSubBuckets + kMinExp;
  return std::exp2(e);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  for (const Shard& s : shards_) {
    // Counts first: a concurrent observe that has bumped a bucket but not
    // yet the count leaves the snapshot one short on count, never negative.
    for (std::size_t b = 0; b < kBuckets; ++b) {
      snap.buckets[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
    snap.sum += s.sum.load(std::memory_order_relaxed);
  }
  for (std::uint64_t c : snap.buckets) snap.count += c;
  return snap;
}

std::uint64_t Histogram::count() const noexcept {
  // Derived from the bucket counts: observe() pays for one bucket bump and
  // the sum update only; the O(kBuckets) walk is a read-path cost.
  std::uint64_t total = 0;
  for (const Shard& s : shards_) {
    for (std::size_t b = 0; b < kBuckets; ++b) {
      total += s.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return total;
}

double Histogram::Snapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample (1-based), nearest-rank definition.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count))));
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (buckets[b] == 0) continue;
    if (cum + buckets[b] < rank) {
      cum += buckets[b];
      continue;
    }
    const double lo = bucket_lower(b);
    const double hi = bucket_upper(b);
    if (b == 0) return lo;  // underflow bucket: report its upper bound 0..2^min as 0-ish lower
    if (!std::isfinite(hi)) return lo;  // overflow: best we can say
    // Log-interpolate by the rank's position inside this bucket.
    const double frac = (static_cast<double>(rank - cum) - 0.5) /
                        static_cast<double>(buckets[b]);
    return lo * std::pow(hi / lo, std::clamp(frac, 0.0, 1.0));
  }
  return 0.0;
}

double exact_quantile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  q = std::clamp(q, 0.0, 1.0);
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[std::min(idx, samples.size() - 1)];
}

Registry& Registry::global() {
  static Registry* instance = new Registry();  // leaked: outlives all users
  return *instance;
}

Counter& Registry::counter(const std::string& name, const std::string& help) {
  std::lock_guard lock(mutex_);
  auto [it, inserted] = metrics_.try_emplace(name);
  if (inserted) {
    it->second.help = help;
    it->second.kind = MetricKind::kCounter;
    it->second.counter = std::make_unique<Counter>();
  } else if (it->second.kind != MetricKind::kCounter) {
    throw std::logic_error("scope metric '" + name +
                           "' registered with a different kind");
  }
  return *it->second.counter;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help) {
  std::lock_guard lock(mutex_);
  auto [it, inserted] = metrics_.try_emplace(name);
  if (inserted) {
    it->second.help = help;
    it->second.kind = MetricKind::kGauge;
    it->second.gauge = std::make_unique<Gauge>();
  } else if (it->second.kind != MetricKind::kGauge) {
    throw std::logic_error("scope metric '" + name +
                           "' registered with a different kind");
  }
  return *it->second.gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               const std::string& help) {
  std::lock_guard lock(mutex_);
  auto [it, inserted] = metrics_.try_emplace(name);
  if (inserted) {
    it->second.help = help;
    it->second.kind = MetricKind::kHistogram;
    it->second.histogram = std::make_unique<Histogram>();
  } else if (it->second.kind != MetricKind::kHistogram) {
    throw std::logic_error("scope metric '" + name +
                           "' registered with a different kind");
  }
  return *it->second.histogram;
}

std::vector<Registry::Sample> Registry::snapshot() const {
  std::lock_guard lock(mutex_);
  std::vector<Sample> out;
  out.reserve(metrics_.size());
  for (const auto& [name, entry] : metrics_) {
    Sample s;
    s.name = name;
    s.help = entry.help;
    s.kind = entry.kind;
    switch (entry.kind) {
      case MetricKind::kCounter: s.counter = entry.counter->value(); break;
      case MetricKind::kGauge: s.gauge = entry.gauge->value(); break;
      case MetricKind::kHistogram: s.hist = entry.histogram->snapshot(); break;
    }
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace netemu::scope
