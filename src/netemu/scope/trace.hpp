#pragma once
// netemu::scope — trace spans.
//
// A *trace* is one request's journey through the stack, identified by a
// 64-bit id minted at the edge (the client, or netemu_fleet for clients
// that did not send one) and propagated as the "trace" JSON field of the
// line protocol.  Each layer that touches the request appends *span*
// records — name, start, duration, free-form note — into its process-local
// TraceStore.  Spans are wide events: one record per stage, written once at
// stage completion, never sampled.
//
// The span catalog (docs/SCOPE.md):
//   cache.probe      executor cache lookup               note: hit | miss
//   flight.join      follower joined a single-flight     note: leader key
//   queue.wait       leader's submit -> worker pickup
//   sim.run          the compute itself (plan_query)
//   wal.append       result persisted (cache.put when journaling is off)
//   executor.execute whole executor residency
//   fleet.route      whole fleet residency               note: backend, tried
//   fleet.hedge      a hedge was fired                   note: won | lost
//
// Retrieval: the `trace` op ({"op":"trace","id":"<hex>"}) returns the span
// set; netemu_fleet additionally fans the op out to its backends and merges
// (each span annotated with the site that recorded it).
//
// Cost discipline: a trace id of 0 means "untraced" and every recording
// helper is a no-op for it, so the hot path pays one register compare per
// site unless the client opted in.

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "netemu/util/json.hpp"

namespace netemu::scope {

/// Microseconds since process start (steady clock; never goes backwards).
std::uint64_t now_us() noexcept;

/// Unix seconds at process start.  Paired with any process-lifetime counter
/// (sim ticks, request totals) this gives readers reset-safe monotonicity:
/// a changed epoch means the counter restarted from zero.
std::uint64_t process_epoch_unix_s() noexcept;

/// Mint a nonzero trace id (splitmix64 over a process-unique counter seeded
/// from the epoch and pid; ids are unique per process and effectively
/// unique across a fleet).
std::uint64_t mint_trace_id() noexcept;

struct Span {
  std::string name;
  std::uint64_t start_us = 0;  ///< now_us() at span start
  std::uint64_t dur_us = 0;
  std::string note;            ///< free-form annotation ("hit", "backend=...")
};

/// Bounded per-process store of recent traces (FIFO eviction).  Mutex-based:
/// spans are only recorded for explicitly traced requests, a handful of
/// records each — never on the untraced hot path.
class TraceStore {
 public:
  explicit TraceStore(std::size_t max_traces = 512);

  /// The store the service/fleet layers record into.
  static TraceStore& global();

  void add(std::uint64_t trace_id, Span span);
  /// All spans recorded so far for a trace, in recording order.  Empty when
  /// unknown (or evicted).
  std::vector<Span> get(std::uint64_t trace_id) const;
  bool contains(std::uint64_t trace_id) const;
  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::size_t max_traces_;
  std::map<std::uint64_t, std::vector<Span>> traces_;
  std::deque<std::uint64_t> order_;  // insertion order for eviction
};

/// Serialize one span / a trace's span set (the `trace` op result shape).
Json span_to_json(const Span& span);
Json trace_to_json(std::uint64_t trace_id, const TraceStore& store);

/// RAII span: records into the store on finish()/destruction.  A zero
/// trace id makes every method a no-op.  The name must be a string with
/// static storage duration (span names are a fixed catalog): keeping it as
/// a pointer means an untraced request never materializes a std::string.
class SpanTimer {
 public:
  SpanTimer(std::uint64_t trace_id, const char* name,
            TraceStore* store = nullptr) noexcept;
  ~SpanTimer();

  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

  void set_note(std::string note) {
    if (done_) return;  // untraced (or already finished): skip the copy
    note_ = std::move(note);
  }
  /// Record now (idempotent; the destructor then does nothing).
  void finish();
  /// Abandon without recording.
  void cancel() noexcept { done_ = true; }

 private:
  std::uint64_t trace_id_;
  const char* name_;
  std::string note_;
  TraceStore* store_;
  std::uint64_t start_us_ = 0;
  bool done_ = false;
};

/// Parse the protocol's trace id spelling (16-digit hex, with or without
/// leading "0x").  Returns 0 on malformed input (0 is never a valid id).
std::uint64_t parse_trace_id(const std::string& hex);

}  // namespace netemu::scope
