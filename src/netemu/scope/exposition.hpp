#pragma once
// netemu::scope — exposition: rendering a Registry snapshot (plus the
// flight recorder) for consumers.
//
// Two formats, both served through the line protocol's `stats` op:
//   * JSON   — {"counters":{...},"gauges":{...},"histograms":{...}}, the
//              shape netemu_top consumes;
//   * Prometheus text — `# HELP` / `# TYPE` / samples, histograms emitted
//              as cumulative `_bucket{le="..."}` series plus `_sum` and
//              `_count`, ready for a scrape proxy to forward verbatim.
//
// Histogram buckets are sparse in both formats: only non-empty buckets are
// emitted (plus the +Inf catch-all), so a freshly started process costs a
// few hundred bytes, not kBuckets lines per histogram.

#include <string>

#include "netemu/scope/metrics.hpp"
#include "netemu/util/json.hpp"

namespace netemu::scope {

/// JSON rendering of a registry snapshot.
Json registry_to_json(const Registry& registry);

/// Prometheus text exposition (version 0.0.4) of a registry snapshot.
/// Metric names must already be Prometheus-legal ([a-zA-Z_:][a-zA-Z0-9_:]*);
/// the netemu metric catalog is (docs/SCOPE.md).
std::string registry_to_prometheus(const Registry& registry);

/// Recent flight-recorder events as a JSON array (newest last).
Json flight_recorder_to_json(std::size_t max_events = 256);

}  // namespace netemu::scope
