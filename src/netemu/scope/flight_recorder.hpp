#pragma once
// netemu::scope — the flight recorder.
//
// A fixed-size lock-free ring of recent notable events per process: breaker
// transitions, hedge outcomes, sheds, watchdog cancellations, injected
// faults, crashes.  Writers claim a slot with one fetch_add and fill it
// with relaxed atomic stores — no locks, no allocation, safe from any
// thread.  The ring is for postmortems: when a faultline soak dies, a
// netemu_serve crashes, or a watchdog fires, dump() reconstructs the last
// few thousand events (with trace ids) from the core of the still-warm
// process, stderr, or a debugger.
//
// Consistency model: a slot's payload is a fixed array of atomic words, so
// concurrent access is never a data race (TSan-clean by construction).  A
// reader validates a slot by re-checking its sequence word after reading
// the payload; a slot overwritten mid-read is discarded.  In the
// astronomically unlikely case of two writers lapping onto the same slot
// simultaneously (the ring is kSlots deep), the slot's text may interleave
// — acceptable for a diagnostic channel, and the sequence word still marks
// it as the newer event.
//
// dump(fd) is async-signal-safe: no locks, no allocation, formatting into
// stack buffers, output via write(2) only — install_crash_handler() wires
// it to SIGSEGV/SIGBUS/SIGABRT/SIGFPE so a crashing daemon leaves its last
// moments on stderr.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace netemu::scope {

class FlightRecorder {
 public:
  static constexpr std::size_t kSlots = 4096;
  static constexpr std::size_t kDetailWords = 12;  ///< 96 bytes of text
  static constexpr std::size_t kDetailBytes = kDetailWords * 8;

  enum class Kind : std::uint32_t {
    kInfo = 0,
    kShed,       ///< admission control rejected a request
    kWatchdog,   ///< a hung flight was cancelled
    kBreaker,    ///< circuit breaker state transition
    kHedge,      ///< hedge fired / resolved
    kFault,      ///< injected fault (faultline)
    kCrash,      ///< fatal signal (recorded by the crash handler)
  };
  static const char* kind_name(Kind k) noexcept;

  /// The process-wide recorder.
  static FlightRecorder& global();

  FlightRecorder() = default;
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Record one event.  Lock-free; `detail` is truncated to kDetailBytes-1.
  /// trace_id 0 = not tied to a traced request.
  void record(Kind kind, std::uint64_t trace_id, const char* detail) noexcept;
  void record(Kind kind, std::uint64_t trace_id, const std::string& detail) noexcept {
    record(kind, trace_id, detail.c_str());
  }

  struct Event {
    std::uint64_t seq = 0;       ///< global event number (1-based)
    std::uint64_t t_us = 0;      ///< scope::now_us() at record time
    std::uint64_t trace_id = 0;
    Kind kind = Kind::kInfo;
    std::string detail;
  };

  /// Up to `max_events` most recent events, oldest first.  Concurrent-safe;
  /// slots overwritten mid-read are skipped.
  std::vector<Event> recent(std::size_t max_events = kSlots) const;

  /// Events recorded since process start (recent() returns the last kSlots).
  std::uint64_t total() const noexcept {
    return next_.load(std::memory_order_relaxed);
  }

  /// Async-signal-safe dump of the ring to `fd`, oldest first.
  void dump(int fd) const noexcept;

  /// dump(2) at most once per process (postmortem aid for the first
  /// watchdog fire / shed burst); `reason` is printed as the header.
  void dump_once_to_stderr(const char* reason) noexcept;

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};  ///< 0 = never written
    std::atomic<std::uint64_t> t_us{0};
    std::atomic<std::uint64_t> trace_id{0};
    std::atomic<std::uint32_t> kind{0};
    std::atomic<std::uint64_t> detail[kDetailWords]{};
  };

  std::atomic<std::uint64_t> next_{0};
  std::atomic<bool> dumped_once_{false};
  Slot slots_[kSlots];
};

/// Install SIGSEGV/SIGBUS/SIGABRT/SIGFPE handlers that dump the global
/// recorder to stderr and re-raise.  Idempotent.
void install_crash_handler();

}  // namespace netemu::scope
