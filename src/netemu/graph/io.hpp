#pragma once
// Text serialization for Multigraph: DOT (for visual inspection) and a
// trivially parseable edge-list format ("n\nu v mult\n...").

#include <string>

#include "netemu/graph/multigraph.hpp"

namespace netemu {

std::string to_dot(const Multigraph& g, const std::string& name = "G");

std::string to_edge_list(const Multigraph& g);

/// Inverse of to_edge_list.  Throws std::invalid_argument on malformed input.
Multigraph from_edge_list(const std::string& text);

}  // namespace netemu
