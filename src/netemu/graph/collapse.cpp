#include "netemu/graph/collapse.hpp"

#include <cassert>

namespace netemu {

CollapseResult collapse(const Multigraph& g,
                        const std::vector<std::uint32_t>& part,
                        std::uint32_t num_parts) {
  assert(part.size() == g.num_vertices());
  CollapseResult result;
  result.load.assign(num_parts, 0);
  for (std::uint32_t p : part) {
    assert(p < num_parts);
    ++result.load[p];
  }
  MultigraphBuilder b(num_parts);
  for (const Edge& e : g.edges()) {
    const std::uint32_t pu = part[e.u];
    const std::uint32_t pv = part[e.v];
    if (pu == pv) {
      result.dropped_loop_multiplicity += e.mult;
    } else {
      b.add_edge(pu, pv, e.mult);
    }
  }
  result.quotient = std::move(b).build();
  return result;
}

}  // namespace netemu
