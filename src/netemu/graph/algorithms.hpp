#pragma once
// Classical graph algorithms over Multigraph: BFS, distances, diameter,
// average distance (exact and sampled), connectivity.
//
// Distances ignore multiplicities (a wire of multiplicity m is one hop);
// multiplicity only affects capacity, which the routing simulator models.

#include <cstdint>
#include <vector>

#include "netemu/graph/multigraph.hpp"
#include "netemu/util/prng.hpp"

namespace netemu {

inline constexpr std::uint32_t kUnreachable = static_cast<std::uint32_t>(-1);

/// Hop distances from src to every vertex (kUnreachable if disconnected).
std::vector<std::uint32_t> bfs_distances(const Multigraph& g, Vertex src);

/// BFS parent tree from src (parent[src] == src; kNoVertex if unreachable).
std::vector<Vertex> bfs_parents(const Multigraph& g, Vertex src);

/// Shortest path from u to v inclusive of both endpoints; empty if
/// unreachable.  Ties broken by vertex id (deterministic).
std::vector<Vertex> shortest_path(const Multigraph& g, Vertex u, Vertex v);

bool is_connected(const Multigraph& g);

/// Largest distance from src (ignores unreachable vertices).
std::uint32_t eccentricity(const Multigraph& g, Vertex src);

/// Exact diameter via all-sources BFS, parallelized over sources.
std::uint32_t diameter_exact(const Multigraph& g);

/// Double-sweep lower bound on the diameter: BFS from a random vertex, then
/// BFS from the farthest vertex found.  Exact on trees; within 2x always.
std::uint32_t diameter_double_sweep(const Multigraph& g, Prng& rng);

/// Exact mean pairwise hop distance over ordered pairs, parallel BFS.
double avg_distance_exact(const Multigraph& g);

/// Estimate mean distance by BFS from `samples` random sources.
double avg_distance_sampled(const Multigraph& g, Prng& rng,
                            std::size_t samples);

/// Mean distance: exact when n <= exact_cutoff, sampled otherwise.
double avg_distance_auto(const Multigraph& g, Prng& rng,
                         std::size_t exact_cutoff = 2048,
                         std::size_t samples = 128);

struct DegreeStats {
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  double mean = 0.0;
};

DegreeStats degree_stats(const Multigraph& g);

}  // namespace netemu
