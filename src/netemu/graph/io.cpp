#include "netemu/graph/io.hpp"

#include <sstream>
#include <stdexcept>

namespace netemu {

std::string to_dot(const Multigraph& g, const std::string& name) {
  std::ostringstream os;
  os << "graph " << name << " {\n";
  for (const Edge& e : g.edges()) {
    os << "  " << e.u << " -- " << e.v;
    if (e.mult != 1) os << " [label=\"x" << e.mult << "\"]";
    os << ";\n";
  }
  os << "}\n";
  return os.str();
}

std::string to_edge_list(const Multigraph& g) {
  std::ostringstream os;
  os << g.num_vertices() << "\n";
  for (const Edge& e : g.edges()) {
    os << e.u << " " << e.v << " " << e.mult << "\n";
  }
  return os.str();
}

Multigraph from_edge_list(const std::string& text) {
  std::istringstream is(text);
  std::size_t n = 0;
  if (!(is >> n)) throw std::invalid_argument("edge list: missing vertex count");
  MultigraphBuilder b(n);
  Vertex u, v;
  std::uint32_t mult;
  while (is >> u >> v >> mult) {
    if (u >= n || v >= n) throw std::invalid_argument("edge list: vertex out of range");
    if (u == v) throw std::invalid_argument("edge list: self-loop");
    b.add_edge(u, v, mult);
  }
  if (!is.eof() && is.fail()) {
    // Partial record (e.g. "1 2" with no multiplicity).
    is.clear();
    std::string rest;
    if (is >> rest) throw std::invalid_argument("edge list: trailing garbage");
  }
  return std::move(b).build();
}

}  // namespace netemu
