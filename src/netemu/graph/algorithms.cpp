#include "netemu/graph/algorithms.hpp"

#include <algorithm>
#include <atomic>
#include <numeric>

#include "netemu/util/thread_pool.hpp"

namespace netemu {

namespace {

/// BFS filling dist; returns the last vertex dequeued (a farthest vertex).
Vertex bfs_core(const Multigraph& g, Vertex src,
                std::vector<std::uint32_t>& dist) {
  dist.assign(g.num_vertices(), kUnreachable);
  std::vector<Vertex> queue;
  queue.reserve(g.num_vertices());
  dist[src] = 0;
  queue.push_back(src);
  std::size_t head = 0;
  Vertex last = src;
  while (head < queue.size()) {
    const Vertex u = queue[head++];
    last = u;
    const std::uint32_t du = dist[u];
    for (const Arc& a : g.neighbors(u)) {
      if (dist[a.to] == kUnreachable) {
        dist[a.to] = du + 1;
        queue.push_back(a.to);
      }
    }
  }
  return last;
}

}  // namespace

std::vector<std::uint32_t> bfs_distances(const Multigraph& g, Vertex src) {
  std::vector<std::uint32_t> dist;
  bfs_core(g, src, dist);
  return dist;
}

std::vector<Vertex> bfs_parents(const Multigraph& g, Vertex src) {
  std::vector<Vertex> parent(g.num_vertices(), kNoVertex);
  std::vector<Vertex> queue;
  queue.reserve(g.num_vertices());
  parent[src] = src;
  queue.push_back(src);
  std::size_t head = 0;
  while (head < queue.size()) {
    const Vertex u = queue[head++];
    for (const Arc& a : g.neighbors(u)) {
      if (parent[a.to] == kNoVertex) {
        parent[a.to] = u;
        queue.push_back(a.to);
      }
    }
  }
  parent[src] = src;
  return parent;
}

std::vector<Vertex> shortest_path(const Multigraph& g, Vertex u, Vertex v) {
  if (u == v) return {u};
  const std::vector<Vertex> parent = bfs_parents(g, u);
  if (parent[v] == kNoVertex) return {};
  std::vector<Vertex> path{v};
  Vertex cur = v;
  while (cur != u) {
    cur = parent[cur];
    path.push_back(cur);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

bool is_connected(const Multigraph& g) {
  if (g.num_vertices() == 0) return true;
  const auto dist = bfs_distances(g, 0);
  return std::none_of(dist.begin(), dist.end(),
                      [](std::uint32_t d) { return d == kUnreachable; });
}

std::uint32_t eccentricity(const Multigraph& g, Vertex src) {
  const auto dist = bfs_distances(g, src);
  std::uint32_t ecc = 0;
  for (std::uint32_t d : dist) {
    if (d != kUnreachable) ecc = std::max(ecc, d);
  }
  return ecc;
}

std::uint32_t diameter_exact(const Multigraph& g) {
  const std::size_t n = g.num_vertices();
  if (n == 0) return 0;
  std::atomic<std::uint32_t> diam{0};
  ThreadPool::global().parallel_for(0, n, [&](std::size_t v) {
    const std::uint32_t ecc = eccentricity(g, static_cast<Vertex>(v));
    std::uint32_t cur = diam.load(std::memory_order_relaxed);
    while (ecc > cur &&
           !diam.compare_exchange_weak(cur, ecc, std::memory_order_relaxed)) {
    }
  });
  return diam.load();
}

std::uint32_t diameter_double_sweep(const Multigraph& g, Prng& rng) {
  const std::size_t n = g.num_vertices();
  if (n == 0) return 0;
  std::vector<std::uint32_t> dist;
  const Vertex start = static_cast<Vertex>(rng.below(n));
  const Vertex far1 = bfs_core(g, start, dist);
  const Vertex far2 = bfs_core(g, far1, dist);
  return dist[far2];
}

double avg_distance_exact(const Multigraph& g) {
  const std::size_t n = g.num_vertices();
  if (n < 2) return 0.0;
  std::atomic<std::uint64_t> total{0};
  ThreadPool::global().parallel_for(0, n, [&](std::size_t v) {
    const auto dist = bfs_distances(g, static_cast<Vertex>(v));
    std::uint64_t local = 0;
    for (std::uint32_t d : dist) {
      if (d != kUnreachable) local += d;
    }
    total.fetch_add(local, std::memory_order_relaxed);
  });
  return static_cast<double>(total.load()) /
         (static_cast<double>(n) * static_cast<double>(n - 1));
}

double avg_distance_sampled(const Multigraph& g, Prng& rng,
                            std::size_t samples) {
  const std::size_t n = g.num_vertices();
  if (n < 2 || samples == 0) return 0.0;
  samples = std::min(samples, n);
  // Sample distinct sources for lower variance.
  std::vector<Vertex> sources(n);
  std::iota(sources.begin(), sources.end(), 0u);
  shuffle(sources, rng);
  sources.resize(samples);

  std::atomic<std::uint64_t> total{0};
  ThreadPool::global().parallel_for(0, samples, [&](std::size_t i) {
    const auto dist = bfs_distances(g, sources[i]);
    std::uint64_t local = 0;
    for (std::uint32_t d : dist) {
      if (d != kUnreachable) local += d;
    }
    total.fetch_add(local, std::memory_order_relaxed);
  });
  return static_cast<double>(total.load()) /
         (static_cast<double>(samples) * static_cast<double>(n - 1));
}

double avg_distance_auto(const Multigraph& g, Prng& rng,
                         std::size_t exact_cutoff, std::size_t samples) {
  return g.num_vertices() <= exact_cutoff ? avg_distance_exact(g)
                                          : avg_distance_sampled(g, rng, samples);
}

DegreeStats degree_stats(const Multigraph& g) {
  DegreeStats s;
  const std::size_t n = g.num_vertices();
  if (n == 0) return s;
  s.min = g.min_degree();
  s.max = g.max_degree();
  s.mean = 2.0 * static_cast<double>(g.total_multiplicity()) /
           static_cast<double>(n);
  return s;
}

}  // namespace netemu
