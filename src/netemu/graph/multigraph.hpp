#pragma once
// Undirected multigraph with integer edge multiplicities.
//
// This is the single graph type of the paper: a *network multigraph* when
// vertices are processors and edges are wires, and a *communication / traffic
// multigraph* when edges are messages with multiplicity equal to relative
// frequency.  E(G) — the paper's "number of simple edges" — is the sum of
// multiplicities over all edges.
//
// Multigraph is immutable after construction; build with MultigraphBuilder.
// Storage is CSR (offset array + arc array) so neighbor scans are contiguous,
// which matters for the BFS-heavy kernels (all-pairs witnesses, routing).

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

namespace netemu {

using Vertex = std::uint32_t;
inline constexpr Vertex kNoVertex = static_cast<Vertex>(-1);

/// One undirected edge in canonical (u < v) orientation.
struct Edge {
  Vertex u = 0;
  Vertex v = 0;
  std::uint32_t mult = 1;
};

/// One direction of an edge as seen from a vertex's adjacency list.
struct Arc {
  Vertex to = 0;
  std::uint32_t mult = 1;
  std::uint32_t edge = 0;  ///< index into edges()
};

class Multigraph {
 public:
  Multigraph() = default;

  std::size_t num_vertices() const noexcept { return offsets_.empty() ? 0 : offsets_.size() - 1; }

  /// Number of distinct vertex pairs with at least one edge.
  std::size_t num_edges() const noexcept { return edges_.size(); }

  /// E(G): total edge multiplicity (the paper's "simple edges").
  std::uint64_t total_multiplicity() const noexcept { return total_mult_; }

  /// Degree counting multiplicities.
  std::uint64_t degree(Vertex v) const noexcept { return degree_[v]; }

  /// Number of distinct neighbors.
  std::size_t num_neighbors(Vertex v) const noexcept {
    return offsets_[v + 1] - offsets_[v];
  }

  std::span<const Arc> neighbors(Vertex v) const noexcept {
    return {arcs_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  std::span<const Edge> edges() const noexcept { return edges_; }
  const Edge& edge(std::uint32_t e) const noexcept { return edges_[e]; }

  std::uint64_t max_degree() const noexcept;
  std::uint64_t min_degree() const noexcept;

  /// Multiplicity of the (u, v) pair, 0 if absent.  O(deg(u)).
  std::uint32_t multiplicity(Vertex u, Vertex v) const noexcept;

  /// The paper's xG: every multiplicity scaled by x.
  Multigraph scaled(std::uint32_t x) const;

  /// Same vertex set and edge pairs, all multiplicities forced to 1.
  Multigraph simple() const;

 private:
  friend class MultigraphBuilder;

  std::vector<std::size_t> offsets_;   // n+1
  std::vector<Arc> arcs_;              // 2 * num_edges()
  std::vector<Edge> edges_;            // canonical u < v
  std::vector<std::uint64_t> degree_;  // weighted degree per vertex
  std::uint64_t total_mult_ = 0;
};

/// Accumulating builder: add_edge on the same pair sums multiplicities.
class MultigraphBuilder {
 public:
  explicit MultigraphBuilder(std::size_t num_vertices)
      : n_(num_vertices) {}

  std::size_t num_vertices() const noexcept { return n_; }

  /// Self-loops are rejected: the paper's machines have none, and collapse()
  /// accounts for loops explicitly before reaching the builder.
  void add_edge(Vertex u, Vertex v, std::uint32_t mult = 1) {
    assert(u != v && "self-loops are not representable");
    assert(u < n_ && v < n_);
    if (u > v) std::swap(u, v);
    raw_.push_back(Edge{u, v, mult});
  }

  /// Deduplicates, sorts, and freezes into CSR form.
  Multigraph build() &&;

 private:
  std::size_t n_;
  std::vector<Edge> raw_;
};

}  // namespace netemu
