#pragma once
// Vertex collapse (quotient graph) — the Lemma 11 operation.
//
// Emulating a circuit on a host with fewer processors is modeled as a two
// stage process: first collapse the circuit's nodes into |H| super-vertices
// (edges inside a super-vertex become self-loops and disappear from the
// quotient — that communication is free), then 1-to-1 embed the quotient
// into the host.  collapse() implements the first stage and reports how much
// multiplicity was absorbed by self-loops so the Lemma 11 audit can verify
// that only O(nk) of the Ω(n²) traffic is lost.

#include <cstdint>
#include <vector>

#include "netemu/graph/multigraph.hpp"

namespace netemu {

struct CollapseResult {
  Multigraph quotient;
  /// Multiplicity of edges that became self-loops (intra-super-vertex).
  std::uint64_t dropped_loop_multiplicity = 0;
  /// Number of guest vertices assigned to each super-vertex (the load).
  std::vector<std::uint32_t> load;
};

/// part[v] in [0, num_parts) names the super-vertex of v.
CollapseResult collapse(const Multigraph& g,
                        const std::vector<std::uint32_t>& part,
                        std::uint32_t num_parts);

}  // namespace netemu
