#include "netemu/graph/multigraph.hpp"

#include <algorithm>
#include <stdexcept>

namespace netemu {

std::uint64_t Multigraph::max_degree() const noexcept {
  std::uint64_t m = 0;
  for (std::uint64_t d : degree_) m = std::max(m, d);
  return m;
}

std::uint64_t Multigraph::min_degree() const noexcept {
  if (degree_.empty()) return 0;
  std::uint64_t m = degree_[0];
  for (std::uint64_t d : degree_) m = std::min(m, d);
  return m;
}

std::uint32_t Multigraph::multiplicity(Vertex u, Vertex v) const noexcept {
  for (const Arc& a : neighbors(u)) {
    if (a.to == v) return a.mult;
  }
  return 0;
}

Multigraph Multigraph::scaled(std::uint32_t x) const {
  MultigraphBuilder b(num_vertices());
  for (const Edge& e : edges_) {
    b.add_edge(e.u, e.v, e.mult * x);
  }
  return std::move(b).build();
}

Multigraph Multigraph::simple() const {
  MultigraphBuilder b(num_vertices());
  for (const Edge& e : edges_) {
    b.add_edge(e.u, e.v, 1);
  }
  return std::move(b).build();
}

Multigraph MultigraphBuilder::build() && {
  // Merge parallel insertions of the same pair.
  std::sort(raw_.begin(), raw_.end(), [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  std::vector<Edge> merged;
  merged.reserve(raw_.size());
  for (const Edge& e : raw_) {
    if (e.mult == 0) continue;
    if (!merged.empty() && merged.back().u == e.u && merged.back().v == e.v) {
      merged.back().mult += e.mult;
    } else {
      merged.push_back(e);
    }
  }

  Multigraph g;
  g.edges_ = std::move(merged);
  g.degree_.assign(n_, 0);
  g.offsets_.assign(n_ + 1, 0);

  std::vector<std::size_t> fanout(n_, 0);
  for (const Edge& e : g.edges_) {
    ++fanout[e.u];
    ++fanout[e.v];
    g.degree_[e.u] += e.mult;
    g.degree_[e.v] += e.mult;
    g.total_mult_ += e.mult;
  }
  for (std::size_t v = 0; v < n_; ++v) {
    g.offsets_[v + 1] = g.offsets_[v] + fanout[v];
  }
  g.arcs_.resize(g.offsets_[n_]);
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (std::uint32_t i = 0; i < g.edges_.size(); ++i) {
    const Edge& e = g.edges_[i];
    g.arcs_[cursor[e.u]++] = Arc{e.v, e.mult, i};
    g.arcs_[cursor[e.v]++] = Arc{e.u, e.mult, i};
  }
  return g;
}

}  // namespace netemu
