#include "netemu/traffic/distribution.hpp"

#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "netemu/util/math.hpp"

namespace netemu {

const char* traffic_kind_name(TrafficKind k) {
  switch (k) {
    case TrafficKind::kSymmetric: return "symmetric";
    case TrafficKind::kQuasiSymmetric: return "quasi-symmetric";
    case TrafficKind::kPermutation: return "permutation";
    case TrafficKind::kBitReversal: return "bit-reversal";
    case TrafficKind::kTranspose: return "transpose";
    case TrafficKind::kHotspot: return "hotspot";
  }
  return "?";
}

namespace {

/// Keyed pair hash for quasi-symmetric membership.
std::uint64_t pair_hash(std::uint64_t seed, std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = seed ^ (a * 0x9E3779B97F4A7C15ULL) ^
                    (b * 0xC2B2AE3D27D4EB4FULL);
  return splitmix64(s);
}

}  // namespace

TrafficDistribution TrafficDistribution::symmetric(
    std::vector<Vertex> processors) {
  assert(processors.size() >= 2);
  return TrafficDistribution(TrafficKind::kSymmetric, std::move(processors));
}

TrafficDistribution TrafficDistribution::quasi_symmetric(
    std::vector<Vertex> processors, double fraction,
    std::uint64_t subset_seed) {
  assert(processors.size() >= 2);
  if (fraction <= 0.0 || fraction > 1.0) {
    throw std::invalid_argument("quasi_symmetric: fraction must be in (0,1]");
  }
  TrafficDistribution d(TrafficKind::kQuasiSymmetric, std::move(processors));
  d.fraction_ = fraction;
  d.subset_seed_ = subset_seed;
  return d;
}

TrafficDistribution TrafficDistribution::permutation(
    std::vector<Vertex> processors, Prng& rng) {
  assert(processors.size() >= 2);
  const std::size_t n = processors.size();
  TrafficDistribution d(TrafficKind::kPermutation, std::move(processors));
  // Random derangement-ish permutation: shuffle and rotate fixed points away.
  d.target_.resize(n);
  std::iota(d.target_.begin(), d.target_.end(), 0u);
  shuffle(d.target_, rng);
  for (std::size_t i = 0; i < n; ++i) {
    if (d.target_[i] == i) {
      const std::size_t j = (i + 1) % n;
      std::swap(d.target_[i], d.target_[j]);
    }
  }
  return d;
}

TrafficDistribution TrafficDistribution::bit_reversal(
    std::vector<Vertex> processors) {
  const std::size_t n = processors.size();
  if (!is_pow2(n)) {
    throw std::invalid_argument("bit_reversal: processor count must be 2^k");
  }
  const unsigned bits = ilog2(n);
  TrafficDistribution d(TrafficKind::kBitReversal, std::move(processors));
  d.target_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    d.target_[i] = static_cast<std::uint32_t>(bit_reverse(i, bits));
  }
  return d;
}

TrafficDistribution TrafficDistribution::transpose(
    std::vector<Vertex> processors) {
  const std::size_t n = processors.size();
  const auto side = static_cast<std::size_t>(std::llround(std::sqrt(n)));
  if (side * side != n) {
    throw std::invalid_argument("transpose: processor count must be a square");
  }
  TrafficDistribution d(TrafficKind::kTranspose, std::move(processors));
  d.target_.resize(n);
  for (std::size_t r = 0; r < side; ++r) {
    for (std::size_t c = 0; c < side; ++c) {
      d.target_[r * side + c] = static_cast<std::uint32_t>(c * side + r);
    }
  }
  return d;
}

TrafficDistribution TrafficDistribution::hotspot(
    std::vector<Vertex> processors, double hot_fraction, Prng& rng) {
  assert(processors.size() >= 2);
  if (hot_fraction < 0.0 || hot_fraction > 1.0) {
    throw std::invalid_argument("hotspot: hot_fraction must be in [0,1]");
  }
  const std::size_t n = processors.size();
  TrafficDistribution d(TrafficKind::kHotspot, std::move(processors));
  d.hot_fraction_ = hot_fraction;
  d.hot_index_ = rng.below(n);
  return d;
}

bool TrafficDistribution::pair_allowed(std::size_t src_index,
                                       std::size_t dst_index) const {
  if (src_index == dst_index) return false;
  switch (kind_) {
    case TrafficKind::kSymmetric:
    case TrafficKind::kHotspot:
      return true;
    case TrafficKind::kQuasiSymmetric: {
      const double u =
          static_cast<double>(pair_hash(subset_seed_, src_index, dst_index)) /
          static_cast<double>(UINT64_MAX);
      return u < fraction_;
    }
    case TrafficKind::kPermutation:
    case TrafficKind::kBitReversal:
    case TrafficKind::kTranspose:
      return target_[src_index] == dst_index;
  }
  return false;
}

Message TrafficDistribution::sample(Prng& rng) const {
  const std::size_t n = processors_.size();
  switch (kind_) {
    case TrafficKind::kSymmetric: {
      const std::size_t s = rng.below(n);
      std::size_t d = rng.below(n - 1);
      if (d >= s) ++d;
      return Message{processors_[s], processors_[d]};
    }
    case TrafficKind::kQuasiSymmetric: {
      // Rejection sample over allowed pairs; expected 1/fraction draws.
      for (;;) {
        const std::size_t s = rng.below(n);
        std::size_t d = rng.below(n - 1);
        if (d >= s) ++d;
        if (pair_allowed(s, d)) return Message{processors_[s], processors_[d]};
      }
    }
    case TrafficKind::kPermutation:
    case TrafficKind::kBitReversal:
    case TrafficKind::kTranspose: {
      const std::size_t s = rng.below(n);
      return Message{processors_[s], processors_[target_[s]]};
    }
    case TrafficKind::kHotspot: {
      const std::size_t s = rng.below(n);
      if (s != hot_index_ && rng.chance(hot_fraction_)) {
        return Message{processors_[s], processors_[hot_index_]};
      }
      std::size_t d = rng.below(n - 1);
      if (d >= s) ++d;
      return Message{processors_[s], processors_[d]};
    }
  }
  return Message{};
}

std::vector<Message> TrafficDistribution::batch(std::size_t m,
                                                Prng& rng) const {
  std::vector<Message> out;
  out.reserve(m);
  for (std::size_t i = 0; i < m; ++i) out.push_back(sample(rng));
  return out;
}

}  // namespace netemu
