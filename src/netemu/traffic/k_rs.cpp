#include "netemu/traffic/k_rs.hpp"

#include <algorithm>

namespace netemu {

Multigraph make_complete(std::uint32_t r, std::uint32_t s) {
  MultigraphBuilder b(r);
  for (Vertex i = 0; i < r; ++i) {
    for (Vertex j = i + 1; j < r; ++j) {
      b.add_edge(i, j, s);
    }
  }
  return std::move(b).build();
}

KrsReport krs_report(const Multigraph& g, std::uint64_t s) {
  KrsReport rep;
  rep.max_pair_multiplicity = 0;
  for (const Edge& e : g.edges()) {
    rep.max_pair_multiplicity =
        std::max<std::uint64_t>(rep.max_pair_multiplicity, e.mult);
  }
  rep.multiplicity_ok = rep.max_pair_multiplicity <= s;
  const double r = static_cast<double>(g.num_vertices());
  if (r > 0 && s > 0) {
    rep.density = static_cast<double>(g.total_multiplicity()) /
                  (r * r * static_cast<double>(s));
  }
  for (std::size_t v = 0; v < g.num_vertices(); ++v) {
    if (g.degree(static_cast<Vertex>(v)) > 0) ++rep.vertices_used;
  }
  return rep;
}

bool in_krs(const Multigraph& g, std::uint64_t s, double lo, double hi) {
  const KrsReport rep = krs_report(g, s);
  return rep.multiplicity_ok && rep.density >= lo && rep.density <= hi;
}

}  // namespace netemu
