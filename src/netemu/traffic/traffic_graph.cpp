#include "netemu/traffic/traffic_graph.hpp"

#include <cassert>
#include <stdexcept>

namespace netemu {

Multigraph traffic_graph_from_batch(std::size_t num_vertices,
                                    const std::vector<Message>& batch) {
  MultigraphBuilder b(num_vertices);
  for (const Message& m : batch) {
    if (m.src != m.dst) b.add_edge(m.src, m.dst);
  }
  return std::move(b).build();
}

Multigraph symmetric_traffic_graph(std::size_t num_vertices,
                                   const std::vector<Vertex>& processors) {
  MultigraphBuilder b(num_vertices);
  for (std::size_t i = 0; i < processors.size(); ++i) {
    for (std::size_t j = i + 1; j < processors.size(); ++j) {
      b.add_edge(processors[i], processors[j]);
    }
  }
  return std::move(b).build();
}

Multigraph functional_traffic_graph(std::size_t num_vertices,
                                    const TrafficDistribution& dist) {
  switch (dist.kind()) {
    case TrafficKind::kPermutation:
    case TrafficKind::kBitReversal:
    case TrafficKind::kTranspose:
      break;
    default:
      throw std::invalid_argument(
          "functional_traffic_graph: distribution is not functional");
  }
  const auto& procs = dist.processors();
  MultigraphBuilder b(num_vertices);
  for (std::size_t i = 0; i < procs.size(); ++i) {
    for (std::size_t j = 0; j < procs.size(); ++j) {
      if (i != j && dist.pair_allowed(i, j)) {
        b.add_edge(procs[i], procs[j]);
      }
    }
  }
  return std::move(b).build();
}

}  // namespace netemu
