#pragma once
// Traffic distributions π: the relative frequency with which processor pairs
// exchange messages (Kruskal–Snir [9]).
//
// The paper's two central distributions are here — *symmetric* (all ordered
// pairs equally likely; β(M) is defined against it) and *quasi-symmetric*
// (Ω(n²) pairs equally likely, the rest disallowed; bottleneck-freeness is
// defined against these) — plus the classical adversarial patterns
// (permutation, bit-reversal, transpose, hotspot) used by the ablation
// benches.
//
// Quasi-symmetric supports n up to millions without storing the pair set:
// membership of (s,d) is decided by a keyed hash threshold, giving a
// deterministic pseudo-random subset of expected density `fraction`.

#include <cstdint>
#include <vector>

#include "netemu/graph/multigraph.hpp"
#include "netemu/util/prng.hpp"

namespace netemu {

enum class TrafficKind {
  kSymmetric,
  kQuasiSymmetric,
  kPermutation,
  kBitReversal,
  kTranspose,
  kHotspot,
};

const char* traffic_kind_name(TrafficKind k);

struct Message {
  Vertex src = 0;
  Vertex dst = 0;
};

class TrafficDistribution {
 public:
  /// Uniform over ordered pairs of distinct processors.
  static TrafficDistribution symmetric(std::vector<Vertex> processors);

  /// Uniform over a pseudo-random subset of ordered pairs with expected
  /// density `fraction` (must be in (0, 1]); other pairs are disallowed.
  static TrafficDistribution quasi_symmetric(std::vector<Vertex> processors,
                                             double fraction,
                                             std::uint64_t subset_seed);

  /// Fixed random permutation: processor i always sends to perm(i).
  static TrafficDistribution permutation(std::vector<Vertex> processors,
                                         Prng& rng);

  /// Processor with index i sends to index bit-reverse(i).
  /// Requires |processors| to be a power of two.
  static TrafficDistribution bit_reversal(std::vector<Vertex> processors);

  /// Index (r, c) of the sqrt(n) x sqrt(n) arrangement sends to (c, r).
  /// Requires |processors| to be a perfect square.
  static TrafficDistribution transpose(std::vector<Vertex> processors);

  /// With probability hot_fraction the destination is a fixed hot processor,
  /// otherwise uniform.
  static TrafficDistribution hotspot(std::vector<Vertex> processors,
                                     double hot_fraction, Prng& rng);

  TrafficKind kind() const { return kind_; }
  std::size_t num_processors() const { return processors_.size(); }
  const std::vector<Vertex>& processors() const { return processors_; }

  /// Draw one message according to the distribution.
  Message sample(Prng& rng) const;

  /// Draw a batch of m messages.
  std::vector<Message> batch(std::size_t m, Prng& rng) const;

  /// True iff the ordered pair (by processor index) can occur.
  bool pair_allowed(std::size_t src_index, std::size_t dst_index) const;

 private:
  explicit TrafficDistribution(TrafficKind kind,
                               std::vector<Vertex> processors)
      : kind_(kind), processors_(std::move(processors)) {}

  TrafficKind kind_;
  std::vector<Vertex> processors_;
  // Quasi-symmetric parameters.
  double fraction_ = 1.0;
  std::uint64_t subset_seed_ = 0;
  // Permutation / functional target by processor index.
  std::vector<std::uint32_t> target_;
  // Hotspot parameters.
  double hot_fraction_ = 0.0;
  std::size_t hot_index_ = 0;
};

}  // namespace netemu
