#pragma once
// Traffic multigraphs: the paper models a traffic distribution π as a
// multigraph T_π whose integral edge weights are proportional to the pair
// frequencies.  Bandwidth is then the purely graph-theoretic quantity
// β(H, T) = E(T) / C(H, T).

#include <vector>

#include "netemu/graph/multigraph.hpp"
#include "netemu/traffic/distribution.hpp"

namespace netemu {

/// T_π for a sampled batch: one vertex per machine vertex, multiplicity =
/// number of sampled messages per unordered pair.
Multigraph traffic_graph_from_batch(std::size_t num_vertices,
                                    const std::vector<Message>& batch);

/// Exact traffic multigraph of the symmetric distribution: the complete
/// graph K_n on the processor set (unit multiplicity), lifted to the
/// machine's vertex numbering.  Non-processor vertices are isolated.
Multigraph symmetric_traffic_graph(std::size_t num_vertices,
                                   const std::vector<Vertex>& processors);

/// Exact traffic multigraph of a functional pattern (permutation /
/// bit-reversal / transpose distributions).
Multigraph functional_traffic_graph(std::size_t num_vertices,
                                    const TrafficDistribution& dist);

}  // namespace netemu
