#pragma once
// The K_{r,s} graph class of the paper: a multigraph is in K_{r,s} iff it
// has r vertices, Θ(r²·s) total edge multiplicity, and no vertex pair joined
// by more than s edges.  The Lemma 9 / Lemma 11 audits need both a canonical
// member (the complete graph with multiplicity s) and a membership check
// that reports the Θ-constant.

#include <cstdint>

#include "netemu/graph/multigraph.hpp"

namespace netemu {

/// Canonical K_{r,s} member: complete graph on r vertices, multiplicity s.
Multigraph make_complete(std::uint32_t r, std::uint32_t s = 1);

struct KrsReport {
  bool multiplicity_ok = false;  ///< max pair multiplicity <= s
  std::uint64_t max_pair_multiplicity = 0;
  /// E(G) / (r² s) — must be bounded away from 0 and above by a constant for
  /// membership; the caller supplies the interval it accepts.
  double density = 0.0;
  std::uint64_t vertices_used = 0;  ///< vertices of nonzero degree
};

/// Evaluate membership evidence of g in K_{r,s} with r = vertices of g.
KrsReport krs_report(const Multigraph& g, std::uint64_t s);

/// Convenience: density within [lo, hi] and multiplicity bound respected.
bool in_krs(const Multigraph& g, std::uint64_t s, double lo = 0.05,
            double hi = 4.0);

}  // namespace netemu
