#pragma once
// The request executor: the concurrency heart of the service.
//
//   execute(query)
//     ├─ cache hit  ──────────────────────────────► O(1) answer
//     ├─ identical query already in flight ───────► join it (single-flight)
//     ├─ admission queue full ────────────────────► shed: "overloaded" +
//     │                                             retry_after_ms hint
//     └─ otherwise: run plan_query() on the pool, publish to every waiter,
//        store the result under its content address.
//
// Single-flight matters because the expensive queries are the memoizable
// ones: a thundering herd of identical `estimate` requests triggers exactly
// one packet simulation; the rest block on the flight and share its result.
// Waiters honor a per-query deadline — a timed-out waiter gets an error
// response, but the computation still completes and still fills the cache.
//
// Resilience (netemu::faultline integration):
//  * a watchdog thread cancels flights older than hang_timeout_ms — waiters
//    get a "hung" error, the admission slot is freed immediately, AND the
//    flight's CancelSource fires so a cooperative compute unwinds within one
//    check quantum instead of burning a pool worker until completion;
//  * cooperative cancellation end-to-end (docs/LIFECYCLE.md): every flight
//    owns a CancelSource armed with the leader's deadline; compute stopped
//    mid-sweep surfaces completed trials as a degraded partial result (kept
//    out of the cache), watchdog abandonment / last-waiter deadline expiry /
//    cancel_trace (the {"op":"cancel"} verb) all convert to real compute
//    cancellation, and begin_drain() sheds new work while cancel_all()
//    reclaims what is still running;
//  * serve_stale_on_error: a recompute (refresh=true) that fails falls back
//    to the previous cached value, marked stale, instead of erroring;
//  * Options::faults routes worker stalls from a FaultInjector into the
//    compute path, so chaos tests exercise all of the above.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "netemu/guard/fair_queue.hpp"
#include "netemu/guard/guard.hpp"
#include "netemu/scope/metrics.hpp"
#include "netemu/service/query.hpp"
#include "netemu/service/result_cache.hpp"
#include "netemu/util/cancel.hpp"
#include "netemu/util/json.hpp"
#include "netemu/util/thread_pool.hpp"

namespace netemu {

class FaultInjector;

struct Response {
  bool ok = false;
  bool cache_hit = false;
  bool stale = false;       ///< served from cache after a recompute failure
  bool overloaded = false;  ///< shed by admission control (when !ok)
  bool degraded = false;    ///< deadline-bounded partial result (when ok);
                            ///< never cached — a refresh recomputes in full
  std::string error;        ///< set when !ok
  std::string result;       ///< serialized result document (when ok)
  std::uint64_t key = 0;    ///< content address of the query
  std::uint64_t retry_after_ms = 0;  ///< backoff hint (when overloaded)
  double micros = 0.0;      ///< wall time inside execute()
  std::uint64_t trace_id = 0;  ///< scope trace id echoed back (0 = untraced)
};

class QueryExecutor {
 public:
  struct Options {
    std::size_t threads = 0;        ///< worker threads; 0 = hardware
    std::size_t max_queue = 64;     ///< max queries queued or running
    std::uint64_t default_deadline_ms = 30000;
    std::size_t cache_capacity = 4096;
    std::string cache_file;         ///< empty = memory-only cache
    bool load_cache = true;         ///< load cache_file on construction
    /// Write-ahead journal: fsync every put to `<cache_file>.wal` so a
    /// SIGKILL'd process rejoins warm (see ResultCache).  Needs cache_file.
    bool cache_journal = false;
    /// Flights older than this are cancelled by the watchdog (waiters get
    /// an error, the admission slot is freed).  0 disables the watchdog.
    std::uint64_t hang_timeout_ms = 0;
    /// Backoff hint attached to shed ("overloaded") responses.  Used as-is
    /// until the executor has completed at least one compute; after that the
    /// hint scales with backlog depth x observed drain rate (clamped),
    /// so a deep backlog tells clients to wait longer than a shallow one.
    std::uint64_t retry_after_hint_ms = 50;
    /// When a forced recompute fails, serve the previous cached value
    /// (marked stale) instead of the error.
    bool serve_stale_on_error = true;
    /// Fault injector for chaos testing (worker stalls + cache disk
    /// faults).  Not owned; must outlive the executor.  nullptr disables.
    FaultInjector* faults = nullptr;
    /// Compute function; defaults to plan_query with the executor's own
    /// pool passed down (estimate trials then run concurrently).  Tests
    /// inject counters and slow functions here.  The token is the flight's:
    /// armed with the leader's deadline, fired by the watchdog / the last
    /// departing waiter / cancel_trace / cancel_all.  Compute that honors
    /// it either throws CancelledError or returns a document with
    /// "degraded": true (see plan_query); compute that ignores it merely
    /// keeps the pre-cancellation behavior.
    std::function<Json(const Query&, const CancelToken&)> compute;
    /// Overload guard (netemu::guard): cost-model admission, per-client
    /// token buckets + fair-share caps, DRR dispatch, AIMD limit, brownout.
    /// Disabled by default — embedded executors keep the plain max_queue
    /// counter.  When enabled with cost_budget == 0, the budget derives as
    /// 8 x max_queue cost units.
    guard::Options guard;
  };

  QueryExecutor();  // all-default Options
  explicit QueryExecutor(Options options);
  ~QueryExecutor();

  QueryExecutor(const QueryExecutor&) = delete;
  QueryExecutor& operator=(const QueryExecutor&) = delete;

  /// Blocking: returns when the answer is available, the deadline passes,
  /// the watchdog cancels the flight, or the request is shed.
  Response execute(const Query& q);

  /// Non-blocking fast path: answer `q` only if it is a plain cache hit
  /// (never for refresh=true).  A hit is accounted exactly as execute()
  /// would account it (request + cache-hit counters, spans, latency
  /// histogram); a miss touches no counters and returns nullopt — the
  /// caller then routes the query through execute() on a thread that may
  /// block.  Safe to call concurrently from event-loop shards.
  std::optional<Response> try_cached(const Query& q);

  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t computed = 0;        ///< plan_query invocations
    std::uint64_t dedup_joins = 0;     ///< requests that joined a flight
    std::uint64_t rejected = 0;        ///< shed by admission control
    std::uint64_t deadline_exceeded = 0;
    std::uint64_t errors = 0;          ///< compute failures
    std::uint64_t hung = 0;            ///< flights cancelled by the watchdog
    std::uint64_t stale_served = 0;    ///< recompute failures served stale
    std::uint64_t cancelled = 0;       ///< computes stopped by cooperative
                                       ///< cancellation (degraded partials
                                       ///< included)
    std::uint64_t browned_out = 0;     ///< estimates served with a reduced
                                       ///< sweep by the guard's brownout
  };
  Stats stats() const;

  /// Fire the CancelSource of the flight carrying this trace id (the
  /// {"op":"cancel"} verb; hedge losers are cancelled this way).  Declined
  /// when the flight has more than one waiter — a dedup-joined flight is
  /// serving other clients.  Returns whether a cancellation was requested.
  bool cancel_trace(std::uint64_t trace_id);

  /// Fire every registered flight's CancelSource (drain).  Returns how many
  /// flights were signalled.
  std::size_t cancel_all();

  /// Enter drain mode: new queries that would start a flight are shed with
  /// an "overloaded" draining error (so fleet front doors fail over), cache
  /// hits and joins of already-running flights still serve.  Irreversible.
  void begin_drain();
  bool draining() const;

  /// Lifetime compute-time distribution (cache hits and shed requests
  /// excluded), read from this executor's scope::Histogram — bounded
  /// relative error (~4.5%), no sample window, no lock on the record path.
  struct ComputeTimes {
    double p50_us = 0.0;
    double p95_us = 0.0;
    double p99_us = 0.0;
    std::uint64_t samples = 0;  ///< lifetime computed-query count
  };
  ComputeTimes compute_times() const;

  /// Queries queued or running (the admission counter).
  std::size_t pending() const;
  /// Flights currently registered (single-flight map size).
  std::size_t active_flights() const;
  /// Seconds since construction (for the health report).
  double uptime_seconds() const;

  const Options& options() const { return options_; }

  /// The overload guard, or nullptr when Options::guard.enabled is false.
  const guard::Guard* overload_guard() const { return guard_.get(); }
  /// Guard pressure (pending admitted cost / effective limit); 0 without a
  /// guard.  >= 1.0 means the admission gate is effectively closed.
  double pressure() const;

  ResultCache& cache() { return cache_; }
  ThreadPool& pool() { return pool_; }
  /// Persist the cache to its file (no-op without one).
  bool save_cache() { return cache_.save(); }

 private:
  using Clock = std::chrono::steady_clock;

  struct Flight {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    Response response;
    Clock::time_point started;  // immutable after creation
    std::uint64_t key = 0;          // immutable after creation
    std::uint64_t trace_id = 0;     // leader's trace id (immutable)
    std::uint64_t cost = 0;         // admission cost units (immutable)
    std::string client;             // leader's client identity (immutable)
    bool abandoned = false;     // guarded by the executor mutex_
    // Deadline armed at creation (before the compute task exists); fired by
    // the watchdog, the last departing waiter, cancel_trace, or cancel_all.
    CancelSource cancel;
    std::size_t waiters = 0;    // guarded by the executor mutex_
  };

  void watchdog_loop();
  /// Answer a queued-but-never-started flight (drain shed, pool refusal):
  /// unregister it, un-charge the guard, and publish an overloaded/draining
  /// response to its waiters.
  void shed_unstarted_flight(const std::shared_ptr<Flight>& flight,
                             std::uint64_t key, std::uint64_t tid);

  Options options_;
  ResultCache cache_;
  const Clock::time_point started_ = Clock::now();

  void record_compute_micros(double micros);

  mutable std::mutex mutex_;  // guards flights_, pending_, stats_,
                              // draining_, drain_rate_
  std::map<std::uint64_t, std::shared_ptr<Flight>> flights_;
  std::size_t pending_ = 0;
  std::uint64_t pending_cost_units_ = 0;  // sum of cost over leader flights
  Stats stats_;
  bool draining_ = false;
  guard::DrainRate drain_rate_;  // feeds dynamic retry_after_ms hints
  std::unique_ptr<guard::Guard> guard_;  // null when Options::guard disabled
  scope::Histogram compute_us_;  // lock-free; written by workers, read by
                                 // compute_times() without mutex_

  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;  // guarded by mutex_
  std::thread watchdog_;

  // Declared last: destroyed (drained) first, while cache_ and flights_ are
  // still alive for in-flight tasks to publish into.  sched_ sits between
  // execute() and pool_ when the guard is enabled; its dispatch callbacks
  // run on pool threads, so it is declared before pool_ (outlives the
  // drain) and its queue is shed in the destructor before pool shutdown.
  std::unique_ptr<guard::FairScheduler> sched_;
  ThreadPool pool_;
};

}  // namespace netemu
