#pragma once
// The request executor: the concurrency heart of the service.
//
//   execute(query)
//     ├─ cache hit  ──────────────────────────────► O(1) answer
//     ├─ identical query already in flight ───────► join it (single-flight)
//     ├─ admission queue full ────────────────────► rejected (backpressure)
//     └─ otherwise: run plan_query() on the pool, publish to every waiter,
//        store the result under its content address.
//
// Single-flight matters because the expensive queries are the memoizable
// ones: a thundering herd of identical `estimate` requests triggers exactly
// one packet simulation; the rest block on the flight and share its result.
// Waiters honor a per-query deadline — a timed-out waiter gets an error
// response, but the computation still completes and still fills the cache.

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "netemu/service/query.hpp"
#include "netemu/service/result_cache.hpp"
#include "netemu/util/json.hpp"
#include "netemu/util/thread_pool.hpp"

namespace netemu {

struct Response {
  bool ok = false;
  bool cache_hit = false;
  std::string error;        ///< set when !ok
  std::string result;       ///< serialized result document (when ok)
  std::uint64_t key = 0;    ///< content address of the query
  double micros = 0.0;      ///< wall time inside execute()
};

class QueryExecutor {
 public:
  struct Options {
    std::size_t threads = 0;        ///< worker threads; 0 = hardware
    std::size_t max_queue = 64;     ///< max queries queued or running
    std::uint64_t default_deadline_ms = 30000;
    std::size_t cache_capacity = 4096;
    std::string cache_file;         ///< empty = memory-only cache
    bool load_cache = true;         ///< load cache_file on construction
    /// Compute function; defaults to plan_query.  Tests inject counters and
    /// slow functions here.
    std::function<Json(const Query&)> compute;
  };

  QueryExecutor();  // all-default Options
  explicit QueryExecutor(Options options);
  ~QueryExecutor();

  QueryExecutor(const QueryExecutor&) = delete;
  QueryExecutor& operator=(const QueryExecutor&) = delete;

  /// Blocking: returns when the answer is available, the deadline passes,
  /// or the request is rejected.
  Response execute(const Query& q);

  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t computed = 0;        ///< plan_query invocations
    std::uint64_t dedup_joins = 0;     ///< requests that joined a flight
    std::uint64_t rejected = 0;        ///< admission-queue overflow
    std::uint64_t deadline_exceeded = 0;
    std::uint64_t errors = 0;          ///< compute failures
  };
  Stats stats() const;

  ResultCache& cache() { return cache_; }
  /// Persist the cache to its file (no-op without one).
  bool save_cache() { return cache_.save(); }

 private:
  struct Flight {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    Response response;
  };

  Options options_;
  ResultCache cache_;

  mutable std::mutex mutex_;  // guards flights_, pending_, stats_
  std::map<std::uint64_t, std::shared_ptr<Flight>> flights_;
  std::size_t pending_ = 0;
  Stats stats_;

  // Declared last: destroyed (drained) first, while cache_ and flights_ are
  // still alive for in-flight tasks to publish into.
  ThreadPool pool_;
};

}  // namespace netemu
