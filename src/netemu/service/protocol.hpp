#pragma once
// Wire protocol: line-delimited JSON over a stream socket.
//
//   request-line  = JSON object, one line, '\n' terminated
//   response-line = JSON object, one line, '\n' terminated
//
// Request ops: the four query kinds ("bandwidth", "estimate", "max_host",
// "bounds" — see query.hpp for their fields) plus three control ops:
//   {"op":"ping"}      -> {"ok":true,"result":{"pong":true}}
//   {"op":"stats"}     -> executor + cache counters
//   {"op":"shutdown"}  -> ack, then the daemon stops accepting
//
// Every response carries "ok"; successes carry "result", "cache_hit" and
// "micros"; failures carry "error".  One connection may issue any number of
// requests; responses come back in request order.

#include <cstdint>
#include <string>

#include "netemu/service/executor.hpp"

namespace netemu {

/// Handle one request line (without trailing newline) against an executor.
/// Returns the response line (without trailing newline).  If the request is
/// a shutdown op and `shutdown_requested` is non-null, sets it.
std::string handle_request_line(const std::string& line, QueryExecutor& exec,
                                bool* shutdown_requested = nullptr);

/// Serialize a Response into the response document text.  `result` is
/// spliced in verbatim (it is already JSON), so the cached fast path never
/// reparses.
std::string response_to_line(const Response& r);

/// Buffered line IO over a file descriptor (socket or pipe).
class LineChannel {
 public:
  explicit LineChannel(int fd) : fd_(fd) {}

  /// Read up to and including the next '\n'; returns the line without it.
  /// False on EOF or error.  Lines over max_line bytes abort the read.
  bool read_line(std::string& line, std::size_t max_line = 1 << 20);

  /// Write line + '\n', retrying on short writes.  False on error.
  bool write_line(const std::string& line);

  int fd() const { return fd_; }

 private:
  int fd_;
  std::string buffer_;
  std::size_t buffer_pos_ = 0;
};

}  // namespace netemu
