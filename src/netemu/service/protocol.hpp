#pragma once
// Wire protocol: line-delimited JSON over a stream socket.
//
//   request-line  = JSON object, one line, '\n' terminated
//   response-line = JSON object, one line, '\n' terminated
//
// Request ops: the four query kinds ("bandwidth", "estimate", "max_host",
// "bounds" — see query.hpp for their fields) plus the control ops:
//   {"op":"ping"}      -> {"ok":true,"result":{"pong":true}}
//   {"op":"stats"}     -> executor + cache counters + scope registry
//                         snapshot; with "format":"prometheus" the result is
//                         {"format":"prometheus","text":"<exposition>"}
//   {"op":"health"}    -> pool / cache / shed / flight status report
//   {"op":"trace","id":"<hex64>"} -> span set recorded for that trace id
//                         (see scope/trace.hpp for the span catalog)
//   {"op":"events"}    -> recent flight-recorder events (postmortem ring)
//   {"op":"cancel","trace":"<hex64>"} -> fire the CancelSource of the flight
//                         carrying that trace id (hedge losers; impatient
//                         clients).  Declined — {"cancelled":false} — when no
//                         such flight exists or other waiters share it.
//   {"op":"drain"}     -> enter drain mode: the executor sheds new flights
//                         ("overloaded: draining"), running work finishes or
//                         is cancelled by the daemon's drain budget, then the
//                         daemon snapshots its cache and exits cleanly
//                         (docs/LIFECYCLE.md; SIGTERM does the same)
//   {"op":"shutdown"}  -> ack, then the daemon stops accepting
//
// Every response carries "ok"; successes carry "result", "cache_hit" and
// "micros" (plus "stale":true when served from cache after a recompute
// failure); failures carry "error" (plus "overloaded":true and
// "retry_after_ms" when shed by admission control).  Query requests may
// carry "trace":"<hex64>" — a scope trace id minted by the client (or by
// netemu_fleet on their behalf); it is echoed back on the response and spans
// recorded under it are retrievable via the trace op.  One connection may
// issue any number of requests; responses come back in request order.  A
// request line over the size cap gets a "protocol_error" response and the
// connection stays usable (the overlong line is discarded).

#include <cstdint>
#include <optional>
#include <string>

#include "netemu/service/executor.hpp"

namespace netemu {

class FaultInjector;

/// Reactor-inline fast path: answer `line` only when it can be served
/// without ever blocking — ping, malformed requests, and plain cache hits
/// (via QueryExecutor::try_cached).  Everything else — control ops with
/// side effects, cache misses, refresh queries — returns nullopt so the
/// caller offloads the line to handle_request_line on a thread that may
/// block.  For lines this function does answer, the response is
/// byte-compatible with handle_request_line's.
std::optional<std::string> try_handle_request_line_fast(
    const std::string& line, QueryExecutor& exec);

/// Handle one request line (without trailing newline) against an executor.
/// Returns the response line (without trailing newline).  If the request is
/// a shutdown op and `shutdown_requested` is non-null, sets it.  A drain op
/// puts the executor into drain mode immediately and sets `drain_requested`
/// (when non-null) so the daemon can run its bounded drain sequence.
/// `default_client` is stamped onto query ops that carry no "client" field
/// (servers pass the connection's peer address), so the guard's per-client
/// fairness sees a stable identity even for clients that never set one.
std::string handle_request_line(const std::string& line, QueryExecutor& exec,
                                bool* shutdown_requested = nullptr,
                                bool* drain_requested = nullptr,
                                const std::string& default_client = {});

/// Serialize a Response into the response document text.  `result` is
/// spliced in verbatim (it is already JSON), so the cached fast path never
/// reparses.
std::string response_to_line(const Response& r);

/// The response the server writes for an overlong request line.
std::string protocol_error_line(const std::string& message);

/// Buffered line IO over a file descriptor (socket or pipe).
class LineChannel {
 public:
  enum class Status {
    kOk,       ///< a complete line was read
    kEof,      ///< peer closed cleanly (0-byte read at a line boundary)
    kError,    ///< transport error (or injected connection drop)
    kTooLong,  ///< line exceeded max_line; discarded up to its newline
  };

  explicit LineChannel(int fd) : fd_(fd) {}

  /// Read up to and including the next '\n'; returns the line without it.
  /// Loops on EINTR and partial reads.  On kTooLong the rest of the
  /// offending line has been discarded, so the stream stays in sync and
  /// the caller may answer with protocol_error_line() and keep reading.
  Status read_line_status(std::string& line, std::size_t max_line = 1 << 20);

  /// Convenience wrapper: true only on Status::kOk.
  bool read_line(std::string& line, std::size_t max_line = 1 << 20) {
    return read_line_status(line, max_line) == Status::kOk;
  }

  /// Write line + '\n', looping on EINTR and short writes.  False on error.
  bool write_line(const std::string& line);

  /// Route this channel's reads/writes through a fault injector (chaos
  /// testing).  Not owned; must outlive the channel.  nullptr disables.
  void set_fault_injector(FaultInjector* injector) { faults_ = injector; }

  int fd() const { return fd_; }

 private:
  int fd_;
  FaultInjector* faults_ = nullptr;
  std::string buffer_;
  std::size_t buffer_pos_ = 0;
};

}  // namespace netemu
