#include "netemu/service/protocol.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstdio>

#include "netemu/util/hash.hpp"

namespace netemu {

namespace {

std::string error_line(const std::string& message) {
  Json doc = Json::object();
  doc["ok"] = false;
  doc["error"] = message;
  return doc.dump();
}

std::string stats_line(QueryExecutor& exec) {
  const QueryExecutor::Stats s = exec.stats();
  Json result = Json::object();
  result["requests"] = s.requests;
  result["cache_hits"] = s.cache_hits;
  result["computed"] = s.computed;
  result["dedup_joins"] = s.dedup_joins;
  result["rejected"] = s.rejected;
  result["deadline_exceeded"] = s.deadline_exceeded;
  result["errors"] = s.errors;
  Json cache = Json::object();
  cache["size"] = exec.cache().size();
  cache["capacity"] = exec.cache().capacity();
  cache["hits"] = exec.cache().hits();
  cache["misses"] = exec.cache().misses();
  result["cache"] = std::move(cache);
  Json doc = Json::object();
  doc["ok"] = true;
  doc["result"] = std::move(result);
  return doc.dump();
}

}  // namespace

std::string response_to_line(const Response& r) {
  if (!r.ok) {
    Json doc = Json::object();
    doc["ok"] = false;
    doc["error"] = r.error;
    doc["key"] = hex64(r.key);
    doc["micros"] = r.micros;
    return doc.dump();
  }
  // Hand-assembled so the (hot) cached path splices the stored result text
  // instead of reparsing it.  r.result is a complete JSON document.
  std::string line = "{\"cache_hit\":";
  line += r.cache_hit ? "true" : "false";
  line += ",\"key\":\"";
  line += hex64(r.key);
  line += "\",\"micros\":";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", r.micros);
  line += buf;
  line += ",\"ok\":true,\"result\":";
  line += r.result;
  line += "}";
  return line;
}

std::string handle_request_line(const std::string& line, QueryExecutor& exec,
                                bool* shutdown_requested) {
  std::string error;
  const Json request = Json::parse(line, &error);
  if (!error.empty()) return error_line("bad JSON: " + error);
  if (!request.is_object()) return error_line("request must be an object");

  const std::string& op = request["op"].as_string();
  if (op == "ping") {
    Json doc = Json::object();
    doc["ok"] = true;
    Json result = Json::object();
    result["pong"] = true;
    doc["result"] = std::move(result);
    return doc.dump();
  }
  if (op == "stats") return stats_line(exec);
  if (op == "shutdown") {
    if (shutdown_requested) *shutdown_requested = true;
    Json doc = Json::object();
    doc["ok"] = true;
    Json result = Json::object();
    result["stopping"] = shutdown_requested != nullptr;
    doc["result"] = std::move(result);
    return doc.dump();
  }

  const auto query = query_from_json(request, &error);
  if (!query) return error_line(error);
  return response_to_line(exec.execute(*query));
}

bool LineChannel::read_line(std::string& line, std::size_t max_line) {
  line.clear();
  for (;;) {
    while (buffer_pos_ < buffer_.size()) {
      const char c = buffer_[buffer_pos_++];
      if (c == '\n') return true;
      line += c;
      if (line.size() > max_line) return false;
    }
    char chunk[4096];
    ssize_t got;
    do {
      got = ::read(fd_, chunk, sizeof(chunk));
    } while (got < 0 && errno == EINTR);
    if (got <= 0) return false;
    buffer_.assign(chunk, static_cast<std::size_t>(got));
    buffer_pos_ = 0;
  }
}

bool LineChannel::write_line(const std::string& line) {
  std::string framed = line;
  framed += '\n';
  std::size_t sent = 0;
  while (sent < framed.size()) {
    ssize_t wrote;
    do {
      wrote = ::write(fd_, framed.data() + sent, framed.size() - sent);
    } while (wrote < 0 && errno == EINTR);
    if (wrote <= 0) return false;
    sent += static_cast<std::size_t>(wrote);
  }
  return true;
}

}  // namespace netemu
