#include "netemu/service/protocol.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>

#include "netemu/faultline/injector.hpp"
#include "netemu/routing/packet_sim.hpp"
#include "netemu/scope/exposition.hpp"
#include "netemu/scope/flight_recorder.hpp"
#include "netemu/scope/trace.hpp"
#include "netemu/util/hash.hpp"

namespace netemu {

namespace {

std::string error_line(const std::string& message) {
  Json doc = Json::object();
  doc["ok"] = false;
  doc["error"] = message;
  return doc.dump();
}

std::string stats_line(QueryExecutor& exec, const Json& request) {
  // {"op":"stats","format":"prometheus"} returns the text exposition as a
  // single JSON string (the line protocol cannot carry raw multi-line text);
  // a scrape proxy unwraps "text" and forwards it verbatim.
  if (request["format"].as_string() == "prometheus") {
    Json result = Json::object();
    result["format"] = "prometheus";
    result["text"] = scope::registry_to_prometheus(scope::Registry::global());
    Json doc = Json::object();
    doc["ok"] = true;
    doc["result"] = std::move(result);
    return doc.dump();
  }
  const QueryExecutor::Stats s = exec.stats();
  Json result = Json::object();
  result["requests"] = s.requests;
  result["cache_hits"] = s.cache_hits;
  result["computed"] = s.computed;
  result["dedup_joins"] = s.dedup_joins;
  result["rejected"] = s.rejected;
  result["deadline_exceeded"] = s.deadline_exceeded;
  result["errors"] = s.errors;
  result["hung"] = s.hung;
  result["stale_served"] = s.stale_served;
  result["cancelled"] = s.cancelled;
  result["browned_out"] = s.browned_out;
  Json cache = Json::object();
  cache["size"] = exec.cache().size();
  cache["capacity"] = exec.cache().capacity();
  cache["hits"] = exec.cache().hits();
  cache["misses"] = exec.cache().misses();
  result["cache"] = std::move(cache);
  result["uptime_s"] = exec.uptime_seconds();
  // Full scope registry snapshot: sim volume counters and the compute /
  // execute latency histograms netemu_top renders tails from.
  result["scope"] = scope::registry_to_json(scope::Registry::global());
  Json doc = Json::object();
  doc["ok"] = true;
  doc["result"] = std::move(result);
  return doc.dump();
}

std::string trace_line(const Json& request) {
  const Json& id = request["id"];
  if (!id.is_string()) return error_line("trace: missing string field 'id'");
  const std::uint64_t trace_id = scope::parse_trace_id(id.as_string());
  if (trace_id == 0) {
    return error_line("trace: 'id' must be a nonzero hex64 id");
  }
  Json doc = Json::object();
  doc["ok"] = true;
  doc["result"] = scope::trace_to_json(trace_id, scope::TraceStore::global());
  return doc.dump();
}

std::string events_line() {
  Json result = Json::object();
  result["total"] = scope::FlightRecorder::global().total();
  result["events"] = scope::flight_recorder_to_json();
  Json doc = Json::object();
  doc["ok"] = true;
  doc["result"] = std::move(result);
  return doc.dump();
}

std::string health_line(QueryExecutor& exec) {
  const QueryExecutor::Stats s = exec.stats();
  const std::size_t pending = exec.pending();
  const std::size_t max_queue = exec.options().max_queue;

  Json pool = Json::object();
  pool["threads"] = exec.pool().size();
  pool["pending"] = pending;
  pool["max_queue"] = max_queue;

  Json cache = Json::object();
  cache["size"] = exec.cache().size();
  cache["capacity"] = exec.cache().capacity();
  cache["hits"] = exec.cache().hits();
  cache["misses"] = exec.cache().misses();
  cache["corrupt_entries"] = exec.cache().corrupt_entries();
  cache["save_failures"] = exec.cache().save_failures();
  cache["persistent"] = !exec.cache().path().empty();

  Json shed = Json::object();
  shed["rejected"] = s.rejected;
  shed["retry_after_ms"] = exec.options().retry_after_hint_ms;

  Json flights = Json::object();
  flights["active"] = exec.active_flights();
  flights["hung"] = s.hung;
  flights["stale_served"] = s.stale_served;
  flights["cancelled"] = s.cancelled;

  // Per-query compute-time distribution (scope histogram over all computes)
  // plus cumulative simulation volume, so perf regressions show up in the
  // running daemon without external tooling.  Volume counters are paired
  // with the process epoch: a reader that sees epoch_unix_s change knows the
  // counters restarted from zero (reset-safe monotonicity).
  const QueryExecutor::ComputeTimes times = exec.compute_times();
  Json compute = Json::object();
  compute["p50_us"] = times.p50_us;
  compute["p95_us"] = times.p95_us;
  compute["p99_us"] = times.p99_us;
  compute["samples"] = times.samples;
  compute["sim_ticks_total"] = simulated_ticks_total();
  compute["sim_batches_total"] = simulated_batches_total();
  compute["sim_messages_total"] = simulated_messages_total();
  compute["epoch_unix_s"] = scope::process_epoch_unix_s();

  // Overload pressure for fleet routing: with a guard, pending admitted
  // cost over the effective limit; without one, queue occupancy.  >= 1.0
  // means the admission gate is effectively closed.
  const double pressure =
      exec.overload_guard()
          ? exec.pressure()
          : (max_queue > 0 ? static_cast<double>(pending) /
                                 static_cast<double>(max_queue)
                           : 0.0);

  Json result = Json::object();
  // Draining outranks overloaded: a drained backend is going away, and a
  // fleet probe that sees it should route new work elsewhere.
  result["status"] = exec.draining()                          ? "draining"
                     : (pending >= max_queue || pressure >= 1.0)
                         ? "overloaded"
                         : "ok";
  result["pressure"] = pressure;
  if (const guard::Guard* g = exec.overload_guard()) {
    result["guard"] = g->to_json();
  } else {
    Json off = Json::object();
    off["enabled"] = false;
    result["guard"] = std::move(off);
  }
  result["uptime_s"] = exec.uptime_seconds();
  result["pool"] = std::move(pool);
  result["cache"] = std::move(cache);
  result["shed"] = std::move(shed);
  result["flights"] = std::move(flights);
  result["compute"] = std::move(compute);

  Json doc = Json::object();
  doc["ok"] = true;
  doc["result"] = std::move(result);
  return doc.dump();
}

}  // namespace

std::string protocol_error_line(const std::string& message) {
  return error_line("protocol_error: " + message);
}

std::string response_to_line(const Response& r) {
  if (!r.ok) {
    Json doc = Json::object();
    doc["ok"] = false;
    doc["error"] = r.error;
    doc["key"] = hex64(r.key);
    doc["micros"] = r.micros;
    if (r.overloaded) {
      doc["overloaded"] = true;
      // A zero hint (draining sheds) is omitted: there is no useful wait —
      // the caller should fail over instead of retrying here.
      if (r.retry_after_ms != 0) doc["retry_after_ms"] = r.retry_after_ms;
    }
    if (r.trace_id != 0) doc["trace"] = hex64(r.trace_id);
    return doc.dump();
  }
  // Hand-assembled so the (hot) cached path splices the stored result text
  // instead of reparsing it.  r.result is a complete JSON document.
  std::string line = "{\"cache_hit\":";
  line += r.cache_hit ? "true" : "false";
  line += ",\"key\":\"";
  line += hex64(r.key);
  line += "\",\"micros\":";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", r.micros);
  line += buf;
  line += ",\"ok\":true,\"result\":";
  line += r.result;
  if (r.stale) line += ",\"stale\":true";
  // Top-level mirror of the result document's "degraded" marker so clients
  // can notice a partial answer without parsing the result body.
  if (r.degraded) line += ",\"degraded\":true";
  if (r.trace_id != 0) {
    line += ",\"trace\":\"";
    line += hex64(r.trace_id);
    line += "\"";
  }
  line += "}";
  return line;
}

namespace {

std::string ping_line() {
  Json doc = Json::object();
  doc["ok"] = true;
  Json result = Json::object();
  result["pong"] = true;
  doc["result"] = std::move(result);
  return doc.dump();
}

}  // namespace

std::optional<std::string> try_handle_request_line_fast(
    const std::string& line, QueryExecutor& exec) {
  std::string error;
  const Json request = Json::parse(line, &error);
  if (!error.empty()) return error_line("bad JSON: " + error);
  if (!request.is_object()) return error_line("request must be an object");

  const std::string& op = request["op"].as_string();
  if (op == "ping") return ping_line();
  if (op == "stats" || op == "health" || op == "trace" || op == "events" ||
      op == "cancel" || op == "drain" || op == "shutdown") {
    // Cheap but side-effecting or lock-taking: keep the reactor pure and
    // let the offload path run them via handle_request_line.
    return std::nullopt;
  }

  const auto query = query_from_json(request, &error);
  if (!query) return error_line(error);  // deterministic, non-blocking
  if (auto cached = exec.try_cached(*query)) {
    return response_to_line(*cached);
  }
  return std::nullopt;
}

std::string handle_request_line(const std::string& line, QueryExecutor& exec,
                                bool* shutdown_requested,
                                bool* drain_requested,
                                const std::string& default_client) {
  std::string error;
  const Json request = Json::parse(line, &error);
  if (!error.empty()) return error_line("bad JSON: " + error);
  if (!request.is_object()) return error_line("request must be an object");

  const std::string& op = request["op"].as_string();
  if (op == "ping") return ping_line();
  if (op == "stats") return stats_line(exec, request);
  if (op == "health") return health_line(exec);
  if (op == "trace") return trace_line(request);
  if (op == "events") return events_line();
  if (op == "cancel") {
    const Json& id = request["trace"];
    if (!id.is_string()) {
      return error_line("cancel: missing string field 'trace'");
    }
    const std::uint64_t trace_id = scope::parse_trace_id(id.as_string());
    if (trace_id == 0) {
      return error_line("cancel: 'trace' must be a nonzero hex64 id");
    }
    Json doc = Json::object();
    doc["ok"] = true;
    Json result = Json::object();
    result["cancelled"] = exec.cancel_trace(trace_id);
    doc["result"] = std::move(result);
    return doc.dump();
  }
  if (op == "drain") {
    // Shed new flights right away; the daemon (when wired up via
    // drain_requested) then bounds the remaining in-flight work, snapshots
    // the cache, and exits.
    exec.begin_drain();
    if (drain_requested) *drain_requested = true;
    Json doc = Json::object();
    doc["ok"] = true;
    Json result = Json::object();
    result["draining"] = true;
    doc["result"] = std::move(result);
    return doc.dump();
  }
  if (op == "shutdown") {
    if (shutdown_requested) *shutdown_requested = true;
    Json doc = Json::object();
    doc["ok"] = true;
    Json result = Json::object();
    result["stopping"] = shutdown_requested != nullptr;
    doc["result"] = std::move(result);
    return doc.dump();
  }

  auto query = query_from_json(request, &error);
  if (!query) return error_line(error);
  if (query->client.empty() && !default_client.empty()) {
    // Per-connection identity for the guard's fairness; truncated to the
    // wire field's own cap so a stamped identity obeys the same rules.
    query->client = default_client.substr(0, 64);
  }
  return response_to_line(exec.execute(*query));
}

LineChannel::Status LineChannel::read_line_status(std::string& line,
                                                  std::size_t max_line) {
  line.clear();
  bool overlong = false;
  for (;;) {
    while (buffer_pos_ < buffer_.size()) {
      const char c = buffer_[buffer_pos_++];
      if (c == '\n') return overlong ? Status::kTooLong : Status::kOk;
      if (overlong) continue;  // discard the rest of the oversized line
      line += c;
      if (line.size() > max_line) {
        // Cap memory but keep consuming to the newline so the stream
        // resyncs and the caller can answer with a protocol error.
        line.clear();
        overlong = true;
      }
    }
    char chunk[4096];
    std::size_t want = sizeof(chunk);
    if (faults_ && faults_->on_io(want) == FaultInjector::IoFault::kDrop) {
      return Status::kError;
    }
    ssize_t got;
    do {
      got = ::read(fd_, chunk, want);
    } while (got < 0 && errno == EINTR);
    if (got == 0) {
      // Clean EOF only at a line boundary; mid-line it is a torn request.
      return line.empty() && !overlong ? Status::kEof : Status::kError;
    }
    if (got < 0) return Status::kError;
    buffer_.assign(chunk, static_cast<std::size_t>(got));
    buffer_pos_ = 0;
  }
}

bool LineChannel::write_line(const std::string& line) {
  std::string framed = line;
  framed += '\n';
  std::size_t sent = 0;
  while (sent < framed.size()) {
    std::size_t want = framed.size() - sent;
    if (faults_ && faults_->on_io(want) == FaultInjector::IoFault::kDrop) {
      return false;
    }
    // MSG_NOSIGNAL: a peer that reset the connection must surface as an
    // EPIPE error (retryable), not a process-killing SIGPIPE.  Non-socket
    // fds (pipes in tests) fall back to write().
    ssize_t wrote;
    do {
      wrote = ::send(fd_, framed.data() + sent, want, MSG_NOSIGNAL);
      if (wrote < 0 && errno == ENOTSOCK) {
        wrote = ::write(fd_, framed.data() + sent, want);
      }
    } while (wrote < 0 && errno == EINTR);
    if (wrote <= 0) return false;
    sent += static_cast<std::size_t>(wrote);
  }
  return true;
}

}  // namespace netemu
