#pragma once
// The planner daemon: a localhost TCP listener speaking the line protocol.
//
// The listener is decoupled from what answers the lines: a Server runs any
// LineHandler — the classic one wraps a QueryExecutor (handle_request_line),
// the fleet front door wraps a FleetRouter that proxies to real backends.
//
// Two I/O planes share that contract (docs/SERVICE.md "I/O plane"):
//
//  * The default sharded epoll event loop: one acceptor distributes
//    non-blocking connections round-robin across `io_threads` reactor
//    shards; each shard owns its fds with edge-triggered epoll, frames
//    request lines incrementally from per-connection buffers, serves
//    `fast_handler` answers (ping, cache hits) inline on the reactor, and
//    offloads everything else to a bounded handler pool whose completions
//    are posted back to the owning shard through an eventfd.  Responses are
//    coalesced into a per-connection output buffer bounded by
//    `max_output_bytes` — a consumer that falls further behind than that is
//    disconnected instead of growing the heap.  Thousands of mostly-idle
//    connections cost two buffers each, not a kernel thread each.
//
//  * The legacy blocking plane (`blocking_plane = true`): one thread per
//    connection.  Kept as the A/B baseline for bench/connection_storm and
//    as a fallback.
//
// Lifecycle is identical on both planes: start() binds and spawns,
// begin_drain() closes only the listener (live connections still get their
// responses), stop() shuts everything down and joins, and a handler that
// sets *shutdown_requested stops the server after its response flushes.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "netemu/service/executor.hpp"

namespace netemu {

class FaultInjector;

namespace detail {

/// One I/O plane implementation behind a Server.  Internal; the Server owns
/// the lifecycle state (stop flag, wait()) and delegates the sockets.
class ServerPlane {
 public:
  virtual ~ServerPlane() = default;
  /// Bind + listen + spawn threads.  On failure: false, *error set (when
  /// non-null), *errno_out = failing syscall's errno.
  virtual bool start(std::string* error, int* errno_out) = 0;
  virtual std::uint16_t port() const = 0;
  /// Close the listener only; live connections keep serving.  Idempotent.
  virtual void begin_drain() = 0;
  /// Full stop: close everything, join every thread.  Idempotent.
  virtual void stop() = 0;
};

}  // namespace detail

class Server {
 public:
  /// Answer one request line (no trailing newline) with one response line;
  /// set *shutdown_requested to stop the server after the response.
  using LineHandler =
      std::function<std::string(const std::string& line,
                                bool* shutdown_requested)>;

  /// LineHandler plus the connection's peer tag ("ip:port" from
  /// getpeername, "conn-<fd>" when that fails) — a stable per-connection
  /// identity handlers stamp onto queries that carry no "client" field, so
  /// guard fairness can tell callers apart without client cooperation.
  using TaggedLineHandler =
      std::function<std::string(const std::string& line,
                                const std::string& peer,
                                bool* shutdown_requested)>;

  /// Optional non-blocking fast path run inline on a reactor shard: return
  /// the response line to answer immediately, nullopt to fall through to
  /// the LineHandler on the offload pool.  MUST NOT block (no locks held
  /// across compute, no I/O) — a stalled shard stalls every connection it
  /// owns.  Ignored by the blocking plane (the LineHandler thread is
  /// already allowed to block there).
  using FastHandler =
      std::function<std::optional<std::string>(const std::string& line)>;

  struct Options {
    std::uint16_t port = 7464;  ///< 0 = ephemeral (see port() after start)
    int backlog = 256;
    std::size_t max_line = 1 << 20;  ///< request line cap (protocol_error)
    /// Fault injector applied to every connection's socket I/O (chaos
    /// testing).  Not owned; must outlive the server.  nullptr disables.
    FaultInjector* faults = nullptr;
    /// Reactor shards for the epoll plane; 0 = hardware threads.
    std::size_t io_threads = 0;
    /// Threads running the LineHandler for requests the fast path did not
    /// answer; 0 = max(4, hardware threads).  The handler underneath
    /// (executor admission queue, fleet backends) bounds real concurrency.
    std::size_t offload_threads = 0;
    /// Per-connection pending-output cap; a consumer further behind than
    /// this is disconnected (backpressure) instead of buffering unboundedly.
    std::size_t max_output_bytes = 8u << 20;
    /// Reactor-inline fast path (see FastHandler).
    FastHandler fast_handler;
    /// Use the legacy thread-per-connection plane instead of the epoll
    /// event loop (A/B baseline; bench/connection_storm measures both).
    bool blocking_plane = false;
  };

  explicit Server(QueryExecutor& executor);  // all-default Options
  Server(QueryExecutor& executor, Options options);
  /// Serve an arbitrary handler (the fleet front door's constructor).
  Server(LineHandler handler, Options options);
  /// Serve a peer-aware handler (guard-enabled daemons, the front door's
  /// per-connection client stamping).
  Server(TaggedLineHandler handler, Options options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen, and spawn the I/O plane.  False + *error on failure;
  /// last_errno() then holds the failing syscall's errno so callers can
  /// print actionable messages (EADDRINUSE: port taken).
  bool start(std::string* error = nullptr);

  /// errno of the syscall that failed the last start() (0 on success).
  int last_errno() const { return last_errno_; }

  /// Actual bound port (resolves port 0).
  std::uint16_t port() const { return port_; }

  /// Block until a client sends {"op":"shutdown"} or another thread calls
  /// stop().  Returns after the server is fully stopped.
  void wait();

  /// Idempotent full stop: close listener and connections, join threads.
  void stop();

  /// Drain: close the listener (no new connections) but leave every live
  /// connection untouched so in-flight responses are still delivered and
  /// late requests on open connections get their shed/answer.  Idempotent;
  /// follow with stop() once the drain budget elapses (docs/LIFECYCLE.md).
  void begin_drain();

  bool running() const;

 private:
  void request_stop();

  TaggedLineHandler handler_;  // plain LineHandlers are wrapped, peer unused
  Options options_;
  std::unique_ptr<detail::ServerPlane> plane_;
  std::uint16_t port_ = 0;
  int last_errno_ = 0;

  mutable std::mutex mutex_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
  bool stopped_ = true;
};

namespace detail {

/// The sharded epoll event loop (event_loop.cpp).  `on_shutdown_request`
/// is invoked (once) when a handler asked the server to stop.
std::unique_ptr<ServerPlane> make_epoll_plane(
    Server::TaggedLineHandler handler, Server::Options options,
    std::function<void()> on_shutdown_request);

/// The legacy thread-per-connection plane (server.cpp).
std::unique_ptr<ServerPlane> make_blocking_plane(
    Server::TaggedLineHandler handler, Server::Options options,
    std::function<void()> on_shutdown_request);

/// Peer tag for a connected socket: "ip:port" via getpeername, or
/// "conn-<fd>" when the syscall fails (pipes in tests, torn sockets).
std::string peer_tag(int fd);

/// Shared by both planes: bind + listen on 127.0.0.1:options.port, resolve
/// the actual port into *port.  Returns the listening fd, or -1 with
/// *error / *errno_out describing the failing syscall.
int listen_loopback(const Server::Options& options, std::uint16_t* port,
                    std::string* error, int* errno_out);

}  // namespace detail

}  // namespace netemu
