#pragma once
// The planner daemon: a localhost TCP listener speaking the line protocol.
//
// The listener is decoupled from what answers the lines: a Server runs any
// LineHandler — the classic one wraps a QueryExecutor (handle_request_line),
// the fleet front door wraps a FleetRouter that proxies to real backends.
//
// Threading model: one accept thread plus one thread per live connection.
// The handler underneath bounds actual concurrency (the executor's pool and
// admission queue, or the router's backends), so connection threads are
// cheap — they mostly block on socket reads or on a flight.  stop() (or a
// client's shutdown op followed by wait()) closes the listener, shuts down
// every live connection socket, and joins all threads; it is safe to call
// from any thread except a connection handler.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "netemu/service/executor.hpp"

namespace netemu {

class FaultInjector;

class Server {
 public:
  /// Answer one request line (no trailing newline) with one response line;
  /// set *shutdown_requested to stop the server after the response.
  using LineHandler =
      std::function<std::string(const std::string& line,
                                bool* shutdown_requested)>;

  struct Options {
    std::uint16_t port = 7464;  ///< 0 = ephemeral (see port() after start)
    int backlog = 64;
    std::size_t max_line = 1 << 20;  ///< request line cap (protocol_error)
    /// Fault injector applied to every connection's socket I/O (chaos
    /// testing).  Not owned; must outlive the server.  nullptr disables.
    FaultInjector* faults = nullptr;
  };

  explicit Server(QueryExecutor& executor);  // all-default Options
  Server(QueryExecutor& executor, Options options);
  /// Serve an arbitrary handler (the fleet front door's constructor).
  Server(LineHandler handler, Options options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen, and spawn the accept thread.  False + *error on failure;
  /// last_errno() then holds the failing syscall's errno so callers can
  /// print actionable messages (EADDRINUSE: port taken).
  bool start(std::string* error = nullptr);

  /// errno of the syscall that failed the last start() (0 on success).
  int last_errno() const { return last_errno_; }

  /// Actual bound port (resolves port 0).
  std::uint16_t port() const { return port_; }

  /// Block until a client sends {"op":"shutdown"} or another thread calls
  /// stop().  Returns after the server is fully stopped.
  void wait();

  /// Idempotent full stop: close listener and connections, join threads.
  void stop();

  /// Drain: close the listener (no new connections) but leave every live
  /// connection untouched so in-flight responses are still delivered and
  /// late requests on open connections get their shed/answer.  Idempotent;
  /// follow with stop() once the drain budget elapses (docs/LIFECYCLE.md).
  void begin_drain();

  bool running() const;

 private:
  void accept_loop();
  void handle_connection(int fd);
  void request_stop();

  LineHandler handler_;
  Options options_;
  // Atomic: the accept thread reads it while stop() closes and resets it.
  std::atomic<int> listen_fd_{-1};
  std::uint16_t port_ = 0;
  int last_errno_ = 0;

  mutable std::mutex mutex_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
  bool stopped_ = true;
  std::thread accept_thread_;
  std::vector<std::thread> connections_;
  std::vector<int> open_fds_;
};

}  // namespace netemu
