#pragma once
// The planner service's query model.
//
// A Query is the parsed, *canonicalized* form of one request: enums instead
// of strings, defaults filled in, and — crucially — a content address.
// cache_key() hashes only the fields that can influence the answer of the
// query's kind, each written in a canonical spelling, so that
//   {"op":"bandwidth","family":"butterfly","seed":7}
//   {"family":"Butterfly","op":"bandwidth"}
// collide (seed cannot affect a closed-form lookup) while any change to a
// field that does matter produces a different key.

#include <cstdint>
#include <optional>
#include <string>

#include "netemu/routing/packet_sim.hpp"
#include "netemu/topology/machine.hpp"
#include "netemu/traffic/distribution.hpp"
#include "netemu/util/json.hpp"

namespace netemu {

enum class QueryKind {
  kBandwidth,  ///< closed-form beta/Lambda for a family at size n
  kEstimate,   ///< empirical beta-hat via the packet simulator
  kMaxHost,    ///< Tables 1-3 solver for one (guest, host) pair
  kBounds,     ///< EET vs. Koch et al. baselines for (guest, host, m)
};

const char* query_kind_name(QueryKind k);
std::optional<QueryKind> query_kind_from_name(const std::string& name);

enum class RouterChoice { kDefault, kBfs, kValiant };

const char* router_choice_name(RouterChoice r);

struct Query {
  QueryKind kind = QueryKind::kBandwidth;

  // Guest machine (every kind).
  Family family = Family::kButterfly;
  unsigned k = 2;       ///< dimension, for dimensional families
  double n = 1024.0;    ///< guest size |G| (estimate builds the nearest
                        ///< legal instance)

  // Host machine (max_host, bounds).
  Family host_family = Family::kMesh;
  unsigned host_k = 2;
  double m = 0.0;       ///< host size |H|; 0 = solve for the maximum

  // Simulation knobs (estimate only).
  RouterChoice router = RouterChoice::kDefault;
  TrafficKind traffic = TrafficKind::kSymmetric;
  Arbitration arbitration = Arbitration::kFarthestFirst;
  std::uint64_t seed = 1;
  unsigned trials = 3;
  /// Trial-range shard [trial_lo, trial_hi) of an estimate sweep, the wire
  /// form of the scatter-gather decomposition (docs/SCATTER.md).  trial_hi
  /// == 0 means "the whole sweep"; a full-range request ([0, trials)) is
  /// normalized back to (0, 0) at parse time so its content address — and
  /// therefore its cache entry — is shared with the plain unsharded query.
  /// Only a PROPER sub-range enters the cache key.
  unsigned trial_lo = 0;
  unsigned trial_hi = 0;

  // Per-request execution control — NOT part of the content address.
  std::uint64_t deadline_ms = 0;  ///< 0 = executor default
  bool refresh = false;           ///< force a recompute (bypass cache read);
                                  ///< on failure the executor may serve the
                                  ///< previous value marked stale
  std::uint64_t trace_id = 0;     ///< scope trace id ("trace" wire field,
                                  ///< hex64); 0 = untraced.  Like deadline_ms
                                  ///< it never enters the cache key: tracing
                                  ///< a query must not fork its identity.
  std::string client;             ///< caller identity for the guard's
                                  ///< per-client fairness ("client" wire
                                  ///< field; servers stamp the connection
                                  ///< peer when absent).  NOT part of the
                                  ///< cache key: who asks must not fork the
                                  ///< answer's identity.

  /// True when this query covers a proper trial sub-range (estimate only).
  bool has_trial_range() const {
    return kind == QueryKind::kEstimate && trial_hi != 0 &&
           !(trial_lo == 0 && trial_hi == trials);
  }

  /// Canonical key string: "kind|field=value|..." over exactly the fields
  /// relevant to this kind, in fixed order.
  std::string canonical_string() const;

  /// 64-bit content address of canonical_string().
  std::uint64_t cache_key() const;
};

/// Family lookup accepting the printed name in any case, plus a trailing
/// dimension suffix for the dimensional families: "mesh2" -> (Mesh, k=2),
/// "Pyramid3" -> (Pyramid, k=3).  Returns family and optional parsed k.
struct FamilySpec {
  Family family;
  std::optional<unsigned> k;
};
std::optional<FamilySpec> parse_family(const std::string& name);

std::optional<TrafficKind> traffic_from_name(const std::string& name);
std::optional<Arbitration> arbitration_from_name(const std::string& name);
std::optional<RouterChoice> router_from_name(const std::string& name);

/// Build a Query from a request document ({"op": ..., fields...}).
/// Returns nullopt and sets *error on malformed or out-of-range requests.
std::optional<Query> query_from_json(const Json& request, std::string* error);

/// The request document a Query round-trips to (canonical field spelling;
/// only the fields relevant to the kind).  Used by the client and tests.
Json query_to_json(const Query& q);

}  // namespace netemu
