// The sharded epoll event loop behind Server (docs/SERVICE.md "I/O plane").
//
// Topology: one acceptor thread (blocking accept on the listener, so
// begin_drain keeps its close-the-listener semantics) hands each new
// connection — made non-blocking, TCP_NODELAY — to a reactor shard chosen
// round-robin.  Each shard owns its connections exclusively: an
// edge-triggered epoll instance, an eventfd for cross-thread wakeups, and
// an inbox (mutex + vectors) through which the acceptor delivers fds and
// the offload pool delivers completed responses.  Nothing else ever touches
// a connection, so per-connection state needs no locks.
//
// Data path per connection:
//   read until EAGAIN -> incremental '\n' framing into a request queue ->
//   serve queue head: overlong lines answer protocol_error, fast_handler
//   answers inline (ping / cache hits), everything else is offloaded to the
//   handler pool (at most ONE in flight per connection — the line protocol
//   promises in-order responses) -> responses append to a coalesced output
//   buffer flushed until EAGAIN, with EPOLLOUT (edge) re-arming the flush.
//   A connection whose un-flushed output exceeds max_output_bytes is a slow
//   consumer and is disconnected (counted) instead of growing the heap.
//
// Fault injection (chaos tests) fires on every non-blocking read/write just
// as the blocking LineChannel fired per syscall: kDrop closes the
// connection, a clamped length makes a short read/write, injected sleeps
// stall the shard — the blocking plane stalled the connection thread.

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <unordered_map>
#include <utility>

#include "netemu/faultline/injector.hpp"
#include "netemu/scope/metrics.hpp"
#include "netemu/service/protocol.hpp"
#include "netemu/service/server.hpp"
#include "netemu/util/thread_pool.hpp"

namespace netemu {
namespace detail {

namespace {

using SteadyClock = std::chrono::steady_clock;

scope::Gauge& connections_gauge() {
  static scope::Gauge& g = scope::Registry::global().gauge(
      "netemu_connections_open", "Live connections across all I/O shards");
  return g;
}

scope::Counter& backpressure_counter() {
  static scope::Counter& c = scope::Registry::global().counter(
      "netemu_backpressure_disconnects_total",
      "Connections dropped because pending output exceeded the cap");
  return c;
}

scope::Histogram& request_us_hist() {
  static scope::Histogram& h = scope::Registry::global().histogram(
      "netemu_io_request_us",
      "Request-to-response latency on the I/O plane (framing to enqueue)");
  return h;
}

double micros_since(SteadyClock::time_point start) {
  return std::chrono::duration<double, std::micro>(SteadyClock::now() - start)
      .count();
}

class EpollPlane final : public ServerPlane {
 public:
  EpollPlane(Server::TaggedLineHandler handler, Server::Options options,
             std::function<void()> on_shutdown_request)
      : handler_(std::move(handler)),
        options_(std::move(options)),
        on_shutdown_request_(std::move(on_shutdown_request)) {}

  ~EpollPlane() override { stop(); }

  bool start(std::string* error, int* errno_out) override {
    const int fd = listen_loopback(options_, &port_, error, errno_out);
    if (fd < 0) return false;
    listen_fd_.store(fd);
    stopping_.store(false);  // from here on, stop() owns cleanup

    std::size_t shards = options_.io_threads;
    if (shards == 0) {
      shards = std::max(1u, std::thread::hardware_concurrency());
    }
    shards_.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) {
      auto shard = std::make_unique<Shard>();
      shard->epoll_fd = ::epoll_create1(0);
      shard->wake_fd = ::eventfd(0, EFD_NONBLOCK);
      if (shard->epoll_fd < 0 || shard->wake_fd < 0) {
        if (errno_out) *errno_out = errno;
        if (error) {
          *error = std::string(shard->epoll_fd < 0 ? "epoll_create1"
                                                   : "eventfd") +
                   ": " + std::strerror(errno);
        }
        shards_.push_back(std::move(shard));  // stop() closes the partial set
        stop();
        return false;
      }
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = shard->wake_fd;
      ::epoll_ctl(shard->epoll_fd, EPOLL_CTL_ADD, shard->wake_fd, &ev);
      // Per-shard loop histogram: a hot or stalled shard (a blocking
      // fast_handler, a fault-injected sleep) shows up as its own tail.
      shard->loop_us = &scope::Registry::global().histogram(
          "netemu_io_loop_us_shard" + std::to_string(s),
          "Event-loop iteration time (work, not epoll_wait idle) on shard " +
              std::to_string(s));
      shards_.push_back(std::move(shard));
    }

    const std::size_t offload =
        options_.offload_threads != 0
            ? options_.offload_threads
            : std::max<std::size_t>(8, 2 * std::thread::hardware_concurrency());
    offload_pool_ = std::make_unique<ThreadPool>(offload);

    stopping_.store(false);
    for (auto& shard : shards_) {
      Shard* s = shard.get();
      s->thread = std::thread([this, s] { shard_loop(*s); });
    }
    accept_thread_ = std::thread([this] { accept_loop(); });
    return true;
  }

  std::uint16_t port() const override { return port_; }

  void begin_drain() override {
    const int fd = listen_fd_.exchange(-1);
    if (fd >= 0) {
      ::shutdown(fd, SHUT_RDWR);
      ::close(fd);
    }
  }

  void stop() override {
    if (stopping_.exchange(true)) return;
    begin_drain();  // close the listener; the acceptor exits
    if (accept_thread_.joinable()) accept_thread_.join();
    for (auto& shard : shards_) {
      if (shard->thread.joinable()) {
        wake(*shard);  // stopping_ is set; the loop exits on wake
        shard->thread.join();
      }
    }
    // Handlers still running on the pool post completions into inboxes that
    // no shard will read again; they are dropped when the shard (and its
    // queued strings) are destroyed below.
    if (offload_pool_) offload_pool_->shutdown();
    for (auto& shard : shards_) {
      for (auto& [fd, conn] : shard->conns) {
        ::close(fd);
        connections_gauge().add(-1.0);
      }
      shard->conns.clear();
      // Accepted fds the shard never got to register.
      for (const int fd : shard->incoming) ::close(fd);
      shard->incoming.clear();
      if (shard->wake_fd >= 0) ::close(shard->wake_fd);
      if (shard->epoll_fd >= 0) ::close(shard->epoll_fd);
    }
  }

 private:
  /// One request framed out of the input buffer, waiting for its response.
  struct PendingRequest {
    std::string line;
    bool overlong = false;  ///< exceeded max_line; answers protocol_error
    SteadyClock::time_point framed_at;
  };

  struct Conn {
    std::uint64_t gen = 0;  ///< guards completions against fd reuse
    std::string peer;       ///< "ip:port" tag (guard client identity)
    std::string in;         ///< unparsed input tail
    bool discarding = false;  ///< inside an overlong line, pre-newline
    std::deque<PendingRequest> requests;
    bool offload_in_flight = false;
    SteadyClock::time_point offload_framed_at;
    std::string out;            ///< coalesced responses
    std::size_t out_pos = 0;    ///< flushed prefix of `out`
    bool read_closed = false;   ///< peer half-closed (EOF seen)
    bool close_after_flush = false;
    bool shutdown_after_flush = false;  ///< handler requested server stop
  };

  struct Completion {
    int fd = -1;
    std::uint64_t gen = 0;
    std::string response;
    bool shutdown = false;
  };

  struct Shard {
    int epoll_fd = -1;
    int wake_fd = -1;
    std::thread thread;
    scope::Histogram* loop_us = nullptr;

    std::mutex inbox_mutex;
    std::vector<int> incoming;  ///< fds from the acceptor
    std::vector<Completion> completions;
    /// True while an eventfd wake is already pending and undrained —
    /// producers skip the redundant write syscall (connection storms post
    /// thousands of inbox items; one wakeup drains them all).
    std::atomic<bool> wake_pending{false};

    // Owned by the shard thread only (no locks): fd -> connection.
    // unique_ptr keeps Conn* stable across rehashes.
    std::unordered_map<int, std::unique_ptr<Conn>> conns;
    std::uint64_t next_gen = 1;
  };

  void wake(Shard& shard) {
    if (shard.wake_pending.exchange(true, std::memory_order_acq_rel)) {
      return;  // an undrained wake is already in flight
    }
    const std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n =
        ::write(shard.wake_fd, &one, sizeof(one));  // EAGAIN (full) is fine
  }

  void accept_loop() {
    std::size_t next_shard = 0;
    for (;;) {
      const int listen_fd = listen_fd_.load();
      if (listen_fd < 0) return;
      // accept4 delivers the fd already non-blocking: two fcntl syscalls
      // fewer per connection than accept + F_GETFL/F_SETFL, which a
      // connection storm turns into a measurable accept-rate difference.
      const int fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;  // listener closed (drain/stop) or fatal: stop accepting
      }
      if (stopping_.load()) {
        ::close(fd);
        return;
      }
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      Shard& shard = *shards_[next_shard];
      next_shard = (next_shard + 1) % shards_.size();
      {
        std::lock_guard lock(shard.inbox_mutex);
        shard.incoming.push_back(fd);
      }
      wake(shard);
    }
  }

  void shard_loop(Shard& shard) {
    constexpr int kMaxEvents = 128;
    epoll_event events[kMaxEvents];
    while (!stopping_.load()) {
      const int n = ::epoll_wait(shard.epoll_fd, events, kMaxEvents, -1);
      if (n < 0) {
        if (errno == EINTR) continue;
        return;  // epoll fd gone: shutting down
      }
      const auto t0 = SteadyClock::now();
      bool woken = false;
      // Socket events first, inbox last: a connection closed in this batch
      // frees its fd, and a new accept may reuse the number — registering
      // newcomers after all socket events keeps stale events from aliasing
      // onto them (completions are additionally generation-checked).
      for (int i = 0; i < n; ++i) {
        if (events[i].data.fd == shard.wake_fd) {
          woken = true;
          continue;
        }
        on_socket_event(shard, events[i].data.fd, events[i].events);
      }
      if (woken) drain_inbox(shard);
      shard.loop_us->observe(micros_since(t0));
    }
  }

  void drain_inbox(Shard& shard) {
    std::uint64_t drained = 0;
    [[maybe_unused]] ssize_t r =
        ::read(shard.wake_fd, &drained, sizeof(drained));
    // Clear BEFORE swapping: a producer that enqueues after the swap must
    // see the flag down and raise a fresh wake; one that enqueued before it
    // is picked up by this very swap, so its skipped write loses nothing.
    shard.wake_pending.store(false, std::memory_order_release);
    std::vector<int> incoming;
    std::vector<Completion> completions;
    {
      std::lock_guard lock(shard.inbox_mutex);
      incoming.swap(shard.incoming);
      completions.swap(shard.completions);
    }
    for (Completion& c : completions) on_completion(shard, c);
    for (const int fd : incoming) register_conn(shard, fd);
  }

  void register_conn(Shard& shard, int fd) {
    auto conn = std::make_unique<Conn>();
    conn->gen = shard.next_gen++;
    conn->peer = peer_tag(fd);
    Conn* c = conn.get();
    shard.conns.emplace(fd, std::move(conn));
    epoll_event ev{};
    // Registered once with both directions, edge-triggered: EPOLLOUT edges
    // only fire after a full->writable transition, which is exactly when a
    // flush stopped on EAGAIN needs re-arming; no EPOLL_CTL_MOD per write.
    ev.events = EPOLLIN | EPOLLOUT | EPOLLET | EPOLLRDHUP;
    ev.data.fd = fd;
    if (::epoll_ctl(shard.epoll_fd, EPOLL_CTL_ADD, fd, &ev) < 0) {
      shard.conns.erase(fd);
      ::close(fd);
      return;
    }
    connections_gauge().add(1.0);
    // The client may have written before we registered; with ET that edge
    // is already behind us, so poll the socket once by hand.
    on_readable(shard, fd, *c);
  }

  void on_socket_event(Shard& shard, int fd, std::uint32_t ev) {
    const auto it = shard.conns.find(fd);
    if (it == shard.conns.end()) return;  // closed earlier in this batch
    Conn& conn = *it->second;
    if (ev & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR)) {
      if (!on_readable(shard, fd, conn)) return;  // connection closed
    }
    if (ev & EPOLLOUT) {
      if (!try_flush(shard, fd, conn)) return;
    }
    finish_if_done(shard, fd, conn);
  }

  /// Read until EAGAIN, frame complete lines, serve what can be served.
  /// False when the connection was closed.
  bool on_readable(Shard& shard, int fd, Conn& conn) {
    char chunk[16384];
    for (;;) {
      std::size_t want = sizeof(chunk);
      if (options_.faults &&
          options_.faults->on_io(want) == FaultInjector::IoFault::kDrop) {
        close_conn(shard, fd);
        return false;
      }
      ssize_t got;
      do {
        got = ::read(fd, chunk, want);
      } while (got < 0 && errno == EINTR);
      if (got < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        close_conn(shard, fd);
        return false;
      }
      if (got == 0) {
        conn.read_closed = true;
        break;
      }
      conn.in.append(chunk, static_cast<std::size_t>(got));
      if (static_cast<std::size_t>(got) < want) break;  // short read: drained
    }
    frame_lines(conn);
    if (conn.read_closed) {
      // Half-close: answer every complete pipelined request, then close.
      // A partial trailing line is a torn request and gets no response
      // (the blocking plane treated it as a transport error the same way).
      conn.in.clear();
      conn.close_after_flush = true;
    }
    if (!process_requests(shard, fd, conn)) return false;
    if (!try_flush(shard, fd, conn)) return false;
    return finish_if_done(shard, fd, conn);
  }

  /// Split `conn.in` into complete request lines (handling overlong-line
  /// discard mode) and queue them for processing.
  void frame_lines(Conn& conn) {
    std::size_t pos = 0;
    const std::string& in = conn.in;
    for (;;) {
      const std::size_t nl = in.find('\n', pos);
      if (nl == std::string::npos) break;
      if (conn.discarding) {
        // Tail of a line that already blew the cap: drop it, answer.
        conn.discarding = false;
        conn.requests.push_back(
            {std::string(), /*overlong=*/true, SteadyClock::now()});
      } else if (nl - pos > options_.max_line) {
        conn.requests.push_back(
            {std::string(), /*overlong=*/true, SteadyClock::now()});
      } else {
        conn.requests.push_back({in.substr(pos, nl - pos), false,
                                 SteadyClock::now()});
      }
      pos = nl + 1;
    }
    if (pos > 0) conn.in.erase(0, pos);
    // Cap memory on a newline-free firehose: drop the buffered prefix and
    // remember to answer protocol_error once the newline finally arrives.
    // In discard mode the whole remaining tail is pre-newline overlong
    // content, so it never needs buffering at all.
    if (conn.discarding) {
      conn.in.clear();
    } else if (conn.in.size() > options_.max_line) {
      conn.in.clear();
      conn.discarding = true;
    }
  }

  /// Serve queued requests in order.  Stops at the first request that needs
  /// the offload pool (one in flight per connection keeps responses
  /// ordered).  False when the connection was closed.
  bool process_requests(Shard& shard, int fd, Conn& conn) {
    // Flush threshold inside a pipelined burst: keeps a long run of inline
    // answers from accumulating into one giant buffer (and from tripping
    // the slow-consumer cap when the peer is in fact keeping up).
    constexpr std::size_t kFlushChunk = 256u << 10;
    while (!conn.offload_in_flight && !conn.requests.empty()) {
      if (conn.out.size() - conn.out_pos >= kFlushChunk) {
        if (!try_flush(shard, fd, conn)) return false;
        if (conn.out.size() - conn.out_pos > options_.max_output_bytes) {
          backpressure_counter().inc();
          close_conn(shard, fd);
          return false;
        }
      }
      PendingRequest& req = conn.requests.front();
      if (req.overlong) {
        const bool ok = enqueue_response(
            shard, fd, conn,
            protocol_error_line("request line exceeds " +
                                std::to_string(options_.max_line) + " bytes"),
            req.framed_at);
        if (!ok) return false;
        conn.requests.pop_front();
        continue;
      }
      if (options_.fast_handler) {
        if (auto fast = options_.fast_handler(req.line)) {
          if (!enqueue_response(shard, fd, conn, std::move(*fast),
                                req.framed_at)) {
            return false;
          }
          conn.requests.pop_front();
          continue;
        }
      }
      conn.offload_in_flight = true;
      conn.offload_framed_at = req.framed_at;
      std::string line = std::move(req.line);
      conn.requests.pop_front();
      Shard* shard_ptr = &shard;
      const std::uint64_t gen = conn.gen;
      // Peer copied by value: the connection may be closed (and its Conn
      // destroyed) while the handler runs on the offload pool.
      const bool accepted = offload_pool_->submit(
          [this, shard_ptr, fd, gen, line = std::move(line),
           peer = conn.peer] {
            bool shutdown = false;
            Completion done;
            done.fd = fd;
            done.gen = gen;
            done.response = handler_(line, peer, &shutdown);
            done.shutdown = shutdown;
            {
              std::lock_guard lock(shard_ptr->inbox_mutex);
              shard_ptr->completions.push_back(std::move(done));
            }
            wake(*shard_ptr);
          });
      if (!accepted) {
        // Pool shutting down: the server is stopping; drop the connection.
        close_conn(shard, fd);
        return false;
      }
      break;  // wait for the completion before serving the next request
    }
    return true;
  }

  void on_completion(Shard& shard, Completion& done) {
    const auto it = shard.conns.find(done.fd);
    if (it == shard.conns.end() || it->second->gen != done.gen) {
      return;  // connection closed (or fd reused) while the handler ran
    }
    Conn& conn = *it->second;
    conn.offload_in_flight = false;
    if (done.shutdown) {
      // Mirror the blocking plane: deliver the shutdown ack, then close the
      // connection and stop the server.
      conn.shutdown_after_flush = true;
      conn.close_after_flush = true;
    }
    if (!enqueue_response(shard, done.fd, conn, std::move(done.response),
                          conn.offload_framed_at)) {
      return;
    }
    if (!process_requests(shard, done.fd, conn)) return;
    if (!try_flush(shard, done.fd, conn)) return;
    finish_if_done(shard, done.fd, conn);
  }

  /// Append one framed response to the output buffer, enforcing the
  /// slow-consumer cap.  False when the connection was closed.
  bool enqueue_response(Shard& shard, int fd, Conn& conn,
                        std::string response,
                        SteadyClock::time_point framed_at) {
    request_us_hist().observe(micros_since(framed_at));
    conn.out += response;
    conn.out += '\n';
    if (conn.out.size() - conn.out_pos > options_.max_output_bytes) {
      backpressure_counter().inc();
      close_conn(shard, fd);
      return false;
    }
    return true;
  }

  /// Write pending output until EAGAIN or empty.  False when the
  /// connection was closed.
  bool try_flush(Shard& shard, int fd, Conn& conn) {
    while (conn.out_pos < conn.out.size()) {
      std::size_t want = conn.out.size() - conn.out_pos;
      if (options_.faults &&
          options_.faults->on_io(want) == FaultInjector::IoFault::kDrop) {
        close_conn(shard, fd);
        return false;
      }
      ssize_t wrote;
      do {
        wrote = ::send(fd, conn.out.data() + conn.out_pos, want,
                       MSG_NOSIGNAL);
      } while (wrote < 0 && errno == EINTR);
      if (wrote < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          return true;  // EPOLLOUT re-arms the flush
        }
        close_conn(shard, fd);
        return false;
      }
      conn.out_pos += static_cast<std::size_t>(wrote);
    }
    conn.out.clear();
    conn.out_pos = 0;
    return true;
  }

  /// Close-after-flush / shutdown-after-flush bookkeeping once the output
  /// buffer is empty.  False when the connection was closed.
  bool finish_if_done(Shard& shard, int fd, Conn& conn) {
    if (conn.out_pos < conn.out.size()) return true;  // still flushing
    if (conn.offload_in_flight || !conn.requests.empty()) return true;
    if (conn.shutdown_after_flush) {
      conn.shutdown_after_flush = false;
      close_conn(shard, fd);
      on_shutdown_request_();
      return false;
    }
    if (conn.close_after_flush) {
      close_conn(shard, fd);
      return false;
    }
    return true;
  }

  void close_conn(Shard& shard, int fd) {
    const auto it = shard.conns.find(fd);
    if (it == shard.conns.end()) return;
    shard.conns.erase(it);  // epoll deregisters on close
    ::close(fd);
    connections_gauge().add(-1.0);
  }

  Server::TaggedLineHandler handler_;
  Server::Options options_;
  std::function<void()> on_shutdown_request_;
  std::atomic<int> listen_fd_{-1};
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{true};
  std::thread accept_thread_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<ThreadPool> offload_pool_;
};

}  // namespace

std::unique_ptr<ServerPlane> make_epoll_plane(
    Server::TaggedLineHandler handler, Server::Options options,
    std::function<void()> on_shutdown_request) {
  return std::make_unique<EpollPlane>(std::move(handler), std::move(options),
                                      std::move(on_shutdown_request));
}

}  // namespace detail
}  // namespace netemu
