#include "netemu/service/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "netemu/service/protocol.hpp"

namespace netemu {

namespace detail {

/// Shared by both planes: bind + listen on loopback, resolve the port.
/// Returns the listening fd, or -1 with *error / *errno_out set.
int listen_loopback(const Server::Options& options, std::uint16_t* port,
                    std::string* error, int* errno_out) {
  const auto fail = [&](int fd, const std::string& msg) {
    if (errno_out) *errno_out = errno;
    if (error) *error = msg + ": " + std::strerror(errno);
    if (fd >= 0) ::close(fd);
    return -1;
  };

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return fail(fd, "socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options.port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    return fail(fd, "bind 127.0.0.1:" + std::to_string(options.port));
  }
  if (::listen(fd, options.backlog) < 0) return fail(fd, "listen");

  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return fail(fd, "getsockname");
  }
  *port = ntohs(addr.sin_port);
  if (error) error->clear();
  if (errno_out) *errno_out = 0;
  return fd;
}

std::string peer_tag(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getpeername(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0 &&
      addr.sin_family == AF_INET) {
    char ip[INET_ADDRSTRLEN] = {};
    if (::inet_ntop(AF_INET, &addr.sin_addr, ip, sizeof(ip))) {
      return std::string(ip) + ":" + std::to_string(ntohs(addr.sin_port));
    }
  }
  return "conn-" + std::to_string(fd);
}

namespace {

// -----------------------------------------------------------------------
// Legacy blocking plane: one accept thread + one thread per connection.
// Kept as the A/B baseline (bench/connection_storm) and as a fallback;
// the default plane is the epoll event loop in event_loop.cpp.
// -----------------------------------------------------------------------
class BlockingPlane final : public ServerPlane {
 public:
  BlockingPlane(Server::TaggedLineHandler handler, Server::Options options,
                std::function<void()> on_shutdown_request)
      : handler_(std::move(handler)),
        options_(options),
        on_shutdown_request_(std::move(on_shutdown_request)) {}

  ~BlockingPlane() override { stop(); }

  bool start(std::string* error, int* errno_out) override {
    const int fd = listen_loopback(options_, &port_, error, errno_out);
    if (fd < 0) return false;
    listen_fd_ = fd;
    {
      std::lock_guard lock(mutex_);
      stopping_ = false;
    }
    accept_thread_ = std::thread([this] { accept_loop(); });
    return true;
  }

  std::uint16_t port() const override { return port_; }

  void begin_drain() override {
    std::lock_guard lock(mutex_);
    // Same unblock trick as stop(), listener only: the accept thread wakes
    // with a failing accept() and exits; stop() joins it later.
    close_listener_locked();
  }

  void stop() override {
    std::thread accept_thread;
    std::vector<std::thread> connections;
    {
      std::lock_guard lock(mutex_);
      if (stopping_) return;
      stopping_ = true;
      // Closing the listener unblocks accept(); shutting down the
      // connection sockets unblocks their readers.
      close_listener_locked();
      for (const int fd : open_fds_) ::shutdown(fd, SHUT_RDWR);
      accept_thread = std::move(accept_thread_);
      connections = std::move(connections_);
    }
    if (accept_thread.joinable()) accept_thread.join();
    for (auto& t : connections) {
      if (t.joinable()) t.join();
    }
  }

 private:
  void close_listener_locked() {
    if (listen_fd_ >= 0) {
      ::shutdown(listen_fd_, SHUT_RDWR);
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
  }

  void accept_loop() {
    for (;;) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        // Listener closed (stop/drain) or fatal error: stop accepting.
        return;
      }
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      std::lock_guard lock(mutex_);
      if (stopping_) {
        ::close(fd);
        return;
      }
      open_fds_.push_back(fd);
      try {
        connections_.emplace_back([this, fd] { handle_connection(fd); });
      } catch (const std::system_error&) {
        // Out of threads (the plane's scaling limit, and exactly what the
        // storm bench provokes): refuse this connection instead of
        // terminating the process.
        open_fds_.pop_back();
        ::close(fd);
      }
    }
  }

  void handle_connection(int fd) {
    LineChannel channel(fd);
    channel.set_fault_injector(options_.faults);
    const std::string peer = peer_tag(fd);
    std::string line;
    bool shutdown_requested = false;
    while (!shutdown_requested) {
      const LineChannel::Status status =
          channel.read_line_status(line, options_.max_line);
      if (status == LineChannel::Status::kEof ||
          status == LineChannel::Status::kError) {
        break;
      }
      std::string response;
      if (status == LineChannel::Status::kTooLong) {
        // The oversized line was discarded up to its newline; answer with a
        // protocol error and keep the connection usable.
        response = protocol_error_line(
            "request line exceeds " + std::to_string(options_.max_line) +
            " bytes");
      } else {
        response = handler_(line, peer, &shutdown_requested);
      }
      if (!channel.write_line(response)) break;
    }
    {
      std::lock_guard lock(mutex_);
      for (auto it = open_fds_.begin(); it != open_fds_.end(); ++it) {
        if (*it == fd) {
          open_fds_.erase(it);
          ::close(fd);
          break;
        }
      }
    }
    if (shutdown_requested) on_shutdown_request_();
  }

  Server::TaggedLineHandler handler_;
  Server::Options options_;
  std::function<void()> on_shutdown_request_;
  // Atomic: the accept thread reads it while stop() closes and resets it.
  std::atomic<int> listen_fd_{-1};
  std::uint16_t port_ = 0;

  mutable std::mutex mutex_;
  bool stopping_ = true;
  std::thread accept_thread_;
  std::vector<std::thread> connections_;
  std::vector<int> open_fds_;
};

}  // namespace

std::unique_ptr<ServerPlane> make_blocking_plane(
    Server::TaggedLineHandler handler, Server::Options options,
    std::function<void()> on_shutdown_request) {
  return std::make_unique<BlockingPlane>(std::move(handler), options,
                                         std::move(on_shutdown_request));
}

}  // namespace detail

Server::Server(QueryExecutor& executor) : Server(executor, Options()) {}

Server::Server(QueryExecutor& executor, Options options)
    : Server(
          TaggedLineHandler([&executor](const std::string& line,
                                        const std::string& peer,
                                        bool* shutdown_requested) {
            // Stamp the connection peer as the default client identity so
            // the guard's per-client fairness works without cooperation.
            return handle_request_line(line, executor, shutdown_requested,
                                       nullptr, "peer:" + peer);
          }),
          [&options, &executor]() {
            // The executor handler gets the protocol fast path for free:
            // ping and cache hits answer inline on the reactor.
            if (!options.fast_handler) {
              options.fast_handler = [&executor](const std::string& line) {
                return try_handle_request_line_fast(line, executor);
              };
            }
            return options;
          }()) {}

Server::Server(LineHandler handler, Options options)
    : Server(
          TaggedLineHandler([handler = std::move(handler)](
                                const std::string& line,
                                const std::string& /*peer*/,
                                bool* shutdown_requested) {
            return handler(line, shutdown_requested);
          }),
          std::move(options)) {}

Server::Server(TaggedLineHandler handler, Options options)
    : handler_(std::move(handler)), options_(std::move(options)) {}

Server::~Server() { stop(); }

bool Server::start(std::string* error) {
  last_errno_ = 0;
  {
    std::lock_guard lock(mutex_);
    stop_requested_ = false;
    stopped_ = false;
  }
  auto on_shutdown = [this] { request_stop(); };
  plane_ = options_.blocking_plane
               ? detail::make_blocking_plane(handler_, options_,
                                             std::move(on_shutdown))
               : detail::make_epoll_plane(handler_, options_,
                                          std::move(on_shutdown));
  if (!plane_->start(error, &last_errno_)) {
    plane_.reset();
    std::lock_guard lock(mutex_);
    stopped_ = true;
    return false;
  }
  port_ = plane_->port();
  return true;
}

void Server::request_stop() {
  {
    std::lock_guard lock(mutex_);
    if (stop_requested_) return;
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
}

void Server::begin_drain() {
  if (plane_) plane_->begin_drain();
}

void Server::wait() {
  {
    std::unique_lock lock(mutex_);
    stop_cv_.wait(lock, [this] { return stop_requested_ || stopped_; });
  }
  stop();
}

void Server::stop() {
  request_stop();
  {
    std::lock_guard lock(mutex_);
    if (stopped_) return;
    stopped_ = true;
  }
  if (plane_) plane_->stop();
  stop_cv_.notify_all();
}

bool Server::running() const {
  std::lock_guard lock(mutex_);
  return !stopped_ && !stop_requested_;
}

}  // namespace netemu
