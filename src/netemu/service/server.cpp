#include "netemu/service/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "netemu/service/protocol.hpp"

namespace netemu {

Server::Server(QueryExecutor& executor) : Server(executor, Options()) {}

Server::Server(QueryExecutor& executor, Options options)
    : Server(
          [&executor](const std::string& line, bool* shutdown_requested) {
            return handle_request_line(line, executor, shutdown_requested);
          },
          options) {}

Server::Server(LineHandler handler, Options options)
    : handler_(std::move(handler)), options_(options) {}

Server::~Server() { stop(); }

bool Server::start(std::string* error) {
  last_errno_ = 0;
  const auto fail = [this, error](const std::string& msg) {
    last_errno_ = errno;
    if (error) *error = msg + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return fail("bind 127.0.0.1:" + std::to_string(options_.port));
  }
  if (::listen(listen_fd_, options_.backlog) < 0) return fail("listen");

  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    return fail("getsockname");
  }
  port_ = ntohs(addr.sin_port);

  {
    std::lock_guard lock(mutex_);
    stop_requested_ = false;
    stopped_ = false;
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
  if (error) error->clear();
  return true;
}

void Server::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Listener closed (stop) or fatal error: either way, stop accepting.
      return;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard lock(mutex_);
    if (stop_requested_) {
      ::close(fd);
      return;
    }
    open_fds_.push_back(fd);
    connections_.emplace_back([this, fd] { handle_connection(fd); });
  }
}

void Server::handle_connection(int fd) {
  LineChannel channel(fd);
  channel.set_fault_injector(options_.faults);
  std::string line;
  bool shutdown_requested = false;
  while (!shutdown_requested) {
    const LineChannel::Status status =
        channel.read_line_status(line, options_.max_line);
    if (status == LineChannel::Status::kEof ||
        status == LineChannel::Status::kError) {
      break;
    }
    std::string response;
    if (status == LineChannel::Status::kTooLong) {
      // The oversized line was discarded up to its newline; answer with a
      // protocol error and keep the connection usable.
      response = protocol_error_line(
          "request line exceeds " + std::to_string(options_.max_line) +
          " bytes");
    } else {
      response = handler_(line, &shutdown_requested);
    }
    if (!channel.write_line(response)) break;
  }
  {
    std::lock_guard lock(mutex_);
    for (auto it = open_fds_.begin(); it != open_fds_.end(); ++it) {
      if (*it == fd) {
        open_fds_.erase(it);
        ::close(fd);
        break;
      }
    }
  }
  if (shutdown_requested) request_stop();
}

void Server::request_stop() {
  {
    std::lock_guard lock(mutex_);
    if (stop_requested_) return;
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
}

void Server::begin_drain() {
  std::lock_guard lock(mutex_);
  // Same unblock trick as stop(), listener only: the accept thread wakes
  // with a failing accept() and exits; stop() joins it later.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void Server::wait() {
  {
    std::unique_lock lock(mutex_);
    stop_cv_.wait(lock, [this] { return stop_requested_ || stopped_; });
  }
  stop();
}

void Server::stop() {
  request_stop();

  std::thread accept_thread;
  std::vector<std::thread> connections;
  {
    std::lock_guard lock(mutex_);
    if (stopped_) return;
    stopped_ = true;
    // Closing the listener unblocks accept(); shutting down the connection
    // sockets unblocks their readers.
    if (listen_fd_ >= 0) {
      ::shutdown(listen_fd_, SHUT_RDWR);
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    for (const int fd : open_fds_) ::shutdown(fd, SHUT_RDWR);
    accept_thread = std::move(accept_thread_);
    connections = std::move(connections_);
  }
  if (accept_thread.joinable()) accept_thread.join();
  for (auto& t : connections) {
    if (t.joinable()) t.join();
  }
  stop_cv_.notify_all();
}

bool Server::running() const {
  std::lock_guard lock(mutex_);
  return !stopped_ && !stop_requested_;
}

}  // namespace netemu
