#include "netemu/service/result_cache.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "netemu/faultline/injector.hpp"
#include "netemu/util/hash.hpp"
#include "netemu/util/json.hpp"

namespace netemu {

namespace {

constexpr const char* kHeaderV2 = R"({"format":"netemu-result-cache-v2"})";
constexpr const char* kWalHeader = R"({"format":"netemu-result-wal-v1"})";

/// Per-entry checksum: covers both the key and the value so a line whose
/// bytes were spliced from two entries cannot verify.
std::string entry_sum(const std::string& key_hex, const std::string& value) {
  return hex64(fnv1a64(value, fnv1a64(key_hex)));
}

/// One snapshot/journal entry line (without trailing newline): the formats
/// share it so the loader and the replayer share the validation path.
void append_entry_line(std::string& out, std::uint64_t key,
                       const std::string& value) {
  const std::string key_hex = hex64(key);
  out += R"({"key":")";
  out += key_hex;
  out += R"(","sum":")";
  out += entry_sum(key_hex, value);
  out += R"(","value":")";
  json_escape(value, out);
  out += "\"}";
}

/// Validate one checksummed entry line; true and fills key/value when the
/// line is intact.
bool parse_entry_line(const std::string& line, std::uint64_t& key,
                      std::string& value) {
  std::string error;
  const Json entry = Json::parse(line, &error);
  if (!error.empty() || !entry.is_object() ||
      !parse_hex64(entry["key"].as_string(), key) ||
      !entry["value"].is_string() ||
      entry["sum"].as_string() !=
          entry_sum(entry["key"].as_string(), entry["value"].as_string())) {
    return false;
  }
  value = entry["value"].as_string();
  return true;
}

}  // namespace

ResultCache::ResultCache(std::size_t capacity, std::string path, bool journal)
    : capacity_(capacity == 0 ? 1 : capacity),
      path_(std::move(path)),
      journal_(journal && !path_.empty()) {}

ResultCache::~ResultCache() {
  if (wal_fd_ >= 0) ::close(wal_fd_);
}

void ResultCache::set_fault_injector(FaultInjector* injector) {
  std::lock_guard lock(mutex_);
  faults_ = injector;
}

std::optional<std::string> ResultCache::get(std::uint64_t key) {
  std::lock_guard lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->value;
}

std::optional<std::string> ResultCache::get_if_hit(std::uint64_t key) {
  std::lock_guard lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) return std::nullopt;  // uncounted; see header
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->value;
}

void ResultCache::put(std::uint64_t key, std::string value) {
  std::lock_guard lock(mutex_);
  if (journal_) wal_append_locked(key, value);
  put_locked(key, std::move(value), /*front=*/true);
}

void ResultCache::put_locked(std::uint64_t key, std::string value,
                             bool front) {
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->value = std::move(value);
    if (front) lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    // A cold (load-time) insert never displaces a live entry.
    if (!front) return;
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
  if (front) {
    lru_.push_front(Entry{key, std::move(value)});
    index_[key] = lru_.begin();
  } else {
    lru_.push_back(Entry{key, std::move(value)});
    index_[key] = std::prev(lru_.end());
  }
}

bool ResultCache::wal_open_locked(bool truncate) {
  if (wal_fd_ >= 0 && !truncate) return true;
  if (wal_fd_ >= 0) {
    ::close(wal_fd_);
    wal_fd_ = -1;
  }
  int flags = O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC;
  if (truncate) flags |= O_TRUNC;
  wal_fd_ = ::open(wal_path().c_str(), flags, 0644);
  if (wal_fd_ < 0) return false;
  // A fresh (empty) journal starts with its header line so a reader can
  // tell an intact empty journal from a torn one.
  const off_t end = ::lseek(wal_fd_, 0, SEEK_END);
  if (end == 0) {
    std::string header = kWalHeader;
    header += '\n';
    if (::write(wal_fd_, header.data(), header.size()) !=
        static_cast<ssize_t>(header.size())) {
      ::close(wal_fd_);
      wal_fd_ = -1;
      return false;
    }
  }
  return true;
}

void ResultCache::wal_append_locked(std::uint64_t key,
                                    const std::string& value) {
  if (!wal_open_locked(/*truncate=*/false)) {
    ++wal_append_failures_;
    return;
  }
  std::string line;
  append_entry_line(line, key, value);
  line += '\n';

  // Journal appends share the save() fault stream: a clean failure skips
  // the write, a torn one persists only a prefix — both are what a crash
  // mid-append leaves behind, and both must be absorbed by replay.
  std::size_t write_bytes = line.size();
  bool torn = false;
  if (faults_) {
    double fraction = 1.0;
    switch (faults_->on_disk_write(fraction)) {
      case FaultInjector::DiskFault::kFail:
        ++wal_append_failures_;
        return;
      case FaultInjector::DiskFault::kTorn:
        torn = true;
        write_bytes = static_cast<std::size_t>(
            static_cast<double>(line.size()) * fraction);
        break;
      case FaultInjector::DiskFault::kNone:
        break;
    }
  }
  ssize_t wrote;
  do {
    wrote = ::write(wal_fd_, line.data(), write_bytes);
  } while (wrote < 0 && errno == EINTR);
  if (wrote != static_cast<ssize_t>(write_bytes) || torn) {
    ++wal_append_failures_;
    return;
  }
  // The fsync is the durability point: once it returns, a SIGKILL'd
  // process recovers this entry on restart.
  if (::fsync(wal_fd_) != 0) {
    ++wal_append_failures_;
    return;
  }
  ++wal_appends_;
}

void ResultCache::wal_reset_locked() {
  // The snapshot now holds everything the journal did; start it over.
  if (!wal_open_locked(/*truncate=*/true)) ++wal_append_failures_;
}

bool ResultCache::replay_wal_locked() {
  std::ifstream in(wal_path());
  if (!in) return false;
  std::string header;
  if (!std::getline(in, header)) return false;
  bool header_ok = header == kWalHeader;
  std::string line = header_ok ? "" : header;
  wal_replayed_ = 0;
  // Journal entries are strictly newer than the snapshot: replay them hot,
  // overwriting snapshot values.  Each line stands alone; a torn or merged
  // line is quarantined and replay continues.
  const auto replay_line = [this](const std::string& l) {
    if (l.empty()) return;
    std::uint64_t key = 0;
    std::string value;
    if (!parse_entry_line(l, key, value)) {
      ++corrupt_entries_;
      return;
    }
    put_locked(key, std::move(value), /*front=*/true);
    ++wal_replayed_;
  };
  replay_line(line);
  while (std::getline(in, line)) replay_line(line);
  return header_ok || wal_replayed_ > 0;
}

bool ResultCache::load_v1(const std::string& text) {
  std::string error;
  const Json doc = Json::parse(text, &error);
  if (!error.empty() || !doc.is_object()) return false;
  const Json& entries = doc["entries"];
  if (!entries.is_array()) return false;

  std::lock_guard lock(mutex_);
  for (const Json& entry : entries.items()) {
    std::uint64_t key = 0;
    if (!parse_hex64(entry["key"].as_string(), key)) {
      ++corrupt_entries_;
      continue;
    }
    const Json& value = entry["value"];
    if (!value.is_string()) {
      ++corrupt_entries_;
      continue;
    }
    if (index_.count(key)) continue;
    put_locked(key, value.as_string(), /*front=*/false);
  }
  return true;
}

bool ResultCache::load_snapshot() {
  std::ifstream in(path_);
  if (!in) return false;

  std::string header;
  if (!std::getline(in, header)) return false;
  if (header != kHeaderV2) {
    // Not the line format: fall back to the v1 whole-document layout.
    std::stringstream buffer;
    buffer << header << "\n" << in.rdbuf();
    return load_v1(buffer.str());
  }

  // v2: one checksummed entry per line, hot to cold.  Every line stands
  // alone — a torn or corrupted line is quarantined and loading continues,
  // so a crash mid-write costs at most the entries past the tear.
  std::lock_guard lock(mutex_);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    // A final line without its '\n' is a torn tail: its checksum decides.
    std::uint64_t key = 0;
    std::string value;
    if (!parse_entry_line(line, key, value)) {
      ++corrupt_entries_;
      continue;
    }
    // File entries enter at the cold end and never displace what the live
    // process already cached.
    if (index_.count(key)) continue;
    put_locked(key, std::move(value), /*front=*/false);
  }
  return true;
}

bool ResultCache::load() {
  if (path_.empty()) return false;
  const bool snapshot = load_snapshot();
  if (!journal_) return snapshot;
  std::lock_guard lock(mutex_);
  const bool replayed = replay_wal_locked();
  return snapshot || replayed;
}

bool ResultCache::save() {
  if (path_.empty()) return false;

  std::string payload = kHeaderV2;
  payload += '\n';
  FaultInjector* faults = nullptr;
  std::uint64_t appends_at_snapshot = 0;
  {
    std::lock_guard lock(mutex_);
    faults = faults_;
    appends_at_snapshot = wal_appends_;
    // Dump hot-to-cold: load() appends file entries in order at the cold
    // end of an empty list, which reconstructs exactly this recency order.
    for (const Entry& e : lru_) {
      append_entry_line(payload, e.key, e.value);
      payload += '\n';
    }
  }

  // Fault hooks: a clean failure writes nothing; a torn write truncates the
  // payload and still renames it into place, simulating a crash that beat
  // the rename barrier — exactly what the checksummed loader must survive.
  std::size_t write_bytes = payload.size();
  bool torn = false;
  if (faults) {
    double fraction = 1.0;
    switch (faults->on_disk_write(fraction)) {
      case FaultInjector::DiskFault::kFail: {
        std::lock_guard lock(mutex_);
        ++save_failures_;
        return false;
      }
      case FaultInjector::DiskFault::kTorn:
        torn = true;
        write_bytes = static_cast<std::size_t>(
            static_cast<double>(payload.size()) * fraction);
        break;
      case FaultInjector::DiskFault::kNone:
        break;
    }
  }

  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    if (!out) {
      std::lock_guard lock(mutex_);
      ++save_failures_;
      return false;
    }
    out.write(payload.data(), static_cast<std::streamsize>(write_bytes));
    if (!out.good()) {
      std::lock_guard lock(mutex_);
      ++save_failures_;
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    std::lock_guard lock(mutex_);
    ++save_failures_;
    return false;
  }
  if (torn) {
    std::lock_guard lock(mutex_);
    ++save_failures_;
    return false;
  }
  if (journal_) {
    std::lock_guard lock(mutex_);
    // Reset only if no put() journaled a new entry while the snapshot was
    // being written — those entries are NOT in the file just renamed, and
    // truncating them away would lose them to the next crash.
    if (wal_appends_ == appends_at_snapshot) wal_reset_locked();
  }
  return true;
}

bool ResultCache::probe_path(const std::string& path, std::string* error) {
  if (path.empty()) {
    if (error) *error = "cache path is empty";
    return false;
  }
  const std::string probe = path + ".probe";
  const int fd = ::open(probe.c_str(), O_WRONLY | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    if (error) {
      *error = "cache path '" + path + "' is not writable: " +
               std::strerror(errno);
    }
    return false;
  }
  ::close(fd);
  ::unlink(probe.c_str());
  if (error) error->clear();
  return true;
}

std::size_t ResultCache::size() const {
  std::lock_guard lock(mutex_);
  return lru_.size();
}

std::uint64_t ResultCache::hits() const {
  std::lock_guard lock(mutex_);
  return hits_;
}

std::uint64_t ResultCache::misses() const {
  std::lock_guard lock(mutex_);
  return misses_;
}

std::uint64_t ResultCache::corrupt_entries() const {
  std::lock_guard lock(mutex_);
  return corrupt_entries_;
}

std::uint64_t ResultCache::save_failures() const {
  std::lock_guard lock(mutex_);
  return save_failures_;
}

std::uint64_t ResultCache::wal_appends() const {
  std::lock_guard lock(mutex_);
  return wal_appends_;
}

std::uint64_t ResultCache::wal_replayed() const {
  std::lock_guard lock(mutex_);
  return wal_replayed_;
}

std::uint64_t ResultCache::wal_append_failures() const {
  std::lock_guard lock(mutex_);
  return wal_append_failures_;
}

}  // namespace netemu
