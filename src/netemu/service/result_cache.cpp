#include "netemu/service/result_cache.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "netemu/util/hash.hpp"
#include "netemu/util/json.hpp"

namespace netemu {

ResultCache::ResultCache(std::size_t capacity, std::string path)
    : capacity_(capacity == 0 ? 1 : capacity), path_(std::move(path)) {}

std::optional<std::string> ResultCache::get(std::uint64_t key) {
  std::lock_guard lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->value;
}

void ResultCache::put(std::uint64_t key, std::string value) {
  std::lock_guard lock(mutex_);
  put_locked(key, std::move(value), /*front=*/true);
}

void ResultCache::put_locked(std::uint64_t key, std::string value,
                             bool front) {
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->value = std::move(value);
    if (front) lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    // A cold (load-time) insert never displaces a live entry.
    if (!front) return;
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
  if (front) {
    lru_.push_front(Entry{key, std::move(value)});
    index_[key] = lru_.begin();
  } else {
    lru_.push_back(Entry{key, std::move(value)});
    index_[key] = std::prev(lru_.end());
  }
}

bool ResultCache::load() {
  if (path_.empty()) return false;
  std::ifstream in(path_);
  if (!in) return false;
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string error;
  const Json doc = Json::parse(buffer.str(), &error);
  if (!error.empty() || !doc.is_object()) return false;
  const Json& entries = doc["entries"];
  if (!entries.is_array()) return false;

  std::lock_guard lock(mutex_);
  for (const Json& entry : entries.items()) {
    std::uint64_t key = 0;
    if (!parse_hex64(entry["key"].as_string(), key)) continue;
    const Json& value = entry["value"];
    if (!value.is_string()) continue;
    // File entries enter at the cold end and never displace what the live
    // process already cached.
    if (index_.count(key)) continue;
    put_locked(key, value.as_string(), /*front=*/false);
  }
  return true;
}

bool ResultCache::save() {
  if (path_.empty()) return false;
  Json doc = Json::object();
  doc["format"] = "netemu-result-cache-v1";
  Json entries = Json::array();
  {
    std::lock_guard lock(mutex_);
    // Dump hot-to-cold: load() appends file entries in order at the cold
    // end of an empty list, which reconstructs exactly this recency order.
    for (const Entry& e : lru_) {
      Json entry = Json::object();
      entry["key"] = hex64(e.key);
      entry["value"] = e.value;
      entries.items().push_back(std::move(entry));
    }
  }
  doc["entries"] = std::move(entries);

  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    out << doc.dump() << "\n";
    if (!out.good()) return false;
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

std::size_t ResultCache::size() const {
  std::lock_guard lock(mutex_);
  return lru_.size();
}

std::uint64_t ResultCache::hits() const {
  std::lock_guard lock(mutex_);
  return hits_;
}

std::uint64_t ResultCache::misses() const {
  std::lock_guard lock(mutex_);
  return misses_;
}

}  // namespace netemu
