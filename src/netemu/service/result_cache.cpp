#include "netemu/service/result_cache.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "netemu/faultline/injector.hpp"
#include "netemu/util/hash.hpp"
#include "netemu/util/json.hpp"

namespace netemu {

namespace {

constexpr const char* kHeaderV2 = R"({"format":"netemu-result-cache-v2"})";

/// Per-entry checksum: covers both the key and the value so a line whose
/// bytes were spliced from two entries cannot verify.
std::string entry_sum(const std::string& key_hex, const std::string& value) {
  return hex64(fnv1a64(value, fnv1a64(key_hex)));
}

}  // namespace

ResultCache::ResultCache(std::size_t capacity, std::string path)
    : capacity_(capacity == 0 ? 1 : capacity), path_(std::move(path)) {}

void ResultCache::set_fault_injector(FaultInjector* injector) {
  std::lock_guard lock(mutex_);
  faults_ = injector;
}

std::optional<std::string> ResultCache::get(std::uint64_t key) {
  std::lock_guard lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->value;
}

void ResultCache::put(std::uint64_t key, std::string value) {
  std::lock_guard lock(mutex_);
  put_locked(key, std::move(value), /*front=*/true);
}

void ResultCache::put_locked(std::uint64_t key, std::string value,
                             bool front) {
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->value = std::move(value);
    if (front) lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    // A cold (load-time) insert never displaces a live entry.
    if (!front) return;
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
  if (front) {
    lru_.push_front(Entry{key, std::move(value)});
    index_[key] = lru_.begin();
  } else {
    lru_.push_back(Entry{key, std::move(value)});
    index_[key] = std::prev(lru_.end());
  }
}

bool ResultCache::load_v1(const std::string& text) {
  std::string error;
  const Json doc = Json::parse(text, &error);
  if (!error.empty() || !doc.is_object()) return false;
  const Json& entries = doc["entries"];
  if (!entries.is_array()) return false;

  std::lock_guard lock(mutex_);
  for (const Json& entry : entries.items()) {
    std::uint64_t key = 0;
    if (!parse_hex64(entry["key"].as_string(), key)) {
      ++corrupt_entries_;
      continue;
    }
    const Json& value = entry["value"];
    if (!value.is_string()) {
      ++corrupt_entries_;
      continue;
    }
    if (index_.count(key)) continue;
    put_locked(key, value.as_string(), /*front=*/false);
  }
  return true;
}

bool ResultCache::load() {
  if (path_.empty()) return false;
  std::ifstream in(path_);
  if (!in) return false;

  std::string header;
  if (!std::getline(in, header)) return false;
  if (header != kHeaderV2) {
    // Not the line format: fall back to the v1 whole-document layout.
    std::stringstream buffer;
    buffer << header << "\n" << in.rdbuf();
    return load_v1(buffer.str());
  }

  // v2: one checksummed entry per line, hot to cold.  Every line stands
  // alone — a torn or corrupted line is quarantined and loading continues,
  // so a crash mid-write costs at most the entries past the tear.
  std::lock_guard lock(mutex_);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    // A final line without its '\n' is a torn tail: its checksum decides.
    std::string error;
    const Json entry = Json::parse(line, &error);
    std::uint64_t key = 0;
    if (!error.empty() || !entry.is_object() ||
        !parse_hex64(entry["key"].as_string(), key) ||
        !entry["value"].is_string() ||
        entry["sum"].as_string() !=
            entry_sum(entry["key"].as_string(), entry["value"].as_string())) {
      ++corrupt_entries_;
      continue;
    }
    // File entries enter at the cold end and never displace what the live
    // process already cached.
    if (index_.count(key)) continue;
    put_locked(key, entry["value"].as_string(), /*front=*/false);
  }
  return true;
}

bool ResultCache::save() {
  if (path_.empty()) return false;

  std::string payload = kHeaderV2;
  payload += '\n';
  FaultInjector* faults = nullptr;
  {
    std::lock_guard lock(mutex_);
    faults = faults_;
    // Dump hot-to-cold: load() appends file entries in order at the cold
    // end of an empty list, which reconstructs exactly this recency order.
    for (const Entry& e : lru_) {
      const std::string key_hex = hex64(e.key);
      payload += R"({"key":")";
      payload += key_hex;
      payload += R"(","sum":")";
      payload += entry_sum(key_hex, e.value);
      payload += R"(","value":")";
      json_escape(e.value, payload);
      payload += "\"}\n";
    }
  }

  // Fault hooks: a clean failure writes nothing; a torn write truncates the
  // payload and still renames it into place, simulating a crash that beat
  // the rename barrier — exactly what the checksummed loader must survive.
  std::size_t write_bytes = payload.size();
  bool torn = false;
  if (faults) {
    double fraction = 1.0;
    switch (faults->on_disk_write(fraction)) {
      case FaultInjector::DiskFault::kFail: {
        std::lock_guard lock(mutex_);
        ++save_failures_;
        return false;
      }
      case FaultInjector::DiskFault::kTorn:
        torn = true;
        write_bytes = static_cast<std::size_t>(
            static_cast<double>(payload.size()) * fraction);
        break;
      case FaultInjector::DiskFault::kNone:
        break;
    }
  }

  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    if (!out) {
      std::lock_guard lock(mutex_);
      ++save_failures_;
      return false;
    }
    out.write(payload.data(), static_cast<std::streamsize>(write_bytes));
    if (!out.good()) {
      std::lock_guard lock(mutex_);
      ++save_failures_;
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    std::lock_guard lock(mutex_);
    ++save_failures_;
    return false;
  }
  if (torn) {
    std::lock_guard lock(mutex_);
    ++save_failures_;
    return false;
  }
  return true;
}

std::size_t ResultCache::size() const {
  std::lock_guard lock(mutex_);
  return lru_.size();
}

std::uint64_t ResultCache::hits() const {
  std::lock_guard lock(mutex_);
  return hits_;
}

std::uint64_t ResultCache::misses() const {
  std::lock_guard lock(mutex_);
  return misses_;
}

std::uint64_t ResultCache::corrupt_entries() const {
  std::lock_guard lock(mutex_);
  return corrupt_entries_;
}

std::uint64_t ResultCache::save_failures() const {
  std::lock_guard lock(mutex_);
  return save_failures_;
}

}  // namespace netemu
