#pragma once
// The planner: pure compute behind the service.  Each query kind maps to
// one function from Query to a JSON result document.  Everything here is
// deterministic in the query (randomness flows from the query's seed), which
// is what makes the results content-addressable.

#include "netemu/service/query.hpp"
#include "netemu/util/cancel.hpp"
#include "netemu/util/json.hpp"
#include "netemu/util/thread_pool.hpp"

namespace netemu {

/// Dispatch on q.kind.  Throws std::runtime_error on infeasible queries
/// (e.g. bit-reversal traffic on a machine without a power-of-two processor
/// count); the executor converts that into an error response.
///
/// `pool` (may be nullptr = serial) runs the estimate kind's simulation
/// trials concurrently; the executor passes its own worker pool down, which
/// is safe because measure_throughput uses the collaborative for_n.  The
/// result is bit-identical with and without a pool (see throughput.hpp).
///
/// `cancel` propagates into the estimate kind's routing and simulation loops
/// (docs/LIFECYCLE.md): cancellation before any trial finished raises
/// CancelledError; after at least one trial the document comes back with
/// "degraded": true and "trials_completed" instead.  The closed-form kinds
/// finish in microseconds and ignore the token.
Json plan_query(const Query& q, ThreadPool* pool = nullptr,
                const CancelToken& cancel = {});

// Individual kinds (exposed for tests).
Json plan_bandwidth(const Query& q);  ///< closed-form beta/Lambda registry
/// Packet-simulated beta-hat; trials run on `pool` when given.
Json plan_estimate(const Query& q, ThreadPool* pool = nullptr,
                   const CancelToken& cancel = {});
Json plan_max_host(const Query& q);   ///< Tables 1-3 solver
Json plan_bounds(const Query& q);     ///< EET vs. Koch et al. baselines

}  // namespace netemu
