#include "netemu/service/query.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <unordered_map>

#include "netemu/scope/trace.hpp"
#include "netemu/util/hash.hpp"

namespace netemu {

namespace {

std::string lower(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

/// Canonical number rendering for key strings: integers without a fraction,
/// everything else with enough digits to round-trip.
void append_num(std::string& out, double v) {
  char buf[32];
  if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  out += buf;
}

}  // namespace

const char* query_kind_name(QueryKind k) {
  switch (k) {
    case QueryKind::kBandwidth: return "bandwidth";
    case QueryKind::kEstimate: return "estimate";
    case QueryKind::kMaxHost: return "max_host";
    case QueryKind::kBounds: return "bounds";
  }
  return "?";
}

std::optional<QueryKind> query_kind_from_name(const std::string& name) {
  const std::string s = lower(name);
  if (s == "bandwidth") return QueryKind::kBandwidth;
  if (s == "estimate") return QueryKind::kEstimate;
  if (s == "max_host" || s == "maxhost" || s == "max-host") {
    return QueryKind::kMaxHost;
  }
  if (s == "bounds") return QueryKind::kBounds;
  return std::nullopt;
}

const char* router_choice_name(RouterChoice r) {
  switch (r) {
    case RouterChoice::kDefault: return "default";
    case RouterChoice::kBfs: return "bfs";
    case RouterChoice::kValiant: return "valiant";
  }
  return "?";
}

std::optional<RouterChoice> router_from_name(const std::string& name) {
  const std::string s = lower(name);
  if (s == "default") return RouterChoice::kDefault;
  if (s == "bfs") return RouterChoice::kBfs;
  if (s == "valiant") return RouterChoice::kValiant;
  return std::nullopt;
}

std::optional<TrafficKind> traffic_from_name(const std::string& name) {
  const std::string s = lower(name);
  if (s == "symmetric") return TrafficKind::kSymmetric;
  if (s == "quasi-symmetric" || s == "quasi_symmetric" || s == "quasi") {
    return TrafficKind::kQuasiSymmetric;
  }
  if (s == "permutation") return TrafficKind::kPermutation;
  if (s == "bit-reversal" || s == "bit_reversal" || s == "bitrev") {
    return TrafficKind::kBitReversal;
  }
  if (s == "transpose") return TrafficKind::kTranspose;
  if (s == "hotspot") return TrafficKind::kHotspot;
  return std::nullopt;
}

std::optional<Arbitration> arbitration_from_name(const std::string& name) {
  const std::string s = lower(name);
  if (s == "farthest-first" || s == "farthest_first" || s == "farthest") {
    return Arbitration::kFarthestFirst;
  }
  if (s == "fifo") return Arbitration::kFifo;
  if (s == "random") return Arbitration::kRandom;
  return std::nullopt;
}

std::optional<FamilySpec> parse_family(const std::string& name) {
  std::string base = name;
  std::optional<unsigned> k;
  std::size_t digits = 0;
  while (digits < base.size() &&
         std::isdigit(static_cast<unsigned char>(base[base.size() - 1 - digits]))) {
    ++digits;
  }
  if (digits > 0 && digits < base.size()) {
    // A suffix too long to be a sane dimension ("mesh99999999999999999999")
    // is a parse error, not a std::stoul out_of_range crash; 9 digits keeps
    // the value safely inside unsigned range.
    if (digits > 9) return std::nullopt;
    k = static_cast<unsigned>(std::stoul(base.substr(base.size() - digits)));
    base = base.substr(0, base.size() - digits);
  }
  // Static lowercase-name index: parse_family sits on the daemon's
  // per-request path, where re-lowercasing the whole registry per call was
  // a measurable slice of the cache-hit budget.
  static const auto* const by_name = [] {
    auto* m = new std::unordered_map<std::string, Family>();
    for (Family f : all_families()) (*m)[lower(family_name(f))] = f;
    return m;
  }();
  const auto it = by_name->find(lower(base));
  if (it == by_name->end()) return std::nullopt;
  // A dimension suffix only makes sense for dimensional families
  // ("mesh2"); reject "ccc3" rather than silently dropping the 3.
  if (k && !family_is_dimensional(it->second)) return std::nullopt;
  return FamilySpec{it->second, k};
}

std::string Query::canonical_string() const {
  std::string s = query_kind_name(kind);
  const auto field = [&s](const char* name) {
    s += '|';
    s += name;
    s += '=';
  };
  field("family");
  s += family_name(family);
  if (family_is_dimensional(family)) {
    field("k");
    append_num(s, k);
  }
  switch (kind) {
    case QueryKind::kBandwidth:
      field("n");
      append_num(s, n);
      break;
    case QueryKind::kEstimate:
      field("n");
      append_num(s, n);
      field("router");
      s += router_choice_name(router);
      field("traffic");
      s += traffic_kind_name(traffic);
      field("arbitration");
      s += arbitration_name(arbitration);
      field("seed");
      append_num(s, static_cast<double>(seed));
      field("trials");
      append_num(s, trials);
      // A proper trial sub-range forks the identity; the full range is
      // normalized away at parse time so a "[0, trials)" shard shares its
      // cache entry with the plain unsharded query (docs/SCATTER.md).
      if (has_trial_range()) {
        field("trial_lo");
        append_num(s, trial_lo);
        field("trial_hi");
        append_num(s, trial_hi);
      }
      break;
    case QueryKind::kMaxHost:
    case QueryKind::kBounds:
      field("n");
      append_num(s, n);
      field("host");
      s += family_name(host_family);
      if (family_is_dimensional(host_family)) {
        field("host_k");
        append_num(s, host_k);
      }
      if (kind == QueryKind::kBounds) {
        field("m");
        append_num(s, m);
      }
      break;
  }
  return s;
}

std::uint64_t Query::cache_key() const { return fnv1a64(canonical_string()); }

std::optional<Query> query_from_json(const Json& request, std::string* error) {
  const auto fail = [error](const std::string& msg) -> std::optional<Query> {
    if (error) *error = msg;
    return std::nullopt;
  };
  if (!request.is_object()) return fail("request must be a JSON object");

  Query q;
  const Json& op = request["op"];
  if (!op.is_string()) return fail("missing string field 'op'");
  const auto kind = query_kind_from_name(op.as_string());
  if (!kind) return fail("unknown op '" + op.as_string() + "'");
  q.kind = *kind;

  // "guest" is an accepted alias for "family" (natural on the two-machine
  // kinds); when both are present, "guest" wins.
  if (!request.contains("family") && !request.contains("guest")) {
    return fail("missing field 'family'");
  }
  if (request.contains("family")) {
    const auto spec = parse_family(request["family"].as_string());
    if (!spec) {
      return fail("unknown family '" + request["family"].as_string() + "'");
    }
    q.family = spec->family;
    if (spec->k) q.k = *spec->k;
  }
  if (request.contains("guest")) {
    const auto spec = parse_family(request["guest"].as_string());
    if (!spec) {
      return fail("unknown guest family '" + request["guest"].as_string() +
                  "'");
    }
    q.family = spec->family;
    if (spec->k) q.k = *spec->k;
  }
  if (request.contains("k")) {
    const std::int64_t k = request["k"].as_int(-1);
    if (k < 1 || k > 8) return fail("'k' must be in [1, 8]");
    q.k = static_cast<unsigned>(k);
  }
  if (request.contains("n")) {
    const double n = request["n"].as_number(-1.0);
    if (!(n >= 2.0) || !std::isfinite(n)) return fail("'n' must be >= 2");
    q.n = n;
  }

  if (q.kind == QueryKind::kMaxHost || q.kind == QueryKind::kBounds) {
    if (!request.contains("host")) return fail("missing field 'host'");
    const auto spec = parse_family(request["host"].as_string());
    if (!spec) {
      return fail("unknown host family '" + request["host"].as_string() + "'");
    }
    q.host_family = spec->family;
    if (spec->k) q.host_k = *spec->k;
    if (request.contains("host_k")) {
      const std::int64_t hk = request["host_k"].as_int(-1);
      if (hk < 1 || hk > 8) return fail("'host_k' must be in [1, 8]");
      q.host_k = static_cast<unsigned>(hk);
    }
    if (request.contains("m")) {
      const double m = request["m"].as_number(-1.0);
      if (!(m >= 0.0) || !std::isfinite(m)) return fail("'m' must be >= 0");
      q.m = m;
    }
  }

  if (q.kind == QueryKind::kEstimate) {
    if (q.n > 1e7) return fail("'n' too large for simulation (max 1e7)");
    if (request.contains("router")) {
      const auto r = router_from_name(request["router"].as_string());
      if (!r) return fail("unknown router '" + request["router"].as_string() +
                          "' (default|bfs|valiant)");
      q.router = *r;
    }
    if (request.contains("traffic")) {
      const auto t = traffic_from_name(request["traffic"].as_string());
      if (!t) {
        return fail("unknown traffic '" + request["traffic"].as_string() +
                    "'");
      }
      q.traffic = *t;
    }
    if (request.contains("arbitration")) {
      const auto a = arbitration_from_name(request["arbitration"].as_string());
      if (!a) {
        return fail("unknown arbitration '" +
                    request["arbitration"].as_string() + "'");
      }
      q.arbitration = *a;
    }
    if (request.contains("seed")) q.seed = request["seed"].as_uint(1);
    if (request.contains("trials")) {
      const std::int64_t t = request["trials"].as_int(-1);
      if (t < 1 || t > 64) return fail("'trials' must be in [1, 64]");
      q.trials = static_cast<unsigned>(t);
    }
    if (request.contains("trial_lo") || request.contains("trial_hi")) {
      const std::int64_t lo =
          request.contains("trial_lo") ? request["trial_lo"].as_int(-1) : 0;
      const std::int64_t hi = request.contains("trial_hi")
                                  ? request["trial_hi"].as_int(-1)
                                  : static_cast<std::int64_t>(q.trials);
      if (lo < 0 || hi <= lo || hi > static_cast<std::int64_t>(q.trials)) {
        return fail("'trial_lo'/'trial_hi' must satisfy 0 <= lo < hi <= "
                    "trials");
      }
      q.trial_lo = static_cast<unsigned>(lo);
      q.trial_hi = static_cast<unsigned>(hi);
      // Normalize the full range to "unset" so the shard's content address
      // collides with the plain query's.
      if (q.trial_lo == 0 && q.trial_hi == q.trials) {
        q.trial_hi = 0;
      }
    }
  } else if (request.contains("trial_lo") || request.contains("trial_hi")) {
    return fail("'trial_lo'/'trial_hi' apply to op 'estimate' only");
  }

  if (request.contains("deadline_ms")) {
    q.deadline_ms = request["deadline_ms"].as_uint(0);
  }
  if (request.contains("refresh")) {
    const Json& r = request["refresh"];
    if (!r.is_bool()) return fail("'refresh' must be a boolean");
    q.refresh = r.as_bool();
  }
  if (request.contains("client")) {
    const Json& c = request["client"];
    if (!c.is_string()) return fail("'client' must be a string");
    q.client = c.as_string();
    if (q.client.size() > 64) {
      return fail("'client' must be at most 64 characters");
    }
  }
  if (request.contains("trace")) {
    const Json& t = request["trace"];
    if (!t.is_string()) return fail("'trace' must be a hex64 string");
    q.trace_id = scope::parse_trace_id(t.as_string());
    if (q.trace_id == 0) {
      return fail("'trace' must be a nonzero 16-digit hex id");
    }
  }
  if (error) error->clear();
  return q;
}

Json query_to_json(const Query& q) {
  Json doc = Json::object();
  doc["op"] = query_kind_name(q.kind);
  doc["family"] = family_name(q.family);
  if (family_is_dimensional(q.family)) doc["k"] = q.k;
  doc["n"] = q.n;
  switch (q.kind) {
    case QueryKind::kBandwidth:
      break;
    case QueryKind::kEstimate:
      doc["router"] = router_choice_name(q.router);
      doc["traffic"] = traffic_kind_name(q.traffic);
      doc["arbitration"] = arbitration_name(q.arbitration);
      doc["seed"] = q.seed;
      doc["trials"] = q.trials;
      if (q.has_trial_range()) {
        doc["trial_lo"] = q.trial_lo;
        doc["trial_hi"] = q.trial_hi;
      }
      break;
    case QueryKind::kMaxHost:
    case QueryKind::kBounds:
      doc["host"] = family_name(q.host_family);
      if (family_is_dimensional(q.host_family)) doc["host_k"] = q.host_k;
      if (q.kind == QueryKind::kBounds) doc["m"] = q.m;
      break;
  }
  if (q.deadline_ms > 0) doc["deadline_ms"] = q.deadline_ms;
  if (q.refresh) doc["refresh"] = true;
  if (q.trace_id != 0) doc["trace"] = hex64(q.trace_id);
  if (!q.client.empty()) doc["client"] = q.client;
  return doc;
}

}  // namespace netemu
