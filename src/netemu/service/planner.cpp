#include "netemu/service/planner.hpp"

#include <cmath>
#include <stdexcept>

#include "netemu/bandwidth/theory.hpp"
#include "netemu/emulation/bounds.hpp"
#include "netemu/emulation/host_size.hpp"
#include "netemu/routing/throughput.hpp"
#include "netemu/topology/factory.hpp"

namespace netemu {

namespace {

std::vector<Vertex> processor_list(const Machine& m) {
  if (!m.processors.empty()) return m.processors;
  std::vector<Vertex> all(m.graph.num_vertices());
  for (std::size_t i = 0; i < all.size(); ++i) {
    all[i] = static_cast<Vertex>(i);
  }
  return all;
}

bool is_power_of_two(std::size_t v) { return v != 0 && (v & (v - 1)) == 0; }

bool is_perfect_square(std::size_t v) {
  const auto r = static_cast<std::size_t>(std::lround(std::sqrt(double(v))));
  return r * r == v;
}

TrafficDistribution make_traffic(const Query& q, const Machine& machine,
                                 Prng& rng) {
  std::vector<Vertex> procs = processor_list(machine);
  switch (q.traffic) {
    case TrafficKind::kSymmetric:
      return TrafficDistribution::symmetric(std::move(procs));
    case TrafficKind::kQuasiSymmetric:
      return TrafficDistribution::quasi_symmetric(std::move(procs),
                                                  /*fraction=*/0.25, q.seed);
    case TrafficKind::kPermutation:
      return TrafficDistribution::permutation(std::move(procs), rng);
    case TrafficKind::kBitReversal:
      if (!is_power_of_two(procs.size())) {
        throw std::runtime_error(
            "bit-reversal traffic needs a power-of-two processor count, got " +
            std::to_string(procs.size()));
      }
      return TrafficDistribution::bit_reversal(std::move(procs));
    case TrafficKind::kTranspose:
      if (!is_perfect_square(procs.size())) {
        throw std::runtime_error(
            "transpose traffic needs a square processor count, got " +
            std::to_string(procs.size()));
      }
      return TrafficDistribution::transpose(std::move(procs));
    case TrafficKind::kHotspot:
      return TrafficDistribution::hotspot(std::move(procs),
                                          /*hot_fraction=*/0.1, rng);
  }
  throw std::runtime_error("unhandled traffic kind");
}

Json machine_info(const Machine& m) {
  Json info = Json::object();
  info["name"] = m.name;
  info["family"] = family_name(m.family);
  info["n"] = m.num_vertices();
  info["processors"] = m.num_processors();
  return info;
}

Json slowdown_info(const SlowdownBounds& b) {
  Json doc = Json::object();
  doc["load"] = b.load;
  doc["bandwidth"] = b.bandwidth;
  doc["combined"] = b.combined;
  return doc;
}

}  // namespace

Json plan_bandwidth(const Query& q) {
  const AsymFn beta = beta_theory(q.family, q.k);
  const AsymFn lambda = lambda_theory(q.family, q.k);
  Json doc = Json::object();
  doc["family"] = family_name(q.family);
  if (family_is_dimensional(q.family)) doc["k"] = q.k;
  doc["n"] = q.n;
  Json beta_doc = Json::object();
  beta_doc["theta"] = beta.theta_string();
  beta_doc["value"] = beta(q.n);
  doc["beta"] = std::move(beta_doc);
  Json lambda_doc = Json::object();
  lambda_doc["theta"] = lambda.theta_string();
  lambda_doc["value"] = lambda(q.n);
  doc["lambda"] = std::move(lambda_doc);
  doc["bottleneck_free"] = is_bottleneck_free(q.family);
  doc["theorem"] = theorem_for_guest(q.family);
  return doc;
}

Json plan_estimate(const Query& q, ThreadPool* pool,
                   const CancelToken& cancel) {
  Prng rng(q.seed);
  const Machine machine =
      make_machine(q.family, static_cast<std::size_t>(q.n), q.k, rng);

  std::unique_ptr<Router> router;
  switch (q.router) {
    case RouterChoice::kDefault: router = make_default_router(machine); break;
    case RouterChoice::kBfs: router = make_bfs_router(machine); break;
    case RouterChoice::kValiant: router = make_valiant_router(machine); break;
  }
  router->set_cancel_token(cancel);

  const TrafficDistribution traffic = make_traffic(q, machine, rng);

  ThroughputOptions options;
  options.trials = q.trials;
  options.trial_lo = q.trial_lo;
  options.trial_hi = q.trial_hi;
  options.arbitration = q.arbitration;
  options.pool = pool;
  options.cancel = cancel;
  const ThroughputResult r =
      measure_throughput(machine, *router, traffic, rng, options);

  Json doc = Json::object();
  doc["beta_hat"] = r.rate;
  doc["beta_hat_min"] = r.rate_min;
  doc["beta_hat_max"] = r.rate_max;
  Json spread = Json::array();
  for (const double rate : r.trial_rates) spread.items().emplace_back(rate);
  doc["trial_rates"] = std::move(spread);
  doc["machine"] = machine_info(machine);
  doc["router"] = router->name();
  doc["traffic"] = traffic_kind_name(q.traffic);
  doc["arbitration"] = arbitration_name(q.arbitration);
  doc["seed"] = q.seed;
  doc["trials"] = q.trials;
  if (q.has_trial_range()) {
    // Shard identity for the scatter merger: trial_rates covers exactly
    // [trial_lo, trial_lo + len) of the full sweep (docs/SCATTER.md).
    doc["trial_lo"] = q.trial_lo;
    doc["trial_hi"] = q.trial_hi;
  }
  doc["messages"] = r.messages;
  doc["makespan"] = r.last.makespan;
  doc["avg_latency"] = r.last.avg_latency;
  doc["static_congestion"] = r.last.static_congestion;
  doc["simulated_ticks"] = r.total_ticks;
  if (r.degraded) {
    // Deadline-bounded partial result: the executor keeps it out of the
    // cache and the client sees which slice of the sweep actually ran.
    doc["degraded"] = true;
    doc["trials_completed"] = r.trials_completed;
  }
  return doc;
}

Json plan_max_host(const Query& q) {
  const HostSpec host{q.host_family, q.host_k};
  const HostSizeEntry entry = max_host_size(q.family, q.k, q.n, host);
  const SlowdownBounds at_max = slowdown_bounds(
      q.family, q.k, q.n, q.host_family, q.host_k, entry.numeric);

  Json doc = Json::object();
  doc["guest"] = family_name(q.family);
  if (family_is_dimensional(q.family)) doc["k"] = q.k;
  doc["n"] = q.n;
  doc["host"] = host.label();
  doc["guest_beta"] = beta_theory(q.family, q.k).theta_string();
  doc["host_beta"] = beta_theory(q.host_family, q.host_k).theta_string("m");
  doc["max_host_symbolic"] = entry.symbolic;
  doc["max_host_numeric"] = entry.numeric;
  doc["slowdown_at_max"] = slowdown_info(at_max);
  return doc;
}

Json plan_bounds(const Query& q) {
  // m = 0 means "at the maximum efficient host size" — solve it first.
  double m = q.m;
  if (m <= 0.0) {
    m = max_host_size(q.family, q.k, q.n, HostSpec{q.host_family, q.host_k})
            .numeric;
  }
  const SlowdownBounds eet =
      slowdown_bounds(q.family, q.k, q.n, q.host_family, q.host_k, m);

  Json doc = Json::object();
  doc["guest"] = family_name(q.family);
  if (family_is_dimensional(q.family)) doc["k"] = q.k;
  doc["n"] = q.n;
  doc["host"] = HostSpec{q.host_family, q.host_k}.label();
  doc["m"] = m;
  doc["eet"] = slowdown_info(eet);

  // Koch et al. baselines, where their preconditions hold.
  Json baselines = Json::object();
  if (q.family == Family::kTree && q.host_family == Family::kMesh) {
    baselines["distance_tree_on_mesh"] =
        koch_distance_bound_tree_on_mesh(q.n, q.host_k);
  }
  if (q.family == Family::kMesh && q.host_family == Family::kMesh &&
      q.host_k < q.k) {
    baselines["congestion_mesh_on_mesh"] =
        koch_congestion_bound_mesh_on_mesh(q.k, q.host_k, m);
  }
  if (q.family == Family::kButterfly && q.host_family == Family::kMesh) {
    baselines["congestion_butterfly_on_mesh_lg"] =
        koch_congestion_bound_butterfly_on_mesh_lg(q.host_k, m);
  }
  doc["baselines"] = std::move(baselines);
  return doc;
}

Json plan_query(const Query& q, ThreadPool* pool, const CancelToken& cancel) {
  switch (q.kind) {
    case QueryKind::kBandwidth: return plan_bandwidth(q);
    case QueryKind::kEstimate: return plan_estimate(q, pool, cancel);
    case QueryKind::kMaxHost: return plan_max_host(q);
    case QueryKind::kBounds: return plan_bounds(q);
  }
  throw std::runtime_error("unhandled query kind");
}

}  // namespace netemu
