#include "netemu/service/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <memory>

#include "netemu/service/protocol.hpp"

namespace netemu {

Client::Client() = default;

Client::~Client() { close(); }

void Client::close() {
  channel_.reset();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Client::connect(std::uint16_t port, std::string* error) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    if (error) *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (error) {
      *error = "connect 127.0.0.1:" + std::to_string(port) + ": " +
               std::strerror(errno);
    }
    close();
    return false;
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (error) error->clear();
  return true;
}

bool Client::request_raw(const std::string& request_line,
                         std::string& response_line) {
  if (fd_ < 0) return false;
  // A fresh LineChannel per request would lose buffered bytes between
  // requests; keep one per connection.
  if (!channel_) channel_ = std::make_unique<LineChannel>(fd_);
  if (!channel_->write_line(request_line)) return false;
  return channel_->read_line(response_line);
}

std::optional<Json> Client::request(const Json& request_doc,
                                    std::string* error) {
  std::string response_line;
  if (!request_raw(request_doc.dump(), response_line)) {
    if (error) *error = "transport failure (daemon gone?)";
    return std::nullopt;
  }
  std::string parse_error;
  Json doc = Json::parse(response_line, &parse_error);
  if (!parse_error.empty()) {
    if (error) *error = "bad response: " + parse_error;
    return std::nullopt;
  }
  if (error) error->clear();
  return doc;
}

}  // namespace netemu
