#include "netemu/service/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <memory>
#include <thread>

#include "netemu/service/protocol.hpp"

namespace netemu {

const char* request_failure_name(RequestFailure f) {
  switch (f) {
    case RequestFailure::kNone: return "none";
    case RequestFailure::kConnectRefused: return "connect_refused";
    case RequestFailure::kTransport: return "transport";
    case RequestFailure::kProtocol: return "protocol";
    case RequestFailure::kOverloaded: return "overloaded";
  }
  return "unknown";
}

Client::Client() : Client(RetryPolicy()) {}

Client::Client(RetryPolicy policy)
    : policy_(policy),
      jitter_(policy.jitter_seed != 0
                  ? policy.jitter_seed
                  : reinterpret_cast<std::uintptr_t>(this) ^
                        0x9E3779B97F4A7C15ULL) {
  if (policy_.max_attempts < 1) policy_.max_attempts = 1;
}

Client::~Client() { close(); }

void Client::close() {
  channel_.reset();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Client::set_fault_injector(FaultInjector* injector) {
  faults_ = injector;
  if (channel_) channel_->set_fault_injector(injector);
}

bool Client::connect(std::uint16_t port, std::string* error) {
  close();
  connect_errno_ = 0;
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    connect_errno_ = errno;
    if (error) *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    connect_errno_ = errno;
    if (error) {
      *error = "connect 127.0.0.1:" + std::to_string(port) + ": " +
               std::strerror(errno);
    }
    close();
    return false;
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  // A per-attempt socket timeout turns a hung server into a transport
  // failure the retry loop can handle, instead of blocking forever.
  apply_socket_timeout(policy_.attempt_timeout_ms);
  socket_timeout_overridden_ = false;
  port_ = port;
  if (error) error->clear();
  return true;
}

bool Client::reconnect(std::string* error) {
  if (port_ == 0) {
    if (error) *error = "not connected (no port to reconnect to)";
    return false;
  }
  return connect(port_, error);
}

void Client::backoff_sleep(int retry_index, std::uint64_t hint_ms,
                           std::uint64_t cap_ms) {
  // Exponential growth from the base, capped, plus up to 50% jitter so a
  // herd of retrying clients decorrelates.  A server-provided hint
  // (retry_after_ms) overrides the exponential schedule but keeps jitter.
  std::uint64_t ms = hint_ms;
  if (ms == 0) {
    ms = policy_.base_backoff_ms;
    for (int i = 0; i < retry_index && ms < policy_.max_backoff_ms; ++i) {
      ms *= 2;
    }
  }
  ms = std::min<std::uint64_t>(ms, policy_.max_backoff_ms);
  if (ms == 0) return;
  ms += jitter_.below(ms / 2 + 1);
  // The deadline budget wins over both the schedule and the server's hint:
  // sleeping past it just converts a slow failure into a late one.
  if (cap_ms > 0) ms = std::min(ms, cap_ms);
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

void Client::apply_socket_timeout(std::uint64_t timeout_ms) {
  if (fd_ < 0) return;
  timeval tv{};  // zero-valued = no timeout (the socket default)
  tv.tv_sec = static_cast<time_t>(timeout_ms / 1000);
  tv.tv_usec = static_cast<long>(timeout_ms % 1000) * 1000;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

bool Client::request_raw(const std::string& request_line,
                         std::string& response_line) {
  if (fd_ < 0) return false;
  // A fresh LineChannel per request would lose buffered bytes between
  // requests; keep one per connection.
  if (!channel_) {
    channel_ = std::make_unique<LineChannel>(fd_);
    channel_->set_fault_injector(faults_);
  }
  if (!channel_->write_line(request_line)) return false;
  return channel_->read_line(response_line);
}

Client::RequestOutcome Client::request_outcome(const Json& request_doc) {
  const std::string request_line = request_doc.dump();
  std::string response_line;

  // A "deadline_ms" field is ONE budget for the whole request, retries
  // included — measured from here, so every backoff sleep and every
  // attempt's socket timeout draws from what is left of the window.
  const std::uint64_t budget_ms = request_doc["deadline_ms"].as_uint(0);
  const auto budget_start = std::chrono::steady_clock::now();
  const auto remaining_ms = [&]() -> std::uint64_t {
    const auto spent = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - budget_start)
                           .count();
    const auto spent_ms = static_cast<std::uint64_t>(std::max<long long>(
        0, static_cast<long long>(spent)));
    return spent_ms >= budget_ms ? 0 : budget_ms - spent_ms;
  };

  RequestOutcome out;
  out.error = "not connected";
  out.failure = RequestFailure::kTransport;

  for (int attempt = 1; attempt <= policy_.max_attempts; ++attempt) {
    out.attempts = attempt;
    // True when another attempt should run (counting the retry and backing
    // off first); false ends the request — either the attempt allowance or
    // the deadline budget ran out, the latter annotated in out.error.
    const auto retry_after = [&](std::uint64_t hint_ms) {
      if (attempt >= policy_.max_attempts) return false;
      std::uint64_t cap = 0;
      if (budget_ms > 0) {
        cap = remaining_ms();
        if (cap == 0) {
          out.error += " (deadline budget exhausted)";
          return false;
        }
      }
      ++retries_;
      backoff_sleep(attempt - 1, hint_ms, cap);
      return true;
    };
    if (fd_ < 0 && !reconnect(&out.error)) {
      if (connect_errno_ == ECONNREFUSED) {
        // The backend process is gone: more attempts against the same port
        // will also be refused, and a backoff sleep only delays the
        // caller's failover.  Fail fast.
        out.failure = RequestFailure::kConnectRefused;
        return out;
      }
      out.failure = RequestFailure::kTransport;
      if (retry_after(0)) continue;
      return out;
    }
    if (budget_ms > 0) {
      // Cap this attempt's socket timeout to the budget remainder so one
      // hung read cannot blow the whole deadline (a zero remainder still
      // arms 1 ms: a zero timeout would mean "block forever").
      std::uint64_t cap = std::max<std::uint64_t>(remaining_ms(), 1);
      if (policy_.attempt_timeout_ms > 0) {
        cap = std::min<std::uint64_t>(cap, policy_.attempt_timeout_ms);
      }
      apply_socket_timeout(cap);
      socket_timeout_overridden_ = true;
    } else if (socket_timeout_overridden_) {
      // A previous budgeted request shortened this connection's timeouts;
      // put the policy value back before an unbudgeted exchange.
      apply_socket_timeout(policy_.attempt_timeout_ms);
      socket_timeout_overridden_ = false;
    }
    if (!request_raw(request_line, response_line)) {
      out.error = "transport failure (daemon gone?)";
      out.failure = RequestFailure::kTransport;
      close();  // the stream may be desynced; retry on a fresh connection
      if (retry_after(0)) continue;
      return out;
    }
    std::string parse_error;
    Json doc = Json::parse(response_line, &parse_error);
    if (!parse_error.empty()) {
      out.error = "bad response: " + parse_error;
      out.failure = RequestFailure::kProtocol;
      close();
      if (retry_after(0)) continue;
      return out;
    }
    if (!doc["ok"].as_bool() && doc["overloaded"].as_bool()) {
      if (policy_.retry_overloaded) {
        // Shed by admission control: the connection is fine, the server is
        // just full.  Honor its hint, then try again without reconnecting.
        out.error = doc["error"].as_string();
        if (retry_after(doc["retry_after_ms"].as_uint(0))) continue;
      }
      // Final answer is a shed: hand the document back, flagged, so a
      // router can fail the query over to a less-loaded backend.
      out.doc = std::move(doc);
      out.failure = RequestFailure::kOverloaded;
      out.error.clear();
      return out;
    }
    out.doc = std::move(doc);
    out.failure = RequestFailure::kNone;
    out.error.clear();
    return out;
  }
  return out;
}

std::optional<Json> Client::request(const Json& request_doc,
                                    std::string* error) {
  RequestOutcome out = request_outcome(request_doc);
  if (out.doc) {
    if (error) error->clear();
    return std::move(out.doc);
  }
  if (error) {
    *error = out.error + " (after " + std::to_string(out.attempts) +
             (out.attempts == 1 ? " attempt)" : " attempts)");
  }
  return std::nullopt;
}

}  // namespace netemu
