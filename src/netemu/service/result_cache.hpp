#pragma once
// Content-addressed result cache: an in-memory LRU layer over an optional
// on-disk file, keyed by Query::cache_key().
//
// Values are the serialized result documents (JSON text), so a cache hit is
// a string copy — no recomputation, no re-serialization.  The disk file
// holds every entry present in memory at save() time; load() merges the
// file's entries as the cold end of the LRU, so a restarted daemon keeps its
// expensive beta-hat estimates but evicts them first if the working set has
// moved on.
//
// Crash safety: the v2 disk format is line-delimited — a header line, then
// one checksummed JSON object per entry, hot to cold.  Writes go to a temp
// file renamed into place, so an interrupted save normally leaves the old
// file untouched; if a torn file does reach disk (power loss between the
// data write and the rename barrier, fs corruption, an injected fault), the
// loader verifies each line's checksum independently, quarantines bad
// entries (counted, skipped) and keeps every intact one — it never aborts
// and never crashes.  The v1 whole-document format is still read.
//
// Write-ahead journal (opt-in): with journaling on, every live put() also
// appends a checksummed entry line to `<path>.wal` and fsyncs it, so a
// process killed between snapshots (SIGKILL, power loss) rejoins warm:
// load() reads the snapshot, then replays the journal on top of it (newer
// entries win).  A successful save() resets the journal — it only ever
// holds the entries written since the last complete snapshot.  Journal
// lines use the same per-entry checksum as the snapshot, so a tear at any
// byte offset costs at most the entries past the tear (see docs/SERVICE.md).
//
// Thread-safe; every public method takes the internal mutex.

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace netemu {

class FaultInjector;

class ResultCache {
 public:
  /// capacity = max resident entries (>= 1); path empty = memory-only.
  /// journal = append live puts to `<path>.wal` (ignored without a path).
  explicit ResultCache(std::size_t capacity, std::string path = "",
                       bool journal = false);
  ~ResultCache();

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Lookup; refreshes LRU recency on hit.
  std::optional<std::string> get(std::uint64_t key);

  /// Speculative lookup for a fast path that falls back to the full request
  /// pipeline on a miss: a hit behaves exactly like get() (recency refresh,
  /// hit counter), a miss is NOT counted — the fallback path re-probes with
  /// get() and owns the authoritative miss accounting, so the counters stay
  /// one-increment-per-request.
  std::optional<std::string> get_if_hit(std::uint64_t key);

  /// Insert or overwrite; evicts the least-recently-used entry when full.
  /// With journaling on, also appends the entry to the WAL (fsync'd).
  void put(std::uint64_t key, std::string value);

  /// Merge entries from the disk file (oldest recency; existing in-memory
  /// entries win), then — with journaling on — replay the WAL on top (WAL
  /// entries are newer than the snapshot, so they win and land hot).
  /// Corrupt entries are quarantined (see corrupt_entries()) and loading
  /// continues.  False when neither a snapshot nor any journal entry
  /// survives.
  bool load();

  /// Write every resident entry to the disk file (atomic temp-file+rename,
  /// per-entry checksums), then reset the WAL — its entries are now in the
  /// snapshot.  False when the cache has no path or the write fails (see
  /// save_failures()); a failed save leaves the WAL untouched.
  bool save();

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  const std::string& path() const { return path_; }
  bool journal_enabled() const { return journal_; }
  /// The journal sits beside the snapshot: `<path>.wal`.
  std::string wal_path() const { return path_.empty() ? "" : path_ + ".wal"; }

  std::uint64_t hits() const;
  std::uint64_t misses() const;
  /// Disk entries dropped by load() for checksum/parse failures.
  std::uint64_t corrupt_entries() const;
  /// save() calls that did not produce a complete file.
  std::uint64_t save_failures() const;
  /// Journal entry lines appended (fsync'd) so far.
  std::uint64_t wal_appends() const;
  /// Journal entries recovered by the last load().
  std::uint64_t wal_replayed() const;
  /// Journal appends that failed (write error or injected disk fault).
  std::uint64_t wal_append_failures() const;

  /// Check that `path` (and, by extension, the WAL beside it) is writable
  /// by creating and removing a probe file.  Sets *error to an actionable
  /// message on failure.  Static so callers can check before constructing.
  static bool probe_path(const std::string& path, std::string* error);

  /// Route persistence through a fault injector (chaos testing): saves may
  /// fail cleanly or leave a torn (truncated) file behind; journal appends
  /// share the same fault stream.  Not owned; must outlive the cache.
  /// nullptr disables.
  void set_fault_injector(FaultInjector* injector);

 private:
  struct Entry {
    std::uint64_t key;
    std::string value;
  };

  void put_locked(std::uint64_t key, std::string value, bool front);
  bool load_v1(const std::string& text);
  bool load_snapshot();
  bool replay_wal_locked();
  void wal_append_locked(std::uint64_t key, const std::string& value);
  bool wal_open_locked(bool truncate);
  void wal_reset_locked();

  const std::size_t capacity_;
  const std::string path_;
  const bool journal_;

  mutable std::mutex mutex_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t corrupt_entries_ = 0;
  std::uint64_t save_failures_ = 0;
  std::uint64_t wal_appends_ = 0;
  std::uint64_t wal_replayed_ = 0;
  std::uint64_t wal_append_failures_ = 0;
  int wal_fd_ = -1;
  FaultInjector* faults_ = nullptr;
};

}  // namespace netemu
