#pragma once
// Content-addressed result cache: an in-memory LRU layer over an optional
// on-disk file, keyed by Query::cache_key().
//
// Values are the serialized result documents (JSON text), so a cache hit is
// a string copy — no recomputation, no re-serialization.  The disk file
// holds every entry present in memory at save() time; load() merges the
// file's entries as the cold end of the LRU, so a restarted daemon keeps its
// expensive beta-hat estimates but evicts them first if the working set has
// moved on.
//
// Crash safety: the v2 disk format is line-delimited — a header line, then
// one checksummed JSON object per entry, hot to cold.  Writes go to a temp
// file renamed into place, so an interrupted save normally leaves the old
// file untouched; if a torn file does reach disk (power loss between the
// data write and the rename barrier, fs corruption, an injected fault), the
// loader verifies each line's checksum independently, quarantines bad
// entries (counted, skipped) and keeps every intact one — it never aborts
// and never crashes.  The v1 whole-document format is still read.
//
// Thread-safe; every public method takes the internal mutex.

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace netemu {

class FaultInjector;

class ResultCache {
 public:
  /// capacity = max resident entries (>= 1); path empty = memory-only.
  explicit ResultCache(std::size_t capacity, std::string path = "");

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Lookup; refreshes LRU recency on hit.
  std::optional<std::string> get(std::uint64_t key);

  /// Insert or overwrite; evicts the least-recently-used entry when full.
  void put(std::uint64_t key, std::string value);

  /// Merge entries from the disk file (oldest recency; existing in-memory
  /// entries win).  Corrupt entries are quarantined (see corrupt_entries())
  /// and loading continues.  False when the file is absent, unreadable, or
  /// no header survives.
  bool load();

  /// Write every resident entry to the disk file (atomic temp-file+rename,
  /// per-entry checksums).  False when the cache has no path or the write
  /// fails (see save_failures()).
  bool save();

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  const std::string& path() const { return path_; }

  std::uint64_t hits() const;
  std::uint64_t misses() const;
  /// Disk entries dropped by load() for checksum/parse failures.
  std::uint64_t corrupt_entries() const;
  /// save() calls that did not produce a complete file.
  std::uint64_t save_failures() const;

  /// Route persistence through a fault injector (chaos testing): saves may
  /// fail cleanly or leave a torn (truncated) file behind.  Not owned;
  /// must outlive the cache.  nullptr disables.
  void set_fault_injector(FaultInjector* injector);

 private:
  struct Entry {
    std::uint64_t key;
    std::string value;
  };

  void put_locked(std::uint64_t key, std::string value, bool front);
  bool load_v1(const std::string& text);

  const std::size_t capacity_;
  const std::string path_;

  mutable std::mutex mutex_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t corrupt_entries_ = 0;
  std::uint64_t save_failures_ = 0;
  FaultInjector* faults_ = nullptr;
};

}  // namespace netemu
