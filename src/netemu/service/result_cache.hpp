#pragma once
// Content-addressed result cache: an in-memory LRU layer over an optional
// on-disk JSON file, keyed by Query::cache_key().
//
// Values are the serialized result documents (JSON text), so a cache hit is
// a string copy — no recomputation, no re-serialization.  The disk file
// holds every entry present in memory at save() time; load() merges the
// file's entries as the cold end of the LRU, so a restarted daemon keeps its
// expensive beta-hat estimates but evicts them first if the working set has
// moved on.
//
// Thread-safe; every public method takes the internal mutex.

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace netemu {

class ResultCache {
 public:
  /// capacity = max resident entries (>= 1); path empty = memory-only.
  explicit ResultCache(std::size_t capacity, std::string path = "");

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Lookup; refreshes LRU recency on hit.
  std::optional<std::string> get(std::uint64_t key);

  /// Insert or overwrite; evicts the least-recently-used entry when full.
  void put(std::uint64_t key, std::string value);

  /// Merge entries from the disk file (oldest recency; existing in-memory
  /// entries win).  No-op and false when the file is absent or malformed.
  bool load();

  /// Write every resident entry to the disk file (atomic rename).  False
  /// when the cache has no path or the write fails.
  bool save();

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  const std::string& path() const { return path_; }

  std::uint64_t hits() const;
  std::uint64_t misses() const;

 private:
  struct Entry {
    std::uint64_t key;
    std::string value;
  };

  void put_locked(std::uint64_t key, std::string value, bool front);

  const std::size_t capacity_;
  const std::string path_;

  mutable std::mutex mutex_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace netemu
