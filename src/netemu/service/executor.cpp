#include "netemu/service/executor.hpp"

#include <chrono>
#include <exception>

#include "netemu/service/planner.hpp"

namespace netemu {

namespace {
using Clock = std::chrono::steady_clock;

double micros_since(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}
}  // namespace

QueryExecutor::QueryExecutor() : QueryExecutor(Options()) {}

QueryExecutor::QueryExecutor(Options options)
    : options_(std::move(options)),
      cache_(options_.cache_capacity, options_.cache_file),
      pool_(options_.threads) {
  if (!options_.compute) options_.compute = plan_query;
  if (options_.load_cache && !options_.cache_file.empty()) cache_.load();
}

QueryExecutor::~QueryExecutor() {
  // Drain in-flight work first so every accepted computation lands in the
  // cache before it is persisted.
  pool_.shutdown();
  if (!options_.cache_file.empty()) cache_.save();
}

Response QueryExecutor::execute(const Query& q) {
  const auto start = Clock::now();
  const std::uint64_t key = q.cache_key();

  Response response;
  response.key = key;

  if (auto cached = cache_.get(key)) {
    std::lock_guard lock(mutex_);
    ++stats_.requests;
    ++stats_.cache_hits;
    response.ok = true;
    response.cache_hit = true;
    response.result = std::move(*cached);
    response.micros = micros_since(start);
    return response;
  }

  std::shared_ptr<Flight> flight;
  bool leader = false;
  {
    std::lock_guard lock(mutex_);
    ++stats_.requests;
    const auto it = flights_.find(key);
    if (it != flights_.end()) {
      flight = it->second;
      ++stats_.dedup_joins;
    } else {
      if (pending_ >= options_.max_queue) {
        ++stats_.rejected;
        response.error = "overloaded: admission queue full";
        response.micros = micros_since(start);
        return response;
      }
      flight = std::make_shared<Flight>();
      flights_[key] = flight;
      ++pending_;
      leader = true;
    }
  }

  if (leader) {
    const Query task_query = q;
    const bool accepted = pool_.submit([this, task_query, key, flight] {
      Response computed;
      computed.key = key;
      try {
        computed.result = options_.compute(task_query).dump();
        computed.ok = true;
      } catch (const std::exception& e) {
        computed.error = e.what();
      } catch (...) {
        computed.error = "unknown planner failure";
      }
      {
        std::lock_guard lock(mutex_);
        if (computed.ok) {
          ++stats_.computed;
        } else {
          ++stats_.errors;
        }
        flights_.erase(key);
        --pending_;
      }
      // Errors are not cached: a transient failure should not poison the
      // content address forever.
      if (computed.ok) cache_.put(key, computed.result);
      {
        std::lock_guard flight_lock(flight->mutex);
        flight->response = std::move(computed);
        flight->done = true;
      }
      flight->cv.notify_all();
    });
    if (!accepted) {
      {
        std::lock_guard lock(mutex_);
        flights_.erase(key);
        --pending_;
        ++stats_.rejected;
      }
      // Wake any follower that joined between registration and rejection.
      {
        std::lock_guard flight_lock(flight->mutex);
        flight->response.error = "executor shutting down";
        flight->done = true;
      }
      flight->cv.notify_all();
      response.error = "executor shutting down";
      response.micros = micros_since(start);
      return response;
    }
  }

  const std::uint64_t deadline_ms =
      q.deadline_ms > 0 ? q.deadline_ms : options_.default_deadline_ms;
  {
    std::unique_lock flight_lock(flight->mutex);
    const bool done = flight->cv.wait_for(
        flight_lock, std::chrono::milliseconds(deadline_ms),
        [&flight] { return flight->done; });
    if (!done) {
      {
        std::lock_guard lock(mutex_);
        ++stats_.deadline_exceeded;
      }
      response.error = "deadline exceeded after " +
                       std::to_string(deadline_ms) + " ms";
      response.micros = micros_since(start);
      return response;
    }
    response = flight->response;
  }
  response.key = key;
  response.micros = micros_since(start);
  return response;
}

QueryExecutor::Stats QueryExecutor::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

}  // namespace netemu
