#include "netemu/service/executor.hpp"

#include <algorithm>
#include <exception>
#include <vector>

#include "netemu/faultline/injector.hpp"
#include "netemu/guard/cost.hpp"
#include "netemu/scope/flight_recorder.hpp"
#include "netemu/scope/trace.hpp"
#include "netemu/service/planner.hpp"
#include "netemu/util/hash.hpp"

namespace netemu {

namespace {
using Clock = std::chrono::steady_clock;

double micros_since(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

// Process-global views of executor activity (scope registry).  These are
// deliberately separate from the per-executor Stats/Histogram: a process may
// host several executors (tests do), and the registry aggregates them all
// for the `stats` op and Prometheus exposition.
scope::Histogram& compute_us_hist() {
  static scope::Histogram& h = scope::Registry::global().histogram(
      "netemu_compute_us", "Planner compute wall time per computed query");
  return h;
}

scope::Histogram& execute_us_hist() {
  static scope::Histogram& h = scope::Registry::global().histogram(
      "netemu_execute_us",
      "Executor residency per request (hits, sheds, and computes alike)");
  return h;
}

scope::Counter& requests_counter() {
  static scope::Counter& c = scope::Registry::global().counter(
      "netemu_requests_total", "Requests accepted by any executor");
  return c;
}

scope::Counter& cache_hits_counter() {
  static scope::Counter& c = scope::Registry::global().counter(
      "netemu_cache_hits_total", "Requests answered from the result cache");
  return c;
}

scope::Counter& shed_counter() {
  static scope::Counter& c = scope::Registry::global().counter(
      "netemu_shed_total", "Requests shed by admission control");
  return c;
}

scope::Counter& watchdog_counter() {
  static scope::Counter& c = scope::Registry::global().counter(
      "netemu_watchdog_cancellations_total",
      "Hung flights cancelled by the executor watchdog");
  return c;
}

scope::Counter& compute_cancelled_counter() {
  static scope::Counter& c = scope::Registry::global().counter(
      "netemu_compute_cancelled_total",
      "Computes stopped mid-way by cooperative cancellation "
      "(degraded partial results included)");
  return c;
}

scope::Counter& reclaimed_cpu_counter() {
  static scope::Counter& c = scope::Registry::global().counter(
      "netemu_compute_reclaimed_cpu_ms_total",
      "Estimated CPU milliseconds returned to the pool by cancelling "
      "compute instead of letting it finish");
  return c;
}
}  // namespace

QueryExecutor::QueryExecutor() : QueryExecutor(Options()) {}

QueryExecutor::QueryExecutor(Options options)
    : options_(std::move(options)),
      cache_(options_.cache_capacity, options_.cache_file,
             options_.cache_journal),
      pool_(options_.threads) {
  if (!options_.compute) {
    // Pass the executor's own pool down so estimate trials run concurrently;
    // measure_throughput's collaborative loop makes that safe even though
    // the compute itself occupies a pool worker.
    options_.compute = [this](const Query& q, const CancelToken& cancel) {
      return plan_query(q, &pool_, cancel);
    };
  }
  if (options_.faults) cache_.set_fault_injector(options_.faults);
  if (options_.load_cache && !options_.cache_file.empty()) cache_.load();
  if (options_.guard.enabled) {
    guard::Options gopts = options_.guard;
    if (gopts.cost_budget == 0) {
      // Eight closed-form units per legacy queue slot: the cost gate starts
      // roomier than the count gate for cheap queries and far tighter for
      // heavy estimates, which is the point.
      gopts.cost_budget =
          8 * static_cast<std::uint64_t>(
                  std::max<std::size_t>(1, options_.max_queue));
    }
    guard_ = std::make_unique<guard::Guard>(std::move(gopts),
                                            &execute_us_hist());
    sched_ = std::make_unique<guard::FairScheduler>(
        pool_, guard::FairScheduler::Options{});
  }
  if (options_.hang_timeout_ms > 0) {
    watchdog_ = std::thread([this] { watchdog_loop(); });
  }
}

QueryExecutor::~QueryExecutor() {
  {
    std::lock_guard lock(mutex_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
  // Queued-but-unstarted tasks answer their waiters before the pool goes
  // away; tasks already on a worker drain below.
  if (sched_) sched_->shed_queued();
  // Drain in-flight work first so every accepted computation lands in the
  // cache before it is persisted.
  pool_.shutdown();
  if (!options_.cache_file.empty()) cache_.save();
}

void QueryExecutor::watchdog_loop() {
  const auto timeout = std::chrono::milliseconds(
      std::max<std::uint64_t>(1, options_.hang_timeout_ms));
  const auto tick = std::chrono::milliseconds(std::clamp<std::uint64_t>(
      options_.hang_timeout_ms / 4, 1, 100));
  std::unique_lock lock(mutex_);
  while (!watchdog_stop_) {
    watchdog_cv_.wait_for(lock, tick, [this] { return watchdog_stop_; });
    if (watchdog_stop_) return;
    const auto now = Clock::now();
    std::vector<std::shared_ptr<Flight>> hung;
    for (auto it = flights_.begin(); it != flights_.end();) {
      Flight& f = *it->second;
      if (!f.abandoned && now - f.started > timeout) {
        f.abandoned = true;
        // Fire the flight's CancelSource so a cooperative compute actually
        // stops (within one check quantum) instead of burning a worker
        // until it finishes into an abandoned flight.
        f.cancel.request_cancel();
        ++stats_.hung;
        --pending_;  // free the admission slot its leader occupied
        pending_cost_units_ -= std::min(pending_cost_units_, f.cost);
        hung.push_back(it->second);
        it = flights_.erase(it);
      } else {
        ++it;
      }
    }
    if (hung.empty()) continue;
    for (const auto& flight : hung) {
      watchdog_counter().inc();
      scope::FlightRecorder::global().record(
          scope::FlightRecorder::Kind::kWatchdog, flight->trace_id,
          "flight key=" + hex64(flight->key) + " cancelled after " +
              std::to_string(options_.hang_timeout_ms) + " ms");
    }
    scope::FlightRecorder::global().dump_once_to_stderr(
        "executor watchdog cancelled a hung flight");
    // Publish outside the executor lock: waiters take flight->mutex while
    // never holding mutex_, and the stuck compute task publishes the same
    // way when (if) it finishes — its publish is a no-op once done is set.
    lock.unlock();
    for (const auto& flight : hung) {
      {
        std::lock_guard flight_lock(flight->mutex);
        if (!flight->done) {
          flight->response.ok = false;
          flight->response.error =
              "query hung: cancelled by watchdog after " +
              std::to_string(options_.hang_timeout_ms) + " ms";
          flight->done = true;
        }
      }
      flight->cv.notify_all();
    }
    lock.lock();
  }
}

std::optional<Response> QueryExecutor::try_cached(const Query& q) {
  if (q.refresh) return std::nullopt;
  const auto start = Clock::now();
  const std::uint64_t key = q.cache_key();
  const std::uint64_t tid = q.trace_id;
  // Probe before committing to any accounting: a miss must leave every
  // counter untouched so the fallback execute() stays the single
  // authoritative accounting path (get_if_hit leaves misses uncounted for
  // the same reason).
  auto cached = cache_.get_if_hit(key);
  if (!cached) return std::nullopt;

  scope::SpanTimer exec_span(tid, "executor.execute");
  requests_counter().inc();
  {
    scope::SpanTimer probe(tid, "cache.probe");
    probe.set_note("hit");
  }
  cache_hits_counter().inc();
  Response response;
  response.key = key;
  response.trace_id = tid;
  {
    std::lock_guard lock(mutex_);
    ++stats_.requests;
    ++stats_.cache_hits;
  }
  response.ok = true;
  response.cache_hit = true;
  response.result = std::move(*cached);
  response.micros = micros_since(start);
  execute_us_hist().observe(response.micros);
  return response;
}

Response QueryExecutor::execute(const Query& q) {
  const auto start = Clock::now();
  const std::uint64_t key = q.cache_key();
  const std::uint64_t tid = q.trace_id;
  // Whole-residency span; destroyed (and recorded) last, after the waiter
  // has its answer, so it closes every trace's span list.
  scope::SpanTimer exec_span(tid, "executor.execute");
  requests_counter().inc();

  Response response;
  response.key = key;
  response.trace_id = tid;

  const auto finish = [&](Response& r) -> Response& {
    r.micros = micros_since(start);
    execute_us_hist().observe(r.micros);
    return r;
  };

  // refresh=true forces a recompute: skip the cache read but keep every
  // other gate (single-flight, admission, deadline).
  if (!q.refresh) {
    scope::SpanTimer probe(tid, "cache.probe");
    if (auto cached = cache_.get(key)) {
      probe.set_note("hit");
      probe.finish();
      cache_hits_counter().inc();
      std::lock_guard lock(mutex_);
      ++stats_.requests;
      ++stats_.cache_hits;
      response.ok = true;
      response.cache_hit = true;
      response.result = std::move(*cached);
      return finish(response);
    }
    probe.set_note("miss");
    probe.finish();
  }

  const std::uint64_t deadline_ms =
      q.deadline_ms > 0 ? q.deadline_ms : options_.default_deadline_ms;
  const std::uint64_t cost = guard::query_cost(q);
  const std::string client = q.client.empty() ? std::string("anon") : q.client;

  std::shared_ptr<Flight> flight;
  bool leader = false;
  unsigned brownout_trials = 0;  // 0 = serve the full sweep
  {
    std::lock_guard lock(mutex_);
    ++stats_.requests;
    const auto it = flights_.find(key);
    if (it != flights_.end()) {
      flight = it->second;
      ++flight->waiters;
      ++stats_.dedup_joins;
    } else {
      if (draining_) {
        ++stats_.rejected;
        shed_counter().inc();
        scope::FlightRecorder::global().record(
            scope::FlightRecorder::Kind::kShed, tid,
            "draining: new flight refused key=" + hex64(key));
        exec_span.set_note("drain-shed");
        // Overloaded-shaped so clients back off and fleet front doors fail
        // over to a backend that is not going away.  No retry hint: this
        // server will not be less drained in retry_after_ms, the caller
        // should go elsewhere.
        response.error = "overloaded: draining";
        response.overloaded = true;
        return finish(response);
      }
      if (pending_ >= options_.max_queue) {
        ++stats_.rejected;
        shed_counter().inc();
        scope::FlightRecorder::global().record(
            scope::FlightRecorder::Kind::kShed, tid,
            "admission queue full: pending=" + std::to_string(pending_) +
                " key=" + hex64(key));
        exec_span.set_note("shed");
        response.error = "overloaded: admission queue full";
        response.overloaded = true;
        response.retry_after_ms = drain_rate_.hint_ms(
            static_cast<double>(pending_cost_units_),
            options_.retry_after_hint_ms);
        return finish(response);
      }
      if (guard_) {
        const guard::Guard::Decision decision =
            guard_->admit(client, q, cost);
        if (!decision.admit) {
          ++stats_.rejected;
          shed_counter().inc();
          scope::FlightRecorder::global().record(
              scope::FlightRecorder::Kind::kShed, tid,
              "guard shed (" + decision.reason + "): client=" + client +
                  " cost=" + std::to_string(cost) + " key=" + hex64(key));
          exec_span.set_note("shed");
          response.error = "overloaded: " + decision.reason;
          response.overloaded = true;
          // Rate-limit sheds carry a token-refill hint; backlog/share sheds
          // scale with how long the admitted cost takes to drain.
          response.retry_after_ms =
              decision.retry_after_ms != 0
                  ? decision.retry_after_ms
                  : drain_rate_.hint_ms(
                        static_cast<double>(pending_cost_units_),
                        options_.retry_after_hint_ms);
          return finish(response);
        }
        if (decision.brownout) brownout_trials = decision.trials;
      }
      flight = std::make_shared<Flight>();
      flight->started = start;
      flight->key = key;
      flight->trace_id = tid;
      flight->cost = cost;
      flight->client = client;
      flight->waiters = 1;
      // Arm the compute deadline now, before the task is submitted and the
      // token can be checked concurrently (CancelSource's arm contract).
      flight->cancel.set_deadline_after_ms(deadline_ms);
      flights_[key] = flight;
      ++pending_;
      pending_cost_units_ += cost;
      leader = true;
    }
  }
  if (!leader && tid != 0) {
    scope::TraceStore::global().add(
        tid, scope::Span{"flight.join", scope::now_us(), 0,
                         "leader key=" + hex64(key)});
  }

  if (leader) {
    const Query task_query = q;
    const std::uint64_t submit_us = scope::now_us();
    std::function<void()> task = [this, task_query, key, tid, submit_us,
                                  brownout_trials, flight] {
      if (tid != 0) {
        // Admission-to-pickup latency: starts at submit, ends now that a
        // worker owns the task.
        scope::TraceStore::global().add(
            tid, scope::Span{"queue.wait", submit_us,
                             scope::now_us() - submit_us, ""});
      }
      if (options_.faults) options_.faults->on_compute();
      Response computed;
      computed.key = key;
      computed.trace_id = tid;
      const CancelToken token = flight->cancel.token();
      bool unwound = false;  // compute threw CancelledError (no result)
      Json doc;
      const auto compute_start = Clock::now();
      scope::SpanTimer sim_span(tid, "sim.run");
      try {
        // Brownout: run the reduced sweep under the ORIGINAL flight (cache
        // key unchanged) — the result document is patched below to look
        // like a degraded partial of the full request.
        Query run_query = task_query;
        if (brownout_trials > 0) run_query.trials = brownout_trials;
        doc = options_.compute(run_query, token);
        computed.result = doc.dump();
        computed.ok = true;
        computed.degraded = doc["degraded"].as_bool(false);
      } catch (const CancelledError& e) {
        computed.error = std::string("cancelled: ") + e.what();
        unwound = true;
      } catch (const std::exception& e) {
        computed.error = e.what();
      } catch (...) {
        computed.error = "unknown planner failure";
      }
      if (!computed.ok) sim_span.set_note(unwound ? "cancelled" : "error");
      else if (computed.degraded) sim_span.set_note("degraded");
      sim_span.finish();
      const double compute_micros = micros_since(compute_start);
      record_compute_micros(compute_micros);
      if (unwound || computed.degraded) {
        // Reclaimed-CPU estimate: a degraded sweep that finished c of T
        // trials in E ms would have needed roughly E*(T-c)/c more; a full
        // unwind reclaims "the rest of something we know nothing about" —
        // credit the elapsed time as the scale of what was avoided.
        const double elapsed_ms = compute_micros / 1000.0;
        double reclaimed_ms = elapsed_ms;
        if (computed.degraded) {
          // A trial-range shard's sweep is its range width, not the full
          // request's trial count (docs/SCATTER.md).
          double total = doc["trials"].as_number(0.0);
          if (doc.contains("trial_hi")) {
            total = doc["trial_hi"].as_number(0.0) -
                    doc["trial_lo"].as_number(0.0);
          }
          const double done_trials =
              doc["trials_completed"].as_number(0.0);
          reclaimed_ms = elapsed_ms * (total - done_trials) /
                         std::max(done_trials, 1.0);
        }
        compute_cancelled_counter().inc();
        reclaimed_cpu_counter().add(
            static_cast<std::uint64_t>(std::max(0.0, reclaimed_ms)));
        if (tid != 0) {
          scope::TraceStore::global().add(
              tid, scope::Span{"sim.cancel", scope::now_us(), 0,
                               unwound ? "unwound"
                                       : "degraded " +
                                             doc["trials_completed"].dump() +
                                             "/" + doc["trials"].dump() +
                                             " trials"});
        }
      }
      // A failed recompute falls back to the previous cached value so a
      // transient planner fault degrades to slightly-stale instead of down.
      if (!computed.ok && options_.serve_stale_on_error) {
        if (auto stale = cache_.get(key)) {
          computed.ok = true;
          computed.stale = true;
          computed.error.clear();
          computed.result = std::move(*stale);
        }
      }
      {
        std::lock_guard lock(mutex_);
        if (unwound || computed.degraded) ++stats_.cancelled;
        if (computed.stale) {
          ++stats_.errors;
          ++stats_.stale_served;
        } else if (computed.ok) {
          ++stats_.computed;
          if (brownout_trials > 0) ++stats_.browned_out;
        } else {
          ++stats_.errors;
        }
        // Drain-rate sample: only full, uncancelled, unbrowned computes —
        // a sweep that quit early (or was shortened by policy) would make
        // the per-unit estimate optimistic.
        if (computed.ok && !computed.stale && !computed.degraded &&
            brownout_trials == 0) {
          drain_rate_.note(compute_micros / 1000.0, flight->cost,
                           pool_.size());
        }
        // The watchdog may have abandoned this flight (erasing it and
        // freeing its slot); only unregister what is still registered, and
        // never double-decrement pending_.
        const auto it = flights_.find(key);
        if (it != flights_.end() && it->second == flight) {
          flights_.erase(it);
          --pending_;
          pending_cost_units_ -= std::min(pending_cost_units_, flight->cost);
        }
      }
      if (guard_) guard_->complete(flight->client, flight->cost);
      // A completed brownout answers as a degraded partial of the FULL
      // request: trials echoes what was asked, trials_completed what ran.
      // Set after the cancellation accounting above — a brownout is a
      // policy choice, not a reclaimed compute.
      if (brownout_trials > 0 && computed.ok && !computed.stale &&
          !computed.degraded) {
        doc["trials_completed"] = doc["trials"];
        doc["trials"] = task_query.trials;
        doc["degraded"] = true;
        doc["brownout"] = true;
        computed.result = doc.dump();
        computed.degraded = true;
      }
      // Errors are not cached: a transient failure should not poison the
      // content address forever.  (Stale fallbacks are already in cache.)
      // Degraded partials are not cached either — they answer the deadline
      // that produced them, but the content address promises the full sweep.
      if (computed.ok && !computed.stale && !computed.degraded) {
        scope::SpanTimer persist(
            tid, options_.cache_journal ? "wal.append" : "cache.put");
        cache_.put(key, computed.result);
      }
      {
        std::lock_guard flight_lock(flight->mutex);
        // If the watchdog already published a "hung" error, the waiters are
        // gone; leave their response alone.
        if (!flight->done) {
          flight->response = std::move(computed);
          flight->done = true;
        }
      }
      flight->cv.notify_all();
    };
    if (sched_) {
      // Guard mode: the fair scheduler owns dispatch order (DRR across
      // clients).  If the task is shed before it starts (drain, shutdown),
      // the flight's waiters — this leader included — get an overloaded
      // response through the shed callback and the wait below returns.
      sched_->submit(flight->client, cost, std::move(task),
                     [this, flight, key, tid] {
                       shed_unstarted_flight(flight, key, tid);
                     });
    } else if (!pool_.submit(std::move(task))) {
      {
        std::lock_guard lock(mutex_);
        const auto it = flights_.find(key);
        if (it != flights_.end() && it->second == flight) {
          flights_.erase(it);
          --pending_;
          pending_cost_units_ -= std::min(pending_cost_units_, flight->cost);
        }
        if (flight->waiters > 0) --flight->waiters;
        ++stats_.rejected;
      }
      // Wake any follower that joined between registration and rejection.
      {
        std::lock_guard flight_lock(flight->mutex);
        if (!flight->done) {
          flight->response.error = "executor shutting down";
          flight->done = true;
        }
      }
      flight->cv.notify_all();
      response.error = "executor shutting down";
      return finish(response);
    }
  }

  // Waiters linger a short grace past the deadline: the compute token fires
  // AT the deadline and a cooperative compute then needs up to one check
  // quantum plus publish time to hand back a degraded partial result —
  // without the grace the waiter would walk away moments before the partial
  // answer it paid for arrives.
  const auto grace = std::chrono::milliseconds(
      std::clamp<std::uint64_t>(deadline_ms / 8, 10, 250));
  {
    std::unique_lock flight_lock(flight->mutex);
    const bool done = flight->cv.wait_for(
        flight_lock, std::chrono::milliseconds(deadline_ms) + grace,
        [&flight] { return flight->done; });
    if (!done) {
      flight_lock.unlock();
      bool last_waiter = false;
      {
        std::lock_guard lock(mutex_);
        ++stats_.deadline_exceeded;
        if (flight->waiters > 0) --flight->waiters;
        last_waiter = flight->waiters == 0;
      }
      if (last_waiter) {
        // Nobody is listening for this answer any more: stop paying for it.
        flight->cancel.request_cancel();
        scope::FlightRecorder::global().record(
            scope::FlightRecorder::Kind::kInfo, tid,
            "last waiter left: cancelling flight key=" + hex64(key));
      }
      response.error = "deadline exceeded after " +
                       std::to_string(deadline_ms) + " ms";
      exec_span.set_note("deadline");
      return finish(response);
    }
    response = flight->response;
  }
  {
    std::lock_guard lock(mutex_);
    if (flight->waiters > 0) --flight->waiters;
  }
  response.key = key;
  response.trace_id = tid;  // a follower's response keeps its own trace id
  return finish(response);
}

QueryExecutor::Stats QueryExecutor::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

bool QueryExecutor::cancel_trace(std::uint64_t trace_id) {
  if (trace_id == 0) return false;
  std::shared_ptr<Flight> target;
  {
    std::lock_guard lock(mutex_);
    for (const auto& [key, flight] : flights_) {
      if (flight->trace_id != trace_id) continue;
      // A dedup-joined flight is serving other clients; the canceller only
      // speaks for its own request, so leave shared work alone.
      if (flight->waiters > 1) return false;
      target = flight;
      break;
    }
  }
  if (!target) return false;
  target->cancel.request_cancel();
  scope::FlightRecorder::global().record(
      scope::FlightRecorder::Kind::kInfo, trace_id,
      "cancel op: flight key=" + hex64(target->key) + " cancelled");
  return true;
}

std::size_t QueryExecutor::cancel_all() {
  std::vector<std::shared_ptr<Flight>> flights;
  {
    std::lock_guard lock(mutex_);
    flights.reserve(flights_.size());
    for (const auto& [key, flight] : flights_) flights.push_back(flight);
  }
  for (const auto& flight : flights) flight->cancel.request_cancel();
  return flights.size();
}

void QueryExecutor::shed_unstarted_flight(
    const std::shared_ptr<Flight>& flight, std::uint64_t key,
    std::uint64_t tid) {
  bool was_draining = false;
  {
    std::lock_guard lock(mutex_);
    was_draining = draining_;
    const auto it = flights_.find(key);
    if (it != flights_.end() && it->second == flight) {
      flights_.erase(it);
      --pending_;
      pending_cost_units_ -= std::min(pending_cost_units_, flight->cost);
    }
    ++stats_.rejected;
  }
  if (guard_) guard_->release(flight->client, flight->cost);
  shed_counter().inc();
  scope::FlightRecorder::global().record(
      scope::FlightRecorder::Kind::kShed, tid,
      "queued flight shed before start key=" + hex64(key));
  {
    std::lock_guard flight_lock(flight->mutex);
    if (!flight->done) {
      flight->response.ok = false;
      flight->response.overloaded = true;
      // Draining sheds carry no retry hint — this server is going away;
      // the caller should fail over, not wait.
      flight->response.error =
          was_draining ? "overloaded: draining" : "executor shutting down";
      flight->done = true;
    }
  }
  flight->cv.notify_all();
}

void QueryExecutor::begin_drain() {
  {
    std::lock_guard lock(mutex_);
    if (draining_) return;
    draining_ = true;
  }
  // Queued-but-unstarted flights answer "draining" now instead of running:
  // drain exists to finish what is running, not to start new work.
  if (sched_) sched_->shed_queued();
  scope::FlightRecorder::global().record(scope::FlightRecorder::Kind::kInfo,
                                         0, "executor draining");
}

bool QueryExecutor::draining() const {
  std::lock_guard lock(mutex_);
  return draining_;
}

void QueryExecutor::record_compute_micros(double micros) {
  compute_us_.observe(micros);       // this executor's view (health op)
  compute_us_hist().observe(micros);  // process-wide view (stats op)
}

QueryExecutor::ComputeTimes QueryExecutor::compute_times() const {
  const scope::Histogram::Snapshot snap = compute_us_.snapshot();
  ComputeTimes t;
  t.samples = snap.count;
  t.p50_us = snap.quantile(0.50);
  t.p95_us = snap.quantile(0.95);
  t.p99_us = snap.quantile(0.99);
  return t;
}

double QueryExecutor::pressure() const {
  return guard_ ? guard_->pressure() : 0.0;
}

std::size_t QueryExecutor::pending() const {
  std::lock_guard lock(mutex_);
  return pending_;
}

std::size_t QueryExecutor::active_flights() const {
  std::lock_guard lock(mutex_);
  return flights_.size();
}

double QueryExecutor::uptime_seconds() const {
  return std::chrono::duration<double>(Clock::now() - started_).count();
}

}  // namespace netemu
